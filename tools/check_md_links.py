#!/usr/bin/env python3
"""Fails when a markdown file contains a broken relative link.

Usage: check_md_links.py FILE.md [FILE.md ...]

Checks every inline link/image target `[text](target)`:
  - http(s)/mailto targets are skipped (no network in CI);
  - pure-anchor targets (#section) are checked against the headings of the
    same file; `path#anchor` is checked for the file only;
  - everything else must exist on disk, relative to the markdown file.

Exit status: 0 when all links resolve, 1 otherwise (each failure printed).
"""

import re
import sys
from pathlib import Path

# Inline links/images, tolerating one level of nested parentheses in the
# target. Reference-style links are rare in this repo and not used.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\)[^()\s]*)*)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (lowercase, spaces to dashes)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def check_file(md: Path) -> list:
    text = md.read_text(encoding="utf-8")
    anchors = {github_anchor(h) for h in HEADING_RE.findall(text)}
    errors = []
    for target in LINK_RE.findall(CODE_FENCE_RE.sub("", text)):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if not path_part:  # same-file anchor
            if anchor and github_anchor(anchor) not in anchors:
                errors.append(f"{md}: broken anchor '#{anchor}'")
            continue
        resolved = (md.parent / path_part).resolve()
        if not resolved.exists():
            errors.append(f"{md}: broken link '{target}' -> {resolved}")
    return errors


def main(argv: list) -> int:
    if not argv:
        print("usage: check_md_links.py FILE.md [FILE.md ...]",
              file=sys.stderr)
        return 2
    failures = []
    checked = 0
    for name in argv:
        md = Path(name)
        if not md.exists():
            failures.append(f"{md}: file not found")
            continue
        checked += 1
        failures.extend(check_file(md))
    for f in failures:
        print(f, file=sys.stderr)
    print(f"checked {checked} file(s): "
          f"{'OK' if not failures else f'{len(failures)} broken link(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
