#!/usr/bin/env python3
"""CI performance-regression gate over the committed BENCH_*.json baselines.

Compares a freshly produced bench JSON against the committed baseline and
fails (exit 1) when any CONTRACT field regresses by more than the tolerance
(default 20%). Contract fields are ratios and counters that are stable
across machines — speedups, cost ratios, reuse counts, bit-identity flags —
NOT raw wall-clock milliseconds, which CI hardware jitter would turn into a
flaky gate. Rows are matched by a per-bench key; candidate runs may cover a
subset of the baseline rows (smoke configs), but at least one row must
match.

Usage:
  check_bench_regression.py --baseline BENCH_gp_refit.json \
      --candidate build/BENCH_gp_refit.json [--tolerance 0.20]
  check_bench_regression.py --selftest

The per-bench contract (keyed by the JSON's "bench" field):
  micro_gp_refit  key (n)            higher-better refit_speedup,
                                     predict_speedup
  streaming       key (workload,     lower-better  cost_ratio
                  mode, certifier,   higher-better reused_answers
                  shards, order,     exact         identical_labels
                  pairs)
  scale           key (scale)        higher-better build_speedup,
                                     partition_speedup
                                     exact         samp_cost, block_pairs
  records_scale   key (scale)        higher-better simd_speedup, lsh_recall
                                     exact         lsh_pairs, samp_cost,
                                                   scores_identical
  serving         key (workload,     higher-better lookups_per_sec
                  pairs, shards,     exact         drained_equals_synchronous,
                  readers)                         snapshots_consistent
  entities        key (pairs)        higher-better cluster_mpairs_per_sec
                                     exact         records, entities,
                                                   disagreements_before,
                                                   disagreements_after,
                                                   exact_recovery,
                                                   repaired_transitive,
                                                   thread_invariant
  crowd           key (workload,     higher-better inferred_fraction,
                  certifier, pairs)                task_reduction
                                     exact         tasks_le_questions,
                                                   certified,
                                                   thread_invariant
  sharded         key (workload,     higher-better shard_speedup
                  transport,         exact         merged_equals_oneshot,
                  shards, pairs)                   evidence_consistent,
                                                   labels_consistent,
                                                   transport_ran_as_requested,
                                                   sharded_cost

--selftest proves the gate can actually fail: it fabricates a baseline,
injects a 25% regression into a copy, and asserts the comparison rejects it
(and accepts the unmodified copy).
"""

import argparse
import copy
import json
import sys

TOLERANCE_DEFAULT = 0.20

# bench name -> (row key fields, higher-better, lower-better, exact)
CONTRACTS = {
    "micro_gp_refit": {
        "key": ("n",),
        "higher": ("refit_speedup", "predict_speedup"),
        "lower": (),
        "exact": (),
    },
    "streaming": {
        "key": ("workload", "mode", "certifier", "shards", "order", "pairs"),
        "higher": ("reused_answers",),
        "lower": ("cost_ratio",),
        "exact": ("identical_labels",),
    },
    "scale": {
        "key": ("scale",),
        "higher": ("build_speedup", "partition_speedup"),
        "lower": (),
        "exact": ("samp_cost", "block_pairs"),
    },
    "records_scale": {
        "key": ("scale",),
        "higher": ("simd_speedup", "lsh_recall"),
        "lower": (),
        "exact": ("lsh_pairs", "samp_cost", "scores_identical"),
    },
    "serving": {
        "key": ("workload", "pairs", "shards", "readers"),
        "higher": ("lookups_per_sec",),
        "lower": (),
        "exact": ("drained_equals_synchronous", "snapshots_consistent"),
    },
    "entities": {
        "key": ("pairs",),
        "higher": ("cluster_mpairs_per_sec",),
        "lower": (),
        "exact": (
            "records",
            "entities",
            "disagreements_before",
            "disagreements_after",
            "exact_recovery",
            "repaired_transitive",
            "thread_invariant",
        ),
    },
    "crowd": {
        "key": ("workload", "certifier", "pairs"),
        # DS/AB rows carry inferred_fraction 0 (degree-1 records, nothing
        # to infer); the b > 0 guard keeps them out of the ratio check and
        # the ENT rows gate at the standard 20% tolerance.
        "higher": ("inferred_fraction", "task_reduction"),
        "lower": (),
        "exact": ("tasks_le_questions", "certified", "thread_invariant"),
    },
    "sharded": {
        "key": ("workload", "transport", "shards", "pairs"),
        # Only the dataplane row measures shard_speedup; contract rows carry
        # 0.0 there and the b > 0 guard keeps them out of the ratio check.
        # sharded_cost is exactly pinned: the merged oracle cost must equal
        # the committed one-shot value bit for bit at every shard count.
        "higher": ("shard_speedup",),
        "lower": (),
        "exact": (
            "merged_equals_oneshot",
            "evidence_consistent",
            "labels_consistent",
            "transport_ran_as_requested",
            "sharded_cost",
        ),
    },
}


def load(path):
    with open(path) as f:
        return json.load(f)


def row_key(row, fields):
    return tuple(row.get(f) for f in fields)


def compare(baseline, candidate, tolerance):
    """Returns a list of violation strings (empty = gate passes)."""
    bench = baseline.get("bench")
    if bench != candidate.get("bench"):
        return [
            "bench mismatch: baseline %r vs candidate %r"
            % (bench, candidate.get("bench"))
        ]
    contract = CONTRACTS.get(bench)
    if contract is None:
        return ["no contract registered for bench %r" % bench]

    base_rows = {
        row_key(r, contract["key"]): r for r in baseline.get("results", [])
    }
    violations = []
    matched = 0
    for row in candidate.get("results", []):
        key = row_key(row, contract["key"])
        base = base_rows.get(key)
        if base is None:
            continue  # smoke config measuring a row the baseline lacks
        matched += 1
        label = "%s %s" % (bench, dict(zip(contract["key"], key)))
        for field in contract["higher"]:
            b, c = base.get(field), row.get(field)
            if b is None or c is None:
                violations.append("%s: missing field %r" % (label, field))
            elif b > 0 and c < b * (1.0 - tolerance):
                violations.append(
                    "%s: %s regressed %.3f -> %.3f (>%.0f%% below baseline)"
                    % (label, field, b, c, tolerance * 100)
                )
        for field in contract["lower"]:
            b, c = base.get(field), row.get(field)
            if b is None or c is None:
                violations.append("%s: missing field %r" % (label, field))
            elif c > b * (1.0 + tolerance):
                violations.append(
                    "%s: %s regressed %.3f -> %.3f (>%.0f%% above baseline)"
                    % (label, field, b, c, tolerance * 100)
                )
        for field in contract["exact"]:
            b, c = base.get(field), row.get(field)
            if b != c:
                violations.append(
                    "%s: %s changed exactly-pinned value %r -> %r"
                    % (label, field, b, c)
                )
    if matched == 0:
        violations.append(
            "no candidate row matched any baseline row (keys: %s)"
            % (contract["key"],)
        )
    return violations


def selftest():
    baseline = {
        "bench": "micro_gp_refit",
        "results": [
            {"n": 64, "refit_speedup": 120.0, "predict_speedup": 2.0},
            {"n": 128, "refit_speedup": 250.0, "predict_speedup": 2.6},
        ],
    }
    clean = copy.deepcopy(baseline)
    assert compare(baseline, clean, TOLERANCE_DEFAULT) == [], (
        "selftest: identical run must pass"
    )

    regressed = copy.deepcopy(baseline)
    regressed["results"][0]["refit_speedup"] *= 0.75  # injected 25% loss
    violations = compare(baseline, regressed, TOLERANCE_DEFAULT)
    assert violations, "selftest: 25% regression must be rejected"

    within = copy.deepcopy(baseline)
    within["results"][0]["refit_speedup"] *= 0.85  # 15% — inside tolerance
    assert compare(baseline, within, TOLERANCE_DEFAULT) == [], (
        "selftest: 15% wobble must pass at 20% tolerance"
    )

    lower = {
        "bench": "streaming",
        "results": [
            {
                "workload": "DS",
                "mode": "certify_once",
                "certifier": "SAMP",
                "shards": 4,
                "order": "shuffled",
                "pairs": 20000,
                "cost_ratio": 1.0,
                "reused_answers": 0,
                "identical_labels": True,
            }
        ],
    }
    worse = copy.deepcopy(lower)
    worse["results"][0]["cost_ratio"] = 1.3
    assert compare(lower, worse, TOLERANCE_DEFAULT), (
        "selftest: lower-better field rising 30% must be rejected"
    )
    flipped = copy.deepcopy(lower)
    flipped["results"][0]["identical_labels"] = False
    assert compare(lower, flipped, TOLERANCE_DEFAULT), (
        "selftest: exact field flip must be rejected"
    )

    entities = {
        "bench": "entities",
        "results": [
            {
                "pairs": 1000000,
                "records": 30000,
                "entities": 10000,
                "cluster_mpairs_per_sec": 20.0,
                "disagreements_before": 2000,
                "disagreements_after": 100,
                "exact_recovery": True,
                "repaired_transitive": True,
                "thread_invariant": True,
            }
        ],
    }
    drifted = copy.deepcopy(entities)
    drifted["results"][0]["disagreements_after"] = 101
    assert compare(entities, drifted, TOLERANCE_DEFAULT), (
        "selftest: entity determinism drift must be rejected"
    )
    assert compare(entities, copy.deepcopy(entities), TOLERANCE_DEFAULT) == [], (
        "selftest: clean entities run must pass"
    )

    crowd = {
        "bench": "crowd",
        "results": [
            {
                "workload": "ENT",
                "certifier": "SAMP",
                "pairs": 27218,
                "inferred_fraction": 0.35,
                "task_reduction": 0.93,
                "tasks_le_questions": True,
                "certified": True,
                "thread_invariant": True,
            },
            {
                "workload": "DS",
                "certifier": "RISK",
                "pairs": 20000,
                "inferred_fraction": 0.0,
                "task_reduction": 0.89,
                "tasks_le_questions": True,
                "certified": True,
                "thread_invariant": True,
            },
        ],
    }
    assert compare(crowd, copy.deepcopy(crowd), TOLERANCE_DEFAULT) == [], (
        "selftest: clean crowd run must pass"
    )
    less_inferred = copy.deepcopy(crowd)
    less_inferred["results"][0]["inferred_fraction"] *= 0.75  # 25% loss
    assert compare(crowd, less_inferred, TOLERANCE_DEFAULT), (
        "selftest: inferred-fraction regression must be rejected"
    )
    uncertified = copy.deepcopy(crowd)
    uncertified["results"][1]["certified"] = False
    assert compare(crowd, uncertified, TOLERANCE_DEFAULT), (
        "selftest: guarantee flag flip must be rejected"
    )

    sharded = {
        "bench": "sharded",
        "results": [
            {
                "workload": "DS",
                "transport": "fork",
                "shards": 4,
                "pairs": 20000,
                "sharded_cost": 20000,
                "merged_equals_oneshot": True,
                "evidence_consistent": True,
                "labels_consistent": True,
                "transport_ran_as_requested": True,
                "shard_speedup": 0.0,
            },
            {
                "workload": "DS",
                "transport": "dataplane",
                "shards": 4,
                "pairs": 1000000,
                "sharded_cost": 0,
                "merged_equals_oneshot": True,
                "evidence_consistent": True,
                "labels_consistent": True,
                "transport_ran_as_requested": True,
                "shard_speedup": 3.2,
            },
        ],
    }
    assert compare(sharded, copy.deepcopy(sharded), TOLERANCE_DEFAULT) == [], (
        "selftest: clean sharded run must pass"
    )
    diverged = copy.deepcopy(sharded)
    diverged["results"][0]["merged_equals_oneshot"] = False
    assert compare(sharded, diverged, TOLERANCE_DEFAULT), (
        "selftest: sharded bit-identity flip must be rejected"
    )
    costlier = copy.deepcopy(sharded)
    costlier["results"][0]["sharded_cost"] = 20001
    assert compare(sharded, costlier, TOLERANCE_DEFAULT), (
        "selftest: merged-cost drift must be rejected"
    )
    slower = copy.deepcopy(sharded)
    slower["results"][1]["shard_speedup"] = 2.4  # 25% loss on dataplane row
    assert compare(sharded, slower, TOLERANCE_DEFAULT), (
        "selftest: data-plane speedup regression must be rejected"
    )
    degraded = copy.deepcopy(sharded)
    degraded["results"][0]["transport_ran_as_requested"] = False
    assert compare(sharded, degraded, TOLERANCE_DEFAULT), (
        "selftest: silent fork-to-inprocess degradation must be rejected"
    )

    print("selftest OK: gate rejects injected regressions and passes clean runs")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="committed BENCH_*.json")
    parser.add_argument("--candidate", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=TOLERANCE_DEFAULT,
        help="allowed relative regression (default 0.20)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="verify the gate fails on an injected 25%% regression",
    )
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.baseline or not args.candidate:
        parser.error("--baseline and --candidate are required")

    violations = compare(load(args.baseline), load(args.candidate),
                         args.tolerance)
    if violations:
        print("PERFORMANCE REGRESSION GATE FAILED (%d violation%s):"
              % (len(violations), "s" if len(violations) != 1 else ""))
        for v in violations:
            print("  - " + v)
        return 1
    print(
        "perf gate OK: %s within %.0f%% of baseline %s"
        % (args.candidate, args.tolerance * 100, args.baseline)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
