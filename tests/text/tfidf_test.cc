#include "text/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace humo::text {
namespace {

std::vector<std::vector<std::string>> Corpus() {
  return {{"entity", "resolution", "survey"},
          {"entity", "matching", "rules"},
          {"stream", "processing", "engine"}};
}

TEST(TfIdfTest, FitCountsDocuments) {
  TfIdfModel model;
  model.Fit(Corpus());
  EXPECT_EQ(model.num_documents(), 3u);
}

TEST(TfIdfTest, RareTokensWeighMore) {
  TfIdfModel model;
  model.Fit(Corpus());
  // "entity" appears in 2 docs, "survey" in 1: idf(survey) > idf(entity).
  EXPECT_GT(model.Idf("survey"), model.Idf("entity"));
}

TEST(TfIdfTest, UnknownTokenGetsMaxIdf) {
  TfIdfModel model;
  model.Fit(Corpus());
  EXPECT_GT(model.Idf("neverseen"), model.Idf("survey"));
}

TEST(TfIdfTest, TransformIsL2Normalized) {
  TfIdfModel model;
  model.Fit(Corpus());
  const auto v = model.Transform({"entity", "resolution", "survey"});
  double norm_sq = 0.0;
  for (const auto& [tok, w] : v) norm_sq += w * w;
  EXPECT_NEAR(norm_sq, 1.0, 1e-12);
}

TEST(TfIdfTest, EmptyDocumentTransformsToEmptyVector) {
  TfIdfModel model;
  model.Fit(Corpus());
  EXPECT_TRUE(model.Transform({}).empty());
}

TEST(TfIdfTest, CosineSelfSimilarityIsOne) {
  TfIdfModel model;
  model.Fit(Corpus());
  const auto v = model.Transform({"entity", "matching"});
  EXPECT_NEAR(TfIdfModel::Cosine(v, v), 1.0, 1e-12);
}

TEST(TfIdfTest, CosineDisjointIsZero) {
  TfIdfModel model;
  model.Fit(Corpus());
  const auto a = model.Transform({"entity"});
  const auto b = model.Transform({"stream"});
  EXPECT_DOUBLE_EQ(TfIdfModel::Cosine(a, b), 0.0);
}

TEST(TfIdfTest, CosineOrdersByOverlap) {
  TfIdfModel model;
  model.Fit(Corpus());
  const auto q = model.Transform({"entity", "resolution"});
  const auto close = model.Transform({"entity", "resolution", "survey"});
  const auto far = model.Transform({"stream", "processing"});
  EXPECT_GT(TfIdfModel::Cosine(q, close), TfIdfModel::Cosine(q, far));
}

TEST(TfIdfTest, TermFrequencyMatters) {
  TfIdfModel model;
  model.Fit(Corpus());
  const auto once = model.Transform({"entity", "stream"});
  const auto twice = model.Transform({"entity", "entity", "stream"});
  // Repeating "entity" shifts weight toward it.
  EXPECT_GT(twice.at("entity"), once.at("entity"));
}

}  // namespace
}  // namespace humo::text
