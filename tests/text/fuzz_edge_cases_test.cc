#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "text/edit_distance.h"
#include "text/jaro.h"
#include "text/token_similarity.h"
#include "text/tokenizer.h"

namespace humo::text {
namespace {

/// Fuzz/edge-case coverage for the text metrics: hostile inputs — empty
/// strings, single characters, embedded NULs, long repeats, invalid UTF-8 —
/// must never crash (exercised under ASan in CI) and must keep the metric
/// properties (symmetry, identity, unit range, triangle inequality) that
/// the randomized property suite checks on well-formed words.

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t len = rng->NextBelow(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Full byte alphabet: NULs, DEL, high bytes (invalid UTF-8) included.
    s.push_back(static_cast<char>(rng->NextBelow(256)));
  }
  return s;
}

const std::vector<std::string>& HostileStrings() {
  static const std::vector<std::string>* strings = [] {
    auto* v = new std::vector<std::string>();
    v->push_back("");
    v->push_back("a");
    v->push_back(std::string(1, '\0'));
    v->push_back(std::string("a\0b", 3));          // embedded NUL
    v->push_back(std::string("\0\0\0", 3));        // all NULs
    v->push_back(std::string(2000, 'a'));          // long repeat
    v->push_back(std::string(1500, '\xff'));       // invalid UTF-8 repeat
    v->push_back("\xc3\x28");                      // truncated 2-byte UTF-8
    v->push_back("\xe2\x82");                      // truncated 3-byte UTF-8
    v->push_back("\xf0\x9f\x92\xa9");              // 4-byte UTF-8 (bytes)
    v->push_back("\xed\xa0\x80");                  // UTF-16 surrogate bytes
    v->push_back(std::string(997, 'x') + "y");     // repeat + tail
    v->push_back(" \t\r\n  \f\v ");                // whitespace soup
    return v;
  }();
  return *strings;
}

TEST(TextFuzzTest, EditDistanceSurvivesHostilePairs) {
  const auto& inputs = HostileStrings();
  for (const std::string& a : inputs) {
    for (const std::string& b : inputs) {
      const size_t d = LevenshteinDistance(a, b);
      EXPECT_EQ(d, LevenshteinDistance(b, a));
      EXPECT_LE(d, std::max(a.size(), b.size()));
      EXPECT_LE(DamerauLevenshteinDistance(a, b), d);
      EXPECT_LE(LongestCommonSubsequence(a, b), std::min(a.size(), b.size()));
      const double s = LevenshteinSimilarity(a, b);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
    EXPECT_EQ(LevenshteinDistance(a, a), 0u);
    EXPECT_EQ(LevenshteinSimilarity(a, a), 1.0);
  }
}

TEST(TextFuzzTest, JaroSurvivesHostilePairs) {
  const auto& inputs = HostileStrings();
  for (const std::string& a : inputs) {
    for (const std::string& b : inputs) {
      const double j = JaroSimilarity(a, b);
      EXPECT_GE(j, 0.0);
      EXPECT_LE(j, 1.0);
      EXPECT_EQ(j, JaroSimilarity(b, a));
      const double jw = JaroWinklerSimilarity(a, b);
      EXPECT_GE(jw + 1e-12, j);
      EXPECT_LE(jw, 1.0);
    }
    EXPECT_EQ(JaroSimilarity(a, a), 1.0);
  }
}

TEST(TextFuzzTest, TokenizerSurvivesHostileInputs) {
  for (const std::string& s : HostileStrings()) {
    const std::vector<std::string> words = WordTokens(s);
    size_t total = 0;
    for (const std::string& w : words) {
      EXPECT_FALSE(w.empty());
      total += w.size();
    }
    EXPECT_LE(total, s.size());
    for (size_t q : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
      for (bool pad : {false, true}) {
        const std::vector<std::string> grams = QGrams(s, q, pad);
        if (s.empty()) {
          EXPECT_TRUE(grams.empty());
        } else if (!pad && s.size() < q) {
          // Unpadded short string: one undersized gram holding it whole.
          ASSERT_EQ(grams.size(), 1u);
          EXPECT_EQ(grams[0], s);
        } else {
          for (const std::string& g : grams) EXPECT_EQ(g.size(), q);
        }
      }
    }
    const auto set = TokenSet(words);
    EXPECT_LE(set.size(), words.size());
  }
}

TEST(TextFuzzTest, RandomByteStringsKeepMetricProperties) {
  Rng rng(4242);
  for (int rep = 0; rep < 250; ++rep) {
    const std::string a = RandomBytes(&rng, 40);
    const std::string b = RandomBytes(&rng, 40);
    const std::string c = RandomBytes(&rng, 40);
    const size_t dab = LevenshteinDistance(a, b);
    const size_t dac = LevenshteinDistance(a, c);
    const size_t dcb = LevenshteinDistance(c, b);
    EXPECT_EQ(dab, LevenshteinDistance(b, a)) << "rep " << rep;
    EXPECT_LE(dab, dac + dcb) << "rep " << rep;  // triangle inequality
    const double j = JaroSimilarity(a, b);
    EXPECT_GE(j, 0.0);
    EXPECT_LE(j, 1.0);
    EXPECT_EQ(j, JaroSimilarity(b, a)) << "rep " << rep;
    EXPECT_EQ(QGramJaccard(a, b), QGramJaccard(b, a)) << "rep " << rep;
  }
}

TEST(TextFuzzTest, HammingOnEqualLengthHostileInputs) {
  Rng rng(99);
  for (int rep = 0; rep < 100; ++rep) {
    const size_t len = rng.NextBelow(64);
    std::string a, b;
    for (size_t i = 0; i < len; ++i) {
      a.push_back(static_cast<char>(rng.NextBelow(256)));
      b.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    const size_t d = HammingDistance(a, b);
    EXPECT_EQ(d, HammingDistance(b, a));
    EXPECT_LE(d, len);
    EXPECT_EQ(HammingDistance(a, a), 0u);
  }
}

TEST(TextFuzzTest, LongRepeatsAreExactNotApproximate) {
  const std::string a(2000, 'a');
  const std::string b(1999, 'a');
  EXPECT_EQ(LevenshteinDistance(a, b), 1u);
  EXPECT_EQ(LongestCommonSubsequence(a, b), 1999u);
  std::string c = a;
  c[1000] = 'b';
  EXPECT_EQ(LevenshteinDistance(a, c), 1u);
  EXPECT_EQ(DamerauLevenshteinDistance(a, c), 1u);
  EXPECT_GT(JaroSimilarity(a, c), 0.99);
}

}  // namespace
}  // namespace humo::text
