#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace humo::text {
namespace {

TEST(TokenizerTest, WordTokens) {
  const auto t = WordTokens("the quick  brown\tfox");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "the");
  EXPECT_EQ(t[3], "fox");
}

TEST(TokenizerTest, WordTokensEmpty) {
  EXPECT_TRUE(WordTokens("").empty());
  EXPECT_TRUE(WordTokens("   ").empty());
}

TEST(TokenizerTest, QGramsPadded) {
  const auto g = QGrams("ab", 3);
  // padded: "##ab##" -> ##a, #ab, ab#, b##
  ASSERT_EQ(g.size(), 4u);
  EXPECT_EQ(g[0], "##a");
  EXPECT_EQ(g[1], "#ab");
  EXPECT_EQ(g[2], "ab#");
  EXPECT_EQ(g[3], "b##");
}

TEST(TokenizerTest, QGramsUnpadded) {
  const auto g = QGrams("abcd", 2, /*pad=*/false);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0], "ab");
  EXPECT_EQ(g[2], "cd");
}

TEST(TokenizerTest, QGramsShorterThanQUnpadded) {
  const auto g = QGrams("ab", 3, /*pad=*/false);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0], "ab");
}

TEST(TokenizerTest, QGramsEmptyAndZeroQ) {
  EXPECT_TRUE(QGrams("", 3).empty());
  EXPECT_TRUE(QGrams("abc", 0).empty());
}

TEST(TokenizerTest, UnigramsArePlainCharacters) {
  const auto g = QGrams("abc", 1);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0], "a");
}

TEST(TokenizerTest, TokenSetDeduplicates) {
  const auto s = TokenSet({"a", "b", "a", "c", "b"});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.count("a"));
}

}  // namespace
}  // namespace humo::text
