#include "text/phonetic.h"

#include <gtest/gtest.h>

namespace humo::text {
namespace {

TEST(SoundexTest, ReferenceCodes) {
  // Canonical examples from the Soundex specification.
  EXPECT_EQ(Soundex("robert"), "R163");
  EXPECT_EQ(Soundex("rupert"), "R163");
  EXPECT_EQ(Soundex("ashcraft"), "A261");
  EXPECT_EQ(Soundex("ashcroft"), "A261");
  EXPECT_EQ(Soundex("tymczak"), "T522");
  EXPECT_EQ(Soundex("pfister"), "P236");
  EXPECT_EQ(Soundex("honeyman"), "H555");
}

TEST(SoundexTest, CaseInsensitiveViaUpperOutput) {
  EXPECT_EQ(Soundex("Robert"), Soundex("ROBERT"));
  EXPECT_EQ(Soundex("Robert"), Soundex("robert"));
}

TEST(SoundexTest, ShortWordsPadded) {
  EXPECT_EQ(Soundex("a"), "A000");
  EXPECT_EQ(Soundex("lee"), "L000");
}

TEST(SoundexTest, EmptyAndNonAlpha) {
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("123"), "");
}

TEST(SoundexTest, AdjacentDuplicatesCollapse) {
  // 'pf' both map to 1 -> single digit (pfister: P236 not P1236).
  EXPECT_EQ(Soundex("jackson"), "J250");
}

TEST(SoundexEqualsTest, PhoneticMatches) {
  EXPECT_TRUE(SoundexEquals("smith", "smyth"));
  EXPECT_TRUE(SoundexEquals("robert", "rupert"));
  EXPECT_FALSE(SoundexEquals("smith", "jones"));
  EXPECT_FALSE(SoundexEquals("", ""));  // empty codes never match
}

}  // namespace
}  // namespace humo::text
