#include "text/edit_distance.h"

#include <gtest/gtest.h>

namespace humo::text {
namespace {

TEST(LevenshteinTest, IdenticalStrings) {
  EXPECT_EQ(LevenshteinDistance("kitten", "kitten"), 0u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
}

TEST(LevenshteinTest, ClassicExample) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
}

TEST(LevenshteinTest, EmptyAgainstNonEmpty) {
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
}

TEST(LevenshteinTest, SingleEdits) {
  EXPECT_EQ(LevenshteinDistance("abc", "abd"), 1u);  // substitution
  EXPECT_EQ(LevenshteinDistance("abc", "ab"), 1u);   // deletion
  EXPECT_EQ(LevenshteinDistance("abc", "abcd"), 1u); // insertion
}

TEST(LevenshteinTest, Symmetry) {
  EXPECT_EQ(LevenshteinDistance("database", "databse"),
            LevenshteinDistance("databse", "database"));
}

TEST(LevenshteinTest, SimilarityBounds) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  const double s = LevenshteinSimilarity("kitten", "sitting");
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(DamerauTest, TranspositionCountsAsOne) {
  EXPECT_EQ(DamerauLevenshteinDistance("ab", "ba"), 1u);
  EXPECT_EQ(LevenshteinDistance("ab", "ba"), 2u);
}

TEST(DamerauTest, MatchesLevenshteinWithoutTranspositions) {
  EXPECT_EQ(DamerauLevenshteinDistance("kitten", "sitting"), 3u);
}

TEST(DamerauTest, EmptyCases) {
  EXPECT_EQ(DamerauLevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(DamerauLevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(DamerauLevenshteinDistance("", ""), 0u);
}

TEST(DamerauTest, MixedEdits) {
  // One transposition + one substitution.
  EXPECT_EQ(DamerauLevenshteinDistance("abcd", "bacx"), 2u);
}

TEST(LcsTest, Basic) {
  EXPECT_EQ(LongestCommonSubsequence("abcde", "ace"), 3u);
  EXPECT_EQ(LongestCommonSubsequence("abc", "xyz"), 0u);
  EXPECT_EQ(LongestCommonSubsequence("", "abc"), 0u);
}

TEST(LcsTest, SimilarityBounds) {
  EXPECT_DOUBLE_EQ(LcsSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LcsSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LcsSimilarity("abc", "xyz"), 0.0);
}

TEST(HammingTest, CountsMismatches) {
  EXPECT_EQ(HammingDistance("10110", "10011"), 2u);
  EXPECT_EQ(HammingDistance("", ""), 0u);
}

}  // namespace
}  // namespace humo::text
