#include "text/simd_similarity.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "text/tfidf.h"
#include "text/token_dictionary.h"

namespace humo::text {
namespace {

/// Sorted unique id set of size `n` drawn from [0, universe).
std::vector<uint32_t> RandomIdSet(Rng* rng, size_t n, uint32_t universe) {
  std::vector<uint32_t> ids;
  ids.reserve(n);
  while (ids.size() < n) {
    ids.push_back(static_cast<uint32_t>(rng->NextBelow(universe)));
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }
  return ids;
}

std::vector<double> RandomWeights(Rng* rng, size_t n) {
  std::vector<double> w(n);
  for (double& v : w) v = rng->NextDouble();
  return w;
}

/// Reference intersection via std::set_intersection.
size_t ReferenceIntersection(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out.size();
}

/// The size/sparsity grid every kernel test sweeps: sizes around the AVX2
/// lane width (8) plus larger skewed combinations, over a dense universe
/// (many collisions) and a sparse one (few).
const size_t kSizes[] = {0, 1, 2, 3, 7, 8, 9, 31, 64, 200};
const uint32_t kUniverses[] = {64, 1u << 20};

TEST(SortedIdIntersectionTest, MatchesReferenceOnGrid) {
  Rng rng(20260807);
  for (uint32_t universe : kUniverses) {
    for (size_t na : kSizes) {
      for (size_t nb : kSizes) {
        if (na > universe || nb > universe) continue;
        const auto a = RandomIdSet(&rng, na, universe);
        const auto b = RandomIdSet(&rng, nb, universe);
        EXPECT_EQ(SortedIdIntersection(a.data(), a.size(), b.data(), b.size()),
                  ReferenceIntersection(a, b))
            << "universe=" << universe << " na=" << na << " nb=" << nb;
      }
    }
  }
}

#if defined(__GNUC__) && defined(__x86_64__)
TEST(SortedIdIntersectionTest, Avx2BitIdenticalToScalarOnGrid) {
  if (!internal::CpuHasAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(987654321);
  for (uint32_t universe : kUniverses) {
    for (size_t na : kSizes) {
      for (size_t nb : kSizes) {
        if (na > universe || nb > universe) continue;
        const auto a = RandomIdSet(&rng, na, universe);
        const auto b = RandomIdSet(&rng, nb, universe);
        EXPECT_EQ(
            internal::SortedIdIntersectionAvx2(a.data(), a.size(), b.data(),
                                               b.size()),
            internal::SortedIdIntersectionScalar(a.data(), a.size(), b.data(),
                                                 b.size()))
            << "universe=" << universe << " na=" << na << " nb=" << nb;
      }
    }
  }
}

TEST(IdWeightedDotTest, Avx2BitIdenticalToScalarOnGrid) {
  if (!internal::CpuHasAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(13579);
  for (uint32_t universe : kUniverses) {
    for (size_t na : kSizes) {
      for (size_t nb : kSizes) {
        if (na > universe || nb > universe) continue;
        const auto a = RandomIdSet(&rng, na, universe);
        const auto b = RandomIdSet(&rng, nb, universe);
        const auto wa = RandomWeights(&rng, a.size());
        const auto wb = RandomWeights(&rng, b.size());
        const double simd = internal::IdWeightedDotAvx2(
            a.data(), wa.data(), a.size(), b.data(), wb.data(), b.size());
        const double scalar = internal::IdWeightedDotScalar(
            a.data(), wa.data(), a.size(), b.data(), wb.data(), b.size());
        // Bitwise equality, not tolerance: the AVX2 kernel only finds the
        // matching lane and accumulates scalar in the same order.
        EXPECT_EQ(simd, scalar)
            << "universe=" << universe << " na=" << na << " nb=" << nb;
      }
    }
  }
}
#endif  // __GNUC__ && __x86_64__

TEST(IdSetSimilarityTest, SetMetricConventions) {
  const std::vector<uint32_t> empty;
  const std::vector<uint32_t> one = {5};
  // Both empty: 1.0, matching JaccardSimilarity's string convention.
  EXPECT_EQ(IdSetSimilarity(empty.data(), 0, empty.data(), 0,
                            IdSetMetric::kJaccard),
            1.0);
  EXPECT_EQ(
      IdSetSimilarity(empty.data(), 0, empty.data(), 0, IdSetMetric::kDice),
      1.0);
  EXPECT_EQ(IdSetSimilarity(empty.data(), 0, empty.data(), 0,
                            IdSetMetric::kOverlap),
            1.0);
  // One side empty: 0.0.
  EXPECT_EQ(
      IdSetSimilarity(one.data(), 1, empty.data(), 0, IdSetMetric::kJaccard),
      0.0);
  // Identical singletons: 1.0 under every set metric.
  EXPECT_EQ(
      IdSetSimilarity(one.data(), 1, one.data(), 1, IdSetMetric::kJaccard),
      1.0);
  EXPECT_EQ(IdSetSimilarity(one.data(), 1, one.data(), 1, IdSetMetric::kDice),
            1.0);
  EXPECT_EQ(
      IdSetSimilarity(one.data(), 1, one.data(), 1, IdSetMetric::kOverlap),
      1.0);
}

TEST(IdSetSimilarityTest, JaccardValue) {
  const std::vector<uint32_t> a = {1, 2, 3, 4};
  const std::vector<uint32_t> b = {3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(
      IdSetSimilarity(a.data(), a.size(), b.data(), b.size(),
                      IdSetMetric::kJaccard),
      2.0 / 6.0);
  EXPECT_DOUBLE_EQ(IdSetSimilarity(a.data(), a.size(), b.data(), b.size(),
                                   IdSetMetric::kDice),
                   2.0 * 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(IdSetSimilarity(a.data(), a.size(), b.data(), b.size(),
                                   IdSetMetric::kOverlap),
                   2.0 / 4.0);
}

/// Builds IdSetColumns over a flat set of records for batch tests.
struct FlatColumns {
  std::vector<uint32_t> offsets{0};
  std::vector<uint32_t> ids;
  std::vector<double> weights;

  void AddRecord(const std::vector<uint32_t>& rec_ids,
                 const std::vector<double>& rec_w) {
    ids.insert(ids.end(), rec_ids.begin(), rec_ids.end());
    weights.insert(weights.end(), rec_w.begin(), rec_w.end());
    offsets.push_back(static_cast<uint32_t>(ids.size()));
  }

  IdSetColumns View() const { return {offsets.data(), ids.data(),
                                      weights.data()}; }
  size_t size() const { return offsets.size() - 1; }
};

FlatColumns RandomColumns(Rng* rng, size_t num_records, uint32_t universe) {
  FlatColumns cols;
  for (size_t r = 0; r < num_records; ++r) {
    const size_t n = kSizes[rng->NextBelow(std::size(kSizes))];
    const size_t capped = std::min<size_t>(n, universe / 2);
    auto ids = RandomIdSet(rng, capped, universe);
    auto w = RandomWeights(rng, ids.size());
    // L2-normalize so cosine lands in [0, 1].
    double norm = 0.0;
    for (double v : w) norm += v * v;
    if (norm > 0.0) {
      norm = std::sqrt(norm);
      for (double& v : w) v /= norm;
    }
    cols.AddRecord(ids, w);
  }
  return cols;
}

TEST(BatchIdSetSimilarityTest, MatchesPerPairCalls) {
  Rng rng(24680);
  const FlatColumns a = RandomColumns(&rng, 60, 512);
  const FlatColumns b = RandomColumns(&rng, 60, 512);
  std::vector<uint32_t> pa, pb;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); j += 7) {
      pa.push_back(static_cast<uint32_t>(i));
      pb.push_back(static_cast<uint32_t>(j));
    }
  }
  for (IdSetMetric metric :
       {IdSetMetric::kJaccard, IdSetMetric::kDice, IdSetMetric::kOverlap,
        IdSetMetric::kCosineTfIdf}) {
    std::vector<double> batch(pa.size());
    BatchIdSetSimilarity(a.View(), b.View(), pa.data(), pb.data(), pa.size(),
                         metric, batch.data());
    for (size_t k = 0; k < pa.size(); ++k) {
      const uint32_t ai = pa[k], bj = pb[k];
      const uint32_t ao = a.offsets[ai], bo = b.offsets[bj];
      const size_t an = a.offsets[ai + 1] - ao, bn = b.offsets[bj + 1] - bo;
      double expected;
      if (metric == IdSetMetric::kCosineTfIdf) {
        expected = IdWeightedDot(a.ids.data() + ao, a.weights.data() + ao, an,
                                 b.ids.data() + bo, b.weights.data() + bo, bn);
      } else {
        expected = IdSetSimilarity(a.ids.data() + ao, an, b.ids.data() + bo,
                                   bn, metric);
      }
      ASSERT_EQ(batch[k], expected) << "pair " << k;
    }
  }
}

TEST(BatchIdSetSimilarityTest, BitIdenticalAcrossThreadCounts) {
  Rng rng(112233);
  const FlatColumns a = RandomColumns(&rng, 200, 1024);
  const FlatColumns b = RandomColumns(&rng, 200, 1024);
  std::vector<uint32_t> pa, pb;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); j += 3) {
      pa.push_back(static_cast<uint32_t>(i));
      pb.push_back(static_cast<uint32_t>(j));
    }
  }
  ThreadPool::SetGlobalThreads(1);
  std::vector<double> serial(pa.size());
  BatchIdSetSimilarity(a.View(), b.View(), pa.data(), pb.data(), pa.size(),
                       IdSetMetric::kJaccard, serial.data());
  ThreadPool::SetGlobalThreads(4);
  std::vector<double> parallel(pa.size());
  BatchIdSetSimilarity(a.View(), b.View(), pa.data(), pb.data(), pa.size(),
                       IdSetMetric::kJaccard, parallel.data());
  ThreadPool::SetGlobalThreads(0);
  EXPECT_EQ(serial, parallel);
}

TEST(IdWeightedDotTest, AgreesWithTfIdfCosine) {
  // Same two documents through the string pipeline and the id pipeline;
  // the cosine must agree bitwise (same multiplies in ascending-id order).
  TokenDictionary dict;
  const std::vector<uint32_t> doc_a_ids = {dict.Intern("data"),
                                           dict.Intern("entity")};
  const std::vector<uint32_t> doc_b_ids = {dict.Intern("entity"),
                                           dict.Intern("match")};
  dict.CountDocument(doc_a_ids.data(), doc_a_ids.size());
  dict.CountDocument(doc_b_ids.data(), doc_b_ids.size());

  TfIdfModel model;
  model.FitDictionary(dict);

  const std::vector<uint32_t> tf = {1, 1};
  std::vector<double> wa(2), wb(2);
  // TransformIds expects ascending ids; both docs were interned in
  // ascending first-seen order already.
  model.TransformIds(doc_a_ids.data(), tf.data(), 2, wa.data());
  model.TransformIds(doc_b_ids.data(), tf.data(), 2, wb.data());

  const double id_cosine =
      IdWeightedDot(doc_a_ids.data(), wa.data(), 2, doc_b_ids.data(),
                    wb.data(), 2);
  const double string_cosine =
      TfIdfModel::Cosine(model.Transform({"data", "entity"}),
                         model.Transform({"entity", "match"}));
  EXPECT_NEAR(id_cosine, string_cosine, 1e-12);
}

}  // namespace
}  // namespace humo::text
