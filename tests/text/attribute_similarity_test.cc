#include "text/attribute_similarity.h"

#include <gtest/gtest.h>

#include "text/jaro.h"
#include "text/token_similarity.h"

namespace humo::text {
namespace {

AggregatedSimilarity MakeTwoAttributeSim(double w1, double w2) {
  std::vector<AttributeSpec> specs;
  specs.push_back({"title",
                   [](std::string_view a, std::string_view b) {
                     return JaccardSimilarity(a, b);
                   },
                   w1});
  specs.push_back({"venue",
                   [](std::string_view a, std::string_view b) {
                     return JaroWinklerSimilarity(a, b);
                   },
                   w2});
  return AggregatedSimilarity(std::move(specs));
}

TEST(AggregatedSimilarityTest, IdenticalRecordsScoreOne) {
  auto sim = MakeTwoAttributeSim(1.0, 1.0);
  const std::vector<std::string> r = {"entity matching", "icde"};
  EXPECT_NEAR(sim(r, r), 1.0, 1e-12);
}

TEST(AggregatedSimilarityTest, CompletelyDifferentScoreLow) {
  auto sim = MakeTwoAttributeSim(1.0, 1.0);
  const std::vector<std::string> a = {"alpha beta", "xxxx"};
  const std::vector<std::string> b = {"gamma delta", "yyyy"};
  EXPECT_LT(sim(a, b), 0.3);
}

TEST(AggregatedSimilarityTest, WeightsShiftTheScore) {
  // First attribute matches perfectly; second not at all.
  const std::vector<std::string> a = {"same title", "zzzz"};
  const std::vector<std::string> b = {"same title", "qqqq"};
  auto title_heavy = MakeTwoAttributeSim(9.0, 1.0);
  auto venue_heavy = MakeTwoAttributeSim(1.0, 9.0);
  EXPECT_GT(title_heavy(a, b), venue_heavy(a, b));
}

TEST(AggregatedSimilarityTest, MissingValueContributesZero) {
  auto sim = MakeTwoAttributeSim(1.0, 1.0);
  const std::vector<std::string> full = {"entity matching", "icde"};
  const std::vector<std::string> missing = {"entity matching", ""};
  // venue contributes 0 when missing: sim = 0.5 * 1.0.
  EXPECT_NEAR(sim(full, missing), 0.5, 1e-9);
}

TEST(AggregatedSimilarityTest, ResultAlwaysInUnitInterval) {
  auto sim = MakeTwoAttributeSim(3.0, 2.0);
  const std::vector<std::string> a = {"one two three", "venue a"};
  const std::vector<std::string> b = {"two three four", "venue b"};
  const double s = sim(a, b);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(WeightsFromDistinctCountsTest, CountsDistinctValues) {
  std::vector<std::vector<std::string>> records = {
      {"a", "x"}, {"b", "x"}, {"c", "x"}, {"a", "y"}};
  const auto w = AggregatedSimilarity::WeightsFromDistinctCounts(records, 2);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 3.0);  // a, b, c
  EXPECT_DOUBLE_EQ(w[1], 2.0);  // x, y
}

TEST(WeightsFromDistinctCountsTest, EmptyValuesIgnoredAndFloorOne) {
  std::vector<std::vector<std::string>> records = {{"", ""}, {"", ""}};
  const auto w = AggregatedSimilarity::WeightsFromDistinctCounts(records, 2);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 1.0);
}

}  // namespace
}  // namespace humo::text
