#include "text/token_similarity.h"

#include <gtest/gtest.h>

namespace humo::text {
namespace {

TEST(JaccardTest, IdenticalSets) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity(std::vector<std::string>{"a", "b"},
                                     std::vector<std::string>{"b", "a"}),
                   1.0);
}

TEST(JaccardTest, DisjointSets) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity(std::vector<std::string>{"a"},
                                     std::vector<std::string>{"b"}),
                   0.0);
}

TEST(JaccardTest, PartialOverlap) {
  // {a,b,c} vs {b,c,d}: 2 shared / 4 union = 0.5.
  EXPECT_DOUBLE_EQ(
      JaccardSimilarity(std::vector<std::string>{"a", "b", "c"},
                        std::vector<std::string>{"b", "c", "d"}),
      0.5);
}

TEST(JaccardTest, BothEmpty) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity(std::vector<std::string>{},
                                     std::vector<std::string>{}),
                   1.0);
}

TEST(JaccardTest, OneEmpty) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, std::vector<std::string>{}), 0.0);
}

TEST(JaccardTest, DuplicatesIgnored) {
  EXPECT_DOUBLE_EQ(
      JaccardSimilarity(std::vector<std::string>{"a", "a", "b"},
                        std::vector<std::string>{"a", "b", "b"}),
      1.0);
}

TEST(JaccardTest, StringOverloadNormalizes) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity("The Quick FOX!", "quick fox, the"), 1.0);
}

TEST(DiceTest, KnownValue) {
  // 2*2 / (3+3) = 0.666...
  EXPECT_NEAR(DiceSimilarity({"a", "b", "c"}, {"b", "c", "d"}), 2.0 / 3.0,
              1e-12);
}

TEST(DiceTest, Extremes) {
  EXPECT_DOUBLE_EQ(DiceSimilarity({"a"}, {"a"}), 1.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity({"a"}, {}), 0.0);
}

TEST(OverlapTest, SubsetGivesOne) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a", "b"}, {"a", "b", "c", "d"}), 1.0);
}

TEST(OverlapTest, Extremes) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a"}, {"b"}), 0.0);
}

TEST(QGramJaccardTest, SimilarStringsScoreHigh) {
  const double close = QGramJaccard("database", "databse");
  const double far = QGramJaccard("database", "airplane");
  EXPECT_GT(close, far);
  EXPECT_GT(close, 0.5);
}

TEST(QGramJaccardTest, IdenticalAndDisjoint) {
  EXPECT_DOUBLE_EQ(QGramJaccard("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(QGramJaccard("", ""), 1.0);
}

TEST(MongeElkanTest, IdenticalTokenLists) {
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({"john", "smith"}, {"john", "smith"}),
                   1.0);
}

TEST(MongeElkanTest, TypoTolerant) {
  const double s = MongeElkanSimilarity({"john", "smith"}, {"jon", "smyth"});
  EXPECT_GT(s, 0.8);
  EXPECT_LT(s, 1.0);
}

TEST(MongeElkanTest, Extremes) {
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({"a"}, {}), 0.0);
}

TEST(MongeElkanTest, AsymmetricByDesign) {
  // One-token list against superset scores the best single match.
  const double forward = MongeElkanSimilarity({"smith"}, {"smith", "zzz"});
  const double backward = MongeElkanSimilarity({"smith", "zzz"}, {"smith"});
  EXPECT_DOUBLE_EQ(forward, 1.0);
  EXPECT_LT(backward, 1.0);
}

}  // namespace
}  // namespace humo::text
