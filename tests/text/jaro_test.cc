#include "text/jaro.h"

#include <gtest/gtest.h>

namespace humo::text {
namespace {

TEST(JaroTest, IdenticalStrings) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("martha", "martha"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
}

TEST(JaroTest, EmptyAgainstNonEmpty) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
}

TEST(JaroTest, NoCommonCharacters) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroTest, KnownValueMarthaMarhta) {
  // Classic reference pair: jaro(martha, marhta) = 0.944444...
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
}

TEST(JaroTest, KnownValueDixonDicksonx) {
  // Second classic reference pair: ~0.766667.
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.766667, 1e-5);
}

TEST(JaroTest, Symmetry) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("dwayne", "duane"),
                   JaroSimilarity("duane", "dwayne"));
}

TEST(JaroWinklerTest, BoostsCommonPrefix) {
  const double jaro = JaroSimilarity("martha", "marhta");
  const double jw = JaroWinklerSimilarity("martha", "marhta");
  EXPECT_GT(jw, jaro);
  EXPECT_NEAR(jw, 0.961111, 1e-5);
}

TEST(JaroWinklerTest, NoPrefixNoBoost) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abcd", "xbcd"),
                   JaroSimilarity("abcd", "xbcd"));
}

TEST(JaroWinklerTest, PrefixCappedAtFour) {
  // Prefix length 4 and 6 should receive the same boost factor.
  const double jw4 = JaroWinklerSimilarity("abcdXY", "abcdZW");
  const double jw_same =
      JaroWinklerSimilarity("abcdXY", "abcdZW", 0.1, /*max_prefix=*/6);
  EXPECT_DOUBLE_EQ(jw4, jw_same);  // only 4 chars actually agree
}

TEST(JaroWinklerTest, NeverExceedsOne) {
  EXPECT_LE(JaroWinklerSimilarity("aaaa", "aaaa"), 1.0);
  EXPECT_LE(JaroWinklerSimilarity("prefix", "prefixes"), 1.0);
}

TEST(JaroWinklerTest, InUnitInterval) {
  const char* samples[] = {"", "a", "ab", "entity", "resolution", "volt"};
  for (const char* a : samples) {
    for (const char* b : samples) {
      const double s = JaroWinklerSimilarity(a, b);
      EXPECT_GE(s, 0.0) << a << " vs " << b;
      EXPECT_LE(s, 1.0) << a << " vs " << b;
    }
  }
}

}  // namespace
}  // namespace humo::text
