#include "core/partition.h"

#include <gtest/gtest.h>

#include "data/logistic_generator.h"

namespace humo::core {
namespace {

data::Workload UniformWorkload(size_t n) {
  std::vector<data::InstancePair> pairs;
  for (uint32_t i = 0; i < n; ++i) {
    pairs.push_back(
        {i, i, static_cast<double>(i) / static_cast<double>(n), false});
  }
  return data::Workload(std::move(pairs));
}

TEST(PartitionTest, EqualSubsetSizes) {
  const data::Workload w = UniformWorkload(1000);
  SubsetPartition p(&w, 100);
  EXPECT_EQ(p.num_subsets(), 10u);
  for (size_t k = 0; k < 10; ++k) EXPECT_EQ(p[k].size(), 100u);
}

TEST(PartitionTest, LastSubsetAbsorbsRemainder) {
  const data::Workload w = UniformWorkload(1050);
  SubsetPartition p(&w, 100);
  EXPECT_EQ(p.num_subsets(), 10u);
  EXPECT_EQ(p[9].size(), 150u);
}

TEST(PartitionTest, FewerPairsThanSubsetSize) {
  const data::Workload w = UniformWorkload(30);
  SubsetPartition p(&w, 100);
  EXPECT_EQ(p.num_subsets(), 1u);
  EXPECT_EQ(p[0].size(), 30u);
}

TEST(PartitionTest, SubsetsAreContiguousAndCoverAll) {
  const data::Workload w = UniformWorkload(777);
  SubsetPartition p(&w, 50);
  size_t expected_begin = 0;
  for (size_t k = 0; k < p.num_subsets(); ++k) {
    EXPECT_EQ(p[k].begin, expected_begin);
    expected_begin = p[k].end;
  }
  EXPECT_EQ(expected_begin, w.size());
}

TEST(PartitionTest, AvgSimilaritiesAreMonotone) {
  const data::Workload w = UniformWorkload(1000);
  SubsetPartition p(&w, 100);
  for (size_t k = 1; k < p.num_subsets(); ++k) {
    EXPECT_GT(p[k].avg_similarity, p[k - 1].avg_similarity);
  }
}

TEST(PartitionTest, AvgSimilarityValue) {
  const data::Workload w = UniformWorkload(10);
  SubsetPartition p(&w, 5);
  // First subset holds similarities 0.0..0.4: mean 0.2.
  EXPECT_NEAR(p[0].avg_similarity, 0.2, 1e-9);
}

TEST(PartitionTest, PairsInRange) {
  const data::Workload w = UniformWorkload(1000);
  SubsetPartition p(&w, 100);
  EXPECT_EQ(p.PairsInRange(0, 9), 1000u);
  EXPECT_EQ(p.PairsInRange(2, 4), 300u);
  EXPECT_EQ(p.PairsInRange(5, 5), 100u);
  EXPECT_EQ(p.PairsInRange(7, 3), 0u);  // inverted range
}

TEST(PartitionTest, SubsetOf) {
  const data::Workload w = UniformWorkload(1000);
  SubsetPartition p(&w, 100);
  EXPECT_EQ(p.SubsetOf(0), 0u);
  EXPECT_EQ(p.SubsetOf(99), 0u);
  EXPECT_EQ(p.SubsetOf(100), 1u);
  EXPECT_EQ(p.SubsetOf(999), 9u);
}

TEST(PartitionTest, SubsetOfRemainderTail) {
  const data::Workload w = UniformWorkload(1050);
  SubsetPartition p(&w, 100);
  EXPECT_EQ(p.SubsetOf(1049), 9u);  // absorbed by the final subset
}

TEST(PartitionTest, EmptyWorkload) {
  const data::Workload w;
  SubsetPartition p(&w, 100);
  EXPECT_EQ(p.num_subsets(), 0u);
}

}  // namespace
}  // namespace humo::core
