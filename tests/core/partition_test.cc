#include "core/partition.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/logistic_generator.h"

namespace humo::core {
namespace {

data::Workload UniformWorkload(size_t n) {
  std::vector<data::InstancePair> pairs;
  for (uint32_t i = 0; i < n; ++i) {
    pairs.push_back(
        {i, i, static_cast<double>(i) / static_cast<double>(n), false});
  }
  return data::Workload(std::move(pairs));
}

TEST(PartitionTest, EqualSubsetSizes) {
  const data::Workload w = UniformWorkload(1000);
  SubsetPartition p(&w, 100);
  EXPECT_EQ(p.num_subsets(), 10u);
  for (size_t k = 0; k < 10; ++k) EXPECT_EQ(p[k].size(), 100u);
}

TEST(PartitionTest, LastSubsetAbsorbsRemainder) {
  const data::Workload w = UniformWorkload(1050);
  SubsetPartition p(&w, 100);
  EXPECT_EQ(p.num_subsets(), 10u);
  EXPECT_EQ(p[9].size(), 150u);
}

TEST(PartitionTest, FewerPairsThanSubsetSize) {
  const data::Workload w = UniformWorkload(30);
  SubsetPartition p(&w, 100);
  EXPECT_EQ(p.num_subsets(), 1u);
  EXPECT_EQ(p[0].size(), 30u);
}

TEST(PartitionTest, SubsetsAreContiguousAndCoverAll) {
  const data::Workload w = UniformWorkload(777);
  SubsetPartition p(&w, 50);
  size_t expected_begin = 0;
  for (size_t k = 0; k < p.num_subsets(); ++k) {
    EXPECT_EQ(p[k].begin, expected_begin);
    expected_begin = p[k].end;
  }
  EXPECT_EQ(expected_begin, w.size());
}

TEST(PartitionTest, AvgSimilaritiesAreMonotone) {
  const data::Workload w = UniformWorkload(1000);
  SubsetPartition p(&w, 100);
  for (size_t k = 1; k < p.num_subsets(); ++k) {
    EXPECT_GT(p[k].avg_similarity, p[k - 1].avg_similarity);
  }
}

TEST(PartitionTest, AvgSimilarityValue) {
  const data::Workload w = UniformWorkload(10);
  SubsetPartition p(&w, 5);
  // First subset holds similarities 0.0..0.4: mean 0.2.
  EXPECT_NEAR(p[0].avg_similarity, 0.2, 1e-9);
}

TEST(PartitionTest, PairsInRange) {
  const data::Workload w = UniformWorkload(1000);
  SubsetPartition p(&w, 100);
  EXPECT_EQ(p.PairsInRange(0, 9), 1000u);
  EXPECT_EQ(p.PairsInRange(2, 4), 300u);
  EXPECT_EQ(p.PairsInRange(5, 5), 100u);
  EXPECT_EQ(p.PairsInRange(7, 3), 0u);  // inverted range
}

TEST(PartitionTest, SubsetOf) {
  const data::Workload w = UniformWorkload(1000);
  SubsetPartition p(&w, 100);
  EXPECT_EQ(p.SubsetOf(0), 0u);
  EXPECT_EQ(p.SubsetOf(99), 0u);
  EXPECT_EQ(p.SubsetOf(100), 1u);
  EXPECT_EQ(p.SubsetOf(999), 9u);
}

TEST(PartitionTest, SubsetOfRemainderTail) {
  const data::Workload w = UniformWorkload(1050);
  SubsetPartition p(&w, 100);
  EXPECT_EQ(p.SubsetOf(1049), 9u);  // absorbed by the final subset
}

TEST(PartitionTest, EmptyWorkload) {
  const data::Workload w;
  SubsetPartition p(&w, 100);
  EXPECT_EQ(p.num_subsets(), 0u);
}

void ExpectBitwiseEqual(const SubsetPartition& a, const SubsetPartition& b) {
  ASSERT_EQ(a.num_subsets(), b.num_subsets());
  for (size_t k = 0; k < a.num_subsets(); ++k) {
    EXPECT_EQ(a[k].begin, b[k].begin) << k;
    EXPECT_EQ(a[k].end, b[k].end) << k;
    EXPECT_EQ(a[k].avg_similarity, b[k].avg_similarity) << k;
  }
}

TEST(PartitionRebuildTest, RebuildMatchesFreshConstructionAfterInteriorMerge) {
  Rng rng(31);
  for (int rep = 0; rep < 10; ++rep) {
    data::Workload w = UniformWorkload(400 + rep * 57);
    SubsetPartition p(&w, 100);
    std::vector<data::InstancePair> extra;
    for (uint32_t i = 0; i < 150; ++i) {
      extra.push_back({5000 + i, i, rng.NextDouble(), rng.NextBernoulli(0.3)});
    }
    w.MergeSorted(std::move(extra));
    p.Rebuild();
    ExpectBitwiseEqual(p, SubsetPartition(&w, 100));
  }
}

TEST(PartitionRebuildTest, RebuildTailMatchesFreshConstructionAfterAppend) {
  Rng rng(37);
  for (int rep = 0; rep < 10; ++rep) {
    data::Workload w = UniformWorkload(350 + rep * 41);
    SubsetPartition p(&w, 100);
    const size_t preserved =
        w.size() / 100 >= 1 ? w.size() / 100 - 1 : 0;
    std::vector<data::InstancePair> extra;
    for (uint32_t i = 0; i < 130; ++i) {
      // Similarities strictly above the existing range: a pure tail append.
      extra.push_back({6000 + i, i, 1.0 + rng.NextDouble(), false});
    }
    ASSERT_TRUE(w.MergeSorted(std::move(extra)));
    p.RebuildTail(preserved);
    ExpectBitwiseEqual(p, SubsetPartition(&w, 100));
  }
}

TEST(PartitionRebuildTest, RebuildTailFromSingleAbsorbingSubset) {
  data::Workload w = UniformWorkload(60);  // below one subset
  SubsetPartition p(&w, 100);
  ASSERT_EQ(p.num_subsets(), 1u);
  std::vector<data::InstancePair> extra;
  for (uint32_t i = 0; i < 180; ++i) {
    extra.push_back({7000 + i, i, 1.0 + 0.001 * static_cast<double>(i),
                     false});
  }
  ASSERT_TRUE(w.MergeSorted(std::move(extra)));
  p.RebuildTail(0);
  ExpectBitwiseEqual(p, SubsetPartition(&w, 100));
  EXPECT_EQ(p.num_subsets(), 2u);
}

TEST(PartitionRebuildTest, RebuildOnShrunkToEmptyWorkload) {
  data::Workload w = UniformWorkload(250);
  SubsetPartition p(&w, 100);
  data::Workload empty;
  SubsetPartition q(&empty, 100);
  q.Rebuild();
  EXPECT_EQ(q.num_subsets(), 0u);
  (void)p;
}

}  // namespace
}  // namespace humo::core
