#include "core/crowd_tasks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/oracle.h"
#include "core/partial_sampling_optimizer.h"
#include "core/partition.h"
#include "core/solution.h"
#include "data/entity_graph_generator.h"
#include "eval/evaluation.h"

namespace humo::core {
namespace {

/// Dedup-style workload (both sides of every pair drawn from one table)
/// with hand-picked record ids, distinct similarities so the sorted pair
/// order is exactly the construction order.
data::Workload MakeRecordWorkload(
    const std::vector<std::pair<uint32_t, uint32_t>>& record_pairs) {
  std::vector<data::InstancePair> pairs;
  double sim = 0.01;
  for (const auto& [l, r] : record_pairs) {
    data::InstancePair p;
    p.left_id = l;
    p.right_id = r;
    p.similarity = sim;
    sim += 0.01;
    pairs.push_back(p);
  }
  return data::Workload(std::move(pairs));
}

CrowdTaskOptions DedupOptions(size_t capacity) {
  CrowdTaskOptions o;
  o.task_capacity = capacity;
  o.left_source = 0;
  o.right_source = 0;  // one table: shared record ids must connect
  return o;
}

TEST(PackCrowdTasksTest, ExactCeilCountAndCapacity) {
  // Pairs 0..6 over disjoint records.
  std::vector<std::pair<uint32_t, uint32_t>> rp;
  for (uint32_t i = 0; i < 7; ++i) rp.push_back({100 + 2 * i, 101 + 2 * i});
  const data::Workload w = MakeRecordWorkload(rp);
  std::vector<size_t> indices = {0, 1, 2, 3, 4, 5, 6};
  const auto tasks = PackCrowdTasks(w, indices, DedupOptions(3));
  ASSERT_EQ(tasks.size(), 3u);  // ceil(7 / 3)
  EXPECT_EQ(tasks[0].pair_indices.size(), 3u);
  EXPECT_EQ(tasks[1].pair_indices.size(), 3u);
  EXPECT_EQ(tasks[2].pair_indices.size(), 1u);
}

TEST(PackCrowdTasksTest, DeterministicUnderInputOrderAndDuplicates) {
  std::vector<std::pair<uint32_t, uint32_t>> rp;
  for (uint32_t i = 0; i < 10; ++i) rp.push_back({2 * i, 2 * i + 1});
  const data::Workload w = MakeRecordWorkload(rp);
  const auto a =
      PackCrowdTasks(w, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, DedupOptions(4));
  const auto b =
      PackCrowdTasks(w, {9, 7, 5, 3, 1, 8, 6, 4, 2, 0, 0, 5}, DedupOptions(4));
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].pair_indices, b[t].pair_indices) << "task " << t;
  }
}

TEST(PackCrowdTasksTest, CorrelatedPairsShareATask) {
  // Pairs 0..2 form one record chain (1-2, 2-3, 3-4); pairs 3..4 another
  // (10-11, 11-12); pairs 5..8 are disjoint fillers interleaved AFTER.
  const data::Workload w = MakeRecordWorkload({{1, 2},
                                               {2, 3},
                                               {3, 4},
                                               {10, 11},
                                               {11, 12},
                                               {20, 21},
                                               {30, 31},
                                               {40, 41},
                                               {50, 51}});
  const auto tasks =
      PackCrowdTasks(w, {5, 0, 6, 3, 1, 7, 4, 2, 8}, DedupOptions(5));
  ASSERT_EQ(tasks.size(), 2u);  // ceil(9 / 5)
  // Components ordered by smallest member: {0,1,2} then {3,4} then fillers —
  // both chains land whole in the first task.
  EXPECT_EQ(tasks[0].pair_indices,
            (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(tasks[1].pair_indices, (std::vector<size_t>{5, 6, 7, 8}));
}

TEST(PackCrowdTasksTest, EmptyInputAndCapacityClamp) {
  const data::Workload w = MakeRecordWorkload({{1, 2}});
  EXPECT_TRUE(PackCrowdTasks(w, {}, DedupOptions(3)).empty());
  // Capacity 0 clamps to 1: one pair per task.
  const auto tasks = PackCrowdTasks(w, {0}, DedupOptions(0));
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].pair_indices.size(), 1u);
}

TEST(TransitiveInferenceTest, TransitivityAndAntiTransitivity) {
  TransitiveInference inf;
  EXPECT_EQ(inf.Infer(1, 1), TransitiveInference::kMatch);  // reflexivity
  EXPECT_EQ(inf.Infer(1, 2), TransitiveInference::kUnknown);
  inf.Observe(1, 2, true);
  inf.Observe(2, 3, true);
  EXPECT_EQ(inf.Infer(1, 3), TransitiveInference::kMatch);  // a=b, b=c => a=c
  inf.Observe(3, 4, false);
  EXPECT_EQ(inf.Infer(1, 4), TransitiveInference::kNonMatch);  // a=c, c!=d
  EXPECT_EQ(inf.Infer(4, 1), TransitiveInference::kNonMatch);  // symmetric
  EXPECT_EQ(inf.Infer(4, 5), TransitiveInference::kUnknown);
  EXPECT_EQ(inf.num_records(), 4u);
  EXPECT_EQ(inf.merges(), 2u);
  EXPECT_EQ(inf.negative_edges(), 1u);
  EXPECT_EQ(inf.conflicts_dropped(), 0u);
}

TEST(TransitiveInferenceTest, FirstPurchaseWinsOnConflict) {
  TransitiveInference inf;
  inf.Observe(1, 2, true);
  inf.Observe(2, 3, true);
  // Contradicts the closure 1=3: dropped, closure unchanged.
  inf.Observe(1, 3, false);
  EXPECT_EQ(inf.conflicts_dropped(), 1u);
  EXPECT_EQ(inf.Infer(1, 3), TransitiveInference::kMatch);
  // And the mirror case: a negative edge blocks a later merge.
  inf.Observe(10, 11, false);
  inf.Observe(10, 11, true);
  EXPECT_EQ(inf.conflicts_dropped(), 2u);
  EXPECT_EQ(inf.Infer(10, 11), TransitiveInference::kNonMatch);
}

TEST(TransitiveInferenceTest, NegativeEdgesSurviveAndCollapseAcrossMerges) {
  TransitiveInference inf;
  inf.Observe(1, 5, false);
  inf.Observe(2, 5, false);
  EXPECT_EQ(inf.negative_edges(), 2u);
  // Merging {1} and {2} collapses their two edges to node 5 into one.
  inf.Observe(1, 2, true);
  EXPECT_EQ(inf.negative_edges(), 1u);
  EXPECT_EQ(inf.Infer(2, 5), TransitiveInference::kNonMatch);
  EXPECT_EQ(inf.Infer(1, 5), TransitiveInference::kNonMatch);
}

data::EntityGraph SmallEntityGraph(uint64_t seed = 20260808) {
  data::EntityGraphConfig cfg;
  cfg.num_entities = 400;
  cfg.seed = seed;
  return data::GenerateEntityGraph(cfg);
}

TEST(CrowdTaskBrokerTest, InferenceIsSoundUnderPerfectCrowd) {
  // Transitively consistent truth + perfect crowd: every broker answer —
  // purchased, inferred by transitivity, or inferred by anti-transitivity —
  // must equal the ground truth. In particular anti-transitivity never
  // prunes a true match, and the closure never contradicts a verdict.
  const data::EntityGraph g = SmallEntityGraph();
  const data::Workload& w = g.workload;
  CrowdOptions co;
  co.worker_error_rate = 0.0;
  CrowdOracle crowd(&w, co);
  CrowdTaskBroker broker(&w, &crowd, DedupOptions(10));

  // Feed the whole workload in batches, the provider-contract shape.
  for (size_t begin = 0; begin < w.size(); begin += 512) {
    const size_t end = std::min(begin + 512, w.size());
    std::vector<size_t> batch;
    for (size_t i = begin; i < end; ++i) batch.push_back(i);
    const std::vector<char> answers = broker.Answer(batch);
    for (size_t t = 0; t < batch.size(); ++t) {
      ASSERT_EQ(answers[t] != 0, w.IsMatch(batch[t])) << "pair " << batch[t];
    }
  }
  const CrowdTaskStats& s = broker.stats();
  EXPECT_EQ(s.pairs_answered(), w.size());
  EXPECT_GT(s.pairs_inferred_match, 0u);
  EXPECT_GT(s.pairs_inferred_nonmatch, 0u);
  EXPECT_LT(s.pairs_purchased, w.size());
  EXPECT_EQ(broker.inference().conflicts_dropped(), 0u);
  // Task-denominated cost: strictly fewer tasks than purchased pairs, and
  // every task except possibly per-round tails holds several pairs.
  EXPECT_LT(s.tasks_posted, s.pairs_purchased);
}

TEST(CrowdTaskBrokerTest, InferenceNeverContradictsPurchasedVerdicts) {
  // Noisy crowd: verdicts can be wrong and mutually inconsistent. The
  // broker must still (a) serve every purchased pair its purchased verdict
  // and (b) keep repeat queries bit-stable.
  const data::EntityGraph g = SmallEntityGraph();
  const data::Workload& w = g.workload;
  CrowdOptions co;
  co.worker_error_rate = 0.35;
  co.workers_per_pair = 1;
  CrowdOracle crowd(&w, co);
  CrowdTaskBroker broker(&w, &crowd, DedupOptions(10));

  std::unordered_map<size_t, char> first_answer;
  for (size_t begin = 0; begin < w.size(); begin += 256) {
    const size_t end = std::min(begin + 256, w.size());
    std::vector<size_t> batch;
    for (size_t i = begin; i < end; ++i) batch.push_back(i);
    const std::vector<char> answers = broker.Answer(batch);
    for (size_t t = 0; t < batch.size(); ++t) {
      first_answer[batch[t]] = answers[t];
    }
  }
  // Noise on a transitively consistent truth must have produced conflicts —
  // otherwise this test exercises nothing.
  EXPECT_GT(broker.inference().conflicts_dropped(), 0u);
  for (const auto& [i, a] : first_answer) {
    if (crowd.WasAsked(i)) {
      EXPECT_EQ(a != 0, crowd.CachedAnswer(i)) << "pair " << i;
    }
  }
  // Re-asking everything is free (no new tasks) and bit-identical.
  const CrowdTaskStats before = broker.stats();
  std::vector<size_t> all(w.size());
  for (size_t i = 0; i < w.size(); ++i) all[i] = i;
  const std::vector<char> again = broker.Answer(all);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(again[i], first_answer[i]) << "pair " << i;
  }
  EXPECT_EQ(broker.stats().tasks_posted, before.tasks_posted);
  EXPECT_EQ(broker.stats().pairs_purchased, before.pairs_purchased);
}

struct PipelineRun {
  std::vector<int> labels;
  size_t questions = 0;        // oracle.cost(): distinct pairs asked
  size_t total_requests = 0;
  size_t duplicate_requests = 0;
  double precision = 0.0;
  double recall = 0.0;
  CrowdTaskStats stats;
};

PipelineRun RunSampPipeline(const data::Workload& w, bool through_broker,
                            uint64_t seed = 1000) {
  const SubsetPartition partition(&w, 200);
  const QualityRequirement req{0.9, 0.9, 0.9};
  Oracle oracle(&w);
  CrowdOptions co;
  co.worker_error_rate = 0.0;
  CrowdOracle crowd(&w, co);
  CrowdTaskBroker broker(&w, &crowd, DedupOptions(10));
  if (through_broker) oracle.SetAnswerProvider(broker.Provider());

  PartialSamplingOptions opts;
  opts.seed = seed;
  auto sol = PartialSamplingOptimizer(opts).Optimize(partition, req, &oracle);
  EXPECT_TRUE(sol.ok());
  PipelineRun run;
  if (!sol.ok()) return run;
  const ResolutionResult res = ApplySolution(partition, *sol, &oracle);
  const eval::Quality q = eval::QualityOf(w, res.labels);
  run.labels = res.labels;
  run.questions = oracle.cost();
  run.total_requests = oracle.total_requests();
  run.duplicate_requests = oracle.duplicate_requests();
  run.precision = q.precision;
  run.recall = q.recall;
  run.stats = broker.stats();
  return run;
}

TEST(CrowdTaskBrokerTest, SampThroughBrokerIsBitIdenticalToInline) {
  // The AnswerProvider contract: routing changes who answers, never the
  // values. A perfect crowd on a transitively consistent truth answers
  // exactly what the inline oracle would, so the ENTIRE pipeline — labels,
  // guarantee, cost counters — replays bit for bit.
  const data::EntityGraph g = SmallEntityGraph();
  const PipelineRun inline_run = RunSampPipeline(g.workload, false);
  const PipelineRun broker_run = RunSampPipeline(g.workload, true);
  EXPECT_EQ(inline_run.labels, broker_run.labels);
  EXPECT_EQ(inline_run.questions, broker_run.questions);
  EXPECT_EQ(inline_run.total_requests, broker_run.total_requests);
  EXPECT_EQ(inline_run.duplicate_requests, broker_run.duplicate_requests);
  EXPECT_EQ(inline_run.precision, broker_run.precision);
  EXPECT_EQ(inline_run.recall, broker_run.recall);
  EXPECT_GE(broker_run.precision, 0.9);
  EXPECT_GE(broker_run.recall, 0.9);

  // The crowd-cost punchline, asserted (ISSUE acceptance): the same
  // guarantee is certified with task-denominated cost well under the
  // question count — packing plus inference, each alone visible here.
  const CrowdTaskStats& s = broker_run.stats;
  EXPECT_EQ(s.pairs_answered(), broker_run.questions);
  EXPECT_LE(s.tasks_posted, broker_run.questions);
  EXPECT_LT(static_cast<double>(s.tasks_posted),
            0.8 * static_cast<double>(broker_run.questions));
  EXPECT_GT(s.pairs_inferred(), 0u);
}

TEST(CrowdTaskBrokerTest, BitIdenticalAtAnyThreadCount) {
  const data::EntityGraph g = SmallEntityGraph();
  auto run = [&](size_t threads) {
    ThreadPool::SetGlobalThreads(threads);
    return RunSampPipeline(g.workload, true);
  };
  const PipelineRun serial = run(1);
  const PipelineRun parallel = run(4);
  ThreadPool::SetGlobalThreads(0);
  EXPECT_EQ(serial.labels, parallel.labels);
  EXPECT_EQ(serial.questions, parallel.questions);
  EXPECT_EQ(serial.stats.tasks_posted, parallel.stats.tasks_posted);
  EXPECT_EQ(serial.stats.pairs_purchased, parallel.stats.pairs_purchased);
  EXPECT_EQ(serial.stats.pairs_inferred_match,
            parallel.stats.pairs_inferred_match);
  EXPECT_EQ(serial.stats.pairs_inferred_nonmatch,
            parallel.stats.pairs_inferred_nonmatch);
  EXPECT_EQ(serial.stats.worker_answers, parallel.stats.worker_answers);
}

TEST(CrowdTaskBrokerTest, InferenceTogglesAreHonored) {
  const data::EntityGraph g = SmallEntityGraph();
  const data::Workload& w = g.workload;
  CrowdOptions co;
  co.worker_error_rate = 0.0;
  std::vector<size_t> all(w.size());
  for (size_t i = 0; i < w.size(); ++i) all[i] = i;

  {
    CrowdTaskOptions to = DedupOptions(10);
    to.infer_transitivity = false;
    to.infer_anti_transitivity = false;
    CrowdOracle crowd(&w, co);
    CrowdTaskBroker broker(&w, &crowd, to);
    broker.Answer(all);
    EXPECT_EQ(broker.stats().pairs_inferred(), 0u);
    EXPECT_EQ(broker.stats().pairs_purchased, w.size());
  }
  {
    CrowdTaskOptions to = DedupOptions(10);
    to.infer_anti_transitivity = false;
    CrowdOracle crowd(&w, co);
    CrowdTaskBroker broker(&w, &crowd, to);
    broker.Answer(all);
    EXPECT_GT(broker.stats().pairs_inferred_match, 0u);
    EXPECT_EQ(broker.stats().pairs_inferred_nonmatch, 0u);
  }
}

}  // namespace
}  // namespace humo::core
