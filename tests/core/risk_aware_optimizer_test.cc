#include "core/risk_aware_optimizer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/estimation_engine.h"
#include "core/hybrid_optimizer.h"
#include "core/partial_sampling_optimizer.h"
#include "core/risk_model.h"
#include "core/solution.h"
#include "data/pair_simulator.h"
#include "eval/evaluation.h"
#include "gp/kernel.h"

namespace humo::core {
namespace {

/// Small GP subset model over a logistic-ish proportion curve: 10 subsets
/// of 100 pairs each, 5 of them pinned exactly.
std::shared_ptr<GpSubsetModel> MakeModel() {
  std::vector<double> xs = {0.1, 0.3, 0.5, 0.7, 0.9};
  std::vector<double> ys = {0.0, 0.1, 0.5, 0.9, 1.0};
  auto gp = gp::GpRegression::Fit(std::make_unique<gp::RbfKernel>(0.5, 0.25),
                                  xs, ys);
  EXPECT_TRUE(gp.ok());
  std::vector<double> v, n;
  std::vector<SubsetObservation> obs(10);
  std::vector<double> scatter(10, 1e-4);
  for (size_t k = 0; k < 10; ++k) {
    v.push_back(0.05 + 0.1 * static_cast<double>(k));
    n.push_back(100.0);
  }
  return std::make_shared<GpSubsetModel>(std::move(*gp), std::move(v),
                                         std::move(n), std::move(obs),
                                         std::move(scatter));
}

TEST(RiskModelTest, GpPosteriorServesUntilBetaEvidenceIsTighter) {
  auto model = MakeModel();
  RiskModel risk(model.get(), 0, 9);
  // No evidence: the GP posterior (variance well under the uniform prior's
  // 1/12) decides, so means follow the fitted curve.
  EXPECT_LT(risk.PosteriorMean(0), 0.2);
  EXPECT_GT(risk.PosteriorMean(9), 0.8);
  EXPECT_FALSE(risk.MachineLabelsMatch(0));
  EXPECT_TRUE(risk.MachineLabelsMatch(9));
  // Overwhelming direct evidence contradicting the GP takes over once its
  // Beta posterior is tighter.
  const double before = risk.PosteriorMean(9);
  risk.SetEvidence(9, 90, 9);  // only 10% matches among 90 inspected
  EXPECT_LT(risk.PosteriorMean(9), 0.2);
  EXPECT_FALSE(risk.MachineLabelsMatch(9));
  EXPECT_LT(risk.PosteriorMean(9), before);
}

TEST(RiskModelTest, PairRiskPeaksAtTheTransitionAndDiesWhenInspected) {
  auto model = MakeModel();
  RiskModel risk(model.get(), 0, 9);
  // The transition subset (proportion ~0.5) is the riskiest per pair.
  const double edge = risk.PairRisk(0, 0.95);
  const double middle = risk.PairRisk(4, 0.95);
  EXPECT_GT(middle, edge);
  // A fully inspected subset has no machine-labeled pairs: zero risk.
  risk.SetEvidence(4, 100, 52);
  EXPECT_EQ(risk.PairRisk(4, 0.95), 0.0);
  EXPECT_EQ(risk.Uninspected(4), 0u);
  EXPECT_EQ(risk.InspectedMatches(4), 52u);
}

TEST(RiskModelTest, AggregateSplitsByMachineLabelAndHonorsEvidence) {
  auto model = MakeModel();
  RiskModel risk(model.get(), 0, 9);
  const auto all = risk.Aggregate();
  EXPECT_DOUBLE_EQ(all.match_pairs + all.unmatch_pairs, 1000.0);
  EXPECT_GT(all.match_pairs, 0.0);
  EXPECT_GT(all.unmatch_pairs, 0.0);
  // Inspecting everything empties the aggregate.
  for (size_t k = 0; k <= 9; ++k) risk.SetEvidence(k, 100, k >= 5 ? 95 : 2);
  const auto none = risk.Aggregate();
  EXPECT_EQ(none.match_pairs + none.unmatch_pairs, 0.0);
  EXPECT_EQ(risk.TotalUninspected(), 0u);
  EXPECT_EQ(risk.TotalInspectedMatches(), 5u * 95u + 5u * 2u);
  // Sub-range aggregation matches manual slicing.
  EXPECT_EQ(risk.TotalInspectedMatches(0, 4), 5u * 2u);
}

class RiskAwareOptimizerTest : public ::testing::Test {
 protected:
  static data::Workload ds_;
  static data::Workload ab_;
  static void SetUpTestSuite() {
    ds_ = data::SimulatePairs(data::DsConfigSmall());
    ab_ = data::SimulatePairs(data::AbConfigSmall());
  }
};

data::Workload RiskAwareOptimizerTest::ds_;
data::Workload RiskAwareOptimizerTest::ab_;

/// The acceptance contract of the PR: on the DS and AB seeded workloads,
/// RISK meets the same quality guarantee as SAMP at equal confidence while
/// issuing fewer oracle inspections — asserted through the oracle's
/// distinct-pair request counter, the paper's human-cost metric.
TEST_F(RiskAwareOptimizerTest, MeetsGuaranteeWithFewerInspectionsThanSampDs) {
  SubsetPartition p(&ds_, 200);
  const QualityRequirement req{0.9, 0.9, 0.9};

  Oracle samp_oracle(&ds_);
  PartialSamplingOptions po;
  auto sol = PartialSamplingOptimizer(po).Optimize(p, req, &samp_oracle);
  ASSERT_TRUE(sol.ok());
  const auto samp_res = ApplySolution(p, *sol, &samp_oracle);
  const size_t samp_cost = samp_oracle.cost();

  Oracle risk_oracle(&ds_);
  RiskAwareOptions ro;  // same default sampling configuration as SAMP
  auto out = RiskAwareOptimizer(ro).Resolve(p, req, &risk_oracle);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->certified);
  EXPECT_LT(risk_oracle.cost(), samp_cost);
  EXPECT_GT(out->inspection.pairs_machine_labeled, 0u);

  const auto q = eval::QualityOf(ds_, out->resolution.labels);
  EXPECT_GE(q.precision, req.alpha);
  EXPECT_GE(q.recall, req.beta);
  // The sampling phases were identical, so the saving is exactly the
  // machine-labeled remainder of DH.
  EXPECT_EQ(samp_cost - risk_oracle.cost(),
            out->inspection.pairs_machine_labeled);
  (void)samp_res;
}

TEST_F(RiskAwareOptimizerTest, MeetsGuaranteeWithFewerInspectionsThanSampAb) {
  SubsetPartition p(&ab_, 200);
  const QualityRequirement req{0.9, 0.9, 0.9};

  Oracle samp_oracle(&ab_);
  auto sol = PartialSamplingOptimizer().Optimize(p, req, &samp_oracle);
  ASSERT_TRUE(sol.ok());
  ApplySolution(p, *sol, &samp_oracle);
  const size_t samp_cost = samp_oracle.cost();

  Oracle risk_oracle(&ab_);
  auto out = RiskAwareOptimizer().Resolve(p, req, &risk_oracle);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->certified);
  EXPECT_LT(risk_oracle.cost(), samp_cost);

  const auto q = eval::QualityOf(ab_, out->resolution.labels);
  EXPECT_GE(q.precision, req.alpha);
  EXPECT_GE(q.recall, req.beta);
}

/// Confidence semantics across workload realizations: the guarantee must
/// hold on (at least) roughly a theta fraction of re-simulated workloads.
TEST_F(RiskAwareOptimizerTest, GuaranteeHoldsAcrossRealizations) {
  const QualityRequirement req{0.9, 0.9, 0.9};
  size_t success = 0;
  const size_t trials = 10;
  for (uint64_t t = 0; t < trials; ++t) {
    const data::Workload w =
        data::SimulatePairs(data::DsConfigSmall(/*seed=*/700 + t));
    SubsetPartition p(&w, 200);
    Oracle oracle(&w);
    auto out = RiskAwareOptimizer().Resolve(p, req, &oracle);
    ASSERT_TRUE(out.ok());
    const auto q = eval::QualityOf(w, out->resolution.labels);
    if (q.precision >= req.alpha && q.recall >= req.beta) ++success;
  }
  // theta = 0.9; allow sampling slack down to 0.8 over 10 trials.
  EXPECT_GE(success, 8u);
}

TEST_F(RiskAwareOptimizerTest, ChainedAfterSampIssuesZeroDuplicateRequests) {
  SubsetPartition p(&ds_, 200);
  const QualityRequirement req{0.9, 0.9, 0.9};
  Oracle oracle(&ds_);
  EstimationContext ctx(&p, &oracle);

  auto s0 = PartialSamplingOptimizer().OptimizeDetailed(&ctx, req);
  ASSERT_TRUE(s0.ok());
  const size_t samp_cost = oracle.cost();

  auto out = RiskAwareOptimizer().Resolve(&ctx, req);
  ASSERT_TRUE(out.ok());
  // The stored S0 outcome is reused — no second sampling pass — and every
  // request the risk loop issued was for a fresh pair.
  EXPECT_EQ(oracle.duplicate_requests(), 0u);
  EXPECT_EQ(oracle.cost() - samp_cost, out->inspection.pairs_inspected);
}

TEST_F(RiskAwareOptimizerTest, BitIdenticalAtAnyThreadCount) {
  const QualityRequirement req{0.9, 0.9, 0.9};
  SubsetPartition p(&ds_, 200);
  std::vector<int> labels[2];
  size_t costs[2];
  double plb[2], rlb[2];
  size_t t = 0;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool::SetGlobalThreads(threads);
    Oracle oracle(&ds_);
    auto out = RiskAwareOptimizer().Resolve(p, req, &oracle);
    ASSERT_TRUE(out.ok());
    labels[t] = out->resolution.labels;
    costs[t] = oracle.cost();
    plb[t] = out->precision_lb;
    rlb[t] = out->recall_lb;
    ++t;
  }
  ThreadPool::SetGlobalThreads(0);  // restore the environment default
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(costs[0], costs[1]);
  EXPECT_EQ(plb[0], plb[1]);  // bitwise
  EXPECT_EQ(rlb[0], rlb[1]);
}

TEST_F(RiskAwareOptimizerTest, HybridRiskHookCertifiesBelowSampCost) {
  SubsetPartition p(&ds_, 200);
  const QualityRequirement req{0.9, 0.9, 0.9};

  Oracle samp_oracle(&ds_);
  auto sol = PartialSamplingOptimizer().Optimize(p, req, &samp_oracle);
  ASSERT_TRUE(sol.ok());
  ApplySolution(p, *sol, &samp_oracle);

  Oracle oracle(&ds_);
  auto out = HybridOptimizer().OptimizeRiskAware(p, req, &oracle);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->certified);
  EXPECT_LT(oracle.cost(), samp_oracle.cost());
  const auto q = eval::QualityOf(ds_, out->resolution.labels);
  EXPECT_GE(q.precision, req.alpha);
  EXPECT_GE(q.recall, req.beta);
  // The hook's DH never exceeds S0's range.
  EXPECT_GE(out->solution.h_lo, sol->h_lo);
  EXPECT_LE(out->solution.h_hi, sol->h_hi);
}

TEST_F(RiskAwareOptimizerTest, ResolveWithinRejectsBadArguments) {
  SubsetPartition p(&ds_, 200);
  const QualityRequirement req{0.9, 0.9, 0.9};
  Oracle oracle(&ds_);
  EstimationContext ctx(&p, &oracle);
  RiskAwareOptimizer opt;
  HumoSolution dh;
  dh.h_lo = 5;
  dh.h_hi = 2;  // inverted
  EXPECT_FALSE(opt.ResolveWithin(&ctx, req, dh, MakeModel().get()).ok());
  EXPECT_FALSE(opt.ResolveWithin(&ctx, req, dh, nullptr).ok());
}

}  // namespace
}  // namespace humo::core
