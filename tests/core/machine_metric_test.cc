#include "core/machine_metric.h"

#include <gtest/gtest.h>

#include "core/hybrid_optimizer.h"
#include "core/oracle.h"
#include "core/partition.h"
#include "core/solution.h"
#include "data/logistic_generator.h"
#include "eval/evaluation.h"

namespace humo::core {
namespace {

data::Workload MakeWorkload() {
  data::LogisticGeneratorOptions o;
  o.num_pairs = 40000;
  o.pairs_per_subset = 200;
  o.tau = 14.0;
  o.sigma = 0.05;
  return data::GenerateLogisticWorkload(o);
}

ml::Dataset SimilarityDataset(const data::Workload& w) {
  ml::Dataset d;
  for (size_t i = 0; i < w.size(); ++i)
    d.Add({w[i].similarity}, w[i].is_match ? 1 : 0);
  return d;
}

TEST(MachineMetricTest, ProbabilityRescorePreservesSizeAndTruth) {
  const data::Workload w = MakeWorkload();
  const auto lr = ml::LogisticRegression::Train(SimilarityDataset(w));
  const data::Workload rescored =
      RescoreByMatchProbability(w, lr, SimilarityFeature());
  EXPECT_EQ(rescored.size(), w.size());
  EXPECT_EQ(rescored.CountMatches(), w.CountMatches());
  for (size_t i = 0; i < rescored.size(); ++i) {
    EXPECT_GE(rescored[i].similarity, 0.0);
    EXPECT_LE(rescored[i].similarity, 1.0);
  }
}

TEST(MachineMetricTest, ProbabilityMetricIsMonotoneInSimilarity) {
  const data::Workload w = MakeWorkload();
  const auto lr = ml::LogisticRegression::Train(SimilarityDataset(w));
  const data::Workload rescored =
      RescoreByMatchProbability(w, lr, SimilarityFeature());
  // A monotone 1-D model keeps the sorted order: match proportion in the
  // top decile must dominate the bottom decile.
  const size_t decile = rescored.size() / 10;
  size_t bottom = 0, top = 0;
  for (size_t i = 0; i < decile; ++i) {
    bottom += rescored[i].is_match;
    top += rescored[rescored.size() - 1 - i].is_match;
  }
  EXPECT_GT(top, bottom * 5);
}

TEST(MachineMetricTest, SvmRescoreInUnitInterval) {
  const data::Workload w = MakeWorkload();
  const auto svm = ml::LinearSvm::Train(SimilarityDataset(w));
  const data::Workload rescored =
      RescoreBySvmDistance(w, svm, SimilarityFeature());
  for (size_t i = 0; i < rescored.size(); ++i) {
    EXPECT_GE(rescored[i].similarity, 0.0);
    EXPECT_LE(rescored[i].similarity, 1.0);
  }
}

TEST(MachineMetricTest, HumoRunsOnProbabilityMetric) {
  // §IV-A: HUMO is metric-agnostic — the full pipeline must deliver the
  // same quality contract on a match-probability-scored workload.
  const data::Workload w = MakeWorkload();
  const auto lr = ml::LogisticRegression::Train(SimilarityDataset(w));
  const data::Workload rescored =
      RescoreByMatchProbability(w, lr, SimilarityFeature());
  SubsetPartition p(&rescored, 200);
  Oracle oracle(&rescored);
  const QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = HybridOptimizer().Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  const auto result = ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(rescored, result.labels);
  EXPECT_GE(q.precision, 0.9);
  EXPECT_GE(q.recall, 0.9);
}

TEST(MachineMetricTest, SimilarityFeatureExtracts) {
  data::InstancePair pair;
  pair.similarity = 0.42;
  const auto f = SimilarityFeature()(pair);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f[0], 0.42);
}

}  // namespace
}  // namespace humo::core
