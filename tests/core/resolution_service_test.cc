#include "core/resolution_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/streaming_resolver.h"
#include "data/pair_simulator.h"
#include "data/workload_stream.h"

namespace humo {
namespace {

/// The serving-layer contracts (ISSUE 7): wait-free readers can never
/// observe a torn snapshot, and draining the service to quiescence — every
/// crowd task answered and folded, certification finished — reproduces the
/// synchronous StreamingResolver bit for bit: labels, solution, oracle
/// cost, certificate.
class ResolutionServiceTest : public ::testing::Test {
 protected:
  static data::Workload ds_;

  static void SetUpTestSuite() {
    ds_ = data::SimulatePairs(data::DsConfigSmall(555, 12000));
  }
};

data::Workload ResolutionServiceTest::ds_;

core::ResolutionServiceOptions DefaultServiceOptions(size_t crowd_workers) {
  core::ResolutionServiceOptions options;
  options.streaming.sampling.seed = 21;
  options.crowd_workers = crowd_workers;
  return options;
}

void ExpectCertsEqual(const core::StreamingCertificate& a,
                      const core::StreamingCertificate& b) {
  EXPECT_EQ(a.solution.empty, b.solution.empty);
  EXPECT_EQ(a.solution.h_lo, b.solution.h_lo);
  EXPECT_EQ(a.solution.h_hi, b.solution.h_hi);
  EXPECT_EQ(a.resolution.labels, b.resolution.labels);
  EXPECT_EQ(a.fresh_inspections, b.fresh_inspections);
  EXPECT_EQ(a.total_inspections, b.total_inspections);
  EXPECT_EQ(a.certified, b.certified);
  EXPECT_EQ(a.epoch, b.epoch);
}

TEST_F(ResolutionServiceTest, DrainIsBitIdenticalToSynchronousResolver) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  // The async crowd (3 workers) and the degenerate synchronous crowd (0)
  // must both be indistinguishable from the bare resolver after a drain.
  for (const size_t crowd : {size_t{0}, size_t{3}}) {
    SCOPED_TRACE("crowd=" + std::to_string(crowd));
    const core::ResolutionServiceOptions options =
        DefaultServiceOptions(crowd);
    data::WorkloadStreamOptions stream_options;
    stream_options.num_shards = 8;
    data::WorkloadStream stream(&ds_, stream_options);

    core::ResolutionService service(options, req);
    core::StreamingResolver reference(options.streaming, req);

    for (size_t e = 0; e < stream.num_shards(); ++e) {
      if (e == 4) {
        // Mid-stream certification. The service runs it on a background
        // thread over exactly the 4 ingested shards; the drain makes its
        // certificate comparable to the synchronous one.
        ASSERT_TRUE(service.RequestCertification());
        auto service_cert = service.DrainToQuiescence();
        auto reference_cert = reference.Certify();
        ASSERT_TRUE(service_cert.ok()) << service_cert.status().message();
        ASSERT_TRUE(reference_cert.ok());
        ExpectCertsEqual(*service_cert, *reference_cert);
      }
      service.Ingest(stream.ShardAt(e));
      reference.Ingest(stream.ShardAt(e));
    }

    ASSERT_TRUE(service.RequestCertification());
    auto service_cert = service.DrainToQuiescence();
    auto reference_cert = reference.Certify();
    ASSERT_TRUE(service_cert.ok()) << service_cert.status().message();
    ASSERT_TRUE(reference_cert.ok());
    ExpectCertsEqual(*service_cert, *reference_cert);

    // The resolver under the service went through the exact synchronous
    // schedule: full internal-state agreement, not just certificate-level.
    const core::StreamingResolver& inner = service.resolver_unsynchronized();
    EXPECT_EQ(inner.provisional_labels(), reference.provisional_labels());
    EXPECT_EQ(inner.total_inspections(), reference.total_inspections());
    EXPECT_EQ(inner.total_duplicate_requests(), 0u);

    // The published snapshot serves the certificate: current, consistent,
    // and every wait-free lookup agrees with the certified labels.
    const auto snap = service.snapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_TRUE(snap->Validate());
    EXPECT_EQ(snap->epochs_ingested(), stream.num_shards());
    EXPECT_EQ(snap->pairs(), ds_.size());
    EXPECT_TRUE(snap->quality().certified);
    EXPECT_EQ(snap->labels(), service_cert->resolution.labels);
    const size_t probe = ds_.size() / 2;
    EXPECT_EQ(service.LabelOf(probe),
              std::optional<int>(service_cert->resolution.labels[probe]));
    const auto found = snap->Find(ds_[probe]);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, probe);
  }
}

TEST_F(ResolutionServiceTest, ReviewFoldInMatchesDirectPreload) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  const core::ResolutionServiceOptions options = DefaultServiceOptions(2);
  data::WorkloadStreamOptions stream_options;
  stream_options.num_shards = 6;
  data::WorkloadStream stream(&ds_, stream_options);

  core::ResolutionService service(options, req);
  core::StreamingResolver reference(options.streaming, req);
  for (size_t e = 0; e < 3; ++e) {
    service.Ingest(stream.ShardAt(e));
    reference.Ingest(stream.ShardAt(e));
  }

  // Flag every 50th arrived pair for human review, plus one pair that has
  // not arrived yet (must be skipped, not answered for a wrong index).
  std::vector<data::InstancePair> review;
  const data::Workload& seen = reference.cumulative();
  for (size_t i = 0; i < seen.size(); i += 50) review.push_back(seen[i]);
  data::InstancePair unseen;
  unseen.left_id = 0xFFFFFF;
  unseen.right_id = 0xFFFFFF;
  unseen.similarity = 2.0;  // outside [0,1]: cannot collide with real pairs
  review.push_back(unseen);

  const size_t enqueued = service.EnqueueReview(review);
  EXPECT_EQ(enqueued, review.size() - 1);

  // Reference: the same evidence, seeded synchronously. The crowd computes
  // Oracle::InlineAnswer, so the folded verdicts are these exact values.
  for (const data::InstancePair& pair : review) {
    const size_t idx = seen.IndexOfSorted(pair);
    if (idx >= seen.size() || reference.oracle().WasAsked(idx)) continue;
    ASSERT_TRUE(
        reference.PreloadEvidence(pair, reference.oracle().InlineAnswer(idx)));
  }
  reference.RefreshServing();

  // Drain delivers and folds every outstanding verdict (no certification
  // ran yet, so the drain itself reports an error — evidence still folds).
  EXPECT_FALSE(service.DrainToQuiescence().ok());
  EXPECT_EQ(service.reviews_folded(), enqueued);
  EXPECT_EQ(service.unfolded_reviews(), 0u);
  EXPECT_EQ(service.resolver_unsynchronized().total_inspections(),
            reference.total_inspections());

  // The folded evidence survives the remaining (interior) merges and makes
  // certification bit-identical to the synchronous preloaded run — and
  // cheaper than a run without the reviews (answers get reused).
  for (size_t e = 3; e < stream.num_shards(); ++e) {
    service.Ingest(stream.ShardAt(e));
    reference.Ingest(stream.ShardAt(e));
  }
  ASSERT_TRUE(service.RequestCertification());
  auto service_cert = service.DrainToQuiescence();
  auto reference_cert = reference.Certify();
  ASSERT_TRUE(service_cert.ok()) << service_cert.status().message();
  ASSERT_TRUE(reference_cert.ok());
  ExpectCertsEqual(*service_cert, *reference_cert);
  EXPECT_GT(service_cert->reused_answers, 0u);
  EXPECT_EQ(service.resolver_unsynchronized().total_duplicate_requests(), 0u);

  // Re-reviewing an answered pair is a no-op, not a duplicate inspection.
  EXPECT_EQ(service.EnqueueReview({review[0]}), 0u);
}

/// ISSUE 7 stress satellite: readers spin on lookups across >= 100 epoch
/// swaps while shards ingest, reviews arrive, and certifications run;
/// every observed snapshot must be internally consistent.
TEST_F(ResolutionServiceTest, SnapshotStressUnderConcurrentMutation) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  const core::ResolutionServiceOptions options = DefaultServiceOptions(2);
  data::WorkloadStreamOptions stream_options;
  stream_options.num_shards = 120;
  data::WorkloadStream stream(&ds_, stream_options);

  core::ResolutionService service(options, req);

  constexpr size_t kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<size_t> lookups{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&service, &done, &lookups] {
      size_t last_version = 0;
      size_t count = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = service.snapshot();
        ASSERT_NE(snap, nullptr);
        // Internal consistency: untorn (checksum over fields + labels),
        // self-agreeing sizes, monotonically advancing versions.
        ASSERT_TRUE(snap->Validate());
        ASSERT_EQ(snap->labels().size(), snap->pairs());
        ASSERT_GE(snap->version(), last_version);
        last_version = snap->version();
        if (snap->pairs() > 0) {
          const size_t mid = snap->pairs() / 2;
          const int label = snap->LabelOf(mid);
          ASSERT_TRUE(label == 0 || label == 1);
          const auto batch = snap->BatchLabels({0, mid, snap->pairs() - 1});
          ASSERT_EQ(batch[1], label);
        }
        ++count;
      }
      lookups.fetch_add(count, std::memory_order_relaxed);
    });
  }

  for (size_t e = 0; e < stream.num_shards(); ++e) {
    service.Ingest(stream.ShardAt(e));
    if (e % 10 == 5) {
      // A small review burst against pairs that may or may not have
      // arrived; the service sorts that out.
      std::vector<data::InstancePair> burst;
      for (size_t k = 0; k < 5; ++k) {
        burst.push_back(ds_[(e * 37 + k * 101) % ds_.size()]);
      }
      service.EnqueueReview(burst);
    }
    if (e == 40) ASSERT_TRUE(service.RequestCertification());
    // The second request may race the first certification's final counter
    // store; a drop (false) is acceptable behavior, not a failure.
    if (e == 80) service.RequestCertification();
  }
  auto cert = service.DrainToQuiescence();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  ASSERT_TRUE(cert.ok()) << cert.status().message();
  // One swap per ingest (plus the initial publish, certifications, and
  // review fold-ins): well past the 100-swap floor.
  EXPECT_GE(service.snapshots_published(), stream.num_shards() + 1);
  EXPECT_GT(lookups.load(), 0u);
  EXPECT_EQ(service.pending_crowd_tasks(), 0u);
  EXPECT_EQ(service.unfolded_reviews(), 0u);
  EXPECT_TRUE(service.snapshot()->Validate());
}

TEST_F(ResolutionServiceTest, EdgeCases) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  core::ResolutionService service(DefaultServiceOptions(1), req);

  // The service is born serving: an empty but valid snapshot.
  const auto empty = service.snapshot();
  ASSERT_NE(empty, nullptr);
  EXPECT_TRUE(empty->Validate());
  EXPECT_EQ(empty->pairs(), 0u);
  EXPECT_EQ(empty->version(), 1u);
  EXPECT_FALSE(empty->quality().certified);
  EXPECT_EQ(service.LabelOf(0), std::nullopt);

  // Draining before any certification is an error, not a hang.
  EXPECT_FALSE(service.DrainToQuiescence().ok());

  // Certifying an empty workload fails and the failure is reported by the
  // drain; the service stays usable.
  ASSERT_TRUE(service.RequestCertification());
  EXPECT_FALSE(service.DrainToQuiescence().ok());

  // Reviews against an empty service are all skipped.
  EXPECT_EQ(service.EnqueueReview({data::InstancePair{1, 2, 0.5, false}}),
            0u);

  // A tiny ingest publishes and serves.
  data::Shard tiny;
  for (uint32_t i = 0; i < 5; ++i) {
    tiny.pairs.push_back(
        {i, i + 100, 0.1 * static_cast<double>(i + 1), i >= 3});
  }
  const core::EpochReport report = service.Ingest(std::move(tiny));
  EXPECT_EQ(report.pairs_total, 5u);
  const auto snap = service.snapshot();
  EXPECT_EQ(snap->pairs(), 5u);
  EXPECT_GT(snap->version(), empty->version());
  EXPECT_TRUE(snap->Validate());
  EXPECT_TRUE(service.LabelOf(4).has_value());
  EXPECT_EQ(service.LabelOfPair(data::InstancePair{9, 9, 0.99, false}),
            std::nullopt);

  // The pinned early snapshot is untouched by later publishes (RCU: old
  // epochs stay alive and valid for as long as a reader holds them).
  EXPECT_EQ(empty->pairs(), 0u);
  EXPECT_TRUE(empty->Validate());
}

}  // namespace
}  // namespace humo
