#include "core/budgeted_resolver.h"

#include <gtest/gtest.h>

#include "core/solution.h"
#include "data/logistic_generator.h"
#include "eval/evaluation.h"

namespace humo::core {
namespace {

data::Workload MakeWorkload(uint64_t seed = 1) {
  data::LogisticGeneratorOptions o;
  o.num_pairs = 40000;
  o.pairs_per_subset = 200;
  o.tau = 12.0;
  o.sigma = 0.05;
  o.seed = seed;
  return data::GenerateLogisticWorkload(o);
}

TEST(BudgetedResolverTest, RespectsBudget) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  for (size_t budget : {1000ul, 4000ul, 10000ul}) {
    Oracle oracle(&w);
    auto sol = BudgetedResolver().Resolve(p, budget, &oracle);
    ASSERT_TRUE(sol.ok());
    EXPECT_LE(oracle.cost(), budget);
  }
}

TEST(BudgetedResolverTest, QualityImprovesWithBudget) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  double prev_f1 = -1.0;
  for (size_t budget : {1000ul, 5000ul, 15000ul, 30000ul}) {
    Oracle oracle(&w);
    auto sol = BudgetedResolver().Resolve(p, budget, &oracle);
    ASSERT_TRUE(sol.ok());
    const auto result = ApplySolution(p, *sol, &oracle);
    EXPECT_LE(result.human_cost, budget);
    const auto q = eval::QualityOf(w, result.labels);
    // Pay-as-you-go: monotone improvement (small slack for window noise).
    EXPECT_GE(q.f1 + 0.02, prev_f1) << "budget " << budget;
    prev_f1 = q.f1;
  }
}

TEST(BudgetedResolverTest, ZeroBudgetIsMachineOnly) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  auto sol = BudgetedResolver().Resolve(p, 0, &oracle);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->empty);
  EXPECT_EQ(oracle.cost(), 0u);
  const auto result = ApplySolution(p, *sol, &oracle);
  EXPECT_EQ(result.human_cost, 0u);
  // Machine-only still beats nothing: the midpoint split catches the bulk.
  const auto q = eval::QualityOf(w, result.labels);
  EXPECT_GT(q.f1, 0.5);
}

TEST(BudgetedResolverTest, FullBudgetApproachesPerfect) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  auto sol = BudgetedResolver().Resolve(p, w.size(), &oracle);
  ASSERT_TRUE(sol.ok());
  const auto result = ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  EXPECT_GT(q.f1, 0.97);
}

TEST(BudgetedResolverTest, SpendsWhereErrorsAre) {
  // The verified zone should cover the transition band, not the extremes.
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  auto sol = BudgetedResolver().Resolve(p, 8000, &oracle);
  ASSERT_TRUE(sol.ok());
  ASSERT_FALSE(sol->empty);
  // The logistic midpoint is 0.55: the verified zone should straddle it.
  const double lo_sim = p[sol->h_lo].avg_similarity;
  const double hi_sim = p[sol->h_hi].avg_similarity;
  EXPECT_LT(lo_sim, 0.62);
  EXPECT_GT(hi_sim, 0.48);
}

TEST(BudgetedResolverTest, RejectsBadInputs) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  EXPECT_FALSE(BudgetedResolver().Resolve(p, 100, nullptr).ok());
  const data::Workload empty;
  SubsetPartition pe(&empty, 200);
  Oracle oracle(&empty);
  EXPECT_FALSE(BudgetedResolver().Resolve(pe, 100, &oracle).ok());
}

}  // namespace
}  // namespace humo::core
