#include "core/hybrid_optimizer.h"

#include <gtest/gtest.h>

#include "core/partial_sampling_optimizer.h"
#include "core/solution.h"
#include "data/logistic_generator.h"
#include "data/pair_simulator.h"
#include "eval/evaluation.h"

namespace humo::core {
namespace {

data::Workload MakeWorkload(double tau = 14.0, double sigma = 0.05,
                            uint64_t seed = 1, size_t n = 40000) {
  data::LogisticGeneratorOptions o;
  o.num_pairs = n;
  o.pairs_per_subset = 200;
  o.tau = tau;
  o.sigma = sigma;
  o.seed = seed;
  return data::GenerateLogisticWorkload(o);
}

TEST(HybridOptimizerTest, MeetsQualityOnSmoothWorkload) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  HybridOptimizer opt;
  QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = opt.Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  const auto result = ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  EXPECT_GE(q.precision, 0.9);
  EXPECT_GE(q.recall, 0.9);
}

TEST(HybridOptimizerTest, NeverExceedsSamplingSolutionRange) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  QualityRequirement req{0.9, 0.9, 0.9};
  // Run SAMP standalone with the same seed to learn S0's range.
  PartialSamplingOptions po;
  po.seed = 5;
  Oracle o_samp(&w);
  auto s0 = PartialSamplingOptimizer(po).OptimizeDetailed(p, req, &o_samp);
  ASSERT_TRUE(s0.ok());
  // HYBR with the same sampling seed starts from the same S0.
  HybridOptions ho;
  ho.sampling = po;
  Oracle o_hybr(&w);
  auto hybr = HybridOptimizer(ho).Optimize(p, req, &o_hybr);
  ASSERT_TRUE(hybr.ok());
  EXPECT_GE(hybr->h_lo, s0->solution.h_lo);
  EXPECT_LE(hybr->h_hi, s0->solution.h_hi);
}

TEST(HybridOptimizerTest, CostAtMostSamplingCost) {
  // §VII: the hybrid solution is at least as good as S0 — its DH is a
  // subrange, so the human cost cannot exceed SAMP's for the same seed.
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  QualityRequirement req{0.9, 0.9, 0.9};
  PartialSamplingOptions po;
  po.seed = 9;

  Oracle o_samp(&w);
  auto samp_sol = PartialSamplingOptimizer(po).Optimize(p, req, &o_samp);
  ASSERT_TRUE(samp_sol.ok());
  const auto samp_result = ApplySolution(p, *samp_sol, &o_samp);

  HybridOptions ho;
  ho.sampling = po;
  Oracle o_hybr(&w);
  auto hybr_sol = HybridOptimizer(ho).Optimize(p, req, &o_hybr);
  ASSERT_TRUE(hybr_sol.ok());
  const auto hybr_result = ApplySolution(p, *hybr_sol, &o_hybr);

  EXPECT_LE(hybr_result.human_cost, samp_result.human_cost);
}

TEST(HybridOptimizerTest, SucceedsAcrossSeeds) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  QualityRequirement req{0.85, 0.85, 0.9};
  size_t successes = 0;
  const size_t trials = 10;
  for (size_t t = 0; t < trials; ++t) {
    Oracle oracle(&w);
    HybridOptions o;
    o.sampling.seed = 3000 + t;
    auto sol = HybridOptimizer(o).Optimize(p, req, &oracle);
    ASSERT_TRUE(sol.ok());
    const auto result = ApplySolution(p, *sol, &oracle);
    const auto q = eval::QualityOf(w, result.labels);
    if (q.precision >= req.alpha && q.recall >= req.beta) ++successes;
  }
  EXPECT_GE(successes, 8u);
}

TEST(HybridOptimizerTest, WorksOnSimulatedAbWorkload) {
  const data::Workload w = data::SimulatePairs(data::AbConfigSmall(3, 60000));
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  HybridOptimizer opt;
  QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = opt.Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  const auto result = ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  EXPECT_GE(q.precision, 0.88);
  EXPECT_GE(q.recall, 0.88);
}

TEST(HybridOptimizerTest, RejectsBadInputs) {
  const data::Workload w = MakeWorkload(14.0, 0.05, 1, 2000);
  SubsetPartition p(&w, 200);
  QualityRequirement req{0.9, 0.9, 0.9};
  HybridOptimizer opt;
  EXPECT_FALSE(opt.Optimize(p, req, nullptr).ok());
  HybridOptions bad;
  bad.window_subsets = 0;
  Oracle oracle(&w);
  EXPECT_FALSE(HybridOptimizer(bad).Optimize(p, req, &oracle).ok());
}

TEST(HybridOptimizerTest, SolutionBoundsValid) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  HybridOptimizer opt;
  QualityRequirement req{0.8, 0.8, 0.9};
  auto sol = opt.Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->h_lo, sol->h_hi);
  EXPECT_LT(sol->h_hi, p.num_subsets());
}

}  // namespace
}  // namespace humo::core
