#include "core/crowd_oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/logistic_generator.h"

namespace humo::core {
namespace {

data::Workload MakeWorkload(size_t n = 10000) {
  data::LogisticGeneratorOptions o;
  o.num_pairs = n;
  o.pairs_per_subset = 100;
  return data::GenerateLogisticWorkload(o);
}

TEST(CrowdOracleTest, PerfectWorkersGiveGroundTruth) {
  const data::Workload w = MakeWorkload(1000);
  CrowdOptions o;
  o.worker_error_rate = 0.0;
  CrowdOracle crowd(&w, o);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(crowd.Label(i), w[i].is_match);
  }
  EXPECT_DOUBLE_EQ(crowd.VerdictErrorRate(), 0.0);
}

TEST(CrowdOracleTest, CostCountsWorkerAnswers) {
  const data::Workload w = MakeWorkload(1000);
  CrowdOptions o;
  o.workers_per_pair = 5;
  CrowdOracle crowd(&w, o);
  crowd.Label(0);
  crowd.Label(1);
  crowd.Label(0);  // cached: no extra cost
  EXPECT_EQ(crowd.worker_answers(), 10u);
  EXPECT_EQ(crowd.pairs_adjudicated(), 2u);
  EXPECT_DOUBLE_EQ(crowd.CostFraction(), 10.0 / 1000.0);
}

TEST(CrowdOracleTest, VerdictsAreStableAcrossRequeries) {
  const data::Workload w = MakeWorkload(500);
  CrowdOptions o;
  o.worker_error_rate = 0.4;
  CrowdOracle crowd(&w, o);
  std::vector<bool> first;
  for (size_t i = 0; i < 100; ++i) first.push_back(crowd.Label(i));
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(crowd.Label(i), first[i]);
}

TEST(CrowdOracleTest, MajorityVoteBeatsSingleWorker) {
  const data::Workload w = MakeWorkload(20000);
  CrowdOptions one;
  one.workers_per_pair = 1;
  one.worker_error_rate = 0.2;
  CrowdOptions five = one;
  five.workers_per_pair = 5;
  CrowdOracle single(&w, one), majority(&w, five);
  for (size_t i = 0; i < w.size(); ++i) {
    single.Label(i);
    majority.Label(i);
  }
  // e=0.2: single-worker error 20%; 5-vote majority error ~5.8%.
  EXPECT_NEAR(single.VerdictErrorRate(), 0.2, 0.02);
  EXPECT_NEAR(majority.VerdictErrorRate(), 0.058, 0.02);
  EXPECT_LT(majority.VerdictErrorRate(), single.VerdictErrorRate());
}

TEST(CrowdOracleTest, VerdictErrorMatchesBinomialTheory) {
  const data::Workload w = MakeWorkload(20000);
  CrowdOptions o;
  o.workers_per_pair = 3;
  o.worker_error_rate = 0.1;
  CrowdOracle crowd(&w, o);
  for (size_t i = 0; i < w.size(); ++i) crowd.Label(i);
  // P(>=2 of 3 wrong) = 3 * 0.1^2 * 0.9 + 0.1^3 = 0.028.
  EXPECT_NEAR(crowd.VerdictErrorRate(), 0.028, 0.008);
}

TEST(CrowdOracleTest, ResetClearsEverything) {
  const data::Workload w = MakeWorkload(500);
  CrowdOracle crowd(&w);
  crowd.Label(0);
  crowd.Reset();
  EXPECT_EQ(crowd.worker_answers(), 0u);
  EXPECT_EQ(crowd.pairs_adjudicated(), 0u);
}

TEST(CrowdOracleTest, DeterministicUnderSeed) {
  const data::Workload w = MakeWorkload(500);
  CrowdOptions o;
  o.worker_error_rate = 0.3;
  o.seed = 99;
  CrowdOracle a(&w, o), b(&w, o);
  for (size_t i = 0; i < 200; ++i) EXPECT_EQ(a.Label(i), b.Label(i));
}

TEST(CrowdOracleTest, OptionsAreValidatedInEveryBuildMode) {
  // These used to be Debug-only asserts: a Release build would silently run
  // an even jury (majority ties break toward non-match) or a nonsense error
  // rate. The clamping below is the pinned contract.
  CrowdOptions o;
  o.workers_per_pair = 4;  // even: round UP to the next odd count
  o.worker_error_rate = 1.7;
  o.worker_error_spread = 0.9;
  o.worker_pool = 2;  // smaller than one pair's jury
  o.ds_em_iterations = 0;
  const CrowdOptions v = ValidateCrowdOptions(o);
  EXPECT_EQ(v.workers_per_pair, 5u);
  EXPECT_DOUBLE_EQ(v.worker_error_rate, 1.0);
  EXPECT_DOUBLE_EQ(v.worker_error_spread, 0.5);
  EXPECT_EQ(v.worker_pool, 5u);
  EXPECT_EQ(v.ds_em_iterations, 1u);

  CrowdOptions z;
  z.workers_per_pair = 0;
  z.worker_error_rate = -0.5;
  const CrowdOptions vz = ValidateCrowdOptions(z);
  EXPECT_EQ(vz.workers_per_pair, 1u);
  EXPECT_DOUBLE_EQ(vz.worker_error_rate, 0.0);

  CrowdOptions n;
  n.worker_error_rate = std::nan("");
  n.worker_error_spread = std::nan("");
  const CrowdOptions vn = ValidateCrowdOptions(n);
  EXPECT_DOUBLE_EQ(vn.worker_error_rate, 0.0);
  EXPECT_DOUBLE_EQ(vn.worker_error_spread, 0.0);

  // The constructor applies the same validation — the oracle never runs on
  // raw out-of-range options.
  const data::Workload w = MakeWorkload(100);
  CrowdOracle crowd(&w, o);
  EXPECT_EQ(crowd.options().workers_per_pair, 5u);
  crowd.Label(0);
  EXPECT_EQ(crowd.worker_answers(), 5u);
}

TEST(CrowdOracleTest, CountersNeverUnderflowAcrossPreloadInspectOrderings) {
  // Mirror of OracleTest.CostNeverUnderflowsAcrossPreloadInspectOrderings:
  // the crowd backend carries the same evidence seam and the same direct
  // counters, so no preload/inspect ordering can skew the accounting.
  const data::Workload w = MakeWorkload(200);
  const size_t kHuge = static_cast<size_t>(-1) / 2;

  {
    // Preload then request the SAME pair: served from memory, no workers.
    CrowdOracle crowd(&w);
    crowd.Preload(3, !w.IsMatch(3));
    EXPECT_EQ(crowd.worker_answers(), 0u);
    EXPECT_EQ(crowd.Label(3), !w.IsMatch(3));  // preloaded verdict wins
    EXPECT_EQ(crowd.worker_answers(), 0u);
    EXPECT_EQ(crowd.pairs_adjudicated(), 0u);
    EXPECT_EQ(crowd.preloaded(), 1u);
    EXPECT_EQ(crowd.total_requests(), 1u);
    EXPECT_EQ(crowd.duplicate_requests(), 1u);
    EXPECT_LT(crowd.duplicate_requests(), kHuge);  // the underflow guard
  }
  {
    // Adjudicate fresh FIRST, then preload the same pair: a no-op that
    // neither rewrites history nor inflates preloaded().
    CrowdOracle crowd(&w);
    const bool verdict = crowd.Label(7);
    crowd.Preload(7, !verdict);
    crowd.Preload(7, !verdict);
    EXPECT_EQ(crowd.pairs_adjudicated(), 1u);
    EXPECT_EQ(crowd.preloaded(), 0u);
    EXPECT_EQ(crowd.CachedAnswer(7), verdict);
  }
  {
    // Repeated preloads of one index count once.
    CrowdOracle crowd(&w);
    crowd.Preload(2, true);
    crowd.Preload(2, true);
    crowd.Preload(2, false);
    EXPECT_EQ(crowd.preloaded(), 1u);
    EXPECT_TRUE(crowd.CachedAnswer(2));
  }
  {
    // Preload many, purchase few: duplicate_requests stays exact with
    // preloads outnumbering purchases (the old known_count()-derived
    // formula wrapped to ~SIZE_MAX here).
    CrowdOracle crowd(&w);
    for (size_t i = 0; i < 5; ++i) crowd.Preload(i, true);
    const std::vector<char> batch = crowd.InspectBatch({0, 1, 9, 9});
    EXPECT_EQ(batch.size(), 4u);
    EXPECT_EQ(crowd.pairs_adjudicated(), 1u);  // only pair 9 was purchased
    EXPECT_EQ(crowd.preloaded(), 5u);
    EXPECT_EQ(crowd.total_requests(), 4u);
    EXPECT_EQ(crowd.duplicate_requests(), 3u);
    EXPECT_LT(crowd.duplicate_requests(), kHuge);

    const auto snapshot = crowd.AnswerSnapshot();
    EXPECT_EQ(snapshot.size(), 6u);  // 5 preloads + pair 9
    for (size_t k = 1; k < snapshot.size(); ++k) {
      EXPECT_LT(snapshot[k - 1].first, snapshot[k].first);  // ascending
    }
  }
}

CrowdOptions PoolOptions() {
  CrowdOptions o;
  o.worker_pool = 25;
  o.workers_per_pair = 3;
  o.worker_error_rate = 0.25;
  o.worker_error_spread = 0.2;
  o.seed = 7;
  return o;
}

TEST(CrowdOracleTest, WorkerPoolIsDeterministicAndHeterogeneous) {
  const data::Workload w = MakeWorkload(2000);
  const CrowdOptions o = PoolOptions();
  CrowdOracle a(&w, o), b(&w, o);
  for (size_t i = 0; i < 500; ++i) EXPECT_EQ(a.Label(i), b.Label(i));
  EXPECT_EQ(a.worker_answers(), b.worker_answers());

  // Planted per-worker errors stay in [0, 0.49] and actually spread out.
  double lo = 1.0, hi = 0.0;
  for (size_t wk = 0; wk < o.worker_pool; ++wk) {
    const double e = a.PlantedWorkerError(wk);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 0.49);
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  EXPECT_GT(hi - lo, 0.1);
}

TEST(CrowdOracleTest, DawidSkeneBeatsMajorityOnHeterogeneousPool) {
  const data::Workload w = MakeWorkload(4000);
  const CrowdOptions base = PoolOptions();
  CrowdOptions ds = base;
  ds.aggregation = CrowdAggregation::kDawidSkene;
  CrowdOracle majority(&w, base), em(&w, ds);
  // Same seed, same pool, same votes — only the fold differs. Batched so
  // the EM history grows in realistic task-sized purchases.
  std::vector<size_t> chunk;
  for (size_t begin = 0; begin < w.size(); begin += 1000) {
    chunk.clear();
    for (size_t i = begin; i < std::min(begin + 1000, w.size()); ++i) {
      chunk.push_back(i);
    }
    majority.InspectBatch(chunk);
    em.InspectBatch(chunk);
  }
  EXPECT_EQ(majority.worker_answers(), em.worker_answers());
  EXPECT_LT(em.VerdictErrorRate(), majority.VerdictErrorRate())
      << "majority " << majority.VerdictErrorRate() << " vs DS "
      << em.VerdictErrorRate();

  // And the EM's per-worker estimates track the planted error rates.
  const std::vector<double>& est = em.worker_error_estimates();
  ASSERT_EQ(est.size(), base.worker_pool);
  double mean_abs_dev = 0.0;
  for (size_t wk = 0; wk < base.worker_pool; ++wk) {
    mean_abs_dev += std::fabs(est[wk] - em.PlantedWorkerError(wk));
  }
  mean_abs_dev /= static_cast<double>(base.worker_pool);
  EXPECT_LT(mean_abs_dev, 0.06);
}

TEST(CrowdOracleTest, DawidSkeneFallsBackToMajorityOnThinEvidence) {
  const data::Workload w = MakeWorkload(500);
  CrowdOptions ds = PoolOptions();
  ds.aggregation = CrowdAggregation::kDawidSkene;
  ds.ds_min_adjudicated = 50;
  CrowdOptions maj = PoolOptions();
  CrowdOracle a(&w, ds), b(&w, maj);
  // Below the threshold every verdict must equal the majority fold.
  for (size_t i = 0; i < 49; ++i) EXPECT_EQ(a.Label(i), b.Label(i));
  EXPECT_TRUE(a.worker_error_estimates().empty());
}

TEST(CrowdOracleTest, DawidSkeneIsDeterministic) {
  const data::Workload w = MakeWorkload(1000);
  CrowdOptions ds = PoolOptions();
  ds.aggregation = CrowdAggregation::kDawidSkene;
  CrowdOracle a(&w, ds), b(&w, ds);
  std::vector<size_t> all(w.size());
  for (size_t i = 0; i < w.size(); ++i) all[i] = i;
  EXPECT_EQ(a.InspectBatch(all), b.InspectBatch(all));
  ASSERT_EQ(a.worker_error_estimates().size(),
            b.worker_error_estimates().size());
  for (size_t wk = 0; wk < a.worker_error_estimates().size(); ++wk) {
    EXPECT_EQ(a.worker_error_estimates()[wk], b.worker_error_estimates()[wk]);
  }
}

}  // namespace
}  // namespace humo::core
