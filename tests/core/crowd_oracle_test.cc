#include "core/crowd_oracle.h"

#include <gtest/gtest.h>

#include "data/logistic_generator.h"

namespace humo::core {
namespace {

data::Workload MakeWorkload(size_t n = 10000) {
  data::LogisticGeneratorOptions o;
  o.num_pairs = n;
  o.pairs_per_subset = 100;
  return data::GenerateLogisticWorkload(o);
}

TEST(CrowdOracleTest, PerfectWorkersGiveGroundTruth) {
  const data::Workload w = MakeWorkload(1000);
  CrowdOptions o;
  o.worker_error_rate = 0.0;
  CrowdOracle crowd(&w, o);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(crowd.Label(i), w[i].is_match);
  }
  EXPECT_DOUBLE_EQ(crowd.VerdictErrorRate(), 0.0);
}

TEST(CrowdOracleTest, CostCountsWorkerAnswers) {
  const data::Workload w = MakeWorkload(1000);
  CrowdOptions o;
  o.workers_per_pair = 5;
  CrowdOracle crowd(&w, o);
  crowd.Label(0);
  crowd.Label(1);
  crowd.Label(0);  // cached: no extra cost
  EXPECT_EQ(crowd.worker_answers(), 10u);
  EXPECT_EQ(crowd.pairs_adjudicated(), 2u);
  EXPECT_DOUBLE_EQ(crowd.CostFraction(), 10.0 / 1000.0);
}

TEST(CrowdOracleTest, VerdictsAreStableAcrossRequeries) {
  const data::Workload w = MakeWorkload(500);
  CrowdOptions o;
  o.worker_error_rate = 0.4;
  CrowdOracle crowd(&w, o);
  std::vector<bool> first;
  for (size_t i = 0; i < 100; ++i) first.push_back(crowd.Label(i));
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(crowd.Label(i), first[i]);
}

TEST(CrowdOracleTest, MajorityVoteBeatsSingleWorker) {
  const data::Workload w = MakeWorkload(20000);
  CrowdOptions one;
  one.workers_per_pair = 1;
  one.worker_error_rate = 0.2;
  CrowdOptions five = one;
  five.workers_per_pair = 5;
  CrowdOracle single(&w, one), majority(&w, five);
  for (size_t i = 0; i < w.size(); ++i) {
    single.Label(i);
    majority.Label(i);
  }
  // e=0.2: single-worker error 20%; 5-vote majority error ~5.8%.
  EXPECT_NEAR(single.VerdictErrorRate(), 0.2, 0.02);
  EXPECT_NEAR(majority.VerdictErrorRate(), 0.058, 0.02);
  EXPECT_LT(majority.VerdictErrorRate(), single.VerdictErrorRate());
}

TEST(CrowdOracleTest, VerdictErrorMatchesBinomialTheory) {
  const data::Workload w = MakeWorkload(20000);
  CrowdOptions o;
  o.workers_per_pair = 3;
  o.worker_error_rate = 0.1;
  CrowdOracle crowd(&w, o);
  for (size_t i = 0; i < w.size(); ++i) crowd.Label(i);
  // P(>=2 of 3 wrong) = 3 * 0.1^2 * 0.9 + 0.1^3 = 0.028.
  EXPECT_NEAR(crowd.VerdictErrorRate(), 0.028, 0.008);
}

TEST(CrowdOracleTest, ResetClearsEverything) {
  const data::Workload w = MakeWorkload(500);
  CrowdOracle crowd(&w);
  crowd.Label(0);
  crowd.Reset();
  EXPECT_EQ(crowd.worker_answers(), 0u);
  EXPECT_EQ(crowd.pairs_adjudicated(), 0u);
}

TEST(CrowdOracleTest, DeterministicUnderSeed) {
  const data::Workload w = MakeWorkload(500);
  CrowdOptions o;
  o.worker_error_rate = 0.3;
  o.seed = 99;
  CrowdOracle a(&w, o), b(&w, o);
  for (size_t i = 0; i < 200; ++i) EXPECT_EQ(a.Label(i), b.Label(i));
}

}  // namespace
}  // namespace humo::core
