#include "core/solution.h"

#include <gtest/gtest.h>

#include "eval/evaluation.h"

namespace humo::core {
namespace {

/// 100 pairs: bottom 60 unmatch, top 40 match, with 10 noisy labels in the
/// middle band so automatic labeling there is imperfect.
data::Workload MixedWorkload() {
  std::vector<data::InstancePair> pairs;
  for (uint32_t i = 0; i < 100; ++i) {
    const double sim = static_cast<double>(i) / 100.0;
    bool is_match = i >= 60;
    if (i >= 45 && i < 55) is_match = (i % 2 == 0);  // noisy middle band
    pairs.push_back({i, i, sim, is_match});
  }
  return data::Workload(std::move(pairs));
}

TEST(ApplySolutionTest, LabelsZonesCorrectly) {
  const data::Workload w = MixedWorkload();
  SubsetPartition p(&w, 10);  // 10 subsets of 10
  Oracle oracle(&w);
  HumoSolution sol;
  sol.h_lo = 4;
  sol.h_hi = 5;  // pairs 40..59 human-labeled
  const auto result = ApplySolution(p, sol, &oracle);
  ASSERT_EQ(result.labels.size(), 100u);
  // D-: all unmatch.
  for (size_t i = 0; i < 40; ++i) EXPECT_EQ(result.labels[i], 0);
  // DH: exactly ground truth (perfect oracle).
  for (size_t i = 40; i < 60; ++i)
    EXPECT_EQ(result.labels[i], w[i].is_match ? 1 : 0);
  // D+: all match.
  for (size_t i = 60; i < 100; ++i) EXPECT_EQ(result.labels[i], 1);
}

TEST(ApplySolutionTest, HumanCostEqualsDhSize) {
  const data::Workload w = MixedWorkload();
  SubsetPartition p(&w, 10);
  Oracle oracle(&w);
  HumoSolution sol;
  sol.h_lo = 3;
  sol.h_hi = 6;
  const auto result = ApplySolution(p, sol, &oracle);
  EXPECT_EQ(result.human_cost, 40u);
  EXPECT_DOUBLE_EQ(result.human_cost_fraction, 0.4);
}

TEST(ApplySolutionTest, CostIncludesPriorSampling) {
  const data::Workload w = MixedWorkload();
  SubsetPartition p(&w, 10);
  Oracle oracle(&w);
  oracle.Label(0);  // sampling outside DH
  oracle.Label(45); // sampling inside DH (not double-counted)
  HumoSolution sol;
  sol.h_lo = 4;
  sol.h_hi = 4;
  const auto result = ApplySolution(p, sol, &oracle);
  EXPECT_EQ(result.human_cost, 11u);  // 10 DH pairs + 1 outside sample
}

TEST(ApplySolutionTest, FullHumanSolutionIsPerfect) {
  const data::Workload w = MixedWorkload();
  SubsetPartition p(&w, 10);
  Oracle oracle(&w);
  HumoSolution sol;
  sol.h_lo = 0;
  sol.h_hi = 9;
  const auto result = ApplySolution(p, sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_EQ(result.human_cost, 100u);
}

TEST(ApplySolutionTest, EmptySolutionIsMachineOnly) {
  const data::Workload w = MixedWorkload();
  SubsetPartition p(&w, 10);
  Oracle oracle(&w);
  HumoSolution sol;
  sol.empty = true;
  sol.h_lo = 5;  // split point: subsets >= 5 labeled match
  const auto result = ApplySolution(p, sol, &oracle);
  EXPECT_EQ(result.human_cost, 0u);
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(result.labels[i], 0);
  for (size_t i = 50; i < 100; ++i) EXPECT_EQ(result.labels[i], 1);
}

TEST(SolutionTest, NumHumanSubsets) {
  HumoSolution sol;
  sol.h_lo = 2;
  sol.h_hi = 5;
  EXPECT_EQ(sol.NumHumanSubsets(), 4u);
  sol.empty = true;
  EXPECT_EQ(sol.NumHumanSubsets(), 0u);
}

TEST(DescribeSolutionTest, RendersRangeAndCounts) {
  const data::Workload w = MixedWorkload();
  SubsetPartition p(&w, 10);
  HumoSolution sol;
  sol.h_lo = 2;
  sol.h_hi = 5;
  const std::string desc = DescribeSolution(p, sol);
  EXPECT_NE(desc.find("[2, 5]"), std::string::npos);
  EXPECT_NE(desc.find("4 subsets"), std::string::npos);
  EXPECT_NE(desc.find("40 pairs"), std::string::npos);
  sol.empty = true;
  EXPECT_NE(DescribeSolution(p, sol).find("machine-only"), std::string::npos);
}

}  // namespace
}  // namespace humo::core
