#include "core/gp_subset_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace humo::core {
namespace {

/// Builds a model over `m` subsets of size 100 whose proportions follow a
/// smooth ramp, with every 4th subset observed.
GpSubsetModel MakeModel(size_t m = 20) {
  std::vector<double> train_x, train_y;
  std::vector<double> v(m), n(m, 100.0);
  for (size_t k = 0; k < m; ++k) {
    v[k] = (static_cast<double>(k) + 0.5) / static_cast<double>(m);
    // Every 4th subset observed, plus the last one so the top of the range
    // is interpolation rather than mean-reverting extrapolation.
    if (k % 4 == 0 || k + 1 == m) {
      train_x.push_back(v[k]);
      train_y.push_back(v[k]);  // proportion == similarity (a clean ramp)
    }
  }
  gp::GpOptions o;
  o.noise_variance = 1e-6;
  auto gp = gp::GpRegression::Fit(std::make_unique<gp::RbfKernel>(0.5, 0.3),
                                  train_x, train_y, o);
  EXPECT_TRUE(gp.ok());
  return GpSubsetModel(std::move(*gp), v, n);
}

TEST(GpSubsetModelTest, PosteriorMeansTrackRamp) {
  const auto model = MakeModel();
  for (size_t k = 0; k < model.num_subsets(); ++k) {
    EXPECT_NEAR(model.PosteriorMean(k), model.AvgSimilarity(k), 0.05)
        << "subset " << k;
  }
}

TEST(GpSubsetModelTest, MeansClampedToUnitInterval) {
  const auto model = MakeModel();
  for (size_t k = 0; k < model.num_subsets(); ++k) {
    EXPECT_GE(model.PosteriorMean(k), 0.0);
    EXPECT_LE(model.PosteriorMean(k), 1.0);
  }
}

TEST(GpSubsetModelTest, PopulationInRange) {
  const auto model = MakeModel();
  EXPECT_DOUBLE_EQ(model.PopulationInRange(0, 19), 2000.0);
  EXPECT_DOUBLE_EQ(model.PopulationInRange(3, 5), 300.0);
  EXPECT_DOUBLE_EQ(model.PopulationInRange(5, 3), 0.0);
}

TEST(GpRangeAccumulatorTest, MatchesDirectJointPrediction) {
  const auto model = MakeModel();
  GpRangeAccumulator acc(&model);
  acc.SetRange(4, 9);
  // Direct computation via the GP's joint prediction.
  std::vector<double> q, weights;
  for (size_t k = 4; k <= 9; ++k) {
    q.push_back(model.AvgSimilarity(k));
    weights.push_back(model.SubsetSize(k));
  }
  const auto joint = model.gp().PredictJoint(q);
  // Means may differ slightly because the accumulator uses clamped means;
  // on this ramp nothing clamps, so they should agree closely.
  double direct_mean = 0.0;
  for (size_t i = 0; i < q.size(); ++i)
    direct_mean += weights[i] * std::clamp(joint.mean[i], 0.0, 1.0);
  EXPECT_NEAR(acc.TotalMean(), direct_mean, 1e-6);
  EXPECT_NEAR(acc.TotalStdDev(), joint.WeightedTotalStdDev(weights), 1e-6);
}

TEST(GpRangeAccumulatorTest, IncrementalOpsMatchRebuild) {
  const auto model = MakeModel();
  GpRangeAccumulator inc(&model), direct(&model);
  inc.SetRange(5, 10);
  inc.ExtendRight();   // [5, 11]
  inc.ExtendLeft();    // [4, 11]
  inc.ShrinkRight();   // [4, 10]
  inc.ShrinkLeft();    // [5, 10]
  inc.ExtendRight();   // [5, 11]
  direct.SetRange(5, 11);
  EXPECT_NEAR(inc.TotalMean(), direct.TotalMean(), 1e-9);
  EXPECT_NEAR(inc.TotalStdDev(), direct.TotalStdDev(), 1e-9);
  EXPECT_EQ(inc.a(), direct.a());
  EXPECT_EQ(inc.b(), direct.b());
}

TEST(GpRangeAccumulatorTest, ShrinkToEmpty) {
  const auto model = MakeModel();
  GpRangeAccumulator acc(&model);
  acc.SetRange(3, 3);
  EXPECT_FALSE(acc.IsEmpty());
  acc.ShrinkLeft();
  EXPECT_TRUE(acc.IsEmpty());
  EXPECT_DOUBLE_EQ(acc.TotalMean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.TotalStdDev(), 0.0);
  EXPECT_DOUBLE_EQ(acc.LowerBound(0.9), 0.0);
}

TEST(GpRangeAccumulatorTest, BoundsBracketMean) {
  const auto model = MakeModel();
  GpRangeAccumulator acc(&model);
  acc.SetRange(2, 12);
  const double mean = acc.TotalMean();
  EXPECT_LE(acc.LowerBound(0.9), mean);
  EXPECT_GE(acc.UpperBound(0.9), mean);
  EXPECT_GE(acc.LowerBound(0.9), 0.0);
  EXPECT_LE(acc.UpperBound(0.9), acc.Population());
}

TEST(GpRangeAccumulatorTest, HigherConfidenceWidens) {
  const auto model = MakeModel();
  GpRangeAccumulator acc(&model);
  acc.SetRange(2, 12);
  const double narrow = acc.UpperBound(0.8) - acc.LowerBound(0.8);
  const double wide = acc.UpperBound(0.99) - acc.LowerBound(0.99);
  EXPECT_GE(wide, narrow);
}

TEST(GpRangeAccumulatorTest, VarianceShrinksNearObservedSubsets) {
  const auto model = MakeModel();
  // Range consisting of a single observed subset (k=4 is in training) vs a
  // single unobserved one far from training points.
  GpRangeAccumulator observed(&model), unobserved(&model);
  observed.SetRange(4, 4);
  unobserved.SetRange(18, 18);  // k=18 not observed (18 % 4 != 0)
  EXPECT_LT(observed.TotalStdDev(), unobserved.TotalStdDev());
}

TEST(GpRangeAccumulatorTest, ClearResets) {
  const auto model = MakeModel();
  GpRangeAccumulator acc(&model);
  acc.SetRange(1, 5);
  acc.Clear();
  EXPECT_TRUE(acc.IsEmpty());
  EXPECT_DOUBLE_EQ(acc.Population(), 0.0);
}

/// Builds a model where some subsets carry exact observations and the rest
/// independent scatter.
GpSubsetModel MakeModelWithObservations(double scatter_var,
                                        double inflation = 1.0) {
  const size_t m = 10;
  std::vector<double> train_x, train_y;
  std::vector<double> v(m), n(m, 100.0);
  std::vector<SubsetObservation> obs(m);
  std::vector<double> scatter(m, scatter_var);
  for (size_t k = 0; k < m; ++k) {
    v[k] = (static_cast<double>(k) + 0.5) / static_cast<double>(m);
    if (k % 2 == 0) {
      train_x.push_back(v[k]);
      train_y.push_back(0.5);
      obs[k].exact = true;
      obs[k].proportion = 0.5;
      scatter[k] = 0.0;
    }
  }
  gp::GpOptions o;
  o.noise_variance = 1e-8;
  auto gp = gp::GpRegression::Fit(std::make_unique<gp::RbfKernel>(0.25, 0.4),
                                  train_x, train_y, o);
  EXPECT_TRUE(gp.ok());
  return GpSubsetModel(std::move(*gp), v, n, obs, scatter, inflation);
}

TEST(GpSubsetModelTest, ExactObservationsOverrideGpMean) {
  const auto model = MakeModelWithObservations(0.0);
  for (size_t k = 0; k < model.num_subsets(); k += 2) {
    EXPECT_TRUE(model.IsExact(k));
    EXPECT_DOUBLE_EQ(model.PosteriorMean(k), 0.5);
  }
  EXPECT_FALSE(model.IsExact(1));
}

TEST(GpRangeAccumulatorTest, ExactOnlyRangeHasZeroVariance) {
  const auto model = MakeModelWithObservations(0.01);
  GpRangeAccumulator acc(&model);
  acc.SetRange(0, 0);  // a single exact subset
  EXPECT_DOUBLE_EQ(acc.TotalStdDev(), 0.0);
  EXPECT_DOUBLE_EQ(acc.TotalMean(), 50.0);  // 100 pairs * 0.5
  EXPECT_DOUBLE_EQ(acc.LowerBound(0.99), acc.UpperBound(0.99));
}

TEST(GpRangeAccumulatorTest, ScatterWidensNonExactRanges) {
  const auto with_scatter = MakeModelWithObservations(0.01);
  const auto without = MakeModelWithObservations(0.0);
  GpRangeAccumulator a(&with_scatter), b(&without);
  a.SetRange(0, 9);
  b.SetRange(0, 9);
  EXPECT_GT(a.TotalStdDev(), b.TotalStdDev());
  // Five non-exact subsets of 100 pairs each at scatter var 0.01:
  // extra variance = 5 * (100^2 * 0.01) = 500.
  const double extra = a.TotalStdDev() * a.TotalStdDev() -
                       b.TotalStdDev() * b.TotalStdDev();
  EXPECT_NEAR(extra, 500.0, 1e-6);
}

TEST(GpRangeAccumulatorTest, VarianceInflationScalesGpPart) {
  const auto plain = MakeModelWithObservations(0.0, 1.0);
  const auto inflated = MakeModelWithObservations(0.0, 4.0);
  GpRangeAccumulator a(&plain), b(&inflated);
  a.SetRange(0, 9);
  b.SetRange(0, 9);
  // Inflation 4 on the GP variance part doubles its std contribution.
  EXPECT_NEAR(b.TotalStdDev(), 2.0 * a.TotalStdDev(), 1e-9);
}

TEST(GpRangeAccumulatorTest, IncrementalOpsHandleExactSubsets) {
  const auto model = MakeModelWithObservations(0.02);
  GpRangeAccumulator inc(&model), direct(&model);
  inc.SetRange(2, 6);
  inc.ExtendLeft();   // adds exact subset 1? (1 is odd -> non-exact)
  inc.ExtendRight();  // adds subset 7
  inc.ShrinkLeft();
  direct.SetRange(2, 7);
  EXPECT_NEAR(inc.TotalMean(), direct.TotalMean(), 1e-9);
  EXPECT_NEAR(inc.TotalStdDev(), direct.TotalStdDev(), 1e-9);
}

}  // namespace
}  // namespace humo::core
