#include "core/oracle.h"

#include <gtest/gtest.h>

#include "data/logistic_generator.h"

namespace humo::core {
namespace {

data::Workload SmallWorkload() {
  std::vector<data::InstancePair> pairs;
  for (uint32_t i = 0; i < 10; ++i) {
    pairs.push_back({i, i, static_cast<double>(i) / 10.0, i >= 5});
  }
  return data::Workload(std::move(pairs));
}

TEST(OracleTest, ReturnsGroundTruth) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(oracle.Label(i), w[i].is_match);
  }
}

TEST(OracleTest, CostCountsDistinctPairs) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  EXPECT_EQ(oracle.cost(), 0u);
  oracle.Label(3);
  oracle.Label(3);
  oracle.Label(3);
  EXPECT_EQ(oracle.cost(), 1u);
  oracle.Label(4);
  EXPECT_EQ(oracle.cost(), 2u);
}

TEST(OracleTest, CostFraction) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  oracle.Label(0);
  oracle.Label(1);
  EXPECT_DOUBLE_EQ(oracle.CostFraction(), 0.2);
}

TEST(OracleTest, WasAsked) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  EXPECT_FALSE(oracle.WasAsked(2));
  oracle.Label(2);
  EXPECT_TRUE(oracle.WasAsked(2));
}

TEST(OracleTest, ResetClearsCost) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  oracle.Label(0);
  oracle.Reset();
  EXPECT_EQ(oracle.cost(), 0u);
  EXPECT_FALSE(oracle.WasAsked(0));
}

TEST(OracleTest, ErrorRateFlipsSomeAnswers) {
  const data::Workload w = SmallWorkload();
  Oracle noisy(&w, /*error_rate=*/0.5, /*seed=*/1);
  size_t wrong = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (noisy.Label(i) != w[i].is_match) ++wrong;
  }
  EXPECT_GT(wrong, 0u);
  EXPECT_LT(wrong, w.size());
}

TEST(OracleTest, ErrorsAreStableAcrossRepeatQueries) {
  const data::Workload w = SmallWorkload();
  Oracle noisy(&w, 0.5, 7);
  std::vector<bool> first;
  for (size_t i = 0; i < w.size(); ++i) first.push_back(noisy.Label(i));
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(noisy.Label(i), first[i]) << "answer changed on re-query " << i;
  }
}

TEST(OracleTest, ErrorRateApproximatelyRealized) {
  data::LogisticGeneratorOptions o;
  o.num_pairs = 20000;
  const data::Workload w = data::GenerateLogisticWorkload(o);
  Oracle noisy(&w, 0.1, 3);
  size_t wrong = 0;
  for (size_t i = 0; i < w.size(); ++i)
    if (noisy.Label(i) != w[i].is_match) ++wrong;
  EXPECT_NEAR(static_cast<double>(wrong) / w.size(), 0.1, 0.02);
}

TEST(OracleTest, ZeroErrorRateIsExact) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w, 0.0, 42);
  for (size_t i = 0; i < w.size(); ++i)
    EXPECT_EQ(oracle.Label(i), w[i].is_match);
}

}  // namespace
}  // namespace humo::core
