#include "core/oracle.h"

#include <gtest/gtest.h>

#include "data/logistic_generator.h"

namespace humo::core {
namespace {

data::Workload SmallWorkload() {
  std::vector<data::InstancePair> pairs;
  for (uint32_t i = 0; i < 10; ++i) {
    pairs.push_back({i, i, static_cast<double>(i) / 10.0, i >= 5});
  }
  return data::Workload(std::move(pairs));
}

TEST(OracleTest, ReturnsGroundTruth) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(oracle.Label(i), w[i].is_match);
  }
}

TEST(OracleTest, CostCountsDistinctPairs) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  EXPECT_EQ(oracle.cost(), 0u);
  oracle.Label(3);
  oracle.Label(3);
  oracle.Label(3);
  EXPECT_EQ(oracle.cost(), 1u);
  oracle.Label(4);
  EXPECT_EQ(oracle.cost(), 2u);
}

TEST(OracleTest, CostFraction) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  oracle.Label(0);
  oracle.Label(1);
  EXPECT_DOUBLE_EQ(oracle.CostFraction(), 0.2);
}

TEST(OracleTest, WasAsked) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  EXPECT_FALSE(oracle.WasAsked(2));
  oracle.Label(2);
  EXPECT_TRUE(oracle.WasAsked(2));
}

TEST(OracleTest, ResetClearsCost) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  oracle.Label(0);
  oracle.Reset();
  EXPECT_EQ(oracle.cost(), 0u);
  EXPECT_FALSE(oracle.WasAsked(0));
}

TEST(OracleTest, ErrorRateFlipsSomeAnswers) {
  const data::Workload w = SmallWorkload();
  Oracle noisy(&w, /*error_rate=*/0.5, /*seed=*/1);
  size_t wrong = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (noisy.Label(i) != w[i].is_match) ++wrong;
  }
  EXPECT_GT(wrong, 0u);
  EXPECT_LT(wrong, w.size());
}

TEST(OracleTest, ErrorsAreStableAcrossRepeatQueries) {
  const data::Workload w = SmallWorkload();
  Oracle noisy(&w, 0.5, 7);
  std::vector<bool> first;
  for (size_t i = 0; i < w.size(); ++i) first.push_back(noisy.Label(i));
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(noisy.Label(i), first[i]) << "answer changed on re-query " << i;
  }
}

TEST(OracleTest, ErrorRateApproximatelyRealized) {
  data::LogisticGeneratorOptions o;
  o.num_pairs = 20000;
  const data::Workload w = data::GenerateLogisticWorkload(o);
  Oracle noisy(&w, 0.1, 3);
  size_t wrong = 0;
  for (size_t i = 0; i < w.size(); ++i)
    if (noisy.Label(i) != w[i].is_match) ++wrong;
  EXPECT_NEAR(static_cast<double>(wrong) / w.size(), 0.1, 0.02);
}

TEST(OracleTest, ZeroErrorRateIsExact) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w, 0.0, 42);
  for (size_t i = 0; i < w.size(); ++i)
    EXPECT_EQ(oracle.Label(i), w[i].is_match);
}

TEST(OracleTest, PreloadIsFreeAndServedFromMemory) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  oracle.Preload(3, true);
  oracle.Preload(7, false);
  EXPECT_EQ(oracle.cost(), 0u);
  EXPECT_EQ(oracle.preloaded(), 2u);
  EXPECT_EQ(oracle.total_requests(), 0u);
  EXPECT_TRUE(oracle.WasAsked(3));
  EXPECT_TRUE(oracle.WasAsked(7));
  EXPECT_FALSE(oracle.WasAsked(4));
  // A preloaded answer wins over the ground truth — it records what the
  // human actually said when the pair was originally inspected.
  EXPECT_TRUE(oracle.CachedAnswer(3));
  EXPECT_FALSE(oracle.CachedAnswer(7));
  EXPECT_TRUE(oracle.Label(3));
  EXPECT_EQ(oracle.cost(), 0u);  // served from memory, still free
  EXPECT_EQ(oracle.total_requests(), 1u);
}

TEST(OracleTest, PreloadDoesNotDoubleCountOrOverride) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  EXPECT_TRUE(oracle.Label(6));  // fresh inspection first
  oracle.Preload(6, false);      // no-op: an answer already exists
  EXPECT_EQ(oracle.preloaded(), 0u);
  EXPECT_EQ(oracle.cost(), 1u);
  EXPECT_TRUE(oracle.CachedAnswer(6));
  oracle.Preload(2, true);
  oracle.Preload(2, false);  // second preload of the same pair: no-op
  EXPECT_EQ(oracle.preloaded(), 1u);
  EXPECT_TRUE(oracle.CachedAnswer(2));
}

TEST(OracleTest, CostCountsOnlyFreshInspectionsNextToPreloads) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  oracle.Preload(0, false);
  oracle.Preload(1, true);
  const size_t matches = oracle.InspectRange(0, 5);
  // Pairs 0/1 served from preloads (1 true), 2-4 fresh (is_match false).
  EXPECT_EQ(matches, 1u);
  EXPECT_EQ(oracle.cost(), 3u);
  EXPECT_EQ(oracle.preloaded(), 2u);
  EXPECT_EQ(oracle.CostFraction(), 0.3);
}

TEST(OracleTest, AnswerSnapshotIsSortedAndComplete) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  oracle.Label(8);
  oracle.Label(1);
  oracle.Preload(5, true);
  const auto snapshot = oracle.AnswerSnapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].first, 1u);
  EXPECT_EQ(snapshot[1].first, 5u);
  EXPECT_EQ(snapshot[2].first, 8u);
  EXPECT_FALSE(snapshot[0].second);  // pair 1 is an unmatch
  EXPECT_TRUE(snapshot[1].second);   // preloaded answer
  EXPECT_TRUE(snapshot[2].second);   // pair 8 is a match
}

TEST(OracleTest, ResetClearsPreloads) {
  const data::Workload w = SmallWorkload();
  Oracle oracle(&w);
  oracle.Preload(5, true);
  oracle.Label(6);
  oracle.Reset();
  EXPECT_EQ(oracle.cost(), 0u);
  EXPECT_EQ(oracle.preloaded(), 0u);
  EXPECT_EQ(oracle.total_requests(), 0u);
  EXPECT_FALSE(oracle.WasAsked(5));
}

/// Regression: cost() was previously DERIVED as answers.size() -
/// preloaded, so any preload/inspect interleaving that let `preloaded`
/// outrun the answer count wrapped cost() to ~SIZE_MAX. The counters are
/// now tracked directly; this pins every ordering of preload and fresh
/// inspection on overlapping and disjoint indices.
TEST(OracleTest, CostNeverUnderflowsAcrossPreloadInspectOrderings) {
  const data::Workload w = SmallWorkload();
  const size_t kHuge = static_cast<size_t>(-1) / 2;

  {
    // Preload then inspect the SAME pair: served from memory, still free.
    Oracle oracle(&w);
    oracle.Preload(3, true);  // ground truth for pair 3 is false
    EXPECT_EQ(oracle.cost(), 0u);
    EXPECT_TRUE(oracle.Label(3));  // preloaded answer wins over truth
    EXPECT_EQ(oracle.cost(), 0u);
    EXPECT_LT(oracle.cost(), kHuge);
    EXPECT_EQ(oracle.preloaded(), 1u);
    EXPECT_EQ(oracle.total_requests(), 1u);
    EXPECT_EQ(oracle.duplicate_requests(), 1u);
  }
  {
    // Inspect fresh FIRST, then preload the same pair: the preload is a
    // no-op and must not inflate preloaded() past the answer count.
    Oracle oracle(&w);
    EXPECT_TRUE(oracle.Label(7));
    oracle.Preload(7, false);
    oracle.Preload(7, false);
    EXPECT_EQ(oracle.cost(), 1u);
    EXPECT_EQ(oracle.preloaded(), 0u);
    EXPECT_TRUE(oracle.CachedAnswer(7));  // history not rewritten
  }
  {
    // Repeated preloads of one index count once.
    Oracle oracle(&w);
    oracle.Preload(2, true);
    oracle.Preload(2, true);
    oracle.Preload(2, false);
    EXPECT_EQ(oracle.preloaded(), 1u);
    EXPECT_EQ(oracle.cost(), 0u);
    EXPECT_TRUE(oracle.CachedAnswer(2));
  }
  {
    // Mixed: preloads and fresh inspections on disjoint indices, then a
    // batch straddling both. cost() counts only the fresh ones.
    Oracle oracle(&w);
    oracle.Preload(0, false);
    oracle.Preload(9, true);
    oracle.Label(4);
    const auto answers = oracle.InspectBatch({0, 4, 5, 9});
    EXPECT_EQ(answers.size(), 4u);
    EXPECT_EQ(oracle.cost(), 2u);       // pairs 4 and 5
    EXPECT_EQ(oracle.preloaded(), 2u);  // pairs 0 and 9
    EXPECT_LT(oracle.cost(), kHuge);
    EXPECT_EQ(oracle.total_requests(), 5u);
    EXPECT_EQ(oracle.duplicate_requests(), 3u);
  }
}

TEST(OracleTest, AnswerMemoryStaysPagedAndLean) {
  // A sparse inspection pattern across a wide index range must only pay
  // for the pages it touches.
  std::vector<data::InstancePair> pairs;
  const size_t n = 200000;
  pairs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    pairs.push_back({i, i, static_cast<double>(i) / static_cast<double>(n),
                     false});
  }
  const data::Workload w{std::move(pairs)};
  Oracle oracle(&w);
  oracle.Label(0);
  oracle.Label(n - 1);
  const size_t sparse_bytes = oracle.AnswerMemoryBytes();
  // Two pages (~1 KiB each) plus the page-pointer table.
  EXPECT_LT(sparse_bytes, 16 * 1024u);

  oracle.InspectRange(0, n);
  const size_t full_bytes = oracle.AnswerMemoryBytes();
  EXPECT_EQ(oracle.cost(), n);
  // Full inspection: ~2 bits/pair plus page table — far under the ~50
  // bytes/pair an unordered_map node store costs.
  EXPECT_LT(full_bytes, n);
}

}  // namespace
}  // namespace humo::core
