#include "core/baseline_optimizer.h"

#include <gtest/gtest.h>

#include "core/solution.h"
#include "data/logistic_generator.h"
#include "eval/evaluation.h"

namespace humo::core {
namespace {

data::Workload MonotoneWorkload(size_t n = 40000, double tau = 14.0,
                                uint64_t seed = 1) {
  data::LogisticGeneratorOptions o;
  o.num_pairs = n;
  o.pairs_per_subset = 200;
  o.tau = tau;
  o.sigma = 0.05;
  o.seed = seed;
  return data::GenerateLogisticWorkload(o);
}

TEST(BaselineOptimizerTest, MeetsQualityOnMonotoneWorkload) {
  const data::Workload w = MonotoneWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  BaselineOptimizer base;
  QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = base.Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  const auto result = ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  EXPECT_GE(q.precision, 0.9);
  EXPECT_GE(q.recall, 0.9);
}

TEST(BaselineOptimizerTest, CostGrowsWithRequirement) {
  const data::Workload w = MonotoneWorkload();
  SubsetPartition p(&w, 200);
  BaselineOptimizer base;
  auto cost_at = [&](double level) {
    Oracle oracle(&w);
    QualityRequirement req{level, level, 0.9};
    auto sol = base.Optimize(p, req, &oracle);
    EXPECT_TRUE(sol.ok());
    const auto result = ApplySolution(p, *sol, &oracle);
    return result.human_cost;
  };
  EXPECT_LE(cost_at(0.75), cost_at(0.95));
}

TEST(BaselineOptimizerTest, DeterministicNoRandomness) {
  const data::Workload w = MonotoneWorkload();
  SubsetPartition p(&w, 200);
  BaselineOptimizer base;
  QualityRequirement req{0.85, 0.85, 0.9};
  Oracle o1(&w), o2(&w);
  auto s1 = base.Optimize(p, req, &o1);
  auto s2 = base.Optimize(p, req, &o2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->h_lo, s2->h_lo);
  EXPECT_EQ(s1->h_hi, s2->h_hi);
}

TEST(BaselineOptimizerTest, SolutionWithinBounds) {
  const data::Workload w = MonotoneWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  BaselineOptimizer base;
  QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = base.Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->h_lo, sol->h_hi);
  EXPECT_LT(sol->h_hi, p.num_subsets());
}

TEST(BaselineOptimizerTest, OracleCostMatchesDhSize) {
  // BASE labels exactly the subsets it absorbed into DH.
  const data::Workload w = MonotoneWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  BaselineOptimizer base;
  QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = base.Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(oracle.cost(), p.PairsInRange(sol->h_lo, sol->h_hi));
}

TEST(BaselineOptimizerTest, LargerWindowIsMoreConservative) {
  const data::Workload w = MonotoneWorkload();
  SubsetPartition p(&w, 200);
  QualityRequirement req{0.9, 0.9, 0.9};
  auto cost_with_window = [&](size_t window) {
    Oracle oracle(&w);
    BaselineOptions o;
    o.window_subsets = window;
    auto sol = BaselineOptimizer(o).Optimize(p, req, &oracle);
    EXPECT_TRUE(sol.ok());
    return ApplySolution(p, *sol, &oracle).human_cost;
  };
  // Not strictly monotone in theory, but 3 vs 10 should order on this
  // smooth workload.
  EXPECT_LE(cost_with_window(3), cost_with_window(10));
}

TEST(BaselineOptimizerTest, EasierWorkloadNeedsLessHumanWork) {
  const data::Workload easy = MonotoneWorkload(40000, 18.0, 2);
  const data::Workload hard = MonotoneWorkload(40000, 8.0, 2);
  QualityRequirement req{0.9, 0.9, 0.9};
  BaselineOptimizer base;
  auto cost_of = [&](const data::Workload& w) {
    SubsetPartition p(&w, 200);
    Oracle oracle(&w);
    auto sol = base.Optimize(p, req, &oracle);
    EXPECT_TRUE(sol.ok());
    return ApplySolution(p, *sol, &oracle).human_cost_fraction;
  };
  EXPECT_LT(cost_of(easy), cost_of(hard));
}

TEST(BaselineOptimizerTest, TrivialRequirementStaysCheap) {
  const data::Workload w = MonotoneWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  BaselineOptimizer base;
  QualityRequirement req{0.05, 0.05, 0.9};
  auto sol = base.Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  // Nearly nothing should be needed beyond the seed subsets.
  EXPECT_LT(ApplySolution(p, *sol, &oracle).human_cost_fraction, 0.2);
}

TEST(BaselineOptimizerTest, RejectsBadInputs) {
  const data::Workload w = MonotoneWorkload(2000);
  SubsetPartition p(&w, 200);
  QualityRequirement req{0.9, 0.9, 0.9};
  BaselineOptimizer base;
  EXPECT_FALSE(base.Optimize(p, req, nullptr).ok());
  const data::Workload empty;
  SubsetPartition pe(&empty, 200);
  Oracle oracle(&empty);
  EXPECT_FALSE(base.Optimize(pe, req, &oracle).ok());
  BaselineOptions bad;
  bad.window_subsets = 0;
  Oracle o2(&w);
  EXPECT_FALSE(BaselineOptimizer(bad).Optimize(p, req, &o2).ok());
}

TEST(BaselineOptimizerTest, ExtremeRequirementConsumesWholeWorkload) {
  // alpha = beta = 1.0 cannot be certified from windows unless the
  // workload is perfectly separated, so DH should grow very large.
  data::LogisticGeneratorOptions o;
  o.num_pairs = 10000;
  o.pairs_per_subset = 100;
  o.tau = 10.0;
  o.sigma = 0.1;
  const data::Workload w = data::GenerateLogisticWorkload(o);
  SubsetPartition p(&w, 100);
  Oracle oracle(&w);
  BaselineOptimizer base;
  QualityRequirement req{1.0, 1.0, 0.9};
  auto sol = base.Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  const auto result = ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  EXPECT_GE(q.precision, 0.99);
  EXPECT_GE(q.recall, 0.99);
}

TEST(BaselineOptimizerTest, CustomStartSubset) {
  const data::Workload w = MonotoneWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  BaselineOptions o;
  o.start_subset = 10;
  BaselineOptimizer base(o);
  QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = base.Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  const auto result = ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  EXPECT_GE(q.precision, 0.88);  // start position affects cost, not safety
}

}  // namespace
}  // namespace humo::core
