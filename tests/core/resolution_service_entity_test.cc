#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/resolution_service.h"
#include "data/pair_simulator.h"
#include "data/workload_stream.h"
#include "entity/entity_clustering.h"

namespace humo {
namespace {

using entity::EntityClustering;
using entity::RecordRef;

/// The snapshot's ENTITY VIEW rides the same RCU publish as the labels:
/// wait-free EntityOf/MembersOf reads must stay internally consistent
/// (checksummed, version-monotonic, agreeing with the served labels) while
/// ingest and certification churn underneath.
class ResolutionServiceEntityTest : public ::testing::Test {
 protected:
  static data::Workload ds_;

  static void SetUpTestSuite() {
    ds_ = data::SimulatePairs(data::DsConfigSmall(555, 8000));
  }
};

data::Workload ResolutionServiceEntityTest::ds_;

core::ResolutionServiceOptions ServiceOptions() {
  core::ResolutionServiceOptions options;
  options.streaming.sampling.seed = 21;
  options.crowd_workers = 2;
  return options;
}

/// One snapshot's entity view must agree with its labels. The simulated
/// workloads give every pair its own two records (left source 0, right
/// source 1), so label 1 <=> same entity with no transitive shortcuts.
void CheckSnapshotEntityView(const core::ResolutionSnapshot& snap) {
  ASSERT_TRUE(snap.Validate());
  const EntityClustering& entities = snap.entities();
  ASSERT_EQ(entities.num_records() == 0, snap.pairs() == 0);
  if (snap.pairs() == 0) return;

  const data::Workload& w = snap.workload();
  const size_t probes[] = {0, snap.pairs() / 3, snap.pairs() / 2,
                           snap.pairs() - 1};
  for (const size_t i : probes) {
    const data::InstancePair pair = w[i];
    const RecordRef left{0, pair.left_id};
    const RecordRef right{1, pair.right_id};
    const auto el = snap.EntityOf(left);
    const auto er = snap.EntityOf(right);
    ASSERT_TRUE(el.has_value());
    ASSERT_TRUE(er.has_value());
    ASSERT_EQ(*el == *er, snap.LabelOf(i) == 1) << "pair " << i;
    const auto members = snap.MembersOf(*el);
    ASSERT_TRUE(members.Contains(left));
    ASSERT_LE(members.size(), 2u);  // degree-1 records: pairs at most
  }
  ASSERT_LE(snap.num_entities(), entities.num_records());
}

TEST_F(ResolutionServiceEntityTest, EntityViewConsistentUnderConcurrentIngest) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  data::WorkloadStreamOptions stream_options;
  stream_options.num_shards = 40;
  data::WorkloadStream stream(&ds_, stream_options);

  core::ResolutionService service(ServiceOptions(), req);

  constexpr size_t kReaders = 3;
  std::atomic<bool> done{false};
  std::atomic<size_t> lookups{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&service, &done, &lookups] {
      size_t last_version = 0;
      size_t count = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = service.snapshot();
        ASSERT_NE(snap, nullptr);
        ASSERT_GE(snap->version(), last_version);
        last_version = snap->version();
        CheckSnapshotEntityView(*snap);
        ++count;
      }
      lookups.fetch_add(count, std::memory_order_relaxed);
    });
  }

  for (size_t e = 0; e < stream.num_shards(); ++e) {
    service.Ingest(stream.ShardAt(e));
    if (e == 20) ASSERT_TRUE(service.RequestCertification());
  }
  ASSERT_TRUE(service.RequestCertification());
  auto cert = service.DrainToQuiescence();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  ASSERT_TRUE(cert.ok()) << cert.status().message();
  EXPECT_GT(lookups.load(), 0u);

  // Quiescent state: the served entity view is exactly the canonical
  // clustering of the served labels — rebuildable bit-for-bit.
  const auto snap = service.snapshot();
  CheckSnapshotEntityView(*snap);
  const EntityClustering rebuilt = EntityClustering::FromSnapshot(*snap);
  EXPECT_EQ(rebuilt, snap->entities());
  EXPECT_EQ(rebuilt.Checksum(), snap->entities().Checksum());
  EXPECT_EQ(rebuilt,
            EntityClustering::FromLabels(snap->workload(), snap->labels()));
  EXPECT_EQ(service.EntityOfRecord({0, ds_[0].left_id}),
            snap->EntityOf({0, ds_[0].left_id}));
}

TEST_F(ResolutionServiceEntityTest, EmptyServiceServesEmptyEntityView) {
  core::ResolutionService service(ServiceOptions(), {0.9, 0.9, 0.9});
  const auto snap = service.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->Validate());
  EXPECT_EQ(snap->num_entities(), 0u);
  EXPECT_EQ(snap->EntityOf({0, 0}), std::nullopt);
  EXPECT_TRUE(snap->MembersOf(0).empty());
  EXPECT_EQ(service.EntityOfRecord({0, 0}), std::nullopt);
}

}  // namespace
}  // namespace humo
