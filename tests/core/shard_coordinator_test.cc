#include "core/shard_coordinator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/oracle.h"
#include "core/sharded_resolver.h"
#include "core/streaming_resolver.h"
#include "data/pair_simulator.h"
#include "data/workload.h"

namespace humo::core {
namespace {

// ---------------------------------------------------------------------------
// PlanShards: boundary arithmetic.
// ---------------------------------------------------------------------------

void CheckPlanInvariants(const std::vector<ShardSpec>& specs,
                         size_t num_pairs, size_t subset_size) {
  ASSERT_FALSE(specs.empty());
  // Shards tile [0, num_pairs) in order, every boundary (except the final
  // end) on a subset multiple, every shard non-empty with at least one
  // whole subset.
  EXPECT_EQ(specs.front().begin, 0u);
  EXPECT_EQ(specs.back().end, num_pairs);
  for (size_t k = 0; k < specs.size(); ++k) {
    const ShardSpec& s = specs[k];
    EXPECT_EQ(s.shard, k);
    EXPECT_GT(s.num_subsets(), 0u);
    EXPECT_GT(s.num_pairs(), 0u);
    EXPECT_EQ(s.begin, s.subset_begin * subset_size);
    if (k + 1 < specs.size()) {
      EXPECT_EQ(s.end, s.subset_end * subset_size);
      EXPECT_EQ(specs[k + 1].begin, s.end);
      EXPECT_EQ(specs[k + 1].subset_begin, s.subset_end);
    }
  }
}

TEST(PlanShardsTest, EvenSplitTilesTheWorkload) {
  const auto specs = ShardCoordinator::PlanShards(4000, 200, 4);
  ASSERT_EQ(specs.size(), 4u);
  CheckPlanInvariants(specs, 4000, 200);
  for (const ShardSpec& s : specs) EXPECT_EQ(s.num_subsets(), 5u);
}

TEST(PlanShardsTest, RemainderStaysInFinalSubsetOfFinalShard) {
  // 4199 pairs, subset 200: 20 subsets, the last holding 399 pairs. The
  // final shard's pair range must absorb the remainder (its end is
  // num_pairs, not a subset multiple).
  const auto specs = ShardCoordinator::PlanShards(4199, 200, 4);
  ASSERT_EQ(specs.size(), 4u);
  CheckPlanInvariants(specs, 4199, 200);
  EXPECT_EQ(specs.back().end, 4199u);
  EXPECT_EQ(specs.back().subset_end, 20u);
}

TEST(PlanShardsTest, ShardCountClampsToSubsetCount) {
  // 3 subsets cannot feed 8 shards: a shard owns at least one whole subset.
  const auto specs = ShardCoordinator::PlanShards(600, 200, 8);
  ASSERT_EQ(specs.size(), 3u);
  CheckPlanInvariants(specs, 600, 200);
}

TEST(PlanShardsTest, TinyWorkloadIsOneShardOneSubset) {
  // Fewer pairs than one subset: the partition makes a single subset, so
  // sharding degenerates to K = 1 regardless of the request.
  const auto specs = ShardCoordinator::PlanShards(150, 200, 4);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].begin, 0u);
  EXPECT_EQ(specs[0].end, 150u);
  EXPECT_EQ(specs[0].num_subsets(), 1u);
}

TEST(PlanShardsTest, EmptyWorkloadPlansNothing) {
  EXPECT_TRUE(ShardCoordinator::PlanShards(0, 200, 4).empty());
}

TEST(PlanShardsTest, DeterministicAcrossCalls) {
  const auto a = ShardCoordinator::PlanShards(100077, 200, 8);
  const auto b = ShardCoordinator::PlanShards(100077, 200, 8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].begin, b[k].begin);
    EXPECT_EQ(a[k].end, b[k].end);
  }
  CheckPlanInvariants(a, 100077, 200);
}

// ---------------------------------------------------------------------------
// ShardResolver: the per-shard worker against the global ground truth.
// ---------------------------------------------------------------------------

class ShardResolverTest : public ::testing::Test {
 protected:
  static data::Workload workload_;
  static void SetUpTestSuite() {
    workload_ = data::SimulatePairs(data::DsConfigSmall(77, 4000));
  }
};
data::Workload ShardResolverTest::workload_;

TEST_F(ShardResolverTest, SliceMatchesGlobalRows) {
  const auto specs = ShardCoordinator::PlanShards(workload_.size(), 200, 4);
  for (const ShardSpec& spec : specs) {
    ShardResolver resolver(workload_, spec, 200, 0.0, 99);
    ASSERT_EQ(resolver.slice().size(), spec.num_pairs());
    for (size_t i = 0; i < spec.num_pairs(); ++i) {
      EXPECT_EQ(resolver.slice().Similarity(i),
                workload_.Similarity(spec.begin + i));
      EXPECT_EQ(resolver.slice().IsMatch(i),
                workload_.IsMatch(spec.begin + i));
    }
  }
}

TEST_F(ShardResolverTest, LocalPartitionReproducesGlobalSubsets) {
  SubsetPartition global(&workload_, 200);
  const auto specs = ShardCoordinator::PlanShards(workload_.size(), 200, 4);
  for (const ShardSpec& spec : specs) {
    ShardResolver resolver(workload_, spec, 200, 0.0, 99);
    ASSERT_EQ(resolver.partition().num_subsets(), spec.num_subsets());
    for (size_t j = 0; j < spec.num_subsets(); ++j) {
      const Subset& local = resolver.partition()[j];
      const Subset& ref = global[spec.subset_begin + j];
      EXPECT_EQ(local.begin + spec.begin, ref.begin);
      EXPECT_EQ(local.end + spec.begin, ref.end);
      // Bitwise: the per-subset similarity sum adds the same doubles in
      // the same order on both sides.
      EXPECT_EQ(local.avg_similarity, ref.avg_similarity);
    }
  }
}

TEST_F(ShardResolverTest, AnswersMatchGlobalOracleIncludingErrorFlips) {
  // The keystone of bit-identity: with a nonzero error rate, a shard's
  // answer for local index i must equal the GLOBAL oracle's answer for
  // global index spec.begin + i — error flips hash the pair, not the shard.
  Oracle global_oracle(&workload_, 0.05, 1234);
  const auto specs = ShardCoordinator::PlanShards(workload_.size(), 200, 4);
  for (const ShardSpec& spec : specs) {
    ShardResolver resolver(workload_, spec, 200, 0.05, 1234);
    std::vector<size_t> local_indices;
    for (size_t i = 0; i < spec.num_pairs(); i += 37) {
      local_indices.push_back(i);
    }
    const std::vector<char> answers = resolver.AnswerBatch(local_indices);
    ASSERT_EQ(answers.size(), local_indices.size());
    for (size_t t = 0; t < local_indices.size(); ++t) {
      EXPECT_EQ(answers[t] != 0,
                global_oracle.InlineAnswer(spec.begin + local_indices[t]));
    }
  }
}

TEST_F(ShardResolverTest, EvidenceAccountsForEveryAnswer) {
  const auto specs = ShardCoordinator::PlanShards(workload_.size(), 200, 2);
  ShardResolver resolver(workload_, specs[0], 200, 0.0, 99);
  // Inspect a full subset plus a sparse sample of another.
  std::vector<size_t> batch;
  for (size_t i = 0; i < 200; ++i) batch.push_back(i);
  for (size_t i = 400; i < 600; i += 10) batch.push_back(i);
  resolver.AnswerBatch(batch);

  const ShardEvidence ev = resolver.Evidence();
  EXPECT_EQ(ev.shard, specs[0].shard);
  EXPECT_EQ(ev.cost, batch.size());
  ASSERT_EQ(ev.strata.size(), specs[0].num_subsets());
  EXPECT_EQ(ev.strata[0].sample_size, 200u);   // fully covered subset
  EXPECT_EQ(ev.strata[0].population, 200u);
  EXPECT_EQ(ev.strata[2].sample_size, 20u);    // the sparse subset
  EXPECT_EQ(ev.strata[1].sample_size, 0u);
  // Beta posterior = 1 + positives / 1 + negatives over all evidence.
  size_t positives = 0;
  for (const auto& st : ev.strata) positives += st.sample_positives;
  EXPECT_EQ(ev.posterior_alpha, 1.0 + static_cast<double>(positives));
  EXPECT_EQ(ev.posterior_beta,
            1.0 + static_cast<double>(batch.size() - positives));
}

TEST_F(ShardResolverTest, EvidenceWireCodecRoundtrips) {
  const auto specs = ShardCoordinator::PlanShards(workload_.size(), 200, 2);
  ShardResolver resolver(workload_, specs[1], 200, 0.02, 7);
  std::vector<size_t> batch;
  for (size_t i = 0; i < specs[1].num_pairs(); i += 13) batch.push_back(i);
  resolver.AnswerBatch(batch);

  const ShardEvidence ev = resolver.Evidence();
  ShardEvidence decoded;
  ASSERT_TRUE(DecodeEvidence(EncodeEvidence(ev), &decoded));
  EXPECT_EQ(decoded.shard, ev.shard);
  EXPECT_EQ(decoded.cost, ev.cost);
  EXPECT_EQ(decoded.total_requests, ev.total_requests);
  EXPECT_EQ(decoded.duplicate_requests, ev.duplicate_requests);
  EXPECT_EQ(decoded.posterior_alpha, ev.posterior_alpha);
  EXPECT_EQ(decoded.posterior_beta, ev.posterior_beta);
  ASSERT_EQ(decoded.strata.size(), ev.strata.size());
  for (size_t k = 0; k < ev.strata.size(); ++k) {
    EXPECT_EQ(decoded.strata[k].population, ev.strata[k].population);
    EXPECT_EQ(decoded.strata[k].sample_size, ev.strata[k].sample_size);
    EXPECT_EQ(decoded.strata[k].sample_positives,
              ev.strata[k].sample_positives);
  }
  // Truncation fails cleanly.
  std::vector<uint8_t> bytes = EncodeEvidence(ev);
  bytes.resize(bytes.size() - 3);
  ShardEvidence bad;
  EXPECT_FALSE(DecodeEvidence(bytes, &bad));
}

// ---------------------------------------------------------------------------
// ShardCoordinator end to end on a small workload. The suite name carries
// the ShardedInProcess prefix so the TSan CI job picks it up: the
// in-process transport is the concurrent one (ParallelFor over shards).
// ---------------------------------------------------------------------------

class ShardedInProcessCoordinatorTest : public ::testing::Test {
 protected:
  static data::Workload workload_;
  static void SetUpTestSuite() {
    workload_ = data::SimulatePairs(data::DsConfigSmall(321, 6000));
  }

  static ShardedOptions Options(size_t num_shards, ShardTransport transport) {
    ShardedOptions options;
    options.num_shards = num_shards;
    options.transport = transport;
    options.streaming.sampling.seed = 1000;
    return options;
  }
};
data::Workload ShardedInProcessCoordinatorTest::workload_;

TEST_F(ShardedInProcessCoordinatorTest, MatchesOneShotAtEveryShardCount) {
  const QualityRequirement req{0.9, 0.9, 0.9};
  // The one-shot reference: the plain streaming resolver, same options.
  StreamingResolver one_shot(Options(1, ShardTransport::kInProcess).streaming,
                             req);
  one_shot.Ingest(data::Shard{0, workload_.MaterializePairs()});
  const auto reference = one_shot.Certify();
  ASSERT_TRUE(reference.ok()) << reference.status().message();

  for (const size_t k : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(k);
    ShardCoordinator coordinator(Options(k, ShardTransport::kInProcess), req);
    const auto sharded = coordinator.Resolve(workload_);
    ASSERT_TRUE(sharded.ok()) << sharded.status().message();
    EXPECT_EQ(sharded->certificate.solution.h_lo, reference->solution.h_lo);
    EXPECT_EQ(sharded->certificate.solution.h_hi, reference->solution.h_hi);
    EXPECT_EQ(sharded->certificate.solution.empty, reference->solution.empty);
    EXPECT_EQ(sharded->certificate.resolution.labels,
              reference->resolution.labels);
    EXPECT_EQ(sharded->certificate.total_inspections,
              reference->total_inspections);
    EXPECT_EQ(sharded->merged_cost, reference->total_inspections);
    EXPECT_TRUE(sharded->evidence_consistent);
    EXPECT_TRUE(sharded->labels_consistent);
    EXPECT_EQ(sharded->transport, ShardTransport::kInProcess);
    EXPECT_EQ(sharded->shards.size(),
              ShardCoordinator::PlanShards(workload_.size(), 200, k).size());
  }
}

TEST_F(ShardedInProcessCoordinatorTest, ReportsCoverCostExactly) {
  const QualityRequirement req{0.9, 0.9, 0.9};
  ShardCoordinator coordinator(Options(4, ShardTransport::kInProcess), req);
  const auto sharded = coordinator.Resolve(workload_);
  ASSERT_TRUE(sharded.ok()) << sharded.status().message();
  size_t total_answered = 0;
  for (const ShardReport& report : sharded->shards) {
    total_answered += report.answered;
    EXPECT_EQ(report.answered, report.evidence.cost);
    // Unlimited budget: allocation == shard population, grant == demand.
    EXPECT_EQ(report.budget_allocated, report.spec.num_pairs());
    EXPECT_EQ(report.budget_granted, report.answered);
    EXPECT_EQ(report.evidence.duplicate_requests, 0u);
  }
  EXPECT_EQ(total_answered, sharded->merged_cost);
  // Merged Beta posterior covers every answered pair.
  EXPECT_EQ((sharded->posterior_alpha - 1.0) + (sharded->posterior_beta - 1.0),
            static_cast<double>(sharded->merged_cost));
}

TEST_F(ShardedInProcessCoordinatorTest, SufficientBudgetPassesTightOneFails) {
  const QualityRequirement req{0.9, 0.9, 0.9};
  // Establish the true demand, then grant exactly that much: must succeed.
  ShardedOptions unlimited = Options(4, ShardTransport::kInProcess);
  ShardCoordinator probe(unlimited, req);
  const auto reference = probe.Resolve(workload_);
  ASSERT_TRUE(reference.ok());
  const size_t demand = reference->merged_cost;

  ShardedOptions exact = Options(4, ShardTransport::kInProcess);
  exact.oracle_budget = demand;
  const auto at_budget = ShardCoordinator(exact, req).Resolve(workload_);
  ASSERT_TRUE(at_budget.ok()) << at_budget.status().message();
  EXPECT_EQ(at_budget->merged_cost, demand);

  // One inspection less: the settlement comes up short and the resolve
  // fails with OutOfRange. (The answers were still produced — the budget
  // is certified after the fact, not enforced mid-run.)
  ShardedOptions tight = Options(4, ShardTransport::kInProcess);
  tight.oracle_budget = demand - 1;
  const auto over = ShardCoordinator(tight, req).Resolve(workload_);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ShardedInProcessCoordinatorTest, EmptyWorkloadIsInvalidArgument) {
  ShardCoordinator coordinator(Options(4, ShardTransport::kInProcess),
                               QualityRequirement{0.9, 0.9, 0.9});
  const auto result = coordinator.Resolve(data::Workload());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// Fork transport on the same small workload — kept OUT of the TSan filter
// (fork plus TSan is unsupported); the fork path's determinism at full DS/AB
// scale is covered by the integration golden suite.
TEST(ShardedForkCoordinatorTest, ForkMatchesInProcess) {
  const data::Workload workload =
      data::SimulatePairs(data::DsConfigSmall(321, 6000));
  const QualityRequirement req{0.9, 0.9, 0.9};
  ShardedOptions options;
  options.num_shards = 4;
  options.streaming.sampling.seed = 1000;

  options.transport = ShardTransport::kInProcess;
  const auto in_process = ShardCoordinator(options, req).Resolve(workload);
  ASSERT_TRUE(in_process.ok()) << in_process.status().message();

  options.transport = ShardTransport::kFork;
  const auto forked = ShardCoordinator(options, req).Resolve(workload);
  ASSERT_TRUE(forked.ok()) << forked.status().message();
  if (forked->transport == ShardTransport::kInProcess) {
    GTEST_SKIP() << "fork transport unavailable on this platform";
  }
  EXPECT_TRUE(forked->evidence_consistent);
  EXPECT_TRUE(forked->labels_consistent);
  EXPECT_EQ(forked->certificate.resolution.labels,
            in_process->certificate.resolution.labels);
  EXPECT_EQ(forked->certificate.solution.h_lo,
            in_process->certificate.solution.h_lo);
  EXPECT_EQ(forked->certificate.solution.h_hi,
            in_process->certificate.solution.h_hi);
  EXPECT_EQ(forked->merged_cost, in_process->merged_cost);
  ASSERT_EQ(forked->shards.size(), in_process->shards.size());
  for (size_t k = 0; k < forked->shards.size(); ++k) {
    EXPECT_EQ(forked->shards[k].answered, in_process->shards[k].answered);
  }
}

TEST(ShardedForkCoordinatorTest, ErrorProneOracleStaysBitIdentical) {
  // Error injection is the subtle cross-process case: flips must hash the
  // GLOBAL pair index inside each forked worker.
  const data::Workload workload =
      data::SimulatePairs(data::DsConfigSmall(55, 4000));
  const QualityRequirement req{0.85, 0.85, 0.9};
  ShardedOptions options;
  options.num_shards = 3;
  options.streaming.sampling.seed = 1000;
  options.streaming.oracle_error_rate = 0.05;
  options.streaming.oracle_seed = 424242;

  StreamingResolver one_shot(options.streaming, req);
  one_shot.Ingest(data::Shard{0, workload.MaterializePairs()});
  const auto reference = one_shot.Certify();
  ASSERT_TRUE(reference.ok()) << reference.status().message();

  options.transport = ShardTransport::kFork;
  const auto forked = ShardCoordinator(options, req).Resolve(workload);
  ASSERT_TRUE(forked.ok()) << forked.status().message();
  EXPECT_EQ(forked->certificate.resolution.labels,
            reference->resolution.labels);
  EXPECT_EQ(forked->certificate.total_inspections,
            reference->total_inspections);
  EXPECT_TRUE(forked->evidence_consistent);
  EXPECT_TRUE(forked->labels_consistent);
}

}  // namespace
}  // namespace humo::core
