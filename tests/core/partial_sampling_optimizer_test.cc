#include "core/partial_sampling_optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/solution.h"
#include "data/logistic_generator.h"
#include "data/pair_simulator.h"
#include "eval/evaluation.h"

namespace humo::core {
namespace {

data::Workload MakeWorkload(double tau = 14.0, double sigma = 0.05,
                            uint64_t seed = 1, size_t n = 40000) {
  data::LogisticGeneratorOptions o;
  o.num_pairs = n;
  o.pairs_per_subset = 200;
  o.tau = tau;
  o.sigma = sigma;
  o.seed = seed;
  return data::GenerateLogisticWorkload(o);
}

TEST(PartialSamplingOptimizerTest, MeetsQualityOnSmoothWorkload) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  PartialSamplingOptimizer opt;
  QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = opt.Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  const auto result = ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  EXPECT_GE(q.precision, 0.9);
  EXPECT_GE(q.recall, 0.9);
}

TEST(PartialSamplingOptimizerTest, SamplesOnlyBudgetedFraction) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  PartialSamplingOptions o;
  o.sample_fraction_lo = 0.01;
  o.sample_fraction_hi = 0.05;
  PartialSamplingOptimizer opt(o);
  QualityRequirement req{0.9, 0.9, 0.9};
  auto outcome = opt.OptimizeDetailed(p, req, &oracle);
  ASSERT_TRUE(outcome.ok());
  size_t sampled = 0;
  for (bool s : outcome->sampled) sampled += s;
  const size_t m = p.num_subsets();
  EXPECT_GE(sampled, static_cast<size_t>(m * 0.01));
  EXPECT_LE(sampled, static_cast<size_t>(m * 0.05) + 2);
}

TEST(PartialSamplingOptimizerTest, CheaperSamplingThanAllSampling) {
  // The whole point of Algorithm 1: far fewer sampled subsets.
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  PartialSamplingOptimizer opt;
  QualityRequirement req{0.9, 0.9, 0.9};
  auto outcome = opt.OptimizeDetailed(p, req, &oracle);
  ASSERT_TRUE(outcome.ok());
  // Sampling cost before DH labeling: well under one-fifth of all-sampling's
  // m * samples_per_subset.
  const size_t all_sampling_cost =
      p.num_subsets() * opt.options().samples_per_subset;
  EXPECT_LT(oracle.cost(), all_sampling_cost / 5);
}

TEST(PartialSamplingOptimizerTest, OutcomeExposesModelAndStrata) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  PartialSamplingOptimizer opt;
  QualityRequirement req{0.9, 0.9, 0.9};
  auto outcome = opt.OptimizeDetailed(p, req, &oracle);
  ASSERT_TRUE(outcome.ok());
  ASSERT_NE(outcome->model, nullptr);
  EXPECT_EQ(outcome->model->num_subsets(), p.num_subsets());
  EXPECT_EQ(outcome->strata.size(), p.num_subsets());
  EXPECT_EQ(outcome->sampled.size(), p.num_subsets());
  // Sampled subsets carry data; unsampled ones are empty.
  for (size_t k = 0; k < p.num_subsets(); ++k) {
    if (outcome->sampled[k]) {
      EXPECT_GT(outcome->strata[k].sample_size, 0u);
    } else {
      EXPECT_EQ(outcome->strata[k].sample_size, 0u);
    }
  }
}

TEST(PartialSamplingOptimizerTest, GpTracksTrueProportionCurve) {
  const data::Workload w = MakeWorkload(14.0, 0.02, 5);
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  PartialSamplingOptions o;
  o.samples_per_subset = 50;
  PartialSamplingOptimizer opt(o);
  QualityRequirement req{0.9, 0.9, 0.9};
  auto outcome = opt.OptimizeDetailed(p, req, &oracle);
  ASSERT_TRUE(outcome.ok());
  // Posterior means should be close to the generating logistic curve.
  double max_err = 0.0;
  for (size_t k = 0; k < p.num_subsets(); ++k) {
    const double truth =
        data::LogisticMatchProportion(p[k].avg_similarity, 14.0);
    max_err = std::max(max_err,
                       std::fabs(outcome->model->PosteriorMean(k) - truth));
  }
  EXPECT_LT(max_err, 0.25);
}

TEST(PartialSamplingOptimizerTest, SucceedsAcrossSeeds) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  QualityRequirement req{0.85, 0.85, 0.9};
  size_t successes = 0;
  const size_t trials = 10;
  for (size_t t = 0; t < trials; ++t) {
    Oracle oracle(&w);
    PartialSamplingOptions o;
    o.seed = 2000 + t;
    auto sol = PartialSamplingOptimizer(o).Optimize(p, req, &oracle);
    ASSERT_TRUE(sol.ok());
    const auto result = ApplySolution(p, *sol, &oracle);
    const auto q = eval::QualityOf(w, result.labels);
    if (q.precision >= req.alpha && q.recall >= req.beta) ++successes;
  }
  EXPECT_GE(successes, 8u);
}

TEST(PartialSamplingOptimizerTest, WorksOnSimulatedDsWorkload) {
  const data::Workload w = data::SimulatePairs(data::DsConfigSmall(7, 20000));
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  PartialSamplingOptimizer opt;
  QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = opt.Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  const auto result = ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  EXPECT_GE(q.precision, 0.88);
  EXPECT_GE(q.recall, 0.88);
}

TEST(PartialSamplingOptimizerTest, RejectsBadInputs) {
  const data::Workload w = MakeWorkload(14.0, 0.05, 1, 2000);
  SubsetPartition p(&w, 200);
  QualityRequirement req{0.9, 0.9, 0.9};
  PartialSamplingOptimizer opt;
  EXPECT_FALSE(opt.Optimize(p, req, nullptr).ok());
  PartialSamplingOptions zero;
  zero.samples_per_subset = 0;
  Oracle o1(&w);
  EXPECT_FALSE(PartialSamplingOptimizer(zero).Optimize(p, req, &o1).ok());
  PartialSamplingOptions bad_range;
  bad_range.sample_fraction_lo = 0.1;
  bad_range.sample_fraction_hi = 0.01;
  Oracle o2(&w);
  EXPECT_FALSE(PartialSamplingOptimizer(bad_range).Optimize(p, req, &o2).ok());
}

TEST(PartialSamplingOptimizerTest, KernelFamiliesAllWork) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  QualityRequirement req{0.85, 0.85, 0.9};
  for (auto family : {gp::KernelFamily::kRbf, gp::KernelFamily::kMatern32,
                      gp::KernelFamily::kMatern52}) {
    Oracle oracle(&w);
    PartialSamplingOptions o;
    o.kernel_family = family;
    auto sol = PartialSamplingOptimizer(o).Optimize(p, req, &oracle);
    ASSERT_TRUE(sol.ok());
    const auto result = ApplySolution(p, *sol, &oracle);
    const auto q = eval::QualityOf(w, result.labels);
    EXPECT_GE(q.precision, 0.8);
    EXPECT_GE(q.recall, 0.8);
  }
}

}  // namespace
}  // namespace humo::core
