#include "core/estimation_engine.h"

#include <gtest/gtest.h>

#include "core/partition.h"
#include "data/logistic_generator.h"

namespace humo::core {
namespace {

data::Workload MakeWorkload(size_t n = 4000) {
  data::LogisticGeneratorOptions o;
  o.num_pairs = n;
  o.pairs_per_subset = 200;
  o.tau = 14.0;
  o.sigma = 0.05;
  o.seed = 11;
  return data::GenerateLogisticWorkload(o);
}

TEST(SubsetStatsCacheTest, StoresAndRecallsFullCounts) {
  SubsetStatsCache cache(4);
  EXPECT_FALSE(cache.HasFullCount(2));
  cache.SetFullCount(2, 37);
  EXPECT_TRUE(cache.HasFullCount(2));
  EXPECT_EQ(cache.FullCount(2), 37u);
  EXPECT_FALSE(cache.HasFullCount(1));
  cache.Clear();
  EXPECT_FALSE(cache.HasFullCount(2));
}

TEST(SubsetStatsCacheTest, StoresAndRecallsStrata) {
  SubsetStatsCache cache(3);
  stats::Stratum st;
  st.population = 200;
  st.sample_size = 20;
  st.sample_positives = 5;
  cache.SetStratum(1, st);
  ASSERT_TRUE(cache.HasStratum(1));
  EXPECT_EQ(cache.StratumAt(1).sample_positives, 5u);
  EXPECT_FALSE(cache.HasStratum(0));
}

TEST(EstimationContextTest, LabelSubsetChargesOnceAndCachesCount) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  EstimationContext ctx(&p, &oracle);

  const size_t first = ctx.LabelSubset(3);
  const size_t cost_after_first = oracle.cost();
  EXPECT_EQ(cost_after_first, p[3].size());
  EXPECT_EQ(ctx.stats().full_label_misses, 1u);
  EXPECT_EQ(ctx.stats().oracle_pairs_inspected, p[3].size());

  const size_t second = ctx.LabelSubset(3);
  EXPECT_EQ(first, second);
  EXPECT_EQ(oracle.cost(), cost_after_first) << "second call re-asked";
  EXPECT_EQ(oracle.duplicate_requests(), 0u);
  EXPECT_EQ(ctx.stats().full_label_hits, 1u);
  EXPECT_EQ(ctx.stats().oracle_pairs_saved, p[3].size());
}

TEST(EstimationContextTest, BatchInspectCostParityWithSerialLabel) {
  // The batched path must charge exactly what per-pair Label() charges:
  // each distinct pair once.
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);

  Oracle serial(&w);
  size_t serial_matches = 0;
  for (size_t i = p[5].begin; i < p[5].end; ++i)
    serial_matches += serial.Label(i);

  Oracle batched(&w);
  EstimationContext ctx(&p, &batched);
  const size_t batch_matches = ctx.LabelSubset(5);

  EXPECT_EQ(batch_matches, serial_matches);
  EXPECT_EQ(batched.cost(), serial.cost());
  EXPECT_EQ(batched.total_requests(), serial.total_requests());
}

TEST(EstimationContextTest, SampleSubsetMemoizesStratum) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  EstimationContext ctx(&p, &oracle);

  Rng rng(9);
  const stats::Stratum first = ctx.SampleSubset(2, 20, &rng);
  EXPECT_EQ(first.sample_size, 20u);
  const size_t cost_after_first = oracle.cost();
  EXPECT_EQ(cost_after_first, 20u);
  EXPECT_EQ(ctx.stats().stratum_misses, 1u);

  // Second request (even from a different rng) is served from the cache.
  Rng other(12345);
  const stats::Stratum second = ctx.SampleSubset(2, 20, &other);
  EXPECT_EQ(second.sample_positives, first.sample_positives);
  EXPECT_EQ(oracle.cost(), cost_after_first);
  EXPECT_EQ(ctx.stats().stratum_hits, 1u);
  EXPECT_EQ(oracle.duplicate_requests(), 0u);
}

TEST(EstimationContextTest, SampleSubsetTopsUpWhenCachedSampleTooSmall) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  EstimationContext ctx(&p, &oracle);

  Rng rng(9);
  (void)ctx.SampleSubset(2, 10, &rng);
  const stats::Stratum bigger = ctx.SampleSubset(2, 50, &rng);
  EXPECT_EQ(bigger.sample_size, 50u);
  // The fresh 50-pair draw may overlap the earlier 10: overlapping pairs
  // are served from the oracle's memory, so the distinct cost is at most
  // 60 and no duplicate request is ever issued.
  EXPECT_LE(oracle.cost(), 60u);
  EXPECT_EQ(oracle.duplicate_requests(), 0u);
}

TEST(EstimationContextTest, FullLabelServesLaterSampling) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  EstimationContext ctx(&p, &oracle);

  const size_t matches = ctx.LabelSubset(4);
  const size_t cost = oracle.cost();
  Rng rng(1);
  const stats::Stratum st = ctx.SampleSubset(4, 200, &rng);
  EXPECT_TRUE(st.fully_enumerated());
  EXPECT_EQ(st.sample_positives, matches);
  EXPECT_EQ(oracle.cost(), cost) << "sampling re-asked a labeled subset";
}

TEST(EstimationContextTest, FullyEnumeratedStratumServesLaterLabeling) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  EstimationContext ctx(&p, &oracle);

  Rng rng(2);
  const stats::Stratum st = ctx.SampleSubset(6, p[6].size(), &rng);
  ASSERT_TRUE(st.fully_enumerated());
  const size_t cost = oracle.cost();
  const size_t matches = ctx.LabelSubset(6);
  EXPECT_EQ(matches, st.sample_positives);
  EXPECT_EQ(oracle.cost(), cost) << "labeling re-asked a sampled subset";
  EXPECT_EQ(ctx.stats().full_label_hits, 1u);
}

TEST(EstimationContextTest, WindowProportionsMatchDirectComputation) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  EstimationContext ctx(&p, &oracle);
  for (size_t k = 2; k <= 8; ++k) ctx.LabelSubset(k);

  // Window of 3 subsets on the upper side of DH=[2,8]: subsets 8,7,6.
  size_t pairs = 0, matches = 0;
  for (size_t k = 6; k <= 8; ++k) {
    pairs += p[k].size();
    matches += ctx.LabelSubset(k);
  }
  const double expect_upper =
      static_cast<double>(matches) / static_cast<double>(pairs);
  EXPECT_DOUBLE_EQ(ctx.UpperWindowProportion(2, 8, 3), expect_upper);

  // Window of 3 on the lower side: subsets 2,3,4.
  pairs = 0;
  matches = 0;
  for (size_t k = 2; k <= 4; ++k) {
    pairs += p[k].size();
    matches += ctx.LabelSubset(k);
  }
  const double expect_lower =
      static_cast<double>(matches) / static_cast<double>(pairs);
  EXPECT_DOUBLE_EQ(ctx.LowerWindowProportion(2, 8, 3), expect_lower);

  // A window wider than DH clips to DH.
  EXPECT_GT(ctx.UpperWindowProportion(2, 8, 100), 0.0);
}

TEST(EstimationContextTest, StoresSamplingOutcome) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  EstimationContext ctx(&p, &oracle);
  EXPECT_EQ(ctx.sampling_outcome(), nullptr);
  auto outcome = std::make_shared<const PartialSamplingOutcome>();
  ctx.StoreSamplingOutcome(outcome);
  EXPECT_EQ(ctx.sampling_outcome(), outcome);
}

TEST(EstimationContextTest, InspectSubsetPairsMergesIntoStratumAndPromotes) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  EstimationContext ctx(&p, &oracle);
  const Subset& s = p[4];

  // First half of the subset's pairs.
  std::vector<size_t> first_half, second_half;
  for (size_t i = s.begin; i < s.begin + s.size() / 2; ++i)
    first_half.push_back(i);
  for (size_t i = s.begin + s.size() / 2; i < s.end; ++i)
    second_half.push_back(i);
  const size_t m1 = ctx.InspectSubsetPairs(4, first_half);
  EXPECT_EQ(oracle.cost(), first_half.size());
  ASSERT_TRUE(ctx.cache().HasStratum(4));
  EXPECT_EQ(ctx.cache().StratumAt(4).sample_size, first_half.size());
  EXPECT_EQ(ctx.cache().StratumAt(4).sample_positives, m1);
  EXPECT_FALSE(ctx.HasFullLabel(4));

  // Re-asking the same pairs is free (served from the oracle's memory).
  const size_t again = ctx.InspectSubsetPairs(4, first_half);
  EXPECT_EQ(again, m1);
  EXPECT_EQ(oracle.cost(), first_half.size());
  EXPECT_EQ(oracle.duplicate_requests(), 0u);

  // Completing the subset promotes the stratum to a full count, and a later
  // LabelSubset is a pure cache hit.
  const size_t m2 = ctx.InspectSubsetPairs(4, second_half);
  EXPECT_TRUE(ctx.HasFullLabel(4));
  const size_t cost_before = oracle.cost();
  EXPECT_EQ(ctx.LabelSubset(4), m1 + m2);
  EXPECT_EQ(oracle.cost(), cost_before);
}

TEST(OracleBatchTest, InspectBatchMatchesSerialAnswers) {
  const data::Workload w = MakeWorkload();
  Oracle a(&w, /*error_rate=*/0.2, /*seed=*/5);
  Oracle b(&w, /*error_rate=*/0.2, /*seed=*/5);
  std::vector<size_t> indices = {0, 5, 10, 5, 99, 0};
  const auto batch = a.InspectBatch(indices);
  ASSERT_EQ(batch.size(), indices.size());
  for (size_t t = 0; t < indices.size(); ++t) {
    EXPECT_EQ(static_cast<bool>(batch[t]), b.Label(indices[t])) << t;
  }
  EXPECT_EQ(a.cost(), b.cost());
  EXPECT_EQ(a.cost(), 4u) << "distinct pairs only";
  EXPECT_EQ(a.duplicate_requests(), 2u);
}

TEST(OracleBatchTest, InspectRangeCountsMatches) {
  const data::Workload w = MakeWorkload();
  Oracle a(&w);
  Oracle b(&w);
  const size_t matches = a.InspectRange(100, 300);
  size_t expect = 0;
  for (size_t i = 100; i < 300; ++i) expect += b.Label(i);
  EXPECT_EQ(matches, expect);
  EXPECT_EQ(a.cost(), 200u);
}

}  // namespace
}  // namespace humo::core
