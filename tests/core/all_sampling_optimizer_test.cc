#include "core/all_sampling_optimizer.h"

#include <gtest/gtest.h>

#include "core/solution.h"
#include "data/logistic_generator.h"
#include "eval/evaluation.h"

namespace humo::core {
namespace {

data::Workload MakeWorkload(double tau = 14.0, double sigma = 0.05,
                            uint64_t seed = 1, size_t n = 40000) {
  data::LogisticGeneratorOptions o;
  o.num_pairs = n;
  o.pairs_per_subset = 200;
  o.tau = tau;
  o.sigma = sigma;
  o.seed = seed;
  return data::GenerateLogisticWorkload(o);
}

TEST(AllSamplingOptimizerTest, MeetsQualityOnSmoothWorkload) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  AllSamplingOptimizer opt;
  QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = opt.Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  const auto result = ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  EXPECT_GE(q.precision, 0.9);
  EXPECT_GE(q.recall, 0.9);
}

TEST(AllSamplingOptimizerTest, SamplesEverySubset) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  AllSamplingOptions o;
  o.samples_per_subset = 10;
  AllSamplingOptimizer opt(o);
  QualityRequirement req{0.9, 0.9, 0.9};
  ASSERT_TRUE(opt.Optimize(p, req, &oracle).ok());
  // Sampling cost alone: at least 10 per subset (dedup may reduce none here).
  EXPECT_GE(oracle.cost(), p.num_subsets() * 10);
}

TEST(AllSamplingOptimizerTest, SucceedsAcrossSeeds) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  QualityRequirement req{0.85, 0.85, 0.9};
  size_t successes = 0;
  const size_t trials = 10;
  for (size_t t = 0; t < trials; ++t) {
    Oracle oracle(&w);
    AllSamplingOptions o;
    o.seed = 1000 + t;
    auto sol = AllSamplingOptimizer(o).Optimize(p, req, &oracle);
    ASSERT_TRUE(sol.ok());
    const auto result = ApplySolution(p, *sol, &oracle);
    const auto q = eval::QualityOf(w, result.labels);
    if (q.precision >= req.alpha && q.recall >= req.beta) ++successes;
  }
  // Confidence 0.9 per metric; allow slack on 10 trials.
  EXPECT_GE(successes, 8u);
}

TEST(AllSamplingOptimizerTest, MoreSamplesTightenSolution) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  QualityRequirement req{0.9, 0.9, 0.9};
  auto dh_size_with = [&](size_t samples) {
    Oracle oracle(&w);
    AllSamplingOptions o;
    o.samples_per_subset = samples;
    auto sol = AllSamplingOptimizer(o).Optimize(p, req, &oracle);
    EXPECT_TRUE(sol.ok());
    return p.PairsInRange(sol->h_lo, sol->h_hi);
  };
  // With more evidence per subset the error margins shrink, so DH should
  // not grow.
  EXPECT_LE(dh_size_with(50), dh_size_with(5) + 400);
}

TEST(AllSamplingOptimizerTest, HandlesNonMonotoneWorkload) {
  // sigma = 0.5 destroys monotonicity; sampling-based bounds do not rely
  // on it and should still deliver quality.
  const data::Workload w = MakeWorkload(14.0, 0.5, 3);
  SubsetPartition p(&w, 200);
  Oracle oracle(&w);
  AllSamplingOptions o;
  o.samples_per_subset = 40;
  AllSamplingOptimizer opt(o);
  QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = opt.Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  const auto result = ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  EXPECT_GE(q.precision, 0.88);
  EXPECT_GE(q.recall, 0.88);
}

TEST(AllSamplingOptimizerTest, RejectsBadInputs) {
  const data::Workload w = MakeWorkload(14.0, 0.05, 1, 2000);
  SubsetPartition p(&w, 200);
  QualityRequirement req{0.9, 0.9, 0.9};
  AllSamplingOptimizer opt;
  EXPECT_FALSE(opt.Optimize(p, req, nullptr).ok());
  AllSamplingOptions zero;
  zero.samples_per_subset = 0;
  Oracle oracle(&w);
  EXPECT_FALSE(AllSamplingOptimizer(zero).Optimize(p, req, &oracle).ok());
}

TEST(AllSamplingOptimizerTest, HigherConfidenceWidensDh) {
  const data::Workload w = MakeWorkload();
  SubsetPartition p(&w, 200);
  auto dh_at_theta = [&](double theta) {
    Oracle oracle(&w);
    QualityRequirement req{0.9, 0.9, theta};
    auto sol = AllSamplingOptimizer().Optimize(p, req, &oracle);
    EXPECT_TRUE(sol.ok());
    return p.PairsInRange(sol->h_lo, sol->h_hi);
  };
  EXPECT_LE(dh_at_theta(0.6), dh_at_theta(0.99) + 200);
}

}  // namespace
}  // namespace humo::core
