#include "core/streaming_resolver.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/thread_pool.h"
#include "core/partial_sampling_optimizer.h"
#include "core/solution.h"
#include "data/pair_simulator.h"
#include "data/workload_stream.h"
#include "eval/evaluation.h"

namespace humo {
namespace {

/// The streaming headline contracts (ISSUE 4): ingesting a whole stream and
/// certifying once must reproduce the one-shot run on the concatenated
/// workload bit for bit — partition, labeling, solution, and oracle cost —
/// at any shard count, arrival order, and thread count, with zero duplicate
/// oracle requests across epochs; re-certification after growth must reuse
/// every carried answer.
class StreamingResolverTest : public ::testing::Test {
 protected:
  static data::Workload ds_;

  static void SetUpTestSuite() {
    ds_ = data::SimulatePairs(data::DsConfigSmall(555, 12000));
  }
};

data::Workload StreamingResolverTest::ds_;

struct OneShotRun {
  core::HumoSolution solution;
  core::ResolutionResult resolution;
  size_t cost = 0;
  size_t duplicates = 0;
};

OneShotRun RunOneShotSamp(const data::Workload& w,
                          const core::QualityRequirement& req,
                          const core::PartialSamplingOptions& sampling,
                          size_t subset_size) {
  core::SubsetPartition partition(&w, subset_size);
  core::Oracle oracle(&w);
  core::EstimationContext ctx(&partition, &oracle);
  core::PartialSamplingOptimizer samp(sampling);
  auto sol = samp.Optimize(&ctx, req);
  EXPECT_TRUE(sol.ok()) << sol.status().message();
  OneShotRun run;
  run.solution = *sol;
  run.resolution = core::ApplySolution(partition, *sol, &oracle);
  run.cost = oracle.cost();
  run.duplicates = oracle.duplicate_requests();
  return run;
}

core::StreamingOptions DefaultStreamingOptions() {
  core::StreamingOptions options;
  options.sampling.seed = 21;
  return options;
}

void ExpectSolutionsEqual(const core::HumoSolution& a,
                          const core::HumoSolution& b) {
  EXPECT_EQ(a.empty, b.empty);
  EXPECT_EQ(a.h_lo, b.h_lo);
  EXPECT_EQ(a.h_hi, b.h_hi);
}

void ExpectPartitionMatchesFresh(const core::SubsetPartition& streamed,
                                 const data::Workload& base,
                                 size_t subset_size) {
  core::SubsetPartition fresh(&base, subset_size);
  ASSERT_EQ(streamed.num_subsets(), fresh.num_subsets());
  for (size_t k = 0; k < fresh.num_subsets(); ++k) {
    EXPECT_EQ(streamed[k].begin, fresh[k].begin);
    EXPECT_EQ(streamed[k].end, fresh[k].end);
    // Bitwise: the rebuild paths accumulate in the constructor's order.
    EXPECT_EQ(streamed[k].avg_similarity, fresh[k].avg_similarity) << k;
  }
}

TEST_F(StreamingResolverTest, CertifyOnceIsBitIdenticalToOneShot) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  const core::StreamingOptions options = DefaultStreamingOptions();
  const OneShotRun oneshot =
      RunOneShotSamp(ds_, req, options.sampling, options.subset_size);

  for (const size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
    for (const data::ArrivalOrder order :
         {data::ArrivalOrder::kShuffled,
          data::ArrivalOrder::kSimilarityAscending}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " order=" + std::to_string(static_cast<int>(order)));
      data::WorkloadStreamOptions stream_options;
      stream_options.num_shards = shards;
      stream_options.order = order;
      data::WorkloadStream stream(&ds_, stream_options);

      core::StreamingResolver resolver(options, req);
      data::Shard shard;
      while (stream.Next(&shard)) resolver.Ingest(std::move(shard));
      ASSERT_EQ(resolver.cumulative().size(), ds_.size());

      auto cert = resolver.Certify();
      ASSERT_TRUE(cert.ok()) << cert.status().message();

      ExpectPartitionMatchesFresh(resolver.partition(), ds_,
                                  options.subset_size);
      ExpectSolutionsEqual(cert->solution, oneshot.solution);
      EXPECT_EQ(cert->resolution.labels, oneshot.resolution.labels);
      EXPECT_EQ(cert->fresh_inspections, oneshot.cost);
      EXPECT_EQ(cert->total_inspections, oneshot.cost);
      EXPECT_EQ(cert->reused_answers, 0u);
      EXPECT_TRUE(cert->certified);
      EXPECT_EQ(resolver.total_duplicate_requests(), 0u);
    }
  }
}

TEST_F(StreamingResolverTest, ThreadCountInvariance) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  const core::StreamingOptions options = DefaultStreamingOptions();

  std::vector<int> labels_at_1;
  core::HumoSolution solution_at_1;
  size_t cost_at_1 = 0;
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool::SetGlobalThreads(threads);
    data::WorkloadStreamOptions stream_options;
    stream_options.num_shards = 4;
    data::WorkloadStream stream(&ds_, stream_options);
    core::StreamingResolver resolver(options, req);
    data::Shard shard;
    while (stream.Next(&shard)) resolver.Ingest(std::move(shard));
    auto cert = resolver.Certify();
    ASSERT_TRUE(cert.ok());
    if (threads == 1) {
      labels_at_1 = cert->resolution.labels;
      solution_at_1 = cert->solution;
      cost_at_1 = cert->fresh_inspections;
    } else {
      ExpectSolutionsEqual(cert->solution, solution_at_1);
      EXPECT_EQ(cert->resolution.labels, labels_at_1);
      EXPECT_EQ(cert->fresh_inspections, cost_at_1);
    }
  }
  ThreadPool::SetGlobalThreads(0);  // restore the environment default
}

TEST_F(StreamingResolverTest, RecertifyAfterGrowthMatchesOneShotAndReuses) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  const core::StreamingOptions options = DefaultStreamingOptions();
  data::WorkloadStreamOptions stream_options;
  stream_options.num_shards = 4;
  stream_options.order = data::ArrivalOrder::kShuffled;
  data::WorkloadStream stream(&ds_, stream_options);

  core::StreamingResolver resolver(options, req);
  data::Shard shard;
  for (size_t e = 0; e < 2; ++e) {
    ASSERT_TRUE(stream.Next(&shard));
    resolver.Ingest(std::move(shard));
  }
  auto first = resolver.Certify();
  ASSERT_TRUE(first.ok());
  const size_t first_cost = first->fresh_inspections;
  EXPECT_GT(first_cost, 0u);

  // Mid-stream certificate holds on the pairs seen so far.
  const auto mid_quality =
      eval::QualityOf(resolver.cumulative(), first->resolution.labels);
  EXPECT_GE(mid_quality.precision, 0.88);
  EXPECT_GE(mid_quality.recall, 0.88);

  while (stream.Next(&shard)) resolver.Ingest(std::move(shard));
  auto second = resolver.Certify();
  ASSERT_TRUE(second.ok());

  // An interior merge re-keys the evidence; the second certification then
  // walks exactly the one-shot path (same RNG draws, same answers) and is
  // bit-identical to the cold run on the grown workload — but pays only
  // for pairs no earlier epoch answered.
  const OneShotRun oneshot =
      RunOneShotSamp(ds_, req, options.sampling, options.subset_size);
  ExpectSolutionsEqual(second->solution, oneshot.solution);
  EXPECT_EQ(second->resolution.labels, oneshot.resolution.labels);
  EXPECT_LT(second->fresh_inspections, oneshot.cost);
  EXPECT_GT(second->reused_answers, 0u);
  EXPECT_EQ(second->total_inspections,
            first_cost + second->fresh_inspections);
  EXPECT_EQ(resolver.total_duplicate_requests(), 0u);
}

TEST_F(StreamingResolverTest, PureAppendStreamCarriesStateAcrossEpochs) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  const core::StreamingOptions options = DefaultStreamingOptions();
  data::WorkloadStreamOptions stream_options;
  stream_options.num_shards = 4;
  stream_options.order = data::ArrivalOrder::kSimilarityAscending;
  data::WorkloadStream stream(&ds_, stream_options);

  core::StreamingResolver resolver(options, req);
  data::Shard shard;
  for (size_t e = 0; e < 2; ++e) {
    ASSERT_TRUE(stream.Next(&shard));
    const core::EpochReport& report = resolver.Ingest(std::move(shard));
    EXPECT_TRUE(report.pure_append);
    ExpectPartitionMatchesFresh(resolver.partition(), resolver.cumulative(),
                                options.subset_size);
  }
  auto first = resolver.Certify();
  ASSERT_TRUE(first.ok());
  const size_t first_cost = first->fresh_inspections;

  while (stream.Next(&shard)) {
    const core::EpochReport& report = resolver.Ingest(std::move(shard));
    EXPECT_TRUE(report.pure_append);
    // Appends never invalidate the carried answers.
    EXPECT_EQ(report.evidence_pairs, first_cost);
  }
  auto second = resolver.Certify();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->certified);
  // Carried subset statistics + answers make regrowing the certificate
  // cheaper than the cold one-shot run on the grown workload.
  const OneShotRun oneshot =
      RunOneShotSamp(ds_, req, options.sampling, options.subset_size);
  EXPECT_LT(second->fresh_inspections, oneshot.cost);
  EXPECT_EQ(resolver.total_duplicate_requests(), 0u);
  // The provisional GP extended its factor at least once along the way
  // (new fully-enumerated subsets appended to an intact training set).
  EXPECT_GE(resolver.provisional_gp_extensions() +
                resolver.provisional_gp_grid_fits(),
            1u);
  // Final quality still meets the requirement on this realization.
  const auto quality =
      eval::QualityOf(resolver.cumulative(), second->resolution.labels);
  EXPECT_GE(quality.precision, 0.88);
  EXPECT_GE(quality.recall, 0.88);
}

TEST_F(StreamingResolverTest,
       HybrCertifierMatchesOneShotHybrAndCostsAtMostSamp) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  core::StreamingOptions options = DefaultStreamingOptions();
  options.certifier = core::StreamCertifier::kHybr;
  data::WorkloadStreamOptions stream_options;
  stream_options.num_shards = 4;
  data::WorkloadStream stream(&ds_, stream_options);

  core::StreamingResolver resolver(options, req);
  data::Shard shard;
  while (stream.Next(&shard)) resolver.Ingest(std::move(shard));
  auto cert = resolver.Certify();
  ASSERT_TRUE(cert.ok()) << cert.status().message();
  EXPECT_TRUE(cert->certified);
  EXPECT_EQ(resolver.total_duplicate_requests(), 0u);

  // Bit-identical to the one-shot HYBR run on the concatenated workload.
  core::SubsetPartition partition(&ds_, options.subset_size);
  core::Oracle oracle(&ds_);
  core::EstimationContext ctx(&partition, &oracle);
  core::HybridOptions hybrid = options.hybrid;
  hybrid.sampling = options.sampling;
  auto oneshot_sol = core::HybridOptimizer(hybrid).Optimize(&ctx, req);
  ASSERT_TRUE(oneshot_sol.ok());
  const auto oneshot_res =
      core::ApplySolution(partition, *oneshot_sol, &oracle);
  ExpectSolutionsEqual(cert->solution, *oneshot_sol);
  EXPECT_EQ(cert->resolution.labels, oneshot_res.labels);
  EXPECT_EQ(cert->total_inspections, oracle.cost());

  // HYBR never exceeds SAMP's budget (§VII), streamed or not.
  const OneShotRun samp =
      RunOneShotSamp(ds_, req, options.sampling, options.subset_size);
  EXPECT_LE(cert->total_inspections, samp.cost);
}

TEST_F(StreamingResolverTest, RiskCertifierCostsAtMostOneShotSamp) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  core::StreamingOptions options = DefaultStreamingOptions();
  options.certifier = core::StreamCertifier::kRisk;
  data::WorkloadStreamOptions stream_options;
  stream_options.num_shards = 4;
  data::WorkloadStream stream(&ds_, stream_options);

  core::StreamingResolver resolver(options, req);
  data::Shard shard;
  while (stream.Next(&shard)) resolver.Ingest(std::move(shard));
  auto cert = resolver.Certify();
  ASSERT_TRUE(cert.ok());
  EXPECT_TRUE(cert->certified);

  const OneShotRun oneshot =
      RunOneShotSamp(ds_, req, options.sampling, options.subset_size);
  EXPECT_LE(cert->total_inspections, oneshot.cost);
  EXPECT_EQ(resolver.total_duplicate_requests(), 0u);
  const auto quality =
      eval::QualityOf(resolver.cumulative(), cert->resolution.labels);
  EXPECT_GE(quality.precision, 0.88);
  EXPECT_GE(quality.recall, 0.88);
}

TEST_F(StreamingResolverTest, ProvisionalServingStateAfterCertification) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  const core::StreamingOptions options = DefaultStreamingOptions();
  data::WorkloadStreamOptions stream_options;
  stream_options.num_shards = 6;
  data::WorkloadStream stream(&ds_, stream_options);

  core::StreamingResolver resolver(options, req);
  data::Shard shard;
  for (size_t e = 0; e < 3; ++e) {
    ASSERT_TRUE(stream.Next(&shard));
    const core::EpochReport& report = resolver.Ingest(std::move(shard));
    // No evidence yet: ingest is oracle-free, so no estimate either.
    EXPECT_FALSE(report.has_estimate);
    EXPECT_EQ(report.evidence_pairs, 0u);
  }
  ASSERT_TRUE(resolver.Certify().ok());

  bool saw_estimate = false;
  while (stream.Next(&shard)) {
    const core::EpochReport& report = resolver.Ingest(std::move(shard));
    EXPECT_GT(report.evidence_pairs, 0u);
    if (report.has_estimate) {
      saw_estimate = true;
      EXPECT_GT(report.est_precision, 0.0);
      EXPECT_LE(report.est_precision, 1.0);
      EXPECT_GT(report.est_recall, 0.0);
      EXPECT_LE(report.est_recall, 1.0);
    }
  }
  EXPECT_TRUE(saw_estimate);
  // The provisional labeling (carried answers + GP machine labels) is a
  // usable serving surface between certifications on this realization.
  ASSERT_EQ(resolver.provisional_labels().size(), resolver.cumulative().size());
  const auto quality =
      eval::QualityOf(resolver.cumulative(), resolver.provisional_labels());
  EXPECT_GE(quality.precision, 0.6);
  EXPECT_GE(quality.recall, 0.6);
}

/// ISSUE 7 satellite regression: Ingest() hands out a reference into the
/// report store, and reports() exposes the whole history. With the old
/// std::vector storage the next Ingest's reallocation silently dangled
/// every previously returned reference; the deque storage must keep each
/// one valid and bitwise intact for the resolver's lifetime.
TEST_F(StreamingResolverTest, ReportReferencesStayValidAcrossIngests) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  core::StreamingResolver resolver(DefaultStreamingOptions(), req);
  data::WorkloadStreamOptions stream_options;
  stream_options.num_shards = 64;  // far beyond any vector's first capacity
  data::WorkloadStream stream(&ds_, stream_options);

  std::vector<const core::EpochReport*> held;
  std::vector<core::EpochReport> copies;
  data::Shard shard;
  while (stream.Next(&shard)) {
    const core::EpochReport& report = resolver.Ingest(std::move(shard));
    held.push_back(&report);
    copies.push_back(report);
  }
  ASSERT_EQ(resolver.reports().size(), held.size());
  for (size_t e = 0; e < held.size(); ++e) {
    // Same address — the element was never moved — and same contents.
    ASSERT_EQ(held[e], &resolver.reports()[e]) << e;
    EXPECT_EQ(held[e]->epoch, copies[e].epoch);
    EXPECT_EQ(held[e]->pairs_arrived, copies[e].pairs_arrived);
    EXPECT_EQ(held[e]->pairs_total, copies[e].pairs_total);
    EXPECT_EQ(held[e]->num_subsets, copies[e].num_subsets);
    EXPECT_EQ(held[e]->evidence_pairs, copies[e].evidence_pairs);
    EXPECT_EQ(held[e]->est_precision, copies[e].est_precision);
    EXPECT_EQ(held[e]->est_recall, copies[e].est_recall);
  }
}

TEST_F(StreamingResolverTest, EdgeCases) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  core::StreamingResolver resolver(DefaultStreamingOptions(), req);

  // Certifying before any data is an error, not a crash.
  EXPECT_FALSE(resolver.Certify().ok());

  // Empty shards are no-ops that still produce reports; all index-keyed
  // state trivially survives, which pure_append reflects.
  const core::EpochReport& empty = resolver.Ingest(data::Shard{});
  EXPECT_EQ(empty.pairs_total, 0u);
  EXPECT_EQ(empty.num_subsets, 0u);
  EXPECT_TRUE(empty.pure_append);

  // A shard smaller than one subset still forms a valid partition.
  data::Shard tiny;
  tiny.epoch = 1;
  for (uint32_t i = 0; i < 5; ++i) {
    tiny.pairs.push_back({i, i + 100, 0.1 * static_cast<double>(i + 1),
                          i >= 3});
  }
  const core::EpochReport& report = resolver.Ingest(std::move(tiny));
  EXPECT_EQ(report.pairs_total, 5u);
  EXPECT_EQ(report.num_subsets, 1u);
  EXPECT_EQ(resolver.provisional_labels().size(), 5u);
}

}  // namespace
}  // namespace humo
