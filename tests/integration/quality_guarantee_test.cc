#include <gtest/gtest.h>

#include "core/all_sampling_optimizer.h"
#include "core/baseline_optimizer.h"
#include "core/hybrid_optimizer.h"
#include "core/partial_sampling_optimizer.h"
#include "core/solution.h"
#include "data/logistic_generator.h"
#include "eval/evaluation.h"
#include "eval/experiment.h"

namespace humo {
namespace {

/// Statistical verification of the paper's confidence semantics: across
/// repeated randomized runs, the fraction of runs meeting the quality
/// requirement must be at least roughly theta.
class QualityGuaranteeTest : public ::testing::Test {
 protected:
  static data::Workload workload_;
  static void SetUpTestSuite() {
    data::LogisticGeneratorOptions o;
    o.num_pairs = 30000;
    o.pairs_per_subset = 200;
    o.tau = 12.0;
    o.sigma = 0.08;
    o.seed = 5;
    workload_ = data::GenerateLogisticWorkload(o);
  }
};

data::Workload QualityGuaranteeTest::workload_;

TEST_F(QualityGuaranteeTest, SampSuccessRateAtLeastTheta) {
  core::SubsetPartition p(&workload_, 200);
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  auto factory = [](uint64_t seed) -> eval::OptimizerFn {
    return [seed](const core::SubsetPartition& part,
                  const core::QualityRequirement& r, core::Oracle* o) {
      core::PartialSamplingOptions opts;
      opts.seed = seed;
      return core::PartialSamplingOptimizer(opts).Optimize(part, r, o);
    };
  };
  const auto summary = eval::RunExperiment(p, req, factory, 20, 7000);
  EXPECT_EQ(summary.failed_trials, 0u);
  // theta = 0.9; with 20 trials allow sampling slack down to 0.8.
  EXPECT_GE(summary.success_rate, 0.8);
}

TEST_F(QualityGuaranteeTest, HybrSuccessRateAtLeastTheta) {
  core::SubsetPartition p(&workload_, 200);
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  auto factory = [](uint64_t seed) -> eval::OptimizerFn {
    return [seed](const core::SubsetPartition& part,
                  const core::QualityRequirement& r, core::Oracle* o) {
      core::HybridOptions opts;
      opts.sampling.seed = seed;
      return core::HybridOptimizer(opts).Optimize(part, r, o);
    };
  };
  const auto summary = eval::RunExperiment(p, req, factory, 20, 8000);
  EXPECT_EQ(summary.failed_trials, 0u);
  EXPECT_GE(summary.success_rate, 0.8);
}

TEST_F(QualityGuaranteeTest, BaseAlwaysSucceedsUnderMonotonicity) {
  // Theorem 1: under monotonicity BASE's guarantee is deterministic.
  core::SubsetPartition p(&workload_, 200);
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  core::Oracle oracle(&workload_);
  auto sol = core::BaselineOptimizer().Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  const auto result = core::ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(workload_, result.labels);
  EXPECT_GE(q.precision, req.alpha);
  EXPECT_GE(q.recall, req.beta);
}

TEST_F(QualityGuaranteeTest, AchievedQualityExceedsTargetOnAverage) {
  // Tables II-IV: achieved quality consistently overshoots the requirement.
  core::SubsetPartition p(&workload_, 200);
  const core::QualityRequirement req{0.8, 0.8, 0.9};
  auto factory = [](uint64_t seed) -> eval::OptimizerFn {
    return [seed](const core::SubsetPartition& part,
                  const core::QualityRequirement& r, core::Oracle* o) {
      core::PartialSamplingOptions opts;
      opts.seed = seed;
      return core::PartialSamplingOptimizer(opts).Optimize(part, r, o);
    };
  };
  const auto summary = eval::RunExperiment(p, req, factory, 10, 9000);
  EXPECT_GT(summary.mean_precision, 0.8);
  EXPECT_GT(summary.mean_recall, 0.8);
}

TEST_F(QualityGuaranteeTest, SampSurvivesNonMonotoneWorkload) {
  // Fig. 10's sigma = 0.5 regime: BASE's assumption breaks, SAMP holds.
  data::LogisticGeneratorOptions o;
  o.num_pairs = 30000;
  o.pairs_per_subset = 200;
  o.tau = 14.0;
  o.sigma = 0.5;
  o.seed = 99;
  const data::Workload rough = data::GenerateLogisticWorkload(o);
  core::SubsetPartition p(&rough, 200);
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  size_t success = 0;
  for (uint64_t t = 0; t < 10; ++t) {
    core::Oracle oracle(&rough);
    core::PartialSamplingOptions opts;
    opts.seed = 500 + t;
    opts.samples_per_subset = 40;
    auto sol = core::PartialSamplingOptimizer(opts).Optimize(p, req, &oracle);
    ASSERT_TRUE(sol.ok());
    const auto result = core::ApplySolution(p, *sol, &oracle);
    const auto q = eval::QualityOf(rough, result.labels);
    if (q.precision >= req.alpha && q.recall >= req.beta) ++success;
  }
  EXPECT_GE(success, 7u);
}

TEST_F(QualityGuaranteeTest, ImperfectOracleDegradesGracefully) {
  // §IV: with human error the achieved quality tracks the human's, not
  // collapsing to zero.
  core::SubsetPartition p(&workload_, 200);
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  core::Oracle noisy(&workload_, /*error_rate=*/0.02, /*seed=*/3);
  auto sol = core::BaselineOptimizer().Optimize(p, req, &noisy);
  ASSERT_TRUE(sol.ok());
  const auto result = core::ApplySolution(p, *sol, &noisy);
  const auto q = eval::QualityOf(workload_, result.labels);
  EXPECT_GE(q.precision, 0.85);
  EXPECT_GE(q.recall, 0.85);
}

}  // namespace
}  // namespace humo
