#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/shard_coordinator.h"
#include "core/streaming_resolver.h"
#include "data/pair_simulator.h"
#include "data/workload.h"
#include "data/workload_stream.h"
#include "eval/evaluation.h"
#include "eval/golden_reference.h"

namespace humo {
namespace {

/// The tentpole contract at reference scale: on the calibrated DS 20k and
/// AB 60k workloads (the exact setups eval/golden_reference.h pins), a
/// sharded resolution at ANY shard count produces the one-shot
/// StreamingResolver's solution, labeling, and total oracle cost bit for
/// bit, and the cost equals the committed SAMP golden value. A drift in the
/// shard split, the answer routing, the evidence merge, or the oracle's
/// error keying fails here by name.
///
/// The in-process suite carries the ShardedInProcess prefix so the TSan CI
/// job runs it (the in-process transport fans shards out on the thread
/// pool); the fork suite is named apart because fork + TSan is unsupported.
class ShardedInProcessGoldenTest : public ::testing::Test {
 protected:
  static data::Workload ds_;
  static data::Workload ab_;

  static void SetUpTestSuite() {
    ds_ = data::SimulatePairs(data::DsConfigSmall(555, 20000));
    ab_ = data::SimulatePairs(data::AbConfigSmall(1234, 60000));
  }

  static core::StreamingOptions GoldenStreamingOptions() {
    core::StreamingOptions options;
    options.sampling.seed = 1000;  // the golden table's optimizer seed
    return options;
  }

  static void CheckAgainstOneShot(const data::Workload& workload,
                                  const eval::GoldenSampReference& golden,
                                  core::ShardTransport transport,
                                  const std::vector<size_t>& shard_counts) {
    const core::QualityRequirement req{0.9, 0.9, 0.9};
    core::StreamingResolver one_shot(GoldenStreamingOptions(), req);
    one_shot.Ingest(data::Shard{0, workload.MaterializePairs()});
    const auto reference = one_shot.Certify();
    ASSERT_TRUE(reference.ok()) << reference.status().message();
    // The reference itself must sit on the committed golden value — if the
    // one-shot baseline moved, this failure names the real culprit instead
    // of blaming the sharded comparison.
    ASSERT_EQ(reference->total_inspections, golden.human_cost);

    for (const size_t k : shard_counts) {
      SCOPED_TRACE(testing::Message() << golden.workload << " K=" << k);
      core::ShardedOptions options;
      options.num_shards = k;
      options.transport = transport;
      options.streaming = GoldenStreamingOptions();
      core::ShardCoordinator coordinator(options, req);
      const auto sharded = coordinator.Resolve(workload);
      ASSERT_TRUE(sharded.ok()) << sharded.status().message();

      // Bit-identical solution, labeling, and oracle cost.
      EXPECT_EQ(sharded->certificate.solution.empty,
                reference->solution.empty);
      EXPECT_EQ(sharded->certificate.solution.h_lo, reference->solution.h_lo);
      EXPECT_EQ(sharded->certificate.solution.h_hi, reference->solution.h_hi);
      EXPECT_EQ(sharded->certificate.resolution.labels,
                reference->resolution.labels);
      EXPECT_EQ(sharded->certificate.total_inspections,
                reference->total_inspections);
      EXPECT_EQ(sharded->merged_cost, golden.human_cost);

      // The coordinator's own consistency verdicts.
      EXPECT_TRUE(sharded->evidence_consistent);
      EXPECT_TRUE(sharded->labels_consistent);

      // Quality of the sharded labeling equals the committed golden
      // quality exactly.
      const auto quality =
          eval::QualityOf(workload, sharded->certificate.resolution.labels);
      EXPECT_EQ(quality.precision, golden.precision);
      EXPECT_EQ(quality.recall, golden.recall);

      // Shard accounting tiles the global cost with zero duplicates.
      size_t answered = 0;
      for (const auto& report : sharded->shards) {
        answered += report.answered;
        EXPECT_EQ(report.evidence.duplicate_requests, 0u);
      }
      EXPECT_EQ(answered, sharded->merged_cost);
    }
  }
};

data::Workload ShardedInProcessGoldenTest::ds_;
data::Workload ShardedInProcessGoldenTest::ab_;

TEST_F(ShardedInProcessGoldenTest, DsMatchesOneShotAtK1248) {
  CheckAgainstOneShot(ds_, eval::kGoldenSampDs,
                      core::ShardTransport::kInProcess, {1, 2, 4, 8});
}

TEST_F(ShardedInProcessGoldenTest, AbMatchesOneShotAtK1248) {
  CheckAgainstOneShot(ab_, eval::kGoldenSampAb,
                      core::ShardTransport::kInProcess, {1, 2, 4, 8});
}

// Fork transport at reference scale, one representative shard count per
// workload (the full K grid runs in-process above; fork vs in-process
// equality at every K is covered by bench_sharded's contract run).
using ShardedForkGoldenTest = ShardedInProcessGoldenTest;

TEST_F(ShardedForkGoldenTest, DsForkedWorkersMatchOneShot) {
  if (!ForkTransportAvailable()) GTEST_SKIP() << "no fork on this platform";
  CheckAgainstOneShot(ds_, eval::kGoldenSampDs, core::ShardTransport::kFork,
                      {4});
}

TEST_F(ShardedForkGoldenTest, AbForkedWorkersMatchOneShot) {
  if (!ForkTransportAvailable()) GTEST_SKIP() << "no fork on this platform";
  CheckAgainstOneShot(ab_, eval::kGoldenSampAb, core::ShardTransport::kFork,
                      {4});
}

}  // namespace
}  // namespace humo
