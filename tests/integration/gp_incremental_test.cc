#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/thread_pool.h"
#include "core/estimation_engine.h"
#include "core/hybrid_optimizer.h"
#include "core/partial_sampling_optimizer.h"
#include "core/solution.h"
#include "data/logistic_generator.h"
#include "eval/evaluation.h"

namespace humo {
namespace {

/// Scoped HUMO_GP_INCREMENTAL override; restores the prior value on exit so
/// the rest of the suite keeps running under the default (incremental on).
class ScopedGpIncremental {
 public:
  explicit ScopedGpIncremental(const char* value) {
    const char* prev = std::getenv("HUMO_GP_INCREMENTAL");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    ::setenv("HUMO_GP_INCREMENTAL", value, /*overwrite=*/1);
  }
  ~ScopedGpIncremental() {
    if (had_prev_) {
      ::setenv("HUMO_GP_INCREMENTAL", prev_.c_str(), 1);
    } else {
      ::unsetenv("HUMO_GP_INCREMENTAL");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

data::Workload MakeWorkload(uint64_t seed = 1, size_t n = 40000) {
  data::LogisticGeneratorOptions o;
  o.num_pairs = n;
  o.pairs_per_subset = 200;
  o.tau = 14.0;
  o.sigma = 0.05;
  o.seed = seed;
  return data::GenerateLogisticWorkload(o);
}

struct RunOutcome {
  size_t h_lo, h_hi, cost;
  core::CacheStats stats;
};

RunOutcome RunSamp(const data::Workload& w, uint64_t seed) {
  core::SubsetPartition p(&w, 200);
  core::Oracle oracle(&w);
  core::EstimationContext ctx(&p, &oracle);
  core::PartialSamplingOptions po;
  po.seed = seed;
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = core::PartialSamplingOptimizer(po).Optimize(&ctx, req);
  EXPECT_TRUE(sol.ok());
  return {sol->h_lo, sol->h_hi, oracle.cost(), ctx.stats()};
}

RunOutcome RunHybr(const data::Workload& w, uint64_t seed) {
  core::SubsetPartition p(&w, 200);
  core::Oracle oracle(&w);
  core::EstimationContext ctx(&p, &oracle);
  core::HybridOptions ho;
  ho.sampling.seed = seed;
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = core::HybridOptimizer(ho).Optimize(&ctx, req);
  EXPECT_TRUE(sol.ok());
  return {sol->h_lo, sol->h_hi, oracle.cost(), ctx.stats()};
}

/// The acceptance property of the incremental refit path: SAMP produces the
/// SAME solution, at the same human cost, whether GP re-estimation re-runs
/// the full hyperparameter grid every round (legacy, HUMO_GP_INCREMENTAL=0)
/// or warm-starts rank-k appends on the previous winner (default).
TEST(GpIncrementalTest, SampSolutionsIdenticalWithAndWithoutIncremental) {
  const data::Workload w = MakeWorkload(1);
  for (uint64_t seed : {5u, 17u, 42u}) {
    RunOutcome legacy_out, warm_out;
    {
      ScopedGpIncremental off("0");
      legacy_out = RunSamp(w, seed);
    }
    {
      ScopedGpIncremental on("1");
      warm_out = RunSamp(w, seed);
    }
    EXPECT_EQ(legacy_out.h_lo, warm_out.h_lo) << "seed " << seed;
    EXPECT_EQ(legacy_out.h_hi, warm_out.h_hi) << "seed " << seed;
    EXPECT_EQ(legacy_out.cost, warm_out.cost) << "seed " << seed;
    // Counter sanity: the legacy path never warm-starts; the incremental
    // path replaced grid re-runs with appends.
    EXPECT_EQ(legacy_out.stats.gp_warm_starts, 0u);
    EXPECT_GT(legacy_out.stats.gp_grid_fits, 0u);
    EXPECT_GT(warm_out.stats.gp_warm_starts, 0u) << "seed " << seed;
    EXPECT_LT(warm_out.stats.gp_grid_fits, legacy_out.stats.gp_grid_fits)
        << "seed " << seed;
  }
}

TEST(GpIncrementalTest, HybrSolutionsIdenticalWithAndWithoutIncremental) {
  const data::Workload w = MakeWorkload(3);
  RunOutcome legacy_out, warm_out;
  {
    ScopedGpIncremental off("0");
    legacy_out = RunHybr(w, 7);
  }
  {
    ScopedGpIncremental on("1");
    warm_out = RunHybr(w, 7);
  }
  EXPECT_EQ(legacy_out.h_lo, warm_out.h_lo);
  EXPECT_EQ(legacy_out.h_hi, warm_out.h_hi);
  EXPECT_EQ(legacy_out.cost, warm_out.cost);
}

/// Incremental refits stay bit-identical across thread counts, like every
/// other parallel surface in the library.
TEST(GpIncrementalTest, IncrementalPathThreadCountInvariant) {
  ScopedGpIncremental on("1");
  const data::Workload w = MakeWorkload(9, 30000);
  auto run = [&](size_t threads) {
    ThreadPool::SetGlobalThreads(threads);
    return RunSamp(w, 11);
  };
  const RunOutcome serial = run(1);
  const RunOutcome parallel = run(4);
  ThreadPool::SetGlobalThreads(0);
  EXPECT_EQ(serial.h_lo, parallel.h_lo);
  EXPECT_EQ(serial.h_hi, parallel.h_hi);
  EXPECT_EQ(serial.cost, parallel.cost);
  EXPECT_EQ(serial.stats.gp_warm_starts, parallel.stats.gp_warm_starts);
  EXPECT_EQ(serial.stats.gp_grid_fits, parallel.stats.gp_grid_fits);
  EXPECT_EQ(serial.stats.gp_rows_appended, parallel.stats.gp_rows_appended);
}

/// A chained run on a SHARED context that asks for a different kernel
/// family must not warm-start from the previous run's model — the warm path
/// keeps hyperparameters, and a Matern run served an RBF fit would break
/// the 0/1-identity contract exactly where GpFitState persists across runs.
TEST(GpIncrementalTest, DifferentKernelFamilyOnSharedContextRefitsGrid) {
  const data::Workload w = MakeWorkload(11);
  core::SubsetPartition p(&w, 200);
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  core::PartialSamplingOptions rbf;
  rbf.seed = 3;
  core::PartialSamplingOptions matern = rbf;
  matern.kernel_family = gp::KernelFamily::kMatern52;

  // Reference: Matern on a fresh context under the legacy full-refit path.
  size_t ref_lo, ref_hi;
  {
    ScopedGpIncremental off("0");
    core::Oracle oracle(&w);
    core::EstimationContext ctx(&p, &oracle);
    auto sol = core::PartialSamplingOptimizer(matern).Optimize(&ctx, req);
    ASSERT_TRUE(sol.ok());
    ref_lo = sol->h_lo;
    ref_hi = sol->h_hi;
  }

  // Chained: RBF first, then Matern on the SAME context with warm starts
  // enabled. The Matern run must ignore the RBF fit state and agree with
  // the fresh-context reference.
  ScopedGpIncremental on("1");
  core::Oracle oracle(&w);
  core::EstimationContext ctx(&p, &oracle);
  ASSERT_TRUE(core::PartialSamplingOptimizer(rbf).Optimize(&ctx, req).ok());
  auto chained = core::PartialSamplingOptimizer(matern).Optimize(&ctx, req);
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(chained->h_lo, ref_lo);
  EXPECT_EQ(chained->h_hi, ref_hi);
}

/// The incremental path must not cost the human anything: warm-started runs
/// still meet the quality targets (the solution is identical, so this is
/// belt-and-braces on top of the identity tests above).
TEST(GpIncrementalTest, IncrementalRunStillMeetsQuality) {
  ScopedGpIncremental on("1");
  const data::Workload w = MakeWorkload(5);
  core::SubsetPartition p(&w, 200);
  core::Oracle oracle(&w);
  core::EstimationContext ctx(&p, &oracle);
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = core::PartialSamplingOptimizer().Optimize(&ctx, req);
  ASSERT_TRUE(sol.ok());
  const auto result = core::ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  EXPECT_GE(q.precision, 0.9);
  EXPECT_GE(q.recall, 0.9);
}

}  // namespace
}  // namespace humo
