#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/estimation_engine.h"
#include "core/hybrid_optimizer.h"
#include "core/partial_sampling_optimizer.h"
#include "core/solution.h"
#include "data/logistic_generator.h"
#include "data/pair_simulator.h"
#include "eval/evaluation.h"

namespace humo {
namespace {

data::Workload MakeWorkload(uint64_t seed = 1, size_t n = 40000) {
  data::LogisticGeneratorOptions o;
  o.num_pairs = n;
  o.pairs_per_subset = 200;
  o.tau = 14.0;
  o.sigma = 0.05;
  o.seed = seed;
  return data::GenerateLogisticWorkload(o);
}

/// The acceptance property of the shared estimation engine: a HYBR run
/// layered on a SAMP run over one context re-asks the oracle for NOTHING —
/// every subset SAMP enumerated is served from the SubsetStatsCache, and
/// the pairs HYBR newly labels are each inspected exactly once.
TEST(EngineReuseTest, HybridAfterSamplingIssuesZeroDuplicateInspections) {
  const data::Workload w = MakeWorkload();
  core::SubsetPartition p(&w, 200);
  core::Oracle oracle(&w);
  core::EstimationContext ctx(&p, &oracle);
  const core::QualityRequirement req{0.9, 0.9, 0.9};

  core::PartialSamplingOptions po;
  po.seed = 5;
  auto s0 = core::PartialSamplingOptimizer(po).OptimizeDetailed(&ctx, req);
  ASSERT_TRUE(s0.ok());
  const size_t samp_cost = oracle.cost();
  ASSERT_GT(samp_cost, 0u);
  ASSERT_EQ(oracle.duplicate_requests(), 0u) << "SAMP re-asked a pair";
  const core::CacheStats samp_stats = ctx.stats();

  core::HybridOptions ho;
  ho.sampling = po;
  auto hybr = core::HybridOptimizer(ho).Optimize(&ctx, req);
  ASSERT_TRUE(hybr.ok());

  // Zero duplicate oracle inspections across the whole chained run: every
  // request that reached the oracle was for a pair it had never answered,
  // and the engine's own inspection counter agrees with the oracle's
  // distinct-pair cost — nothing was inspected twice anywhere.
  EXPECT_EQ(oracle.duplicate_requests(), 0u);
  EXPECT_EQ(oracle.total_requests(), oracle.cost());
  const core::CacheStats after = ctx.stats();
  EXPECT_EQ(after.oracle_pairs_inspected, oracle.cost());
  (void)samp_stats;

  // And the reused S0 bounds still bracket the hybrid solution.
  EXPECT_GE(hybr->h_lo, s0->solution.h_lo);
  EXPECT_LE(hybr->h_hi, s0->solution.h_hi);

  // A second HYBR run over the same context is answered entirely from the
  // cache: not one additional pair is inspected.
  const size_t cost_before_rerun = oracle.cost();
  auto again = core::HybridOptimizer(ho).Optimize(&ctx, req);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(oracle.cost(), cost_before_rerun);
  EXPECT_EQ(oracle.cost(), ctx.stats().oracle_pairs_inspected);
  EXPECT_EQ(oracle.duplicate_requests(), 0u);
  EXPECT_GT(ctx.stats().full_label_hits, after.full_label_hits);
  EXPECT_EQ(again->h_lo, hybr->h_lo);
  EXPECT_EQ(again->h_hi, hybr->h_hi);
}

/// Chaining through a shared context is strictly cheaper than fresh runs.
TEST(EngineReuseTest, SharedContextCostsLessThanFreshRuns) {
  const data::Workload w = MakeWorkload(3);
  core::SubsetPartition p(&w, 200);
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  core::PartialSamplingOptions po;
  po.seed = 7;
  core::HybridOptions ho;
  ho.sampling = po;

  // Fresh oracles, no sharing.
  size_t fresh_cost = 0;
  {
    core::Oracle o1(&w);
    ASSERT_TRUE(core::PartialSamplingOptimizer(po).Optimize(p, req, &o1).ok());
    core::Oracle o2(&w);
    ASSERT_TRUE(core::HybridOptimizer(ho).Optimize(p, req, &o2).ok());
    fresh_cost = o1.cost() + o2.cost();
  }

  // Same two runs over one context and one oracle.
  core::Oracle shared(&w);
  core::EstimationContext ctx(&p, &shared);
  ASSERT_TRUE(core::PartialSamplingOptimizer(po).Optimize(&ctx, req).ok());
  ASSERT_TRUE(core::HybridOptimizer(ho).Optimize(&ctx, req).ok());

  EXPECT_LT(shared.cost(), fresh_cost);
}

/// The legacy three-argument entry points and the context entry points are
/// the same algorithm: a fresh context reproduces the historical behavior
/// exactly.
TEST(EngineReuseTest, FreshContextMatchesLegacyEntryPoint) {
  const data::Workload w = MakeWorkload(5);
  core::SubsetPartition p(&w, 200);
  const core::QualityRequirement req{0.88, 0.88, 0.9};
  core::PartialSamplingOptions po;
  po.seed = 21;

  core::Oracle o1(&w);
  auto legacy = core::PartialSamplingOptimizer(po).Optimize(p, req, &o1);
  core::Oracle o2(&w);
  core::EstimationContext ctx(&p, &o2);
  auto engine = core::PartialSamplingOptimizer(po).Optimize(&ctx, req);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(legacy->h_lo, engine->h_lo);
  EXPECT_EQ(legacy->h_hi, engine->h_hi);
  EXPECT_EQ(o1.cost(), o2.cost());
}

/// Bit-identical results at any thread count: solutions, human cost, and
/// quality from a 1-thread run equal those from an N-thread run.
TEST(EngineReuseTest, ThreadCountDoesNotChangeResults) {
  const data::Workload base_workload = MakeWorkload(9);
  const core::QualityRequirement req{0.9, 0.9, 0.9};

  struct Outcome {
    size_t h_lo, h_hi, cost;
    double precision, recall, f1;
    std::vector<double> sims;
  };
  auto run = [&](size_t threads) {
    ThreadPool::SetGlobalThreads(threads);
    // Regenerate the workload under this thread count too: simulation is
    // part of the parallelized surface.
    const data::Workload w = data::SimulatePairs(data::DsConfigSmall(2, 20000));
    core::SubsetPartition p(&w, 200);
    core::Oracle oracle(&w);
    core::EstimationContext ctx(&p, &oracle);
    core::PartialSamplingOptions po;
    po.seed = 5;
    auto samp = core::PartialSamplingOptimizer(po).Optimize(&ctx, req);
    EXPECT_TRUE(samp.ok());
    core::HybridOptions ho;
    ho.sampling = po;
    auto hybr = core::HybridOptimizer(ho).Optimize(&ctx, req);
    EXPECT_TRUE(hybr.ok());
    const auto result = core::ApplySolution(p, *hybr, &oracle);
    const auto q = eval::QualityOf(w, result.labels);
    Outcome out;
    out.h_lo = hybr->h_lo;
    out.h_hi = hybr->h_hi;
    out.cost = result.human_cost;
    out.precision = q.precision;
    out.recall = q.recall;
    out.f1 = q.f1;
    out.sims.reserve(64);
    for (size_t i = 0; i < w.size(); i += w.size() / 64) {
      out.sims.push_back(w[i].similarity);
    }
    return out;
  };

  const Outcome serial = run(1);
  const Outcome parallel = run(4);
  ThreadPool::SetGlobalThreads(0);  // restore the environment default

  EXPECT_EQ(serial.h_lo, parallel.h_lo);
  EXPECT_EQ(serial.h_hi, parallel.h_hi);
  EXPECT_EQ(serial.cost, parallel.cost);
  EXPECT_EQ(serial.precision, parallel.precision);  // bitwise, not NEAR
  EXPECT_EQ(serial.recall, parallel.recall);
  EXPECT_EQ(serial.f1, parallel.f1);
  ASSERT_EQ(serial.sims.size(), parallel.sims.size());
  for (size_t i = 0; i < serial.sims.size(); ++i) {
    EXPECT_EQ(serial.sims[i], parallel.sims[i]) << "similarity " << i;
  }
}

}  // namespace
}  // namespace humo
