#include <gtest/gtest.h>

#include "core/baseline_optimizer.h"
#include "core/hybrid_optimizer.h"
#include "core/partial_sampling_optimizer.h"
#include "core/solution.h"
#include "data/pair_simulator.h"
#include "eval/evaluation.h"

namespace humo {
namespace {

/// End-to-end runs of every optimizer on both simulated real-dataset
/// workloads, checking the paper's qualitative claims.
class EndToEndTest : public ::testing::Test {
 protected:
  static data::Workload ds_;
  static data::Workload ab_;

  static void SetUpTestSuite() {
    // Full-size simulated workloads with the default calibration seeds (the
    // same realizations the bench harness reports on): the optimizer
    // parameter defaults assume the paper's scale, and the simulators are
    // cheap enough for unit tests. Cost ORDERINGS between optimizers are
    // realization-dependent (Fig. 9's own point), so ordering assertions
    // are tied to these specific realizations.
    ds_ = data::SimulatePairs(data::DsConfig());
    ab_ = data::SimulatePairs(data::AbConfig());
  }
};

data::Workload EndToEndTest::ds_;
data::Workload EndToEndTest::ab_;

struct RunOutcome {
  double precision, recall, cost_fraction;
};

RunOutcome RunOptimizer(const data::Workload& w, const std::string& which,
                        const core::QualityRequirement& req, uint64_t seed) {
  core::SubsetPartition p(&w, 200);
  core::Oracle oracle(&w);
  Result<core::HumoSolution> sol = Status::Internal("unset");
  if (which == "base") {
    sol = core::BaselineOptimizer().Optimize(p, req, &oracle);
  } else if (which == "samp") {
    core::PartialSamplingOptions o;
    o.seed = seed;
    sol = core::PartialSamplingOptimizer(o).Optimize(p, req, &oracle);
  } else {
    core::HybridOptions o;
    o.sampling.seed = seed;
    sol = core::HybridOptimizer(o).Optimize(p, req, &oracle);
  }
  EXPECT_TRUE(sol.ok()) << which;
  const auto result = core::ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  return {q.precision, q.recall, result.human_cost_fraction};
}

TEST_F(EndToEndTest, AllOptimizersMeetQualityOnDs) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  for (const std::string which : {"base", "samp", "hybr"}) {
    const auto out = RunOptimizer(ds_, which, req, 21);
    EXPECT_GE(out.precision, 0.9) << which;
    EXPECT_GE(out.recall, 0.9) << which;
    EXPECT_LT(out.cost_fraction, 0.8) << which;
  }
}

TEST_F(EndToEndTest, AllOptimizersMeetQualityOnAb) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  for (const std::string which : {"base", "samp", "hybr"}) {
    const auto out = RunOptimizer(ab_, which, req, 22);
    EXPECT_GE(out.precision, 0.88) << which;
    EXPECT_GE(out.recall, 0.88) << which;
  }
}

TEST_F(EndToEndTest, AbRequiresMoreHumanWorkThanDs) {
  // The paper's central dataset observation (Fig. 6): the harder AB
  // workload needs more manual inspection at equal quality targets.
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  const auto ds_out = RunOptimizer(ds_, "hybr", req, 23);
  const auto ab_out = RunOptimizer(ab_, "hybr", req, 23);
  EXPECT_GT(ab_out.cost_fraction, ds_out.cost_fraction);
}

TEST_F(EndToEndTest, SamplingBeatsBaselineOnDs) {
  // On the easy DS workload, BASE's conservatism should cost more than
  // SAMP (Fig. 6a).
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  const auto base_out = RunOptimizer(ds_, "base", req, 24);
  const auto samp_out = RunOptimizer(ds_, "samp", req, 24);
  EXPECT_GT(base_out.cost_fraction, samp_out.cost_fraction);
}

TEST_F(EndToEndTest, CostIncreasesWithQualityTarget) {
  double prev_cost = -1.0;
  for (double level : {0.7, 0.8, 0.9, 0.95}) {
    const core::QualityRequirement req{level, level, 0.9};
    const auto out = RunOptimizer(ds_, "base", req, 25);
    if (prev_cost >= 0.0) {
      EXPECT_GE(out.cost_fraction + 0.02, prev_cost)
          << "cost regressed at level " << level;
    }
    prev_cost = out.cost_fraction;
  }
}

TEST_F(EndToEndTest, HybridNeverWorseThanSamplingSameSeed) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  for (uint64_t seed : {31, 32, 33}) {
    const auto samp_out = RunOptimizer(ab_, "samp", req, seed);
    const auto hybr_out = RunOptimizer(ab_, "hybr", req, seed);
    EXPECT_LE(hybr_out.cost_fraction, samp_out.cost_fraction + 1e-9)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace humo
