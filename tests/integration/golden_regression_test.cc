#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/baseline_optimizer.h"
#include "core/hybrid_optimizer.h"
#include "core/partial_sampling_optimizer.h"
#include "core/risk_aware_optimizer.h"
#include "core/solution.h"
#include "data/pair_simulator.h"
#include "entity/entity_clustering.h"
#include "eval/entity_metrics.h"
#include "eval/evaluation.h"
#include "eval/golden_reference.h"

namespace humo {
namespace {

/// Seed-pinned end-to-end snapshot: on the calibrated DS/AB realizations,
/// every optimizer's solution range, achieved precision/recall, and oracle
/// counters must match the committed golden values EXACTLY — bit-for-bit
/// doubles, not tolerances. Any silent determinism drift (a reordered
/// accumulation, an unordered-container iteration leaking into results, an
/// RNG stream change) fails here even when the per-module tests still pass.
///
/// Regenerating after an INTENTIONAL behavior change:
///   HUMO_PRINT_GOLDEN=1 ./tests/humo_tests
///       --gtest_filter='GoldenRegressionTest.*'   (one command line)
/// and paste the printed table over kGolden below. Review the diff: costs
/// and ranges should move for a reason you can name.
struct GoldenRow {
  const char* workload;
  const char* optimizer;
  bool empty;
  size_t h_lo, h_hi;
  double precision, recall;
  size_t human_cost;
  size_t total_requests;
  size_t duplicate_requests;
  /// Entity-level view of the same resolution: cluster count of the final
  /// labels and pairwise entity precision/recall against the ground-truth
  /// clustering. (The simulated workloads give every pair its own records,
  /// so the entity P/R numerically coincides with the pairwise P/R — the
  /// row still pins that the clustering path itself is deterministic.)
  size_t num_entities;
  double entity_precision, entity_recall;
};

constexpr uint64_t kSeed = 1000;

const GoldenRow kGolden[] = {
    {"DS", "BASE", false, 82, 98, 0.9980732177263969, 0.98479087452471481,
     3400, 3400, 0, 38962, 0.9980732177263969, 0.98479087452471481},
    {"DS", "SAMP", false, 1, 98, 0.99810246679316883, 1, 20000, 20000, 0,
     38946, 0.99810246679316883, 1},
    {"DS", "HYBR", false, 49, 97, 0.98872180451127822, 1, 10200, 10200, 0,
     38936, 0.98872180451127822, 1},
    {"DS", "RISK", false, 1, 98, 0.98858230256898194, 0.98764258555133078,
     12896, 12896, 0, 38949, 0.98858230256898194, 0.98764258555133078},
    {"AB", "BASE", false, 267, 299, 1, 0.94202898550724634, 6600, 6600, 0,
     119805, 1, 0.94202898550724634},
    {"AB", "SAMP", false, 10, 299, 1, 1, 58200, 58200, 0, 119793, 1, 1},
    {"AB", "HYBR", false, 154, 299, 1, 0.99516908212560384, 30200, 30200, 0,
     119794, 1, 0.99516908212560384},
    {"AB", "RISK", false, 10, 299, 1, 0.99516908212560384, 54128, 54128, 0,
     119794, 1, 0.99516908212560384},
};

struct ActualRow {
  core::HumoSolution solution;
  double precision = 0.0, recall = 0.0;
  size_t human_cost = 0, total_requests = 0, duplicate_requests = 0;
  size_t num_entities = 0;
  double entity_precision = 0.0, entity_recall = 0.0;
};

ActualRow RunOptimizer(const data::Workload& w, const std::string& which) {
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  core::SubsetPartition partition(&w, 200);
  core::Oracle oracle(&w);
  ActualRow row;
  std::vector<int> labels;
  if (which == "RISK") {
    core::RiskAwareOptions options;
    options.sampling.seed = kSeed;
    auto out = core::RiskAwareOptimizer(options).Resolve(partition, req,
                                                         &oracle);
    EXPECT_TRUE(out.ok());
    if (!out.ok()) return row;
    row.solution = out->solution;
    labels = out->resolution.labels;
  } else {
    Result<core::HumoSolution> sol = Status::Internal("unset");
    if (which == "BASE") {
      sol = core::BaselineOptimizer().Optimize(partition, req, &oracle);
    } else if (which == "SAMP") {
      core::PartialSamplingOptions options;
      options.seed = kSeed;
      sol = core::PartialSamplingOptimizer(options).Optimize(partition, req,
                                                             &oracle);
    } else {
      core::HybridOptions options;
      options.sampling.seed = kSeed;
      sol = core::HybridOptimizer(options).Optimize(partition, req, &oracle);
    }
    EXPECT_TRUE(sol.ok());
    if (!sol.ok()) return row;
    row.solution = *sol;
    labels = core::ApplySolution(partition, *sol, &oracle).labels;
  }
  const auto quality = eval::QualityOf(w, labels);
  row.precision = quality.precision;
  row.recall = quality.recall;
  row.human_cost = oracle.cost();
  row.total_requests = oracle.total_requests();
  row.duplicate_requests = oracle.duplicate_requests();
  // Entity view of the same resolution, pinned exactly like the pairwise
  // numbers: clustering the final labels must be deterministic too.
  const entity::EntityClustering clustering =
      entity::EntityClustering::FromLabels(w, labels);
  const eval::EntityQuality entity_quality =
      eval::EntityQualityOf(eval::TruthClustering(w), clustering);
  row.num_entities = clustering.num_entities();
  row.entity_precision = entity_quality.precision;
  row.entity_recall = entity_quality.recall;
  return row;
}

class GoldenRegressionTest : public ::testing::Test {
 protected:
  static data::Workload ds_;
  static data::Workload ab_;

  static void SetUpTestSuite() {
    ds_ = data::SimulatePairs(data::DsConfigSmall(555, 20000));
    ab_ = data::SimulatePairs(data::AbConfigSmall(1234, 60000));
  }
};

data::Workload GoldenRegressionTest::ds_;
data::Workload GoldenRegressionTest::ab_;

void CheckRow(const data::Workload& w, const GoldenRow& golden) {
  const ActualRow actual = RunOptimizer(w, golden.optimizer);
  if (std::getenv("HUMO_PRINT_GOLDEN") != nullptr) {
    std::printf(
        "    {\"%s\", \"%s\", %s, %zu, %zu, %.17g, %.17g, %zu, %zu, %zu, "
        "%zu, %.17g, %.17g},\n",
        golden.workload, golden.optimizer,
        actual.solution.empty ? "true" : "false", actual.solution.h_lo,
        actual.solution.h_hi, actual.precision, actual.recall,
        actual.human_cost, actual.total_requests, actual.duplicate_requests,
        actual.num_entities, actual.entity_precision, actual.entity_recall);
    return;
  }
  EXPECT_EQ(actual.solution.empty, golden.empty);
  EXPECT_EQ(actual.solution.h_lo, golden.h_lo);
  EXPECT_EQ(actual.solution.h_hi, golden.h_hi);
  EXPECT_EQ(actual.precision, golden.precision);  // exact, not NEAR
  EXPECT_EQ(actual.recall, golden.recall);
  EXPECT_EQ(actual.human_cost, golden.human_cost);
  EXPECT_EQ(actual.total_requests, golden.total_requests);
  EXPECT_EQ(actual.duplicate_requests, golden.duplicate_requests);
  EXPECT_EQ(actual.num_entities, golden.num_entities);
  EXPECT_EQ(actual.entity_precision, golden.entity_precision);
  EXPECT_EQ(actual.entity_recall, golden.entity_recall);
}

TEST_F(GoldenRegressionTest, DsSnapshotExact) {
  for (const GoldenRow& row : kGolden) {
    if (std::string(row.workload) != "DS") continue;
    SCOPED_TRACE(row.optimizer);
    CheckRow(ds_, row);
  }
}

TEST_F(GoldenRegressionTest, AbSnapshotExact) {
  for (const GoldenRow& row : kGolden) {
    if (std::string(row.workload) != "AB") continue;
    SCOPED_TRACE(row.optimizer);
    CheckRow(ab_, row);
  }
}

TEST(GoldenReferenceTest, SharedSampRowsMatchGoldenTable) {
  // eval/golden_reference.h is the copy bench_scale checks itself against;
  // a regeneration of kGolden that forgets to update it must fail HERE,
  // locally, not as a confusing bench divergence in CI.
  for (const GoldenRow& row : kGolden) {
    if (std::string(row.optimizer) != "SAMP") continue;
    const eval::GoldenSampReference& shared =
        std::string(row.workload) == "DS" ? eval::kGoldenSampDs
                                          : eval::kGoldenSampAb;
    EXPECT_EQ(row.precision, shared.precision) << row.workload;
    EXPECT_EQ(row.recall, shared.recall) << row.workload;
    EXPECT_EQ(row.human_cost, shared.human_cost) << row.workload;
  }
}

TEST_F(GoldenRegressionTest, RerunIsStable) {
  // The same cell computed twice in one process must agree exactly — the
  // cheap in-process guard against hidden global state; cross-process
  // stability is what the committed kGolden table locks.
  const ActualRow a = RunOptimizer(ds_, "SAMP");
  const ActualRow b = RunOptimizer(ds_, "SAMP");
  EXPECT_EQ(a.solution.h_lo, b.solution.h_lo);
  EXPECT_EQ(a.solution.h_hi, b.solution.h_hi);
  EXPECT_EQ(a.precision, b.precision);
  EXPECT_EQ(a.recall, b.recall);
  EXPECT_EQ(a.human_cost, b.human_cost);
}

}  // namespace
}  // namespace humo
