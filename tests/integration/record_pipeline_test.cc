#include <gtest/gtest.h>

#include "core/hybrid_optimizer.h"
#include "core/solution.h"
#include "data/blocking.h"
#include "data/product_generator.h"
#include "data/publication_generator.h"
#include "eval/evaluation.h"
#include "ml/linear_svm.h"
#include "ml/scaler.h"
#include "text/attribute_similarity.h"
#include "text/jaro.h"
#include "text/token_similarity.h"

namespace humo {
namespace {

/// Full record-level pipeline: generate records -> attribute similarities
/// with distinct-count weights -> blocking -> HUMO. This exercises the data
/// wrangling path the pair-level simulators skip.
text::AggregatedSimilarity PublicationSimilarity(
    const data::PublicationTables& tables) {
  std::vector<std::vector<std::string>> all_records;
  for (const auto& r : tables.curated.records())
    all_records.push_back(r.attributes);
  for (const auto& r : tables.crawled.records())
    all_records.push_back(r.attributes);
  const auto weights =
      text::AggregatedSimilarity::WeightsFromDistinctCounts(all_records, 3);
  std::vector<text::AttributeSpec> specs;
  specs.push_back({"title",
                   [](std::string_view a, std::string_view b) {
                     return text::JaccardSimilarity(a, b);
                   },
                   weights[0]});
  specs.push_back({"authors",
                   [](std::string_view a, std::string_view b) {
                     return text::JaccardSimilarity(a, b);
                   },
                   weights[1]});
  specs.push_back({"venue",
                   [](std::string_view a, std::string_view b) {
                     return text::JaroWinklerSimilarity(a, b);
                   },
                   weights[2]});
  return text::AggregatedSimilarity(std::move(specs));
}

TEST(RecordPipelineTest, PublicationWorkloadHasMonotoneShape) {
  data::PublicationGeneratorOptions o;
  o.num_curated = 150;
  o.num_crawled = 600;
  o.seed = 3;
  const auto tables = GeneratePublications(o);
  const auto sim = PublicationSimilarity(tables);
  const auto scorer = [&sim](const data::Record& a, const data::Record& b) {
    return sim(a.attributes, b.attributes);
  };
  const data::Workload w =
      data::ThresholdBlock(tables.curated, tables.crawled, scorer, 0.2);
  ASSERT_GT(w.size(), 100u);
  ASSERT_GT(w.CountMatches(), 10u);

  // Match proportion in the top similarity third should exceed the bottom
  // third — the monotonicity HUMO relies on.
  const size_t third = w.size() / 3;
  auto proportion = [&](size_t from, size_t to) {
    size_t matches = 0;
    for (size_t i = from; i < to; ++i) matches += w[i].is_match;
    return static_cast<double>(matches) / static_cast<double>(to - from);
  };
  EXPECT_GT(proportion(2 * third, w.size()), proportion(0, third));
}

TEST(RecordPipelineTest, BlockingKeepsMostMatches) {
  data::PublicationGeneratorOptions o;
  o.num_curated = 100;
  o.num_crawled = 400;
  const auto tables = GeneratePublications(o);
  const auto sim = PublicationSimilarity(tables);
  const auto scorer = [&sim](const data::Record& a, const data::Record& b) {
    return sim(a.attributes, b.attributes);
  };
  const data::Workload w =
      data::ThresholdBlock(tables.curated, tables.crawled, scorer, 0.15);
  const auto stats = data::ComputeBlockingStats(tables.curated,
                                                tables.crawled, w);
  EXPECT_GT(stats.ReductionRatio(), 0.3);
  EXPECT_GT(stats.PairCompleteness(), 0.85);
}

TEST(RecordPipelineTest, HumoDeliversQualityOnGeneratedPublications) {
  data::PublicationGeneratorOptions o;
  o.num_curated = 200;
  o.num_crawled = 2000;
  o.duplicate_fraction = 0.3;
  o.seed = 17;
  const auto tables = GeneratePublications(o);
  const auto sim = PublicationSimilarity(tables);
  const auto scorer = [&sim](const data::Record& a, const data::Record& b) {
    return sim(a.attributes, b.attributes);
  };
  const data::Workload w =
      data::ThresholdBlock(tables.curated, tables.crawled, scorer, 0.1);
  ASSERT_GT(w.size(), 2000u);

  core::SubsetPartition p(&w, 100);
  core::Oracle oracle(&w);
  core::HybridOptimizer opt;
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  auto sol = opt.Optimize(p, req, &oracle);
  ASSERT_TRUE(sol.ok());
  const auto result = core::ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  EXPECT_GE(q.precision, 0.85);
  EXPECT_GE(q.recall, 0.85);
}

TEST(RecordPipelineTest, SvmTrainedOnAttributeFeaturesBeatsChance) {
  data::ProductGeneratorOptions o;
  o.num_left = 150;
  o.num_right = 400;
  o.seed = 23;
  const auto tables = GenerateProducts(o);
  // Features: per-attribute similarities.
  ml::Dataset dataset;
  for (const auto& l : tables.left.records()) {
    for (const auto& r : tables.right.records()) {
      const double name_sim =
          text::JaccardSimilarity(l.attributes[0], r.attributes[0]);
      if (name_sim < 0.05) continue;  // blocking
      const double desc_sim =
          text::JaccardSimilarity(l.attributes[1], r.attributes[1]);
      dataset.Add({name_sim, desc_sim},
                  l.entity_id == r.entity_id ? 1 : 0);
    }
  }
  ASSERT_GT(dataset.size(), 100u);
  ASSERT_GT(dataset.CountPositives(), 10u);

  Rng rng(1);
  const auto split = ml::SplitDataset(dataset, 0.7, &rng);
  ml::StandardScaler scaler;
  scaler.Fit(split.train);
  ml::SvmOptions svm_opts;
  svm_opts.positive_weight = 5.0;
  const auto svm = ml::LinearSvm::Train(scaler.Transform(split.train),
                                        svm_opts);
  std::vector<int> preds;
  for (const auto& f : split.test.features)
    preds.push_back(svm.Predict(scaler.Transform(f)));
  const auto m = ml::EvaluateLabels(preds, split.test.labels);
  EXPECT_GT(m.f1(), 0.3);  // product matching is hard; beat chance clearly
}

}  // namespace
}  // namespace humo
