#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

namespace humo::stats {
namespace {

TEST(DescriptiveTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({7}), 7.0);
}

TEST(DescriptiveTest, SampleVariance) {
  // Var of {2,4,4,4,5,5,7,9} with n-1 denominator = 4.571428...
  EXPECT_NEAR(SampleVariance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(SampleVariance({5}), 0.0);
  EXPECT_DOUBLE_EQ(SampleVariance({}), 0.0);
}

TEST(DescriptiveTest, PopulationVariance) {
  EXPECT_NEAR(PopulationVariance({2, 4, 4, 4, 5, 5, 7, 9}), 4.0, 1e-12);
}

TEST(DescriptiveTest, StdDevIsSqrtOfVariance) {
  const std::vector<double> xs = {1, 3, 5, 7};
  EXPECT_NEAR(SampleStdDev(xs), std::sqrt(SampleVariance(xs)), 1e-12);
}

TEST(DescriptiveTest, QuantileInterpolates) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
}

TEST(DescriptiveTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
}

TEST(DescriptiveTest, QuantileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Quantile({9, 1, 5}, 0.5), 5.0);
}

TEST(DescriptiveTest, PearsonPerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(DescriptiveTest, PearsonConstantSideIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 4, 6}), 0.0);
}

TEST(RunningStatsTest, MatchesBatchComputation) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), SampleVariance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.Add(3.5);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.5);
  EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

TEST(RunningStatsTest, NumericallyStableAroundLargeOffset) {
  RunningStats rs;
  const double offset = 1e9;
  for (double x : {1.0, 2.0, 3.0}) rs.Add(offset + x);
  EXPECT_NEAR(rs.variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace humo::stats
