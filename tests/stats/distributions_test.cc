#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace humo::stats {
namespace {

TEST(NormalTest, PdfPeakAtZero) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_GT(NormalPdf(0.0), NormalPdf(1.0));
  EXPECT_DOUBLE_EQ(NormalPdf(2.0), NormalPdf(-2.0));
}

TEST(NormalTest, CdfReferenceValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(NormalCdf(-1.0), 1.0 - 0.8413447460685429, 1e-10);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
}

TEST(NormalTest, CdfMonotone) {
  double prev = 0.0;
  for (double x = -5.0; x <= 5.0; x += 0.1) {
    const double c = NormalCdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.025, 0.1, 0.3, 0.5, 0.7, 0.9, 0.975, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(NormalTest, QuantileReferenceValues) {
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.95), 1.644853627, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
}

TEST(NormalTest, TwoSidedCritical) {
  // P(-z < Z < z) = 0.95 -> z = 1.96.
  EXPECT_NEAR(NormalTwoSidedCritical(0.95), 1.959963985, 1e-6);
  EXPECT_NEAR(NormalTwoSidedCritical(0.90), 1.644853627, 1e-6);
}

TEST(LogGammaTest, FactorialValues) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-8);
}

TEST(LogGammaTest, HalfIntegerValue) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(IncompleteBetaTest, Boundaries) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetricCase) {
  // I_{0.5}(a, a) = 0.5 by symmetry.
  EXPECT_NEAR(RegularizedIncompleteBeta(3.0, 3.0, 0.5), 0.5, 1e-10);
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(IncompleteBetaTest, KnownValue) {
  // I_x(2, 2) = x^2 (3 - 2x).
  const double x = 0.3;
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 2.0, x), x * x * (3 - 2 * x),
              1e-10);
}

TEST(StudentTTest, CdfAtZeroIsHalf) {
  for (double df : {1.0, 2.0, 5.0, 30.0}) {
    EXPECT_NEAR(StudentTCdf(0.0, df), 0.5, 1e-12) << "df=" << df;
  }
}

TEST(StudentTTest, CdfSymmetry) {
  for (double t : {0.5, 1.0, 2.5}) {
    EXPECT_NEAR(StudentTCdf(t, 7.0) + StudentTCdf(-t, 7.0), 1.0, 1e-10);
  }
}

TEST(StudentTTest, CauchySpecialCase) {
  // df=1 is the Cauchy distribution: CDF(t) = 1/2 + atan(t)/pi.
  for (double t : {-2.0, -0.5, 0.7, 3.0}) {
    EXPECT_NEAR(StudentTCdf(t, 1.0), 0.5 + std::atan(t) / M_PI, 1e-9);
  }
}

TEST(StudentTTest, ApproachesNormalForLargeDf) {
  for (double t : {-1.5, 0.5, 2.0}) {
    EXPECT_NEAR(StudentTCdf(t, 1e6), NormalCdf(t), 1e-4);
  }
}

TEST(StudentTTest, QuantileInvertsCdf) {
  for (double df : {1.0, 4.0, 12.0, 100.0}) {
    for (double p : {0.05, 0.25, 0.5, 0.8, 0.975}) {
      const double t = StudentTQuantile(p, df);
      EXPECT_NEAR(StudentTCdf(t, df), p, 1e-8) << "df=" << df << " p=" << p;
    }
  }
}

TEST(StudentTTest, CriticalValueReferenceTable) {
  // Standard t-table two-sided 95% values.
  EXPECT_NEAR(StudentTTwoSidedCritical(0.95, 1), 12.706, 2e-3);
  EXPECT_NEAR(StudentTTwoSidedCritical(0.95, 5), 2.571, 1e-3);
  EXPECT_NEAR(StudentTTwoSidedCritical(0.95, 10), 2.228, 1e-3);
  EXPECT_NEAR(StudentTTwoSidedCritical(0.95, 30), 2.042, 1e-3);
}

TEST(StudentTTest, CriticalValueShrinksWithDf) {
  const double c1 = StudentTTwoSidedCritical(0.9, 2);
  const double c2 = StudentTTwoSidedCritical(0.9, 20);
  const double c3 = StudentTTwoSidedCritical(0.9, 200);
  EXPECT_GT(c1, c2);
  EXPECT_GT(c2, c3);
  EXPECT_GT(c3, NormalTwoSidedCritical(0.9) - 0.01);
}

TEST(StudentTTest, ZeroDfFallsBackToNormal) {
  EXPECT_NEAR(StudentTTwoSidedCritical(0.95, 0.0),
              NormalTwoSidedCritical(0.95), 1e-12);
}

}  // namespace
}  // namespace humo::stats
