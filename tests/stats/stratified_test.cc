#include "stats/stratified.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace humo::stats {
namespace {

TEST(StratumTest, ProportionBasics) {
  Stratum s{/*population=*/200, /*sample_size=*/20, /*sample_positives=*/5};
  EXPECT_DOUBLE_EQ(s.proportion(), 0.25);
  EXPECT_FALSE(s.fully_enumerated());
}

TEST(StratumTest, EmptySample) {
  Stratum s{200, 0, 0};
  EXPECT_DOUBLE_EQ(s.proportion(), 0.0);
  // Unsampled and not enumerated: worst-case variance.
  EXPECT_DOUBLE_EQ(s.proportion_variance(), 0.25);
}

TEST(StratumTest, FullyEnumeratedHasNoVariance) {
  Stratum s{50, 50, 20};
  EXPECT_TRUE(s.fully_enumerated());
  EXPECT_DOUBLE_EQ(s.proportion_variance(), 0.0);
}

TEST(StratumTest, VarianceFormulaWithFpc) {
  Stratum s{100, 10, 5};
  // (1 - 10/100) * 0.5*0.5 / 9 = 0.9 * 0.25 / 9 = 0.025.
  EXPECT_NEAR(s.proportion_variance(), 0.025, 1e-12);
}

TEST(StratumTest, ZeroOrOneProportionHasZeroVariance) {
  Stratum all{100, 10, 10};
  Stratum none{100, 10, 0};
  EXPECT_DOUBLE_EQ(all.proportion_variance(), 0.0);
  EXPECT_DOUBLE_EQ(none.proportion_variance(), 0.0);
}

TEST(CombineStrataTest, PointEstimateSumsStrata) {
  std::vector<Stratum> strata = {{100, 10, 5}, {200, 20, 4}};
  const auto est = CombineStrata(strata);
  // 100*0.5 + 200*0.2 = 90.
  EXPECT_NEAR(est.total_mean, 90.0, 1e-12);
  EXPECT_EQ(est.population, 300u);
  // df = (10-1) + (20-1) = 28.
  EXPECT_DOUBLE_EQ(est.degrees_of_freedom, 28.0);
}

TEST(CombineStrataTest, VarianceAddsAcrossStrata) {
  std::vector<Stratum> strata = {{100, 10, 5}, {200, 20, 4}};
  const auto est = CombineStrata(strata);
  const double v1 = strata[0].proportion_variance() * 100.0 * 100.0;
  const double v2 = strata[1].proportion_variance() * 200.0 * 200.0;
  EXPECT_NEAR(est.total_stddev, std::sqrt(v1 + v2), 1e-12);
}

TEST(CombineStrataTest, BoundsBracketMeanAndClampToPopulation) {
  std::vector<Stratum> strata = {{100, 10, 5}, {200, 20, 4}};
  const auto est = CombineStrata(strata);
  const double lb = est.LowerBound(0.95);
  const double ub = est.UpperBound(0.95);
  EXPECT_LT(lb, est.total_mean);
  EXPECT_GT(ub, est.total_mean);
  EXPECT_GE(lb, 0.0);
  EXPECT_LE(ub, 300.0);
}

TEST(CombineStrataTest, HigherConfidenceWidensInterval) {
  std::vector<Stratum> strata = {{500, 25, 10}};
  const auto est = CombineStrata(strata);
  const double narrow = est.UpperBound(0.8) - est.LowerBound(0.8);
  const double wide = est.UpperBound(0.99) - est.LowerBound(0.99);
  EXPECT_GT(wide, narrow);
}

TEST(CombineStrataTest, FullyEnumeratedIsExact) {
  std::vector<Stratum> strata = {{50, 50, 30}};
  const auto est = CombineStrata(strata);
  EXPECT_DOUBLE_EQ(est.total_stddev, 0.0);
  EXPECT_DOUBLE_EQ(est.LowerBound(0.99), 30.0);
  EXPECT_DOUBLE_EQ(est.UpperBound(0.99), 30.0);
}

TEST(CombineStrataTest, UnionProportion) {
  std::vector<Stratum> strata = {{100, 10, 5}, {100, 10, 1}};
  const auto est = CombineStrata(strata);
  EXPECT_NEAR(UnionProportion(est), (50.0 + 10.0) / 200.0, 1e-12);
}

TEST(CombineStrataTest, EmptyInput) {
  const auto est = CombineStrata({});
  EXPECT_DOUBLE_EQ(est.total_mean, 0.0);
  EXPECT_EQ(est.population, 0u);
  EXPECT_DOUBLE_EQ(UnionProportion(est), 0.0);
}

TEST(CombineStrataTest, CoverageSimulation) {
  // Monte-Carlo check: the 90% interval should cover the true total in
  // roughly >= 90% of simulated stratified samples.
  Rng rng(99);
  const size_t strata_count = 10, population = 200, sample = 25;
  // True per-stratum proportions rising from 0.05 to 0.95.
  std::vector<double> truth(strata_count);
  double true_total = 0.0;
  for (size_t k = 0; k < strata_count; ++k) {
    truth[k] = 0.05 + 0.9 * static_cast<double>(k) / (strata_count - 1);
    true_total += truth[k] * population;
  }
  int covered = 0;
  const int reps = 400;
  for (int r = 0; r < reps; ++r) {
    std::vector<Stratum> strata(strata_count);
    for (size_t k = 0; k < strata_count; ++k) {
      strata[k].population = population;
      strata[k].sample_size = sample;
      // Hypergeometric-ish: approximate by binomial draw on truth.
      size_t pos = 0;
      for (size_t i = 0; i < sample; ++i) pos += rng.NextBernoulli(truth[k]);
      strata[k].sample_positives = pos;
    }
    const auto est = CombineStrata(strata);
    if (est.LowerBound(0.9) <= true_total && true_total <= est.UpperBound(0.9))
      ++covered;
  }
  EXPECT_GE(static_cast<double>(covered) / reps, 0.85);
}

}  // namespace
}  // namespace humo::stats
