#include "stats/stratified.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace humo::stats {
namespace {

TEST(StratumTest, ProportionBasics) {
  Stratum s{/*population=*/200, /*sample_size=*/20, /*sample_positives=*/5};
  EXPECT_DOUBLE_EQ(s.proportion(), 0.25);
  EXPECT_FALSE(s.fully_enumerated());
}

TEST(StratumTest, EmptySample) {
  Stratum s{200, 0, 0};
  EXPECT_DOUBLE_EQ(s.proportion(), 0.0);
  // Unsampled and not enumerated: worst-case variance.
  EXPECT_DOUBLE_EQ(s.proportion_variance(), 0.25);
}

TEST(StratumTest, FullyEnumeratedHasNoVariance) {
  Stratum s{50, 50, 20};
  EXPECT_TRUE(s.fully_enumerated());
  EXPECT_DOUBLE_EQ(s.proportion_variance(), 0.0);
}

TEST(StratumTest, VarianceFormulaWithFpc) {
  Stratum s{100, 10, 5};
  // (1 - 10/100) * 0.5*0.5 / 9 = 0.9 * 0.25 / 9 = 0.025.
  EXPECT_NEAR(s.proportion_variance(), 0.025, 1e-12);
}

TEST(StratumTest, ZeroOrOneProportionHasZeroVariance) {
  Stratum all{100, 10, 10};
  Stratum none{100, 10, 0};
  EXPECT_DOUBLE_EQ(all.proportion_variance(), 0.0);
  EXPECT_DOUBLE_EQ(none.proportion_variance(), 0.0);
}

TEST(CombineStrataTest, PointEstimateSumsStrata) {
  std::vector<Stratum> strata = {{100, 10, 5}, {200, 20, 4}};
  const auto est = CombineStrata(strata);
  // 100*0.5 + 200*0.2 = 90.
  EXPECT_NEAR(est.total_mean, 90.0, 1e-12);
  EXPECT_EQ(est.population, 300u);
  // df = (10-1) + (20-1) = 28.
  EXPECT_DOUBLE_EQ(est.degrees_of_freedom, 28.0);
}

TEST(CombineStrataTest, VarianceAddsAcrossStrata) {
  std::vector<Stratum> strata = {{100, 10, 5}, {200, 20, 4}};
  const auto est = CombineStrata(strata);
  const double v1 = strata[0].proportion_variance() * 100.0 * 100.0;
  const double v2 = strata[1].proportion_variance() * 200.0 * 200.0;
  EXPECT_NEAR(est.total_stddev, std::sqrt(v1 + v2), 1e-12);
}

TEST(CombineStrataTest, BoundsBracketMeanAndClampToPopulation) {
  std::vector<Stratum> strata = {{100, 10, 5}, {200, 20, 4}};
  const auto est = CombineStrata(strata);
  const double lb = est.LowerBound(0.95);
  const double ub = est.UpperBound(0.95);
  EXPECT_LT(lb, est.total_mean);
  EXPECT_GT(ub, est.total_mean);
  EXPECT_GE(lb, 0.0);
  EXPECT_LE(ub, 300.0);
}

TEST(CombineStrataTest, HigherConfidenceWidensInterval) {
  std::vector<Stratum> strata = {{500, 25, 10}};
  const auto est = CombineStrata(strata);
  const double narrow = est.UpperBound(0.8) - est.LowerBound(0.8);
  const double wide = est.UpperBound(0.99) - est.LowerBound(0.99);
  EXPECT_GT(wide, narrow);
}

TEST(CombineStrataTest, FullyEnumeratedIsExact) {
  std::vector<Stratum> strata = {{50, 50, 30}};
  const auto est = CombineStrata(strata);
  EXPECT_DOUBLE_EQ(est.total_stddev, 0.0);
  EXPECT_DOUBLE_EQ(est.LowerBound(0.99), 30.0);
  EXPECT_DOUBLE_EQ(est.UpperBound(0.99), 30.0);
}

TEST(CombineStrataTest, UnionProportion) {
  std::vector<Stratum> strata = {{100, 10, 5}, {100, 10, 1}};
  const auto est = CombineStrata(strata);
  EXPECT_NEAR(UnionProportion(est), (50.0 + 10.0) / 200.0, 1e-12);
}

TEST(CombineStrataTest, EmptyInput) {
  const auto est = CombineStrata({});
  EXPECT_DOUBLE_EQ(est.total_mean, 0.0);
  EXPECT_EQ(est.population, 0u);
  EXPECT_DOUBLE_EQ(UnionProportion(est), 0.0);
}

TEST(CombineStrataTest, CoverageSimulation) {
  // Monte-Carlo check: the 90% interval should cover the true total in
  // roughly >= 90% of simulated stratified samples.
  Rng rng(99);
  const size_t strata_count = 10, population = 200, sample = 25;
  // True per-stratum proportions rising from 0.05 to 0.95.
  std::vector<double> truth(strata_count);
  double true_total = 0.0;
  for (size_t k = 0; k < strata_count; ++k) {
    truth[k] = 0.05 + 0.9 * static_cast<double>(k) / (strata_count - 1);
    true_total += truth[k] * population;
  }
  int covered = 0;
  const int reps = 400;
  for (int r = 0; r < reps; ++r) {
    std::vector<Stratum> strata(strata_count);
    for (size_t k = 0; k < strata_count; ++k) {
      strata[k].population = population;
      strata[k].sample_size = sample;
      // Hypergeometric-ish: approximate by binomial draw on truth.
      size_t pos = 0;
      for (size_t i = 0; i < sample; ++i) pos += rng.NextBernoulli(truth[k]);
      strata[k].sample_positives = pos;
    }
    const auto est = CombineStrata(strata);
    if (est.LowerBound(0.9) <= true_total && true_total <= est.UpperBound(0.9))
      ++covered;
  }
  EXPECT_GE(static_cast<double>(covered) / reps, 0.85);
}

// ---------------------------------------------------------------------------
// AllocateSamples under SHARD-shaped inputs: the shard coordinator feeds it
// one stratum per computation shard (population = shard pair count) to split
// the oracle budget. These are the shapes that sharding actually produces.
// ---------------------------------------------------------------------------

std::vector<Stratum> Populations(std::initializer_list<size_t> pops) {
  std::vector<Stratum> strata;
  for (const size_t p : pops) {
    Stratum st;
    st.population = p;
    strata.push_back(st);
  }
  return strata;
}

size_t Sum(const std::vector<size_t>& v) {
  size_t total = 0;
  for (const size_t x : v) total += x;
  return total;
}

TEST(AllocateSamplesShardTest, ZeroPopulationShardsGetNothing) {
  // PlanShards never emits empty shards, but the allocator must not rely on
  // that: a zero-population stratum takes no budget and steals none.
  const auto alloc = AllocateSamples(Populations({0, 1000, 0, 3000}), 400);
  ASSERT_EQ(alloc.size(), 4u);
  EXPECT_EQ(alloc[0], 0u);
  EXPECT_EQ(alloc[2], 0u);
  EXPECT_EQ(Sum(alloc), 400u);
  EXPECT_EQ(alloc[1], 100u);  // proportional: 1000/4000 of 400
  EXPECT_EQ(alloc[3], 300u);
}

TEST(AllocateSamplesShardTest, BudgetAbovePopulationCapsAtPopulation) {
  // The unlimited-budget path of the coordinator (budget == total
  // population) and anything beyond it: every shard is allocated exactly
  // its population, never more.
  for (const size_t budget : {4000ul, 4001ul, 1000000ul}) {
    const auto alloc = AllocateSamples(Populations({1000, 3000}), budget);
    ASSERT_EQ(alloc.size(), 2u);
    EXPECT_EQ(alloc[0], 1000u) << budget;
    EXPECT_EQ(alloc[1], 3000u) << budget;
  }
}

TEST(AllocateSamplesShardTest, SingleShardDegeneracy) {
  // K = 1 sharding: the whole budget lands on the only shard, capped at its
  // population.
  EXPECT_EQ(AllocateSamples(Populations({5000}), 1234)[0], 1234u);
  EXPECT_EQ(AllocateSamples(Populations({5000}), 9999)[0], 5000u);
  EXPECT_EQ(AllocateSamples(Populations({5000}), 0)[0], 0u);
}

TEST(AllocateSamplesShardTest, LargestRemainderTiesBreakByIndex) {
  // Four equal shards, budget leaving 2 leftover units after the floor
  // pass: every fractional remainder ties, so the leftover goes to the
  // LOWEST indices — deterministically, run after run.
  const auto alloc = AllocateSamples(Populations({100, 100, 100, 100}), 10);
  ASSERT_EQ(alloc.size(), 4u);
  EXPECT_EQ(Sum(alloc), 10u);
  EXPECT_EQ(alloc[0], 3u);
  EXPECT_EQ(alloc[1], 3u);
  EXPECT_EQ(alloc[2], 2u);
  EXPECT_EQ(alloc[3], 2u);
  // Determinism: byte-for-byte identical on a rerun.
  EXPECT_EQ(alloc, AllocateSamples(Populations({100, 100, 100, 100}), 10));
}

TEST(AllocateSamplesShardTest, UnevenShardSplitStaysProportionalAndExact) {
  // The (m * i) / K boundary math gives near-equal but not equal shard
  // sizes; the allocation must still sum exactly to the budget with each
  // shard within one unit of its exact proportional share.
  const std::vector<size_t> pops = {4200, 4000, 4000, 3800};
  std::vector<Stratum> strata;
  for (const size_t p : pops) {
    Stratum st;
    st.population = p;
    strata.push_back(st);
  }
  const size_t budget = 1601;
  const auto alloc = AllocateSamples(strata, budget);
  EXPECT_EQ(Sum(alloc), budget);
  for (size_t k = 0; k < pops.size(); ++k) {
    const double exact = static_cast<double>(budget) *
                         static_cast<double>(pops[k]) / 16000.0;
    EXPECT_NEAR(static_cast<double>(alloc[k]), exact, 1.0) << k;
  }
}

// ---------------------------------------------------------------------------
// ReallocateUnspent: the coordinator's post-run budget settlement.
// ---------------------------------------------------------------------------

TEST(ReallocateUnspentTest, UnderSpendFundsOverDemandInIndexOrder) {
  // Shard 0 under-spent by 30; shards 1 and 2 over-demanded. The pool
  // drains into deficits in ascending index order.
  const auto grant = ReallocateUnspent({100, 50, 50}, {70, 70, 60});
  ASSERT_EQ(grant.size(), 3u);
  EXPECT_EQ(grant[0], 70u);
  EXPECT_EQ(grant[1], 70u);  // deficit 20, fully funded first
  EXPECT_EQ(grant[2], 60u);  // remaining 10 covers the rest
}

TEST(ReallocateUnspentTest, GrantNeverExceedsDemand) {
  const auto grant = ReallocateUnspent({500, 500}, {10, 20});
  EXPECT_EQ(grant[0], 10u);
  EXPECT_EQ(grant[1], 20u);
}

TEST(ReallocateUnspentTest, ExhaustedPoolLeavesTailDeficitsUnfunded) {
  // Total allocation 100 < total demand 130: the sum of grants equals the
  // allocation total, and the shortfall lands on the highest indices.
  const auto grant = ReallocateUnspent({60, 20, 20}, {30, 50, 50});
  EXPECT_EQ(grant[0], 30u);
  EXPECT_EQ(grant[1], 50u);
  EXPECT_EQ(grant[2], 20u);  // 10 of its 30-unit deficit never funded
  EXPECT_EQ(Sum(grant), 100u);
}

TEST(ReallocateUnspentTest, ExactSpendIsIdentity) {
  const std::vector<size_t> demand = {7, 0, 19};
  EXPECT_EQ(ReallocateUnspent(demand, demand), demand);
}

TEST(ReallocateUnspentTest, EmptyInput) {
  EXPECT_TRUE(ReallocateUnspent({}, {}).empty());
}

}  // namespace
}  // namespace humo::stats
