#include "stats/dawid_skene.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace humo::stats {
namespace {

/// Deterministic unit draw, independent of any library RNG so the planted
/// scenario is fixed forever.
double Unit(uint64_t a, uint64_t b) {
  uint64_t z =
      0x9E3779B97F4A7C15ULL * (a + 1) ^ 0xBF58476D1CE4E5B9ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

struct Planted {
  size_t num_items = 0;
  size_t num_workers = 0;
  std::vector<char> truth;          // per item
  std::vector<double> worker_error;  // per worker
  std::vector<CrowdVote> votes;
};

/// `workers_per_item` distinct workers judge each item; worker w flips the
/// truth with its fixed error rate from `worker_errors`.
Planted Simulate(size_t num_items, std::vector<double> worker_errors,
                 size_t workers_per_item) {
  Planted p;
  p.num_items = num_items;
  p.num_workers = worker_errors.size();
  p.truth.resize(num_items);
  p.worker_error = std::move(worker_errors);
  const size_t num_workers = p.num_workers;
  std::vector<uint32_t> jury;
  for (size_t i = 0; i < num_items; ++i) {
    p.truth[i] = Unit(1, i) < 0.5 ? 1 : 0;
    // Pseudo-random DISTINCT jury per item (linear probing), so jury
    // composition varies — including the occasional bad-majority jury the
    // worker-quality weighting exists to overrule.
    jury.clear();
    for (size_t slot = 0; slot < workers_per_item; ++slot) {
      uint32_t w = static_cast<uint32_t>(
          static_cast<size_t>(Unit(500 + slot, i) *
                              static_cast<double>(num_workers)) %
          num_workers);
      while (std::find(jury.begin(), jury.end(), w) != jury.end()) {
        w = (w + 1) % static_cast<uint32_t>(num_workers);
      }
      jury.push_back(w);
      bool answer = p.truth[i] != 0;
      if (Unit(1000 + i, w) < p.worker_error[w]) answer = !answer;
      p.votes.push_back({static_cast<uint32_t>(i), w,
                         static_cast<uint8_t>(answer ? 1 : 0)});
    }
  }
  return p;
}

/// Uniform heterogeneity: errors in [base - spread, base + spread].
std::vector<double> UniformErrors(size_t num_workers, double base,
                                  double spread) {
  std::vector<double> e(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    e[w] = base + spread * (2.0 * Unit(7, w) - 1.0);
  }
  return e;
}

/// The regime Dawid–Skene exists for: most of the pool is reliable, a
/// third is near-random. Majority vote counts both kinds at face value.
std::vector<double> BimodalErrors(size_t num_workers) {
  std::vector<double> e(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    e[w] = w % 3 == 0 ? 0.45 : 0.08;
  }
  return e;
}

size_t MajorityErrors(const Planted& p) {
  std::vector<int> net(p.num_items, 0);
  for (const CrowdVote& v : p.votes) net[v.item] += v.answer ? 1 : -1;
  size_t errors = 0;
  for (size_t i = 0; i < p.num_items; ++i) {
    errors += (net[i] > 0) != (p.truth[i] != 0);
  }
  return errors;
}

size_t DsErrors(const Planted& p, const DawidSkeneResult& r) {
  size_t errors = 0;
  for (size_t i = 0; i < p.num_items; ++i) {
    errors += (r.posterior[i] > 0.5) != (p.truth[i] != 0);
  }
  return errors;
}

TEST(DawidSkeneTest, BitwiseDeterministic) {
  const Planted p = Simulate(400, UniformErrors(25, 0.25, 0.2), 3);
  const DawidSkeneResult a = RunDawidSkene(p.num_items, p.num_workers, p.votes);
  const DawidSkeneResult b = RunDawidSkene(p.num_items, p.num_workers, p.votes);
  ASSERT_EQ(a.posterior.size(), b.posterior.size());
  for (size_t i = 0; i < a.posterior.size(); ++i) {
    EXPECT_EQ(a.posterior[i], b.posterior[i]) << "item " << i;
  }
  for (size_t w = 0; w < p.num_workers; ++w) {
    EXPECT_EQ(a.sensitivity[w], b.sensitivity[w]);
    EXPECT_EQ(a.specificity[w], b.specificity[w]);
    EXPECT_EQ(a.error_rate[w], b.error_rate[w]);
  }
}

TEST(DawidSkeneTest, RecoversPlantedWorkerErrorRates) {
  // Many items per worker so the confusion estimates concentrate.
  const Planted p = Simulate(3000, UniformErrors(20, 0.25, 0.2), 3);
  const DawidSkeneResult r = RunDawidSkene(p.num_items, p.num_workers, p.votes);
  double mean_abs_dev = 0.0;
  for (size_t w = 0; w < p.num_workers; ++w) {
    mean_abs_dev += std::fabs(r.error_rate[w] - p.worker_error[w]);
  }
  mean_abs_dev /= static_cast<double>(p.num_workers);
  // Each worker judges ~450 items; the EM estimate should sit within a few
  // points of the planted rate on average.
  EXPECT_LT(mean_abs_dev, 0.05);
  // And it must separate the best worker from the worst.
  size_t best = 0, worst = 0;
  for (size_t w = 1; w < p.num_workers; ++w) {
    if (p.worker_error[w] < p.worker_error[best]) best = w;
    if (p.worker_error[w] > p.worker_error[worst]) worst = w;
  }
  EXPECT_LT(r.error_rate[best], r.error_rate[worst]);
}

TEST(DawidSkeneTest, BeatsMajorityVoteOnHeterogeneousWorkers) {
  // A third of the pool near-random, the rest reliable: juries with a
  // bad-worker majority are common, and down-weighting the bad workers
  // must strictly reduce aggregate error.
  const Planted p = Simulate(3000, BimodalErrors(21), 5);
  const DawidSkeneResult r = RunDawidSkene(p.num_items, p.num_workers, p.votes);
  const size_t majority = MajorityErrors(p);
  const size_t ds = DsErrors(p, r);
  EXPECT_LT(ds, majority) << "majority errors " << majority << ", DS " << ds;
}

TEST(DawidSkeneTest, MatchesMajorityOnHomogeneousWorkers) {
  // All workers identical: weighting cannot help, but it must not hurt
  // (beyond ties the prior breaks differently).
  const Planted p = Simulate(2000, UniformErrors(15, 0.15, 0.0), 3);
  const DawidSkeneResult r = RunDawidSkene(p.num_items, p.num_workers, p.votes);
  const size_t majority = MajorityErrors(p);
  const size_t ds = DsErrors(p, r);
  EXPECT_LE(ds, majority + majority / 10 + 5);
}

TEST(DawidSkeneTest, DegenerateInputsAreSafe) {
  // No votes at all: posteriors fall back to the prior, nothing crashes.
  const DawidSkeneResult empty = RunDawidSkene(3, 2, {});
  ASSERT_EQ(empty.posterior.size(), 3u);
  for (const double p : empty.posterior) EXPECT_DOUBLE_EQ(p, 0.5);

  // Zero items.
  const DawidSkeneResult none = RunDawidSkene(0, 0, {});
  EXPECT_TRUE(none.posterior.empty());

  // Unanimous single worker: posteriors must follow the votes.
  std::vector<CrowdVote> votes = {{0, 0, 1}, {1, 0, 0}};
  const DawidSkeneResult r = RunDawidSkene(2, 1, votes);
  EXPECT_GT(r.posterior[0], 0.5);
  EXPECT_LT(r.posterior[1], 0.5);

  // One EM iteration is legal and deterministic.
  DawidSkeneOptions one;
  one.iterations = 1;
  const DawidSkeneResult r1 = RunDawidSkene(2, 1, votes, one);
  EXPECT_EQ(r1.iterations_run, 1u);
}

}  // namespace
}  // namespace humo::stats
