#include "stats/sampling.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace humo::stats {
namespace {

TEST(SampleGammaTest, MeanAndVarianceMatchShape) {
  Rng rng(3);
  for (double shape : {0.5, 1.0, 2.5, 7.0}) {
    RunningStats rs;
    for (int i = 0; i < 60000; ++i) rs.Add(SampleGamma(&rng, shape));
    EXPECT_NEAR(rs.mean(), shape, 0.05 * shape + 0.02) << "shape=" << shape;
    EXPECT_NEAR(rs.variance(), shape, 0.12 * shape + 0.05) << "shape=" << shape;
  }
}

TEST(SampleGammaTest, AlwaysPositive) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(SampleGamma(&rng, 0.3), 0.0);
    EXPECT_GT(SampleGamma(&rng, 4.0), 0.0);
  }
}

TEST(SampleBetaTest, InUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = SampleBeta(&rng, 2.0, 5.0);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(SampleBetaTest, MeanMatchesAlphaOverSum) {
  Rng rng(11);
  for (auto [a, b] : {std::pair{2.0, 5.0}, {5.0, 2.0}, {1.0, 1.0}}) {
    RunningStats rs;
    for (int i = 0; i < 60000; ++i) rs.Add(SampleBeta(&rng, a, b));
    EXPECT_NEAR(rs.mean(), a / (a + b), 0.01) << a << "," << b;
  }
}

TEST(SampleBetaTest, SkewDirection) {
  Rng rng(13);
  RunningStats low, high;
  for (int i = 0; i < 20000; ++i) {
    low.Add(SampleBeta(&rng, 1.2, 8.0));   // skewed toward 0
    high.Add(SampleBeta(&rng, 8.0, 1.2));  // skewed toward 1
  }
  EXPECT_LT(low.mean(), 0.25);
  EXPECT_GT(high.mean(), 0.75);
}

TEST(SampleBinomialTest, SmallNExact) {
  Rng rng(17);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i)
    rs.Add(static_cast<double>(SampleBinomial(&rng, 10, 0.3)));
  EXPECT_NEAR(rs.mean(), 3.0, 0.05);
  EXPECT_NEAR(rs.variance(), 2.1, 0.15);
}

TEST(SampleBinomialTest, LargeNNormalPath) {
  Rng rng(19);
  RunningStats rs;
  const size_t n = 10000;
  for (int i = 0; i < 5000; ++i)
    rs.Add(static_cast<double>(SampleBinomial(&rng, n, 0.4)));
  EXPECT_NEAR(rs.mean(), 4000.0, 30.0);
}

TEST(SampleBinomialTest, Extremes) {
  Rng rng(23);
  EXPECT_EQ(SampleBinomial(&rng, 100, 0.0), 0u);
  EXPECT_EQ(SampleBinomial(&rng, 100, 1.0), 100u);
  EXPECT_EQ(SampleBinomial(&rng, 0, 0.5), 0u);
}

TEST(SampleBinomialTest, ResultNeverExceedsN) {
  Rng rng(29);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LE(SampleBinomial(&rng, 50, 0.99), 50u);
    EXPECT_LE(SampleBinomial(&rng, 100000, 0.999), 100000u);
  }
}

}  // namespace
}  // namespace humo::stats
