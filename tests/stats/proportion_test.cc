#include "stats/proportion.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace humo::stats {
namespace {

TEST(ProportionTest, ZeroSampleIsVacuous) {
  for (auto* fn : {WaldInterval, WilsonInterval, ClopperPearsonInterval,
                   AgrestiCoullInterval}) {
    const auto iv = fn(0, 0, 0.95);
    EXPECT_DOUBLE_EQ(iv.lo, 0.0);
    EXPECT_DOUBLE_EQ(iv.hi, 1.0);
  }
}

TEST(ProportionTest, IntervalsContainPointEstimate) {
  const size_t n = 50, k = 20;
  const double p = static_cast<double>(k) / n;
  for (auto* fn : {WilsonInterval, ClopperPearsonInterval,
                   AgrestiCoullInterval}) {
    const auto iv = fn(k, n, 0.9);
    EXPECT_LE(iv.lo, p);
    EXPECT_GE(iv.hi, p);
    EXPECT_GE(iv.lo, 0.0);
    EXPECT_LE(iv.hi, 1.0);
  }
}

TEST(ProportionTest, WaldDegeneratesAtExtremes) {
  // Wald's known pathology: zero width at p_hat = 0 or 1.
  const auto iv = WaldInterval(0, 20, 0.95);
  EXPECT_DOUBLE_EQ(iv.lo, 0.0);
  EXPECT_DOUBLE_EQ(iv.hi, 0.0);
}

TEST(ProportionTest, WilsonBehavesAtExtremes) {
  const auto zero = WilsonInterval(0, 20, 0.95);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);  // Wilson keeps a sensible upper bound
  const auto all = WilsonInterval(20, 20, 0.95);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
}

TEST(ProportionTest, ClopperPearsonExactEndpoints) {
  const auto zero = ClopperPearsonInterval(0, 10, 0.95);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  // Upper bound for 0/10 at 95%: 1 - (alpha/2)^(1/10) = 0.3085.
  EXPECT_NEAR(zero.hi, 0.30850, 1e-3);
  const auto all = ClopperPearsonInterval(10, 10, 0.95);
  EXPECT_NEAR(all.lo, 1.0 - 0.30850, 1e-3);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
}

TEST(ProportionTest, HigherConfidenceWidens) {
  for (auto* fn : {WaldInterval, WilsonInterval, ClopperPearsonInterval,
                   AgrestiCoullInterval}) {
    const auto narrow = fn(12, 40, 0.8);
    const auto wide = fn(12, 40, 0.99);
    EXPECT_LE(wide.lo, narrow.lo);
    EXPECT_GE(wide.hi, narrow.hi);
  }
}

TEST(ProportionTest, LargerSampleNarrows) {
  const auto small = WilsonInterval(5, 20, 0.9);
  const auto large = WilsonInterval(250, 1000, 0.9);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(ProportionTest, WilsonCoverage) {
  // Monte-Carlo: the two-sided 90% Wilson interval should cover the true p
  // close to (or above) 90% of the time.
  Rng rng(7);
  const double p = 0.85;
  const size_t n = 60;
  int covered = 0;
  const int reps = 2000;
  for (int r = 0; r < reps; ++r) {
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) k += rng.NextBernoulli(p);
    const auto iv = WilsonInterval(k, n, 0.9);
    if (iv.lo <= p && p <= iv.hi) ++covered;
  }
  EXPECT_GE(static_cast<double>(covered) / reps, 0.87);
}

TEST(ProportionTest, ClopperPearsonIsWidestOfTheThree) {
  const auto wilson = WilsonInterval(15, 50, 0.95);
  const auto exact = ClopperPearsonInterval(15, 50, 0.95);
  EXPECT_LE(exact.lo, wilson.lo + 1e-9);
  EXPECT_GE(exact.hi, wilson.hi - 1e-9);
}

}  // namespace
}  // namespace humo::stats
