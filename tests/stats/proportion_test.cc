#include "stats/proportion.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace humo::stats {
namespace {

TEST(ProportionTest, ZeroSampleIsVacuous) {
  for (auto* fn : {WaldInterval, WilsonInterval, ClopperPearsonInterval,
                   AgrestiCoullInterval}) {
    const auto iv = fn(0, 0, 0.95);
    EXPECT_DOUBLE_EQ(iv.lo, 0.0);
    EXPECT_DOUBLE_EQ(iv.hi, 1.0);
  }
}

TEST(ProportionTest, IntervalsContainPointEstimate) {
  const size_t n = 50, k = 20;
  const double p = static_cast<double>(k) / n;
  for (auto* fn : {WilsonInterval, ClopperPearsonInterval,
                   AgrestiCoullInterval}) {
    const auto iv = fn(k, n, 0.9);
    EXPECT_LE(iv.lo, p);
    EXPECT_GE(iv.hi, p);
    EXPECT_GE(iv.lo, 0.0);
    EXPECT_LE(iv.hi, 1.0);
  }
}

TEST(ProportionTest, WaldDegeneratesAtExtremes) {
  // Wald's known pathology: zero width at p_hat = 0 or 1.
  const auto iv = WaldInterval(0, 20, 0.95);
  EXPECT_DOUBLE_EQ(iv.lo, 0.0);
  EXPECT_DOUBLE_EQ(iv.hi, 0.0);
}

TEST(ProportionTest, WilsonBehavesAtExtremes) {
  const auto zero = WilsonInterval(0, 20, 0.95);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);  // Wilson keeps a sensible upper bound
  const auto all = WilsonInterval(20, 20, 0.95);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
}

TEST(ProportionTest, ClopperPearsonExactEndpoints) {
  const auto zero = ClopperPearsonInterval(0, 10, 0.95);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  // Upper bound for 0/10 at 95%: 1 - (alpha/2)^(1/10) = 0.3085.
  EXPECT_NEAR(zero.hi, 0.30850, 1e-3);
  const auto all = ClopperPearsonInterval(10, 10, 0.95);
  EXPECT_NEAR(all.lo, 1.0 - 0.30850, 1e-3);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
}

TEST(ProportionTest, HigherConfidenceWidens) {
  for (auto* fn : {WaldInterval, WilsonInterval, ClopperPearsonInterval,
                   AgrestiCoullInterval}) {
    const auto narrow = fn(12, 40, 0.8);
    const auto wide = fn(12, 40, 0.99);
    EXPECT_LE(wide.lo, narrow.lo);
    EXPECT_GE(wide.hi, narrow.hi);
  }
}

TEST(ProportionTest, LargerSampleNarrows) {
  const auto small = WilsonInterval(5, 20, 0.9);
  const auto large = WilsonInterval(250, 1000, 0.9);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(ProportionTest, WilsonCoverage) {
  // Monte-Carlo: the two-sided 90% Wilson interval should cover the true p
  // close to (or above) 90% of the time.
  Rng rng(7);
  const double p = 0.85;
  const size_t n = 60;
  int covered = 0;
  const int reps = 2000;
  for (int r = 0; r < reps; ++r) {
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) k += rng.NextBernoulli(p);
    const auto iv = WilsonInterval(k, n, 0.9);
    if (iv.lo <= p && p <= iv.hi) ++covered;
  }
  EXPECT_GE(static_cast<double>(covered) / reps, 0.87);
}

TEST(ProportionTest, ClopperPearsonIsWidestOfTheThree) {
  const auto wilson = WilsonInterval(15, 50, 0.95);
  const auto exact = ClopperPearsonInterval(15, 50, 0.95);
  EXPECT_LE(exact.lo, wilson.lo + 1e-9);
  EXPECT_GE(exact.hi, wilson.hi - 1e-9);
}

TEST(BetaPosteriorTest, UniformPriorNoEvidenceIsTheUniformQuantiles) {
  // With zero observations the uniform-prior posterior IS Beta(1,1), whose
  // equal-tailed 90% interval is exactly [0.05, 0.95].
  const auto iv = BetaPosteriorInterval(0, 0, 0.9);
  EXPECT_NEAR(iv.lo, 0.05, 1e-9);
  EXPECT_NEAR(iv.hi, 0.95, 1e-9);
}

TEST(BetaPosteriorTest, ZeroPositivesUpperBoundClosedForm) {
  // Posterior Beta(1, n+1) has CDF 1 - (1-x)^(n+1); its c-quantile is
  // 1 - (1-c)^(1/(n+1)).
  for (size_t n : {size_t{10}, size_t{50}, size_t{200}}) {
    const double expected =
        1.0 - std::pow(1.0 - 0.95, 1.0 / static_cast<double>(n + 1));
    EXPECT_NEAR(BetaPosteriorUpperBound(0, n, 0.95), expected, 1e-9)
        << "n=" << n;
  }
}

TEST(BetaPosteriorTest, LowerBoundMirrorsUpperBound) {
  // By the symmetry p -> 1-p, positives -> n - positives (uniform prior).
  const double up = BetaPosteriorUpperBound(7, 40, 0.9);
  const double lo = BetaPosteriorLowerBound(33, 40, 0.9);
  EXPECT_NEAR(up, 1.0 - lo, 1e-9);
}

TEST(BetaPosteriorTest, IntervalContainsPosteriorMeanAndTightensWithN) {
  const auto small = BetaPosteriorInterval(5, 20, 0.9);
  const auto large = BetaPosteriorInterval(50, 200, 0.9);
  const double mean_small = (1.0 + 5.0) / (2.0 + 20.0);
  const double mean_large = (1.0 + 50.0) / (2.0 + 200.0);
  EXPECT_LT(small.lo, mean_small);
  EXPECT_GT(small.hi, mean_small);
  EXPECT_LT(large.lo, mean_large);
  EXPECT_GT(large.hi, mean_large);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(BetaPosteriorTest, OneSidedBoundsTightenWithConfidenceDropping) {
  EXPECT_LT(BetaPosteriorUpperBound(3, 100, 0.9),
            BetaPosteriorUpperBound(3, 100, 0.99));
  EXPECT_GT(BetaPosteriorLowerBound(97, 100, 0.9),
            BetaPosteriorLowerBound(97, 100, 0.99));
}

TEST(BetaPosteriorTest, JeffreysPriorIsSharperAtZeroCounts) {
  // Jeffreys Beta(0.5, 0.5) concentrates more mass at the extremes, so its
  // upper bound after 0/20 sits below the uniform prior's.
  EXPECT_LT(BetaPosteriorUpperBound(0, 20, 0.95, 0.5, 0.5),
            BetaPosteriorUpperBound(0, 20, 0.95));
}

TEST(BetaPosteriorTest, CoverageAtLeastNominal) {
  // Monte-Carlo: a 90% credible interval under a flat prior behaves close
  // to a 90% confidence interval for moderate n.
  Rng rng(13);
  const double p = 0.12;
  const size_t n = 80;
  int covered = 0;
  const int reps = 2000;
  for (int r = 0; r < reps; ++r) {
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) k += rng.NextBernoulli(p);
    const auto iv = BetaPosteriorInterval(k, n, 0.9);
    if (iv.lo <= p && p <= iv.hi) ++covered;
  }
  EXPECT_GE(static_cast<double>(covered) / reps, 0.87);
}

}  // namespace
}  // namespace humo::stats
