#include "actl/active_learning.h"

#include <gtest/gtest.h>

#include "data/logistic_generator.h"
#include "data/pair_simulator.h"
#include "eval/evaluation.h"

namespace humo::actl {
namespace {

data::Workload MakeWorkload(double tau = 14.0, uint64_t seed = 1) {
  data::LogisticGeneratorOptions o;
  o.num_pairs = 40000;
  o.pairs_per_subset = 200;
  o.tau = tau;
  o.sigma = 0.05;
  o.seed = seed;
  return data::GenerateLogisticWorkload(o);
}

TEST(ActlTest, MeetsPrecisionTarget) {
  const data::Workload w = MakeWorkload();
  core::SubsetPartition p(&w, 200);
  core::Oracle oracle(&w);
  ActiveLearningResolver actl;
  auto result = actl.Resolve(p, 0.9, &oracle);
  ASSERT_TRUE(result.ok());
  const auto q = eval::QualityOf(w, result->labels);
  EXPECT_GE(q.precision, 0.85);  // certified with confidence, allow slack
}

TEST(ActlTest, HigherTargetPrecisionLowersRecall) {
  const data::Workload w = MakeWorkload();
  core::SubsetPartition p(&w, 200);
  auto recall_at = [&](double target) {
    core::Oracle oracle(&w);
    ActiveLearningResolver actl;
    auto result = actl.Resolve(p, target, &oracle);
    EXPECT_TRUE(result.ok());
    return eval::QualityOf(w, result->labels).recall;
  };
  EXPECT_GE(recall_at(0.75), recall_at(0.95) - 1e-9);
}

TEST(ActlTest, NoRecallGuaranteeOnHardWorkload) {
  // On an AB-like workload with no pure high-similarity region, ACTL's
  // recall should collapse (the paper's Table VI phenomenon).
  const data::Workload w = data::SimulatePairs(data::AbConfigSmall(2, 60000));
  core::SubsetPartition p(&w, 200);
  core::Oracle oracle(&w);
  ActiveLearningResolver actl;
  auto result = actl.Resolve(p, 0.9, &oracle);
  ASSERT_TRUE(result.ok());
  const auto q = eval::QualityOf(w, result->labels);
  EXPECT_LT(q.recall, 0.6);
}

TEST(ActlTest, HumanCostIsSamplingOnly) {
  const data::Workload w = MakeWorkload();
  core::SubsetPartition p(&w, 200);
  core::Oracle oracle(&w);
  ActlOptions o;
  o.samples_per_probe = 50;
  ActiveLearningResolver actl(o);
  auto result = actl.Resolve(p, 0.9, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->human_cost, oracle.cost());
  // Cost must be far below exhaustive labeling.
  EXPECT_LT(result->human_cost_fraction, 0.2);
}

TEST(ActlTest, LabelsAreThresholdConsistent) {
  const data::Workload w = MakeWorkload();
  core::SubsetPartition p(&w, 200);
  core::Oracle oracle(&w);
  ActiveLearningResolver actl;
  auto result = actl.Resolve(p, 0.85, &oracle);
  ASSERT_TRUE(result.ok());
  // All pairs above the threshold subset are 1, all below are 0.
  if (result->threshold_subset < p.num_subsets()) {
    const size_t cut = p[result->threshold_subset].begin;
    for (size_t i = 0; i < cut; ++i) EXPECT_EQ(result->labels[i], 0);
    for (size_t i = cut; i < w.size(); ++i) EXPECT_EQ(result->labels[i], 1);
  }
}

TEST(ActlTest, ImpossibleTargetLabelsNothing) {
  // A workload where even the purest region is ~50% matches cannot certify
  // precision 0.99: expect everything labeled unmatch.
  data::LogisticGeneratorOptions o;
  o.num_pairs = 20000;
  o.tau = 2.0;     // very flat curve
  o.ceiling = 0.5; // max proportion 0.5
  o.sigma = 0.0;
  const data::Workload w = data::GenerateLogisticWorkload(o);
  core::SubsetPartition p(&w, 200);
  core::Oracle oracle(&w);
  ActiveLearningResolver actl;
  auto result = actl.Resolve(p, 0.99, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->threshold_subset, p.num_subsets());
  for (int l : result->labels) EXPECT_EQ(l, 0);
}

TEST(ActlTest, RejectsBadInputs) {
  const data::Workload w = MakeWorkload();
  core::SubsetPartition p(&w, 200);
  ActiveLearningResolver actl;
  EXPECT_FALSE(actl.Resolve(p, 0.9, nullptr).ok());
  core::Oracle oracle(&w);
  EXPECT_FALSE(actl.Resolve(p, 0.0, &oracle).ok());
  EXPECT_FALSE(actl.Resolve(p, 1.5, &oracle).ok());
}

TEST(ActlTest, DeterministicUnderSeed) {
  const data::Workload w = MakeWorkload();
  core::SubsetPartition p(&w, 200);
  ActlOptions o;
  o.seed = 11;
  core::Oracle o1(&w), o2(&w);
  auto a = ActiveLearningResolver(o).Resolve(p, 0.9, &o1);
  auto b = ActiveLearningResolver(o).Resolve(p, 0.9, &o2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->threshold_subset, b->threshold_subset);
  EXPECT_EQ(a->human_cost, b->human_cost);
}

}  // namespace
}  // namespace humo::actl
