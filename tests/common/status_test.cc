#include "common/status.h"

#include <gtest/gtest.h>

namespace humo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad alpha");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  HUMO_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace humo
