#include "common/string_util.h"

#include <gtest/gtest.h>

namespace humo {
namespace {

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("\t\n abc \r"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitSingleField) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, SplitAnyDropsEmpties) {
  const auto parts = SplitAny("  foo  bar\tbaz ", " \t");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringUtilTest, SplitAnyEmptyInput) {
  EXPECT_TRUE(SplitAny("", " ").empty());
  EXPECT_TRUE(SplitAny("   ", " ").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("humo_core", "humo"));
  EXPECT_FALSE(StartsWith("humo", "humo_core"));
  EXPECT_TRUE(EndsWith("table.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "table.csv"));
}

TEST(StringUtilTest, NormalizeForMatchingLowercasesAndStripsPunctuation) {
  EXPECT_EQ(NormalizeForMatching("Entity-Resolution: A Survey!"),
            "entity resolution a survey");
}

TEST(StringUtilTest, NormalizeForMatchingCollapsesWhitespace) {
  EXPECT_EQ(NormalizeForMatching("  a   b \t c  "), "a b c");
}

TEST(StringUtilTest, NormalizeForMatchingKeepsDigits) {
  EXPECT_EQ(NormalizeForMatching("Model X-200 (v2)"), "model x 200 v2");
}

TEST(StringUtilTest, NormalizeEmpty) {
  EXPECT_EQ(NormalizeForMatching(""), "");
  EXPECT_EQ(NormalizeForMatching("!!!"), "");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace humo
