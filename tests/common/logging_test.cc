#include "common/logging.h"

#include <gtest/gtest.h>

namespace humo {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(LoggingTest, MacroCompilesAndStreams) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // silence output below error
  HUMO_LOG(Info) << "value=" << 42 << " name=" << "x";
  HUMO_LOG(Debug) << "suppressed";
  SetLogLevel(before);
  SUCCEED();
}

TEST(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarning));
  EXPECT_LT(static_cast<int>(LogLevel::kWarning),
            static_cast<int>(LogLevel::kError));
}

}  // namespace
}  // namespace humo
