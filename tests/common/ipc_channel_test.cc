#include "common/ipc_channel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

namespace humo {
namespace {

TEST(IpcChannelTest, FrameRoundtrip) {
  IpcChannel a, b;
  ASSERT_TRUE(IpcChannel::CreatePair(&a, &b));
  const std::vector<uint8_t> payload = {1, 2, 3, 250, 0, 7};
  ASSERT_TRUE(a.WriteFrame(payload));
  std::vector<uint8_t> received;
  ASSERT_TRUE(b.ReadFrame(&received));
  EXPECT_EQ(received, payload);
}

TEST(IpcChannelTest, EmptyFrameIsAFrame) {
  IpcChannel a, b;
  ASSERT_TRUE(IpcChannel::CreatePair(&a, &b));
  ASSERT_TRUE(a.WriteFrame({}));
  std::vector<uint8_t> received = {9, 9};
  ASSERT_TRUE(b.ReadFrame(&received));
  EXPECT_TRUE(received.empty());
}

TEST(IpcChannelTest, LargeFrameSurvivesSocketBufferChunking) {
  // Far larger than a socket buffer: exercises the short-read/short-write
  // loops in both directions.
  IpcChannel a, b;
  ASSERT_TRUE(IpcChannel::CreatePair(&a, &b));
  std::vector<uint8_t> payload(4 << 20);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 2654435761u);
  }
  // A blocking same-process write this large would deadlock against the
  // unread response; ship it from a forked echo worker instead.
  if (!ForkTransportAvailable()) GTEST_SKIP() << "no fork on this platform";
  ForkedWorker worker = ForkWorkerProcess([](IpcChannel* channel) {
    std::vector<uint8_t> frame;
    while (channel->ReadFrame(&frame)) {
      if (!channel->WriteFrame(frame)) return;
    }
  });
  ASSERT_TRUE(worker.valid());
  ASSERT_TRUE(worker.channel().WriteFrame(payload));
  std::vector<uint8_t> echoed;
  ASSERT_TRUE(worker.channel().ReadFrame(&echoed));
  EXPECT_EQ(echoed, payload);
  EXPECT_EQ(worker.Join(), 0);
}

TEST(IpcChannelTest, ReadFrameReportsEofWhenPeerCloses) {
  IpcChannel a, b;
  ASSERT_TRUE(IpcChannel::CreatePair(&a, &b));
  a.Close();
  std::vector<uint8_t> frame;
  EXPECT_FALSE(b.ReadFrame(&frame));
}

TEST(ForkedWorkerTest, EchoWorkerServesManyFramesThenJoinsCleanly) {
  if (!ForkTransportAvailable()) GTEST_SKIP() << "no fork on this platform";
  ForkedWorker worker = ForkWorkerProcess([](IpcChannel* channel) {
    std::vector<uint8_t> frame;
    while (channel->ReadFrame(&frame)) {
      for (uint8_t& byte : frame) byte ^= 0xFF;
      if (!channel->WriteFrame(frame)) return;
    }
  });
  ASSERT_TRUE(worker.valid());
  for (uint8_t round = 0; round < 5; ++round) {
    const std::vector<uint8_t> payload(17, round);
    ASSERT_TRUE(worker.channel().WriteFrame(payload));
    std::vector<uint8_t> reply;
    ASSERT_TRUE(worker.channel().ReadFrame(&reply));
    ASSERT_EQ(reply.size(), payload.size());
    for (const uint8_t byte : reply) {
      EXPECT_EQ(byte, static_cast<uint8_t>(round ^ 0xFF));
    }
  }
  // Join closes the parent end; the worker's read loop sees EOF and exits 0.
  EXPECT_EQ(worker.Join(), 0);
}

TEST(WireFormatTest, WriterReaderRoundtrip) {
  WireWriter w;
  w.U8(7);
  w.U64(0x0123456789ABCDEFull);
  w.F64(-3.725290298461914e-09);
  const char blob[] = "blob";
  w.Bytes(blob, 4);
  const std::vector<uint8_t> bytes = w.Take();

  WireReader r(bytes);
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.F64(), -3.725290298461914e-09);  // exact: bit-copied
  char out[4] = {};
  EXPECT_TRUE(r.Bytes(out, 4));
  EXPECT_EQ(std::string(out, 4), "blob");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.Exhausted());
}

TEST(WireFormatTest, U64LayoutIsLittleEndian) {
  WireWriter w;
  w.U64(0x0102030405060708ull);
  const std::vector<uint8_t> bytes = w.Take();
  ASSERT_EQ(bytes.size(), 8u);
  EXPECT_EQ(bytes[0], 0x08);
  EXPECT_EQ(bytes[7], 0x01);
}

TEST(WireFormatTest, TruncatedPayloadDegradesToError) {
  WireWriter w;
  w.U64(42);
  std::vector<uint8_t> bytes = w.Take();
  bytes.pop_back();  // corrupt: 7 bytes where a u64 needs 8

  WireReader r(bytes);
  EXPECT_EQ(r.U64(), 0u);  // zero, not garbage
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.Exhausted());
  // Every subsequent read stays failed.
  EXPECT_EQ(r.U8(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(WireFormatTest, ExhaustedDetectsTrailingBytes) {
  WireWriter w;
  w.U8(1);
  w.U8(2);
  const std::vector<uint8_t> bytes = w.Take();
  WireReader r(bytes);
  EXPECT_EQ(r.U8(), 1);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.Exhausted());  // one byte left unparsed
}

}  // namespace
}  // namespace humo
