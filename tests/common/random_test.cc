#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace humo {
namespace {

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    if (a.NextUint64() != b.NextUint64()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(11);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithMeanAndStddev) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(31);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-1.0));
  EXPECT_TRUE(rng.NextBernoulli(2.0));
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingle) {
  Rng rng(41);
  std::vector<int> empty, single = {9};
  rng.Shuffle(&empty);
  rng.Shuffle(&single);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(single[0], 9);
}

TEST(RngTest, ShuffleWorksOnVectorBool) {
  Rng rng(43);
  std::vector<bool> v(10, false);
  for (int i = 0; i < 5; ++i) v[i] = true;
  rng.Shuffle(&v);
  EXPECT_EQ(std::count(v.begin(), v.end(), true), 5);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(47);
  const auto picks = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(picks.size(), 30u);
  std::set<size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t p : picks) EXPECT_LT(p, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(53);
  const auto picks = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementZero) {
  Rng rng(59);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(RngTest, SampleWithoutReplacementUniform) {
  // Each index should appear roughly k/n of the time across repetitions.
  const size_t n = 20, k = 5;
  std::vector<int> counts(n, 0);
  Rng rng(61);
  const int reps = 20000;
  for (int r = 0; r < reps; ++r) {
    for (size_t idx : rng.SampleWithoutReplacement(n, k)) ++counts[idx];
  }
  const double expected = static_cast<double>(reps) * k / n;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], expected, expected * 0.1) << "index " << i;
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(67);
  Rng child = parent.Fork();
  // The child stream should not be identical to the parent's continuation.
  bool differs = false;
  for (int i = 0; i < 16; ++i)
    if (parent.NextUint64() != child.NextUint64()) differs = true;
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace humo
