#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/random.h"

namespace humo {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(n, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  size_t calls = 0;
  // No synchronization needed: a serial pool must run the body on the
  // calling thread.
  pool.ParallelFor(100, 10, [&](size_t begin, size_t end) {
    calls += end - begin;
  });
  EXPECT_EQ(calls, 100u);
}

TEST(ThreadPoolTest, SmallRangeRunsAsSingleChunk) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  pool.ParallelFor(8, 64, [&](size_t begin, size_t end) {
    chunks.fetch_add(1);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 8u);
  });
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  pool.ParallelFor(0, 16, [&](size_t, size_t) { FAIL() << "body ran"; });
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1024);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(32, 1, [&](size_t outer_begin, size_t outer_end) {
    for (size_t o = outer_begin; o < outer_end; ++o) {
      // A body re-entering the pool must not hang; it runs inline.
      pool.ParallelFor(32, 1, [&](size_t inner_begin, size_t inner_end) {
        for (size_t i = inner_begin; i < inner_end; ++i)
          hits[o * 32 + i].fetch_add(1);
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, 7, [&](size_t begin, size_t end) {
      size_t local = 0;
      for (size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local);
    });
    ASSERT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

/// The determinism contract of the whole parallelization layer: a task's
/// RNG stream depends only on (seed, task id), so any thread count — and
/// any chunk scheduling — produces identical draws.
TEST(ThreadPoolTest, PerTaskRngStreamsIdenticalAcrossThreadCounts) {
  const size_t kTasks = 500;
  const uint64_t kSeed = 1234;
  auto run = [&](size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(kTasks);
    pool.ParallelFor(kTasks, 1, [&](size_t begin, size_t end) {
      for (size_t t = begin; t < end; ++t) {
        Rng rng = Rng::Stream(kSeed, t);
        // A mix of draw kinds, including variable-draw rejection sampling.
        double acc = rng.NextDouble();
        acc += static_cast<double>(rng.NextBelow(1000));
        acc += rng.NextGaussian();
        out[t] = acc;
      }
    });
    return out;
  };
  const auto serial = run(1);
  const auto par2 = run(2);
  const auto par8 = run(8);
  for (size_t t = 0; t < kTasks; ++t) {
    ASSERT_EQ(serial[t], par2[t]) << "task " << t;
    ASSERT_EQ(serial[t], par8[t]) << "task " << t;
  }
}

TEST(RngStreamTest, IndependentOfConstructionOrder) {
  Rng a = Rng::Stream(7, 100);
  Rng b = Rng::Stream(7, 101);
  Rng a2 = Rng::Stream(7, 100);
  const uint64_t first_a = a.NextUint64();
  (void)b.NextUint64();
  EXPECT_EQ(first_a, a2.NextUint64());
}

TEST(RngStreamTest, DistinctStreamsDiffer) {
  Rng a = Rng::Stream(7, 0);
  Rng b = Rng::Stream(7, 1);
  Rng c = Rng::Stream(8, 0);
  const uint64_t va = a.NextUint64(), vb = b.NextUint64(), vc = c.NextUint64();
  EXPECT_NE(va, vb);
  EXPECT_NE(va, vc);
}

/// ISSUE 7 satellite: SetGlobalThreads used to destroy the outgoing pool in
/// place while other threads could still be running ParallelFor on it (the
/// documented hazard). The swap now retires the old pool instead; hammer
/// Global()->ParallelFor from several threads while the main thread swaps
/// repeatedly and verify every loop still covers its range exactly once.
TEST(ThreadPoolTest, ConcurrentGlobalSwapKeepsLoopsValid) {
  const size_t retired_before = ThreadPool::RetiredGlobalPools();
  constexpr size_t kHammerThreads = 4;
  constexpr size_t kSwaps = 50;
  constexpr size_t kN = 2000;
  std::atomic<bool> done{false};
  std::atomic<size_t> loops_run{0};
  std::vector<std::thread> hammers;
  hammers.reserve(kHammerThreads);
  for (size_t h = 0; h < kHammerThreads; ++h) {
    hammers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        std::vector<char> hit(kN, 0);
        // The pool grabbed here may be retired mid-loop; it must stay
        // fully functional regardless.
        ThreadPool::Global()->ParallelFor(kN, 64,
                                          [&](size_t begin, size_t end) {
                                            for (size_t i = begin; i < end;
                                                 ++i)
                                              ++hit[i];
                                          });
        for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hit[i], 1) << i;
        loops_run.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (size_t s = 0; s < kSwaps; ++s) {
    ThreadPool::SetGlobalThreads(1 + s % 4);
  }
  // Let the hammers demonstrably run against the final pool too.
  const size_t target = loops_run.load() + kHammerThreads;
  while (loops_run.load() < target) std::this_thread::yield();
  done.store(true, std::memory_order_release);
  for (auto& t : hammers) t.join();
  // The first swap retires nothing when no global pool existed yet.
  EXPECT_GE(ThreadPool::RetiredGlobalPools(), retired_before + kSwaps - 1);
  EXPECT_GT(loops_run.load(), 0u);
  ThreadPool::SetGlobalThreads(0);  // back to the environment default
}

TEST(ThreadPoolTest, GlobalPoolResizable) {
  ThreadPool::SetGlobalThreads(2);
  EXPECT_EQ(ThreadPool::Global()->num_threads(), 2u);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::Global()->num_threads(), 1u);
  ThreadPool::SetGlobalThreads(0);  // back to the environment default
  EXPECT_GE(ThreadPool::Global()->num_threads(), 1u);
}

}  // namespace
}  // namespace humo
