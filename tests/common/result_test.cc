#include "common/result.h"

#include <gtest/gtest.h>

#include <string>

namespace humo {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 1;
  Result<int> err = Status::Internal("boom");
  EXPECT_EQ(ok.value_or(9), 1);
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  HUMO_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_EQ(UseAssignOrReturn(-3, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace humo
