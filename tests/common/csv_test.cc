#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace humo {
namespace {

TEST(CsvReaderTest, ParsesSimpleDocument) {
  CsvReader reader;
  auto doc = reader.Parse("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1][2], "6");
}

TEST(CsvReaderTest, NoHeaderMode) {
  CsvReader reader;
  auto doc = reader.Parse("1,2\n3,4\n", /*has_header=*/false);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->header.empty());
  EXPECT_EQ(doc->rows.size(), 2u);
}

TEST(CsvReaderTest, QuotedFieldWithSeparator) {
  CsvReader reader;
  auto doc = reader.Parse("name,desc\nfoo,\"a, b\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][1], "a, b");
}

TEST(CsvReaderTest, EscapedQuote) {
  CsvReader reader;
  auto doc = reader.Parse("x\n\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "say \"hi\"");
}

TEST(CsvReaderTest, EmbeddedNewlineInQuotedField) {
  CsvReader reader;
  auto doc = reader.Parse("x,y\n\"line1\nline2\",z\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "line1\nline2");
  EXPECT_EQ(doc->rows[0][1], "z");
}

TEST(CsvReaderTest, CrLfLineEndings) {
  CsvReader reader;
  auto doc = reader.Parse("a,b\r\n1,2\r\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "1");
}

TEST(CsvReaderTest, MissingFinalNewline) {
  CsvReader reader;
  auto doc = reader.Parse("a,b\n1,2");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][1], "2");
}

TEST(CsvReaderTest, RejectsRaggedRows) {
  CsvReader reader;
  auto doc = reader.Parse("a,b\n1,2,3\n");
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvReaderTest, RejectsUnterminatedQuote) {
  CsvReader reader;
  auto doc = reader.Parse("a\n\"oops\n");
  EXPECT_FALSE(doc.ok());
}

TEST(CsvReaderTest, CustomSeparator) {
  CsvReader reader(';');
  auto doc = reader.Parse("a;b\n1;2\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][1], "2");
}

TEST(CsvReaderTest, ColumnIndex) {
  CsvReader reader;
  auto doc = reader.Parse("id,title,year\n1,t,2020\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->ColumnIndex("title"), 1);
  EXPECT_EQ(doc->ColumnIndex("nope"), -1);
}

TEST(CsvReaderTest, ReadFileMissing) {
  CsvReader reader;
  auto doc = reader.ReadFile("/nonexistent/path.csv");
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kIoError);
}

TEST(CsvWriterTest, RoundTripsWithQuoting) {
  CsvDocument doc;
  doc.header = {"name", "note"};
  doc.rows = {{"plain", "has, comma"}, {"quote\"inside", "multi\nline"}};
  CsvWriter writer;
  const std::string text = writer.Serialize(doc);
  CsvReader reader;
  auto parsed = reader.Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, doc.header);
  EXPECT_EQ(parsed->rows, doc.rows);
}

TEST(CsvWriterTest, WriteFileAndReadBack) {
  const std::string path = testing::TempDir() + "/humo_csv_test.csv";
  CsvDocument doc;
  doc.header = {"a"};
  doc.rows = {{"1"}, {"2"}};
  CsvWriter writer;
  ASSERT_TRUE(writer.WriteFile(path, doc).ok());
  CsvReader reader;
  auto parsed = reader.ReadFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows.size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace humo
