#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace humo {
namespace {

TEST(EnvTest, Int64FallbackWhenUnset) {
  unsetenv("HUMO_TEST_UNSET_VAR");
  EXPECT_EQ(GetEnvInt64("HUMO_TEST_UNSET_VAR", 42), 42);
}

TEST(EnvTest, Int64ParsesValue) {
  setenv("HUMO_TEST_INT_VAR", "123", 1);
  EXPECT_EQ(GetEnvInt64("HUMO_TEST_INT_VAR", 0), 123);
  unsetenv("HUMO_TEST_INT_VAR");
}

TEST(EnvTest, Int64NegativeValue) {
  setenv("HUMO_TEST_INT_VAR", "-7", 1);
  EXPECT_EQ(GetEnvInt64("HUMO_TEST_INT_VAR", 0), -7);
  unsetenv("HUMO_TEST_INT_VAR");
}

TEST(EnvTest, Int64FallbackOnGarbage) {
  setenv("HUMO_TEST_INT_VAR", "12abc", 1);
  EXPECT_EQ(GetEnvInt64("HUMO_TEST_INT_VAR", 5), 5);
  setenv("HUMO_TEST_INT_VAR", "", 1);
  EXPECT_EQ(GetEnvInt64("HUMO_TEST_INT_VAR", 5), 5);
  unsetenv("HUMO_TEST_INT_VAR");
}

TEST(EnvTest, DoubleParsesAndFallsBack) {
  unsetenv("HUMO_TEST_DBL_VAR");
  EXPECT_DOUBLE_EQ(GetEnvDouble("HUMO_TEST_DBL_VAR", 0.25), 0.25);
  setenv("HUMO_TEST_DBL_VAR", "0.002", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("HUMO_TEST_DBL_VAR", 0.25), 0.002);
  setenv("HUMO_TEST_DBL_VAR", "1e-3", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("HUMO_TEST_DBL_VAR", 0.25), 1e-3);
  setenv("HUMO_TEST_DBL_VAR", "0.5x", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("HUMO_TEST_DBL_VAR", 0.25), 0.25);
  setenv("HUMO_TEST_DBL_VAR", "", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("HUMO_TEST_DBL_VAR", 0.25), 0.25);
  unsetenv("HUMO_TEST_DBL_VAR");
}

TEST(EnvTest, StringFallbackAndValue) {
  unsetenv("HUMO_TEST_STR_VAR");
  EXPECT_EQ(GetEnvString("HUMO_TEST_STR_VAR", "dft"), "dft");
  setenv("HUMO_TEST_STR_VAR", "hello", 1);
  EXPECT_EQ(GetEnvString("HUMO_TEST_STR_VAR", "dft"), "hello");
  unsetenv("HUMO_TEST_STR_VAR");
}

}  // namespace
}  // namespace humo
