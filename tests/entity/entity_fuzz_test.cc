#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "data/workload.h"
#include "entity/entity_clustering.h"
#include "entity/transitivity_repair.h"

namespace humo {
namespace {

using entity::ClusteringOptions;
using entity::CountDisagreements;
using entity::EntityClustering;
using entity::RepairResult;
using entity::RepairTransitivity;

constexpr ClusteringOptions kDedup{0, 0};

/// Structural invariants every clustering must satisfy, whatever the input.
void CheckClusteringInvariants(const EntityClustering& c) {
  ASSERT_EQ(c.entity_of_record().size(), c.num_records());
  ASSERT_TRUE(std::is_sorted(c.record_keys().begin(), c.record_keys().end()));
  // MembersOf partitions the records: every record appears in exactly the
  // entity EntityOf says, and sizes add up.
  size_t total = 0;
  size_t multi = 0;
  for (uint32_t e = 0; e < c.num_entities(); ++e) {
    const EntityClustering::MemberRange members = c.MembersOf(e);
    ASSERT_FALSE(members.empty());  // canonical ids have no empty entities
    if (members.size() >= 2) ++multi;
    for (size_t i = 0; i < members.size(); ++i) {
      ASSERT_EQ(c.EntityOf(members[i]), std::optional<uint32_t>(e));
      if (i > 0) ASSERT_LT(members.data[i - 1], members.data[i]);
    }
    total += members.size();
  }
  ASSERT_EQ(total, c.num_records());
  ASSERT_EQ(multi, c.num_multi_record_entities());
  for (const uint32_t e : c.entity_of_record()) {
    ASSERT_LT(e, c.num_entities());
  }
}

TEST(EntityFuzzTest, EmptyWorkload) {
  const data::Workload w;
  const EntityClustering c = EntityClustering::FromLabels(w, {}, kDedup);
  EXPECT_EQ(c.num_records(), 0u);
  EXPECT_EQ(c.num_entities(), 0u);
  EXPECT_EQ(c.EntityOf({0, 0}), std::nullopt);
  EXPECT_TRUE(c.MembersOf(0).empty());
  CheckClusteringInvariants(c);

  const RepairResult r = RepairTransitivity(w, {}, kDedup);
  EXPECT_TRUE(r.labels.empty());
  EXPECT_EQ(r.stats.disagreements_before, 0u);
  EXPECT_EQ(r.stats.disagreements_after, 0u);
}

TEST(EntityFuzzTest, OnlySelfPairs) {
  const data::Workload w({{0, 0, 0.1, false}, {1, 1, 0.5, true},
                          {2, 2, 0.9, false}});
  const std::vector<int> labels = w.GroundTruthLabels();
  const EntityClustering c = EntityClustering::FromLabels(w, labels, kDedup);
  EXPECT_EQ(c.num_records(), 3u);
  EXPECT_EQ(c.num_entities(), 3u);  // self edges never merge anything
  CheckClusteringInvariants(c);

  const RepairResult r = RepairTransitivity(w, labels, kDedup);
  EXPECT_EQ(r.stats.self_conflicts, 2u);
  EXPECT_EQ(r.stats.disagreements_after, 2u);
  EXPECT_EQ(r.labels, (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(CountDisagreements(w, r.labels, r.clustering, kDedup), 0u);
}

TEST(EntityFuzzTest, AllMatchCollapsesToOneEntity) {
  std::vector<data::InstancePair> pairs;
  for (uint32_t i = 0; i < 30; ++i) {
    pairs.push_back({i, i + 1, 0.5 + 0.01 * i, true});
  }
  const data::Workload w(std::move(pairs));
  const EntityClustering c =
      EntityClustering::FromLabels(w, w.GroundTruthLabels(), kDedup);
  EXPECT_EQ(c.num_records(), 31u);
  EXPECT_EQ(c.num_entities(), 1u);
  EXPECT_EQ(c.EntitySize(0), 31u);
  CheckClusteringInvariants(c);
  const RepairResult r = RepairTransitivity(w, w.GroundTruthLabels(), kDedup);
  EXPECT_EQ(r.stats.disagreements_before, 0u);
  EXPECT_EQ(r.clustering, c);
}

TEST(EntityFuzzTest, AllNonMatchStaysSingletons) {
  std::vector<data::InstancePair> pairs;
  for (uint32_t i = 0; i < 30; ++i) {
    pairs.push_back({i, i + 1, 0.5 + 0.01 * i, false});
  }
  const data::Workload w(std::move(pairs));
  const EntityClustering c =
      EntityClustering::FromLabels(w, w.GroundTruthLabels(), kDedup);
  EXPECT_EQ(c.num_entities(), c.num_records());
  EXPECT_EQ(c.num_multi_record_entities(), 0u);
  CheckClusteringInvariants(c);
  const RepairResult r = RepairTransitivity(w, w.GroundTruthLabels(), kDedup);
  EXPECT_EQ(r.stats.disagreements_before, 0u);
  EXPECT_EQ(r.labels, w.GroundTruthLabels());
}

TEST(EntityFuzzTest, ConflictingDuplicateLabels) {
  // The same identity pair observed twice with contradictory labels
  // (distinct similarities keep the pairs distinct under PairLess).
  const data::Workload w({{0, 1, 0.4, false}, {0, 1, 0.8, true}});
  std::vector<int> labels = {0, 1};
  const EntityClustering c = EntityClustering::FromLabels(w, labels, kDedup);
  EXPECT_EQ(c.num_entities(), 1u);  // the match edge wins the union
  CheckClusteringInvariants(c);
  const RepairResult r = RepairTransitivity(w, labels, kDedup);
  // One of the two contradictory observations disagrees either way.
  EXPECT_EQ(r.stats.disagreements_before, 1u);
  EXPECT_EQ(r.stats.disagreements_after, 1u);
  EXPECT_EQ(CountDisagreements(w, r.labels, r.clustering, kDedup), 0u);
}

TEST(EntityFuzzTest, RandomizedSmallWorkloads) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 7919);
    const size_t n = 20 + rng.NextBelow(180);
    std::vector<data::InstancePair> pairs;
    pairs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Small id universe forces duplicates, self-pairs, and conflicts.
      const uint32_t a = static_cast<uint32_t>(rng.NextBelow(24));
      const uint32_t b = static_cast<uint32_t>(rng.NextBelow(24));
      pairs.push_back({a, b, rng.NextDouble(), rng.NextBernoulli(0.4)});
    }
    const data::Workload w(std::move(pairs));
    const std::vector<int> labels = w.GroundTruthLabels();

    const EntityClustering c = EntityClustering::FromLabels(w, labels, kDedup);
    CheckClusteringInvariants(c);

    const RepairResult r = RepairTransitivity(w, labels, kDedup);
    CheckClusteringInvariants(r.clustering);
    EXPECT_LE(r.stats.disagreements_after, r.stats.disagreements_before);
    // Repaired labels are exactly the repaired clustering's relation.
    EXPECT_EQ(CountDisagreements(w, r.labels, r.clustering, kDedup), 0u);
    EXPECT_EQ(EntityClustering::FromLabels(w, r.labels, kDedup), r.clustering);
    // And a second repair is a no-op.
    const RepairResult again = RepairTransitivity(w, r.labels, kDedup);
    EXPECT_EQ(again.labels, r.labels);
    EXPECT_EQ(again.stats.moves_applied, 0u);

    // The two-table interpretation of the same workload must also hold its
    // invariants (different record universe, no self-pairs).
    const EntityClustering two =
        EntityClustering::FromLabels(w, labels, {0, 1});
    CheckClusteringInvariants(two);
  }
}

}  // namespace
}  // namespace humo
