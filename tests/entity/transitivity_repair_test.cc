#include "entity/transitivity_repair.h"

#include <gtest/gtest.h>

#include <vector>

#include "data/workload.h"
#include "entity/entity_clustering.h"

namespace humo {
namespace {

using entity::ClusteringOptions;
using entity::CountDisagreements;
using entity::EntityClustering;
using entity::RepairResult;
using entity::RepairTransitivity;

constexpr ClusteringOptions kDedup{0, 0};

TEST(TransitivityRepairTest, ConsistentLabelsAreAFixedPoint) {
  const data::Workload w({{0, 1, 0.9, true}, {1, 2, 0.8, true},
                          {3, 4, 0.2, false}});
  const std::vector<int> labels = w.GroundTruthLabels();
  const RepairResult r = RepairTransitivity(w, labels, kDedup);
  EXPECT_EQ(r.stats.disagreements_before, 0u);
  EXPECT_EQ(r.stats.disagreements_after, 0u);
  EXPECT_EQ(r.stats.conflict_components, 0u);
  EXPECT_EQ(r.stats.moves_applied, 0u);
  EXPECT_EQ(r.labels, labels);
  EXPECT_EQ(r.clustering, EntityClustering::FromLabels(w, labels, kDedup));
}

TEST(TransitivityRepairTest, TriangleConflictResolvesToConsistency) {
  // a=b, b=c, a!=c: one disagreement whatever the partition; repair must
  // return consistent labels without making anything worse.
  const data::Workload w({{0, 2, 0.3, false}, {0, 1, 0.8, true},
                          {1, 2, 0.9, true}});
  std::vector<int> labels = {0, 1, 1};  // sorted order: (0,2), (0,1), (1,2)
  const RepairResult r = RepairTransitivity(w, labels, kDedup);
  EXPECT_EQ(r.stats.disagreements_before, 1u);
  EXPECT_EQ(r.stats.disagreements_after, 1u);
  EXPECT_EQ(r.stats.conflict_components, 1u);
  // The repaired labels are transitively consistent by construction.
  EXPECT_EQ(CountDisagreements(w, r.labels, r.clustering, kDedup), 0u);
}

TEST(TransitivityRepairTest, SpuriousBridgeBetweenCliquesIsCut) {
  // Two 3-cliques of match evidence joined by one spurious match (2-3) and
  // contradicted by 7 cross non-matches. Minimum-disagreement repair splits
  // the cliques apart, paying only the bridge.
  std::vector<data::InstancePair> pairs = {
      {0, 1, 0.90, true},  {1, 2, 0.91, true},  {0, 2, 0.92, true},
      {3, 4, 0.93, true},  {4, 5, 0.94, true},  {3, 5, 0.95, true},
      {2, 3, 0.60, true},  // spurious bridge
      {0, 3, 0.10, false}, {0, 4, 0.11, false}, {1, 3, 0.12, false},
      {1, 4, 0.13, false}, {1, 5, 0.14, false}, {2, 4, 0.15, false},
      {2, 5, 0.16, false}};
  const data::Workload w(std::move(pairs));
  const std::vector<int> labels = w.GroundTruthLabels();

  const RepairResult r = RepairTransitivity(w, labels, kDedup);
  EXPECT_EQ(r.stats.disagreements_before, 7u);
  EXPECT_EQ(r.stats.disagreements_after, 1u);  // only the cut bridge
  EXPECT_GT(r.stats.moves_applied, 0u);
  EXPECT_EQ(r.clustering.num_entities(), 2u);
  EXPECT_EQ(r.clustering.EntityOf({0, 0}), r.clustering.EntityOf({0, 2}));
  EXPECT_EQ(r.clustering.EntityOf({0, 3}), r.clustering.EntityOf({0, 5}));
  EXPECT_NE(r.clustering.EntityOf({0, 2}), r.clustering.EntityOf({0, 3}));
  EXPECT_EQ(CountDisagreements(w, r.labels, r.clustering, kDedup), 0u);
}

TEST(TransitivityRepairTest, RepairIsIdempotent) {
  std::vector<data::InstancePair> pairs = {
      {0, 1, 0.90, true},  {1, 2, 0.91, true},  {0, 2, 0.30, false},
      {3, 4, 0.93, true},  {4, 5, 0.94, true},  {3, 5, 0.20, false},
      {2, 3, 0.60, true},  {0, 4, 0.10, false}};
  const data::Workload w(std::move(pairs));
  const RepairResult first =
      RepairTransitivity(w, w.GroundTruthLabels(), kDedup);
  const RepairResult second = RepairTransitivity(w, first.labels, kDedup);
  EXPECT_EQ(second.stats.disagreements_before, 0u);
  EXPECT_EQ(second.stats.moves_applied, 0u);
  EXPECT_EQ(second.labels, first.labels);
  EXPECT_EQ(second.clustering, first.clustering);
}

TEST(TransitivityRepairTest, SelfConflictsAreCountedAndNormalized) {
  // Dedup view: (5,5) is record 5 against itself. A negative self-pair can
  // never be satisfied; repair normalizes the label and keeps the count.
  const data::Workload w({{5, 5, 0.4, false}, {6, 7, 0.9, true}});
  const std::vector<int> labels = {0, 1};
  const RepairResult r = RepairTransitivity(w, labels, kDedup);
  EXPECT_EQ(r.stats.self_conflicts, 1u);
  EXPECT_EQ(r.stats.disagreements_before, 1u);
  EXPECT_EQ(r.stats.disagreements_after, 1u);
  EXPECT_EQ(r.labels, (std::vector<int>{1, 1}));
  // Under the two-table view the same pair is two records; no conflict.
  const RepairResult two_table = RepairTransitivity(w, labels, {0, 1});
  EXPECT_EQ(two_table.stats.self_conflicts, 0u);
  EXPECT_EQ(two_table.stats.disagreements_before, 0u);
}

TEST(TransitivityRepairTest, NeverIncreasesDisagreements) {
  // A denser tangle: ring of matches with chords of non-matches.
  std::vector<data::InstancePair> pairs;
  const size_t n = 12;
  for (size_t i = 0; i < n; ++i) {
    pairs.push_back({static_cast<uint32_t>(i),
                     static_cast<uint32_t>((i + 1) % n),
                     0.5 + 0.01 * static_cast<double>(i), true});
    pairs.push_back({static_cast<uint32_t>(i),
                     static_cast<uint32_t>((i + 5) % n),
                     0.1 + 0.01 * static_cast<double>(i), false});
  }
  const data::Workload w(std::move(pairs));
  const std::vector<int> labels = w.GroundTruthLabels();
  const EntityClustering before =
      EntityClustering::FromLabels(w, labels, kDedup);
  const size_t initial = CountDisagreements(w, labels, before, kDedup);
  const RepairResult r = RepairTransitivity(w, labels, kDedup);
  EXPECT_EQ(r.stats.disagreements_before, initial);
  EXPECT_LE(r.stats.disagreements_after, r.stats.disagreements_before);
  EXPECT_EQ(CountDisagreements(w, r.labels, r.clustering, kDedup), 0u);
}

}  // namespace
}  // namespace humo
