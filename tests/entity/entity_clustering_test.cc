#include "entity/entity_clustering.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/solution.h"
#include "data/workload.h"

namespace humo {
namespace {

using entity::ClusteringOptions;
using entity::EntityClustering;
using entity::PackRecord;
using entity::RecordRef;
using entity::UnpackRecord;

/// Two-table workload: L0-R0 match, L1-R0 match, L2-R1 non, L3-R2 match.
/// Entities: {L0, L1, R0}, {L2}, {L3, R2}, {R1}.
data::Workload TwoTableWorkload() {
  return data::Workload({{0, 0, 0.90, true},
                         {1, 0, 0.80, true},
                         {2, 1, 0.30, false},
                         {3, 2, 0.85, true}});
}

std::vector<int> TruthLabels(const data::Workload& w) {
  return w.GroundTruthLabels();
}

TEST(RecordRefTest, PackingPreservesLexicographicOrder) {
  const RecordRef a{0, 5}, b{1, 0}, c{1, 5};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(PackRecord(a), PackRecord(b));
  EXPECT_EQ(UnpackRecord(PackRecord(c)), c);
  EXPECT_TRUE((RecordRef{2, 3}) == (RecordRef{2, 3}));
  EXPECT_FALSE((RecordRef{2, 3}) == (RecordRef{3, 2}));
}

TEST(EntityClusteringTest, TwoTableConnectedComponents) {
  const data::Workload w = TwoTableWorkload();
  const EntityClustering c = EntityClustering::FromLabels(w, TruthLabels(w));

  EXPECT_EQ(c.num_records(), 7u);  // L0..L3 + R0..R2
  EXPECT_EQ(c.num_entities(), 4u);
  EXPECT_EQ(c.num_multi_record_entities(), 2u);

  // Canonical numbering: first appearance in ascending (source, id) order.
  EXPECT_EQ(c.EntityOf({0, 0}), std::optional<uint32_t>(0));
  EXPECT_EQ(c.EntityOf({0, 1}), std::optional<uint32_t>(0));
  EXPECT_EQ(c.EntityOf({1, 0}), std::optional<uint32_t>(0));
  EXPECT_EQ(c.EntityOf({0, 2}), std::optional<uint32_t>(1));
  EXPECT_EQ(c.EntityOf({0, 3}), std::optional<uint32_t>(2));
  EXPECT_EQ(c.EntityOf({1, 2}), std::optional<uint32_t>(2));
  EXPECT_EQ(c.EntityOf({1, 1}), std::optional<uint32_t>(3));
  EXPECT_EQ(c.EntityOf({5, 5}), std::nullopt);

  const EntityClustering::MemberRange big = c.MembersOf(0);
  ASSERT_EQ(big.size(), 3u);
  EXPECT_EQ(big[0], (RecordRef{0, 0}));
  EXPECT_EQ(big[1], (RecordRef{0, 1}));
  EXPECT_EQ(big[2], (RecordRef{1, 0}));
  EXPECT_TRUE(big.Contains({1, 0}));
  EXPECT_FALSE(big.Contains({1, 1}));
  EXPECT_EQ(c.EntitySize(0), 3u);
  EXPECT_EQ(c.EntitySize(1), 1u);
  EXPECT_TRUE(c.MembersOf(99).empty());
}

TEST(EntityClusteringTest, SingleSourceDedup) {
  // Dedup workload: both columns draw from one table.
  const data::Workload w({{0, 1, 0.9, true}, {1, 2, 0.8, true},
                          {3, 4, 0.2, false}});
  const ClusteringOptions dedup{0, 0};
  const EntityClustering c =
      EntityClustering::FromLabels(w, TruthLabels(w), dedup);
  EXPECT_EQ(c.num_records(), 5u);
  EXPECT_EQ(c.num_entities(), 3u);
  // Transitive closure through the chain 0-1-2.
  EXPECT_EQ(c.EntityOf({0, 0}), c.EntityOf({0, 2}));
  EXPECT_NE(c.EntityOf({0, 3}), c.EntityOf({0, 4}));
}

TEST(EntityClusteringTest, FromSolutionMatchesFromLabels) {
  const data::Workload w = TwoTableWorkload();
  core::ResolutionResult result;
  result.labels = TruthLabels(w);
  const EntityClustering a = EntityClustering::FromLabels(w, result.labels);
  const EntityClustering b = EntityClustering::FromSolution(w, result);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Checksum(), b.Checksum());
}

TEST(EntityClusteringTest, ChecksumSeparatesPartitions) {
  const data::Workload w = TwoTableWorkload();
  const EntityClustering truth = EntityClustering::FromLabels(w, TruthLabels(w));
  const EntityClustering none =
      EntityClustering::FromLabels(w, std::vector<int>(w.size(), 0));
  EXPECT_NE(truth, none);
  EXPECT_NE(truth.Checksum(), none.Checksum());
  EXPECT_EQ(none.num_entities(), none.num_records());
  EXPECT_EQ(none.num_multi_record_entities(), 0u);
}

TEST(EntityClusteringTest, RecordIndexRoundTrip) {
  const data::Workload w = TwoTableWorkload();
  const EntityClustering c = EntityClustering::FromLabels(w, TruthLabels(w));
  for (size_t r = 0; r < c.num_records(); ++r) {
    const RecordRef ref = UnpackRecord(c.record_keys()[r]);
    EXPECT_EQ(c.RecordIndexOf(ref), r);
    EXPECT_EQ(c.EntityOf(ref), std::optional<uint32_t>(c.entity_of_record()[r]));
    EXPECT_TRUE(c.MembersOf(c.entity_of_record()[r]).Contains(ref));
  }
  EXPECT_EQ(c.RecordIndexOf({9, 9}), c.num_records());
}

}  // namespace
}  // namespace humo
