#include "entity/multi_source.h"

#include <gtest/gtest.h>

#include <vector>

#include "data/workload.h"
#include "entity/entity_clustering.h"

namespace humo {
namespace {

using entity::EntityClustering;
using entity::MultiSourceEntities;
using entity::RecordRef;
using entity::SourceInfo;

TEST(MultiSourceEntitiesTest, SpansAndPerSourceViews) {
  // L0-R0 and L1-R0 match (one entity across both tables), L3-R2 match,
  // L2 and R1 stay singletons in their own tables.
  const data::Workload w({{0, 0, 0.90, true},
                          {1, 0, 0.80, true},
                          {2, 1, 0.30, false},
                          {3, 2, 0.85, true}});
  EntityClustering c = EntityClustering::FromLabels(w, w.GroundTruthLabels());
  const MultiSourceEntities multi(std::move(c),
                                  {{"left", 4}, {"right", 3}});

  EXPECT_EQ(multi.num_sources(), 2u);
  EXPECT_EQ(multi.source(0).name, "left");
  EXPECT_EQ(multi.RecordsFromSource(0), 4u);
  EXPECT_EQ(multi.RecordsFromSource(1), 3u);

  // Entity 0 = {L0, L1, R0} spans both sources; singletons span one.
  EXPECT_EQ(multi.SourceSpan(0), 2u);
  EXPECT_EQ(multi.SourceSpan(1), 1u);  // {L2}
  EXPECT_EQ(multi.SourceSpan(2), 2u);  // {L3, R2}
  EXPECT_EQ(multi.SourceSpan(3), 1u);  // {R1}
  EXPECT_EQ(multi.entities_spanning_sources(), 2u);

  const std::vector<size_t>& hist = multi.span_histogram();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 2u);

  const std::vector<RecordRef> lefts = multi.MembersFromSource(0, 0);
  ASSERT_EQ(lefts.size(), 2u);
  EXPECT_EQ(lefts[0], (RecordRef{0, 0}));
  EXPECT_EQ(lefts[1], (RecordRef{0, 1}));
  const std::vector<RecordRef> rights = multi.MembersFromSource(0, 1);
  ASSERT_EQ(rights.size(), 1u);
  EXPECT_EQ(rights[0], (RecordRef{1, 0}));
  EXPECT_TRUE(multi.MembersFromSource(1, 1).empty());  // {L2} has no rights
}

TEST(MultiSourceEntitiesTest, SingleSourceDegeneratesToClusterSizes) {
  const data::Workload w({{0, 1, 0.9, true}, {2, 3, 0.2, false}});
  EntityClustering c =
      EntityClustering::FromLabels(w, w.GroundTruthLabels(), {0, 0});
  const MultiSourceEntities multi(std::move(c), {{"records", 4}});
  EXPECT_EQ(multi.entities_spanning_sources(), 0u);
  for (uint32_t e = 0; e < multi.clustering().num_entities(); ++e) {
    EXPECT_EQ(multi.SourceSpan(e), 1u);
    EXPECT_EQ(multi.MembersFromSource(e, 0).size(),
              multi.clustering().EntitySize(e));
  }
  EXPECT_EQ(multi.RecordsFromSource(0), 4u);
}

TEST(MultiSourceEntitiesTest, EmptyClustering) {
  const MultiSourceEntities multi(EntityClustering(), {{"left", 0}});
  EXPECT_EQ(multi.entities_spanning_sources(), 0u);
  EXPECT_EQ(multi.span_histogram().size(), 1u);  // just the unused k = 0 bin
  EXPECT_EQ(multi.RecordsFromSource(0), 0u);
}

}  // namespace
}  // namespace humo
