#include "gp/gp_regression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace humo::gp {
namespace {

GpOptions TightOptions() {
  GpOptions o;
  o.noise_variance = 1e-8;
  return o;
}

TEST(GpRegressionTest, InterpolatesTrainingPointsWithLowNoise) {
  const std::vector<double> x = {0.0, 0.25, 0.5, 0.75, 1.0};
  const std::vector<double> y = {0.0, 0.2, 0.5, 0.8, 0.95};
  auto gp = GpRegression::Fit(std::make_unique<RbfKernel>(1.0, 0.2), x, y,
                              TightOptions());
  ASSERT_TRUE(gp.ok());
  for (size_t i = 0; i < x.size(); ++i) {
    const auto p = gp->Predict(x[i]);
    EXPECT_NEAR(p.mean, y[i], 1e-3) << "at x=" << x[i];
    EXPECT_LT(p.stddev(), 0.05);
  }
}

TEST(GpRegressionTest, UncertaintyGrowsAwayFromData) {
  const std::vector<double> x = {0.4, 0.5, 0.6};
  const std::vector<double> y = {0.4, 0.5, 0.6};
  auto gp = GpRegression::Fit(std::make_unique<RbfKernel>(1.0, 0.05), x, y,
                              TightOptions());
  ASSERT_TRUE(gp.ok());
  const double var_near = gp->Predict(0.5).variance;
  const double var_far = gp->Predict(0.95).variance;
  EXPECT_GT(var_far, var_near * 10.0);
}

TEST(GpRegressionTest, SmoothInterpolationBetweenPoints) {
  // Linear-ish data: midpoint prediction should land between neighbors.
  const std::vector<double> x = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  const std::vector<double> y = {0.0, 0.1, 0.3, 0.6, 0.85, 0.95};
  auto gp = GpRegression::Fit(std::make_unique<RbfKernel>(0.5, 0.25), x, y,
                              TightOptions());
  ASSERT_TRUE(gp.ok());
  const double mid = gp->Predict(0.5).mean;
  EXPECT_GT(mid, 0.3);
  EXPECT_LT(mid, 0.6);
}

TEST(GpRegressionTest, RejectsBadInputs) {
  EXPECT_FALSE(GpRegression::Fit(nullptr, {0.1}, {0.2}).ok());
  EXPECT_FALSE(GpRegression::Fit(std::make_unique<RbfKernel>(1.0, 0.1),
                                 {0.1, 0.2}, {0.2})
                   .ok());
  EXPECT_FALSE(
      GpRegression::Fit(std::make_unique<RbfKernel>(1.0, 0.1), {}, {}).ok());
  EXPECT_FALSE(GpRegression::Fit(std::make_unique<RbfKernel>(1.0, 0.1), {0.1},
                                 {0.2}, {}, {0.1, 0.1})
                   .ok());
}

TEST(GpRegressionTest, HeteroscedasticNoiseWidensLocally) {
  const std::vector<double> x = {0.2, 0.5, 0.8};
  const std::vector<double> y = {0.3, 0.5, 0.7};
  // Give the middle observation huge noise.
  auto gp_noisy = GpRegression::Fit(std::make_unique<RbfKernel>(1.0, 0.2), x,
                                    y, TightOptions(), {1e-8, 0.5, 1e-8});
  auto gp_clean = GpRegression::Fit(std::make_unique<RbfKernel>(1.0, 0.2), x,
                                    y, TightOptions(), {1e-8, 1e-8, 1e-8});
  ASSERT_TRUE(gp_noisy.ok());
  ASSERT_TRUE(gp_clean.ok());
  EXPECT_GT(gp_noisy->Predict(0.5).variance, gp_clean->Predict(0.5).variance);
}

TEST(GpRegressionTest, JointPredictionDiagonalMatchesPointwise) {
  const std::vector<double> x = {0.1, 0.3, 0.5, 0.7};
  const std::vector<double> y = {0.1, 0.4, 0.5, 0.9};
  auto gp = GpRegression::Fit(std::make_unique<RbfKernel>(1.0, 0.15), x, y,
                              TightOptions());
  ASSERT_TRUE(gp.ok());
  const std::vector<double> q = {0.2, 0.6, 0.95};
  const auto joint = gp->PredictJoint(q);
  ASSERT_EQ(joint.mean.size(), 3u);
  for (size_t i = 0; i < q.size(); ++i) {
    const auto p = gp->Predict(q[i]);
    EXPECT_NEAR(joint.mean[i], p.mean, 1e-9);
    EXPECT_NEAR(joint.covariance(i, i), p.variance, 1e-9);
  }
}

TEST(GpRegressionTest, JointCovarianceOffDiagonalPositiveForNearbyPoints) {
  const std::vector<double> x = {0.1, 0.9};
  const std::vector<double> y = {0.2, 0.8};
  auto gp = GpRegression::Fit(std::make_unique<RbfKernel>(1.0, 0.2), x, y,
                              TightOptions());
  ASSERT_TRUE(gp.ok());
  const auto joint = gp->PredictJoint({0.48, 0.52});
  EXPECT_GT(joint.covariance(0, 1), 0.0);
  EXPECT_NEAR(joint.covariance(0, 1), joint.covariance(1, 0), 1e-12);
}

TEST(GpRegressionTest, WeightedTotalAggregation) {
  const std::vector<double> x = {0.0, 0.5, 1.0};
  const std::vector<double> y = {0.0, 0.5, 1.0};
  auto gp = GpRegression::Fit(std::make_unique<RbfKernel>(1.0, 0.3), x, y,
                              TightOptions());
  ASSERT_TRUE(gp.ok());
  const std::vector<double> q = {0.25, 0.75};
  const auto joint = gp->PredictJoint(q);
  const std::vector<double> weights = {100.0, 100.0};
  const double total = joint.WeightedTotalMean(weights);
  EXPECT_NEAR(total, 100.0 * (joint.mean[0] + joint.mean[1]), 1e-9);
  EXPECT_GE(joint.WeightedTotalStdDev(weights), 0.0);
}

TEST(GpRegressionTest, WhitenedCrossConsistentWithVariance) {
  const std::vector<double> x = {0.2, 0.4, 0.6, 0.8};
  const std::vector<double> y = {0.2, 0.3, 0.6, 0.9};
  auto gp = GpRegression::Fit(std::make_unique<RbfKernel>(1.0, 0.2), x, y,
                              TightOptions());
  ASSERT_TRUE(gp.ok());
  const double q = 0.55;
  const auto w = gp->WhitenedCross(q);
  double dot = 0.0;
  for (double v : w) dot += v * v;
  const auto p = gp->Predict(q);
  EXPECT_NEAR(p.variance, gp->kernel()(q, q) - dot, 1e-9);
}

TEST(GpRegressionTest, LogMarginalLikelihoodPrefersTrueLengthScale) {
  // Sample a smooth function; a wildly wrong length scale should score
  // worse than a sensible one.
  humo::Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i <= 20; ++i) {
    const double xi = i / 20.0;
    x.push_back(xi);
    y.push_back(std::sin(3.0 * xi) * 0.4 + 0.5 +
                0.01 * rng.NextGaussian());
  }
  GpOptions o;
  o.noise_variance = 1e-4;
  auto good = GpRegression::Fit(std::make_unique<RbfKernel>(0.3, 0.3), x, y, o);
  auto bad =
      GpRegression::Fit(std::make_unique<RbfKernel>(0.3, 0.001), x, y, o);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  EXPECT_GT(good->LogMarginalLikelihood(), bad->LogMarginalLikelihood());
}

TEST(GpModelSelectionTest, PicksBestCandidateOnGrid) {
  std::vector<double> x, y;
  for (int i = 0; i <= 15; ++i) {
    const double xi = i / 15.0;
    x.push_back(xi);
    y.push_back(0.95 / (1.0 + std::exp(-14.0 * (xi - 0.55))));
  }
  auto gp = SelectGpByMarginalLikelihood(x, y, DefaultGpGrid(),
                                         KernelFamily::kRbf);
  ASSERT_TRUE(gp.ok());
  // The selected model should interpolate the logistic decently.
  EXPECT_NEAR(gp->Predict(0.55).mean, 0.475, 0.08);
}

TEST(GpModelSelectionTest, EmptyGridFails) {
  EXPECT_FALSE(SelectGpByMarginalLikelihood({0.1}, {0.2}, {},
                                            KernelFamily::kRbf)
                   .ok());
}

TEST(GpModelSelectionTest, WorksForAllKernelFamilies) {
  const std::vector<double> x = {0.1, 0.3, 0.5, 0.7, 0.9};
  const std::vector<double> y = {0.1, 0.2, 0.5, 0.8, 0.9};
  for (auto family : {KernelFamily::kRbf, KernelFamily::kMatern32,
                      KernelFamily::kMatern52}) {
    auto gp = SelectGpByMarginalLikelihood(x, y, DefaultGpGrid(), family);
    ASSERT_TRUE(gp.ok());
    EXPECT_NEAR(gp->Predict(0.5).mean, 0.5, 0.15);
  }
}

}  // namespace
}  // namespace humo::gp
