#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "gp/gp_regression.h"

namespace humo::gp {
namespace {

struct TrainingSet {
  std::vector<double> x, y, noise;
};

TrainingSet MakeTraining(size_t n, uint64_t seed) {
  Rng rng(seed);
  TrainingSet t;
  for (size_t i = 0; i < n; ++i) t.x.push_back(rng.NextDouble());
  std::sort(t.x.begin(), t.x.end());
  for (size_t i = 0; i < n; ++i) {
    const double latent = 1.0 / (1.0 + std::exp(-10.0 * (t.x[i] - 0.5)));
    t.y.push_back(latent + 0.03 * rng.NextGaussian());
    t.noise.push_back(1e-4 + 1e-4 * rng.NextDouble());
  }
  return t;
}

GpRegression FitRbf(const TrainingSet& t, double sf2 = 0.25, double l = 0.1) {
  GpOptions o;
  o.noise_variance = 1e-6;
  auto gp = GpRegression::Fit(std::make_unique<RbfKernel>(sf2, l), t.x, t.y, o,
                              t.noise);
  EXPECT_TRUE(gp.ok());
  return std::move(*gp);
}

std::vector<double> MakeQueries(size_t q, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> qs(q);
  for (double& v : qs) v = rng.NextDouble(-0.2, 1.2);  // incl. extrapolation
  return qs;
}

TEST(PredictBatchTest, MatchesPerPointBitForBit) {
  const TrainingSet t = MakeTraining(40, 1);
  const GpRegression gp = FitRbf(t);
  // 101 queries: exercises the blocked multi-RHS path AND the tail rows.
  const std::vector<double> qs = MakeQueries(101, 2);
  std::vector<linalg::Vector> whitened;
  const std::vector<Prediction> batch = gp.PredictBatch(qs, &whitened);
  ASSERT_EQ(batch.size(), qs.size());
  ASSERT_EQ(whitened.size(), qs.size());
  for (size_t j = 0; j < qs.size(); ++j) {
    const Prediction p = gp.Predict(qs[j]);
    EXPECT_EQ(batch[j].mean, p.mean) << "query " << j;          // bitwise
    EXPECT_EQ(batch[j].variance, p.variance) << "query " << j;  // bitwise
    const linalg::Vector w = gp.WhitenedCross(qs[j]);
    ASSERT_EQ(whitened[j].size(), w.size());
    for (size_t i = 0; i < w.size(); ++i)
      EXPECT_EQ(whitened[j][i], w[i]) << "query " << j << " dim " << i;
  }
}

TEST(PredictBatchTest, ThreadCountDoesNotChangeResults) {
  const TrainingSet t = MakeTraining(64, 3);
  const std::vector<double> qs = MakeQueries(97, 4);
  auto run = [&](size_t threads) {
    ThreadPool::SetGlobalThreads(threads);
    const GpRegression gp = FitRbf(t);
    return gp.PredictBatch(qs);
  };
  const std::vector<Prediction> serial = run(1);
  const std::vector<Prediction> parallel = run(4);
  ThreadPool::SetGlobalThreads(0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t j = 0; j < serial.size(); ++j) {
    EXPECT_EQ(serial[j].mean, parallel[j].mean) << "query " << j;
    EXPECT_EQ(serial[j].variance, parallel[j].variance) << "query " << j;
  }
}

TEST(PredictBatchTest, JointPredictionDiagonalMatchesPointVariance) {
  const TrainingSet t = MakeTraining(30, 5);
  const GpRegression gp = FitRbf(t);
  const std::vector<double> qs = MakeQueries(9, 6);
  const JointPrediction jp = gp.PredictJoint(qs);
  for (size_t j = 0; j < qs.size(); ++j) {
    const Prediction p = gp.Predict(qs[j]);
    EXPECT_EQ(jp.mean[j], p.mean);
    // Same whitened solve, same dot, same clamp.
    EXPECT_EQ(jp.covariance(j, j), p.variance);
  }
  // Symmetry is preserved by the blocked build.
  for (size_t a = 0; a < qs.size(); ++a)
    for (size_t b = 0; b < qs.size(); ++b)
      EXPECT_EQ(jp.covariance(a, b), jp.covariance(b, a));
}

TEST(PredictBatchTest, ExtendedWithAgreesWithFromScratchFit) {
  const TrainingSet t = MakeTraining(24, 7);
  const size_t n0 = 20;
  GpOptions o;
  o.noise_variance = 1e-6;
  auto base = GpRegression::Fit(
      std::make_unique<RbfKernel>(0.25, 0.1),
      std::vector<double>(t.x.begin(), t.x.begin() + n0),
      std::vector<double>(t.y.begin(), t.y.begin() + n0), o,
      std::vector<double>(t.noise.begin(), t.noise.begin() + n0));
  ASSERT_TRUE(base.ok());
  auto extended = base->ExtendedWith(
      std::vector<double>(t.x.begin() + n0, t.x.end()),
      std::vector<double>(t.y.begin() + n0, t.y.end()),
      std::vector<double>(t.noise.begin() + n0, t.noise.end()));
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended->num_training_points(), t.x.size());

  auto scratch = GpRegression::Fit(std::make_unique<RbfKernel>(0.25, 0.1), t.x,
                                   t.y, o, t.noise);
  ASSERT_TRUE(scratch.ok());
  EXPECT_NEAR(extended->LogMarginalLikelihood(),
              scratch->LogMarginalLikelihood(), 1e-9);
  for (double q : {0.0, 0.21, 0.5, 0.83, 1.0}) {
    const Prediction a = extended->Predict(q);
    const Prediction b = scratch->Predict(q);
    EXPECT_NEAR(a.mean, b.mean, 1e-9) << "x=" << q;
    EXPECT_NEAR(a.variance, b.variance, 1e-9) << "x=" << q;
  }
}

TEST(PredictBatchTest, ExtendedWithEmptyIsClone) {
  const TrainingSet t = MakeTraining(16, 8);
  const GpRegression gp = FitRbf(t);
  auto same = gp.ExtendedWith({}, {});
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->num_training_points(), gp.num_training_points());
  EXPECT_EQ(same->LogMarginalLikelihood(), gp.LogMarginalLikelihood());
  const Prediction a = gp.Predict(0.4), b = same->Predict(0.4);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.variance, b.variance);
}

TEST(PredictBatchTest, ExtendedWithRejectsMismatchedInputs) {
  const TrainingSet t = MakeTraining(10, 9);
  const GpRegression gp = FitRbf(t);
  EXPECT_FALSE(gp.ExtendedWith({0.5}, {}).ok());
  EXPECT_FALSE(gp.ExtendedWith({0.5}, {0.5}, {1e-4, 1e-4}).ok());
}

TEST(PredictBatchTest, EmptyBatchIsEmpty) {
  const TrainingSet t = MakeTraining(12, 10);
  const GpRegression gp = FitRbf(t);
  EXPECT_TRUE(gp.PredictBatch({}).empty());
}

}  // namespace
}  // namespace humo::gp
