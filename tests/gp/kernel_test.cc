#include "gp/kernel.h"

#include <gtest/gtest.h>

#include <cmath>

namespace humo::gp {
namespace {

TEST(RbfKernelTest, SelfSimilarityIsSignalVariance) {
  RbfKernel k(2.0, 0.1);
  EXPECT_DOUBLE_EQ(k(0.3, 0.3), 2.0);
}

TEST(RbfKernelTest, DecaysWithDistance) {
  RbfKernel k(1.0, 0.1);
  EXPECT_GT(k(0.5, 0.55), k(0.5, 0.7));
  EXPECT_GT(k(0.5, 0.7), k(0.5, 0.95));
}

TEST(RbfKernelTest, KnownValue) {
  RbfKernel k(1.0, 1.0);
  EXPECT_NEAR(k(0.0, 1.0), std::exp(-0.5), 1e-12);
}

TEST(RbfKernelTest, Symmetric) {
  RbfKernel k(1.3, 0.2);
  EXPECT_DOUBLE_EQ(k(0.1, 0.8), k(0.8, 0.1));
}

TEST(Matern32KernelTest, SelfAndDecay) {
  Matern32Kernel k(1.5, 0.2);
  EXPECT_DOUBLE_EQ(k(0.4, 0.4), 1.5);
  EXPECT_GT(k(0.4, 0.45), k(0.4, 0.9));
}

TEST(Matern52KernelTest, SelfAndDecay) {
  Matern52Kernel k(1.5, 0.2);
  EXPECT_DOUBLE_EQ(k(0.4, 0.4), 1.5);
  EXPECT_GT(k(0.4, 0.45), k(0.4, 0.9));
}

TEST(MaternKernelsTest, SmootherVariantDecaysSlowerNearZero) {
  Matern32Kernel k32(1.0, 0.3);
  Matern52Kernel k52(1.0, 0.3);
  // At small distances the 5/2 kernel stays closer to 1 than 3/2.
  EXPECT_GT(k52(0.0, 0.05), k32(0.0, 0.05));
}

TEST(ConstantKernelTest, IgnoresInputs) {
  ConstantKernel k(0.7);
  EXPECT_DOUBLE_EQ(k(0.0, 1.0), 0.7);
  EXPECT_DOUBLE_EQ(k(0.5, 0.5), 0.7);
}

TEST(SumKernelTest, AddsComponents) {
  SumKernel k(std::make_unique<RbfKernel>(1.0, 0.1),
              std::make_unique<ConstantKernel>(0.5));
  EXPECT_DOUBLE_EQ(k(0.2, 0.2), 1.5);
}

TEST(KernelTest, CloneIsIndependentAndEqual) {
  RbfKernel k(1.0, 0.25);
  auto c = k.Clone();
  EXPECT_DOUBLE_EQ((*c)(0.1, 0.6), k(0.1, 0.6));
  EXPECT_NE(c->ToString().find("RBF"), std::string::npos);
}

TEST(KernelTest, GramMatrixShapeAndValues) {
  RbfKernel k(1.0, 0.5);
  const std::vector<double> xs = {0.0, 0.5}, ys = {0.25, 0.75, 1.0};
  const auto g = k.Gram(xs, ys);
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_EQ(g.cols(), 3u);
  EXPECT_DOUBLE_EQ(g(1, 0), k(0.5, 0.25));
}

TEST(KernelTest, GramSymmetricIsSymmetric) {
  Matern52Kernel k(1.0, 0.3);
  const std::vector<double> xs = {0.1, 0.4, 0.9};
  const auto g = k.GramSymmetric(xs);
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
}

TEST(KernelTest, ToStringMentionsParameters) {
  RbfKernel k(2.0, 0.125);
  const std::string s = k.ToString();
  EXPECT_NE(s.find("2"), std::string::npos);
  EXPECT_NE(s.find("0.125"), std::string::npos);
}

}  // namespace
}  // namespace humo::gp
