#include "ml/linear_svm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "ml/metrics.h"

namespace humo::ml {
namespace {

/// Two Gaussian blobs separated along the first feature.
Dataset SeparableBlobs(size_t n_per_class, double gap, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (size_t i = 0; i < n_per_class; ++i) {
    d.Add({rng.NextGaussian(-gap, 1.0), rng.NextGaussian()}, 0);
    d.Add({rng.NextGaussian(gap, 1.0), rng.NextGaussian()}, 1);
  }
  return d;
}

TEST(LinearSvmTest, SeparatesWellSeparatedBlobs) {
  const Dataset d = SeparableBlobs(300, 3.0, 1);
  const LinearSvm svm = LinearSvm::Train(d);
  std::vector<int> preds;
  for (const auto& f : d.features) preds.push_back(svm.Predict(f));
  const auto m = EvaluateLabels(preds, d.labels);
  EXPECT_GT(m.accuracy(), 0.95);
}

TEST(LinearSvmTest, DecisionValueSignMatchesPrediction) {
  const Dataset d = SeparableBlobs(100, 2.0, 2);
  const LinearSvm svm = LinearSvm::Train(d);
  for (const auto& f : d.features) {
    EXPECT_EQ(svm.Predict(f), svm.DecisionValue(f) >= 0.0 ? 1 : 0);
  }
}

TEST(LinearSvmTest, DistanceIsScaledDecisionValue) {
  const Dataset d = SeparableBlobs(100, 2.0, 3);
  const LinearSvm svm = LinearSvm::Train(d);
  double norm = 0.0;
  for (double w : svm.weights()) norm += w * w;
  norm = std::sqrt(norm);
  const FeatureVector f = {1.0, -0.5};
  EXPECT_NEAR(svm.Distance(f), svm.DecisionValue(f) / norm, 1e-9);
}

TEST(LinearSvmTest, WeightPointsTowardPositiveClass) {
  const Dataset d = SeparableBlobs(200, 3.0, 4);
  const LinearSvm svm = LinearSvm::Train(d);
  // Class 1 sits at positive x0, so w0 must be positive.
  EXPECT_GT(svm.weights()[0], 0.0);
}

TEST(LinearSvmTest, DeterministicUnderSeed) {
  const Dataset d = SeparableBlobs(100, 2.0, 5);
  SvmOptions o;
  o.seed = 7;
  const LinearSvm a = LinearSvm::Train(d, o);
  const LinearSvm b = LinearSvm::Train(d, o);
  ASSERT_EQ(a.weights().size(), b.weights().size());
  for (size_t i = 0; i < a.weights().size(); ++i)
    EXPECT_DOUBLE_EQ(a.weights()[i], b.weights()[i]);
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

TEST(LinearSvmTest, PositiveWeightRaisesRecallOnImbalancedData) {
  // 1:20 imbalance; cost-weighting the positive class should lift recall.
  Rng rng(6);
  Dataset d;
  for (int i = 0; i < 40; ++i) d.Add({rng.NextGaussian(1.2, 1.0)}, 1);
  for (int i = 0; i < 800; ++i) d.Add({rng.NextGaussian(-1.2, 1.0)}, 0);

  SvmOptions plain;
  plain.epochs = 40;
  SvmOptions weighted = plain;
  weighted.positive_weight = 20.0;

  const LinearSvm svm_plain = LinearSvm::Train(d, plain);
  const LinearSvm svm_weighted = LinearSvm::Train(d, weighted);

  auto recall_of = [&](const LinearSvm& svm) {
    std::vector<int> preds;
    for (const auto& f : d.features) preds.push_back(svm.Predict(f));
    return EvaluateLabels(preds, d.labels).recall();
  };
  EXPECT_GE(recall_of(svm_weighted), recall_of(svm_plain));
}

TEST(LinearSvmTest, HarderProblemLowerAccuracy) {
  const Dataset easy = SeparableBlobs(300, 3.0, 8);
  const Dataset hard = SeparableBlobs(300, 0.3, 8);
  auto accuracy_of = [](const Dataset& d) {
    const LinearSvm svm = LinearSvm::Train(d);
    std::vector<int> preds;
    for (const auto& f : d.features) preds.push_back(svm.Predict(f));
    return EvaluateLabels(preds, d.labels).accuracy();
  };
  EXPECT_GT(accuracy_of(easy), accuracy_of(hard));
}

}  // namespace
}  // namespace humo::ml
