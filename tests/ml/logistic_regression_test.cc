#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/metrics.h"

namespace humo::ml {
namespace {

TEST(SigmoidTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 0.8807970779778823, 1e-12);
  EXPECT_NEAR(Sigmoid(-2.0), 1.0 - 0.8807970779778823, 1e-12);
}

TEST(SigmoidTest, SaturatesWithoutOverflow) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
}

Dataset Blobs(size_t n, double gap, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (size_t i = 0; i < n; ++i) {
    d.Add({rng.NextGaussian(-gap, 1.0)}, 0);
    d.Add({rng.NextGaussian(gap, 1.0)}, 1);
  }
  return d;
}

TEST(LogisticRegressionTest, LearnsSeparableData) {
  const Dataset d = Blobs(300, 2.5, 1);
  const LogisticRegression lr = LogisticRegression::Train(d);
  std::vector<int> preds;
  for (const auto& f : d.features) preds.push_back(lr.Predict(f));
  EXPECT_GT(EvaluateLabels(preds, d.labels).accuracy(), 0.95);
}

TEST(LogisticRegressionTest, ProbabilitiesInUnitInterval) {
  const Dataset d = Blobs(100, 1.0, 2);
  const LogisticRegression lr = LogisticRegression::Train(d);
  for (const auto& f : d.features) {
    const double p = lr.PredictProbability(f);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LogisticRegressionTest, ProbabilityMonotoneInFeature) {
  const Dataset d = Blobs(300, 2.0, 3);
  const LogisticRegression lr = LogisticRegression::Train(d);
  EXPECT_LT(lr.PredictProbability({-3.0}), lr.PredictProbability({0.0}));
  EXPECT_LT(lr.PredictProbability({0.0}), lr.PredictProbability({3.0}));
}

TEST(LogisticRegressionTest, ThresholdShiftsPrecisionRecallTradeoff) {
  const Dataset d = Blobs(500, 1.0, 4);
  const LogisticRegression lr = LogisticRegression::Train(d);
  auto metrics_at = [&](double thr) {
    std::vector<int> preds;
    for (const auto& f : d.features) preds.push_back(lr.Predict(f, thr));
    return EvaluateLabels(preds, d.labels);
  };
  const auto strict = metrics_at(0.9);
  const auto loose = metrics_at(0.1);
  EXPECT_GE(strict.precision(), loose.precision());
  EXPECT_LE(strict.recall(), loose.recall());
}

TEST(LogisticRegressionTest, DeterministicUnderSeed) {
  const Dataset d = Blobs(100, 1.5, 5);
  LogisticOptions o;
  o.seed = 11;
  const auto a = LogisticRegression::Train(d, o);
  const auto b = LogisticRegression::Train(d, o);
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
  for (size_t i = 0; i < a.weights().size(); ++i)
    EXPECT_DOUBLE_EQ(a.weights()[i], b.weights()[i]);
}

}  // namespace
}  // namespace humo::ml
