#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <set>

namespace humo::ml {
namespace {

Dataset MakeDataset(size_t n) {
  Dataset d;
  for (size_t i = 0; i < n; ++i) {
    d.Add({static_cast<double>(i), static_cast<double>(i) * 2},
          i % 3 == 0 ? 1 : 0);
  }
  return d;
}

TEST(DatasetTest, SizeAndFeatures) {
  Dataset d = MakeDataset(9);
  EXPECT_EQ(d.size(), 9u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.CountPositives(), 3u);
}

TEST(DatasetTest, EmptyDataset) {
  Dataset d;
  EXPECT_EQ(d.size(), 0u);
  EXPECT_EQ(d.num_features(), 0u);
  EXPECT_EQ(d.CountPositives(), 0u);
}

TEST(SplitDatasetTest, SplitsAtFraction) {
  Dataset d = MakeDataset(100);
  Rng rng(1);
  const auto split = SplitDataset(d, 0.7, &rng);
  EXPECT_EQ(split.train.size(), 70u);
  EXPECT_EQ(split.test.size(), 30u);
}

TEST(SplitDatasetTest, PreservesAllExamples) {
  Dataset d = MakeDataset(50);
  Rng rng(2);
  const auto split = SplitDataset(d, 0.5, &rng);
  std::multiset<double> seen;
  for (const auto& f : split.train.features) seen.insert(f[0]);
  for (const auto& f : split.test.features) seen.insert(f[0]);
  EXPECT_EQ(seen.size(), 50u);
  for (size_t i = 0; i < 50; ++i)
    EXPECT_TRUE(seen.count(static_cast<double>(i)));
}

TEST(SplitDatasetTest, ExtremeFractions) {
  Dataset d = MakeDataset(10);
  Rng rng(3);
  EXPECT_EQ(SplitDataset(d, 0.0, &rng).train.size(), 0u);
  EXPECT_EQ(SplitDataset(d, 1.0, &rng).test.size(), 0u);
}

TEST(KFoldTest, PartitionsAllIndices) {
  Rng rng(4);
  const auto folds = KFoldIndices(23, 5, &rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<size_t> seen;
  for (const auto& fold : folds)
    for (size_t i : fold) seen.insert(i);
  EXPECT_EQ(seen.size(), 23u);
}

TEST(KFoldTest, BalancedFoldSizes) {
  Rng rng(5);
  const auto folds = KFoldIndices(20, 4, &rng);
  for (const auto& fold : folds) EXPECT_EQ(fold.size(), 5u);
}

TEST(SubsetTest, SelectsByIndex) {
  Dataset d = MakeDataset(10);
  const Dataset sub = Subset(d, {0, 3, 6});
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.labels[0], 1);  // index 0: 0 % 3 == 0
  EXPECT_DOUBLE_EQ(sub.features[1][0], 3.0);
}

}  // namespace
}  // namespace humo::ml
