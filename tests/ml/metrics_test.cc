#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace humo::ml {
namespace {

TEST(MetricsTest, PerfectPrediction) {
  const std::vector<int> truth = {1, 0, 1, 0};
  const auto m = EvaluateLabels(truth, truth);
  EXPECT_DOUBLE_EQ(m.precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.f1(), 1.0);
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
}

TEST(MetricsTest, ConfusionCounts) {
  const std::vector<int> pred = {1, 1, 0, 0, 1};
  const std::vector<int> truth = {1, 0, 1, 0, 1};
  const auto m = EvaluateLabels(pred, truth);
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_EQ(m.true_negatives, 1u);
  EXPECT_EQ(m.total(), 5u);
}

TEST(MetricsTest, PrecisionRecallValues) {
  const std::vector<int> pred = {1, 1, 0, 0, 1};
  const std::vector<int> truth = {1, 0, 1, 0, 1};
  const auto m = EvaluateLabels(pred, truth);
  EXPECT_NEAR(m.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.recall(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.f1(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.accuracy(), 3.0 / 5.0, 1e-12);
}

TEST(MetricsTest, NoPredictedPositivesVacuousPrecision) {
  const auto m = EvaluateLabels({0, 0}, {1, 0});
  EXPECT_DOUBLE_EQ(m.precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.f1(), 0.0);
}

TEST(MetricsTest, NoActualPositivesVacuousRecall) {
  const auto m = EvaluateLabels({0, 1}, {0, 0});
  EXPECT_DOUBLE_EQ(m.recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.precision(), 0.0);
}

TEST(MetricsTest, EmptyInput) {
  const auto m = EvaluateLabels({}, {});
  EXPECT_EQ(m.total(), 0u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
}

TEST(MetricsTest, F1IsHarmonicMean) {
  ClassificationMetrics m;
  m.true_positives = 30;
  m.false_positives = 10;  // precision 0.75
  m.false_negatives = 30;  // recall 0.5
  EXPECT_NEAR(m.f1(), 2 * 0.75 * 0.5 / (0.75 + 0.5), 1e-12);
}

}  // namespace
}  // namespace humo::ml
