#include "ml/scaler.h"

#include <gtest/gtest.h>

#include <cmath>

namespace humo::ml {
namespace {

TEST(StandardScalerTest, ZeroMeanUnitVariance) {
  Dataset d;
  d.Add({1.0, 10.0}, 0);
  d.Add({2.0, 20.0}, 0);
  d.Add({3.0, 30.0}, 1);
  StandardScaler scaler;
  scaler.Fit(d);
  const Dataset scaled = scaler.Transform(d);
  for (size_t j = 0; j < 2; ++j) {
    double mean = 0.0;
    for (const auto& f : scaled.features) mean += f[j];
    mean /= 3.0;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    double var = 0.0;
    for (const auto& f : scaled.features) var += f[j] * f[j];
    var /= 3.0;
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(StandardScalerTest, ConstantFeaturePassesThrough) {
  Dataset d;
  d.Add({5.0}, 0);
  d.Add({5.0}, 1);
  StandardScaler scaler;
  scaler.Fit(d);
  const auto f = scaler.Transform(FeatureVector{5.0});
  EXPECT_DOUBLE_EQ(f[0], 0.0);  // (5-5)/1
}

TEST(StandardScalerTest, TransformUsesTrainStatistics) {
  Dataset train;
  train.Add({0.0}, 0);
  train.Add({10.0}, 1);
  StandardScaler scaler;
  scaler.Fit(train);
  // Unseen value scaled by train mean (5) and stddev (5).
  const auto f = scaler.Transform(FeatureVector{20.0});
  EXPECT_NEAR(f[0], 3.0, 1e-12);
}

TEST(StandardScalerTest, LabelsPreserved) {
  Dataset d;
  d.Add({1.0}, 1);
  d.Add({2.0}, 0);
  StandardScaler scaler;
  scaler.Fit(d);
  const Dataset scaled = scaler.Transform(d);
  EXPECT_EQ(scaled.labels[0], 1);
  EXPECT_EQ(scaled.labels[1], 0);
}

}  // namespace
}  // namespace humo::ml
