#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "core/baseline_optimizer.h"
#include "core/partial_sampling_optimizer.h"
#include "data/logistic_generator.h"

namespace humo::eval {
namespace {

data::Workload MakeWorkload() {
  data::LogisticGeneratorOptions o;
  o.num_pairs = 20000;
  o.pairs_per_subset = 200;
  o.tau = 14.0;
  o.sigma = 0.05;
  return data::GenerateLogisticWorkload(o);
}

TEST(ExperimentTest, RunTrialReportsQualityAndCost) {
  const data::Workload w = MakeWorkload();
  core::SubsetPartition p(&w, 200);
  core::Oracle oracle(&w);
  core::QualityRequirement req{0.85, 0.85, 0.9};
  OptimizerFn base = [](const core::SubsetPartition& part,
                        const core::QualityRequirement& r,
                        core::Oracle* o) {
    return core::BaselineOptimizer().Optimize(part, r, o);
  };
  const TrialResult tr = RunTrial(p, req, base, &oracle);
  EXPECT_FALSE(tr.failed_to_run);
  EXPECT_GT(tr.precision, 0.0);
  EXPECT_GT(tr.recall, 0.0);
  EXPECT_GT(tr.human_cost, 0u);
  EXPECT_GT(tr.human_cost_fraction, 0.0);
  EXPECT_TRUE(tr.success);
}

TEST(ExperimentTest, RunExperimentAggregates) {
  const data::Workload w = MakeWorkload();
  core::SubsetPartition p(&w, 200);
  core::QualityRequirement req{0.85, 0.85, 0.9};
  auto factory = [](uint64_t seed) -> OptimizerFn {
    return [seed](const core::SubsetPartition& part,
                  const core::QualityRequirement& r, core::Oracle* o) {
      core::PartialSamplingOptions opts;
      opts.seed = seed;
      return core::PartialSamplingOptimizer(opts).Optimize(part, r, o);
    };
  };
  const auto summary = RunExperiment(p, req, factory, 5, 100);
  EXPECT_EQ(summary.trials, 5u);
  EXPECT_EQ(summary.failed_trials, 0u);
  EXPECT_GT(summary.mean_precision, 0.8);
  EXPECT_GT(summary.mean_recall, 0.8);
  EXPECT_GT(summary.mean_cost_fraction, 0.0);
  EXPECT_LE(summary.success_rate, 1.0);
  EXPECT_GE(summary.success_rate, 0.0);
}

TEST(ExperimentTest, FailedOptimizerCounted) {
  const data::Workload w = MakeWorkload();
  core::SubsetPartition p(&w, 200);
  core::QualityRequirement req{0.85, 0.85, 0.9};
  auto failing_factory = [](uint64_t) -> OptimizerFn {
    return [](const core::SubsetPartition&, const core::QualityRequirement&,
              core::Oracle*) -> humo::Result<core::HumoSolution> {
      return humo::Status::Internal("synthetic failure");
    };
  };
  const auto summary = RunExperiment(p, req, failing_factory, 3, 1);
  EXPECT_EQ(summary.failed_trials, 3u);
  EXPECT_DOUBLE_EQ(summary.mean_precision, 0.0);
}

TEST(ExperimentTest, SeedsVaryAcrossTrials) {
  const data::Workload w = MakeWorkload();
  core::SubsetPartition p(&w, 200);
  core::QualityRequirement req{0.85, 0.85, 0.9};
  std::vector<uint64_t> seen;
  auto factory = [&seen](uint64_t seed) -> OptimizerFn {
    seen.push_back(seed);
    return [](const core::SubsetPartition& part,
              const core::QualityRequirement& r, core::Oracle* o) {
      return core::BaselineOptimizer().Optimize(part, r, o);
    };
  };
  RunExperiment(p, req, factory, 3, 50);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], 50u);
  EXPECT_EQ(seen[1], 51u);
  EXPECT_EQ(seen[2], 52u);
}

}  // namespace
}  // namespace humo::eval
