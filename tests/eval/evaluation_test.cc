#include "eval/evaluation.h"

#include <gtest/gtest.h>

namespace humo::eval {
namespace {

data::Workload TinyWorkload() {
  std::vector<data::InstancePair> pairs = {
      {0, 0, 0.1, false}, {1, 1, 0.4, true}, {2, 2, 0.7, false},
      {3, 3, 0.9, true}};
  return data::Workload(std::move(pairs));
}

TEST(EvaluationTest, PerfectLabels) {
  const data::Workload w = TinyWorkload();
  const auto q = QualityOf(w, w.GroundTruthLabels());
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
}

TEST(EvaluationTest, AllMatchLabels) {
  const data::Workload w = TinyWorkload();
  const auto q = QualityOf(w, {1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
}

TEST(EvaluationTest, AllUnmatchLabels) {
  const data::Workload w = TinyWorkload();
  const auto q = QualityOf(w, {0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);  // vacuous
}

TEST(EvaluationTest, ConfusionMatrixDirect) {
  const data::Workload w = TinyWorkload();
  const auto m = EvaluateAgainstTruth(w, {0, 1, 1, 1});
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 0u);
  EXPECT_EQ(m.true_negatives, 1u);
}

}  // namespace
}  // namespace humo::eval
