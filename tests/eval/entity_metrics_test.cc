#include "eval/entity_metrics.h"

#include <gtest/gtest.h>

#include <vector>

#include "data/workload.h"
#include "entity/entity_clustering.h"

namespace humo {
namespace {

using entity::ClusteringOptions;
using entity::EntityClustering;
using eval::EntityQuality;
using eval::EntityQualityOf;
using eval::JaccardAgreement;
using eval::MeanBestJaccard;
using eval::TruthClustering;

constexpr ClusteringOptions kDedup{0, 0};

TEST(EntityMetricsTest, IdenticalClusteringsScorePerfect) {
  const data::Workload w({{0, 1, 0.9, true}, {1, 2, 0.8, true},
                          {3, 4, 0.2, false}});
  const EntityClustering truth = TruthClustering(w, kDedup);
  const EntityQuality q = EntityQualityOf(truth, truth);
  EXPECT_EQ(q.truth_entities, 3u);
  EXPECT_EQ(q.predicted_entities, 3u);
  EXPECT_EQ(q.common_records, 5u);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
  EXPECT_DOUBLE_EQ(q.cluster_precision, 1.0);
  EXPECT_DOUBLE_EQ(q.cluster_recall, 1.0);
  EXPECT_DOUBLE_EQ(q.cluster_f1, 1.0);
  EXPECT_DOUBLE_EQ(JaccardAgreement(truth, truth), 1.0);
}

TEST(EntityMetricsTest, AllSingletonPredictionHandComputed) {
  // Truth {0,1},{2}; prediction all singletons.
  const data::Workload w({{0, 1, 0.9, true}, {0, 2, 0.2, false}});
  const EntityClustering truth = TruthClustering(w, kDedup);
  const EntityClustering singles =
      EntityClustering::FromLabels(w, std::vector<int>(w.size(), 0), kDedup);

  const EntityQuality q = EntityQualityOf(truth, singles);
  // No predicted co-clustered pair exists: precision is vacuously 1.
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  // The one truth pair (0,1) is missed entirely.
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.f1, 0.0);
  // Exactly one of the three predicted singletons ({2}) equals a truth
  // cluster; one of the two truth clusters is recovered.
  EXPECT_DOUBLE_EQ(q.cluster_precision, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(q.cluster_recall, 1.0 / 2.0);

  // Directional Jaccard, record-weighted: singles -> truth gives records 0
  // and 1 a best overlap of 1/2 each and record 2 a 1; truth -> singles is
  // 1/2 for the pair-cluster (2 records) and 1 for {2}.
  EXPECT_DOUBLE_EQ(MeanBestJaccard(singles, truth), (0.5 + 0.5 + 1.0) / 3.0);
  EXPECT_DOUBLE_EQ(MeanBestJaccard(truth, singles), (0.5 * 2 + 1.0) / 3.0);
  EXPECT_DOUBLE_EQ(JaccardAgreement(truth, singles), 2.0 / 3.0);
}

TEST(EntityMetricsTest, PairwiseContingencyHandComputed) {
  // Truth {0,1,2},{3,4}; prediction {0,1},{2,3},{4}.
  const data::Workload w({{0, 1, 0.5, true},
                          {1, 2, 0.6, true},
                          {3, 4, 0.7, true},
                          {2, 3, 0.8, false}});
  const EntityClustering truth = TruthClustering(w, kDedup);
  ASSERT_EQ(truth.num_entities(), 2u);
  // Sorted order is by similarity: (0,1), (1,2), (3,4), (2,3).
  const EntityClustering predicted =
      EntityClustering::FromLabels(w, {1, 0, 0, 1}, kDedup);
  ASSERT_EQ(predicted.num_entities(), 3u);

  const EntityQuality q = EntityQualityOf(truth, predicted);
  // Predicted co-pairs: (0,1) and (2,3) -> 2; truth co-pairs: 3 + 1 = 4;
  // agreeing co-pairs: only (0,1).
  EXPECT_DOUBLE_EQ(q.precision, 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(q.f1, 2.0 * 0.5 * 0.25 / (0.5 + 0.25));
  // No predicted cluster equals a truth cluster exactly.
  EXPECT_DOUBLE_EQ(q.cluster_precision, 0.0);
  EXPECT_DOUBLE_EQ(q.cluster_recall, 0.0);
  EXPECT_DOUBLE_EQ(q.cluster_f1, 0.0);
}

TEST(EntityMetricsTest, DisjointRecordUniversesAreVacuous) {
  const data::Workload a({{0, 1, 0.5, true}});
  const data::Workload b({{7, 8, 0.5, true}});
  const EntityClustering ca = TruthClustering(a, kDedup);
  const EntityClustering cb = TruthClustering(b, kDedup);
  const EntityQuality q = EntityQualityOf(ca, cb);
  EXPECT_EQ(q.common_records, 0u);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(MeanBestJaccard(ca, cb), 1.0);
}

TEST(EntityMetricsTest, TruthClusteringUsesGroundTruth) {
  const data::Workload w({{0, 1, 0.9, true}, {1, 2, 0.8, false}});
  const EntityClustering truth = TruthClustering(w, kDedup);
  EXPECT_EQ(truth.num_entities(), 2u);
  EXPECT_EQ(truth.EntityOf({0, 0}), truth.EntityOf({0, 1}));
  EXPECT_NE(truth.EntityOf({0, 1}), truth.EntityOf({0, 2}));
}

}  // namespace
}  // namespace humo
