#include "eval/report.h"

#include <gtest/gtest.h>

namespace humo::eval {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  // Separator rule present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TableTest, PadsColumnsToWidestCell) {
  Table t({"h"});
  t.AddRow({"longcellvalue"});
  const std::string s = t.ToString();
  // Header line must be as wide as the data line.
  const size_t first_newline = s.find('\n');
  const size_t second_newline = s.find('\n', first_newline + 1);
  const size_t third_newline = s.find('\n', second_newline + 1);
  const std::string header_line = s.substr(0, first_newline);
  const std::string data_line =
      s.substr(second_newline + 1, third_newline - second_newline - 1);
  EXPECT_EQ(header_line.size(), data_line.size());
}

TEST(TableTest, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only-one"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

TEST(FmtTest, Decimals) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(1.0, 4), "1.0000");
}

TEST(FmtPercentTest, ScalesFraction) {
  EXPECT_EQ(FmtPercent(0.0731), "7.31%");
  EXPECT_EQ(FmtPercent(1.0, 0), "100%");
}

}  // namespace
}  // namespace humo::eval
