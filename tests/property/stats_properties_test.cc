#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/distributions.h"
#include "stats/proportion.h"
#include "stats/stratified.h"

namespace humo::stats {
namespace {

/// Property sweep over the t distribution: quantile/CDF inversion across a
/// parameter grid.
struct TCase {
  double df;
  double p;
};

class StudentTPropertyTest : public ::testing::TestWithParam<TCase> {};

TEST_P(StudentTPropertyTest, QuantileInvertsCdf) {
  const auto [df, p] = GetParam();
  const double t = StudentTQuantile(p, df);
  EXPECT_NEAR(StudentTCdf(t, df), p, 1e-7);
}

TEST_P(StudentTPropertyTest, SymmetryOfQuantiles) {
  const auto [df, p] = GetParam();
  EXPECT_NEAR(StudentTQuantile(p, df), -StudentTQuantile(1.0 - p, df), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StudentTPropertyTest,
    ::testing::Values(TCase{1, 0.9}, TCase{1, 0.99}, TCase{2, 0.8},
                      TCase{3, 0.95}, TCase{5, 0.9}, TCase{10, 0.75},
                      TCase{30, 0.95}, TCase{100, 0.99}, TCase{250, 0.9}),
    [](const ::testing::TestParamInfo<TCase>& info) {
      return "df" + std::to_string(static_cast<int>(info.param.df)) + "_p" +
             std::to_string(static_cast<int>(info.param.p * 100));
    });

/// Interval-method properties swept over (positives, n) grids.
class IntervalPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(IntervalPropertyTest, OrderedAndBounded) {
  const auto [k, n] = GetParam();
  for (double conf : {0.8, 0.9, 0.95, 0.99}) {
    for (auto* fn : {WaldInterval, WilsonInterval, ClopperPearsonInterval,
                     AgrestiCoullInterval}) {
      const auto iv = fn(k, n, conf);
      EXPECT_LE(iv.lo, iv.hi);
      EXPECT_GE(iv.lo, 0.0);
      EXPECT_LE(iv.hi, 1.0);
    }
  }
}

TEST_P(IntervalPropertyTest, WilsonContainsPointEstimate) {
  const auto [k, n] = GetParam();
  const double p = n == 0 ? 0.0 : static_cast<double>(k) / n;
  const auto iv = WilsonInterval(k, n, 0.9);
  EXPECT_LE(iv.lo, p + 1e-12);
  EXPECT_GE(iv.hi, p - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IntervalPropertyTest,
    ::testing::Values(std::pair<size_t, size_t>{0, 10},
                      std::pair<size_t, size_t>{1, 10},
                      std::pair<size_t, size_t>{5, 10},
                      std::pair<size_t, size_t>{10, 10},
                      std::pair<size_t, size_t>{0, 100},
                      std::pair<size_t, size_t>{3, 100},
                      std::pair<size_t, size_t>{50, 100},
                      std::pair<size_t, size_t>{97, 100},
                      std::pair<size_t, size_t>{100, 100},
                      std::pair<size_t, size_t>{500, 1000}),
    [](const ::testing::TestParamInfo<std::pair<size_t, size_t>>& info) {
      return "k" + std::to_string(info.param.first) + "_n" +
             std::to_string(info.param.second);
    });

/// Stratified estimates: pooling strata can never reduce the total point
/// estimate below the sum of parts, and intervals nest sensibly.
TEST(StratifiedPropertyTest, EstimateAdditivity) {
  Rng rng(17);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<Stratum> a(3), b(2);
    auto randomize = [&](std::vector<Stratum>* v) {
      for (auto& s : *v) {
        s.population = 50 + rng.NextBelow(500);
        s.sample_size =
            2 + rng.NextBelow(std::min<uint64_t>(40, s.population - 1));
        s.sample_positives = rng.NextBelow(s.sample_size + 1);
      }
    };
    randomize(&a);
    randomize(&b);
    std::vector<Stratum> both = a;
    both.insert(both.end(), b.begin(), b.end());
    const auto ea = CombineStrata(a);
    const auto eb = CombineStrata(b);
    const auto eboth = CombineStrata(both);
    EXPECT_NEAR(eboth.total_mean, ea.total_mean + eb.total_mean, 1e-9);
    EXPECT_NEAR(eboth.total_stddev * eboth.total_stddev,
                ea.total_stddev * ea.total_stddev +
                    eb.total_stddev * eb.total_stddev,
                1e-6);
    EXPECT_EQ(eboth.population, ea.population + eb.population);
  }
}

TEST(StratifiedPropertyTest, BoundsAlwaysBracketMean) {
  Rng rng(23);
  for (int rep = 0; rep < 100; ++rep) {
    std::vector<Stratum> strata(1 + rng.NextBelow(6));
    for (auto& s : strata) {
      s.population = 10 + rng.NextBelow(1000);
      s.sample_size = std::min<size_t>(
          s.population, 2 + rng.NextBelow(50));
      s.sample_positives = rng.NextBelow(s.sample_size + 1);
    }
    const auto est = CombineStrata(strata);
    for (double conf : {0.6, 0.9, 0.99}) {
      EXPECT_LE(est.LowerBound(conf), est.total_mean + 1e-9);
      EXPECT_GE(est.UpperBound(conf) + 1e-9, est.total_mean);
      EXPECT_GE(est.LowerBound(conf), 0.0);
      EXPECT_LE(est.UpperBound(conf),
                static_cast<double>(est.population));
    }
  }
}

/// Randomized interval properties: on several hundred (positives, n) draws,
/// the Wilson and Beta-posterior intervals must bracket the MLE k/n and
/// widen monotonically in confidence.
TEST(IntervalRandomPropertyTest, WilsonAndBetaBracketTheMle) {
  Rng rng(2024);
  for (int rep = 0; rep < 300; ++rep) {
    const size_t n = 1 + rng.NextBelow(2000);
    const size_t k = rng.NextBelow(n + 1);
    const double mle = static_cast<double>(k) / static_cast<double>(n);
    for (double conf : {0.5, 0.8, 0.9, 0.95, 0.99}) {
      const auto wilson = WilsonInterval(k, n, conf);
      EXPECT_LE(wilson.lo, mle + 1e-12) << "k=" << k << " n=" << n;
      EXPECT_GE(wilson.hi, mle - 1e-12) << "k=" << k << " n=" << n;
      const auto beta = BetaPosteriorInterval(k, n, conf);
      // The uniform-prior posterior mode is the MLE; the equal-tailed
      // interval must straddle it except in the degenerate k=0 / k=n
      // corners where the interval is one-sided by construction.
      if (k > 0 && k < n) {
        EXPECT_LE(beta.lo, mle + 1e-9) << "k=" << k << " n=" << n;
        EXPECT_GE(beta.hi, mle - 1e-9) << "k=" << k << " n=" << n;
      }
      EXPECT_LE(beta.lo, beta.hi);
      EXPECT_GE(beta.lo, 0.0);
      EXPECT_LE(beta.hi, 1.0);
    }
  }
}

TEST(IntervalRandomPropertyTest, IntervalsWidenMonotonicallyInConfidence) {
  Rng rng(77);
  for (int rep = 0; rep < 300; ++rep) {
    const size_t n = 2 + rng.NextBelow(1000);
    const size_t k = rng.NextBelow(n + 1);
    double prev_wilson = -1.0, prev_beta = -1.0;
    for (double conf : {0.5, 0.7, 0.9, 0.99}) {
      const auto wilson = WilsonInterval(k, n, conf);
      const double w_width = wilson.hi - wilson.lo;
      EXPECT_GE(w_width + 1e-12, prev_wilson)
          << "k=" << k << " n=" << n << " conf=" << conf;
      prev_wilson = w_width;
      const auto beta = BetaPosteriorInterval(k, n, conf);
      const double b_width = beta.hi - beta.lo;
      EXPECT_GE(b_width + 1e-9, prev_beta)
          << "k=" << k << " n=" << n << " conf=" << conf;
      prev_beta = b_width;
    }
  }
}

TEST(IntervalRandomPropertyTest, BetaTailBoundsBracketTheInterval) {
  Rng rng(303);
  for (int rep = 0; rep < 200; ++rep) {
    const size_t n = 1 + rng.NextBelow(500);
    const size_t k = rng.NextBelow(n + 1);
    const double upper = BetaPosteriorUpperBound(k, n, 0.95);
    const double lower = BetaPosteriorLowerBound(k, n, 0.95);
    EXPECT_LE(lower, upper) << "k=" << k << " n=" << n;
    EXPECT_GE(lower, 0.0);
    EXPECT_LE(upper, 1.0);
  }
}

/// AllocateSamples invariants over randomized strata: the allocation sums
/// EXACTLY to min(budget, total population), never exceeds any stratum's
/// population, and is deterministic.
TEST(AllocationPropertyTest, SumsExactlyToBudget) {
  Rng rng(11);
  for (int rep = 0; rep < 300; ++rep) {
    std::vector<Stratum> strata(1 + rng.NextBelow(12));
    size_t total_pop = 0;
    for (auto& s : strata) {
      s.population = rng.NextBelow(400);  // empty strata allowed
      total_pop += s.population;
    }
    const size_t budget = rng.NextBelow(total_pop + 200);
    const auto alloc = AllocateSamples(strata, budget);
    ASSERT_EQ(alloc.size(), strata.size());
    size_t sum = 0;
    for (size_t i = 0; i < alloc.size(); ++i) {
      EXPECT_LE(alloc[i], strata[i].population) << "rep " << rep;
      sum += alloc[i];
    }
    EXPECT_EQ(sum, std::min(budget, total_pop)) << "rep " << rep;
  }
}

TEST(AllocationPropertyTest, DeterministicAndProportionalOnEqualStrata) {
  std::vector<Stratum> strata(4);
  for (auto& s : strata) s.population = 100;
  const auto a = AllocateSamples(strata, 202);
  const auto b = AllocateSamples(strata, 202);
  EXPECT_EQ(a, b);
  // 202 over four equal strata: two get 51, two get 50 (index-ordered
  // remainder tie-break), never anything wilder.
  size_t sum = 0;
  for (size_t v : a) {
    EXPECT_GE(v, 50u);
    EXPECT_LE(v, 51u);
    sum += v;
  }
  EXPECT_EQ(sum, 202u);
}

TEST(AllocationPropertyTest, CapsAtPopulationAndRedistributes) {
  std::vector<Stratum> strata(3);
  strata[0].population = 5;
  strata[1].population = 1000;
  strata[2].population = 10;
  const auto alloc = AllocateSamples(strata, 900);
  EXPECT_LE(alloc[0], 5u);
  EXPECT_LE(alloc[2], 10u);
  EXPECT_EQ(alloc[0] + alloc[1] + alloc[2], 900u);
  // The big stratum absorbs what the capped ones cannot take.
  EXPECT_GE(alloc[1], 885u);
}

TEST(NormalPropertyTest, CriticalValueMonotoneInConfidence) {
  double prev = 0.0;
  for (double conf = 0.5; conf < 0.999; conf += 0.05) {
    const double z = NormalTwoSidedCritical(conf);
    EXPECT_GT(z, prev);
    prev = z;
  }
}

}  // namespace
}  // namespace humo::stats
