#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "text/edit_distance.h"
#include "text/jaro.h"
#include "text/token_similarity.h"

namespace humo::text {
namespace {

std::string RandomWord(humo::Rng* rng, size_t max_len = 12) {
  const size_t len = 1 + rng->NextBelow(max_len);
  std::string s;
  for (size_t i = 0; i < len; ++i)
    s.push_back(static_cast<char>('a' + rng->NextBelow(6)));  // small alphabet
  return s;
}

/// Metric and normalization properties checked over random string pairs.
class TextPropertyTest : public ::testing::Test {
 protected:
  humo::Rng rng_{12345};
};

TEST_F(TextPropertyTest, LevenshteinIsAMetric) {
  for (int rep = 0; rep < 300; ++rep) {
    const std::string a = RandomWord(&rng_), b = RandomWord(&rng_),
                      c = RandomWord(&rng_);
    const size_t dab = LevenshteinDistance(a, b);
    const size_t dba = LevenshteinDistance(b, a);
    const size_t dac = LevenshteinDistance(a, c);
    const size_t dcb = LevenshteinDistance(c, b);
    EXPECT_EQ(dab, dba);                        // symmetry
    EXPECT_EQ(LevenshteinDistance(a, a), 0u);   // identity
    EXPECT_LE(dab, dac + dcb);                  // triangle inequality
  }
}

TEST_F(TextPropertyTest, LevenshteinBoundedByLongerLength) {
  for (int rep = 0; rep < 300; ++rep) {
    const std::string a = RandomWord(&rng_), b = RandomWord(&rng_);
    EXPECT_LE(LevenshteinDistance(a, b), std::max(a.size(), b.size()));
    EXPECT_GE(LevenshteinDistance(a, b),
              a.size() > b.size() ? a.size() - b.size() : b.size() - a.size());
  }
}

TEST_F(TextPropertyTest, DamerauNeverExceedsLevenshtein) {
  for (int rep = 0; rep < 300; ++rep) {
    const std::string a = RandomWord(&rng_), b = RandomWord(&rng_);
    EXPECT_LE(DamerauLevenshteinDistance(a, b), LevenshteinDistance(a, b));
  }
}

TEST_F(TextPropertyTest, SimilaritiesInUnitInterval) {
  for (int rep = 0; rep < 300; ++rep) {
    const std::string a = RandomWord(&rng_), b = RandomWord(&rng_);
    for (double s : {LevenshteinSimilarity(a, b), JaroSimilarity(a, b),
                     JaroWinklerSimilarity(a, b), LcsSimilarity(a, b),
                     QGramJaccard(a, b)}) {
      EXPECT_GE(s, 0.0) << a << " / " << b;
      EXPECT_LE(s, 1.0) << a << " / " << b;
    }
  }
}

TEST_F(TextPropertyTest, JaroWinklerAtLeastJaro) {
  for (int rep = 0; rep < 300; ++rep) {
    const std::string a = RandomWord(&rng_), b = RandomWord(&rng_);
    EXPECT_GE(JaroWinklerSimilarity(a, b) + 1e-12, JaroSimilarity(a, b));
  }
}

TEST_F(TextPropertyTest, SetSimilaritiesSymmetric) {
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<std::string> a, b;
    const size_t na = 1 + rng_.NextBelow(6), nb = 1 + rng_.NextBelow(6);
    for (size_t i = 0; i < na; ++i) a.push_back(RandomWord(&rng_, 5));
    for (size_t i = 0; i < nb; ++i) b.push_back(RandomWord(&rng_, 5));
    EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), JaccardSimilarity(b, a));
    EXPECT_DOUBLE_EQ(DiceSimilarity(a, b), DiceSimilarity(b, a));
    EXPECT_DOUBLE_EQ(OverlapCoefficient(a, b), OverlapCoefficient(b, a));
  }
}

TEST_F(TextPropertyTest, JaccardLeDiceLeOverlap) {
  // Classic ordering: jaccard <= dice <= overlap for non-empty sets.
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<std::string> a, b;
    const size_t na = 1 + rng_.NextBelow(6), nb = 1 + rng_.NextBelow(6);
    for (size_t i = 0; i < na; ++i) a.push_back(RandomWord(&rng_, 4));
    for (size_t i = 0; i < nb; ++i) b.push_back(RandomWord(&rng_, 4));
    const double j = JaccardSimilarity(a, b);
    const double d = DiceSimilarity(a, b);
    const double o = OverlapCoefficient(a, b);
    EXPECT_LE(j, d + 1e-12);
    EXPECT_LE(d, o + 1e-12);
  }
}

TEST_F(TextPropertyTest, EditDistanceSingleEditNeighbors) {
  // Mutating one character changes Levenshtein distance by exactly <= 1.
  for (int rep = 0; rep < 200; ++rep) {
    std::string a = RandomWord(&rng_, 10);
    std::string b = a;
    const size_t pos = rng_.NextBelow(b.size());
    b[pos] = static_cast<char>('a' + rng_.NextBelow(26));
    EXPECT_LE(LevenshteinDistance(a, b), 1u);
  }
}

}  // namespace
}  // namespace humo::text
