#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"

namespace humo::linalg {
namespace {

/// Property sweep behind the streaming epoch-append path: on random SPD
/// matrices of many shapes, extending a factor with Cholesky::Append must
/// reproduce the from-scratch factorization of the bordered matrix BIT FOR
/// BIT (both land on zero jitter for these well-conditioned inputs). A few
/// hundred seeded cases per property; any failure prints its (n, k, seed)
/// cell.
Matrix RandomSpd(size_t n, uint64_t seed, double diag) {
  Rng rng(seed);
  Matrix b(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) b(i, j) = rng.NextDouble(-1.0, 1.0);
  Matrix a = b * b.Transpose();
  a.AddToDiagonal(diag);
  return a;
}

Matrix LeadingBlock(const Matrix& a, size_t n) {
  Matrix lead(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) lead(i, j) = a(i, j);
  return lead;
}

Matrix TrailingRows(const Matrix& a, size_t k) {
  const size_t n = a.rows();
  Matrix rows(k, n);
  for (size_t i = 0; i < k; ++i)
    for (size_t c = 0; c < n; ++c) rows(i, c) = a(n - k + i, c);
  return rows;
}

struct AppendCase {
  size_t n;  // leading block factored first
  size_t k;  // appended rows
};

class CholeskyAppendPropertyTest
    : public ::testing::TestWithParam<AppendCase> {};

TEST_P(CholeskyAppendPropertyTest, AppendBitIdenticalToFactor) {
  const auto [n, k] = GetParam();
  for (uint64_t seed = 0; seed < 25; ++seed) {
    const Matrix ext = RandomSpd(n + k, 1000 * n + 10 * k + seed, 1.0);
    auto incremental = Cholesky::Factor(LeadingBlock(ext, n));
    ASSERT_TRUE(incremental.ok()) << "n=" << n << " seed=" << seed;
    ASSERT_TRUE(incremental->Append(TrailingRows(ext, k)).ok())
        << "n=" << n << " k=" << k << " seed=" << seed;

    auto scratch = Cholesky::Factor(ext);
    ASSERT_TRUE(scratch.ok());
    ASSERT_EQ(incremental->L().rows(), n + k);
    ASSERT_EQ(incremental->jitter_used(), scratch->jitter_used());
    for (size_t i = 0; i < n + k; ++i) {
      for (size_t j = 0; j <= i; ++j) {
        ASSERT_EQ(incremental->L()(i, j), scratch->L()(i, j))
            << "n=" << n << " k=" << k << " seed=" << seed << " L(" << i
            << "," << j << ")";
      }
    }
    ASSERT_EQ(incremental->LogDeterminant(), scratch->LogDeterminant());
  }
}

TEST_P(CholeskyAppendPropertyTest, ExtendedLeavesOriginalUntouched) {
  const auto [n, k] = GetParam();
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const Matrix ext = RandomSpd(n + k, 77 * n + 3 * k + seed, 1.0);
    auto base = Cholesky::Factor(LeadingBlock(ext, n));
    ASSERT_TRUE(base.ok());
    const Matrix before = base->L();
    auto extended = base->Extended(TrailingRows(ext, k));
    ASSERT_TRUE(extended.ok()) << "n=" << n << " k=" << k << " seed=" << seed;
    // The source factor is untouched...
    ASSERT_EQ(base->L().rows(), n);
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j <= i; ++j)
        ASSERT_EQ(base->L()(i, j), before(i, j));
    // ...and the extension equals the from-scratch factorization.
    auto scratch = Cholesky::Factor(ext);
    ASSERT_TRUE(scratch.ok());
    for (size_t i = 0; i < n + k; ++i)
      for (size_t j = 0; j <= i; ++j)
        ASSERT_EQ(extended->L()(i, j), scratch->L()(i, j))
            << "n=" << n << " k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CholeskyAppendPropertyTest,
    ::testing::Values(AppendCase{1, 1}, AppendCase{2, 1}, AppendCase{3, 2},
                      AppendCase{5, 1}, AppendCase{5, 5}, AppendCase{8, 3},
                      AppendCase{12, 4}, AppendCase{16, 1}, AppendCase{16, 8},
                      AppendCase{24, 6}, AppendCase{32, 2},
                      AppendCase{32, 16}),
    [](const ::testing::TestParamInfo<AppendCase>& info) {
      return "n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k);
    });

TEST(CholeskySolvePropertyTest, SolveInvertsMultiplication) {
  // Random solves stay consistent with the factored matrix: A (A^-1 b) = b.
  Rng rng(5);
  for (int rep = 0; rep < 100; ++rep) {
    const size_t n = 1 + rng.NextBelow(20);
    const Matrix a = RandomSpd(n, 900 + static_cast<uint64_t>(rep), 2.0);
    auto chol = Cholesky::Factor(a);
    ASSERT_TRUE(chol.ok());
    Vector b(n);
    for (size_t i = 0; i < n; ++i) b[i] = rng.NextDouble(-3.0, 3.0);
    const Vector x = chol->Solve(b);
    const Vector back = a * x;
    for (size_t i = 0; i < n; ++i)
      EXPECT_NEAR(back[i], b[i], 1e-8) << "rep " << rep << " i " << i;
  }
}

}  // namespace
}  // namespace humo::linalg
