#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "data/entity_graph_generator.h"
#include "data/workload.h"
#include "entity/entity_clustering.h"
#include "entity/transitivity_repair.h"
#include "eval/entity_metrics.h"

namespace humo {
namespace {

using data::EntityGraph;
using data::EntityGraphConfig;
using data::GenerateEntityGraph;
using data::NoisyLabels;
using entity::ClusteringOptions;
using entity::CountDisagreements;
using entity::EntityClustering;
using entity::RepairResult;
using entity::RepairTransitivity;

constexpr ClusteringOptions kDedup{0, 0};

/// Property sweep over a randomized seed x size grid: the entity layer's
/// advertised invariants must hold on every realization, not just the
/// hand-picked fixtures of the unit tests.
struct EntityPropertyCase {
  uint64_t seed;
  size_t num_entities;
  double noise;
};

std::string CaseName(const ::testing::TestParamInfo<EntityPropertyCase>& info) {
  return "seed" + std::to_string(info.param.seed) + "_n" +
         std::to_string(info.param.num_entities) + "_noise" +
         std::to_string(static_cast<int>(info.param.noise * 1000));
}

class EntityPropertyTest : public ::testing::TestWithParam<EntityPropertyCase> {
 protected:
  static EntityGraph Generate(const EntityPropertyCase& pc) {
    EntityGraphConfig config;
    config.num_entities = pc.num_entities;
    config.seed = pc.seed;
    return GenerateEntityGraph(config);
  }
};

TEST_P(EntityPropertyTest, ClusteringIsIdempotentAndPermutationInvariant) {
  const EntityPropertyCase pc = GetParam();
  const EntityGraph g = Generate(pc);
  const std::vector<int> labels =
      NoisyLabels(g.workload, pc.noise, pc.seed ^ 0xA5A5);

  // Idempotence: rebuilding from the same inputs is bit-identical.
  const EntityClustering a =
      EntityClustering::FromLabels(g.workload, labels, kDedup);
  const EntityClustering b =
      EntityClustering::FromLabels(g.workload, labels, kDedup);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Checksum(), b.Checksum());

  // Permutation invariance: a workload rebuilt from shuffled pairs
  // canonicalizes to the same sorted sequence, so the clustering over it is
  // bit-identical too.
  std::vector<data::InstancePair> pairs = g.workload.MaterializePairs();
  Rng rng(pc.seed * 31 + 7);
  rng.Shuffle(&pairs);
  const data::Workload shuffled(std::move(pairs));
  ASSERT_EQ(shuffled.size(), g.workload.size());
  for (size_t i = 0; i < shuffled.size(); ++i) {
    ASSERT_EQ(shuffled.Similarity(i), g.workload.Similarity(i));
    ASSERT_EQ(shuffled.left_id_data()[i], g.workload.left_id_data()[i]);
    ASSERT_EQ(shuffled.right_id_data()[i], g.workload.right_id_data()[i]);
  }
  const EntityClustering c =
      EntityClustering::FromLabels(shuffled, labels, kDedup);
  EXPECT_EQ(a, c);
  EXPECT_EQ(a.Checksum(), c.Checksum());
}

TEST_P(EntityPropertyTest, ClusteringAndRepairAreThreadCountInvariant) {
  const EntityPropertyCase pc = GetParam();
  const EntityGraph g = Generate(pc);
  const std::vector<int> labels =
      NoisyLabels(g.workload, pc.noise, pc.seed ^ 0xA5A5);

  uint64_t cluster_checksum[2] = {0, 0};
  uint64_t repair_checksum[2] = {0, 0};
  std::vector<int> repaired_labels[2];
  size_t moves[2] = {0, 0};
  const size_t thread_counts[2] = {1, 4};
  for (int t = 0; t < 2; ++t) {
    ThreadPool::SetGlobalThreads(thread_counts[t]);
    cluster_checksum[t] =
        EntityClustering::FromLabels(g.workload, labels, kDedup).Checksum();
    const RepairResult r = RepairTransitivity(g.workload, labels, kDedup);
    repair_checksum[t] = r.clustering.Checksum();
    repaired_labels[t] = r.labels;
    moves[t] = r.stats.moves_applied;
  }
  ThreadPool::SetGlobalThreads(0);  // restore the default pool

  EXPECT_EQ(cluster_checksum[0], cluster_checksum[1]);
  EXPECT_EQ(repair_checksum[0], repair_checksum[1]);
  EXPECT_EQ(repaired_labels[0], repaired_labels[1]);
  EXPECT_EQ(moves[0], moves[1]);
}

TEST_P(EntityPropertyTest, RepairReachesTransitiveClosureWithoutRegressing) {
  const EntityPropertyCase pc = GetParam();
  const EntityGraph g = Generate(pc);
  const std::vector<int> labels =
      NoisyLabels(g.workload, pc.noise, pc.seed ^ 0xA5A5);

  const RepairResult r = RepairTransitivity(g.workload, labels, kDedup);
  // Transitive closure: the repaired labels ARE a clustering relation.
  EXPECT_EQ(CountDisagreements(g.workload, r.labels, r.clustering, kDedup),
            0u);
  // Repair never increases disagreements against the observed labels.
  EXPECT_LE(r.stats.disagreements_after, r.stats.disagreements_before);
  // And with noise present there is something to repair.
  if (pc.noise > 0.0) {
    EXPECT_GT(r.stats.disagreements_before, 0u);
  }
  // Idempotence of the full repair pass.
  const RepairResult again = RepairTransitivity(g.workload, r.labels, kDedup);
  EXPECT_EQ(again.labels, r.labels);
  EXPECT_EQ(again.stats.disagreements_before, 0u);
  EXPECT_EQ(again.stats.moves_applied, 0u);

  // Entity metrics against the (consistent) truth stay well-formed.
  const EntityClustering truth = eval::TruthClustering(g.workload, kDedup);
  const eval::EntityQuality q = eval::EntityQualityOf(truth, r.clustering);
  EXPECT_GE(q.precision, 0.0);
  EXPECT_LE(q.precision, 1.0);
  EXPECT_GE(q.recall, 0.0);
  EXPECT_LE(q.recall, 1.0);
  const double agreement = eval::JaccardAgreement(truth, r.clustering);
  EXPECT_GE(agreement, 0.0);
  EXPECT_LE(agreement, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EntityPropertyTest,
    ::testing::Values(EntityPropertyCase{1, 60, 0.0},
                      EntityPropertyCase{1, 60, 0.05},
                      EntityPropertyCase{2, 250, 0.02},
                      EntityPropertyCase{3, 250, 0.08},
                      EntityPropertyCase{4, 800, 0.01},
                      EntityPropertyCase{5, 800, 0.05}),
    CaseName);

}  // namespace
}  // namespace humo
