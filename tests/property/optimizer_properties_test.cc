#include <gtest/gtest.h>

#include "core/baseline_optimizer.h"
#include "core/hybrid_optimizer.h"
#include "core/partial_sampling_optimizer.h"
#include "core/solution.h"
#include "data/logistic_generator.h"
#include "eval/evaluation.h"

namespace humo {
namespace {

/// Parameterized property sweep: every optimizer, across a grid of workload
/// shapes and quality targets, must (a) return a structurally valid
/// solution, (b) meet the quality requirement on monotone workloads, and
/// (c) account human cost consistently.
struct PropertyCase {
  const char* optimizer;  // "base" | "samp" | "hybr"
  double tau;
  double level;  // alpha = beta
};

class OptimizerPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(OptimizerPropertyTest, ValidSolutionMeetsQuality) {
  const PropertyCase pc = GetParam();
  data::LogisticGeneratorOptions gen;
  gen.num_pairs = 20000;
  gen.pairs_per_subset = 200;
  gen.tau = pc.tau;
  gen.sigma = 0.05;
  gen.seed = 42;
  const data::Workload w = data::GenerateLogisticWorkload(gen);
  core::SubsetPartition p(&w, 200);
  core::Oracle oracle(&w);
  const core::QualityRequirement req{pc.level, pc.level, 0.9};

  Result<core::HumoSolution> sol = Status::Internal("unset");
  if (std::string(pc.optimizer) == "base") {
    sol = core::BaselineOptimizer().Optimize(p, req, &oracle);
  } else if (std::string(pc.optimizer) == "samp") {
    sol = core::PartialSamplingOptimizer().Optimize(p, req, &oracle);
  } else {
    sol = core::HybridOptimizer().Optimize(p, req, &oracle);
  }
  ASSERT_TRUE(sol.ok());

  // Property 1: structural validity.
  EXPECT_LE(sol->h_lo, sol->h_hi);
  EXPECT_LT(sol->h_hi, p.num_subsets());

  // Property 2: final labeling meets the requirement (tolerance for the
  // theta < 1 confidence semantics of the sampling optimizers).
  const auto result = core::ApplySolution(p, *sol, &oracle);
  const auto q = eval::QualityOf(w, result.labels);
  const double slack = std::string(pc.optimizer) == "base" ? 0.0 : 0.03;
  EXPECT_GE(q.precision, pc.level - slack)
      << pc.optimizer << " tau=" << pc.tau;
  EXPECT_GE(q.recall, pc.level - slack) << pc.optimizer << " tau=" << pc.tau;

  // Property 3: cost accounting. The oracle's distinct count equals the
  // reported cost and is at least |DH|.
  EXPECT_EQ(result.human_cost, oracle.cost());
  EXPECT_GE(result.human_cost, p.PairsInRange(sol->h_lo, sol->h_hi));
  EXPECT_LE(result.human_cost, w.size());

  // Property 4: labels are zone-consistent — everything below DH unmatch,
  // everything above DH match.
  const size_t dh_begin = p[sol->h_lo].begin;
  const size_t dh_end = p[sol->h_hi].end;
  for (size_t i = 0; i < dh_begin; ++i) ASSERT_EQ(result.labels[i], 0);
  for (size_t i = dh_end; i < w.size(); ++i) ASSERT_EQ(result.labels[i], 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizerPropertyTest,
    ::testing::Values(
        PropertyCase{"base", 8.0, 0.8}, PropertyCase{"base", 14.0, 0.9},
        PropertyCase{"base", 18.0, 0.95}, PropertyCase{"samp", 8.0, 0.8},
        PropertyCase{"samp", 14.0, 0.9}, PropertyCase{"samp", 18.0, 0.95},
        PropertyCase{"hybr", 8.0, 0.8}, PropertyCase{"hybr", 14.0, 0.9},
        PropertyCase{"hybr", 18.0, 0.95}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return std::string(info.param.optimizer) + "_tau" +
             std::to_string(static_cast<int>(info.param.tau)) + "_q" +
             std::to_string(static_cast<int>(info.param.level * 100));
    });

/// DH monotonicity in the quality requirement: a strictly stronger
/// requirement never yields a strictly smaller human zone for BASE
/// (deterministic optimizer, same workload).
TEST(OptimizerMonotonicityTest, BaseDhGrowsWithRequirement) {
  data::LogisticGeneratorOptions gen;
  gen.num_pairs = 20000;
  gen.pairs_per_subset = 200;
  gen.tau = 12.0;
  gen.sigma = 0.05;
  const data::Workload w = data::GenerateLogisticWorkload(gen);
  core::SubsetPartition p(&w, 200);
  size_t prev_dh = 0;
  for (double level : {0.7, 0.8, 0.9, 0.95}) {
    core::Oracle oracle(&w);
    const core::QualityRequirement req{level, level, 0.9};
    auto sol = core::BaselineOptimizer().Optimize(p, req, &oracle);
    ASSERT_TRUE(sol.ok());
    const size_t dh = p.PairsInRange(sol->h_lo, sol->h_hi);
    EXPECT_GE(dh + 400, prev_dh) << "level " << level;  // one-subset slack
    prev_dh = dh;
  }
}

/// Oracle determinism: running the same optimizer twice on fresh oracles
/// with the same seed gives identical solutions and costs.
TEST(OptimizerDeterminismTest, SampDeterministicPerSeed) {
  data::LogisticGeneratorOptions gen;
  gen.num_pairs = 20000;
  gen.pairs_per_subset = 200;
  const data::Workload w = data::GenerateLogisticWorkload(gen);
  core::SubsetPartition p(&w, 200);
  const core::QualityRequirement req{0.85, 0.85, 0.9};
  core::PartialSamplingOptions opts;
  opts.seed = 777;
  core::Oracle o1(&w), o2(&w);
  auto s1 = core::PartialSamplingOptimizer(opts).Optimize(p, req, &o1);
  auto s2 = core::PartialSamplingOptimizer(opts).Optimize(p, req, &o2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->h_lo, s2->h_lo);
  EXPECT_EQ(s1->h_hi, s2->h_hi);
  EXPECT_EQ(o1.cost(), o2.cost());
}

}  // namespace
}  // namespace humo
