#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace humo::linalg {
namespace {

Matrix Spd3() {
  // A = B B^T + I for a fixed B is symmetric positive definite.
  Matrix b = Matrix::FromRows({{1, 2, 0}, {0, 1, 1}, {2, 0, 1}});
  Matrix a = b * b.Transpose();
  a.AddToDiagonal(1.0);
  return a;
}

TEST(CholeskyTest, FactorReconstructs) {
  const Matrix a = Spd3();
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  const Matrix recon = chol->L() * chol->L().Transpose();
  EXPECT_LT(recon.MaxAbsDiff(a), 1e-10);
  EXPECT_DOUBLE_EQ(chol->jitter_used(), 0.0);
}

TEST(CholeskyTest, SolveMatchesDirectCheck) {
  const Matrix a = Spd3();
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  const Vector b = {1.0, -2.0, 0.5};
  const Vector x = chol->Solve(b);
  const Vector ax = a * x;
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(CholeskyTest, SolveMatrixColumns) {
  const Matrix a = Spd3();
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  const Matrix x = chol->Solve(Matrix::Identity(3));
  // x should be A^-1: A * x = I.
  const Matrix prod = a * x;
  EXPECT_LT(prod.MaxAbsDiff(Matrix::Identity(3)), 1e-9);
}

TEST(CholeskyTest, SolveLowerIsForwardSubstitution) {
  const Matrix a = Spd3();
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  const Vector b = {1.0, 2.0, 3.0};
  const Vector y = chol->SolveLower(b);
  const Vector ly = chol->L() * y;
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(ly[i], b[i], 1e-10);
}

TEST(CholeskyTest, LogDeterminant) {
  Matrix d(3, 3);
  d(0, 0) = 2.0;
  d(1, 1) = 3.0;
  d(2, 2) = 4.0;
  auto chol = Cholesky::Factor(d);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->LogDeterminant(), std::log(24.0), 1e-10);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix m(2, 3);
  EXPECT_FALSE(Cholesky::Factor(m).ok());
}

TEST(CholeskyTest, JitterRescuesSingularMatrix) {
  // Rank-1 matrix: outer product of (1,1,1) with itself.
  Matrix a(3, 3, 1.0);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_GT(chol->jitter_used(), 0.0);
}

TEST(CholeskyTest, FailsOnNegativeDefinite) {
  Matrix a = Matrix::Identity(2);
  a(0, 0) = -5.0;
  a(1, 1) = -5.0;
  auto chol = Cholesky::Factor(a, 1e-10, 1e-4);
  EXPECT_FALSE(chol.ok());
}

TEST(CholeskyTest, RandomSpdRoundTrip) {
  humo::Rng rng(31);
  for (int rep = 0; rep < 10; ++rep) {
    const size_t n = 5 + rng.NextBelow(10);
    Matrix b(n, n);
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j < n; ++j) b(i, j) = rng.NextGaussian();
    Matrix a = b * b.Transpose();
    a.AddToDiagonal(static_cast<double>(n));
    auto chol = Cholesky::Factor(a);
    ASSERT_TRUE(chol.ok());
    Vector rhs(n);
    for (auto& v : rhs) v = rng.NextGaussian();
    const Vector x = chol->Solve(rhs);
    const Vector ax = a * x;
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], rhs[i], 1e-8);
  }
}

}  // namespace
}  // namespace humo::linalg
