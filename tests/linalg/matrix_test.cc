#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace humo::linalg {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(MatrixTest, Transpose) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
}

TEST(MatrixTest, MatrixMultiply) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, IdentityIsMultiplicativeNeutral) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix c = a * Matrix::Identity(2);
  EXPECT_DOUBLE_EQ(c.MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, MatrixVectorMultiply) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Vector v = {1, 1};
  Vector out = a * v;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(MatrixTest, AddSubtract) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{4, 3}, {2, 1}});
  Matrix sum = a + b;
  Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(diff(0, 0), -3.0);
  EXPECT_DOUBLE_EQ(diff(1, 1), 3.0);
}

TEST(MatrixTest, AddToDiagonal) {
  Matrix a = Matrix::Identity(2);
  a.AddToDiagonal(0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{1.5, 1.0}});
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 1.0);
}

TEST(MatrixTest, ToStringRenders) {
  Matrix a = Matrix::FromRows({{1, 2}});
  EXPECT_NE(a.ToString().find("1.0000"), std::string::npos);
}

TEST(VectorOpsTest, DotSubAddScale) {
  Vector a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  const Vector d = Sub(a, b);
  EXPECT_DOUBLE_EQ(d[0], -3.0);
  const Vector s = Add(a, b);
  EXPECT_DOUBLE_EQ(s[2], 9.0);
  const Vector sc = Scale(a, 2.0);
  EXPECT_DOUBLE_EQ(sc[1], 4.0);
}

}  // namespace
}  // namespace humo::linalg
