#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/cholesky.h"

namespace humo::linalg {
namespace {

/// Random SPD matrix B B^T + d I with a fixed seed.
Matrix RandomSpd(size_t n, uint64_t seed, double diag = 1.0) {
  Rng rng(seed);
  Matrix b(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) b(i, j) = rng.NextDouble(-1.0, 1.0);
  Matrix a = b * b.Transpose();
  a.AddToDiagonal(diag);
  return a;
}

/// The k trailing rows of `a` in the layout Append consumes: k x n, row i =
/// row (n-k+i) of `a` (entries past the diagonal are present but ignored).
Matrix TrailingRows(const Matrix& a, size_t k) {
  const size_t n = a.rows();
  Matrix rows(k, n);
  for (size_t i = 0; i < k; ++i)
    for (size_t c = 0; c < n; ++c) rows(i, c) = a(n - k + i, c);
  return rows;
}

TEST(CholeskyAppendTest, AppendEqualsFactorOnExtendedMatrix) {
  const size_t n = 9, k = 3;
  const Matrix ext = RandomSpd(n + k, 42);
  // Factor the leading principal block, then append the trailing rows.
  Matrix lead(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) lead(i, j) = ext(i, j);
  auto chol = Cholesky::Factor(lead);
  ASSERT_TRUE(chol.ok());
  ASSERT_TRUE(chol->Append(TrailingRows(ext, k)).ok());

  auto full = Cholesky::Factor(ext);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(chol->L().rows(), n + k);
  for (size_t i = 0; i < n + k; ++i)
    for (size_t j = 0; j <= i; ++j)
      EXPECT_EQ(chol->L()(i, j), full->L()(i, j))
          << "L(" << i << "," << j << ")";  // bitwise, not NEAR
  EXPECT_EQ(chol->LogDeterminant(), full->LogDeterminant());
}

TEST(CholeskyAppendTest, RepeatedRankOneAppendsMatchOneFactorization) {
  const size_t n0 = 4, total = 12;
  const Matrix ext = RandomSpd(total, 7);
  Matrix lead(n0, n0);
  for (size_t i = 0; i < n0; ++i)
    for (size_t j = 0; j < n0; ++j) lead(i, j) = ext(i, j);
  auto chol = Cholesky::Factor(lead);
  ASSERT_TRUE(chol.ok());
  for (size_t n = n0; n < total; ++n) {
    Matrix row(1, n + 1);
    for (size_t c = 0; c <= n; ++c) row(0, c) = ext(n, c);
    ASSERT_TRUE(chol->Append(row).ok()) << "append at n=" << n;
  }
  auto full = Cholesky::Factor(ext);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(chol->L().MaxAbsDiff(full->L()), 0.0);
}

TEST(CholeskyAppendTest, SolvesAgreeAfterAppend) {
  const size_t n = 61, k = 2;  // n > parallel threshold not needed; odd size
  const Matrix ext = RandomSpd(n + k, 3);
  Matrix lead(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) lead(i, j) = ext(i, j);
  auto chol = Cholesky::Factor(lead);
  ASSERT_TRUE(chol.ok());
  ASSERT_TRUE(chol->Append(TrailingRows(ext, k)).ok());
  Vector b(n + k);
  Rng rng(11);
  for (double& v : b) v = rng.NextDouble(-2.0, 2.0);
  const Vector x = chol->Solve(b);
  const Vector ax = ext * x;
  for (size_t i = 0; i < n + k; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST(CholeskyAppendTest, JitterCarriesIntoAppendedDiagonal) {
  // Singular PSD matrix (rank 1): Factor must escalate jitter.
  const size_t n = 3;
  Matrix a(n, n);
  const double v[n] = {1.0, 2.0, 3.0};
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) a(i, j) = v[i] * v[j];
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  ASSERT_GT(chol->jitter_used(), 0.0);
  const double jitter = chol->jitter_used();

  // Extend by a row consistent with the rank structure (cross-covariances
  // in span(v), ample diagonal — the shape a kernel matrix extension has);
  // Append adds the SAME jitter to the new diagonal, matching Factor of the
  // uniformly jittered extension.
  Matrix ext(n + 1, n + 1);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) ext(i, j) = a(i, j);
  for (size_t j = 0; j < n; ++j) ext(n, j) = ext(j, n) = 0.5 * v[j];
  ext(n, n) = 5.0;
  Matrix row(1, n + 1);
  for (size_t c = 0; c <= n; ++c) row(0, c) = ext(n, c);
  ASSERT_TRUE(chol->Append(row).ok());

  Matrix jittered = ext;
  jittered.AddToDiagonal(jitter);
  // Plain TryFactor of the jittered matrix (no ladder): reconstructing
  // through L L^T must reproduce it.
  const Matrix recon = chol->L() * chol->L().Transpose();
  EXPECT_LT(recon.MaxAbsDiff(jittered), 1e-9);
}

TEST(CholeskyAppendTest, RejectsNonPositiveDefiniteExtension) {
  const Matrix a = Matrix::Identity(3);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  // Row 3 duplicates row 0 => extended matrix is singular (pivot 0).
  Matrix row(1, 4);
  row(0, 0) = 1.0;
  row(0, 3) = 1.0;
  const Status st = chol->Append(row);
  EXPECT_FALSE(st.ok());
  // The factor is untouched and still usable.
  EXPECT_EQ(chol->L().rows(), 3u);
  const Vector b = {1.0, 2.0, 3.0};
  const Vector x = chol->Solve(b);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(CholeskyAppendTest, RejectsWrongRowShape) {
  auto chol = Cholesky::Factor(Matrix::Identity(3));
  ASSERT_TRUE(chol.ok());
  EXPECT_FALSE(chol->Append(Matrix(2, 4)).ok());  // needs 2 x 5
  EXPECT_TRUE(chol->Append(Matrix(0, 0)).ok());   // empty append is a no-op
  EXPECT_EQ(chol->L().rows(), 3u);
}

TEST(CholeskyAppendTest, SolveLowerRowsMatchesPerRowSolveBitwise) {
  const size_t n = 33;
  const Matrix a = RandomSpd(n, 19);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  const size_t q = 11;  // exercises both the blocked path and the remainder
  Matrix rhs(q, n);
  Rng rng(23);
  for (size_t r = 0; r < q; ++r)
    for (size_t c = 0; c < n; ++c) rhs(r, c) = rng.NextDouble(-1.0, 1.0);
  const Matrix sol = chol->SolveLowerRows(rhs);
  for (size_t r = 0; r < q; ++r) {
    Vector b(n);
    for (size_t c = 0; c < n; ++c) b[c] = rhs(r, c);
    const Vector y = chol->SolveLower(b);
    for (size_t c = 0; c < n; ++c)
      EXPECT_EQ(sol(r, c), y[c]) << "row " << r << " col " << c;
  }
}

}  // namespace
}  // namespace humo::linalg
