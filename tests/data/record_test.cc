#include "data/record.h"

#include <gtest/gtest.h>

namespace humo::data {
namespace {

TEST(RecordTableTest, AddValidatesArity) {
  RecordTable t({"title", "year"});
  EXPECT_TRUE(t.Add({0, 0, {"a", "2020"}}).ok());
  EXPECT_FALSE(t.Add({1, 1, {"only-one"}}).ok());
  EXPECT_EQ(t.size(), 1u);
}

TEST(RecordTableTest, AttributeIndex) {
  RecordTable t({"title", "year"});
  auto idx = t.AttributeIndex("year");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(t.AttributeIndex("nope").ok());
}

TEST(RecordTableTest, AccessRecords) {
  RecordTable t({"name"});
  ASSERT_TRUE(t.Add({7, 3, {"x"}}).ok());
  EXPECT_EQ(t[0].id, 7u);
  EXPECT_EQ(t[0].entity_id, 3u);
  EXPECT_EQ(t[0].attributes[0], "x");
}

TEST(RecordTableTest, EmptyTable) {
  RecordTable t({"a"});
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.records().empty());
}

}  // namespace
}  // namespace humo::data
