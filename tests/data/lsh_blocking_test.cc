#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "data/blocking.h"
#include "data/record_columns.h"
#include "data/scale_generator.h"
#include "text/token_similarity.h"

namespace humo::data {
namespace {

double NameScorer(const Record& a, const Record& b) {
  return text::JaccardSimilarity(a.attributes[1], b.attributes[1]);
}

ScaleTables PerturbedTables(size_t groups) {
  ScaleTablesConfig config;
  config.groups = groups;
  config.left_per_group = 8;
  config.right_per_group = 8;
  config.match_fraction = 0.05;
  config.perturb_names = true;
  config.perturbation = LightPerturbation();
  return GenerateScaleTables(config);
}

/// Matched (left id, right id) pairs of a workload.
std::set<std::pair<uint32_t, uint32_t>> MatchedPairs(const Workload& w) {
  std::set<std::pair<uint32_t, uint32_t>> out;
  for (size_t i = 0; i < w.size(); ++i) {
    if (w.IsMatch(i)) out.insert({w[i].left_id, w[i].right_id});
  }
  return out;
}

TEST(MinHashLshBlockTest, RecallAgainstExactTokenBlock) {
  const ScaleTables tables = PerturbedTables(/*groups=*/96);
  constexpr double kThreshold = 0.2;

  // Exact baseline: token blocking on the group key retains every in-group
  // pair above the scoring threshold.
  const Workload exact =
      TokenBlock(tables.left, tables.right, 0, NameScorer, kThreshold);
  const auto exact_matches = MatchedPairs(exact);
  ASSERT_FALSE(exact_matches.empty());

  const Workload lsh =
      MinHashLshBlock(tables.left, tables.right, 1, MinHashLshOptions{},
                      kThreshold);
  const auto lsh_matches = MatchedPairs(lsh);
  size_t retained = 0;
  for (const auto& p : exact_matches) retained += lsh_matches.count(p);
  const double recall =
      static_cast<double>(retained) / static_cast<double>(exact_matches.size());
  EXPECT_GE(recall, 0.95) << retained << "/" << exact_matches.size();
}

TEST(MinHashLshBlockTest, ScoresMatchStringJaccardBitwise) {
  const ScaleTables tables = PerturbedTables(/*groups=*/24);
  const Workload lsh =
      MinHashLshBlock(tables.left, tables.right, 1, MinHashLshOptions{}, 0.2);
  ASSERT_GT(lsh.size(), 0u);
  for (size_t i = 0; i < lsh.size(); ++i) {
    const InstancePair p = lsh[i];
    EXPECT_EQ(p.similarity, NameScorer(tables.left[p.left_id],
                                       tables.right[p.right_id]))
        << "pair " << i;
  }
}

TEST(MinHashLshBlockTest, BitIdenticalAcrossThreadCounts) {
  const ScaleTables tables = PerturbedTables(/*groups=*/48);
  ThreadPool::SetGlobalThreads(1);
  const Workload w1 =
      MinHashLshBlock(tables.left, tables.right, 1, MinHashLshOptions{}, 0.2);
  ThreadPool::SetGlobalThreads(4);
  const Workload w4 =
      MinHashLshBlock(tables.left, tables.right, 1, MinHashLshOptions{}, 0.2);
  ThreadPool::SetGlobalThreads(0);
  ASSERT_EQ(w1.size(), w4.size());
  EXPECT_EQ(w1.similarities(), w4.similarities());
  EXPECT_EQ(w1.left_ids(), w4.left_ids());
  EXPECT_EQ(w1.right_ids(), w4.right_ids());
  EXPECT_EQ(w1.match_labels(), w4.match_labels());
}

TEST(MinHashLshCandidatesTest, CandidatesDeterministicAcrossThreadCounts) {
  const ScaleTables tables = PerturbedTables(/*groups=*/48);
  text::TokenDictionary dict;
  const RecordColumns left = RecordColumns::Build(tables.left, 1, &dict);
  const RecordColumns right = RecordColumns::Build(tables.right, 1, &dict);
  ThreadPool::SetGlobalThreads(1);
  const LshCandidates c1 = MinHashLshCandidates(left, right,
                                                MinHashLshOptions{});
  ThreadPool::SetGlobalThreads(4);
  const LshCandidates c4 = MinHashLshCandidates(left, right,
                                                MinHashLshOptions{});
  ThreadPool::SetGlobalThreads(0);
  EXPECT_EQ(c1.left, c4.left);
  EXPECT_EQ(c1.right, c4.right);
}

TEST(MinHashLshCandidatesTest, MoreProbesNeverLoseCandidates) {
  const ScaleTables tables = PerturbedTables(/*groups=*/24);
  text::TokenDictionary dict;
  const RecordColumns left = RecordColumns::Build(tables.left, 1, &dict);
  const RecordColumns right = RecordColumns::Build(tables.right, 1, &dict);
  MinHashLshOptions one_probe;
  one_probe.probes = 1;
  MinHashLshOptions three_probes;
  three_probes.probes = 3;
  const LshCandidates few = MinHashLshCandidates(left, right, one_probe);
  const LshCandidates many = MinHashLshCandidates(left, right, three_probes);
  EXPECT_GE(many.left.size(), few.left.size());
  std::set<std::pair<uint32_t, uint32_t>> many_set;
  for (size_t i = 0; i < many.left.size(); ++i) {
    many_set.insert({many.left[i], many.right[i]});
  }
  for (size_t i = 0; i < few.left.size(); ++i) {
    EXPECT_TRUE(many_set.count({few.left[i], few.right[i]}))
        << "probe-1 candidate " << i << " lost at probes=3";
  }
}

TEST(MinHashLshBlockTest, EmptyTablesAndEmptyValues) {
  RecordTable left({"key", "name"});
  RecordTable right({"key", "name"});
  // Empty tables: empty workload.
  const Workload empty =
      MinHashLshBlock(left, right, 1, MinHashLshOptions{}, 0.1);
  EXPECT_EQ(empty.size(), 0u);

  // Records with empty token sets never enter buckets (and never pair).
  ASSERT_TRUE(left.Add({0, 0, {"k", ""}}).ok());
  ASSERT_TRUE(left.Add({1, 1, {"k", "solid name"}}).ok());
  ASSERT_TRUE(right.Add({0, 0, {"k", ""}}).ok());
  ASSERT_TRUE(right.Add({1, 1, {"k", "solid name"}}).ok());
  const Workload w =
      MinHashLshBlock(left, right, 1, MinHashLshOptions{}, 0.1);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_NE(w[i].left_id, 0u);
    EXPECT_NE(w[i].right_id, 0u);
  }
  // The identical non-empty names must collide in every band.
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].similarity, 1.0);
}

TEST(MinHashLshBlockTest, SingletonAndAllIdenticalTables) {
  RecordTable left({"key", "name"});
  RecordTable right({"key", "name"});
  ASSERT_TRUE(left.Add({0, 7, {"k", "lonely record"}}).ok());
  ASSERT_TRUE(right.Add({0, 7, {"k", "lonely record"}}).ok());
  const Workload single =
      MinHashLshBlock(left, right, 1, MinHashLshOptions{}, 0.5);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_TRUE(single[0].is_match);

  RecordTable lmany({"key", "name"});
  RecordTable rmany({"key", "name"});
  for (uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(lmany.Add({i, i, {"k", "same exact words"}}).ok());
    ASSERT_TRUE(rmany.Add({i, i, {"k", "same exact words"}}).ok());
  }
  // All-identical: every record shares every bucket; full cross product.
  const Workload all =
      MinHashLshBlock(lmany, rmany, 1, MinHashLshOptions{}, 0.5);
  EXPECT_EQ(all.size(), 20u * 20u);
}

TEST(MinHashLshBlockTest, SeedChangesBucketsButDeterministically) {
  const ScaleTables tables = PerturbedTables(/*groups=*/16);
  MinHashLshOptions a;
  MinHashLshOptions b;
  b.seed = 0xDEADBEEFULL;
  const Workload wa1 =
      MinHashLshBlock(tables.left, tables.right, 1, a, 0.2);
  const Workload wa2 =
      MinHashLshBlock(tables.left, tables.right, 1, a, 0.2);
  // Same options: bit-identical reruns.
  EXPECT_EQ(wa1.similarities(), wa2.similarities());
  EXPECT_EQ(wa1.left_ids(), wa2.left_ids());
  const Workload wb = MinHashLshBlock(tables.left, tables.right, 1, b, 0.2);
  // A different seed is a different hash family; output remains a valid
  // workload (sorted, same scoring) even if the candidate set differs.
  for (size_t i = 1; i < wb.size(); ++i) {
    EXPECT_LE(wb.Similarity(i - 1), wb.Similarity(i));
  }
}

TEST(IdPathBlockersTest, ThresholdBlockIdPathMatchesStringPath) {
  const ScaleTables tables = PerturbedTables(/*groups=*/8);
  text::TokenDictionary dict;
  const RecordColumns left = RecordColumns::Build(tables.left, 1, &dict);
  const RecordColumns right = RecordColumns::Build(tables.right, 1, &dict);
  const Workload via_strings =
      ThresholdBlock(tables.left, tables.right, NameScorer, 0.3);
  const Workload via_ids =
      ThresholdBlock(tables.left, tables.right, left, right,
                     text::IdSetMetric::kJaccard, 0.3);
  ASSERT_EQ(via_strings.size(), via_ids.size());
  EXPECT_EQ(via_strings.similarities(), via_ids.similarities());
  EXPECT_EQ(via_strings.left_ids(), via_ids.left_ids());
  EXPECT_EQ(via_strings.right_ids(), via_ids.right_ids());
  EXPECT_EQ(via_strings.match_labels(), via_ids.match_labels());
}

TEST(IdPathBlockersTest, SortedNeighborhoodIdPathMatchesStringPath) {
  const ScaleTables tables = PerturbedTables(/*groups=*/8);
  text::TokenDictionary dict;
  const RecordColumns left = RecordColumns::Build(tables.left, 1, &dict);
  const RecordColumns right = RecordColumns::Build(tables.right, 1, &dict);
  const Workload via_strings = SortedNeighborhoodBlock(
      tables.left, tables.right, 0, /*window=*/10, NameScorer, 0.3);
  const Workload via_ids = SortedNeighborhoodBlock(
      tables.left, tables.right, left, right, 0, /*window=*/10,
      text::IdSetMetric::kJaccard, 0.3);
  ASSERT_EQ(via_strings.size(), via_ids.size());
  EXPECT_EQ(via_strings.similarities(), via_ids.similarities());
  EXPECT_EQ(via_strings.left_ids(), via_ids.left_ids());
  EXPECT_EQ(via_strings.right_ids(), via_ids.right_ids());
  EXPECT_EQ(via_strings.match_labels(), via_ids.match_labels());
}

}  // namespace
}  // namespace humo::data
