#include "data/blocking.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "text/token_similarity.h"

namespace humo::data {
namespace {

RecordTable LeftTable() {
  RecordTable t({"name"});
  EXPECT_TRUE(t.Add({0, 100, {"alpha beta gamma"}}).ok());
  EXPECT_TRUE(t.Add({1, 101, {"delta epsilon"}}).ok());
  return t;
}

RecordTable RightTable() {
  RecordTable t({"name"});
  EXPECT_TRUE(t.Add({0, 100, {"alpha beta gamma"}}).ok());   // exact dup
  EXPECT_TRUE(t.Add({1, 102, {"zeta eta theta"}}).ok());     // unrelated
  EXPECT_TRUE(t.Add({2, 101, {"delta epsilon extra"}}).ok()); // near dup
  return t;
}

double NameScorer(const Record& a, const Record& b) {
  return text::JaccardSimilarity(a.attributes[0], b.attributes[0]);
}

TEST(ThresholdBlockTest, KeepsOnlyAboveThreshold) {
  const auto left = LeftTable();
  const auto right = RightTable();
  const Workload w = ThresholdBlock(left, right, NameScorer, 0.5);
  // alpha/alpha (1.0) and delta/delta-extra (2/3) survive at 0.5.
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w.CountMatches(), 2u);
}

TEST(ThresholdBlockTest, ZeroThresholdKeepsCrossProduct) {
  const auto left = LeftTable();
  const auto right = RightTable();
  const Workload w = ThresholdBlock(left, right, NameScorer, 0.0);
  EXPECT_EQ(w.size(), left.size() * right.size());
}

TEST(ThresholdBlockTest, GroundTruthFromEntityIds) {
  const auto left = LeftTable();
  const auto right = RightTable();
  const Workload w = ThresholdBlock(left, right, NameScorer, 0.0);
  size_t matches = 0;
  for (size_t i = 0; i < w.size(); ++i) matches += w[i].is_match;
  EXPECT_EQ(matches, 2u);
}

TEST(ThresholdBlockTest, OutputSorted) {
  const Workload w =
      ThresholdBlock(LeftTable(), RightTable(), NameScorer, 0.0);
  for (size_t i = 1; i < w.size(); ++i)
    EXPECT_LE(w[i - 1].similarity, w[i].similarity);
}

TEST(TokenBlockTest, FindsSharedTokenCandidates) {
  const auto left = LeftTable();
  const auto right = RightTable();
  const Workload w = TokenBlock(left, right, 0, NameScorer, 0.1);
  // Same surviving pairs as threshold blocking at 0.1 since all matching
  // pairs share tokens.
  const Workload full = ThresholdBlock(left, right, NameScorer, 0.1);
  EXPECT_EQ(w.size(), full.size());
  EXPECT_EQ(w.CountMatches(), full.CountMatches());
}

TEST(TokenBlockTest, SkipsTokenDisjointPairs) {
  RecordTable left({"name"});
  ASSERT_TRUE(left.Add({0, 1, {"aaa bbb"}}).ok());
  RecordTable right({"name"});
  ASSERT_TRUE(right.Add({0, 2, {"ccc ddd"}}).ok());
  const Workload w = TokenBlock(left, right, 0, NameScorer, 0.0);
  EXPECT_EQ(w.size(), 0u);  // no shared token -> never scored
}

TEST(BlockingStatsTest, ReductionAndCompleteness) {
  const auto left = LeftTable();
  const auto right = RightTable();
  const Workload w = ThresholdBlock(left, right, NameScorer, 0.5);
  const auto stats = ComputeBlockingStats(left, right, w);
  EXPECT_EQ(stats.candidate_pairs, 2u);
  EXPECT_EQ(stats.total_possible_pairs, 6u);
  EXPECT_EQ(stats.true_matches_total, 2u);
  EXPECT_EQ(stats.true_matches_retained, 2u);
  EXPECT_NEAR(stats.ReductionRatio(), 1.0 - 2.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.PairCompleteness(), 1.0);
}

TEST(SortedNeighborhoodTest, FindsPrefixNeighborsTokenBlockingMisses) {
  // Keys share a prefix but no full token: "kestrelx200" vs "kestrelx2oo".
  RecordTable left({"name"});
  ASSERT_TRUE(left.Add({0, 1, {"kestrelx200 speaker"}}).ok());
  RecordTable right({"name"});
  ASSERT_TRUE(right.Add({0, 1, {"kestrelx2oo speakers"}}).ok());
  const Workload token = TokenBlock(left, right, 0, NameScorer, 0.0);
  EXPECT_EQ(token.size(), 0u);  // no shared whole token
  const Workload snm =
      SortedNeighborhoodBlock(left, right, 0, /*window=*/3, NameScorer, 0.0);
  EXPECT_EQ(snm.size(), 1u);  // adjacent in sorted key order
}

TEST(SortedNeighborhoodTest, WindowLimitsComparisons) {
  const auto left = LeftTable();
  const auto right = RightTable();
  // Window of the full merged size degenerates to the cross product
  // (cross-table pairs only).
  const Workload wide = SortedNeighborhoodBlock(
      left, right, 0, left.size() + right.size(), NameScorer, 0.0);
  EXPECT_EQ(wide.size(), left.size() * right.size());
  const Workload narrow =
      SortedNeighborhoodBlock(left, right, 0, 2, NameScorer, 0.0);
  EXPECT_LE(narrow.size(), wide.size());
}

TEST(SortedNeighborhoodTest, NoDuplicatePairs) {
  const auto left = LeftTable();
  const auto right = RightTable();
  const Workload w =
      SortedNeighborhoodBlock(left, right, 0, 4, NameScorer, 0.0);
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_TRUE(seen.insert({w[i].left_id, w[i].right_id}).second);
  }
}

TEST(SortedNeighborhoodTest, RespectsThreshold) {
  const auto left = LeftTable();
  const auto right = RightTable();
  const Workload w =
      SortedNeighborhoodBlock(left, right, 0, 6, NameScorer, 0.5);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i].similarity, 0.5);
  }
}

TEST(BlockingStatsTest, LostMatchLowersCompleteness) {
  const auto left = LeftTable();
  const auto right = RightTable();
  // Absurd threshold drops the near-duplicate match.
  const Workload w = ThresholdBlock(left, right, NameScorer, 0.9);
  const auto stats = ComputeBlockingStats(left, right, w);
  EXPECT_EQ(stats.true_matches_retained, 1u);
  EXPECT_DOUBLE_EQ(stats.PairCompleteness(), 0.5);
}

TEST(BlockingStatsTest, EmptyTablesYieldDefinedRatios) {
  const RecordTable empty({"name"});
  const Workload w = ThresholdBlock(empty, empty, NameScorer, 0.0);
  EXPECT_TRUE(w.empty());
  const auto stats = ComputeBlockingStats(empty, empty, w);
  EXPECT_EQ(stats.total_possible_pairs, 0u);
  // No possible pairs: nothing was reduced, nothing was lost.
  EXPECT_DOUBLE_EQ(stats.ReductionRatio(), 0.0);
  EXPECT_DOUBLE_EQ(stats.PairCompleteness(), 1.0);
}

TEST(BlockingStatsTest, OneEmptySideBlocksNothing) {
  const auto left = LeftTable();
  const RecordTable empty({"name"});
  EXPECT_TRUE(ThresholdBlock(left, empty, NameScorer, 0.0).empty());
  EXPECT_TRUE(ThresholdBlock(empty, LeftTable(), NameScorer, 0.0).empty());
  EXPECT_TRUE(TokenBlock(left, empty, 0, NameScorer, 0.0).empty());
  EXPECT_TRUE(
      SortedNeighborhoodBlock(left, empty, 0, 4, NameScorer, 0.0).empty());
}

TEST(BlockingStatsTest, ZeroCandidatesStillComputesStats) {
  const auto left = LeftTable();
  const auto right = RightTable();
  // Threshold above 1.0 rejects every candidate.
  const Workload w = ThresholdBlock(left, right, NameScorer, 1.5);
  EXPECT_TRUE(w.empty());
  const auto stats = ComputeBlockingStats(left, right, w);
  EXPECT_EQ(stats.candidate_pairs, 0u);
  EXPECT_DOUBLE_EQ(stats.ReductionRatio(), 1.0);
  EXPECT_DOUBLE_EQ(stats.PairCompleteness(), 0.0);
  EXPECT_EQ(stats.true_matches_total, 2u);
}

TEST(BlockingStatsTest, ThresholdOneKeepsOnlyPerfectScores) {
  const auto left = LeftTable();
  const auto right = RightTable();
  const Workload w = ThresholdBlock(left, right, NameScorer, 1.0);
  ASSERT_EQ(w.size(), 1u);  // only the exact duplicate scores 1.0
  EXPECT_DOUBLE_EQ(w.Similarity(0), 1.0);
  EXPECT_TRUE(w.IsMatch(0));
}

/// Bigger synthetic tables so the parallel blockers actually split into
/// multiple chunks.
RecordTable WideTable(uint32_t id_base, uint32_t entity_base, size_t n) {
  RecordTable t({"name"});
  const char* vocab[] = {"alpha", "beta",  "gamma", "delta",
                         "omega", "sigma", "kappa", "lambda"};
  for (size_t i = 0; i < n; ++i) {
    std::string name;
    for (size_t w = 0; w < 3; ++w) {
      name += std::string(vocab[(i / (w + 1) + w) % 8]) + " ";
    }
    name += "id" + std::to_string(i % 37);
    EXPECT_TRUE(t.Add({id_base + static_cast<uint32_t>(i),
                       entity_base + static_cast<uint32_t>(i % 61),
                       {name}})
                    .ok());
  }
  return t;
}

void ExpectSameWorkload(const Workload& a, const Workload& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.similarities(), b.similarities());
  EXPECT_EQ(a.left_ids(), b.left_ids());
  EXPECT_EQ(a.right_ids(), b.right_ids());
  EXPECT_EQ(a.match_labels(), b.match_labels());
}

TEST(BlockingDeterminismTest, ParallelEqualsSerialBitForBit) {
  const auto left = WideTable(0, 0, 300);
  const auto right = WideTable(1000, 0, 300);

  ThreadPool::SetGlobalThreads(1);
  const Workload threshold_1 = ThresholdBlock(left, right, NameScorer, 0.3);
  const Workload token_1 = TokenBlock(left, right, 0, NameScorer, 0.2);
  const Workload snm_1 =
      SortedNeighborhoodBlock(left, right, 0, 12, NameScorer, 0.2);

  ThreadPool::SetGlobalThreads(4);
  const Workload threshold_4 = ThresholdBlock(left, right, NameScorer, 0.3);
  const Workload token_4 = TokenBlock(left, right, 0, NameScorer, 0.2);
  const Workload snm_4 =
      SortedNeighborhoodBlock(left, right, 0, 12, NameScorer, 0.2);
  ThreadPool::SetGlobalThreads(0);

  ASSERT_GT(threshold_1.size(), 0u);
  ASSERT_GT(token_1.size(), 0u);
  ASSERT_GT(snm_1.size(), 0u);
  ExpectSameWorkload(threshold_1, threshold_4);
  ExpectSameWorkload(token_1, token_4);
  ExpectSameWorkload(snm_1, snm_4);
}

}  // namespace
}  // namespace humo::data
