#include "data/perturbation.h"

#include <gtest/gtest.h>

#include "text/token_similarity.h"

namespace humo::data {
namespace {

TEST(PerturbationTest, ZeroRatesAreIdentity) {
  Rng rng(1);
  PerturbationOptions none;
  none.typo_rate = 0.0;
  none.token_drop_rate = 0.0;
  none.abbreviation_rate = 0.0;
  none.token_swap_rate = 0.0;
  EXPECT_EQ(PerturbString("hello world test", none, &rng),
            "hello world test");
}

TEST(PerturbationTest, MissingRateOneEmptiesValue) {
  Rng rng(2);
  PerturbationOptions o;
  o.missing_rate = 1.0;
  EXPECT_EQ(PerturbString("anything here", o, &rng), "");
}

TEST(PerturbationTest, LightKeepsHighSimilarity) {
  Rng rng(3);
  const std::string src =
      "scalable entity resolution framework for dirty data lakes";
  double total = 0.0;
  const int reps = 200;
  for (int i = 0; i < reps; ++i) {
    total += text::JaccardSimilarity(
        src, PerturbString(src, LightPerturbation(), &rng));
  }
  EXPECT_GT(total / reps, 0.8);
}

TEST(PerturbationTest, HeavyDegradesMoreThanLight) {
  Rng rng_a(4), rng_b(4);
  const std::string src =
      "scalable entity resolution framework for dirty data lakes";
  double light_total = 0.0, heavy_total = 0.0;
  const int reps = 200;
  for (int i = 0; i < reps; ++i) {
    light_total += text::JaccardSimilarity(
        src, PerturbString(src, LightPerturbation(), &rng_a));
    heavy_total += text::JaccardSimilarity(
        src, PerturbString(src, HeavyPerturbation(), &rng_b));
  }
  EXPECT_GT(light_total, heavy_total);
}

TEST(PerturbationTest, NeverEmptyUnlessMissing) {
  Rng rng(5);
  PerturbationOptions o = HeavyPerturbation();
  o.missing_rate = 0.0;
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(PerturbString("single", o, &rng).empty());
  }
}

TEST(PerturbationTest, DeterministicUnderSeed) {
  Rng a(6), b(6);
  const auto o = MediumPerturbation();
  EXPECT_EQ(PerturbString("alpha beta gamma delta", o, &a),
            PerturbString("alpha beta gamma delta", o, &b));
}

TEST(PerturbationTest, AbbreviationProducesInitialDot) {
  Rng rng(7);
  PerturbationOptions o;
  o.typo_rate = 0.0;
  o.token_drop_rate = 0.0;
  o.abbreviation_rate = 1.0;
  o.token_swap_rate = 0.0;
  const std::string out = PerturbString("jonathan smithers", o, &rng);
  EXPECT_EQ(out, "j. s.");
}

TEST(PerturbationTest, SeverityPresetsOrdered) {
  EXPECT_LT(LightPerturbation().typo_rate, MediumPerturbation().typo_rate);
  EXPECT_LT(MediumPerturbation().typo_rate, HeavyPerturbation().typo_rate);
  EXPECT_LT(LightPerturbation().token_drop_rate,
            HeavyPerturbation().token_drop_rate);
}

}  // namespace
}  // namespace humo::data
