#include "data/pair_simulator.h"

#include <gtest/gtest.h>

namespace humo::data {
namespace {

TEST(PairSimulatorTest, ExactPairAndMatchCounts) {
  PairSimulatorConfig c;
  c.num_pairs = 5000;
  c.num_matches = 250;
  const Workload w = SimulatePairs(c);
  EXPECT_EQ(w.size(), 5000u);
  EXPECT_EQ(w.CountMatches(), 250u);
}

TEST(PairSimulatorTest, SimilaritiesWithinSupport) {
  PairSimulatorConfig c;
  c.num_pairs = 2000;
  c.num_matches = 100;
  c.lo = 0.2;
  c.hi = 0.8;
  const Workload w = SimulatePairs(c);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i].similarity, 0.2);
    EXPECT_LE(w[i].similarity, 0.8);
  }
}

TEST(PairSimulatorTest, DeterministicUnderSeed) {
  PairSimulatorConfig c;
  c.num_pairs = 1000;
  c.num_matches = 50;
  const Workload a = SimulatePairs(c);
  const Workload b = SimulatePairs(c);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].similarity, b[i].similarity);
    EXPECT_EQ(a[i].is_match, b[i].is_match);
  }
}

TEST(PairSimulatorTest, MatchesSkewHigherThanUnmatches) {
  PairSimulatorConfig c;
  c.num_pairs = 20000;
  c.num_matches = 2000;
  const Workload w = SimulatePairs(c);
  double match_mean = 0.0, unmatch_mean = 0.0;
  size_t nm = 0, nu = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (w[i].is_match) {
      match_mean += w[i].similarity;
      ++nm;
    } else {
      unmatch_mean += w[i].similarity;
      ++nu;
    }
  }
  match_mean /= static_cast<double>(nm);
  unmatch_mean /= static_cast<double>(nu);
  EXPECT_GT(match_mean, unmatch_mean + 0.2);
}

TEST(DsConfigTest, MatchesPublishedStatistics) {
  const auto c = DsConfig();
  EXPECT_EQ(c.num_pairs, 100077u);
  EXPECT_EQ(c.num_matches, 5267u);
  EXPECT_DOUBLE_EQ(c.lo, 0.2);
}

TEST(AbConfigTest, MatchesPublishedStatistics) {
  const auto c = AbConfig();
  EXPECT_EQ(c.num_pairs, 313040u);
  EXPECT_EQ(c.num_matches, 1085u);
  EXPECT_DOUBLE_EQ(c.lo, 0.05);
}

TEST(DsConfigTest, HighSimilarityRegionIsPure) {
  // The top similarity decile of DS should be dominated by matches — the
  // property that makes DS the "easy" workload (Fig. 4a).
  const Workload w = SimulatePairs(DsConfigSmall(1, 20000));
  size_t top_total = 0, top_matches = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (w[i].similarity >= 0.9) {
      ++top_total;
      top_matches += w[i].is_match;
    }
  }
  ASSERT_GT(top_total, 0u);
  EXPECT_GT(static_cast<double>(top_matches) / top_total, 0.8);
}

TEST(AbConfigTest, NoPureHighSimilarityRegion) {
  // AB matches live at low/medium similarity; the match proportion never
  // gets as clean as DS's top region, which is what breaks machine-only
  // classification (Table I).
  const Workload w = SimulatePairs(AbConfigSmall(1, 60000));
  // Count matches above 0.6 — should be a small fraction of all matches.
  size_t high_matches = 0, total_matches = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (w[i].is_match) {
      ++total_matches;
      if (w[i].similarity > 0.6) ++high_matches;
    }
  }
  EXPECT_LT(static_cast<double>(high_matches) / total_matches, 0.2);
}

TEST(SmallConfigsTest, ScaleMatchCountsProportionally) {
  const auto ds = DsConfigSmall(1, 20000);
  EXPECT_EQ(ds.num_pairs, 20000u);
  EXPECT_NEAR(static_cast<double>(ds.num_matches),
              5267.0 * 20000.0 / 100077.0, 2.0);
  const auto ab = AbConfigSmall(1, 60000);
  EXPECT_EQ(ab.num_pairs, 60000u);
  EXPECT_NEAR(static_cast<double>(ab.num_matches),
              1085.0 * 60000.0 / 313040.0, 2.0);
}

}  // namespace
}  // namespace humo::data
