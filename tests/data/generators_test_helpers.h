#pragma once

// Shared helpers for data-generator tests (intentionally minimal).
