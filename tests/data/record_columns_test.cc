#include "data/record_columns.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "text/token_similarity.h"

namespace humo::data {
namespace {

RecordTable SmallTable() {
  RecordTable t({"name"});
  EXPECT_TRUE(t.Add({0, 100, {"Alpha beta GAMMA"}}).ok());
  EXPECT_TRUE(t.Add({1, 101, {"beta beta delta"}}).ok());
  EXPECT_TRUE(t.Add({2, 102, {""}}).ok());
  EXPECT_TRUE(t.Add({3, 103, {"gamma alpha"}}).ok());
  return t;
}

TEST(RecordColumnsTest, SortedUniqueIdsPerRecord) {
  text::TokenDictionary dict;
  const RecordColumns cols = RecordColumns::Build(SmallTable(), 0, &dict);
  ASSERT_EQ(cols.num_records(), 4u);
  for (size_t r = 0; r < cols.num_records(); ++r) {
    const uint32_t* ids = cols.ids(r);
    for (size_t i = 1; i < cols.num_ids(r); ++i) {
      EXPECT_LT(ids[i - 1], ids[i]) << "record " << r;
    }
  }
  EXPECT_EQ(cols.num_ids(0), 3u);  // alpha beta gamma
  EXPECT_EQ(cols.num_ids(1), 2u);  // beta (tf 2), delta
  EXPECT_EQ(cols.num_ids(2), 0u);  // empty value
  EXPECT_EQ(cols.num_ids(3), 2u);  // gamma alpha
}

TEST(RecordColumnsTest, TermFrequencies) {
  text::TokenDictionary dict;
  const RecordColumns cols = RecordColumns::Build(SmallTable(), 0, &dict);
  const uint32_t beta = dict.IdOf("beta");
  ASSERT_NE(beta, text::TokenDictionary::kNoToken);
  const uint32_t o = cols.offsets()[1];
  bool found = false;
  for (size_t i = 0; i < cols.num_ids(1); ++i) {
    if (cols.token_ids()[o + i] == beta) {
      EXPECT_EQ(cols.term_freq()[o + i], 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RecordColumnsTest, DictionaryStatsCountOneDocumentPerRecord) {
  text::TokenDictionary dict;
  const RecordColumns cols = RecordColumns::Build(SmallTable(), 0, &dict);
  (void)cols;
  EXPECT_EQ(dict.num_documents(), 4u);
  // "beta" appears in records 0 and 1 (once despite tf 2), "alpha" and
  // "gamma" in records 0 and 3.
  EXPECT_EQ(dict.doc_freq()[dict.IdOf("beta")], 2u);
  EXPECT_EQ(dict.doc_freq()[dict.IdOf("alpha")], 2u);
  EXPECT_EQ(dict.doc_freq()[dict.IdOf("gamma")], 2u);
  EXPECT_EQ(dict.doc_freq()[dict.IdOf("delta")], 1u);
}

TEST(RecordColumnsTest, SharedDictionaryAgreesAcrossTables) {
  RecordTable left({"name"});
  ASSERT_TRUE(left.Add({0, 0, {"omega sigma"}}).ok());
  RecordTable right({"name"});
  ASSERT_TRUE(right.Add({0, 0, {"sigma kappa"}}).ok());
  text::TokenDictionary dict;
  const RecordColumns lc = RecordColumns::Build(left, 0, &dict);
  const RecordColumns rc = RecordColumns::Build(right, 0, &dict);
  // "sigma" has ONE id shared by both sides.
  const uint32_t sigma = dict.IdOf("sigma");
  bool in_left = false, in_right = false;
  for (size_t i = 0; i < lc.num_ids(0); ++i)
    in_left |= lc.ids(0)[i] == sigma;
  for (size_t i = 0; i < rc.num_ids(0); ++i)
    in_right |= rc.ids(0)[i] == sigma;
  EXPECT_TRUE(in_left);
  EXPECT_TRUE(in_right);
}

TEST(RecordColumnsTest, IdJaccardBitwiseEqualsStringJaccard) {
  const RecordTable table = SmallTable();
  text::TokenDictionary dict;
  const RecordColumns cols = RecordColumns::Build(table, 0, &dict);
  for (size_t i = 0; i < table.size(); ++i) {
    for (size_t j = 0; j < table.size(); ++j) {
      const double id_sim =
          text::IdSetSimilarity(cols.ids(i), cols.num_ids(i), cols.ids(j),
                                cols.num_ids(j), text::IdSetMetric::kJaccard);
      const double string_sim = text::JaccardSimilarity(
          table[i].attributes[0], table[j].attributes[0]);
      // Same integer counts, same division: bitwise equal.
      EXPECT_EQ(id_sim, string_sim) << "pair " << i << "," << j;
    }
  }
}

TEST(RecordColumnsTest, AttachTfIdfProducesUnitNorms) {
  const RecordTable table = SmallTable();
  text::TokenDictionary dict;
  RecordColumns cols = RecordColumns::Build(table, 0, &dict);
  text::TfIdfModel model;
  model.FitDictionary(dict);
  cols.AttachTfIdf(model);
  ASSERT_EQ(cols.weights().size(), cols.token_ids().size());
  for (size_t r = 0; r < cols.num_records(); ++r) {
    if (cols.num_ids(r) == 0) continue;
    double norm = 0.0;
    const uint32_t o = cols.offsets()[r];
    for (size_t i = 0; i < cols.num_ids(r); ++i) {
      norm += cols.weights()[o + i] * cols.weights()[o + i];
    }
    EXPECT_NEAR(norm, 1.0, 1e-12) << "record " << r;
  }
}

TEST(RecordColumnsTest, BuildDeterministicAcrossThreadCounts) {
  RecordTable t({"name"});
  for (uint32_t i = 0; i < 600; ++i) {
    (void)t.Add({i, i,
                 {"tok" + std::to_string(i % 17) + " tok" +
                  std::to_string(i % 5) + " word" + std::to_string(i % 29)}});
  }
  ThreadPool::SetGlobalThreads(1);
  text::TokenDictionary dict1;
  const RecordColumns c1 = RecordColumns::Build(t, 0, &dict1);
  ThreadPool::SetGlobalThreads(4);
  text::TokenDictionary dict4;
  const RecordColumns c4 = RecordColumns::Build(t, 0, &dict4);
  ThreadPool::SetGlobalThreads(0);
  EXPECT_EQ(dict1.size(), dict4.size());
  EXPECT_EQ(c1.offsets(), c4.offsets());
  EXPECT_EQ(c1.token_ids(), c4.token_ids());
  EXPECT_EQ(c1.term_freq(), c4.term_freq());
}

TEST(BatchScorePairsTest, MatchesPairwiseStringScoring) {
  const RecordTable table = SmallTable();
  text::TokenDictionary dict;
  const RecordColumns cols = RecordColumns::Build(table, 0, &dict);
  std::vector<uint32_t> li, rj;
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 4; ++j) {
      li.push_back(i);
      rj.push_back(j);
    }
  }
  std::vector<double> scores(li.size());
  BatchScorePairs(cols, cols, li.data(), rj.data(), li.size(),
                  text::IdSetMetric::kJaccard, scores.data());
  for (size_t k = 0; k < li.size(); ++k) {
    EXPECT_EQ(scores[k],
              text::JaccardSimilarity(table[li[k]].attributes[0],
                                      table[rj[k]].attributes[0]))
        << "pair " << k;
  }
}

}  // namespace
}  // namespace humo::data
