#include "data/persistence.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/pair_simulator.h"

namespace humo::data {
namespace {

Workload SmallWorkload() {
  PairSimulatorConfig c;
  c.num_pairs = 500;
  c.num_matches = 50;
  return SimulatePairs(c);
}

TEST(PersistenceTest, CsvRoundTripInMemory) {
  const Workload w = SmallWorkload();
  const std::string text = WorkloadToCsv(w);
  auto loaded = WorkloadFromCsv(text);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ((*loaded)[i].left_id, w[i].left_id);
    EXPECT_EQ((*loaded)[i].right_id, w[i].right_id);
    EXPECT_DOUBLE_EQ((*loaded)[i].similarity, w[i].similarity);
    EXPECT_EQ((*loaded)[i].is_match, w[i].is_match);
  }
}

TEST(PersistenceTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/humo_workload_test.csv";
  const Workload w = SmallWorkload();
  ASSERT_TRUE(SaveWorkloadCsv(w, path).ok());
  auto loaded = LoadWorkloadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), w.size());
  EXPECT_EQ(loaded->CountMatches(), w.CountMatches());
  std::remove(path.c_str());
}

TEST(PersistenceTest, RejectsMissingColumns) {
  auto r = WorkloadFromCsv("a,b\n1,2\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(PersistenceTest, RejectsBadSimilarity) {
  auto r = WorkloadFromCsv(
      "left_id,right_id,similarity,label\n1,2,1.5,0\n");
  EXPECT_FALSE(r.ok());
}

TEST(PersistenceTest, RejectsBadLabel) {
  auto r = WorkloadFromCsv(
      "left_id,right_id,similarity,label\n1,2,0.5,maybe\n");
  EXPECT_FALSE(r.ok());
}

TEST(PersistenceTest, LoadSortsBySimilarity) {
  auto r = WorkloadFromCsv(
      "left_id,right_id,similarity,label\n"
      "1,1,0.9,1\n"
      "2,2,0.1,0\n"
      "3,3,0.5,0\n");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0].similarity, 0.1);
  EXPECT_DOUBLE_EQ((*r)[2].similarity, 0.9);
}

TEST(PersistenceTest, MissingFileErrors) {
  EXPECT_FALSE(LoadWorkloadCsv("/nonexistent/w.csv").ok());
}

TEST(PersistenceTest, EmptyWorkloadRoundTrips) {
  const Workload empty;
  auto loaded = WorkloadFromCsv(WorkloadToCsv(empty));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

}  // namespace
}  // namespace humo::data
