#include "data/workload_stream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/pair_simulator.h"
#include "data/workload.h"

namespace humo::data {
namespace {

Workload SmallWorkload(size_t num_pairs = 1200) {
  PairSimulatorConfig config;
  config.num_pairs = num_pairs;
  config.num_matches = num_pairs / 10;
  config.seed = 42;
  return SimulatePairs(config);
}

std::vector<InstancePair> CollectAll(WorkloadStream* stream) {
  std::vector<InstancePair> all;
  Shard shard;
  while (stream->Next(&shard)) {
    all.insert(all.end(), shard.pairs.begin(), shard.pairs.end());
  }
  return all;
}

bool SamePair(const InstancePair& a, const InstancePair& b) {
  return a.left_id == b.left_id && a.right_id == b.right_id &&
         a.similarity == b.similarity && a.is_match == b.is_match;
}

class WorkloadStreamTest : public ::testing::TestWithParam<ArrivalOrder> {};

TEST_P(WorkloadStreamTest, ShardsPartitionTheBaseExactly) {
  const Workload base = SmallWorkload();
  WorkloadStreamOptions options;
  options.num_shards = 7;
  options.order = GetParam();
  WorkloadStream stream(&base, options);

  std::vector<InstancePair> all = CollectAll(&stream);
  ASSERT_EQ(all.size(), base.size());
  std::sort(all.begin(), all.end(), PairLess);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_TRUE(SamePair(all[i], base[i])) << "index " << i;
  }
}

TEST_P(WorkloadStreamTest, DeterministicAcrossInstancesAndResets) {
  const Workload base = SmallWorkload();
  WorkloadStreamOptions options;
  options.num_shards = 5;
  options.order = GetParam();
  WorkloadStream a(&base, options), b(&base, options);

  const std::vector<InstancePair> first = CollectAll(&a);
  EXPECT_EQ(first.size(), CollectAll(&b).size());
  a.Reset();
  Shard shard;
  size_t offset = 0;
  while (a.Next(&shard)) {
    for (const InstancePair& p : shard.pairs) {
      ASSERT_LT(offset, first.size());
      EXPECT_TRUE(SamePair(p, first[offset])) << "offset " << offset;
      ++offset;
    }
  }
  EXPECT_EQ(offset, first.size());
}

TEST_P(WorkloadStreamTest, ShardAtMatchesIteration) {
  const Workload base = SmallWorkload(600);
  WorkloadStreamOptions options;
  options.num_shards = 4;
  options.order = GetParam();
  WorkloadStream stream(&base, options);
  Shard shard;
  size_t epoch = 0;
  while (stream.Next(&shard)) {
    const Shard direct = stream.ShardAt(epoch);
    ASSERT_EQ(direct.pairs.size(), shard.pairs.size());
    for (size_t i = 0; i < shard.pairs.size(); ++i)
      EXPECT_TRUE(SamePair(direct.pairs[i], shard.pairs[i]));
    EXPECT_EQ(direct.epoch, epoch);
    ++epoch;
  }
  EXPECT_EQ(epoch, 4u);
}

TEST_P(WorkloadStreamTest, PrefixWorkloadIsSortedUnionOfShards) {
  const Workload base = SmallWorkload(900);
  WorkloadStreamOptions options;
  options.num_shards = 3;
  options.order = GetParam();
  WorkloadStream stream(&base, options);

  std::vector<InstancePair> manual;
  for (size_t upto = 0; upto <= 3; ++upto) {
    const Workload prefix = stream.PrefixWorkload(upto);
    std::vector<InstancePair> expected = manual;
    std::sort(expected.begin(), expected.end(), PairLess);
    ASSERT_EQ(prefix.size(), expected.size()) << "upto " << upto;
    for (size_t i = 0; i < expected.size(); ++i)
      EXPECT_TRUE(SamePair(prefix[i], expected[i]));
    if (upto < 3) {
      const Shard shard = stream.ShardAt(upto);
      manual.insert(manual.end(), shard.pairs.begin(), shard.pairs.end());
    }
  }
  // The full prefix is the base itself.
  const Workload full = stream.PrefixWorkload(3);
  ASSERT_EQ(full.size(), base.size());
  for (size_t i = 0; i < base.size(); ++i)
    EXPECT_TRUE(SamePair(full[i], base[i]));
}

INSTANTIATE_TEST_SUITE_P(Orders, WorkloadStreamTest,
                         ::testing::Values(ArrivalOrder::kShuffled,
                                           ArrivalOrder::kRoundRobin,
                                           ArrivalOrder::kSimilarityAscending),
                         [](const ::testing::TestParamInfo<ArrivalOrder>& i) {
                           switch (i.param) {
                             case ArrivalOrder::kShuffled:
                               return "Shuffled";
                             case ArrivalOrder::kRoundRobin:
                               return "RoundRobin";
                             default:
                               return "SimilarityAscending";
                           }
                         });

TEST(WorkloadStreamOrderTest, SimilarityAscendingShardsAreContiguousSlices) {
  const Workload base = SmallWorkload(800);
  WorkloadStreamOptions options;
  options.num_shards = 4;
  options.order = ArrivalOrder::kSimilarityAscending;
  WorkloadStream stream(&base, options);
  for (size_t e = 0; e < 4; ++e) {
    Shard shard = stream.ShardAt(e);
    std::sort(shard.pairs.begin(), shard.pairs.end(), PairLess);
    const size_t begin = e * base.size() / 4;
    ASSERT_EQ(shard.pairs.size(), (e + 1) * base.size() / 4 - begin);
    for (size_t i = 0; i < shard.pairs.size(); ++i)
      EXPECT_TRUE(SamePair(shard.pairs[i], base[begin + i]));
  }
}

TEST(WorkloadStreamOrderTest, ShuffledSeedChangesAssignment) {
  const Workload base = SmallWorkload(500);
  WorkloadStreamOptions a_options;
  a_options.num_shards = 2;
  a_options.order = ArrivalOrder::kShuffled;
  a_options.seed = 1;
  WorkloadStreamOptions b_options = a_options;
  b_options.seed = 2;
  WorkloadStream a(&base, a_options), b(&base, b_options);
  const Shard sa = a.ShardAt(0), sb = b.ShardAt(0);
  ASSERT_EQ(sa.pairs.size(), sb.pairs.size());
  bool any_difference = false;
  for (size_t i = 0; i < sa.pairs.size() && !any_difference; ++i)
    any_difference = !SamePair(sa.pairs[i], sb.pairs[i]);
  EXPECT_TRUE(any_difference);
}

TEST(WorkloadStreamEdgeTest, MoreShardsThanPairs) {
  const Workload base = SmallWorkload(3);
  WorkloadStreamOptions options;
  options.num_shards = 8;
  WorkloadStream stream(&base, options);
  std::vector<InstancePair> all = CollectAll(&stream);
  EXPECT_EQ(all.size(), 3u);
}

TEST(WorkloadStreamEdgeTest, EmptyBase) {
  const Workload base;
  WorkloadStreamOptions options;
  options.num_shards = 3;
  WorkloadStream stream(&base, options);
  Shard shard;
  size_t epochs = 0, pairs = 0;
  while (stream.Next(&shard)) {
    ++epochs;
    pairs += shard.pairs.size();
  }
  EXPECT_EQ(epochs, 3u);
  EXPECT_EQ(pairs, 0u);
}

TEST(WorkloadMergeTest, MergeSortedEqualsSortOfConcatenation) {
  for (int rep = 0; rep < 20; ++rep) {
    const Workload base = SmallWorkload(300 + rep * 17);
    WorkloadStreamOptions options;
    options.num_shards = 3;
    options.order = rep % 2 == 0 ? ArrivalOrder::kShuffled
                                 : ArrivalOrder::kSimilarityAscending;
    options.seed = static_cast<uint64_t>(rep);
    WorkloadStream stream(&base, options);

    Workload merged;
    Shard shard;
    while (stream.Next(&shard)) {
      merged.MergeSorted(std::move(shard.pairs));
    }
    ASSERT_EQ(merged.size(), base.size());
    for (size_t i = 0; i < base.size(); ++i)
      EXPECT_TRUE(SamePair(merged[i], base[i])) << "rep " << rep;
  }
}

TEST(WorkloadMergeTest, PureAppendDetection) {
  const Workload base = SmallWorkload(400);
  WorkloadStreamOptions options;
  options.num_shards = 4;
  options.order = ArrivalOrder::kSimilarityAscending;
  WorkloadStream stream(&base, options);
  Workload merged;
  Shard shard;
  while (stream.Next(&shard)) {
    EXPECT_TRUE(merged.MergeSorted(std::move(shard.pairs)));
  }

  // Shuffled arrivals are interior merges from the second shard on.
  options.order = ArrivalOrder::kShuffled;
  WorkloadStream shuffled(&base, options);
  Workload merged2;
  shuffled.Next(&shard);
  EXPECT_TRUE(merged2.MergeSorted(std::move(shard.pairs)));
  shuffled.Next(&shard);
  EXPECT_FALSE(merged2.MergeSorted(std::move(shard.pairs)));
}

}  // namespace
}  // namespace humo::data
