#include "data/scale_generator.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/blocking.h"
#include "text/token_similarity.h"
#include "text/tokenizer.h"

namespace humo::data {
namespace {

TEST(ScaleGeneratorTest, WorkloadHasConfiguredSizeAndMatches) {
  ScaleWorkloadConfig cfg;
  cfg.num_pairs = 50000;
  cfg.match_fraction = 0.05;
  const Workload w = GenerateScaleWorkload(cfg);
  EXPECT_EQ(w.size(), 50000u);
  EXPECT_EQ(w.CountMatches(), 2500u);
  for (size_t i = 1; i < w.size(); ++i) {
    EXPECT_LE(w.Similarity(i - 1), w.Similarity(i));
  }
  EXPECT_GE(w.Similarity(0), cfg.lo);
  EXPECT_LE(w.Similarity(w.size() - 1), cfg.hi);
}

TEST(ScaleGeneratorTest, WorkloadMatchesSortedRawPairs) {
  ScaleWorkloadConfig cfg;
  cfg.num_pairs = 20000;
  const Workload direct = GenerateScaleWorkload(cfg);
  const Workload via_pairs{GenerateScalePairs(cfg)};
  ASSERT_EQ(direct.size(), via_pairs.size());
  EXPECT_EQ(direct.similarities(), via_pairs.similarities());
  EXPECT_EQ(direct.left_ids(), via_pairs.left_ids());
  EXPECT_EQ(direct.right_ids(), via_pairs.right_ids());
  EXPECT_EQ(direct.match_labels(), via_pairs.match_labels());
}

TEST(ScaleGeneratorTest, WorkloadIsThreadCountInvariant) {
  ScaleWorkloadConfig cfg;
  cfg.num_pairs = 30000;
  ThreadPool::SetGlobalThreads(1);
  const Workload serial = GenerateScaleWorkload(cfg);
  ThreadPool::SetGlobalThreads(4);
  const Workload parallel = GenerateScaleWorkload(cfg);
  ThreadPool::SetGlobalThreads(0);
  EXPECT_EQ(serial.similarities(), parallel.similarities());
  EXPECT_EQ(serial.match_labels(), parallel.match_labels());
}

TEST(ScaleGeneratorTest, PresetsScaleThePairCount) {
  EXPECT_EQ(ScaleConfig1M().num_pairs, 1000000u);
  EXPECT_EQ(ScaleConfig5M().num_pairs, 5000000u);
  EXPECT_EQ(ScaleConfig10M().num_pairs, 10000000u);
}

TEST(ScaleGeneratorTest, TablesDriveTokenBlockToExactCandidateCount) {
  ScaleTablesConfig cfg;
  cfg.groups = 64;
  cfg.left_per_group = 4;
  cfg.right_per_group = 4;
  cfg.match_fraction = 0.1;
  const ScaleTables t = GenerateScaleTables(cfg);
  ASSERT_EQ(t.left.size(), 64u * 4u);
  ASSERT_EQ(t.right.size(), 64u * 4u);

  const PairScorer scorer = [](const Record& a, const Record& b) {
    return text::JaccardSimilarity(text::WordTokens(a.attributes[1]),
                                   text::WordTokens(b.attributes[1]));
  };
  // Threshold 0 keeps every candidate: the group construction promises
  // exactly groups * L * R of them.
  const Workload w = TokenBlock(t.left, t.right, 0, scorer, 0.0);
  EXPECT_EQ(w.size(), 64u * 4u * 4u);
  EXPECT_GT(w.CountMatches(), 0u);

  // Matching pairs share a perturbed name: their similarity must dominate
  // the non-matching in-group pairs on average.
  double match_sum = 0.0, unmatch_sum = 0.0;
  size_t matches = 0, unmatches = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (w.IsMatch(i)) {
      match_sum += w.Similarity(i);
      ++matches;
    } else {
      unmatch_sum += w.Similarity(i);
      ++unmatches;
    }
  }
  ASSERT_GT(matches, 0u);
  ASSERT_GT(unmatches, 0u);
  EXPECT_GT(match_sum / static_cast<double>(matches),
            unmatch_sum / static_cast<double>(unmatches) + 0.3);
}

TEST(ScaleGeneratorTest, PerturbedTablesDeterministicAndDistinctFromLegacy) {
  ScaleTablesConfig legacy_cfg;
  legacy_cfg.groups = 16;
  ScaleTablesConfig perturbed_cfg = legacy_cfg;
  perturbed_cfg.perturb_names = true;

  const ScaleTables p1 = GenerateScaleTables(perturbed_cfg);
  const ScaleTables p2 = GenerateScaleTables(perturbed_cfg);
  ASSERT_EQ(p1.right.size(), p2.right.size());
  for (size_t i = 0; i < p1.right.size(); ++i) {
    EXPECT_EQ(p1.right[i].entity_id, p2.right[i].entity_id);
    EXPECT_EQ(p1.right[i].attributes, p2.right[i].attributes);
  }

  // The knob only rewrites MATCHED right names: left tables and match
  // structure are identical to the legacy realization, and at least one
  // matched right name differs from its legacy "append one word" form.
  const ScaleTables legacy = GenerateScaleTables(legacy_cfg);
  ASSERT_EQ(legacy.left.size(), p1.left.size());
  size_t matched = 0, renamed = 0;
  for (size_t i = 0; i < legacy.left.size(); ++i) {
    EXPECT_EQ(legacy.left[i].attributes, p1.left[i].attributes);
  }
  for (size_t i = 0; i < legacy.right.size(); ++i) {
    EXPECT_EQ(legacy.right[i].entity_id, p1.right[i].entity_id);
    const bool is_match = legacy.right[i].entity_id <
                          legacy_cfg.groups * legacy_cfg.left_per_group;
    if (!is_match) {
      EXPECT_EQ(legacy.right[i].attributes, p1.right[i].attributes);
      continue;
    }
    ++matched;
    renamed += legacy.right[i].attributes[1] != p1.right[i].attributes[1];
  }
  EXPECT_GT(matched, 0u);
  EXPECT_GT(renamed, 0u);
}

TEST(ScaleGeneratorTest, TablesAreDeterministic) {
  ScaleTablesConfig cfg;
  cfg.groups = 16;
  const ScaleTables a = GenerateScaleTables(cfg);
  const ScaleTables b = GenerateScaleTables(cfg);
  ASSERT_EQ(a.left.size(), b.left.size());
  for (size_t i = 0; i < a.left.size(); ++i) {
    EXPECT_EQ(a.left[i].entity_id, b.left[i].entity_id);
    EXPECT_EQ(a.left[i].attributes, b.left[i].attributes);
  }
  for (size_t i = 0; i < a.right.size(); ++i) {
    EXPECT_EQ(a.right[i].entity_id, b.right[i].entity_id);
    EXPECT_EQ(a.right[i].attributes, b.right[i].attributes);
  }
}

}  // namespace
}  // namespace humo::data
