#include "data/entity_graph_generator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "entity/entity_clustering.h"
#include "eval/entity_metrics.h"

namespace humo {
namespace {

using data::EntityGraph;
using data::EntityGraphConfig;
using data::EntityGraphConfigForPairs;
using data::EntityGraphPairCount;
using data::GenerateEntityGraph;
using data::NoisyLabels;
using entity::ClusteringOptions;
using entity::EntityClustering;

constexpr ClusteringOptions kDedup{0, 0};

EntityGraphConfig SmallConfig(uint64_t seed) {
  EntityGraphConfig config;
  config.num_entities = 400;
  config.seed = seed;
  return config;
}

TEST(EntityGraphGeneratorTest, PairCountMatchesRealization) {
  const EntityGraphConfig config = SmallConfig(7);
  const EntityGraph g = GenerateEntityGraph(config);
  EXPECT_EQ(g.workload.size(), EntityGraphPairCount(config));
  EXPECT_EQ(g.entity_of_record.size(), g.num_records);
  EXPECT_EQ(g.num_entities, config.num_entities);
  EXPECT_GE(g.num_records, config.num_entities * config.min_entity_size);
  EXPECT_LE(g.num_records, config.num_entities * config.max_entity_size);
}

TEST(EntityGraphGeneratorTest, DeterministicRealization) {
  const EntityGraph a = GenerateEntityGraph(SmallConfig(11));
  const EntityGraph b = GenerateEntityGraph(SmallConfig(11));
  ASSERT_EQ(a.workload.size(), b.workload.size());
  EXPECT_EQ(a.entity_of_record, b.entity_of_record);
  for (size_t i = 0; i < a.workload.size(); ++i) {
    ASSERT_EQ(a.workload.Similarity(i), b.workload.Similarity(i));
    ASSERT_EQ(a.workload.left_id_data()[i], b.workload.left_id_data()[i]);
    ASSERT_EQ(a.workload.right_id_data()[i], b.workload.right_id_data()[i]);
    ASSERT_EQ(a.workload.label_data()[i], b.workload.label_data()[i]);
  }
  // A different seed realizes a different workload.
  const EntityGraph c = GenerateEntityGraph(SmallConfig(12));
  EXPECT_NE(eval::TruthClustering(a.workload, kDedup).Checksum(),
            eval::TruthClustering(c.workload, kDedup).Checksum());
}

TEST(EntityGraphGeneratorTest, TruthClusteringRecoversLatentPartition) {
  const EntityGraph g = GenerateEntityGraph(SmallConfig(21));
  const EntityClustering c = eval::TruthClustering(g.workload, kDedup);

  // Every record is mentioned (each one owns at least one cross pair), the
  // spanning path keeps each latent entity connected, and truth labels are
  // transitively consistent — so the recovered partition must equal the
  // latent one up to entity renumbering.
  ASSERT_EQ(c.num_records(), g.num_records);
  ASSERT_EQ(c.num_entities(), g.num_entities);
  std::vector<uint32_t> latent_to_predicted(g.num_entities, UINT32_MAX);
  for (uint32_t r = 0; r < g.num_records; ++r) {
    const auto predicted = c.EntityOf({0, r});
    ASSERT_TRUE(predicted.has_value());
    uint32_t& mapped = latent_to_predicted[g.entity_of_record[r]];
    if (mapped == UINT32_MAX) {
      mapped = *predicted;
    } else {
      ASSERT_EQ(mapped, *predicted) << "record " << r;
    }
  }
}

TEST(EntityGraphGeneratorTest, ConfigForPairsReachesTarget) {
  const size_t target = 50'000;
  const EntityGraphConfig config = EntityGraphConfigForPairs(target, 5);
  const size_t count = EntityGraphPairCount(config);
  EXPECT_GE(count, target);
  EXPECT_LT(count, target + target / 4);  // no gross overshoot
}

TEST(EntityGraphGeneratorTest, NoisyLabelsFlipTheRequestedFraction) {
  const EntityGraph g = GenerateEntityGraph(SmallConfig(31));
  const std::vector<int> truth = g.workload.GroundTruthLabels();

  EXPECT_EQ(NoisyLabels(g.workload, 0.0, 9), truth);

  const std::vector<int> noisy = NoisyLabels(g.workload, 0.1, 9);
  EXPECT_EQ(noisy, NoisyLabels(g.workload, 0.1, 9));  // deterministic
  size_t flipped = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (noisy[i] != truth[i]) ++flipped;
  }
  const double fraction =
      static_cast<double>(flipped) / static_cast<double>(truth.size());
  EXPECT_GT(fraction, 0.06);
  EXPECT_LT(fraction, 0.14);
}

}  // namespace
}  // namespace humo
