#include "data/mmap_columns.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>
#include <string>
#include <vector>

#include "core/all_sampling_optimizer.h"
#include "core/oracle.h"
#include "core/partition.h"
#include "core/solution.h"
#include "data/scale_generator.h"
#include "data/workload.h"

namespace humo::data {
namespace {

Workload SmallSortedWorkload(size_t n = 5000, uint64_t seed = 42) {
  ScaleWorkloadConfig config;
  config.num_pairs = n;
  config.seed = seed;
  return GenerateScaleWorkload(config);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Bytewise file equality, for the external-sort == in-RAM-sort contract.
bool FilesIdentical(const std::string& a, const std::string& b) {
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  if (!fa || !fb) return false;
  std::vector<char> ba((std::istreambuf_iterator<char>(fa)),
                       std::istreambuf_iterator<char>());
  std::vector<char> bb((std::istreambuf_iterator<char>(fb)),
                       std::istreambuf_iterator<char>());
  return ba == bb;
}

void ExpectColumnsEqualWorkload(const MmapColumns& cols, const Workload& w) {
  ASSERT_EQ(cols.num_pairs(), w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(cols.similarities()[i], w.Similarity(i)) << "pair " << i;
    EXPECT_EQ(cols.left_ids()[i], w.left_id_data()[i]) << "pair " << i;
    EXPECT_EQ(cols.right_ids()[i], w.right_id_data()[i]) << "pair " << i;
    EXPECT_EQ(cols.labels()[i] != 0, w.IsMatch(i)) << "pair " << i;
  }
}

TEST(MmapColumnsTest, WriteThenOpenRoundTripsEveryColumn) {
  const Workload w = SmallSortedWorkload();
  const std::string path = TempPath("roundtrip.humocol");
  ASSERT_TRUE(WriteColumnsFile(w, path).ok());
  auto cols = MmapColumns::Open(path, /*verify_sorted=*/true);
  ASSERT_TRUE(cols.ok()) << cols.status().message();
  ExpectColumnsEqualWorkload(**cols, w);
  std::remove(path.c_str());
}

TEST(MmapColumnsTest, OpenRejectsBadMagicAndTruncation) {
  const Workload w = SmallSortedWorkload(/*n=*/500);
  const std::string path = TempPath("corrupt.humocol");
  ASSERT_TRUE(WriteColumnsFile(w, path).ok());

  // Corrupt the magic.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.put('X');
  }
  EXPECT_FALSE(MmapColumns::Open(path).ok());

  // Rewrite, then truncate the labels column off the end.
  ASSERT_TRUE(WriteColumnsFile(w, path).ok());
  ASSERT_TRUE(MmapColumns::Open(path).ok());
  {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    const auto size = static_cast<size_t>(f.tellg());
    ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size - 100)), 0);
  }
  EXPECT_FALSE(MmapColumns::Open(path).ok());
  std::remove(path.c_str());
}

TEST(MmapColumnsTest, VerifySortedCatchesInversions) {
  Workload w;
  w.Add({0, 0, 0.9, false});
  w.Add({1, 1, 0.1, false});  // NOT sorted.
  const std::string path = TempPath("unsorted.humocol");
  ASSERT_TRUE(WriteColumnsFile(w, path).ok());
  EXPECT_TRUE(MmapColumns::Open(path, /*verify_sorted=*/false).ok());
  EXPECT_FALSE(MmapColumns::Open(path, /*verify_sorted=*/true).ok());
  std::remove(path.c_str());
}

TEST(ExternalColumnsWriterTest, MergedFileBitIdenticalToInRamSort) {
  // The full realization, sorted in RAM, written directly.
  ScaleWorkloadConfig config;
  config.num_pairs = 20000;
  config.seed = 7;
  const Workload in_ram = GenerateScaleWorkload(config);
  const std::string golden = TempPath("golden.humocol");
  ASSERT_TRUE(WriteColumnsFile(in_ram, golden).ok());

  // The same pairs streamed through the external sorter in uneven unsorted
  // chunks, with a run size that forces several spill/merge runs.
  const std::string merged = TempPath("merged.humocol");
  ExternalColumnsWriter writer(merged, /*run_pairs=*/3000);
  const size_t kChunks[] = {1, 4999, 2500, 7500, 5000};
  size_t begin = 0;
  for (const size_t chunk : kChunks) {
    const ScaleColumns cols =
        GenerateScaleColumnsRange(config, begin, begin + chunk);
    ASSERT_TRUE(writer
                    .Append(cols.similarities.data(), cols.left_ids.data(),
                            cols.right_ids.data(), cols.labels.data(),
                            chunk)
                    .ok());
    begin += chunk;
  }
  ASSERT_EQ(begin, config.num_pairs);
  auto total = writer.Finish();
  ASSERT_TRUE(total.ok()) << total.status().message();
  EXPECT_EQ(*total, config.num_pairs);

  EXPECT_TRUE(FilesIdentical(golden, merged));
  std::remove(golden.c_str());
  std::remove(merged.c_str());
}

TEST(ExternalColumnsWriterTest, SingleRunSkipsNoPairs) {
  ScaleWorkloadConfig config;
  config.num_pairs = 1000;
  const ScaleColumns cols = GenerateScaleColumns(config);
  const std::string path = TempPath("single_run.humocol");
  ExternalColumnsWriter writer(path, /*run_pairs=*/1 << 20);
  ASSERT_TRUE(writer
                  .Append(cols.similarities.data(), cols.left_ids.data(),
                          cols.right_ids.data(), cols.labels.data(),
                          config.num_pairs)
                  .ok());
  auto total = writer.Finish();
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, config.num_pairs);
  auto mapped = MmapColumns::Open(path, /*verify_sorted=*/true);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ((*mapped)->num_pairs(), config.num_pairs);
  std::remove(path.c_str());
}

TEST(WorkloadFromMmapTest, ReadsMatchRamBackedWorkload) {
  const Workload ram = SmallSortedWorkload();
  const std::string path = TempPath("frommap.humocol");
  ASSERT_TRUE(WriteColumnsFile(ram, path).ok());
  auto cols = MmapColumns::Open(path);
  ASSERT_TRUE(cols.ok());
  const Workload mapped = Workload::FromMmap(*cols);
  EXPECT_TRUE(mapped.mmap_backed());
  ASSERT_EQ(mapped.size(), ram.size());
  for (size_t i = 0; i < ram.size(); ++i) {
    EXPECT_EQ(mapped.Similarity(i), ram.Similarity(i));
    EXPECT_EQ(mapped[i].left_id, ram[i].left_id);
    EXPECT_EQ(mapped[i].right_id, ram[i].right_id);
    EXPECT_EQ(mapped.IsMatch(i), ram.IsMatch(i));
  }
  EXPECT_EQ(mapped.CountMatches(), ram.CountMatches());
  // Copies share the mapping and stay valid.
  Workload copy = mapped;
  EXPECT_TRUE(copy.mmap_backed());
  EXPECT_EQ(copy.Similarity(10), ram.Similarity(10));
  std::remove(path.c_str());
}

TEST(WorkloadFromMmapTest, SampCertificationIdenticalToRamBacked) {
  const Workload ram = SmallSortedWorkload(/*n=*/40000, /*seed=*/9);
  const std::string path = TempPath("certify.humocol");
  ASSERT_TRUE(WriteColumnsFile(ram, path).ok());
  auto cols = MmapColumns::Open(path);
  ASSERT_TRUE(cols.ok());
  const Workload mapped = Workload::FromMmap(*cols);

  const core::QualityRequirement req{0.9, 0.9, 0.9};
  auto certify = [&](const Workload& w) {
    core::SubsetPartition p(&w, 200);
    core::Oracle oracle(&w);
    core::AllSamplingOptions o;
    o.seed = 1000;
    auto sol = core::AllSamplingOptimizer(o).Optimize(p, req, &oracle);
    EXPECT_TRUE(sol.ok());
    const auto result = core::ApplySolution(p, *sol, &oracle);
    return std::make_pair(*sol, oracle.cost());
  };
  const auto [ram_sol, ram_cost] = certify(ram);
  const auto [map_sol, map_cost] = certify(mapped);
  // The mmap backing is invisible to the optimizer: identical solution and
  // identical oracle cost.
  EXPECT_EQ(ram_sol.h_lo, map_sol.h_lo);
  EXPECT_EQ(ram_sol.h_hi, map_sol.h_hi);
  EXPECT_EQ(ram_cost, map_cost);
  std::remove(path.c_str());
}

TEST(ScaleColumnsRangeTest, ChunkedGenerationMatchesFullRealization) {
  ScaleWorkloadConfig config;
  config.num_pairs = 10000;
  config.seed = 123;
  const ScaleColumns full = GenerateScaleColumns(config);
  const ScaleColumns mid = GenerateScaleColumnsRange(config, 2500, 7500);
  ASSERT_EQ(mid.similarities.size(), 5000u);
  for (size_t k = 0; k < 5000; ++k) {
    EXPECT_EQ(mid.similarities[k], full.similarities[2500 + k]);
    EXPECT_EQ(mid.left_ids[k], full.left_ids[2500 + k]);
    EXPECT_EQ(mid.right_ids[k], full.right_ids[2500 + k]);
    EXPECT_EQ(mid.labels[k], full.labels[2500 + k]);
  }
}

}  // namespace
}  // namespace humo::data
