#include "data/workload.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace humo::data {
namespace {

Workload MakeWorkload() {
  std::vector<InstancePair> pairs = {
      {0, 0, 0.9, true},
      {1, 1, 0.1, false},
      {2, 2, 0.5, true},
      {3, 3, 0.5, false},
      {4, 4, 0.3, false},
  };
  return Workload(std::move(pairs));
}

TEST(WorkloadTest, ConstructionSorts) {
  const Workload w = MakeWorkload();
  ASSERT_EQ(w.size(), 5u);
  for (size_t i = 1; i < w.size(); ++i)
    EXPECT_LE(w[i - 1].similarity, w[i].similarity);
}

TEST(WorkloadTest, TieBreakDeterministic) {
  // Pairs with equal similarity are ordered by ids.
  const Workload w = MakeWorkload();
  // similarity 0.5 pairs are ids 2 and 3 in id order.
  EXPECT_EQ(w[2].left_id, 2u);
  EXPECT_EQ(w[3].left_id, 3u);
}

TEST(WorkloadTest, CountMatches) {
  EXPECT_EQ(MakeWorkload().CountMatches(), 2u);
  EXPECT_EQ(Workload().CountMatches(), 0u);
}

TEST(WorkloadTest, GroundTruthLabels) {
  const Workload w = MakeWorkload();
  const auto labels = w.GroundTruthLabels();
  ASSERT_EQ(labels.size(), 5u);
  // Sorted order: 0.1(F), 0.3(F), 0.5(T), 0.5(F), 0.9(T).
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[2], 1);
  EXPECT_EQ(labels[4], 1);
}

TEST(WorkloadTest, MatchHistogram) {
  const Workload w = MakeWorkload();
  const auto hist = w.MatchHistogram(2, 0.0, 1.0);
  ASSERT_EQ(hist.size(), 2u);
  // Matches at 0.5 and 0.9: 0.5 lands in the second bucket [0.5, 1.0).
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 2u);
}

TEST(WorkloadTest, MatchHistogramBucketEdges) {
  std::vector<InstancePair> pairs = {{0, 0, 0.0, true}, {1, 1, 0.999, true}};
  const Workload w{std::move(pairs)};
  const auto hist = w.MatchHistogram(10);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[9], 1u);
}

TEST(WorkloadTest, AddThenSort) {
  Workload w;
  w.Add({0, 0, 0.7, false});
  w.Add({1, 1, 0.2, true});
  w.SortBySimilarity();
  EXPECT_DOUBLE_EQ(w[0].similarity, 0.2);
}

TEST(SummarizeTest, BasicStats) {
  const auto s = Summarize(MakeWorkload());
  EXPECT_EQ(s.num_pairs, 5u);
  EXPECT_EQ(s.num_matches, 2u);
  EXPECT_DOUBLE_EQ(s.min_similarity, 0.1);
  EXPECT_DOUBLE_EQ(s.max_similarity, 0.9);
  EXPECT_DOUBLE_EQ(s.match_fraction, 0.4);
}

TEST(SummarizeTest, EmptyWorkload) {
  const auto s = Summarize(Workload{});
  EXPECT_EQ(s.num_pairs, 0u);
  EXPECT_DOUBLE_EQ(s.match_fraction, 0.0);
}

TEST(WorkloadSoaTest, ColumnsMirrorPairView) {
  const Workload w = MakeWorkload();
  ASSERT_EQ(w.similarities().size(), w.size());
  ASSERT_EQ(w.left_ids().size(), w.size());
  ASSERT_EQ(w.right_ids().size(), w.size());
  ASSERT_EQ(w.match_labels().size(), w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    const InstancePair p = w[i];
    EXPECT_EQ(p.similarity, w.Similarity(i));
    EXPECT_EQ(p.similarity, w.similarities()[i]);
    EXPECT_EQ(p.left_id, w.left_ids()[i]);
    EXPECT_EQ(p.right_id, w.right_ids()[i]);
    EXPECT_EQ(p.is_match, w.IsMatch(i));
    EXPECT_EQ(p.is_match, w.match_labels()[i] != 0);
  }
  const auto materialized = w.MaterializePairs();
  ASSERT_EQ(materialized.size(), w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(materialized[i].similarity, w.Similarity(i));
    EXPECT_EQ(materialized[i].left_id, w.left_ids()[i]);
  }
}

/// Deterministic hash-based pair stream, heavy on exact similarity ties so
/// the radix sort's tiebreak cleanup is exercised.
std::vector<InstancePair> TieHeavyPairs(size_t n) {
  std::vector<InstancePair> pairs;
  pairs.reserve(n);
  uint64_t state = 42;
  for (size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    // Only 97 distinct similarity values across n pairs.
    const double sim =
        static_cast<double>((state >> 33) % 97) / 96.0;
    pairs.push_back({static_cast<uint32_t>(state % 5000),
                     static_cast<uint32_t>((state >> 13) % 5000), sim,
                     (state & 1) != 0});
  }
  return pairs;
}

TEST(WorkloadSoaTest, RadixSortMatchesComparisonSortIncludingTies) {
  // Above the radix threshold (2048) AND with massive similarity ties: the
  // result must equal a std::sort under PairLess element for element.
  auto pairs = TieHeavyPairs(10000);
  auto reference = pairs;
  std::sort(reference.begin(), reference.end(), PairLess);

  const Workload w{std::move(pairs)};
  ASSERT_EQ(w.size(), reference.size());
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w.Similarity(i), reference[i].similarity) << "at " << i;
    EXPECT_EQ(w.left_ids()[i], reference[i].left_id) << "at " << i;
    EXPECT_EQ(w.right_ids()[i], reference[i].right_id) << "at " << i;
  }
}

TEST(WorkloadSoaTest, FromColumnsEqualsPairConstruction) {
  auto pairs = TieHeavyPairs(3000);
  std::vector<uint32_t> lefts, rights;
  std::vector<double> sims;
  std::vector<uint8_t> labels;
  for (const auto& p : pairs) {
    lefts.push_back(p.left_id);
    rights.push_back(p.right_id);
    sims.push_back(p.similarity);
    labels.push_back(p.is_match ? 1 : 0);
  }
  const Workload from_cols =
      Workload::FromColumns(std::move(lefts), std::move(rights),
                            std::move(sims), std::move(labels));
  const Workload from_pairs{std::move(pairs)};
  ASSERT_EQ(from_cols.size(), from_pairs.size());
  EXPECT_EQ(from_cols.similarities(), from_pairs.similarities());
  EXPECT_EQ(from_cols.left_ids(), from_pairs.left_ids());
  EXPECT_EQ(from_cols.right_ids(), from_pairs.right_ids());
  EXPECT_EQ(from_cols.match_labels(), from_pairs.match_labels());
}

TEST(WorkloadSoaTest, IndexOfSortedFindsEveryPair) {
  const Workload w{TieHeavyPairs(5000)};
  for (size_t i = 0; i < w.size(); i += 97) {
    const InstancePair p = w[i];
    const size_t found = w.IndexOfSorted(p);
    ASSERT_LT(found, w.size());
    // Exact-duplicate (sim, left, right) keys may map to an earlier twin;
    // the found pair must be identical in every keyed field.
    EXPECT_EQ(w.Similarity(found), p.similarity);
    EXPECT_EQ(w.left_ids()[found], p.left_id);
    EXPECT_EQ(w.right_ids()[found], p.right_id);
  }
  EXPECT_EQ(w.IndexOfSorted({9999, 9999, 0.123456789, false}), w.size());
}

TEST(WorkloadSoaTest, MergeSortedEqualsSortOfConcatenationAtRadixScale) {
  auto base_pairs = TieHeavyPairs(6000);
  auto incoming = TieHeavyPairs(4000);
  for (auto& p : incoming) p.left_id += 5000;  // distinct id space

  std::vector<InstancePair> all = base_pairs;
  all.insert(all.end(), incoming.begin(), incoming.end());
  const Workload reference{std::move(all)};

  Workload merged{std::move(base_pairs)};
  merged.MergeSorted(std::move(incoming));
  ASSERT_EQ(merged.size(), reference.size());
  EXPECT_EQ(merged.similarities(), reference.similarities());
  EXPECT_EQ(merged.left_ids(), reference.left_ids());
  EXPECT_EQ(merged.right_ids(), reference.right_ids());
  EXPECT_EQ(merged.match_labels(), reference.match_labels());
}

}  // namespace
}  // namespace humo::data
