#include "data/workload.h"

#include <gtest/gtest.h>

namespace humo::data {
namespace {

Workload MakeWorkload() {
  std::vector<InstancePair> pairs = {
      {0, 0, 0.9, true},
      {1, 1, 0.1, false},
      {2, 2, 0.5, true},
      {3, 3, 0.5, false},
      {4, 4, 0.3, false},
  };
  return Workload(std::move(pairs));
}

TEST(WorkloadTest, ConstructionSorts) {
  const Workload w = MakeWorkload();
  ASSERT_EQ(w.size(), 5u);
  for (size_t i = 1; i < w.size(); ++i)
    EXPECT_LE(w[i - 1].similarity, w[i].similarity);
}

TEST(WorkloadTest, TieBreakDeterministic) {
  // Pairs with equal similarity are ordered by ids.
  const Workload w = MakeWorkload();
  // similarity 0.5 pairs are ids 2 and 3 in id order.
  EXPECT_EQ(w[2].left_id, 2u);
  EXPECT_EQ(w[3].left_id, 3u);
}

TEST(WorkloadTest, CountMatches) {
  EXPECT_EQ(MakeWorkload().CountMatches(), 2u);
  EXPECT_EQ(Workload().CountMatches(), 0u);
}

TEST(WorkloadTest, GroundTruthLabels) {
  const Workload w = MakeWorkload();
  const auto labels = w.GroundTruthLabels();
  ASSERT_EQ(labels.size(), 5u);
  // Sorted order: 0.1(F), 0.3(F), 0.5(T), 0.5(F), 0.9(T).
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[2], 1);
  EXPECT_EQ(labels[4], 1);
}

TEST(WorkloadTest, MatchHistogram) {
  const Workload w = MakeWorkload();
  const auto hist = w.MatchHistogram(2, 0.0, 1.0);
  ASSERT_EQ(hist.size(), 2u);
  // Matches at 0.5 and 0.9: 0.5 lands in the second bucket [0.5, 1.0).
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 2u);
}

TEST(WorkloadTest, MatchHistogramBucketEdges) {
  std::vector<InstancePair> pairs = {{0, 0, 0.0, true}, {1, 1, 0.999, true}};
  const Workload w{std::move(pairs)};
  const auto hist = w.MatchHistogram(10);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[9], 1u);
}

TEST(WorkloadTest, AddThenSort) {
  Workload w;
  w.Add({0, 0, 0.7, false});
  w.Add({1, 1, 0.2, true});
  w.SortBySimilarity();
  EXPECT_DOUBLE_EQ(w[0].similarity, 0.2);
}

TEST(SummarizeTest, BasicStats) {
  const auto s = Summarize(MakeWorkload());
  EXPECT_EQ(s.num_pairs, 5u);
  EXPECT_EQ(s.num_matches, 2u);
  EXPECT_DOUBLE_EQ(s.min_similarity, 0.1);
  EXPECT_DOUBLE_EQ(s.max_similarity, 0.9);
  EXPECT_DOUBLE_EQ(s.match_fraction, 0.4);
}

TEST(SummarizeTest, EmptyWorkload) {
  const auto s = Summarize(Workload{});
  EXPECT_EQ(s.num_pairs, 0u);
  EXPECT_DOUBLE_EQ(s.match_fraction, 0.0);
}

}  // namespace
}  // namespace humo::data
