#include <gtest/gtest.h>

#include <set>

#include "data/product_generator.h"
#include "data/publication_generator.h"

namespace humo::data {
namespace {

TEST(PublicationGeneratorTest, ProducesRequestedCounts) {
  PublicationGeneratorOptions o;
  o.num_curated = 50;
  o.num_crawled = 200;
  const auto tables = GeneratePublications(o);
  EXPECT_EQ(tables.curated.size(), 50u);
  EXPECT_EQ(tables.crawled.size(), 200u);
  EXPECT_EQ(tables.curated.schema().size(), 4u);
}

TEST(PublicationGeneratorTest, CuratedEntitiesAreUnique) {
  PublicationGeneratorOptions o;
  o.num_curated = 80;
  const auto tables = GeneratePublications(o);
  std::set<uint32_t> entities;
  for (const auto& r : tables.curated.records()) entities.insert(r.entity_id);
  EXPECT_EQ(entities.size(), 80u);
}

TEST(PublicationGeneratorTest, DuplicateFractionApproximatelyMet) {
  PublicationGeneratorOptions o;
  o.num_curated = 100;
  o.num_crawled = 1000;
  o.duplicate_fraction = 0.3;
  const auto tables = GeneratePublications(o);
  size_t dups = 0;
  for (const auto& r : tables.crawled.records())
    if (r.entity_id < o.num_curated) ++dups;
  EXPECT_NEAR(static_cast<double>(dups) / 1000.0, 0.3, 0.05);
}

TEST(PublicationGeneratorTest, DeterministicUnderSeed) {
  PublicationGeneratorOptions o;
  o.num_curated = 20;
  o.num_crawled = 50;
  const auto a = GeneratePublications(o);
  const auto b = GeneratePublications(o);
  for (size_t i = 0; i < a.crawled.size(); ++i) {
    EXPECT_EQ(a.crawled[i].attributes, b.crawled[i].attributes);
    EXPECT_EQ(a.crawled[i].entity_id, b.crawled[i].entity_id);
  }
}

TEST(PublicationGeneratorTest, RecordsHaveNonEmptyCoreFields) {
  const auto tables = GeneratePublications({});
  for (const auto& r : tables.curated.records()) {
    EXPECT_FALSE(r.attributes[0].empty());  // title
    EXPECT_FALSE(r.attributes[1].empty());  // authors
  }
}

TEST(ProductGeneratorTest, ProducesRequestedCounts) {
  ProductGeneratorOptions o;
  o.num_left = 60;
  o.num_right = 90;
  const auto tables = GenerateProducts(o);
  EXPECT_EQ(tables.left.size(), 60u);
  EXPECT_EQ(tables.right.size(), 90u);
  EXPECT_EQ(tables.left.schema().size(), 3u);
}

TEST(ProductGeneratorTest, OverlapFractionApproximatelyMet) {
  ProductGeneratorOptions o;
  o.num_left = 200;
  o.num_right = 1000;
  o.overlap_fraction = 0.4;
  const auto tables = GenerateProducts(o);
  size_t overlapping = 0;
  for (const auto& r : tables.right.records())
    if (r.entity_id < o.num_left) ++overlapping;
  EXPECT_NEAR(static_cast<double>(overlapping) / 1000.0, 0.4, 0.05);
}

TEST(ProductGeneratorTest, DeterministicUnderSeed) {
  ProductGeneratorOptions o;
  o.num_left = 30;
  o.num_right = 30;
  const auto a = GenerateProducts(o);
  const auto b = GenerateProducts(o);
  for (size_t i = 0; i < a.right.size(); ++i)
    EXPECT_EQ(a.right[i].attributes, b.right[i].attributes);
}

TEST(ProductGeneratorTest, PricesParseAsPositiveNumbers) {
  const auto tables = GenerateProducts({});
  for (const auto& r : tables.left.records()) {
    const double price = std::stod(r.attributes[2]);
    EXPECT_GT(price, 0.0);
  }
}

}  // namespace
}  // namespace humo::data
