#include "data/logistic_generator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace humo::data {
namespace {

TEST(LogisticFunctionTest, MidpointValue) {
  // At v = midpoint the curve sits at ceiling/2.
  EXPECT_NEAR(LogisticMatchProportion(0.55, 14.0), 0.475, 1e-12);
}

TEST(LogisticFunctionTest, Monotone) {
  double prev = -1.0;
  for (double v = 0.0; v <= 1.0; v += 0.05) {
    const double r = LogisticMatchProportion(v, 14.0);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(LogisticFunctionTest, SteeperTauSeparatesFaster) {
  // Above the midpoint, larger tau gives larger proportion.
  EXPECT_GT(LogisticMatchProportion(0.7, 18.0),
            LogisticMatchProportion(0.7, 8.0));
  // Below the midpoint, larger tau gives smaller proportion.
  EXPECT_LT(LogisticMatchProportion(0.4, 18.0),
            LogisticMatchProportion(0.4, 8.0));
}

TEST(LogisticFunctionTest, BoundedByCeiling) {
  for (double v : {0.0, 0.5, 1.0}) {
    const double r = LogisticMatchProportion(v, 14.0);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 0.95);
  }
}

TEST(LogisticGeneratorTest, SizeAndSubsetStructure) {
  LogisticGeneratorOptions o;
  o.num_pairs = 10000;
  o.pairs_per_subset = 100;
  const Workload w = GenerateLogisticWorkload(o);
  EXPECT_EQ(w.size(), 10000u);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i].similarity, 0.0);
    EXPECT_LT(w[i].similarity, 1.0);
  }
}

TEST(LogisticGeneratorTest, ZeroSigmaTracksLogisticCurve) {
  LogisticGeneratorOptions o;
  o.num_pairs = 40000;
  o.pairs_per_subset = 200;
  o.sigma = 0.0;
  o.tau = 14.0;
  const Workload w = GenerateLogisticWorkload(o);
  // Check a mid-band subset's match proportion against the curve.
  const size_t m = o.num_pairs / o.pairs_per_subset;
  const size_t band = m / 2;  // v ~ 0.5
  size_t matches = 0;
  for (size_t i = band * 200; i < (band + 1) * 200; ++i)
    matches += w[i].is_match;
  const double expected =
      LogisticMatchProportion(static_cast<double>(band) / m + 0.5 / m, 14.0);
  EXPECT_NEAR(static_cast<double>(matches) / 200.0, expected, 0.05);
}

TEST(LogisticGeneratorTest, LargerTauMakesMoreSeparableWorkload) {
  LogisticGeneratorOptions low;
  low.num_pairs = 20000;
  low.sigma = 0.0;
  low.tau = 8.0;
  LogisticGeneratorOptions high = low;
  high.tau = 18.0;
  const Workload w_low = GenerateLogisticWorkload(low);
  const Workload w_high = GenerateLogisticWorkload(high);
  // Count label impurity in the bottom 40% of pairs: steeper tau = purer.
  auto impurity_low_region = [](const Workload& w) {
    const size_t cut = w.size() * 2 / 5;
    size_t matches = 0;
    for (size_t i = 0; i < cut; ++i) matches += w[i].is_match;
    return static_cast<double>(matches) / static_cast<double>(cut);
  };
  EXPECT_LT(impurity_low_region(w_high), impurity_low_region(w_low));
}

TEST(LogisticGeneratorTest, SigmaAddsIrregularity) {
  LogisticGeneratorOptions smooth;
  smooth.num_pairs = 40000;
  smooth.sigma = 0.0;
  LogisticGeneratorOptions rough = smooth;
  rough.sigma = 0.4;
  const Workload w_smooth = GenerateLogisticWorkload(smooth);
  const Workload w_rough = GenerateLogisticWorkload(rough);
  // Measure subset-to-subset proportion jumps; the noisy one jumps more.
  auto total_jump = [](const Workload& w) {
    const size_t subset = 200;
    const size_t m = w.size() / subset;
    double prev = -1.0, acc = 0.0;
    for (size_t k = 0; k < m; ++k) {
      size_t matches = 0;
      for (size_t i = k * subset; i < (k + 1) * subset; ++i)
        matches += w[i].is_match;
      const double p = static_cast<double>(matches) / subset;
      if (prev >= 0.0) acc += std::fabs(p - prev);
      prev = p;
    }
    return acc;
  };
  EXPECT_GT(total_jump(w_rough), total_jump(w_smooth) * 1.5);
}

TEST(LogisticGeneratorTest, DeterministicUnderSeed) {
  LogisticGeneratorOptions o;
  o.num_pairs = 5000;
  const Workload a = GenerateLogisticWorkload(o);
  const Workload b = GenerateLogisticWorkload(o);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].similarity, b[i].similarity);
    EXPECT_EQ(a[i].is_match, b[i].is_match);
  }
}

}  // namespace
}  // namespace humo::data
