// Quality-requirement sweep: how human cost scales with the demanded
// precision/recall level — the trade-off curve behind the paper's Fig. 6.
//
//   ./quality_sweep [ds|ab]

#include <cstdio>
#include <cstring>

#include "humo.h"

int main(int argc, char** argv) {
  using namespace humo;

  const bool use_ab = argc > 1 && std::strcmp(argv[1], "ab") == 0;
  const data::Workload workload = data::SimulatePairs(
      use_ab ? data::AbConfig() : data::DsConfig());
  std::printf("workload: %s (%zu pairs, %zu matches)\n\n",
              use_ab ? "AB (product, hard)" : "DS (publication, easy)",
              workload.size(), workload.CountMatches());

  core::SubsetPartition partition(&workload, 200);

  eval::Table table({"(precision, recall)", "BASE cost", "SAMP cost",
                     "HYBR cost", "HYBR precision", "HYBR recall"});
  for (double level : {0.70, 0.75, 0.80, 0.85, 0.90, 0.95}) {
    const core::QualityRequirement req{level, level, 0.9};
    double base_cost = 0.0, samp_cost = 0.0, hybr_cost = 0.0;
    double hybr_p = 0.0, hybr_r = 0.0;
    {
      core::Oracle oracle(&workload);
      auto sol = core::BaselineOptimizer().Optimize(partition, req, &oracle);
      if (sol.ok())
        base_cost =
            core::ApplySolution(partition, *sol, &oracle).human_cost_fraction;
    }
    {
      core::Oracle oracle(&workload);
      auto sol =
          core::PartialSamplingOptimizer().Optimize(partition, req, &oracle);
      if (sol.ok())
        samp_cost =
            core::ApplySolution(partition, *sol, &oracle).human_cost_fraction;
    }
    {
      core::Oracle oracle(&workload);
      auto sol = core::HybridOptimizer().Optimize(partition, req, &oracle);
      if (sol.ok()) {
        const auto r = core::ApplySolution(partition, *sol, &oracle);
        hybr_cost = r.human_cost_fraction;
        const auto q = eval::QualityOf(workload, r.labels);
        hybr_p = q.precision;
        hybr_r = q.recall;
      }
    }
    table.AddRow({"(" + eval::Fmt(level, 2) + ", " + eval::Fmt(level, 2) + ")",
                  eval::FmtPercent(base_cost), eval::FmtPercent(samp_cost),
                  eval::FmtPercent(hybr_cost), eval::Fmt(hybr_p),
                  eval::Fmt(hybr_r)});
  }
  table.Print();
  std::printf("\nNote: cost grows modestly with the quality requirement — "
              "the paper's central ROI observation.\n");
  return 0;
}
