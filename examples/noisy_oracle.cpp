// Imperfect humans: HUMO with an error-injecting oracle.
//
// The paper assumes DH is labeled with 100% accuracy but notes (§IV) that
// with human errors the achievable quality degrades to what the human
// delivers on DH. This example sweeps the oracle error rate and shows the
// graceful degradation — and that the achieved quality roughly tracks
// (1 - error_rate) on the human-labeled share.

#include <cstdio>

#include "humo.h"

int main() {
  using namespace humo;

  const data::Workload workload = data::SimulatePairs(data::DsConfig());
  core::SubsetPartition partition(&workload, 200);
  const core::QualityRequirement req{0.9, 0.9, 0.9};

  eval::Table table({"oracle error", "precision", "recall", "F1",
                     "manual work"});
  for (double err : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    core::Oracle oracle(&workload, err, /*seed=*/17);
    core::HybridOptimizer optimizer;
    auto sol = optimizer.Optimize(partition, req, &oracle);
    if (!sol.ok()) continue;
    const auto result = core::ApplySolution(partition, *sol, &oracle);
    const auto q = eval::QualityOf(workload, result.labels);
    table.AddRow({eval::FmtPercent(err, 0), eval::Fmt(q.precision),
                  eval::Fmt(q.recall), eval::Fmt(q.f1),
                  eval::FmtPercent(result.human_cost_fraction)});
  }
  table.Print();
  std::printf("\nWith error injection the guarantees hold relative to the "
              "human's own accuracy on DH (§IV).\n");
  return 0;
}
