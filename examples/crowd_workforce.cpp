// Crowdsourced human workforce (the paper's §IX future-work direction):
// replace the single expert with a crowd of error-prone workers adjudicated
// by majority vote, and study the cost/quality trade-off of the crowd size.
//
// Cost here is counted in WORKER ANSWERS (the monetary unit of a
// crowdsourcing platform), so asking 3 workers per pair costs 3x a single
// expert — but a 10%-error worker pool at k=3 already delivers 97.2%
// verdict accuracy.

#include <cstdio>

#include "humo.h"

int main() {
  using namespace humo;

  const data::Workload workload = data::SimulatePairs(data::DsConfig());
  core::SubsetPartition partition(&workload, 200);
  const core::QualityRequirement req{0.9, 0.9, 0.9};

  // HUMO plans DH with a perfect planning oracle (sampling phase), then the
  // crowd executes the DH verification. This mirrors a deployment where a
  // small expert team drives the optimizer and the crowd does the bulk
  // labeling.
  eval::Table table({"workers/pair", "worker error", "verdict error",
                     "precision", "recall", "worker answers", "answers/pair"});
  for (size_t k : {1ul, 3ul, 5ul}) {
    for (double err : {0.05, 0.15}) {
      core::Oracle planner(&workload);
      auto sol = core::HybridOptimizer().Optimize(partition, req, &planner);
      if (!sol.ok()) continue;

      core::CrowdOptions crowd_opts;
      crowd_opts.workers_per_pair = k;
      crowd_opts.worker_error_rate = err;
      core::CrowdOracle crowd(&workload, crowd_opts);

      // Execute DH with the crowd.
      std::vector<int> labels(workload.size(), 0);
      const size_t dh_begin = partition[sol->h_lo].begin;
      const size_t dh_end = partition[sol->h_hi].end;
      for (size_t i = 0; i < workload.size(); ++i) {
        if (i >= dh_begin && i < dh_end) {
          labels[i] = crowd.Label(i) ? 1 : 0;
        } else if (i >= dh_end) {
          labels[i] = 1;
        }
      }
      const auto q = eval::QualityOf(workload, labels);
      table.AddRow({std::to_string(k), eval::FmtPercent(err, 0),
                    eval::FmtPercent(crowd.VerdictErrorRate()),
                    eval::Fmt(q.precision), eval::Fmt(q.recall),
                    std::to_string(crowd.worker_answers()),
                    eval::Fmt(
                        static_cast<double>(crowd.worker_answers()) /
                            static_cast<double>(crowd.pairs_adjudicated()),
                        1)});
    }
  }
  table.Print();
  std::printf("\nMajority voting buys back the quality an imperfect crowd "
              "loses; 3-5 workers per pair usually suffice (§IX).\n");
  return 0;
}
