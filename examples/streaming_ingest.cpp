// Streaming ingest walkthrough: a workload arrives in shards, the resolver
// keeps the machine-side state current for free, and human work happens only
// when a certificate is requested — never twice for the same pair.
//
//   build/examples/example_streaming_ingest
//
// The demo streams the simulated DBLP-Scholar workload in 6 shards:
// certify after the first half, keep ingesting with provisional (oracle-free)
// quality monitoring, then re-certify at the end and show that the second
// certificate reused every answer the first one paid for.

#include <cstdio>

#include "humo.h"

using namespace humo;

int main() {
  const data::Workload base =
      data::SimulatePairs(data::DsConfigSmall(555, 20000));
  std::printf("base workload: %zu pairs, %zu true matches\n\n", base.size(),
              base.CountMatches());

  data::WorkloadStreamOptions stream_options;
  stream_options.num_shards = 6;
  stream_options.order = data::ArrivalOrder::kShuffled;
  data::WorkloadStream stream(&base, stream_options);

  core::StreamingOptions options;  // SAMP certifier, subset size 200
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  core::StreamingResolver resolver(options, req);

  auto print_certificate = [&](const core::StreamingCertificate& cert) {
    const auto quality =
        eval::QualityOf(resolver.cumulative(), cert.resolution.labels);
    std::printf(
        "  certificate @ epoch %zu: %s\n"
        "    precision %.4f, recall %.4f (targets %.2f/%.2f @ theta %.2f)\n"
        "    fresh inspections %zu, reused answers %zu, lifetime %zu\n",
        cert.epoch,
        core::DescribeSolution(resolver.partition(), cert.solution).c_str(),
        quality.precision, quality.recall, req.alpha, req.beta, req.theta,
        cert.fresh_inspections, cert.reused_answers, cert.total_inspections);
  };

  data::Shard shard;
  size_t ingested = 0;
  while (stream.Next(&shard)) {
    const core::EpochReport& report = resolver.Ingest(std::move(shard));
    std::printf("epoch %zu: +%zu pairs -> %zu total, %zu subsets (%s merge)",
                report.epoch, report.pairs_arrived, report.pairs_total,
                report.num_subsets,
                report.pure_append ? "tail-append" : "interior");
    if (report.has_estimate) {
      std::printf(", provisional precision ~%.3f recall ~%.3f",
                  report.est_precision, report.est_recall);
    }
    std::printf("\n");
    ++ingested;

    if (ingested == 3) {
      std::printf("\n-- certifying mid-stream (human work happens now) --\n");
      auto cert = resolver.Certify();
      if (!cert.ok()) {
        std::fprintf(stderr, "certify failed: %s\n",
                     cert.status().message().c_str());
        return 1;
      }
      print_certificate(*cert);
      std::printf("\n");
    }
  }

  std::printf("\n-- re-certifying on the full workload --\n");
  auto final_cert = resolver.Certify();
  if (!final_cert.ok()) {
    std::fprintf(stderr, "certify failed: %s\n",
                 final_cert.status().message().c_str());
    return 1;
  }
  print_certificate(*final_cert);

  std::printf(
      "\nzero duplicate oracle requests across the whole stream: %s\n",
      resolver.total_duplicate_requests() == 0 ? "yes" : "NO (bug!)");

  // The one-shot comparison: the same optimizer on the same (complete)
  // workload from scratch.
  core::SubsetPartition partition(&base, 200);
  core::Oracle oracle(&base);
  auto sol = core::PartialSamplingOptimizer(options.sampling)
                 .Optimize(partition, req, &oracle);
  if (!sol.ok()) return 1;
  const auto oneshot = core::ApplySolution(partition, *sol, &oracle);
  std::printf(
      "one-shot SAMP on the full workload: %zu inspections; the streaming\n"
      "final certificate matched its labeling %s and paid %zu fresh\n"
      "(%zu reused from the mid-stream certificate).\n",
      oracle.cost(),
      final_cert->resolution.labels == oneshot.labels ? "exactly"
                                                      : "DIFFERENTLY (bug?)",
      final_cert->fresh_inspections, final_cert->reused_answers);
  return 0;
}
