// Publication deduplication, end to end at the record level.
//
// Mirrors the paper's DBLP-Scholar scenario: a small curated bibliography
// is matched against a large crawled one. This example exercises the whole
// wrangling pipeline the pair-level simulators skip: attribute similarity
// functions (Jaccard on title/authors, Jaro-Winkler on venue), weights from
// distinct-value counts, threshold blocking, then HUMO with quality
// guarantees.

#include <cstdio>

#include "humo.h"

int main() {
  using namespace humo;

  // ---- Generate two bibliographic tables over one entity universe. ----
  data::PublicationGeneratorOptions gen;
  gen.num_curated = 300;
  gen.num_crawled = 3000;
  gen.duplicate_fraction = 0.3;
  gen.seed = 42;
  const auto tables = data::GeneratePublications(gen);
  std::printf("curated table: %zu records; crawled table: %zu records\n",
              tables.curated.size(), tables.crawled.size());

  // ---- Attribute similarity with distinct-count weights (paper §VIII-A).
  std::vector<std::vector<std::string>> all_records;
  for (const auto& r : tables.curated.records())
    all_records.push_back(r.attributes);
  for (const auto& r : tables.crawled.records())
    all_records.push_back(r.attributes);
  const auto weights =
      text::AggregatedSimilarity::WeightsFromDistinctCounts(all_records, 3);
  std::printf("attribute weights (distinct counts): title=%.0f authors=%.0f "
              "venue=%.0f\n",
              weights[0], weights[1], weights[2]);

  std::vector<text::AttributeSpec> specs;
  specs.push_back({"title",
                   [](std::string_view a, std::string_view b) {
                     return text::JaccardSimilarity(a, b);
                   },
                   weights[0]});
  specs.push_back({"authors",
                   [](std::string_view a, std::string_view b) {
                     return text::JaccardSimilarity(a, b);
                   },
                   weights[1]});
  specs.push_back({"venue",
                   [](std::string_view a, std::string_view b) {
                     return text::JaroWinklerSimilarity(a, b);
                   },
                   weights[2]});
  const text::AggregatedSimilarity sim(std::move(specs));

  // ---- Blocking: keep candidate pairs with similarity >= 0.1. ----
  const auto scorer = [&sim](const data::Record& a, const data::Record& b) {
    return sim(a.attributes, b.attributes);
  };
  const data::Workload workload =
      data::ThresholdBlock(tables.curated, tables.crawled, scorer, 0.1);
  const auto stats =
      data::ComputeBlockingStats(tables.curated, tables.crawled, workload);
  std::printf("blocking: %zu candidate pairs (reduction %.1f%%, "
              "completeness %.1f%%)\n",
              stats.candidate_pairs, 100.0 * stats.ReductionRatio(),
              100.0 * stats.PairCompleteness());

  // ---- HUMO: enforce precision and recall 0.9 at confidence 0.9. ----
  core::SubsetPartition partition(&workload, 100);
  core::Oracle oracle(&workload);
  const core::QualityRequirement req{0.9, 0.9, 0.9};
  core::HybridOptimizer optimizer;
  auto solution = optimizer.Optimize(partition, req, &oracle);
  if (!solution.ok()) {
    std::fprintf(stderr, "optimization failed: %s\n",
                 solution.status().ToString().c_str());
    return 1;
  }
  const auto result = core::ApplySolution(partition, *solution, &oracle);
  const auto quality = eval::QualityOf(workload, result.labels);

  std::printf("\n%s\n", core::DescribeSolution(partition, *solution).c_str());
  std::printf("precision %.4f | recall %.4f | F1 %.4f\n", quality.precision,
              quality.recall, quality.f1);
  std::printf("human inspected %zu of %zu pairs (%.2f%%)\n",
              result.human_cost, workload.size(),
              100.0 * result.human_cost_fraction);

  // ---- Contrast with the machine-only SVM reference (Table I role). ----
  ml::Dataset dataset;
  for (size_t i = 0; i < workload.size(); ++i) {
    dataset.Add({workload[i].similarity}, workload[i].is_match ? 1 : 0);
  }
  Rng rng(7);
  const auto split = ml::SplitDataset(dataset, 0.5, &rng);
  ml::SvmOptions svm_options;
  svm_options.positive_weight = 10.0;
  const auto svm = ml::LinearSvm::Train(split.train, svm_options);
  std::vector<int> preds;
  for (const auto& f : split.test.features) preds.push_back(svm.Predict(f));
  const auto svm_metrics = ml::EvaluateLabels(preds, split.test.labels);
  std::printf("\nmachine-only SVM reference: precision %.3f recall %.3f "
              "F1 %.3f (no guarantees, zero human cost)\n",
              svm_metrics.precision(), svm_metrics.recall(),
              svm_metrics.f1());
  return 0;
}
