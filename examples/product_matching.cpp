// Product matching across two retail catalogs (the paper's Abt-Buy
// scenario): the same items are described with divergent wording, so
// matching pairs sit at low similarity and machine-only classification
// collapses. HUMO still enforces the quality requirement — at a visibly
// higher human cost than on the easy bibliographic workload.

#include <cstdio>

#include "humo.h"

int main() {
  using namespace humo;

  data::ProductGeneratorOptions gen;
  gen.num_left = 400;
  gen.num_right = 2000;
  gen.overlap_fraction = 0.25;
  gen.rewrite_rate = 0.5;
  gen.seed = 9;
  const auto tables = data::GenerateProducts(gen);
  std::printf("catalog A: %zu products; catalog B: %zu products\n",
              tables.left.size(), tables.right.size());

  // Name + description similarities, weighted by distinct-value counts.
  std::vector<std::vector<std::string>> all_records;
  for (const auto& r : tables.left.records())
    all_records.push_back(r.attributes);
  for (const auto& r : tables.right.records())
    all_records.push_back(r.attributes);
  const auto weights =
      text::AggregatedSimilarity::WeightsFromDistinctCounts(all_records, 2);

  std::vector<text::AttributeSpec> specs;
  specs.push_back({"name",
                   [](std::string_view a, std::string_view b) {
                     return text::JaccardSimilarity(a, b);
                   },
                   weights[0]});
  specs.push_back({"description",
                   [](std::string_view a, std::string_view b) {
                     return text::JaccardSimilarity(a, b);
                   },
                   weights[1]});
  const text::AggregatedSimilarity sim(std::move(specs));

  // Token blocking on the name attribute keeps this subquadratic, then the
  // paper's low threshold (0.05) keeps even weak candidates.
  const auto scorer = [&sim](const data::Record& a, const data::Record& b) {
    return sim(a.attributes, b.attributes);
  };
  const data::Workload workload =
      data::TokenBlock(tables.left, tables.right, /*attribute_index=*/0,
                       scorer, 0.05);
  const auto stats =
      data::ComputeBlockingStats(tables.left, tables.right, workload);
  std::printf("blocking: %zu candidates (reduction %.1f%%, completeness "
              "%.1f%%)\n",
              stats.candidate_pairs, 100.0 * stats.ReductionRatio(),
              100.0 * stats.PairCompleteness());

  core::SubsetPartition partition(&workload, 100);
  const core::QualityRequirement req{0.85, 0.85, 0.9};

  // Run all three optimizers for comparison.
  struct Row {
    const char* name;
    double precision, recall, cost;
  };
  std::vector<Row> rows;
  {
    core::Oracle oracle(&workload);
    auto sol = core::BaselineOptimizer().Optimize(partition, req, &oracle);
    if (sol.ok()) {
      const auto r = core::ApplySolution(partition, *sol, &oracle);
      const auto q = eval::QualityOf(workload, r.labels);
      rows.push_back({"BASE", q.precision, q.recall, r.human_cost_fraction});
    }
  }
  {
    core::Oracle oracle(&workload);
    core::PartialSamplingOptions opts;
    opts.sample_fraction_lo = 0.05;
    opts.sample_fraction_hi = 0.08;
    auto sol = core::PartialSamplingOptimizer(opts).Optimize(partition, req,
                                                             &oracle);
    if (sol.ok()) {
      const auto r = core::ApplySolution(partition, *sol, &oracle);
      const auto q = eval::QualityOf(workload, r.labels);
      rows.push_back({"SAMP", q.precision, q.recall, r.human_cost_fraction});
    }
  }
  {
    core::Oracle oracle(&workload);
    core::HybridOptions opts;
    opts.sampling.sample_fraction_lo = 0.05;
    opts.sampling.sample_fraction_hi = 0.08;
    auto sol = core::HybridOptimizer(opts).Optimize(partition, req, &oracle);
    if (sol.ok()) {
      const auto r = core::ApplySolution(partition, *sol, &oracle);
      const auto q = eval::QualityOf(workload, r.labels);
      rows.push_back({"HYBR", q.precision, q.recall, r.human_cost_fraction});
    }
  }

  eval::Table table({"optimizer", "precision", "recall", "manual work"});
  for (const auto& r : rows) {
    table.AddRow({r.name, eval::Fmt(r.precision), eval::Fmt(r.recall),
                  eval::FmtPercent(r.cost)});
  }
  std::printf("\nquality requirement: precision >= %.2f, recall >= %.2f, "
              "confidence %.2f\n\n",
              req.alpha, req.beta, req.theta);
  table.Print();
  std::printf(
      "\nOn hard product workloads the monotonicity-only BASE bounds can\n"
      "stop the recall walk early (matches hide among low-similarity\n"
      "pairs, so a window of human labels may read zero matches while\n"
      "thousands of pairs below still hide a few) — the sampling-based\n"
      "optimizers bound that tail explicitly, which is the paper's case\n"
      "for SAMP/HYBR on workloads like Abt-Buy.\n");
  return 0;
}
