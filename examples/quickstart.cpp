// Quickstart: resolve a simulated workload with quality guarantees.
//
// Builds the paper's DBLP-Scholar-style workload, asks HUMO's hybrid
// optimizer for precision >= 0.9 and recall >= 0.9 at confidence 0.9, and
// reports the achieved quality and the human cost.
//
//   ./quickstart [alpha] [beta] [theta]

#include <cstdio>
#include <cstdlib>

#include "humo.h"

int main(int argc, char** argv) {
  using namespace humo;

  core::QualityRequirement req;
  req.alpha = argc > 1 ? std::atof(argv[1]) : 0.9;
  req.beta = argc > 2 ? std::atof(argv[2]) : 0.9;
  req.theta = argc > 3 ? std::atof(argv[3]) : 0.9;

  std::printf("HUMO quickstart: precision >= %.2f, recall >= %.2f, "
              "confidence %.2f\n\n",
              req.alpha, req.beta, req.theta);

  // 1. A workload: record pairs scored by a machine metric plus hidden
  //    ground truth. Here: the simulator calibrated to the paper's
  //    DBLP-Scholar statistics (100,077 pairs, 5,267 matches).
  const data::Workload workload = data::SimulatePairs(data::DsConfig());
  const auto summary = data::Summarize(workload);
  std::printf("workload: %zu pairs, %zu true matches (%.2f%%)\n",
              summary.num_pairs, summary.num_matches,
              100.0 * summary.match_fraction);

  // 2. Partition into unit subsets of 200 pairs, ordered by similarity.
  core::SubsetPartition partition(&workload, 200);

  // 3. The oracle simulates the human workforce and accounts every
  //    distinct pair it is asked about.
  core::Oracle oracle(&workload);

  // 4. Optimize: the hybrid approach uses the better of the monotonicity
  //    (BASE) and Gaussian-process sampling (SAMP) bounds.
  core::HybridOptimizer optimizer;
  auto solution = optimizer.Optimize(partition, req, &oracle);
  if (!solution.ok()) {
    std::fprintf(stderr, "optimization failed: %s\n",
                 solution.status().ToString().c_str());
    return 1;
  }
  std::printf("solution: %s\n",
              core::DescribeSolution(partition, *solution).c_str());

  // 5. Apply: D- auto-unmatch, D+ auto-match, DH verified by the human.
  const auto result = core::ApplySolution(partition, *solution, &oracle);

  // 6. Evaluate against the hidden ground truth.
  const auto quality = eval::QualityOf(workload, result.labels);
  std::printf("\nachieved precision: %.4f (target %.2f)\n", quality.precision,
              req.alpha);
  std::printf("achieved recall:    %.4f (target %.2f)\n", quality.recall,
              req.beta);
  std::printf("achieved F1:        %.4f\n", quality.f1);
  std::printf("human cost:         %zu pairs inspected (%.2f%% of the "
              "workload)\n",
              result.human_cost, 100.0 * result.human_cost_fraction);
  return 0;
}
