#pragma once

#include <cstddef>
#include <vector>

namespace humo::stats {

/// One stratum of a stratified random sample over a finite population of
/// 0/1 outcomes (match / unmatch). In HUMO a stratum is one similarity-ordered
/// unit subset D_i.
struct Stratum {
  /// Population size of the stratum (n_i, number of pairs in the subset).
  size_t population = 0;
  /// Number of sampled units (s_i <= n_i).
  size_t sample_size = 0;
  /// Number of sampled units that are positive (matches).
  size_t sample_positives = 0;

  /// Observed match proportion p_i = sample_positives / sample_size
  /// (0 when nothing sampled).
  double proportion() const;

  /// Estimated variance of the proportion estimator with finite population
  /// correction (Cochran 1977, eq. 5.7):
  ///   var(p_i) = (1 - s_i/n_i) * p_i (1 - p_i) / (s_i - 1).
  /// Returns 0 when s_i < 2 would make it undefined but the stratum is fully
  /// enumerated; returns a conservative worst-case (0.25) when s_i < 2 and
  /// the stratum is not fully enumerated.
  double proportion_variance() const;

  /// True if every unit was inspected (no sampling error).
  bool fully_enumerated() const { return sample_size >= population; }
};

/// Aggregate estimate of the total number of positives in a union of strata,
/// with a confidence interval from the stratified-sampling theory the paper
/// cites (Cochran; Student-t critical values, Eq. 12).
struct StratifiedEstimate {
  /// Point estimate of the total positives: sum n_i * p_i.
  double total_mean = 0.0;
  /// Standard deviation of the total estimate: sqrt(sum n_i^2 var(p_i)).
  double total_stddev = 0.0;
  /// Effective degrees of freedom used for the t critical value.
  double degrees_of_freedom = 0.0;
  /// Total population across strata.
  size_t population = 0;

  /// Two-sided bounds at the given confidence, clamped to [0, population].
  double LowerBound(double confidence) const;
  double UpperBound(double confidence) const;
};

/// Combines strata into an estimate of the total number of positives.
///
/// Degrees of freedom follow the common stratified-sampling convention
/// d.f. = sum_i (s_i - 1) over strata that were actually sampled (Cochran
/// 5A.42 simplification); strata that are fully enumerated contribute no
/// sampling variance and no d.f.
StratifiedEstimate CombineStrata(const std::vector<Stratum>& strata);

/// Mean match proportion of the union (R bar of the paper) = total_mean / N.
double UnionProportion(const StratifiedEstimate& est);

/// Splits a total sampling budget across strata proportionally to their
/// populations (largest-remainder rounding, index-ordered tie-break), with
/// two invariants the caller can rely on exactly:
///   * allocation[i] <= strata[i].population for every stratum (overflow is
///     redistributed to strata with remaining headroom), and
///   * sum(allocation) == min(budget, total population).
/// Deterministic for a given input. This is how the shard coordinator
/// (core/shard_coordinator.h) splits a finite oracle budget across
/// computation shards — one Stratum per shard, population = the shard's
/// pair count — and the exact-sum and cap invariants are what its
/// accounting relies on (locked by tests/property/ and tests/stats/).
/// Existing sample_size/sample_positives fields are ignored — only
/// populations matter.
std::vector<size_t> AllocateSamples(const std::vector<Stratum>& strata,
                                    size_t budget);

/// Settles a proportional allocation against what each consumer actually
/// demanded: under-spenders return their slack to a common pool, which then
/// tops up over-demanders in ascending index order (deterministic). The
/// shard coordinator's budget settlement — a shard whose certification
/// needed fewer answers than its AllocateSamples share funds a shard that
/// needed more, and the run only overruns when the TOTAL demand exceeds the
/// total allocation.
///
/// Invariants (`allocation` and `demand` must be the same length):
///   * grant[i] >= min(allocation[i], demand[i]) — settling never claws
///     back budget a consumer both held and used;
///   * grant[i] <= demand[i] — nobody is granted answers they never asked
///     for;
///   * sum(grant) == min(sum(allocation), sum(demand)) — the pool is spent
///     exactly, bounded by the global budget.
/// When sum(demand) <= sum(allocation), every demand is fully granted.
std::vector<size_t> ReallocateUnspent(const std::vector<size_t>& allocation,
                                      const std::vector<size_t>& demand);

}  // namespace humo::stats
