#pragma once

#include <cstddef>
#include <vector>

namespace humo::stats {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 points.
double SampleVariance(const std::vector<double>& xs);

/// Square root of SampleVariance.
double SampleStdDev(const std::vector<double>& xs);

/// Population variance (n denominator).
double PopulationVariance(const std::vector<double>& xs);

/// p-quantile by linear interpolation of the sorted sample, p in [0,1].
double Quantile(std::vector<double> xs, double p);

/// Median (0.5-quantile).
double Median(std::vector<double> xs);

/// Pearson correlation; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Streaming mean/variance accumulator (Welford). Numerically stable for
/// long runs of benchmark measurements.
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased variance; 0 with fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace humo::stats
