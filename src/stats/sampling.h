#pragma once

#include "common/random.h"

namespace humo::stats {

/// Gamma(shape, scale=1) sample via Marsaglia-Tsang squeeze (shape >= 1) with
/// the Johnk-style boost for shape < 1.
double SampleGamma(Rng* rng, double shape);

/// Beta(a, b) sample as Ga/(Ga+Gb).
double SampleBeta(Rng* rng, double a, double b);

/// Binomial(n, p) sample by inversion for small n, normal approximation with
/// continuity correction clamped to [0, n] for large n*p(1-p).
size_t SampleBinomial(Rng* rng, size_t n, double p);

}  // namespace humo::stats
