#include "stats/stratified.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/distributions.h"

namespace humo::stats {

double Stratum::proportion() const {
  if (sample_size == 0) return 0.0;
  return static_cast<double>(sample_positives) /
         static_cast<double>(sample_size);
}

double Stratum::proportion_variance() const {
  if (population == 0) return 0.0;
  if (fully_enumerated()) return 0.0;
  if (sample_size < 2) return 0.25;  // worst case p(1-p) with no fpc
  const double s = static_cast<double>(sample_size);
  const double n = static_cast<double>(population);
  const double p = proportion();
  const double fpc = 1.0 - s / n;
  return fpc * p * (1.0 - p) / (s - 1.0);
}

StratifiedEstimate CombineStrata(const std::vector<Stratum>& strata) {
  StratifiedEstimate est;
  double var_total = 0.0;
  double df = 0.0;
  for (const auto& st : strata) {
    assert(st.sample_size <= st.population);
    assert(st.sample_positives <= st.sample_size);
    const double n = static_cast<double>(st.population);
    est.population += st.population;
    est.total_mean += n * st.proportion();
    const double v = st.proportion_variance();
    var_total += n * n * v;
    if (!st.fully_enumerated() && st.sample_size >= 2 && v > 0.0) {
      df += static_cast<double>(st.sample_size - 1);
    }
  }
  est.total_stddev = std::sqrt(var_total);
  est.degrees_of_freedom = df;
  return est;
}

double StratifiedEstimate::LowerBound(double confidence) const {
  if (total_stddev == 0.0) return std::max(0.0, total_mean);
  const double t = StudentTTwoSidedCritical(confidence, degrees_of_freedom);
  return std::max(0.0, total_mean - t * total_stddev);
}

double StratifiedEstimate::UpperBound(double confidence) const {
  if (total_stddev == 0.0)
    return std::min(static_cast<double>(population), total_mean);
  const double t = StudentTTwoSidedCritical(confidence, degrees_of_freedom);
  return std::min(static_cast<double>(population),
                  total_mean + t * total_stddev);
}

double UnionProportion(const StratifiedEstimate& est) {
  if (est.population == 0) return 0.0;
  return est.total_mean / static_cast<double>(est.population);
}

std::vector<size_t> AllocateSamples(const std::vector<Stratum>& strata,
                                    size_t budget) {
  const size_t m = strata.size();
  std::vector<size_t> alloc(m, 0);
  size_t total_pop = 0;
  for (const Stratum& st : strata) total_pop += st.population;
  size_t remaining = std::min(budget, total_pop);
  if (remaining == 0) return alloc;

  // Proportional floor allocation, capped at each population, then hand the
  // leftover budget out one unit at a time by largest fractional remainder
  // (index order breaking ties), skipping strata that are already full.
  // Repeat while budget remains — caps can force several passes, and each
  // pass places at least one unit, so the loop terminates with the sum
  // exactly equal to min(budget, total population).
  while (remaining > 0) {
    size_t headroom_total = 0;
    for (size_t i = 0; i < m; ++i)
      headroom_total += strata[i].population - alloc[i];
    assert(headroom_total >= remaining);
    std::vector<std::pair<double, size_t>> remainders;
    remainders.reserve(m);
    size_t placed = 0;
    for (size_t i = 0; i < m; ++i) {
      const size_t headroom = strata[i].population - alloc[i];
      if (headroom == 0) continue;
      const double share = static_cast<double>(remaining) *
                           static_cast<double>(headroom) /
                           static_cast<double>(headroom_total);
      const size_t floor_units =
          std::min(headroom, static_cast<size_t>(std::floor(share)));
      alloc[i] += floor_units;
      placed += floor_units;
      if (alloc[i] < strata[i].population)
        remainders.push_back({share - std::floor(share), i});
    }
    remaining -= placed;
    if (remaining == 0) break;
    // Distribute the rounding leftover by descending remainder; stable
    // index-ordered ties keep the result deterministic.
    std::sort(remainders.begin(), remainders.end(),
              [](const std::pair<double, size_t>& a,
                 const std::pair<double, size_t>& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (const auto& [frac, i] : remainders) {
      (void)frac;
      if (remaining == 0) break;
      if (alloc[i] < strata[i].population) {
        ++alloc[i];
        --remaining;
      }
    }
  }
  return alloc;
}

std::vector<size_t> ReallocateUnspent(const std::vector<size_t>& allocation,
                                      const std::vector<size_t>& demand) {
  assert(allocation.size() == demand.size());
  const size_t m = allocation.size();
  std::vector<size_t> grant(m, 0);
  size_t pool = 0;
  for (size_t i = 0; i < m; ++i) {
    grant[i] = std::min(allocation[i], demand[i]);
    pool += allocation[i] - grant[i];
  }
  for (size_t i = 0; i < m && pool > 0; ++i) {
    const size_t deficit = demand[i] - grant[i];
    const size_t extra = std::min(deficit, pool);
    grant[i] += extra;
    pool -= extra;
  }
  return grant;
}

}  // namespace humo::stats
