#include "stats/stratified.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/distributions.h"

namespace humo::stats {

double Stratum::proportion() const {
  if (sample_size == 0) return 0.0;
  return static_cast<double>(sample_positives) /
         static_cast<double>(sample_size);
}

double Stratum::proportion_variance() const {
  if (population == 0) return 0.0;
  if (fully_enumerated()) return 0.0;
  if (sample_size < 2) return 0.25;  // worst case p(1-p) with no fpc
  const double s = static_cast<double>(sample_size);
  const double n = static_cast<double>(population);
  const double p = proportion();
  const double fpc = 1.0 - s / n;
  return fpc * p * (1.0 - p) / (s - 1.0);
}

StratifiedEstimate CombineStrata(const std::vector<Stratum>& strata) {
  StratifiedEstimate est;
  double var_total = 0.0;
  double df = 0.0;
  for (const auto& st : strata) {
    assert(st.sample_size <= st.population);
    assert(st.sample_positives <= st.sample_size);
    const double n = static_cast<double>(st.population);
    est.population += st.population;
    est.total_mean += n * st.proportion();
    const double v = st.proportion_variance();
    var_total += n * n * v;
    if (!st.fully_enumerated() && st.sample_size >= 2 && v > 0.0) {
      df += static_cast<double>(st.sample_size - 1);
    }
  }
  est.total_stddev = std::sqrt(var_total);
  est.degrees_of_freedom = df;
  return est;
}

double StratifiedEstimate::LowerBound(double confidence) const {
  if (total_stddev == 0.0) return std::max(0.0, total_mean);
  const double t = StudentTTwoSidedCritical(confidence, degrees_of_freedom);
  return std::max(0.0, total_mean - t * total_stddev);
}

double StratifiedEstimate::UpperBound(double confidence) const {
  if (total_stddev == 0.0)
    return std::min(static_cast<double>(population), total_mean);
  const double t = StudentTTwoSidedCritical(confidence, degrees_of_freedom);
  return std::min(static_cast<double>(population),
                  total_mean + t * total_stddev);
}

double UnionProportion(const StratifiedEstimate& est) {
  if (est.population == 0) return 0.0;
  return est.total_mean / static_cast<double>(est.population);
}

}  // namespace humo::stats
