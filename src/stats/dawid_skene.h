#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace humo::stats {

/// One crowd vote: worker `worker` judged item `item` as match (answer=1)
/// or non-match (answer=0).
struct CrowdVote {
  uint32_t item = 0;
  uint32_t worker = 0;
  uint8_t answer = 0;
};

struct DawidSkeneOptions {
  /// EM iterations. Fixed (no convergence test) so the result is a pure
  /// function of the votes — bit-identical run to run and machine to
  /// machine regardless of how close the fit already is.
  size_t iterations = 20;
  /// Beta(1 + smoothing, 1 + smoothing) pseudo-counts on every worker's
  /// sensitivity/specificity and on the class prior, so a worker with one
  /// vote cannot be estimated as perfect or adversarial.
  double smoothing = 1.0;
  /// Probability floor/ceiling applied to worker parameters before the
  /// E-step takes logs.
  double clamp_eps = 1e-6;
};

struct DawidSkeneResult {
  /// P(item is a match | votes), one per item. Items with no votes keep the
  /// fitted class prior.
  std::vector<double> posterior;
  /// Per-worker P(says match | true match) and P(says non-match | true
  /// non-match). Workers with no votes sit at the smoothed prior (0.5).
  std::vector<double> sensitivity;
  std::vector<double> specificity;
  /// Convenience: ((1 - sensitivity) + (1 - specificity)) / 2, the
  /// symmetric error rate the simulated crowd plants per worker.
  std::vector<double> error_rate;
  /// Fitted class prior P(match).
  double match_prior = 0.5;
  size_t iterations_run = 0;
};

/// Dawid–Skene-style EM for binary crowd labels (Dawid & Skene 1979,
/// specialized to two classes): alternates per-worker confusion estimates
/// (M-step, smoothed) with per-item posteriors (E-step, log-space Bayes
/// product over the item's votes). Initialization is the per-item majority
/// fraction, iteration count is fixed, and all loops are serial over the
/// vote order given — the result is deterministic for a given vote list.
///
/// Complexity O(iterations * votes); the caller owns batching policy.
DawidSkeneResult RunDawidSkene(size_t num_items, size_t num_workers,
                               const std::vector<CrowdVote>& votes,
                               const DawidSkeneOptions& options = {});

}  // namespace humo::stats
