#include "stats/dawid_skene.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace humo::stats {

DawidSkeneResult RunDawidSkene(size_t num_items, size_t num_workers,
                               const std::vector<CrowdVote>& votes,
                               const DawidSkeneOptions& options) {
  DawidSkeneResult r;
  r.posterior.assign(num_items, 0.5);
  r.sensitivity.assign(num_workers, 0.5);
  r.specificity.assign(num_workers, 0.5);
  r.error_rate.assign(num_workers, 0.5);
  if (num_items == 0 || num_workers == 0 || votes.empty()) return r;

  const double s = std::max(options.smoothing, 0.0);
  const double eps = std::clamp(options.clamp_eps, 1e-12, 0.49);

  // Initialization: per-item majority fraction (the aggregate every EM
  // refinement must at least match).
  std::vector<double> vote_sum(num_items, 0.0), vote_count(num_items, 0.0);
  for (const CrowdVote& v : votes) {
    assert(v.item < num_items && v.worker < num_workers);
    vote_sum[v.item] += v.answer != 0 ? 1.0 : 0.0;
    vote_count[v.item] += 1.0;
  }
  for (size_t i = 0; i < num_items; ++i) {
    if (vote_count[i] > 0.0) r.posterior[i] = vote_sum[i] / vote_count[i];
  }

  std::vector<double> sens_num(num_workers), sens_den(num_workers);
  std::vector<double> spec_num(num_workers), spec_den(num_workers);
  for (size_t it = 0; it < options.iterations; ++it) {
    // M-step: worker confusion parameters and the class prior from the
    // current soft labels, with Beta(1+s, 1+s) smoothing.
    std::fill(sens_num.begin(), sens_num.end(), s);
    std::fill(sens_den.begin(), sens_den.end(), 2.0 * s);
    std::fill(spec_num.begin(), spec_num.end(), s);
    std::fill(spec_den.begin(), spec_den.end(), 2.0 * s);
    double prior_num = s, prior_den = 2.0 * s;
    for (size_t i = 0; i < num_items; ++i) {
      if (vote_count[i] > 0.0) {
        prior_num += r.posterior[i];
        prior_den += 1.0;
      }
    }
    for (const CrowdVote& v : votes) {
      const double p = r.posterior[v.item];
      sens_den[v.worker] += p;
      spec_den[v.worker] += 1.0 - p;
      if (v.answer != 0) {
        sens_num[v.worker] += p;
      } else {
        spec_num[v.worker] += 1.0 - p;
      }
    }
    r.match_prior = std::clamp(prior_num / prior_den, eps, 1.0 - eps);
    for (size_t w = 0; w < num_workers; ++w) {
      r.sensitivity[w] = std::clamp(sens_num[w] / sens_den[w], eps, 1.0 - eps);
      r.specificity[w] = std::clamp(spec_num[w] / spec_den[w], eps, 1.0 - eps);
    }

    // E-step: per-item posterior as a log-space Bayes product over the
    // item's votes under the current worker parameters.
    std::vector<double> log_odds(
        num_items, std::log(r.match_prior / (1.0 - r.match_prior)));
    for (const CrowdVote& v : votes) {
      const double sens = r.sensitivity[v.worker];
      const double spec = r.specificity[v.worker];
      log_odds[v.item] += v.answer != 0
                              ? std::log(sens / (1.0 - spec))
                              : std::log((1.0 - sens) / spec);
    }
    for (size_t i = 0; i < num_items; ++i) {
      if (vote_count[i] > 0.0) {
        r.posterior[i] = 1.0 / (1.0 + std::exp(-log_odds[i]));
      }
    }
    ++r.iterations_run;
  }

  for (size_t w = 0; w < num_workers; ++w) {
    r.error_rate[w] =
        0.5 * ((1.0 - r.sensitivity[w]) + (1.0 - r.specificity[w]));
  }
  return r;
}

}  // namespace humo::stats
