#include "stats/sampling.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace humo::stats {

double SampleGamma(Rng* rng, double shape) {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
    const double g = SampleGamma(rng, shape + 1.0);
    double u = rng->NextDouble();
    if (u <= 0.0) u = 1e-300;
    return g * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng->NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng->NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

double SampleBeta(Rng* rng, double a, double b) {
  assert(a > 0.0 && b > 0.0);
  const double ga = SampleGamma(rng, a);
  const double gb = SampleGamma(rng, b);
  const double denom = ga + gb;
  if (denom == 0.0) return 0.5;
  return ga / denom;
}

size_t SampleBinomial(Rng* rng, size_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double np = static_cast<double>(n) * p;
  const double var = np * (1.0 - p);
  if (n <= 64 || var < 30.0) {
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) k += rng->NextBernoulli(p);
    return k;
  }
  // Normal approximation, adequate for the workload-generation use case.
  const double draw = rng->NextGaussian(np, std::sqrt(var));
  const double clamped =
      std::min(static_cast<double>(n), std::max(0.0, std::round(draw)));
  return static_cast<size_t>(clamped);
}

}  // namespace humo::stats
