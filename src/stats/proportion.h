#pragma once

#include <cstddef>

namespace humo::stats {

/// Two-sided confidence interval [lo, hi] for a binomial proportion.
struct ProportionInterval {
  double lo = 0.0;
  double hi = 1.0;
};

/// Wald interval p_hat +- z * sqrt(p_hat (1-p_hat) / n). Simple but
/// ill-behaved near 0/1; kept for comparison with the stronger intervals.
ProportionInterval WaldInterval(size_t positives, size_t n, double confidence);

/// Wilson score interval — the recommended default for the ACTL comparator's
/// sampled precision estimates (well-behaved for small n and extreme p).
ProportionInterval WilsonInterval(size_t positives, size_t n,
                                  double confidence);

/// Clopper-Pearson "exact" interval via the beta-quantile characterization,
/// computed with bisection on the regularized incomplete beta function.
ProportionInterval ClopperPearsonInterval(size_t positives, size_t n,
                                          double confidence);

/// Agresti-Coull interval (adjusted Wald).
ProportionInterval AgrestiCoullInterval(size_t positives, size_t n,
                                        double confidence);

/// Equal-tailed Bayesian credible interval for a binomial proportion under a
/// Beta(prior_a, prior_b) prior: the (1-c)/2 and (1+c)/2 quantiles of the
/// posterior Beta(prior_a + positives, prior_b + n - positives). The default
/// uniform prior makes the interval proper even at n = 0 (where it is
/// exactly [(1-c)/2, (1+c)/2]); Jeffreys is prior_a = prior_b = 0.5. This is
/// the conservative evidence model the risk-aware optimizer uses for the
/// not-yet-inspected pairs of a partially inspected subset.
ProportionInterval BetaPosteriorInterval(size_t positives, size_t n,
                                         double confidence,
                                         double prior_a = 1.0,
                                         double prior_b = 1.0);

/// One-sided upper tail bound: the `confidence` quantile of the posterior
/// Beta(prior_a + positives, prior_b + n - positives). The true proportion
/// exceeds the returned value with posterior probability 1 - confidence.
double BetaPosteriorUpperBound(size_t positives, size_t n, double confidence,
                               double prior_a = 1.0, double prior_b = 1.0);

/// One-sided lower tail bound: the (1 - confidence) quantile of the
/// posterior (mirror of BetaPosteriorUpperBound).
double BetaPosteriorLowerBound(size_t positives, size_t n, double confidence,
                               double prior_a = 1.0, double prior_b = 1.0);

}  // namespace humo::stats
