#pragma once

#include <cstddef>

namespace humo::stats {

/// Two-sided confidence interval [lo, hi] for a binomial proportion.
struct ProportionInterval {
  double lo = 0.0;
  double hi = 1.0;
};

/// Wald interval p_hat +- z * sqrt(p_hat (1-p_hat) / n). Simple but
/// ill-behaved near 0/1; kept for comparison with the stronger intervals.
ProportionInterval WaldInterval(size_t positives, size_t n, double confidence);

/// Wilson score interval — the recommended default for the ACTL comparator's
/// sampled precision estimates (well-behaved for small n and extreme p).
ProportionInterval WilsonInterval(size_t positives, size_t n,
                                  double confidence);

/// Clopper-Pearson "exact" interval via the beta-quantile characterization,
/// computed with bisection on the regularized incomplete beta function.
ProportionInterval ClopperPearsonInterval(size_t positives, size_t n,
                                          double confidence);

/// Agresti-Coull interval (adjusted Wald).
ProportionInterval AgrestiCoullInterval(size_t positives, size_t n,
                                        double confidence);

}  // namespace humo::stats
