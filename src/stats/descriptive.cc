#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace humo::stats {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size() - 1);
}

double SampleStdDev(const std::vector<double>& xs) {
  return std::sqrt(SampleVariance(xs));
}

double PopulationVariance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double Quantile(std::vector<double> xs, double p) {
  assert(!xs.empty());
  assert(p >= 0.0 && p <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = p * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = Mean(xs), my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace humo::stats
