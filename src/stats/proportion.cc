#include "stats/proportion.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/distributions.h"

namespace humo::stats {
namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

/// Solves I_x(a, b) = target for x by bisection; the regularized incomplete
/// beta is monotone increasing in x.
double BetaQuantile(double a, double b, double target) {
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (RegularizedIncompleteBeta(a, b, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

ProportionInterval WaldInterval(size_t positives, size_t n,
                                double confidence) {
  assert(positives <= n);
  if (n == 0) return {0.0, 1.0};
  const double p = static_cast<double>(positives) / static_cast<double>(n);
  const double z = NormalTwoSidedCritical(confidence);
  const double half = z * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
  return {Clamp01(p - half), Clamp01(p + half)};
}

ProportionInterval WilsonInterval(size_t positives, size_t n,
                                  double confidence) {
  assert(positives <= n);
  if (n == 0) return {0.0, 1.0};
  const double p = static_cast<double>(positives) / static_cast<double>(n);
  const double z = NormalTwoSidedCritical(confidence);
  const double z2 = z * z;
  const double nn = static_cast<double>(n);
  const double denom = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denom;
  ProportionInterval iv{Clamp01(center - half), Clamp01(center + half)};
  // Exact endpoints at the degenerate counts (kill roundoff residue).
  if (positives == 0) iv.lo = 0.0;
  if (positives == n) iv.hi = 1.0;
  return iv;
}

ProportionInterval ClopperPearsonInterval(size_t positives, size_t n,
                                          double confidence) {
  assert(positives <= n);
  if (n == 0) return {0.0, 1.0};
  const double alpha = 1.0 - confidence;
  const double k = static_cast<double>(positives);
  const double nn = static_cast<double>(n);
  ProportionInterval iv;
  iv.lo = (positives == 0)
              ? 0.0
              : BetaQuantile(k, nn - k + 1.0, alpha / 2.0);
  iv.hi = (positives == n)
              ? 1.0
              : BetaQuantile(k + 1.0, nn - k, 1.0 - alpha / 2.0);
  return iv;
}

ProportionInterval AgrestiCoullInterval(size_t positives, size_t n,
                                        double confidence) {
  assert(positives <= n);
  if (n == 0) return {0.0, 1.0};
  const double z = NormalTwoSidedCritical(confidence);
  const double z2 = z * z;
  const double n_tilde = static_cast<double>(n) + z2;
  const double p_tilde = (static_cast<double>(positives) + z2 / 2.0) / n_tilde;
  const double half = z * std::sqrt(p_tilde * (1.0 - p_tilde) / n_tilde);
  return {Clamp01(p_tilde - half), Clamp01(p_tilde + half)};
}

ProportionInterval BetaPosteriorInterval(size_t positives, size_t n,
                                         double confidence, double prior_a,
                                         double prior_b) {
  assert(positives <= n);
  assert(prior_a > 0.0 && prior_b > 0.0);
  const double a = prior_a + static_cast<double>(positives);
  const double b = prior_b + static_cast<double>(n - positives);
  const double tail = (1.0 - confidence) / 2.0;
  return {BetaQuantile(a, b, tail), BetaQuantile(a, b, 1.0 - tail)};
}

double BetaPosteriorUpperBound(size_t positives, size_t n, double confidence,
                               double prior_a, double prior_b) {
  assert(positives <= n);
  assert(prior_a > 0.0 && prior_b > 0.0);
  const double a = prior_a + static_cast<double>(positives);
  const double b = prior_b + static_cast<double>(n - positives);
  return BetaQuantile(a, b, confidence);
}

double BetaPosteriorLowerBound(size_t positives, size_t n, double confidence,
                               double prior_a, double prior_b) {
  assert(positives <= n);
  assert(prior_a > 0.0 && prior_b > 0.0);
  const double a = prior_a + static_cast<double>(positives);
  const double b = prior_b + static_cast<double>(n - positives);
  return BetaQuantile(a, b, 1.0 - confidence);
}

}  // namespace humo::stats
