#include "stats/distributions.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace humo::stats {
namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;

}  // namespace

double NormalPdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * kPi);
}

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Rational approximation (Acklam 2003-style coefficients), then a Halley
  // refinement step against the exact CDF.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // Halley refinement: x_{n+1} = x - f/(f' - f*f''/(2f')), f = CDF(x) - p.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * kPi) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double NormalTwoSidedCritical(double confidence) {
  assert(confidence > 0.0 && confidence < 1.0);
  return NormalQuantile(0.5 + confidence / 2.0);
}

double LogGamma(double x) {
  // Lanczos approximation, g = 7, n = 9.
  static const double coeffs[] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(kPi / std::sin(kPi * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double acc = coeffs[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) acc += coeffs[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * kPi) + (x + 0.5) * std::log(t) - t +
         std::log(acc);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x > (a + 1.0) / (a + b + 2.0)) {
    return 1.0 - RegularizedIncompleteBeta(b, a, 1.0 - x);
  }
  const double log_prefix = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                            a * std::log(x) + b * std::log1p(-x);
  // Modified Lentz's algorithm for the continued fraction.
  const double kTiny = 1e-300;
  double f = kTiny, c = kTiny, d = 0.0;
  for (int m = 0; m <= 400; ++m) {
    double numerator;
    if (m == 0) {
      numerator = 1.0;
    } else if (m % 2 == 0) {
      const double k = m / 2.0;
      numerator = k * (b - k) * x / ((a + 2.0 * k - 1.0) * (a + 2.0 * k));
    } else {
      const double k = (m - 1.0) / 2.0;
      numerator =
          -(a + k) * (a + b + k) * x / ((a + 2.0 * k) * (a + 2.0 * k + 1.0));
    }
    d = 1.0 + numerator * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    d = 1.0 / d;
    c = 1.0 + numerator / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    const double delta = c * d;
    f *= delta;
    if (m > 0 && std::fabs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(log_prefix) * f / a;
}

double StudentTCdf(double t, double df) {
  assert(df > 0.0);
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  const double x = df / (df + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double StudentTQuantile(double p, double df) {
  assert(p > 0.0 && p < 1.0);
  assert(df > 0.0);
  if (p == 0.5) return 0.0;
  // Bracket then bisect on the monotone CDF; 128 iterations give full double
  // precision on any realistic bracket width.
  double lo = -1.0, hi = 1.0;
  while (StudentTCdf(lo, df) > p) lo *= 2.0;
  while (StudentTCdf(hi, df) < p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * std::max(1.0, std::fabs(hi))) break;
  }
  return 0.5 * (lo + hi);
}

double StudentTTwoSidedCritical(double confidence, double df) {
  assert(confidence > 0.0 && confidence < 1.0);
  if (df <= 0.0 || std::isinf(df)) return NormalTwoSidedCritical(confidence);
  return StudentTQuantile(0.5 + confidence / 2.0, df);
}

}  // namespace humo::stats
