#pragma once

namespace humo::stats {

/// Standard normal probability density function.
double NormalPdf(double x);

/// Standard normal cumulative distribution function, via erfc for accuracy in
/// the tails.
double NormalCdf(double x);

/// Inverse standard normal CDF (quantile). `p` must be in (0,1).
/// Acklam's rational approximation refined by one Halley step; absolute error
/// below 1e-9 over (1e-300, 1-1e-16).
double NormalQuantile(double p);

/// Two-sided standard normal critical value z such that
/// P(-z < Z < z) = confidence. This is the Z_(1-theta) of Eq. 21 in the
/// paper. `confidence` must be in (0,1).
double NormalTwoSidedCritical(double confidence);

/// Natural log of the gamma function (Lanczos approximation).
double LogGamma(double x);

/// Regularized incomplete beta function I_x(a, b), computed by the continued
/// fraction expansion (Lentz's algorithm).
double RegularizedIncompleteBeta(double a, double b, double x);

/// Student's t cumulative distribution function with `df` degrees of freedom.
/// `df` may be fractional (Satterthwaite effective d.f.).
double StudentTCdf(double t, double df);

/// Student's t quantile: inverse of StudentTCdf in t for fixed df.
/// `p` must be in (0,1).
double StudentTQuantile(double p, double df);

/// Two-sided Student's t critical value t~ such that P(-t~ < T < t~) =
/// confidence (the t_(1-theta, d.f.) of Eq. 12). For df <= 0 the normal
/// critical value is returned as the limiting distribution.
double StudentTTwoSidedCritical(double confidence, double df);

}  // namespace humo::stats
