#include "gp/gp_regression.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <optional>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace humo::gp {
namespace {

constexpr double kLog2Pi = 1.8378770664093454835606594728112;

}  // namespace

double Prediction::stddev() const { return std::sqrt(std::max(0.0, variance)); }

double JointPrediction::WeightedTotalMean(
    const std::vector<double>& weights) const {
  assert(weights.size() == mean.size());
  double acc = 0.0;
  for (size_t i = 0; i < mean.size(); ++i) acc += weights[i] * mean[i];
  return acc;
}

double JointPrediction::WeightedTotalStdDev(
    const std::vector<double>& weights) const {
  assert(weights.size() == mean.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i)
    for (size_t j = 0; j < weights.size(); ++j)
      acc += weights[i] * weights[j] * covariance(i, j);
  return std::sqrt(std::max(0.0, acc));
}

void GpRegression::FinishFit() {
  y_mean_ = 0.0;
  if (options_.center_mean) {
    for (double v : y_) y_mean_ += v;
    y_mean_ /= static_cast<double>(y_.size());
  }
  y_centered_.resize(y_.size());
  for (size_t i = 0; i < y_.size(); ++i) y_centered_[i] = y_[i] - y_mean_;
  alpha_ = chol_.Solve(y_centered_);
  const double n = static_cast<double>(x_.size());
  log_marginal_ = -0.5 * linalg::Dot(y_centered_, alpha_) -
                  0.5 * chol_.LogDeterminant() - 0.5 * n * kLog2Pi;
}

Result<GpRegression> GpRegression::Fit(
    std::unique_ptr<Kernel> kernel, std::vector<double> x,
    std::vector<double> y, GpOptions options,
    std::vector<double> noise_variances,
    const linalg::Matrix* pairwise_distances) {
  if (!kernel) return Status::InvalidArgument("kernel must not be null");
  if (x.size() != y.size())
    return Status::InvalidArgument(
        StrFormat("x/y size mismatch: %zu vs %zu", x.size(), y.size()));
  if (x.empty()) return Status::InvalidArgument("empty training set");
  if (!noise_variances.empty() && noise_variances.size() != x.size())
    return Status::InvalidArgument("noise_variances must parallel x");
  if (pairwise_distances != nullptr &&
      (pairwise_distances->rows() != x.size() ||
       pairwise_distances->cols() != x.size()))
    return Status::InvalidArgument("pairwise_distances must be n x n");

  GpRegression gp;
  gp.kernel_ = std::move(kernel);
  gp.options_ = options;
  gp.x_ = std::move(x);
  gp.y_ = std::move(y);

  linalg::Matrix k = pairwise_distances != nullptr
                         ? gp.kernel_->GramFromDistances(*pairwise_distances)
                         : gp.kernel_->GramSymmetric(gp.x_);
  k.AddToDiagonal(options.noise_variance);
  for (size_t i = 0; i < noise_variances.size(); ++i)
    k(i, i) += noise_variances[i];

  HUMO_ASSIGN_OR_RETURN(gp.chol_, linalg::Cholesky::Factor(k));
  gp.FinishFit();
  return gp;
}

GpRegression GpRegression::Clone() const {
  GpRegression gp;
  gp.kernel_ = kernel_->Clone();
  gp.options_ = options_;
  gp.x_ = x_;
  gp.y_ = y_;
  gp.y_centered_ = y_centered_;
  gp.y_mean_ = y_mean_;
  gp.chol_ = chol_;
  gp.alpha_ = alpha_;
  gp.log_marginal_ = log_marginal_;
  return gp;
}

Result<GpRegression> GpRegression::ExtendedWith(
    const std::vector<double>& x_new, const std::vector<double>& y_new,
    const std::vector<double>& noise_variances_new) const {
  if (x_new.size() != y_new.size())
    return Status::InvalidArgument(
        StrFormat("x/y size mismatch: %zu vs %zu", x_new.size(), y_new.size()));
  if (!noise_variances_new.empty() &&
      noise_variances_new.size() != x_new.size())
    return Status::InvalidArgument("noise_variances_new must parallel x_new");
  if (x_new.empty()) return Clone();

  const size_t n = x_.size();
  const size_t k = x_new.size();
  // New rows of the bordered Gram matrix: cross-covariances against the
  // existing training set, then the new block's lower triangle, with the
  // same two diagonal additions Fit applies (noise floor, then per-point
  // noise) so the extended matrix matches a from-scratch build bit-for-bit.
  linalg::Matrix rows(k, n + k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t t = 0; t < n; ++t) rows(i, t) = (*kernel_)(x_new[i], x_[t]);
    for (size_t j = 0; j <= i; ++j)
      rows(i, n + j) = (*kernel_)(x_new[i], x_new[j]);
    rows(i, n + i) += options_.noise_variance;
    if (!noise_variances_new.empty()) rows(i, n + i) += noise_variances_new[i];
  }

  GpRegression gp;
  gp.kernel_ = kernel_->Clone();
  gp.options_ = options_;
  gp.x_ = x_;
  gp.x_.insert(gp.x_.end(), x_new.begin(), x_new.end());
  gp.y_ = y_;
  gp.y_.insert(gp.y_.end(), y_new.begin(), y_new.end());
  // Extended (not copy + Append): the frozen factor block is copied once,
  // directly into the extended matrix.
  HUMO_ASSIGN_OR_RETURN(gp.chol_, chol_.Extended(rows));
  gp.FinishFit();
  return gp;
}

Prediction GpRegression::Predict(double x_star) const {
  const size_t n = x_.size();
  linalg::Vector k_star(n);
  kernel_->FillRow(x_star, x_.data(), n, k_star.data());
  Prediction p;
  p.mean = y_mean_ + linalg::Dot(k_star, alpha_);
  const linalg::Vector v = chol_.SolveLower(k_star);
  p.variance = (*kernel_)(x_star, x_star) - linalg::Dot(v, v);
  if (p.variance < 0.0) p.variance = 0.0;
  return p;
}

std::vector<Prediction> GpRegression::PredictBatch(
    const std::vector<double>& x_star,
    std::vector<linalg::Vector>* whitened) const {
  const size_t n = x_.size();
  const size_t q = x_star.size();
  // K(V*, V) as q x n rows: row j is Predict's k_star for query j (the
  // cross-covariance is symmetric in its arguments, so building it
  // query-major is the same values in a solve-friendly layout).
  linalg::Matrix k_cross(q, n);
  ThreadPool::Global()->ParallelFor(
      q, /*grain=*/16, [&](size_t begin, size_t end) {
        for (size_t j = begin; j < end; ++j)
          kernel_->FillRow(x_star[j], x_.data(), n, k_cross.RowPtr(j));
      });
  // One blocked multi-RHS forward substitution replaces q per-point solves.
  const linalg::Matrix w = chol_.SolveLowerRows(k_cross);
  std::vector<Prediction> preds(q);
  ThreadPool::Global()->ParallelFor(
      q, /*grain=*/16, [&](size_t begin, size_t end) {
        for (size_t j = begin; j < end; ++j) {
          Prediction p;
          p.mean = y_mean_ + linalg::DotRange(k_cross.RowPtr(j),
                                              alpha_.data(), n);
          p.variance = (*kernel_)(x_star[j], x_star[j]) -
                       linalg::DotRange(w.RowPtr(j), w.RowPtr(j), n);
          if (p.variance < 0.0) p.variance = 0.0;
          preds[j] = p;
        }
      });
  if (whitened != nullptr) {
    whitened->assign(q, linalg::Vector());
    for (size_t j = 0; j < q; ++j) {
      const double* row = w.RowPtr(j);
      (*whitened)[j].assign(row, row + n);
    }
  }
  return preds;
}

JointPrediction GpRegression::PredictJoint(
    const std::vector<double>& x_star) const {
  const size_t n = x_.size();
  const size_t q = x_star.size();
  JointPrediction jp;
  jp.mean.resize(q);
  // K(V*, V) — q x n, one row per query (see PredictBatch).
  linalg::Matrix k_cross(q, n);
  for (size_t j = 0; j < q; ++j)
    kernel_->FillRow(x_star[j], x_.data(), n, k_cross.RowPtr(j));
  // Means: y_mean + K(V*,V) alpha.
  for (size_t j = 0; j < q; ++j) {
    jp.mean[j] =
        y_mean_ + linalg::DotRange(k_cross.RowPtr(j), alpha_.data(), n);
  }
  // Posterior covariance: K(V*,V*) - K(V*,V) K^-1 K(V,V*)
  //                     = K(V*,V*) - W W^T with row j of W = L^-1 k(V, x*_j),
  // all rows obtained in one blocked multi-RHS substitution.
  const linalg::Matrix w = chol_.SolveLowerRows(k_cross);
  jp.covariance = kernel_->GramSymmetric(x_star);
  for (size_t a = 0; a < q; ++a) {
    for (size_t b = 0; b <= a; ++b) {
      const double acc = linalg::DotRange(w.RowPtr(a), w.RowPtr(b), n);
      jp.covariance(a, b) -= acc;
      if (a != b) jp.covariance(b, a) = jp.covariance(a, b);
    }
  }
  // Clamp tiny negative diagonal values from roundoff.
  for (size_t a = 0; a < q; ++a)
    if (jp.covariance(a, a) < 0.0) jp.covariance(a, a) = 0.0;
  return jp;
}

double GpRegression::LogMarginalLikelihood() const { return log_marginal_; }

linalg::Vector GpRegression::WhitenedCross(double x_star) const {
  const size_t n = x_.size();
  linalg::Vector k_star(n);
  kernel_->FillRow(x_star, x_.data(), n, k_star.data());
  return chol_.SolveLower(k_star);
}

double GpRegression::PosteriorVarianceFromWhitened(
    double x_star, const linalg::Vector& w) const {
  assert(w.size() == x_.size());
  const double var = (*kernel_)(x_star, x_star) -
                     linalg::DotRange(w.data(), w.data(), w.size());
  return var < 0.0 ? 0.0 : var;
}

Result<GpRegression> SelectGpByMarginalLikelihood(
    const std::vector<double>& x, const std::vector<double>& y,
    const std::vector<GpCandidate>& grid, KernelFamily family,
    GpOptions options, std::vector<double> noise_variances) {
  if (grid.empty()) return Status::InvalidArgument("empty candidate grid");
  // The pairwise distances are the kernel-independent part of every
  // candidate's Gram matrix; build them once for the whole grid instead of
  // re-deriving all n^2 of them inside each fit.
  const linalg::Matrix distances = PairwiseDistances(x);
  // Candidate fits are independent (each builds its own Gram matrix and
  // Cholesky factor), so the grid is the natural unit of parallelism — one
  // fit per task, kernel construction inside each fit running inline. The
  // winner is selected serially afterwards with the same strict-improvement
  // rule the serial loop applied (first-best wins on ties), so the chosen
  // model is identical at any thread count.
  std::vector<std::optional<Result<GpRegression>>> fits(grid.size());
  ThreadPool::Global()->ParallelFor(
      grid.size(), /*grain=*/1, [&](size_t begin, size_t end) {
        for (size_t c = begin; c < end; ++c) {
          const auto& cand = grid[c];
          std::unique_ptr<Kernel> k;
          switch (family) {
            case KernelFamily::kRbf:
              k = std::make_unique<RbfKernel>(cand.signal_variance,
                                              cand.length_scale);
              break;
            case KernelFamily::kMatern32:
              k = std::make_unique<Matern32Kernel>(cand.signal_variance,
                                                   cand.length_scale);
              break;
            case KernelFamily::kMatern52:
              k = std::make_unique<Matern52Kernel>(cand.signal_variance,
                                                   cand.length_scale);
              break;
          }
          fits[c].emplace(GpRegression::Fit(std::move(k), x, y, options,
                                            noise_variances, &distances));
        }
      });
  double best_lml = -std::numeric_limits<double>::infinity();
  Result<GpRegression> best =
      Status::Internal("no candidate produced a valid fit");
  for (auto& fit : fits) {
    if (!fit.has_value() || !fit->ok()) continue;
    const double lml = (*fit)->LogMarginalLikelihood();
    if (lml > best_lml) {
      best_lml = lml;
      best = std::move(*fit);
    }
  }
  return best;
}

std::vector<GpCandidate> DefaultGpGrid() {
  std::vector<GpCandidate> grid;
  for (double sf2 : {0.0025, 0.01, 0.05, 0.25, 1.0}) {
    for (double l : {0.02, 0.05, 0.1, 0.2, 0.5, 1.0}) {
      grid.push_back({sf2, l});
    }
  }
  return grid;
}

std::vector<GpCandidate> GapGuardedGrid(const std::vector<double>& xs) {
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  double max_gap = 0.0;
  for (size_t t = 1; t < sorted.size(); ++t)
    max_gap = std::max(max_gap, sorted[t] - sorted[t - 1]);
  const double min_length_scale = 1.5 * max_gap;
  std::vector<GpCandidate> grid;
  for (const GpCandidate& cand : DefaultGpGrid()) {
    if (cand.length_scale >= min_length_scale) grid.push_back(cand);
  }
  if (grid.empty()) {
    // Gaps exceed every stock scale: fall back to scales proportional to
    // the gap itself.
    for (double sf2 : {0.01, 0.25, 1.0})
      grid.push_back({sf2, min_length_scale});
  }
  return grid;
}

}  // namespace humo::gp
