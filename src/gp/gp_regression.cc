#include "gp/gp_regression.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <optional>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace humo::gp {
namespace {

constexpr double kLog2Pi = 1.8378770664093454835606594728112;

}  // namespace

double Prediction::stddev() const { return std::sqrt(std::max(0.0, variance)); }

double JointPrediction::WeightedTotalMean(
    const std::vector<double>& weights) const {
  assert(weights.size() == mean.size());
  double acc = 0.0;
  for (size_t i = 0; i < mean.size(); ++i) acc += weights[i] * mean[i];
  return acc;
}

double JointPrediction::WeightedTotalStdDev(
    const std::vector<double>& weights) const {
  assert(weights.size() == mean.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i)
    for (size_t j = 0; j < weights.size(); ++j)
      acc += weights[i] * weights[j] * covariance(i, j);
  return std::sqrt(std::max(0.0, acc));
}

Result<GpRegression> GpRegression::Fit(std::unique_ptr<Kernel> kernel,
                                       std::vector<double> x,
                                       std::vector<double> y,
                                       GpOptions options,
                                       std::vector<double> noise_variances) {
  if (!kernel) return Status::InvalidArgument("kernel must not be null");
  if (x.size() != y.size())
    return Status::InvalidArgument(
        StrFormat("x/y size mismatch: %zu vs %zu", x.size(), y.size()));
  if (x.empty()) return Status::InvalidArgument("empty training set");
  if (!noise_variances.empty() && noise_variances.size() != x.size())
    return Status::InvalidArgument("noise_variances must parallel x");

  GpRegression gp;
  gp.kernel_ = std::move(kernel);
  gp.x_ = std::move(x);

  gp.y_mean_ = 0.0;
  if (options.center_mean) {
    for (double v : y) gp.y_mean_ += v;
    gp.y_mean_ /= static_cast<double>(y.size());
  }
  gp.y_centered_.resize(y.size());
  for (size_t i = 0; i < y.size(); ++i) gp.y_centered_[i] = y[i] - gp.y_mean_;

  linalg::Matrix k = gp.kernel_->GramSymmetric(gp.x_);
  k.AddToDiagonal(options.noise_variance);
  for (size_t i = 0; i < noise_variances.size(); ++i)
    k(i, i) += noise_variances[i];

  HUMO_ASSIGN_OR_RETURN(gp.chol_, linalg::Cholesky::Factor(k));
  gp.alpha_ = gp.chol_.Solve(gp.y_centered_);

  const double n = static_cast<double>(gp.x_.size());
  gp.log_marginal_ = -0.5 * linalg::Dot(gp.y_centered_, gp.alpha_) -
                     0.5 * gp.chol_.LogDeterminant() - 0.5 * n * kLog2Pi;
  return gp;
}

Prediction GpRegression::Predict(double x_star) const {
  const size_t n = x_.size();
  linalg::Vector k_star(n);
  for (size_t i = 0; i < n; ++i) k_star[i] = (*kernel_)(x_star, x_[i]);
  Prediction p;
  p.mean = y_mean_ + linalg::Dot(k_star, alpha_);
  const linalg::Vector v = chol_.SolveLower(k_star);
  p.variance = (*kernel_)(x_star, x_star) - linalg::Dot(v, v);
  if (p.variance < 0.0) p.variance = 0.0;
  return p;
}

JointPrediction GpRegression::PredictJoint(
    const std::vector<double>& x_star) const {
  const size_t n = x_.size();
  const size_t q = x_star.size();
  JointPrediction jp;
  jp.mean.resize(q);
  // K(V, V*) — n x q.
  linalg::Matrix k_cross = kernel_->Gram(x_, x_star);
  // Means: y_mean + K(V*,V) alpha.
  for (size_t j = 0; j < q; ++j) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) acc += k_cross(i, j) * alpha_[i];
    jp.mean[j] = y_mean_ + acc;
  }
  // Posterior covariance: K(V*,V*) - K(V*,V) K^-1 K(V,V*)
  //                     = K(V*,V*) - W^T W with W = L^-1 K(V,V*).
  linalg::Matrix w(n, q);
  {
    linalg::Vector col(n);
    for (size_t j = 0; j < q; ++j) {
      for (size_t i = 0; i < n; ++i) col[i] = k_cross(i, j);
      linalg::Vector sol = chol_.SolveLower(col);
      for (size_t i = 0; i < n; ++i) w(i, j) = sol[i];
    }
  }
  jp.covariance = kernel_->GramSymmetric(x_star);
  for (size_t a = 0; a < q; ++a) {
    for (size_t b = 0; b <= a; ++b) {
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) acc += w(i, a) * w(i, b);
      jp.covariance(a, b) -= acc;
      if (a != b) jp.covariance(b, a) = jp.covariance(a, b);
    }
  }
  // Clamp tiny negative diagonal values from roundoff.
  for (size_t a = 0; a < q; ++a)
    if (jp.covariance(a, a) < 0.0) jp.covariance(a, a) = 0.0;
  return jp;
}

double GpRegression::LogMarginalLikelihood() const { return log_marginal_; }

linalg::Vector GpRegression::WhitenedCross(double x_star) const {
  const size_t n = x_.size();
  linalg::Vector k_star(n);
  for (size_t i = 0; i < n; ++i) k_star[i] = (*kernel_)(x_star, x_[i]);
  return chol_.SolveLower(k_star);
}

Result<GpRegression> SelectGpByMarginalLikelihood(
    const std::vector<double>& x, const std::vector<double>& y,
    const std::vector<GpCandidate>& grid, KernelFamily family,
    GpOptions options, std::vector<double> noise_variances) {
  if (grid.empty()) return Status::InvalidArgument("empty candidate grid");
  // Candidate fits are independent (each builds its own Gram matrix and
  // Cholesky factor), so the grid is the natural unit of parallelism — one
  // fit per task, kernel construction inside each fit running inline. The
  // winner is selected serially afterwards with the same strict-improvement
  // rule the serial loop applied (first-best wins on ties), so the chosen
  // model is identical at any thread count.
  std::vector<std::optional<Result<GpRegression>>> fits(grid.size());
  ThreadPool::Global()->ParallelFor(
      grid.size(), /*grain=*/1, [&](size_t begin, size_t end) {
        for (size_t c = begin; c < end; ++c) {
          const auto& cand = grid[c];
          std::unique_ptr<Kernel> k;
          switch (family) {
            case KernelFamily::kRbf:
              k = std::make_unique<RbfKernel>(cand.signal_variance,
                                              cand.length_scale);
              break;
            case KernelFamily::kMatern32:
              k = std::make_unique<Matern32Kernel>(cand.signal_variance,
                                                   cand.length_scale);
              break;
            case KernelFamily::kMatern52:
              k = std::make_unique<Matern52Kernel>(cand.signal_variance,
                                                   cand.length_scale);
              break;
          }
          fits[c].emplace(
              GpRegression::Fit(std::move(k), x, y, options, noise_variances));
        }
      });
  double best_lml = -std::numeric_limits<double>::infinity();
  Result<GpRegression> best =
      Status::Internal("no candidate produced a valid fit");
  for (auto& fit : fits) {
    if (!fit.has_value() || !fit->ok()) continue;
    const double lml = (*fit)->LogMarginalLikelihood();
    if (lml > best_lml) {
      best_lml = lml;
      best = std::move(*fit);
    }
  }
  return best;
}

std::vector<GpCandidate> DefaultGpGrid() {
  std::vector<GpCandidate> grid;
  for (double sf2 : {0.0025, 0.01, 0.05, 0.25, 1.0}) {
    for (double l : {0.02, 0.05, 0.1, 0.2, 0.5, 1.0}) {
      grid.push_back({sf2, l});
    }
  }
  return grid;
}

}  // namespace humo::gp
