#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace humo::gp {

/// Covariance function over scalar inputs (similarity values in [0,1]).
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// k(x, y).
  virtual double operator()(double x, double y) const = 0;

  /// Human-readable description, e.g. "RBF(sf2=1, l=0.1)".
  virtual std::string ToString() const = 0;

  virtual std::unique_ptr<Kernel> Clone() const = 0;

  /// Gram matrix K(xs, ys).
  linalg::Matrix Gram(const std::vector<double>& xs,
                      const std::vector<double>& ys) const;

  /// Symmetric Gram matrix K(xs, xs); exploits symmetry.
  linalg::Matrix GramSymmetric(const std::vector<double>& xs) const;
};

/// Squared-exponential (RBF): sf2 * exp(-(x-y)^2 / (2 l^2)).
class RbfKernel : public Kernel {
 public:
  RbfKernel(double signal_variance, double length_scale);
  double operator()(double x, double y) const override;
  std::string ToString() const override;
  std::unique_ptr<Kernel> Clone() const override;
  double signal_variance() const { return sf2_; }
  double length_scale() const { return l_; }

 private:
  double sf2_, l_;
};

/// Matérn ν=3/2: sf2 * (1 + √3 r/l) exp(-√3 r/l).
class Matern32Kernel : public Kernel {
 public:
  Matern32Kernel(double signal_variance, double length_scale);
  double operator()(double x, double y) const override;
  std::string ToString() const override;
  std::unique_ptr<Kernel> Clone() const override;

 private:
  double sf2_, l_;
};

/// Matérn ν=5/2: sf2 * (1 + √5 r/l + 5r²/(3l²)) exp(-√5 r/l).
class Matern52Kernel : public Kernel {
 public:
  Matern52Kernel(double signal_variance, double length_scale);
  double operator()(double x, double y) const override;
  std::string ToString() const override;
  std::unique_ptr<Kernel> Clone() const override;

 private:
  double sf2_, l_;
};

/// Constant kernel: c (models a global offset's variance).
class ConstantKernel : public Kernel {
 public:
  explicit ConstantKernel(double c);
  double operator()(double x, double y) const override;
  std::string ToString() const override;
  std::unique_ptr<Kernel> Clone() const override;

 private:
  double c_;
};

/// Sum of two kernels.
class SumKernel : public Kernel {
 public:
  SumKernel(std::unique_ptr<Kernel> a, std::unique_ptr<Kernel> b);
  double operator()(double x, double y) const override;
  std::string ToString() const override;
  std::unique_ptr<Kernel> Clone() const override;

 private:
  std::unique_ptr<Kernel> a_, b_;
};

}  // namespace humo::gp
