#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace humo::gp {

/// Covariance function over scalar inputs (similarity values in [0,1]).
///
/// Every kernel in this library is stationary in one dimension — its value
/// depends on x and y only through the distance |x - y| — so the interface
/// is EvalDistance(|x - y|). That is what lets the hyperparameter grid
/// share one pairwise-distance matrix across every candidate
/// (GramFromDistances): the n^2 distance computations are paid once per
/// training set instead of once per candidate.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// k at distance r = |x - y|; r is non-negative.
  virtual double EvalDistance(double r) const = 0;

  /// k(x, y). Non-virtual: |x - y| is exact in floating point, so routing
  /// through EvalDistance is bit-identical to the historical direct forms.
  double operator()(double x, double y) const {
    return EvalDistance(x >= y ? x - y : y - x);
  }

  /// Human-readable description, e.g. "RBF(sf2=1, l=0.1)".
  virtual std::string ToString() const = 0;

  virtual std::unique_ptr<Kernel> Clone() const = 0;

  /// Fills out[i] = k(x_star, xs[i]) for i in [0, n) — the row every Gram
  /// build and prediction needs. The base implementation dispatches
  /// per-entry; the stationary kernels override it with the identical
  /// expressions statically bound (one virtual call per ROW instead of per
  /// entry), so values are the same either way and only the dispatch cost
  /// changes.
  virtual void FillRow(double x_star, const double* xs, size_t n,
                       double* out) const;

  /// Gram matrix K(xs, ys).
  linalg::Matrix Gram(const std::vector<double>& xs,
                      const std::vector<double>& ys) const;

  /// Symmetric Gram matrix K(xs, xs); exploits symmetry.
  linalg::Matrix GramSymmetric(const std::vector<double>& xs) const;

  /// Symmetric Gram matrix from a precomputed pairwise-distance matrix
  /// (PairwiseDistances below): entry (i, j) = EvalDistance(d(i, j)).
  /// Bit-identical to GramSymmetric on the xs the distances were built
  /// from; the point is that the distances are built once per training set
  /// and reused by every candidate of a hyperparameter grid.
  linalg::Matrix GramFromDistances(const linalg::Matrix& distances) const;
};

/// Symmetric matrix of pairwise distances |xs[i] - xs[j]| — the
/// kernel-independent part of every stationary Gram matrix.
linalg::Matrix PairwiseDistances(const std::vector<double>& xs);

/// Squared-exponential (RBF): sf2 * exp(-(x-y)^2 / (2 l^2)).
class RbfKernel : public Kernel {
 public:
  RbfKernel(double signal_variance, double length_scale);
  double EvalDistance(double r) const override;
  void FillRow(double x_star, const double* xs, size_t n,
               double* out) const override;
  std::string ToString() const override;
  std::unique_ptr<Kernel> Clone() const override;
  double signal_variance() const { return sf2_; }
  double length_scale() const { return l_; }

 private:
  double sf2_, l_;
};

/// Matérn ν=3/2: sf2 * (1 + √3 r/l) exp(-√3 r/l).
class Matern32Kernel : public Kernel {
 public:
  Matern32Kernel(double signal_variance, double length_scale);
  double EvalDistance(double r) const override;
  void FillRow(double x_star, const double* xs, size_t n,
               double* out) const override;
  std::string ToString() const override;
  std::unique_ptr<Kernel> Clone() const override;

 private:
  double sf2_, l_;
};

/// Matérn ν=5/2: sf2 * (1 + √5 r/l + 5r²/(3l²)) exp(-√5 r/l).
class Matern52Kernel : public Kernel {
 public:
  Matern52Kernel(double signal_variance, double length_scale);
  double EvalDistance(double r) const override;
  void FillRow(double x_star, const double* xs, size_t n,
               double* out) const override;
  std::string ToString() const override;
  std::unique_ptr<Kernel> Clone() const override;

 private:
  double sf2_, l_;
};

/// Constant kernel: c (models a global offset's variance).
class ConstantKernel : public Kernel {
 public:
  explicit ConstantKernel(double c);
  double EvalDistance(double r) const override;
  std::string ToString() const override;
  std::unique_ptr<Kernel> Clone() const override;

 private:
  double c_;
};

/// Sum of two kernels.
class SumKernel : public Kernel {
 public:
  SumKernel(std::unique_ptr<Kernel> a, std::unique_ptr<Kernel> b);
  double EvalDistance(double r) const override;
  std::string ToString() const override;
  std::unique_ptr<Kernel> Clone() const override;

 private:
  std::unique_ptr<Kernel> a_, b_;
};

}  // namespace humo::gp
