#include "gp/kernel.h"

#include <cassert>
#include <cmath>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace humo::gp {
namespace {

/// Rows below this count are built inline: the fork/join handshake costs
/// more than the kernel evaluations it would distribute.
constexpr size_t kParallelRowGrain = 64;

}  // namespace

linalg::Matrix Kernel::Gram(const std::vector<double>& xs,
                            const std::vector<double>& ys) const {
  linalg::Matrix k(xs.size(), ys.size());
  // Rows are independent and each entry is written exactly once, so the
  // parallel build is bit-identical to the serial one at any thread count.
  ThreadPool::Global()->ParallelFor(
      xs.size(), kParallelRowGrain, [&](size_t row_begin, size_t row_end) {
        for (size_t i = row_begin; i < row_end; ++i)
          for (size_t j = 0; j < ys.size(); ++j)
            k(i, j) = (*this)(xs[i], ys[j]);
      });
  return k;
}

linalg::Matrix Kernel::GramSymmetric(const std::vector<double>& xs) const {
  linalg::Matrix k(xs.size(), xs.size());
  // Each task owns rows [row_begin, row_end): it computes the lower
  // triangle of those rows and mirrors into the columns above the diagonal,
  // i.e. writes k(i, j) and k(j, i) for j <= i — cell (j, i) belongs to row
  // i's task alone (row j's task only writes columns <= j), so tasks never
  // overlap and the result matches the serial fill exactly.
  ThreadPool::Global()->ParallelFor(
      xs.size(), kParallelRowGrain, [&](size_t row_begin, size_t row_end) {
        for (size_t i = row_begin; i < row_end; ++i) {
          for (size_t j = 0; j <= i; ++j) {
            const double v = (*this)(xs[i], xs[j]);
            k(i, j) = v;
            k(j, i) = v;
          }
        }
      });
  return k;
}

RbfKernel::RbfKernel(double signal_variance, double length_scale)
    : sf2_(signal_variance), l_(length_scale) {
  assert(sf2_ > 0.0 && l_ > 0.0);
}

double RbfKernel::operator()(double x, double y) const {
  const double d = (x - y) / l_;
  return sf2_ * std::exp(-0.5 * d * d);
}

std::string RbfKernel::ToString() const {
  return StrFormat("RBF(sf2=%.4g, l=%.4g)", sf2_, l_);
}

std::unique_ptr<Kernel> RbfKernel::Clone() const {
  return std::make_unique<RbfKernel>(sf2_, l_);
}

Matern32Kernel::Matern32Kernel(double signal_variance, double length_scale)
    : sf2_(signal_variance), l_(length_scale) {
  assert(sf2_ > 0.0 && l_ > 0.0);
}

double Matern32Kernel::operator()(double x, double y) const {
  const double r = std::fabs(x - y) / l_;
  const double a = std::sqrt(3.0) * r;
  return sf2_ * (1.0 + a) * std::exp(-a);
}

std::string Matern32Kernel::ToString() const {
  return StrFormat("Matern32(sf2=%.4g, l=%.4g)", sf2_, l_);
}

std::unique_ptr<Kernel> Matern32Kernel::Clone() const {
  return std::make_unique<Matern32Kernel>(sf2_, l_);
}

Matern52Kernel::Matern52Kernel(double signal_variance, double length_scale)
    : sf2_(signal_variance), l_(length_scale) {
  assert(sf2_ > 0.0 && l_ > 0.0);
}

double Matern52Kernel::operator()(double x, double y) const {
  const double r = std::fabs(x - y) / l_;
  const double a = std::sqrt(5.0) * r;
  return sf2_ * (1.0 + a + 5.0 * r * r / 3.0) * std::exp(-a);
}

std::string Matern52Kernel::ToString() const {
  return StrFormat("Matern52(sf2=%.4g, l=%.4g)", sf2_, l_);
}

std::unique_ptr<Kernel> Matern52Kernel::Clone() const {
  return std::make_unique<Matern52Kernel>(sf2_, l_);
}

ConstantKernel::ConstantKernel(double c) : c_(c) { assert(c_ >= 0.0); }

double ConstantKernel::operator()(double, double) const { return c_; }

std::string ConstantKernel::ToString() const {
  return StrFormat("Const(%.4g)", c_);
}

std::unique_ptr<Kernel> ConstantKernel::Clone() const {
  return std::make_unique<ConstantKernel>(c_);
}

SumKernel::SumKernel(std::unique_ptr<Kernel> a, std::unique_ptr<Kernel> b)
    : a_(std::move(a)), b_(std::move(b)) {
  assert(a_ && b_);
}

double SumKernel::operator()(double x, double y) const {
  return (*a_)(x, y) + (*b_)(x, y);
}

std::string SumKernel::ToString() const {
  return a_->ToString() + " + " + b_->ToString();
}

std::unique_ptr<Kernel> SumKernel::Clone() const {
  return std::make_unique<SumKernel>(a_->Clone(), b_->Clone());
}

}  // namespace humo::gp
