#include "gp/kernel.h"

#include <cassert>
#include <cmath>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace humo::gp {
namespace {

/// Rows below this count are built inline: the fork/join handshake costs
/// more than the kernel evaluations it would distribute.
constexpr size_t kParallelRowGrain = 64;

}  // namespace

void Kernel::FillRow(double x_star, const double* xs, size_t n,
                     double* out) const {
  for (size_t i = 0; i < n; ++i) out[i] = (*this)(x_star, xs[i]);
}

linalg::Matrix Kernel::Gram(const std::vector<double>& xs,
                            const std::vector<double>& ys) const {
  linalg::Matrix k(xs.size(), ys.size());
  // Rows are independent and each entry is written exactly once, so the
  // parallel build is bit-identical to the serial one at any thread count.
  ThreadPool::Global()->ParallelFor(
      xs.size(), kParallelRowGrain, [&](size_t row_begin, size_t row_end) {
        for (size_t i = row_begin; i < row_end; ++i)
          FillRow(xs[i], ys.data(), ys.size(), k.RowPtr(i));
      });
  return k;
}

linalg::Matrix Kernel::GramSymmetric(const std::vector<double>& xs) const {
  linalg::Matrix k(xs.size(), xs.size());
  // Each task owns rows [row_begin, row_end): it computes the lower
  // triangle of those rows and mirrors into the columns above the diagonal,
  // i.e. writes k(i, j) and k(j, i) for j <= i — cell (j, i) belongs to row
  // i's task alone (row j's task only writes columns <= j), so tasks never
  // overlap and the result matches the serial fill exactly.
  ThreadPool::Global()->ParallelFor(
      xs.size(), kParallelRowGrain, [&](size_t row_begin, size_t row_end) {
        for (size_t i = row_begin; i < row_end; ++i) {
          for (size_t j = 0; j <= i; ++j) {
            const double v = (*this)(xs[i], xs[j]);
            k(i, j) = v;
            k(j, i) = v;
          }
        }
      });
  return k;
}

linalg::Matrix Kernel::GramFromDistances(
    const linalg::Matrix& distances) const {
  assert(distances.rows() == distances.cols());
  const size_t n = distances.rows();
  linalg::Matrix k(n, n);
  // Same ownership scheme as GramSymmetric; the entries are
  // EvalDistance(|x_i - x_j|) either way, so the two builds agree
  // bit-for-bit — this one just skips recomputing the n^2 distances.
  ThreadPool::Global()->ParallelFor(
      n, kParallelRowGrain, [&](size_t row_begin, size_t row_end) {
        for (size_t i = row_begin; i < row_end; ++i) {
          for (size_t j = 0; j <= i; ++j) {
            const double v = EvalDistance(distances(i, j));
            k(i, j) = v;
            k(j, i) = v;
          }
        }
      });
  return k;
}

linalg::Matrix PairwiseDistances(const std::vector<double>& xs) {
  const size_t n = xs.size();
  linalg::Matrix d(n, n);
  ThreadPool::Global()->ParallelFor(
      n, kParallelRowGrain, [&](size_t row_begin, size_t row_end) {
        for (size_t i = row_begin; i < row_end; ++i) {
          for (size_t j = 0; j <= i; ++j) {
            const double r = xs[i] >= xs[j] ? xs[i] - xs[j] : xs[j] - xs[i];
            d(i, j) = r;
            d(j, i) = r;
          }
        }
      });
  return d;
}

RbfKernel::RbfKernel(double signal_variance, double length_scale)
    : sf2_(signal_variance), l_(length_scale) {
  assert(sf2_ > 0.0 && l_ > 0.0);
}

double RbfKernel::EvalDistance(double r) const {
  const double d = r / l_;
  return sf2_ * std::exp(-0.5 * d * d);
}

void RbfKernel::FillRow(double x_star, const double* xs, size_t n,
                        double* out) const {
  // Statically-bound form of the base-class loop: same |x - y| and the same
  // EvalDistance expression per entry, minus the per-entry virtual dispatch.
  for (size_t i = 0; i < n; ++i) {
    const double r = x_star >= xs[i] ? x_star - xs[i] : xs[i] - x_star;
    out[i] = RbfKernel::EvalDistance(r);
  }
}

std::string RbfKernel::ToString() const {
  return StrFormat("RBF(sf2=%.4g, l=%.4g)", sf2_, l_);
}

std::unique_ptr<Kernel> RbfKernel::Clone() const {
  return std::make_unique<RbfKernel>(sf2_, l_);
}

Matern32Kernel::Matern32Kernel(double signal_variance, double length_scale)
    : sf2_(signal_variance), l_(length_scale) {
  assert(sf2_ > 0.0 && l_ > 0.0);
}

double Matern32Kernel::EvalDistance(double dist) const {
  const double r = dist / l_;
  const double a = std::sqrt(3.0) * r;
  return sf2_ * (1.0 + a) * std::exp(-a);
}

void Matern32Kernel::FillRow(double x_star, const double* xs, size_t n,
                             double* out) const {
  for (size_t i = 0; i < n; ++i) {
    const double r = x_star >= xs[i] ? x_star - xs[i] : xs[i] - x_star;
    out[i] = Matern32Kernel::EvalDistance(r);
  }
}

std::string Matern32Kernel::ToString() const {
  return StrFormat("Matern32(sf2=%.4g, l=%.4g)", sf2_, l_);
}

std::unique_ptr<Kernel> Matern32Kernel::Clone() const {
  return std::make_unique<Matern32Kernel>(sf2_, l_);
}

Matern52Kernel::Matern52Kernel(double signal_variance, double length_scale)
    : sf2_(signal_variance), l_(length_scale) {
  assert(sf2_ > 0.0 && l_ > 0.0);
}

double Matern52Kernel::EvalDistance(double dist) const {
  const double r = dist / l_;
  const double a = std::sqrt(5.0) * r;
  return sf2_ * (1.0 + a + 5.0 * r * r / 3.0) * std::exp(-a);
}

void Matern52Kernel::FillRow(double x_star, const double* xs, size_t n,
                             double* out) const {
  for (size_t i = 0; i < n; ++i) {
    const double r = x_star >= xs[i] ? x_star - xs[i] : xs[i] - x_star;
    out[i] = Matern52Kernel::EvalDistance(r);
  }
}

std::string Matern52Kernel::ToString() const {
  return StrFormat("Matern52(sf2=%.4g, l=%.4g)", sf2_, l_);
}

std::unique_ptr<Kernel> Matern52Kernel::Clone() const {
  return std::make_unique<Matern52Kernel>(sf2_, l_);
}

ConstantKernel::ConstantKernel(double c) : c_(c) { assert(c_ >= 0.0); }

double ConstantKernel::EvalDistance(double) const { return c_; }

std::string ConstantKernel::ToString() const {
  return StrFormat("Const(%.4g)", c_);
}

std::unique_ptr<Kernel> ConstantKernel::Clone() const {
  return std::make_unique<ConstantKernel>(c_);
}

SumKernel::SumKernel(std::unique_ptr<Kernel> a, std::unique_ptr<Kernel> b)
    : a_(std::move(a)), b_(std::move(b)) {
  assert(a_ && b_);
}

double SumKernel::EvalDistance(double r) const {
  return a_->EvalDistance(r) + b_->EvalDistance(r);
}

std::string SumKernel::ToString() const {
  return a_->ToString() + " + " + b_->ToString();
}

std::unique_ptr<Kernel> SumKernel::Clone() const {
  return std::make_unique<SumKernel>(a_->Clone(), b_->Clone());
}

}  // namespace humo::gp
