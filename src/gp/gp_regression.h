#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "gp/kernel.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"

namespace humo::gp {

/// Posterior of a single query point.
struct Prediction {
  double mean = 0.0;
  double variance = 0.0;
  /// sqrt(max(0, variance)) — guards the tiny negative roundoff residue.
  double stddev() const;
};

/// Joint posterior over a set of query points: per-point means and the full
/// posterior covariance K(V*,V*) - K(V*,V) K(V,V)^-1 K(V,V*) (paper Eq. 20
/// needs the off-diagonal terms when aggregating subset match counts).
struct JointPrediction {
  std::vector<double> mean;
  linalg::Matrix covariance;

  /// Sum over points of n_i * mean_i, i.e. expected total positives when
  /// mean_i are match proportions and weights n_i are subset sizes (Eq. 19).
  double WeightedTotalMean(const std::vector<double>& weights) const;

  /// Std-dev of the weighted total: sqrt(sum_ij n_i n_j cov_ij) (Eq. 20).
  double WeightedTotalStdDev(const std::vector<double>& weights) const;
};

/// Options controlling GP fitting.
struct GpOptions {
  /// Homoscedastic observation-noise variance added to the training
  /// diagonal; per-point noise can additionally be supplied to Fit.
  double noise_variance = 1e-4;
  /// Subtract the training-mean before fitting and add it back at
  /// prediction (a constant mean function; keeps the zero-mean GP assumption
  /// honest for proportions that hover near 0.5).
  bool center_mean = true;
};

/// Gaussian-process regression over scalar inputs.
///
/// This implements §VI-B of the paper: the match proportions of unit subsets
/// are modeled as a joint Gaussian in their (average) similarity values,
/// the posterior supplies both interpolated proportions (Eq. 16-17) and the
/// covariance needed to bound totals over subset unions (Eq. 19-21).
class GpRegression {
 public:
  /// Fits the GP. `noise_variances`, when non-empty, must parallel `x` and
  /// adds heteroscedastic per-observation noise (sampling variance of each
  /// observed proportion) to the training diagonal. `pairwise_distances`,
  /// when non-null, must be PairwiseDistances(x) and lets the fit skip
  /// rebuilding the distance part of the Gram matrix — the hyperparameter
  /// grid selector passes one distance matrix to every candidate fit.
  static Result<GpRegression> Fit(
      std::unique_ptr<Kernel> kernel, std::vector<double> x,
      std::vector<double> y, GpOptions options = {},
      std::vector<double> noise_variances = {},
      const linalg::Matrix* pairwise_distances = nullptr);

  /// Deep copy (the kernel is cloned); fitted state is value-like.
  GpRegression Clone() const;

  /// Returns a model refitted on this model's training set extended by
  /// (x_new, y_new, noise_variances_new), reusing the existing Cholesky
  /// factor through a rank-k append (O(n^2 k) instead of the O(n^3)
  /// from-scratch refactor; kernel hyperparameters are kept). The appended
  /// rows use the factor's original jitter, so the result is bit-identical
  /// to Fit on the concatenated training set whenever that fit lands on
  /// the same jitter (and within factorization roundoff otherwise). When
  /// the append hits a non-positive pivot an error is returned and the
  /// caller must fall back to a full Fit.
  Result<GpRegression> ExtendedWith(
      const std::vector<double>& x_new, const std::vector<double>& y_new,
      const std::vector<double>& noise_variances_new = {}) const;

  /// Posterior mean/variance at one query point.
  Prediction Predict(double x_star) const;

  /// Posterior means/variances at many query points: one K(V*, V) build
  /// plus one blocked multi-right-hand-side triangular solve for the whole
  /// batch (Cholesky::SolveLowerRows) instead of a per-point solve each.
  /// Entry i is bit-identical to Predict(x_star[i]) at any thread count.
  /// When `whitened` is non-null it receives the whitened cross vectors
  /// L^-1 k(V, x*_i) the solve produces (what WhitenedCross returns per
  /// point) — GpSubsetModel consumes both in one pass.
  std::vector<Prediction> PredictBatch(
      const std::vector<double>& x_star,
      std::vector<linalg::Vector>* whitened = nullptr) const;

  /// Joint posterior over many query points.
  JointPrediction PredictJoint(const std::vector<double>& x_star) const;

  /// Log marginal likelihood of the training data under the fitted kernel;
  /// used for hyperparameter selection.
  double LogMarginalLikelihood() const;

  /// Whitened cross-covariance w(x*) = L^-1 k(V, x*). The posterior
  /// covariance of two query points decomposes as
  ///   cov(a, b) = k(a, b) - w(a).w(b),
  /// which lets range aggregations (Eq. 20) be maintained incrementally in
  /// O(len(V)) per update instead of re-solving per query set.
  linalg::Vector WhitenedCross(double x_star) const;

  /// Posterior variance k(x*,x*) - w.w (clamped at 0) at a query point whose
  /// whitened cross vector `w` was already computed (by WhitenedCross or the
  /// PredictBatch out-param). O(len(V)) — no triangular solve — which is what
  /// makes per-subset risk scoring over cached whitened vectors cheap
  /// (GpSubsetModel::PosteriorVariance). `w` must have been produced by THIS
  /// model; equals Predict(x_star).variance exactly.
  double PosteriorVarianceFromWhitened(double x_star,
                                       const linalg::Vector& w) const;

  /// The fitted kernel (hyperparameters as selected at Fit time).
  const Kernel& kernel() const { return *kernel_; }

  /// Number of training observations the posterior conditions on.
  size_t num_training_points() const { return x_.size(); }

  /// Training inputs/targets in insertion order (original, uncentered
  /// observations). Streaming consumers compare these against a candidate
  /// training set to decide between ExtendedWith (old set is a prefix of
  /// the new one) and a from-scratch refit.
  const std::vector<double>& training_inputs() const { return x_; }
  const std::vector<double>& training_targets() const { return y_; }

 private:
  GpRegression() = default;

  /// Recomputes mean/centering, alpha, and the log marginal likelihood from
  /// x_/y_/chol_ — the shared tail of Fit and ExtendedWith.
  void FinishFit();

  std::unique_ptr<Kernel> kernel_;
  GpOptions options_;
  std::vector<double> x_;
  std::vector<double> y_;  // original observations (ExtendedWith re-centers)
  std::vector<double> y_centered_;
  double y_mean_ = 0.0;
  linalg::Cholesky chol_;
  linalg::Vector alpha_;  // K^-1 (y - mean)
  double log_marginal_ = 0.0;
};

/// Candidate hyperparameter grid entry for SelectGpByMarginalLikelihood.
struct GpCandidate {
  double signal_variance;
  double length_scale;
};

/// Kernel families the selector can instantiate.
enum class KernelFamily { kRbf, kMatern32, kMatern52 };

/// Fits one GP per candidate on a small grid and returns the one with the
/// highest log marginal likelihood (simple, derivative-free model selection;
/// adequate for 1-D inputs). The pairwise-distance matrix of `x` is computed
/// ONCE and shared by every candidate fit (all kernel families are
/// stationary), so the per-candidate cost is the factorization alone.
Result<GpRegression> SelectGpByMarginalLikelihood(
    const std::vector<double>& x, const std::vector<double>& y,
    const std::vector<GpCandidate>& grid, KernelFamily family,
    GpOptions options = {}, std::vector<double> noise_variances = {});

/// A sensible default grid for similarity inputs in [0,1].
std::vector<GpCandidate> DefaultGpGrid();

/// DefaultGpGrid() restricted to length scales of at least 1.5x the largest
/// gap between adjacent training inputs (`xs` in any order; a sorted copy is
/// taken). A shorter scale would interpolate the training points perfectly
/// yet predict at full prior variance inside every gap — useless exactly
/// where no evidence is. When every stock scale is below the threshold, a
/// small fallback grid proportional to the gap itself is returned. Shared
/// by the SAMP certification fit and the streaming provisional fit so the
/// two models can never diverge on this guard.
std::vector<GpCandidate> GapGuardedGrid(const std::vector<double>& xs);

}  // namespace humo::gp
