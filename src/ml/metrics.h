#pragma once

#include <cstddef>
#include <vector>

namespace humo::ml {

/// Binary-classification confusion counts and the derived quality metrics
/// used throughout the paper (Eq. 1-2).
struct ClassificationMetrics {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t true_negatives = 0;
  size_t false_negatives = 0;

  /// |Dtp| / (|Dtp| + |Dfp|); defined as 1 when nothing was labeled match
  /// (vacuous truth — no false positives possible).
  double precision() const;
  /// |Dtp| / (|Dtp| + |Dfn|); defined as 1 when there are no actual matches.
  double recall() const;
  /// Harmonic mean of precision and recall; 0 when both are 0.
  double f1() const;
  double accuracy() const;
  size_t total() const;
};

/// Computes the confusion counts of predicted vs ground-truth labels
/// (both in {0,1}).
ClassificationMetrics EvaluateLabels(const std::vector<int>& predicted,
                                     const std::vector<int>& truth);

}  // namespace humo::ml
