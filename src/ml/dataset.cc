#include "ml/dataset.h"

#include <cassert>
#include <numeric>

namespace humo::ml {

size_t Dataset::CountPositives() const {
  size_t n = 0;
  for (int l : labels) n += (l == 1);
  return n;
}

void Dataset::Add(FeatureVector f, int label) {
  assert(label == 0 || label == 1);
  assert(features.empty() || f.size() == features[0].size());
  features.push_back(std::move(f));
  labels.push_back(label);
}

TrainTestSplit SplitDataset(const Dataset& data, double train_fraction,
                            Rng* rng) {
  assert(train_fraction >= 0.0 && train_fraction <= 1.0);
  std::vector<size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  rng->Shuffle(&idx);
  const size_t n_train =
      static_cast<size_t>(train_fraction * static_cast<double>(data.size()));
  TrainTestSplit split;
  for (size_t i = 0; i < idx.size(); ++i) {
    Dataset& dst = (i < n_train) ? split.train : split.test;
    dst.Add(data.features[idx[i]], data.labels[idx[i]]);
  }
  return split;
}

std::vector<std::vector<size_t>> KFoldIndices(size_t n, size_t k, Rng* rng) {
  assert(k >= 2 && k <= n);
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  rng->Shuffle(&idx);
  std::vector<std::vector<size_t>> folds(k);
  for (size_t i = 0; i < n; ++i) folds[i % k].push_back(idx[i]);
  return folds;
}

Dataset Subset(const Dataset& data, const std::vector<size_t>& indices) {
  Dataset out;
  for (size_t i : indices) {
    assert(i < data.size());
    out.Add(data.features[i], data.labels[i]);
  }
  return out;
}

}  // namespace humo::ml
