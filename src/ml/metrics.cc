#include "ml/metrics.h"

#include <cassert>

namespace humo::ml {

double ClassificationMetrics::precision() const {
  const size_t denom = true_positives + false_positives;
  if (denom == 0) return 1.0;
  return static_cast<double>(true_positives) / static_cast<double>(denom);
}

double ClassificationMetrics::recall() const {
  const size_t denom = true_positives + false_negatives;
  if (denom == 0) return 1.0;
  return static_cast<double>(true_positives) / static_cast<double>(denom);
}

double ClassificationMetrics::f1() const {
  const double p = precision(), r = recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ClassificationMetrics::accuracy() const {
  const size_t n = total();
  if (n == 0) return 1.0;
  return static_cast<double>(true_positives + true_negatives) /
         static_cast<double>(n);
}

size_t ClassificationMetrics::total() const {
  return true_positives + false_positives + true_negatives + false_negatives;
}

ClassificationMetrics EvaluateLabels(const std::vector<int>& predicted,
                                     const std::vector<int>& truth) {
  assert(predicted.size() == truth.size());
  ClassificationMetrics m;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const bool pred = predicted[i] == 1;
    const bool real = truth[i] == 1;
    if (pred && real) ++m.true_positives;
    else if (pred && !real) ++m.false_positives;
    else if (!pred && real) ++m.false_negatives;
    else ++m.true_negatives;
  }
  return m;
}

}  // namespace humo::ml
