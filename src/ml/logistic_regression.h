#pragma once

#include <vector>

#include "common/random.h"
#include "ml/dataset.h"

namespace humo::ml {

struct LogisticOptions {
  double learning_rate = 0.1;
  double l2 = 1e-5;
  size_t epochs = 50;
  uint64_t seed = 42;
};

/// Binary logistic regression trained by SGD. Supplies the
/// "match probability" machine metric alternative discussed in §IV-A.
class LogisticRegression {
 public:
  static LogisticRegression Train(const Dataset& data,
                                  const LogisticOptions& options = {});

  /// P(label = 1 | f) via the sigmoid of the linear score.
  double PredictProbability(const FeatureVector& f) const;

  /// Hard prediction at the given probability threshold.
  int Predict(const FeatureVector& f, double threshold = 0.5) const;

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }

 private:
  std::vector<double> w_;
  double b_ = 0.0;
};

/// Numerically safe sigmoid.
double Sigmoid(double z);

}  // namespace humo::ml
