#pragma once

#include <vector>

#include "ml/dataset.h"

namespace humo::ml {

/// Per-feature standardization to zero mean / unit variance, fitted on the
/// training set and applied to any split (avoids train/test leakage).
class StandardScaler {
 public:
  void Fit(const Dataset& data);
  FeatureVector Transform(const FeatureVector& f) const;
  Dataset Transform(const Dataset& data) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

}  // namespace humo::ml
