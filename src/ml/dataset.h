#pragma once

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace humo::ml {

/// Dense feature vector.
using FeatureVector = std::vector<double>;

/// A labeled dataset for binary classification; labels are {0, 1}.
struct Dataset {
  std::vector<FeatureVector> features;
  std::vector<int> labels;

  size_t size() const { return features.size(); }
  size_t num_features() const {
    return features.empty() ? 0 : features[0].size();
  }
  size_t CountPositives() const;

  void Add(FeatureVector f, int label);
};

/// Random stratified-ish split: shuffles indices and cuts at
/// `train_fraction`. Deterministic under the supplied rng.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
TrainTestSplit SplitDataset(const Dataset& data, double train_fraction,
                            Rng* rng);

/// k-fold cross-validation index sets.
std::vector<std::vector<size_t>> KFoldIndices(size_t n, size_t k, Rng* rng);

/// Selects the subset of a dataset given by indices.
Dataset Subset(const Dataset& data, const std::vector<size_t>& indices);

}  // namespace humo::ml
