#pragma once

#include <vector>

#include "common/random.h"
#include "ml/dataset.h"

namespace humo::ml {

/// Hyperparameters for the Pegasos-style SGD trainer.
struct SvmOptions {
  /// L2 regularization strength (lambda of Pegasos).
  double lambda = 1e-4;
  /// Number of SGD epochs over the (shuffled) training set.
  size_t epochs = 30;
  /// Weight applied to positive examples' losses to counter class imbalance
  /// (ER workloads are heavily skewed toward unmatches). 1.0 = unweighted.
  double positive_weight = 1.0;
  uint64_t seed = 42;
};

/// Linear soft-margin SVM trained by Pegasos (primal sub-gradient descent on
/// the hinge loss with L2 regularization). Used in two roles mirroring the
/// paper: (a) the machine-only reference classifier of Table I, and (b) a
/// machine metric for HUMO — the signed distance to the separating plane.
class LinearSvm {
 public:
  /// Trains on the dataset; labels must be {0,1} (mapped to -1/+1
  /// internally).
  static LinearSvm Train(const Dataset& data, const SvmOptions& options = {});

  /// Signed decision value w.x + b (positive => class 1 side).
  double DecisionValue(const FeatureVector& f) const;

  /// Hard prediction in {0,1}.
  int Predict(const FeatureVector& f) const;

  /// Signed distance to the hyperplane: (w.x + b) / ||w||. This is the
  /// "SVM distance" machine metric discussed in §IV-A of the paper.
  double Distance(const FeatureVector& f) const;

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }

 private:
  std::vector<double> w_;
  double b_ = 0.0;
  double w_norm_ = 1.0;
};

}  // namespace humo::ml
