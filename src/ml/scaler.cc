#include "ml/scaler.h"

#include <cassert>
#include <cmath>

namespace humo::ml {

void StandardScaler::Fit(const Dataset& data) {
  const size_t d = data.num_features();
  means_.assign(d, 0.0);
  stddevs_.assign(d, 1.0);
  if (data.size() == 0) return;
  for (const auto& f : data.features)
    for (size_t j = 0; j < d; ++j) means_[j] += f[j];
  for (double& m : means_) m /= static_cast<double>(data.size());
  std::vector<double> var(d, 0.0);
  for (const auto& f : data.features)
    for (size_t j = 0; j < d; ++j) {
      const double dev = f[j] - means_[j];
      var[j] += dev * dev;
    }
  for (size_t j = 0; j < d; ++j) {
    const double v = var[j] / static_cast<double>(data.size());
    stddevs_[j] = v > 0.0 ? std::sqrt(v) : 1.0;  // constant feature: identity
  }
}

FeatureVector StandardScaler::Transform(const FeatureVector& f) const {
  assert(f.size() == means_.size());
  FeatureVector out(f.size());
  for (size_t j = 0; j < f.size(); ++j)
    out[j] = (f[j] - means_[j]) / stddevs_[j];
  return out;
}

Dataset StandardScaler::Transform(const Dataset& data) const {
  Dataset out;
  for (size_t i = 0; i < data.size(); ++i)
    out.Add(Transform(data.features[i]), data.labels[i]);
  return out;
}

}  // namespace humo::ml
