#include "ml/linear_svm.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace humo::ml {

LinearSvm LinearSvm::Train(const Dataset& data, const SvmOptions& options) {
  assert(data.size() > 0);
  const size_t d = data.num_features();
  LinearSvm svm;
  svm.w_.assign(d, 0.0);
  svm.b_ = 0.0;

  Rng rng(options.seed);
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), size_t{0});

  // Learning-rate warm start: eta = 1 / (lambda (t + t0)) with
  // t0 = 1/lambda caps the first steps at eta <= 1. Plain Pegasos
  // (eta_1 = 1/lambda) makes the unregularized bias blow up by ~1/lambda
  // on the first example and never recover within realistic epoch budgets.
  const double t0 = 1.0 / options.lambda;
  size_t t = 0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t i : order) {
      ++t;
      const double eta =
          1.0 / (options.lambda * (static_cast<double>(t) + t0));
      const double y = data.labels[i] == 1 ? 1.0 : -1.0;
      const double cost_weight =
          data.labels[i] == 1 ? options.positive_weight : 1.0;
      const auto& x = data.features[i];
      double margin = svm.b_;
      for (size_t j = 0; j < d; ++j) margin += svm.w_[j] * x[j];
      margin *= y;

      // L2 shrink step applies regardless of the hinge being active.
      const double shrink = 1.0 - eta * options.lambda;
      for (double& wj : svm.w_) wj *= shrink;
      if (margin < 1.0) {
        const double step = eta * cost_weight * y;
        for (size_t j = 0; j < d; ++j) svm.w_[j] += step * x[j];
        svm.b_ += step;  // unregularized bias
      }
    }
  }
  svm.w_norm_ = std::sqrt(std::inner_product(svm.w_.begin(), svm.w_.end(),
                                             svm.w_.begin(), 0.0));
  if (svm.w_norm_ == 0.0) svm.w_norm_ = 1.0;
  return svm;
}

double LinearSvm::DecisionValue(const FeatureVector& f) const {
  assert(f.size() == w_.size());
  double acc = b_;
  for (size_t j = 0; j < w_.size(); ++j) acc += w_[j] * f[j];
  return acc;
}

int LinearSvm::Predict(const FeatureVector& f) const {
  return DecisionValue(f) >= 0.0 ? 1 : 0;
}

double LinearSvm::Distance(const FeatureVector& f) const {
  return DecisionValue(f) / w_norm_;
}

}  // namespace humo::ml
