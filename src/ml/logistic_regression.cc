#include "ml/logistic_regression.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace humo::ml {

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

LogisticRegression LogisticRegression::Train(const Dataset& data,
                                             const LogisticOptions& options) {
  assert(data.size() > 0);
  const size_t d = data.num_features();
  LogisticRegression lr;
  lr.w_.assign(d, 0.0);
  lr.b_ = 0.0;

  Rng rng(options.seed);
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), size_t{0});

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    // 1/sqrt(epoch) decay keeps late epochs fine-tuning.
    const double eta =
        options.learning_rate / std::sqrt(1.0 + static_cast<double>(epoch));
    for (size_t i : order) {
      const auto& x = data.features[i];
      double z = lr.b_;
      for (size_t j = 0; j < d; ++j) z += lr.w_[j] * x[j];
      const double err = Sigmoid(z) - static_cast<double>(data.labels[i]);
      for (size_t j = 0; j < d; ++j)
        lr.w_[j] -= eta * (err * x[j] + options.l2 * lr.w_[j]);
      lr.b_ -= eta * err;
    }
  }
  return lr;
}

double LogisticRegression::PredictProbability(const FeatureVector& f) const {
  assert(f.size() == w_.size());
  double z = b_;
  for (size_t j = 0; j < w_.size(); ++j) z += w_[j] * f[j];
  return Sigmoid(z);
}

int LogisticRegression::Predict(const FeatureVector& f,
                                double threshold) const {
  return PredictProbability(f) >= threshold ? 1 : 0;
}

}  // namespace humo::ml
