#include "actl/active_learning.h"

#include <algorithm>

#include "common/random.h"
#include "stats/proportion.h"

namespace humo::actl {

Result<ActlResult> ActiveLearningResolver::Resolve(
    const core::SubsetPartition& partition, double target_precision,
    core::Oracle* oracle) const {
  if (oracle == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  const size_t m = partition.num_subsets();
  if (m == 0) return Status::InvalidArgument("empty workload");
  if (target_precision <= 0.0 || target_precision > 1.0)
    return Status::InvalidArgument("target precision must be in (0, 1]");

  Rng rng(options_.seed);
  const auto& workload = partition.workload();

  // Walk the threshold down; certify the precision of [t, m-1] by sampling.
  // Accept the lowest threshold whose Wilson lower bound clears the target.
  // Samples are drawn fresh per probe from the probe's region; the oracle
  // deduplicates repeat questions, so the effective cost grows sublinearly.
  auto certify = [&](size_t t) {
    size_t region_begin = partition[t].begin;
    size_t region_size = workload.size() - region_begin;
    if (region_size == 0) return true;
    const size_t take = std::min(options_.samples_per_probe, region_size);
    const auto picks = rng.SampleWithoutReplacement(region_size, take);
    size_t positives = 0;
    for (size_t off : picks) positives += oracle->Label(region_begin + off);
    const auto iv =
        stats::WilsonInterval(positives, take, options_.confidence);
    return iv.lo >= target_precision;
  };

  // The region must start non-empty; find the best (lowest) certified
  // threshold. If even the top subset cannot be certified, everything is
  // labeled unmatch (threshold past the end).
  size_t best = m;  // sentinel: nothing labeled match
  for (size_t t = m; t-- > 0;) {
    if (certify(t)) {
      best = t;
    } else {
      break;  // monotone metric: lower thresholds only get dirtier
    }
  }

  ActlResult result;
  result.threshold_subset = best;
  result.labels.assign(workload.size(), 0);
  if (best < m) {
    for (size_t i = partition[best].begin; i < workload.size(); ++i)
      result.labels[i] = 1;
  }
  result.human_cost = oracle->cost();
  result.human_cost_fraction = oracle->CostFraction();
  return result;
}

}  // namespace humo::actl
