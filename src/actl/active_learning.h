#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/oracle.h"
#include "core/partition.h"

namespace humo::actl {

/// Options of the ACTL comparator.
struct ActlOptions {
  /// Labels drawn per threshold probe when estimating the precision of the
  /// region above the probe threshold.
  size_t samples_per_probe = 100;
  /// Confidence of the one-sided precision certificate per probe.
  double confidence = 0.9;
  uint64_t seed = 17;
};

/// Result of an ACTL run: the similarity threshold (as a subset index —
/// every pair in subsets >= `threshold_subset` is labeled match), the final
/// labeling, and the human cost spent on precision estimation.
struct ActlResult {
  size_t threshold_subset = 0;
  std::vector<int> labels;
  size_t human_cost = 0;
  double human_cost_fraction = 0.0;
};

/// State-of-the-art comparator (§VIII-C): active-learning style
/// precision-constrained recall maximization in the spirit of Arasu et al.
/// (SIGMOD'10) / Bellare et al. (KDD'12).
///
/// The classifier family is the monotone threshold family over the machine
/// metric: label match iff similarity >= v. The search walks the threshold
/// down from the top subset, at each step estimating the precision of the
/// would-be match region by sampling it (Wilson lower bound at the
/// configured confidence); it stops before the certificate drops below the
/// target precision, thereby maximizing recall subject to the precision
/// constraint. Unlike HUMO it offers NO recall guarantee — the comparison
/// axis of Tables V/VI and Fig. 11.
class ActiveLearningResolver {
 public:
  explicit ActiveLearningResolver(ActlOptions options = {})
      : options_(options) {}

  Result<ActlResult> Resolve(const core::SubsetPartition& partition,
                             double target_precision,
                             core::Oracle* oracle) const;

 private:
  ActlOptions options_;
};

}  // namespace humo::actl
