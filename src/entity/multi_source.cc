#include "entity/multi_source.h"

#include <algorithm>
#include <utility>

namespace humo::entity {

MultiSourceEntities::MultiSourceEntities(EntityClustering clustering,
                                         std::vector<SourceInfo> sources)
    : clustering_(std::move(clustering)), sources_(std::move(sources)) {
  const size_t num_entities = clustering_.num_entities();
  span_.assign(num_entities, 0);
  records_per_source_.assign(sources_.size(), 0);

  // One pass per entity over its (ascending, hence source-grouped) members:
  // consecutive members from the same source count once toward the span.
  size_t max_span = 0;
  for (uint32_t e = 0; e < num_entities; ++e) {
    const EntityClustering::MemberRange members = clustering_.MembersOf(e);
    uint64_t last_source = UINT64_MAX;
    for (size_t i = 0; i < members.size(); ++i) {
      const RecordRef r = members[i];
      if (r.source < records_per_source_.size()) {
        ++records_per_source_[r.source];
      }
      if (r.source != last_source) {
        ++span_[e];
        last_source = r.source;
      }
    }
    if (span_[e] >= 2) ++spanning_entities_;
    max_span = std::max<size_t>(max_span, span_[e]);
  }

  histogram_.assign(max_span + 1, 0);
  for (uint32_t e = 0; e < num_entities; ++e) ++histogram_[span_[e]];
}

std::vector<RecordRef> MultiSourceEntities::MembersFromSource(
    uint32_t entity, uint32_t source) const {
  std::vector<RecordRef> out;
  const EntityClustering::MemberRange members = clustering_.MembersOf(entity);
  // Members are sorted by packed (source, id), so the slice is contiguous.
  const uint64_t lo = static_cast<uint64_t>(source) << 32;
  const uint64_t hi = lo | 0xFFFFFFFFULL;
  for (size_t i = 0; i < members.size(); ++i) {
    const uint64_t key = members.data[i];
    if (key < lo) continue;
    if (key > hi) break;
    out.push_back(UnpackRecord(key));
  }
  return out;
}

}  // namespace humo::entity
