#include "entity/entity_clustering.h"

#include <algorithm>
#include <cassert>

#include "common/thread_pool.h"
#include "core/resolution_service.h"

namespace humo::entity {
namespace {

/// Path-halving find over a flat parent array.
uint32_t Find(std::vector<uint32_t>* parent, uint32_t x) {
  std::vector<uint32_t>& p = *parent;
  while (p[x] != x) {
    p[x] = p[p[x]];
    x = p[x];
  }
  return x;
}

}  // namespace

bool EntityClustering::MemberRange::Contains(RecordRef record) const {
  const uint64_t key = PackRecord(record);
  const uint64_t* end = data + count;
  const uint64_t* it = std::lower_bound(data, end, key);
  return it != end && *it == key;
}

EntityClustering EntityClustering::FromLabels(const data::Workload& workload,
                                              const std::vector<int>& labels,
                                              const ClusteringOptions& options) {
  EntityClustering out;
  out.BuildFrom(workload, labels, options);
  return out;
}

EntityClustering EntityClustering::FromSolution(
    const data::Workload& workload, const core::ResolutionResult& result,
    const ClusteringOptions& options) {
  return FromLabels(workload, result.labels, options);
}

EntityClustering EntityClustering::FromSnapshot(
    const core::ResolutionSnapshot& snapshot,
    const ClusteringOptions& options) {
  return FromLabels(snapshot.workload(), snapshot.labels(), options);
}

void EntityClustering::BuildFrom(const data::Workload& workload,
                                 const std::vector<int>& labels,
                                 const ClusteringOptions& options) {
  const size_t n = workload.size();
  assert(labels.size() == n);
  if (n == 0) {
    checksum_ = ComputeChecksum();
    return;
  }

  // 1. Record universe: both endpoint keys of every pair, sorted + deduped.
  //    The parallel fill writes disjoint index-addressed slots; the sort is
  //    the canonicalization that makes everything downstream independent of
  //    pair order and scheduling.
  const uint32_t* left = workload.left_id_data();
  const uint32_t* right = workload.right_id_data();
  const uint64_t left_src = static_cast<uint64_t>(options.left_source) << 32;
  const uint64_t right_src = static_cast<uint64_t>(options.right_source) << 32;
  std::vector<uint64_t> keys(2 * n);
  ThreadPool::Global()->ParallelFor(n, 8192, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      keys[2 * i] = left_src | left[i];
      keys[2 * i + 1] = right_src | right[i];
    }
  });
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  record_keys_ = std::move(keys);
  const size_t m = record_keys_.size();

  // 2. Endpoint record indices per pair (binary search over the universe).
  std::vector<uint32_t> left_idx(n), right_idx(n);
  ThreadPool::Global()->ParallelFor(n, 4096, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      left_idx[i] = static_cast<uint32_t>(
          std::lower_bound(record_keys_.begin(), record_keys_.end(),
                           left_src | left[i]) -
          record_keys_.begin());
      right_idx[i] = static_cast<uint32_t>(
          std::lower_bound(record_keys_.begin(), record_keys_.end(),
                           right_src | right[i]) -
          record_keys_.begin());
    }
  });

  // 3. Union the match edges. Serial O(n alpha): the canonical renumbering
  //    below erases any dependence on union order, so this needs no
  //    parallel union-find to stay bit-identical at any thread count.
  std::vector<uint32_t> parent(m);
  for (size_t r = 0; r < m; ++r) parent[r] = static_cast<uint32_t>(r);
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] != 1) continue;
    const uint32_t a = Find(&parent, left_idx[i]);
    const uint32_t b = Find(&parent, right_idx[i]);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }

  // 4. Canonical entity ids: first appearance in ascending record order.
  entity_of_.assign(m, 0);
  std::vector<uint32_t> entity_of_root(m, UINT32_MAX);
  uint32_t next = 0;
  for (size_t r = 0; r < m; ++r) {
    const uint32_t root = Find(&parent, static_cast<uint32_t>(r));
    if (entity_of_root[root] == UINT32_MAX) entity_of_root[root] = next++;
    entity_of_[r] = entity_of_root[root];
  }
  num_entities_ = next;

  // 5. CSR member lists: counting pass, prefix offsets, ascending scatter
  //    (records scanned in ascending key order land sorted within their
  //    entity automatically).
  std::vector<uint32_t> counts(num_entities_, 0);
  for (size_t r = 0; r < m; ++r) ++counts[entity_of_[r]];
  member_offsets_.assign(num_entities_ + 1, 0);
  for (size_t e = 0; e < num_entities_; ++e) {
    member_offsets_[e + 1] = member_offsets_[e] + counts[e];
    if (counts[e] >= 2) ++multi_record_entities_;
  }
  members_.resize(m);
  std::vector<uint32_t> cursor(member_offsets_.begin(),
                               member_offsets_.end() - 1);
  for (size_t r = 0; r < m; ++r) {
    members_[cursor[entity_of_[r]]++] = record_keys_[r];
  }

  checksum_ = ComputeChecksum();
}

std::optional<uint32_t> EntityClustering::EntityOf(RecordRef record) const {
  const size_t idx = RecordIndexOf(record);
  if (idx >= record_keys_.size()) return std::nullopt;
  return entity_of_[idx];
}

EntityClustering::MemberRange EntityClustering::MembersOf(
    uint32_t entity) const {
  if (entity >= num_entities_) return {};
  const size_t begin = member_offsets_[entity];
  const size_t end = member_offsets_[entity + 1];
  return {members_.data() + begin, end - begin};
}

size_t EntityClustering::RecordIndexOf(RecordRef record) const {
  const uint64_t key = PackRecord(record);
  const auto it =
      std::lower_bound(record_keys_.begin(), record_keys_.end(), key);
  if (it == record_keys_.end() || *it != key) return record_keys_.size();
  return static_cast<size_t>(it - record_keys_.begin());
}

uint64_t EntityClustering::ComputeChecksum() const {
  uint64_t h = 1469598103934665603ULL;
  const auto mix64 = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFFu;
      h *= 1099511628211ULL;
    }
  };
  mix64(record_keys_.size());
  mix64(num_entities_);
  for (size_t r = 0; r < record_keys_.size(); ++r) {
    mix64(record_keys_[r]);
    mix64(entity_of_[r]);
  }
  return h;
}

}  // namespace humo::entity
