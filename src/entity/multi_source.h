#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "entity/entity_clustering.h"

namespace humo::entity {

/// One record table the entity layer knows about. `num_records` is
/// advisory (views are driven by the records the workload actually
/// mentioned); `name` labels reports.
struct SourceInfo {
  std::string name;
  size_t num_records = 0;
};

/// EntityFrame-style multi-source view over a clustering: per-source record
/// tables plus entities keyed ACROSS sources — which sources an entity
/// spans, its members restricted to one source, and how many entities
/// bridge tables at all (the cross-source resolution yield). Immutable and
/// cheap: everything is precomputed once from the clustering's CSR
/// structure; per-entity queries are O(members) slices.
class MultiSourceEntities {
 public:
  MultiSourceEntities(EntityClustering clustering,
                      std::vector<SourceInfo> sources);

  const EntityClustering& clustering() const { return clustering_; }
  size_t num_sources() const { return sources_.size(); }
  const SourceInfo& source(uint32_t s) const { return sources_[s]; }

  /// Members of `entity` restricted to `source`, ascending id order.
  std::vector<RecordRef> MembersFromSource(uint32_t entity,
                                           uint32_t source) const;

  /// Distinct sources contributing at least one record to `entity`.
  size_t SourceSpan(uint32_t entity) const { return span_[entity]; }

  /// Entities drawing records from two or more sources — the clusters that
  /// actually resolve identities across tables.
  size_t entities_spanning_sources() const { return spanning_entities_; }

  /// span_histogram()[k] = entities spanning exactly k sources (k = 0 is
  /// unused; singletons land at k = 1).
  const std::vector<size_t>& span_histogram() const { return histogram_; }

  /// Records the workload mentioned from `source`.
  size_t RecordsFromSource(uint32_t source) const {
    return records_per_source_[source];
  }

 private:
  EntityClustering clustering_;
  std::vector<SourceInfo> sources_;
  std::vector<uint32_t> span_;  // per entity
  std::vector<size_t> histogram_;
  std::vector<size_t> records_per_source_;
  size_t spanning_entities_ = 0;
};

}  // namespace humo::entity
