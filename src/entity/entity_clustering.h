#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/solution.h"
#include "data/workload.h"

namespace humo::core {
class ResolutionSnapshot;
}  // namespace humo::core

namespace humo::entity {

/// One record across sources: `source` names the record table (0 = left
/// table, 1 = right table in a two-table workload; a dedup workload uses
/// one source for both sides), `id` indexes into that table. The pair
/// (source, id) is the identity the entity layer clusters — the same id in
/// two different sources is two different records.
struct RecordRef {
  uint32_t source = 0;
  uint32_t id = 0;
};

/// Packs a RecordRef into one u64 whose unsigned order equals the
/// (source, id) lexicographic order — the key every sorted structure of the
/// entity layer is built on.
inline uint64_t PackRecord(RecordRef r) {
  return (static_cast<uint64_t>(r.source) << 32) | r.id;
}
inline RecordRef UnpackRecord(uint64_t key) {
  return {static_cast<uint32_t>(key >> 32), static_cast<uint32_t>(key)};
}
inline bool operator==(RecordRef a, RecordRef b) {
  return a.source == b.source && a.id == b.id;
}
inline bool operator<(RecordRef a, RecordRef b) {
  return PackRecord(a) < PackRecord(b);
}

/// How a pairwise workload's left/right id columns map onto record sources.
/// The default treats the workload as two-table ER (DBLP-Scholar, Abt-Buy):
/// left ids come from source 0, right ids from source 1. A dedup workload
/// over one table sets both to the same source, which makes self-pairs
/// (left id == right id) genuinely self-referential.
struct ClusteringOptions {
  uint32_t left_source = 0;
  uint32_t right_source = 1;
};

/// A transitively-consistent partition of the records of a pairwise
/// workload into ENTITIES: the connected components of the match-labeled
/// pair graph. This is the layer that converts certified pair labels into
/// the record clusters downstream consumers (task packing, multi-source
/// serving, set-based evaluation) operate on.
///
/// The representation is CANONICAL — a pure function of the set
/// {(record pair, label)}, independent of pair order, construction path,
/// and thread count:
///   * records are the sorted distinct packed (source, id) keys;
///   * entity ids are assigned by first appearance in that sorted record
///     order, so entity 0 contains the globally smallest record;
///   * members of an entity are stored in ascending record-key order.
/// Two clusterings over the same workload are therefore equal (operator==,
/// equal Checksum()) iff they induce the same partition. Construction is
/// parallel over the ThreadPool for the column scans; the union-find itself
/// is a serial O(n alpha(n)) pass whose result the canonical renumbering
/// makes schedule-independent.
///
/// Immutable after construction: every accessor is const and touches only
/// frozen storage, so a clustering shared through a shared_ptr (see
/// core::ResolutionSnapshot) is safe to read from any number of threads.
class EntityClustering {
 public:
  /// Contiguous view over one entity's members (packed keys ascending).
  struct MemberRange {
    const uint64_t* data = nullptr;
    size_t count = 0;
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    RecordRef operator[](size_t i) const { return UnpackRecord(data[i]); }
    /// True when `record` is a member (binary search, O(log size)).
    bool Contains(RecordRef record) const;
  };

  EntityClustering() = default;

  /// Clusters the workload's records by the given pair labels (1 = match):
  /// entities are the connected components of the match edges. `labels`
  /// must be parallel to the workload's sorted order — a provisional
  /// labeling, a certified resolution, or the ground truth all fit.
  static EntityClustering FromLabels(const data::Workload& workload,
                                     const std::vector<int>& labels,
                                     const ClusteringOptions& options = {});

  /// Clusters by a certified resolution result (the labels ApplySolution or
  /// RiskAwareOptimizer::Resolve produced over this workload).
  static EntityClustering FromSolution(const data::Workload& workload,
                                       const core::ResolutionResult& result,
                                       const ClusteringOptions& options = {});

  /// Clusters a published resolution-service snapshot's labels over the
  /// snapshot's own workload copy. (The service already builds and serves
  /// this view at publish time — see ResolutionSnapshot::entities(); this
  /// entry point is for re-deriving it independently.)
  static EntityClustering FromSnapshot(const core::ResolutionSnapshot& snapshot,
                                       const ClusteringOptions& options = {});

  /// Distinct records seen by the workload (both sides).
  size_t num_records() const { return record_keys_.size(); }
  /// Entities (clusters), singletons included.
  size_t num_entities() const { return num_entities_; }
  /// Entities with at least two members.
  size_t num_multi_record_entities() const { return multi_record_entities_; }

  /// Entity of `record`, or nullopt when the record is not part of the
  /// workload. O(log n) binary search; wait-free (no locks, frozen data).
  std::optional<uint32_t> EntityOf(RecordRef record) const;

  /// Members of entity `entity` in ascending record order. The view points
  /// into this clustering's storage — valid as long as the clustering (or
  /// the snapshot holding it) is alive.
  MemberRange MembersOf(uint32_t entity) const;

  size_t EntitySize(uint32_t entity) const {
    return MembersOf(entity).count;
  }

  /// Sorted distinct packed record keys (the record universe).
  const std::vector<uint64_t>& record_keys() const { return record_keys_; }
  /// Entity id per record, parallel to record_keys().
  const std::vector<uint32_t>& entity_of_record() const { return entity_of_; }

  /// FNV-1a over the record keys and their entity assignment — equal for
  /// equal partitions over equal record universes, computed once at build.
  uint64_t Checksum() const { return checksum_; }

  /// Structural equality: same record universe, same partition.
  friend bool operator==(const EntityClustering& a, const EntityClustering& b) {
    return a.record_keys_ == b.record_keys_ && a.entity_of_ == b.entity_of_;
  }
  friend bool operator!=(const EntityClustering& a, const EntityClustering& b) {
    return !(a == b);
  }

  /// Index of `record` in record_keys(), or num_records() when absent.
  size_t RecordIndexOf(RecordRef record) const;

 private:
  void BuildFrom(const data::Workload& workload, const std::vector<int>& labels,
                 const ClusteringOptions& options);
  uint64_t ComputeChecksum() const;

  std::vector<uint64_t> record_keys_;   // sorted ascending
  std::vector<uint32_t> entity_of_;     // parallel to record_keys_
  std::vector<uint32_t> member_offsets_;  // CSR offsets into members_
  std::vector<uint64_t> members_;         // packed keys grouped by entity
  size_t num_entities_ = 0;
  size_t multi_record_entities_ = 0;
  uint64_t checksum_ = 0;
};

}  // namespace humo::entity
