#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/workload.h"
#include "entity/entity_clustering.h"

namespace humo::entity {

struct RepairOptions {
  /// Local-search sweeps per conflict component before giving up on further
  /// improvement (each sweep visits every component record once).
  size_t max_sweeps = 8;
  /// Seed of the per-component Rng::Stream that randomizes the sweep visit
  /// order. Any fixed seed gives a deterministic, thread-count-invariant
  /// repair; varying it explores different local optima.
  uint64_t seed = 0x5EEDC0DEULL;
};

struct RepairStats {
  /// Observed labels disagreeing with the pre-repair clustering (negative
  /// intra-cluster edges, incl. negative self-pairs).
  size_t disagreements_before = 0;
  /// Observed labels disagreeing with the repaired clustering. Never above
  /// disagreements_before: local search only applies strictly improving
  /// moves from the pre-repair state.
  size_t disagreements_after = 0;
  /// Connected components containing at least one repairable conflict.
  size_t conflict_components = 0;
  /// Record moves the local search applied across all components.
  size_t moves_applied = 0;
  /// Sweeps run, summed over components.
  size_t sweeps_run = 0;
  /// Negative self-pairs (a != a): permanently inconsistent — no clustering
  /// can satisfy them, so they stay counted in disagreements_after.
  size_t self_conflicts = 0;
};

struct RepairResult {
  /// Transitively consistent labels parallel to the workload: labels[i] = 1
  /// iff both endpoints of pair i share a repaired entity. Feeding these
  /// back through RepairTransitivity is a no-op (idempotence).
  std::vector<int> labels;
  /// Clustering of the repaired labels.
  EntityClustering clustering;
  RepairStats stats;
};

/// Repairs a pairwise labeling to transitive consistency by
/// correlation-clustering local search, resolving a=b and b=c and a!=c
/// conflicts with minimum-disagreement edits.
///
/// The match-edge connected components are the starting clusters. Every
/// component containing a negative intra edge runs an independent local
/// search: records move between sub-clusters (or split off as singletons)
/// whenever the move strictly reduces the number of observed edges whose
/// label disagrees with the sub-clustering, visiting records in a
/// per-component Rng::Stream order with deterministic tie-breaking (keep
/// the current cluster on ties, else the smallest improving cluster id).
/// Components are processed in parallel over the ThreadPool; each
/// component's result is a pure function of its edges and its stream, so
/// the repair is bit-identical at any thread count and invariant under
/// input pair permutation.
RepairResult RepairTransitivity(const data::Workload& workload,
                                const std::vector<int>& labels,
                                const ClusteringOptions& cluster_options = {},
                                const RepairOptions& repair_options = {});

/// Observed labels that disagree with `clustering`: pairs labeled match
/// whose endpoints sit in different entities, plus pairs labeled non-match
/// whose endpoints share one (negative self-pairs always disagree). The
/// objective RepairTransitivity minimizes.
size_t CountDisagreements(const data::Workload& workload,
                          const std::vector<int>& labels,
                          const EntityClustering& clustering,
                          const ClusteringOptions& options = {});

}  // namespace humo::entity
