#include "entity/transitivity_repair.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>
#include <utility>

#include "common/random.h"
#include "common/thread_pool.h"

namespace humo::entity {
namespace {

/// One observed edge inside a conflict component, in component-local record
/// indices (positions within the component's member list).
struct LocalEdge {
  uint32_t a = 0;
  uint32_t b = 0;
  uint8_t match = 0;
};

struct ComponentOutcome {
  /// Sub-cluster id per local record (dense, but not canonical — the final
  /// FromLabels pass canonicalizes globally).
  std::vector<uint32_t> assignment;
  size_t moves = 0;
  size_t sweeps = 0;
};

/// Correlation-clustering local search over one conflict component. Starts
/// from the single-cluster state (the component itself, i.e. the pre-repair
/// clustering restricted to it) and only ever applies strictly improving
/// single-record moves, so the component's disagreement count is
/// non-increasing by construction. Deterministic: the visit order comes
/// from the caller-provided stream, candidate clusters are scanned in
/// ascending id order, and ties keep the current assignment.
ComponentOutcome SolveComponent(size_t num_nodes,
                                const std::vector<LocalEdge>& edges, Rng rng,
                                size_t max_sweeps) {
  ComponentOutcome out;
  out.assignment.assign(num_nodes, 0);
  if (num_nodes == 0) return out;

  // Adjacency (duplicate edges kept: each one contributes to the objective).
  std::vector<std::vector<std::pair<uint32_t, uint8_t>>> adj(num_nodes);
  for (const LocalEdge& e : edges) {
    adj[e.a].emplace_back(e.b, e.match);
    adj[e.b].emplace_back(e.a, e.match);
  }

  uint32_t next_cluster = 1;
  std::vector<uint32_t> order(num_nodes);
  std::iota(order.begin(), order.end(), 0);

  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    ++out.sweeps;
    rng.Shuffle(&order);
    bool improved = false;
    for (const uint32_t r : order) {
      if (adj[r].empty()) continue;
      // Per-neighbor-cluster match / non-match edge counts. An ordered map
      // keeps candidate iteration deterministic; components are small, so
      // the log factor is irrelevant.
      std::map<uint32_t, std::pair<uint32_t, uint32_t>> by_cluster;
      uint32_t total_match = 0;
      for (const auto& [nbr, match] : adj[r]) {
        auto& [pos, neg] = by_cluster[out.assignment[nbr]];
        if (match) {
          ++pos;
          ++total_match;
        } else {
          ++neg;
        }
      }
      // Cost of r sitting in cluster c: match edges leaving c plus
      // non-match edges inside c.
      const auto cost_in = [&](uint32_t c) -> uint32_t {
        const auto it = by_cluster.find(c);
        const uint32_t pos = it == by_cluster.end() ? 0 : it->second.first;
        const uint32_t neg = it == by_cluster.end() ? 0 : it->second.second;
        return (total_match - pos) + neg;
      };
      const uint32_t current = out.assignment[r];
      const uint32_t current_cost = cost_in(current);
      uint32_t best = current;
      uint32_t best_cost = current_cost;
      for (const auto& [cid, counts] : by_cluster) {
        (void)counts;
        const uint32_t cost = cost_in(cid);
        if (cost < best_cost) {
          best = cid;
          best_cost = cost;
        }
      }
      // Splitting off as a fresh singleton costs every match edge.
      if (total_match < best_cost) {
        best = next_cluster;
        best_cost = total_match;
      }
      if (best != current && best_cost < current_cost) {
        if (best == next_cluster) ++next_cluster;
        out.assignment[r] = best;
        ++out.moves;
        improved = true;
      }
    }
    if (!improved) break;
  }
  return out;
}

}  // namespace

size_t CountDisagreements(const data::Workload& workload,
                          const std::vector<int>& labels,
                          const EntityClustering& clustering,
                          const ClusteringOptions& options) {
  const size_t n = workload.size();
  assert(labels.size() == n);
  const uint32_t* left = workload.left_id_data();
  const uint32_t* right = workload.right_id_data();
  size_t disagreements = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto ea = clustering.EntityOf({options.left_source, left[i]});
    const auto eb = clustering.EntityOf({options.right_source, right[i]});
    if (!ea.has_value() || !eb.has_value()) continue;
    const bool same = *ea == *eb;
    if ((labels[i] == 1) != same) ++disagreements;
  }
  return disagreements;
}

RepairResult RepairTransitivity(const data::Workload& workload,
                                const std::vector<int>& labels,
                                const ClusteringOptions& cluster_options,
                                const RepairOptions& repair_options) {
  const size_t n = workload.size();
  assert(labels.size() == n);
  RepairResult out;
  out.labels = labels;

  const EntityClustering initial =
      EntityClustering::FromLabels(workload, labels, cluster_options);
  const size_t num_entities = initial.num_entities();
  const uint32_t* left = workload.left_id_data();
  const uint32_t* right = workload.right_id_data();
  const uint64_t left_src = static_cast<uint64_t>(cluster_options.left_source)
                            << 32;
  const uint64_t right_src = static_cast<uint64_t>(cluster_options.right_source)
                             << 32;

  // Endpoint record indices into the clustering's record universe.
  std::vector<uint32_t> left_idx(n), right_idx(n);
  const std::vector<uint64_t>& keys = initial.record_keys();
  ThreadPool::Global()->ParallelFor(n, 4096, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      left_idx[i] = static_cast<uint32_t>(
          std::lower_bound(keys.begin(), keys.end(), left_src | left[i]) -
          keys.begin());
      right_idx[i] = static_cast<uint32_t>(
          std::lower_bound(keys.begin(), keys.end(), right_src | right[i]) -
          keys.begin());
    }
  });
  const std::vector<uint32_t>& entity_of = initial.entity_of_record();

  // Pass 1: count pre-repair disagreements and mark conflict entities.
  // Match edges never cross components by construction, so the only
  // disagreements here are negative intra edges (self-pairs included).
  std::vector<uint8_t> conflict(num_entities, 0);
  for (size_t i = 0; i < n; ++i) {
    if (left_idx[i] == right_idx[i]) {
      if (out.labels[i] != 1) {
        ++out.stats.disagreements_before;
        ++out.stats.self_conflicts;
      }
      continue;
    }
    const uint32_t ea = entity_of[left_idx[i]];
    const uint32_t eb = entity_of[right_idx[i]];
    if (ea == eb && out.labels[i] != 1) {
      ++out.stats.disagreements_before;
      conflict[ea] = 1;
    }
  }

  // Conflict components, ascending entity id — the canonical order both the
  // per-component streams and the serial fold below key off.
  std::vector<uint32_t> component_entity;
  std::vector<uint32_t> component_of_entity(num_entities, UINT32_MAX);
  for (uint32_t e = 0; e < num_entities; ++e) {
    if (conflict[e]) {
      component_of_entity[e] = static_cast<uint32_t>(component_entity.size());
      component_entity.push_back(e);
    }
  }
  out.stats.conflict_components = component_entity.size();

  if (!component_entity.empty()) {
    // Component-local record numbering: position within the entity's
    // ascending member order, derivable from one ascending record scan.
    std::vector<uint32_t> local_of(initial.num_records(), 0);
    std::vector<uint32_t> entity_fill(num_entities, 0);
    for (size_t r = 0; r < initial.num_records(); ++r) {
      local_of[r] = entity_fill[entity_of[r]]++;
    }

    // Distribute the intra edges of conflict entities onto their components.
    std::vector<std::vector<LocalEdge>> component_edges(
        component_entity.size());
    for (size_t i = 0; i < n; ++i) {
      if (left_idx[i] == right_idx[i]) continue;
      const uint32_t ea = entity_of[left_idx[i]];
      if (ea != entity_of[right_idx[i]]) continue;
      const uint32_t c = component_of_entity[ea];
      if (c == UINT32_MAX) continue;
      component_edges[c].push_back({local_of[left_idx[i]],
                                    local_of[right_idx[i]],
                                    static_cast<uint8_t>(out.labels[i] == 1)});
    }

    // Independent local searches, fanned out over the pool. Each outcome is
    // a pure function of (component edges, Rng::Stream(seed, c)), and lands
    // in its own index-addressed slot — bit-identical at any thread count.
    std::vector<ComponentOutcome> outcomes(component_entity.size());
    ThreadPool::Global()->ParallelFor(
        component_entity.size(), 1, [&](size_t b, size_t e) {
          for (size_t c = b; c < e; ++c) {
            outcomes[c] = SolveComponent(
                initial.EntitySize(component_entity[c]), component_edges[c],
                Rng::Stream(repair_options.seed, c), repair_options.max_sweeps);
          }
        });
    for (const ComponentOutcome& o : outcomes) {
      out.stats.moves_applied += o.moves;
      out.stats.sweeps_run += o.sweeps;
    }

    // Rewrite labels of pairs inside conflict components: match iff the two
    // records share a sub-cluster now. Everything else keeps its component
    // relation (same component = match), which the pre-repair labels already
    // agree with except for the counted self-pairs.
    for (size_t i = 0; i < n; ++i) {
      if (left_idx[i] == right_idx[i]) {
        out.labels[i] = 1;  // a record always matches itself
        continue;
      }
      const uint32_t ea = entity_of[left_idx[i]];
      const uint32_t eb = entity_of[right_idx[i]];
      if (ea != eb) {
        out.labels[i] = 0;
        continue;
      }
      const uint32_t c = component_of_entity[ea];
      if (c == UINT32_MAX) {
        out.labels[i] = 1;
        continue;
      }
      const std::vector<uint32_t>& assign = outcomes[c].assignment;
      out.labels[i] =
          assign[local_of[left_idx[i]]] == assign[local_of[right_idx[i]]] ? 1
                                                                          : 0;
    }
  } else {
    // No repairable conflicts; still normalize self-pairs to match.
    for (size_t i = 0; i < n; ++i) {
      if (left_idx[i] == right_idx[i]) out.labels[i] = 1;
    }
  }

  out.clustering =
      EntityClustering::FromLabels(workload, out.labels, cluster_options);
  out.stats.disagreements_after =
      CountDisagreements(workload, labels, out.clustering, cluster_options);
  return out;
}

}  // namespace humo::entity
