#include "eval/entity_metrics.h"

#include <algorithm>
#include <utility>

namespace humo::eval {
namespace {

/// Contingency table of two clusterings over their common record universe:
/// per-cluster common-record counts on each side plus the nonzero joint
/// cells (a's entity, b's entity, records shared). Both record_keys arrays
/// are sorted, so the intersection is one linear merge.
struct Contingency {
  size_t common_records = 0;
  std::vector<uint32_t> count_a;  // per a-entity, over common records
  std::vector<uint32_t> count_b;
  struct Cell {
    uint32_t a = 0;
    uint32_t b = 0;
    uint32_t n = 0;
  };
  std::vector<Cell> cells;
  size_t nonempty_a = 0;  // a-entities with at least one common record
  size_t nonempty_b = 0;
};

Contingency BuildContingency(const entity::EntityClustering& a,
                             const entity::EntityClustering& b) {
  Contingency out;
  out.count_a.assign(a.num_entities(), 0);
  out.count_b.assign(b.num_entities(), 0);

  const std::vector<uint64_t>& ka = a.record_keys();
  const std::vector<uint64_t>& kb = b.record_keys();
  const std::vector<uint32_t>& ea = a.entity_of_record();
  const std::vector<uint32_t>& eb = b.entity_of_record();

  std::vector<uint64_t> joint;  // packed (a-entity << 32 | b-entity)
  size_t i = 0, j = 0;
  while (i < ka.size() && j < kb.size()) {
    if (ka[i] < kb[j]) {
      ++i;
    } else if (kb[j] < ka[i]) {
      ++j;
    } else {
      ++out.count_a[ea[i]];
      ++out.count_b[eb[j]];
      joint.push_back((static_cast<uint64_t>(ea[i]) << 32) | eb[j]);
      ++i;
      ++j;
    }
  }
  out.common_records = joint.size();

  std::sort(joint.begin(), joint.end());
  for (size_t k = 0; k < joint.size();) {
    size_t end = k;
    while (end < joint.size() && joint[end] == joint[k]) ++end;
    out.cells.push_back({static_cast<uint32_t>(joint[k] >> 32),
                         static_cast<uint32_t>(joint[k]),
                         static_cast<uint32_t>(end - k)});
    k = end;
  }
  for (const uint32_t c : out.count_a) {
    if (c > 0) ++out.nonempty_a;
  }
  for (const uint32_t c : out.count_b) {
    if (c > 0) ++out.nonempty_b;
  }
  return out;
}

double PairsOf(uint64_t n) {
  if (n < 2) return 0.0;
  return 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
}

double Ratio(double num, double den) { return den > 0.0 ? num / den : 1.0; }

double Harmonic(double p, double r) {
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

}  // namespace

EntityQuality EntityQualityOf(const entity::EntityClustering& truth,
                              const entity::EntityClustering& predicted) {
  const Contingency table = BuildContingency(truth, predicted);
  EntityQuality q;
  q.truth_entities = truth.num_entities();
  q.predicted_entities = predicted.num_entities();
  q.common_records = table.common_records;

  double tp = 0.0, exact = 0.0;
  for (const Contingency::Cell& cell : table.cells) {
    tp += PairsOf(cell.n);
    if (cell.n == table.count_a[cell.a] && cell.n == table.count_b[cell.b]) {
      exact += 1.0;
    }
  }
  double truth_pairs = 0.0, predicted_pairs = 0.0;
  for (const uint32_t c : table.count_a) truth_pairs += PairsOf(c);
  for (const uint32_t c : table.count_b) predicted_pairs += PairsOf(c);

  q.precision = Ratio(tp, predicted_pairs);
  q.recall = Ratio(tp, truth_pairs);
  q.f1 = Harmonic(q.precision, q.recall);
  q.cluster_precision = Ratio(exact, static_cast<double>(table.nonempty_b));
  q.cluster_recall = Ratio(exact, static_cast<double>(table.nonempty_a));
  q.cluster_f1 = Harmonic(q.cluster_precision, q.cluster_recall);
  return q;
}

double MeanBestJaccard(const entity::EntityClustering& from,
                       const entity::EntityClustering& to) {
  const Contingency table = BuildContingency(from, to);
  if (table.common_records == 0) return 1.0;
  std::vector<double> best(from.num_entities(), 0.0);
  for (const Contingency::Cell& cell : table.cells) {
    const double overlap = static_cast<double>(cell.n);
    const double uni = static_cast<double>(table.count_a[cell.a]) +
                       static_cast<double>(table.count_b[cell.b]) - overlap;
    best[cell.a] = std::max(best[cell.a], overlap / uni);
  }
  double weighted = 0.0;
  for (uint32_t e = 0; e < from.num_entities(); ++e) {
    weighted += best[e] * static_cast<double>(table.count_a[e]);
  }
  return weighted / static_cast<double>(table.common_records);
}

double JaccardAgreement(const entity::EntityClustering& a,
                        const entity::EntityClustering& b) {
  return 0.5 * (MeanBestJaccard(a, b) + MeanBestJaccard(b, a));
}

entity::EntityClustering TruthClustering(
    const data::Workload& workload, const entity::ClusteringOptions& options) {
  return entity::EntityClustering::FromLabels(
      workload, workload.GroundTruthLabels(), options);
}

}  // namespace humo::eval
