#include "eval/experiment.h"

#include "eval/evaluation.h"

namespace humo::eval {

TrialResult RunTrial(const core::SubsetPartition& partition,
                     const core::QualityRequirement& req,
                     const OptimizerFn& optimizer, core::Oracle* oracle) {
  TrialResult tr;
  auto sol = optimizer(partition, req, oracle);
  if (!sol.ok()) {
    tr.failed_to_run = true;
    return tr;
  }
  const auto result = core::ApplySolution(partition, *sol, oracle);
  const Quality q = QualityOf(partition.workload(), result.labels);
  tr.precision = q.precision;
  tr.recall = q.recall;
  tr.f1 = q.f1;
  tr.human_cost = result.human_cost;
  tr.human_cost_fraction = result.human_cost_fraction;
  tr.success = q.precision >= req.alpha && q.recall >= req.beta;
  return tr;
}

ExperimentSummary RunExperiment(
    const core::SubsetPartition& partition, const core::QualityRequirement& req,
    const std::function<OptimizerFn(uint64_t seed)>& optimizer_factory,
    size_t trials, uint64_t base_seed) {
  ExperimentSummary s;
  s.trials = trials;
  size_t ok_trials = 0;
  for (size_t t = 0; t < trials; ++t) {
    core::Oracle oracle(&partition.workload());
    const TrialResult tr =
        RunTrial(partition, req, optimizer_factory(base_seed + t), &oracle);
    if (tr.failed_to_run) {
      ++s.failed_trials;
      continue;
    }
    ++ok_trials;
    s.mean_precision += tr.precision;
    s.mean_recall += tr.recall;
    s.mean_f1 += tr.f1;
    s.mean_cost_fraction += tr.human_cost_fraction;
    s.success_rate += tr.success ? 1.0 : 0.0;
  }
  if (ok_trials > 0) {
    const double n = static_cast<double>(ok_trials);
    s.mean_precision /= n;
    s.mean_recall /= n;
    s.mean_f1 /= n;
    s.mean_cost_fraction /= n;
    s.success_rate /= n;
  }
  return s;
}

}  // namespace humo::eval
