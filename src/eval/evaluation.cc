#include "eval/evaluation.h"

namespace humo::eval {

ml::ClassificationMetrics EvaluateAgainstTruth(
    const data::Workload& workload, const std::vector<int>& labels) {
  return ml::EvaluateLabels(labels, workload.GroundTruthLabels());
}

Quality QualityOf(const data::Workload& workload,
                  const std::vector<int>& labels) {
  const auto m = EvaluateAgainstTruth(workload, labels);
  return {m.precision(), m.recall(), m.f1()};
}

}  // namespace humo::eval
