#pragma once

#include <cstddef>

namespace humo::eval {

/// Seed-pinned SAMP golden results on the calibrated reference workloads —
/// the SINGLE source of truth shared by the golden regression suite
/// (tests/integration/golden_regression_test.cc, which pins the full
/// optimizer matrix and documents the HUMO_PRINT_GOLDEN regeneration flow)
/// and by bench_scale's in-process bit-identity self-check. Setup: seeded
/// DS 20k (DsConfigSmall(555, 20000)) / AB 60k (AbConfigSmall(1234,
/// 60000)), subset size 200, alpha = beta = theta = 0.9, optimizer seed
/// 1000, precision/recall from eval::QualityOf over the applied solution.
/// When an intentional behavior change regenerates the test's golden
/// table, update these rows in the same commit — the test cross-checks its
/// SAMP rows against them, so a stale copy fails locally, not just in CI.
struct GoldenSampReference {
  const char* workload;
  double precision;
  double recall;
  size_t human_cost;
};

inline constexpr GoldenSampReference kGoldenSampDs{
    "DS", 0.99810246679316883, 1.0, 20000};
inline constexpr GoldenSampReference kGoldenSampAb{"AB", 1.0, 1.0, 58200};

}  // namespace humo::eval
