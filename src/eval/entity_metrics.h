#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/workload.h"
#include "entity/entity_clustering.h"

namespace humo::eval {

/// ENTITY-level quality of a predicted clustering against a truth
/// clustering — the set-based counterpart of the pairwise QualityOf. Both
/// metric families are computed over the COMMON record universe (records
/// present in both clusterings; identical universes in the usual case of
/// two clusterings over the same workload):
///
///  * precision / recall / f1: pairwise-over-clusters. Of all record pairs
///    the prediction co-clusters, the fraction truth co-clusters
///    (precision), and vice versa (recall), via the standard contingency
///    sum of C(n_ij, 2). Vacuous denominators score 1.
///  * cluster_precision / cluster_recall / cluster_f1: exact-set match.
///    The fraction of predicted clusters whose member set equals some
///    truth cluster exactly, and vice versa — the strictest entity metric.
struct EntityQuality {
  size_t truth_entities = 0;
  size_t predicted_entities = 0;
  size_t common_records = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double cluster_precision = 0.0;
  double cluster_recall = 0.0;
  double cluster_f1 = 0.0;
};

EntityQuality EntityQualityOf(const entity::EntityClustering& truth,
                              const entity::EntityClustering& predicted);

/// Record-weighted mean over `from`'s clusters of the best Jaccard overlap
/// with any `to` cluster (computed over the common record universe).
/// Directional: 1.0 iff every `from` cluster is exactly some `to` cluster.
double MeanBestJaccard(const entity::EntityClustering& from,
                       const entity::EntityClustering& to);

/// Symmetric set-based agreement: the mean of the two directional
/// MeanBestJaccard scores. 1.0 iff the partitions are identical over the
/// common records.
double JaccardAgreement(const entity::EntityClustering& a,
                        const entity::EntityClustering& b);

/// The ground-truth entity clustering of a workload: connected components
/// of its hidden truth labels (evaluation-side only, same contract as
/// GroundTruthLabels).
entity::EntityClustering TruthClustering(
    const data::Workload& workload,
    const entity::ClusteringOptions& options = {});

}  // namespace humo::eval
