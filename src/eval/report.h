#pragma once

#include <string>
#include <vector>

namespace humo::eval {

/// Minimal fixed-width ASCII table writer for the benchmark harness: every
/// bench binary prints the same rows the paper's tables/figures report.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with a header rule and column padding.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
std::string Fmt(double v, int digits = 4);

/// Formats a percentage (0.0731 -> "7.31%").
std::string FmtPercent(double fraction, int digits = 2);

}  // namespace humo::eval
