#pragma once

#include <vector>

#include "data/workload.h"
#include "ml/metrics.h"

namespace humo::eval {

/// Quality of a labeling against the workload's hidden ground truth
/// (evaluation-side only; optimizers never see this).
ml::ClassificationMetrics EvaluateAgainstTruth(
    const data::Workload& workload, const std::vector<int>& labels);

/// Convenience: precision/recall/F1 triple.
struct Quality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
Quality QualityOf(const data::Workload& workload,
                  const std::vector<int>& labels);

}  // namespace humo::eval
