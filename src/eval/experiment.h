#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/oracle.h"
#include "core/partition.h"
#include "core/solution.h"
#include "data/workload.h"

namespace humo::eval {

/// One trial's outcome: achieved quality, human cost and success flag.
struct TrialResult {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double human_cost_fraction = 0.0;
  size_t human_cost = 0;
  bool success = false;  // precision >= alpha && recall >= beta
  bool failed_to_run = false;
};

/// Aggregate over trials (the paper averages 100 runs and reports success
/// rates alongside mean quality).
struct ExperimentSummary {
  double mean_precision = 0.0;
  double mean_recall = 0.0;
  double mean_f1 = 0.0;
  double mean_cost_fraction = 0.0;
  double success_rate = 0.0;  // fraction of trials meeting both targets
  size_t trials = 0;
  size_t failed_trials = 0;
};

/// An optimizer under test: given a partition, requirement and oracle,
/// produce a solution. Wraps any of BASE / SAMP / ALL / HYBR with the
/// trial's seed applied.
using OptimizerFn = std::function<humo::Result<core::HumoSolution>(
    const core::SubsetPartition&, const core::QualityRequirement&,
    core::Oracle*)>;

/// Runs one trial end-to-end: optimize, apply the solution (human labels
/// DH), evaluate against ground truth.
TrialResult RunTrial(const core::SubsetPartition& partition,
                     const core::QualityRequirement& req,
                     const OptimizerFn& optimizer, core::Oracle* oracle);

/// Runs `trials` independent trials; trial t receives seed `base_seed + t`
/// through the factory so sampling randomness differs per run.
ExperimentSummary RunExperiment(
    const core::SubsetPartition& partition, const core::QualityRequirement& req,
    const std::function<OptimizerFn(uint64_t seed)>& optimizer_factory,
    size_t trials, uint64_t base_seed = 1000);

}  // namespace humo::eval
