#include "eval/report.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace humo::eval {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };

  std::string out = render_row(headers_);
  out += "|";
  for (size_t c = 0; c < headers_.size(); ++c)
    out += std::string(widths[c] + 2, '-') + "|";
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Fmt(double v, int digits) {
  return StrFormat("%.*f", digits, v);
}

std::string FmtPercent(double fraction, int digits) {
  return StrFormat("%.*f%%", digits, fraction * 100.0);
}

}  // namespace humo::eval
