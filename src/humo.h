#pragma once

/// \file humo.h
/// Umbrella header for the HUMO library — a human and machine cooperation
/// framework for entity resolution with quality guarantees (reproduction of
/// Chen et al., ICDE 2018).
///
/// Typical usage:
///
///   #include "humo.h"
///   using namespace humo;
///
///   data::Workload w = data::SimulatePairs(data::DsConfig());
///   core::SubsetPartition partition(&w, /*subset_size=*/200);
///   core::Oracle oracle(&w);
///   core::QualityRequirement req{/*alpha=*/0.9, /*beta=*/0.9,
///                                /*theta=*/0.9};
///   core::HybridOptimizer optimizer;
///   auto solution = optimizer.Optimize(partition, req, &oracle);
///   auto result = core::ApplySolution(partition, *solution, &oracle);
///   // result.labels now meets precision >= 0.9 and recall >= 0.9 with
///   // confidence 0.9; result.human_cost pairs were inspected manually.
///
/// To run several optimizers over the same workload without paying for the
/// same human labels twice, share one estimation context between them:
///
///   core::EstimationContext ctx(&partition, &oracle);
///   core::PartialSamplingOptimizer samp;
///   auto s0 = samp.Optimize(&ctx, req);
///   core::HybridOptimizer hybr;
///   auto s1 = hybr.Optimize(&ctx, req);  // reuses SAMP's labels, strata,
///                                        // and GP model: zero duplicate
///                                        // oracle inspections
///   // ctx.stats() reports cache hits and the oracle traffic saved.
///
/// To spend strictly less human effort than full DH verification, the
/// risk-aware optimizer (core/risk_aware_optimizer.h) inspects DH pairs in
/// decreasing misclassification-risk order and stops as soon as the
/// quality requirement certifies, machine-labeling the low-risk remainder:
///
///   core::RiskAwareOptimizer risk;
///   auto outcome = risk.Resolve(&ctx, req);   // final labels included —
///                                             // do NOT ApplySolution after
///   // outcome->resolution.labels, outcome->inspection.pairs_machine_labeled
///
/// When the workload ARRIVES over time instead of sitting in one file, the
/// streaming resolver (core/streaming_resolver.h) ingests it in epochs —
/// merge, partition upkeep, and provisional GP serving state are all
/// incremental and oracle-free — and certifies lazily on demand, reusing
/// every answer earlier epochs paid for:
///
///   data::WorkloadStream stream(&w, {/*num_shards=*/8});
///   core::StreamingResolver streaming({}, req);
///   data::Shard shard;
///   while (stream.Next(&shard)) streaming.Ingest(std::move(shard));
///   auto cert = streaming.Certify();  // == the one-shot result, bit for bit
///
/// To SERVE lookups while that stream is still arriving, wrap the resolver
/// in the resolution service (core/resolution_service.h): every mutation
/// publishes an immutable snapshot readers access wait-free through an
/// atomic shared_ptr, certification runs on a background thread whose
/// fresh inspections an asynchronous crowd queue answers out of band, and
/// draining to quiescence reproduces the synchronous resolver bit for bit:
///
///   core::ResolutionService service({/*streaming=*/{}}, req);
///   while (stream.Next(&shard)) service.Ingest(std::move(shard));
///   service.RequestCertification();        // returns immediately
///   auto label = service.LabelOfPair(p);   // wait-free, any thread
///   auto cert = service.DrainToQuiescence();  // == streaming.Certify()
///
/// Pair labels are only half the story: downstream consumers want ENTITIES.
/// The entity layer (entity/) folds any pair labeling into a deterministic
/// clustering over the underlying records, repairs transitivity conflicts
/// with a minimum-disagreement local search, and scores cluster quality
/// (eval/entity_metrics.h). Snapshots published by the resolution service
/// carry the same view wait-free:
///
///   auto clusters = entity::EntityClustering::FromLabels(w, labels);
///   auto repaired = entity::RepairTransitivity(w, labels);
///   auto quality = eval::EntityQualityOf(eval::TruthClustering(w),
///                                        repaired.clustering);
///   auto who = service.snapshot()->EntityOf({/*source=*/0, /*id=*/42});
///
/// When the "oracle" is a CROWD rather than a single expert, the crowd task
/// layer (core/crowd_tasks.h, core/crowd_oracle.h) packs pair inspections
/// into cluster-based HITs, infers extra labels through transitivity, and
/// aggregates redundant noisy votes with Dawid–Skene (stats/dawid_skene.h)
/// before they reach the resolver:
///
///   core::CrowdOracle crowd(&w, {/*workers_per_pair=*/5,
///                                 /*worker_error_rate=*/0.2});
///   core::CrowdTaskBroker broker(&w, &crowd);  // HIT packing + inference
///   oracle.SetAnswerProvider(broker.Provider());
///   // broker.stats(): tasks issued, votes bought, answers inferred free
///
/// To spread one resolution across CPU cores or worker PROCESSES, the shard
/// coordinator (core/shard_coordinator.h) partitions the sorted workload
/// into K contiguous computation shards (subset boundaries never straddle a
/// shard), splits the oracle budget proportionally via
/// stats::AllocateSamples, fans each oracle batch out to per-shard workers
/// (in-process on the thread pool, or forked processes talking frames over
/// common/ipc_channel.h), and merges the per-shard evidence and Beta
/// posteriors in deterministic shard order. The merged solution, labeling,
/// and oracle cost are bit-identical to the one-shot resolver at ANY K:
///
///   core::ShardedOptions sharding;           // num_shards=4, in-process
///   sharding.transport = core::ShardTransport::kFork;  // worker processes
///   core::ShardCoordinator coordinator(sharding, req);
///   auto cert = coordinator.Resolve(w);      // == streaming.Certify()
///   // cert->shards[k].answered, cert->merged_strata, cert->posterior_alpha
///
/// Machine-side heavy paths (GP kernel matrices, Cholesky factorization,
/// workload simulation) run on a thread pool sized by the HUMO_NUM_THREADS
/// environment variable (default: hardware concurrency); results are
/// bit-identical at any thread count.

#include "actl/active_learning.h"
#include "common/csv.h"
#include "common/env.h"
#include "common/ipc_channel.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/all_sampling_optimizer.h"
#include "core/baseline_optimizer.h"
#include "core/budgeted_resolver.h"
#include "core/crowd_oracle.h"
#include "core/crowd_tasks.h"
#include "core/estimation_engine.h"
#include "core/gp_subset_model.h"
#include "core/hybrid_optimizer.h"
#include "core/machine_metric.h"
#include "core/oracle.h"
#include "core/paged_bitmap.h"
#include "core/partial_sampling_optimizer.h"
#include "core/partition.h"
#include "core/resolution_service.h"
#include "core/risk_aware_optimizer.h"
#include "core/risk_model.h"
#include "core/shard_coordinator.h"
#include "core/sharded_resolver.h"
#include "core/solution.h"
#include "core/streaming_resolver.h"
#include "data/blocking.h"
#include "data/entity_graph_generator.h"
#include "data/logistic_generator.h"
#include "data/mmap_columns.h"
#include "data/pair_simulator.h"
#include "data/persistence.h"
#include "data/perturbation.h"
#include "data/product_generator.h"
#include "data/publication_generator.h"
#include "data/record.h"
#include "data/record_columns.h"
#include "data/scale_generator.h"
#include "data/workload.h"
#include "data/workload_stream.h"
#include "entity/entity_clustering.h"
#include "entity/multi_source.h"
#include "entity/transitivity_repair.h"
#include "eval/entity_metrics.h"
#include "eval/evaluation.h"
#include "eval/experiment.h"
#include "eval/golden_reference.h"
#include "eval/report.h"
#include "gp/gp_regression.h"
#include "gp/kernel.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "ml/dataset.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/scaler.h"
#include "stats/dawid_skene.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/proportion.h"
#include "stats/sampling.h"
#include "stats/stratified.h"
#include "text/attribute_similarity.h"
#include "text/edit_distance.h"
#include "text/jaro.h"
#include "text/phonetic.h"
#include "text/simd_similarity.h"
#include "text/tfidf.h"
#include "text/token_dictionary.h"
#include "text/token_similarity.h"
#include "text/tokenizer.h"
