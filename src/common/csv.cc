#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace humo {

int CsvDocument::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return static_cast<int>(i);
  return -1;
}

Result<CsvDocument> CsvReader::Parse(std::string_view text,
                                     bool has_header) const {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  bool record_has_data = false;

  auto end_field = [&]() {
    current.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(current));
    current.clear();
    record_has_data = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;  // escaped quote
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
      record_has_data = true;
    } else if (c == separator_) {
      end_field();
      record_has_data = true;
    } else if (c == '\r') {
      // swallow; \r\n handled at \n
    } else if (c == '\n') {
      if (record_has_data || field_started || !current.empty() ||
          !field.empty()) {
        end_record();
      }
      // empty line: skip silently
    } else {
      field.push_back(c);
      field_started = true;
      record_has_data = true;
    }
  }
  if (in_quotes)
    return Status::InvalidArgument("unterminated quoted CSV field");
  if (record_has_data || !field.empty() || !current.empty()) end_record();

  CsvDocument doc;
  size_t start = 0;
  if (has_header && !records.empty()) {
    doc.header = std::move(records[0]);
    start = 1;
  }
  const size_t width =
      has_header && !doc.header.empty()
          ? doc.header.size()
          : (records.size() > start ? records[start].size() : 0);
  for (size_t r = start; r < records.size(); ++r) {
    if (width != 0 && records[r].size() != width) {
      return Status::InvalidArgument(
          StrFormat("CSV row %zu has %zu fields, expected %zu", r,
                    records[r].size(), width));
    }
    doc.rows.push_back(std::move(records[r]));
  }
  return doc;
}

Result<CsvDocument> CsvReader::ReadFile(const std::string& path,
                                        bool has_header) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Parse(ss.str(), has_header);
}

std::string CsvWriter::EncodeField(std::string_view f) const {
  bool needs_quotes = f.find_first_of("\"\n\r") != std::string_view::npos ||
                      f.find(separator_) != std::string_view::npos;
  if (!needs_quotes) return std::string(f);
  std::string out = "\"";
  for (char c : f) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string CsvWriter::Serialize(const CsvDocument& doc) const {
  std::string out;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out.push_back(separator_);
      out += EncodeField(row[i]);
    }
    out.push_back('\n');
  };
  if (!doc.header.empty()) write_row(doc.header);
  for (const auto& row : doc.rows) write_row(row);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path,
                            const CsvDocument& doc) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open file for write: " + path);
  out << Serialize(doc);
  return out ? Status::OK() : Status::IoError("short write: " + path);
}

}  // namespace humo
