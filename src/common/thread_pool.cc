#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/env.h"

namespace humo {
namespace {

/// True while the current thread executes a ParallelFor body; nested loops
/// then run inline instead of re-entering the pool.
thread_local bool t_in_parallel_body = false;

}  // namespace

struct ThreadPool::Job {
  const std::function<void(size_t, size_t)>* body = nullptr;
  size_t n = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> done_chunks{0};
};

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  for (size_t t = 1; t < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      job = job_;
      seen_epoch = epoch_;
    }
    RunChunks(job.get());
  }
}

void ThreadPool::RunChunks(Job* job) {
  t_in_parallel_body = true;
  for (;;) {
    const size_t c = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->num_chunks) break;
    const size_t begin = c * job->grain;
    const size_t end = std::min(job->n, begin + job->grain);
    (*job->body)(begin, end);
    job->done_chunks.fetch_add(1, std::memory_order_acq_rel);
  }
  t_in_parallel_body = false;
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (workers_.empty() || n <= grain || t_in_parallel_body) {
    body(0, n);
    return;
  }
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->n = n;
  job->grain = grain;
  job->num_chunks = (n + grain - 1) / grain;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++epoch_;
  }
  work_cv_.notify_all();
  RunChunks(job.get());
  // Every chunk was claimed; wait for claimed-but-unfinished ones. A worker
  // that claimed a chunk cannot finish it without bumping done_chunks, so
  // `body` (which lives on this frame) is never dereferenced after return;
  // stragglers holding the shared Job only read its atomics before exiting.
  while (job->done_chunks.load(std::memory_order_acquire) < job->num_chunks) {
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = nullptr;
  }
}

size_t ThreadPool::DefaultThreadCount() {
  const int64_t env = GetEnvInt64("HUMO_NUM_THREADS", 0);
  if (env > 0) return static_cast<size_t>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

namespace {
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
/// Pools displaced by SetGlobalThreads. Destroying the outgoing pool in
/// place was the documented-unsafe hazard: a racing thread that fetched
/// Global() just before the swap would run ParallelFor on a pool whose
/// workers were being joined and whose storage was being freed. Parking the
/// old pool here keeps every previously handed-out pointer valid for the
/// life of the process — stragglers simply run on the retired pool's thread
/// count. Retired workers sit idle in their condition wait; the list only
/// grows by explicit SetGlobalThreads calls (benches and tests), so the
/// leak is bounded and deliberate.
std::vector<std::unique_ptr<ThreadPool>> g_retired_pools;
}  // namespace

ThreadPool* ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>();
  return g_pool.get();
}

void ThreadPool::SetGlobalThreads(size_t num_threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool) g_retired_pools.push_back(std::move(g_pool));
  g_pool = std::make_unique<ThreadPool>(num_threads);
}

size_t ThreadPool::RetiredGlobalPools() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return g_retired_pools.size();
}

}  // namespace humo
