#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace humo {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace humo
