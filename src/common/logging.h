#pragma once

#include <sstream>
#include <string>

namespace humo {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum severity; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink that emits on destruction (RocksDB-style macro
/// backend). Not thread-safe across interleaved writes to the same stream,
/// which is acceptable for this single-threaded research library.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace humo

#define HUMO_LOG(level) \
  ::humo::internal::LogMessage(::humo::LogLevel::k##level, __FILE__, __LINE__)
