#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace humo {

/// Length-prefixed frame transport over one end of a Unix socketpair — the
/// process/pipe seam the sharded resolution layer talks through. A frame is
/// an opaque byte payload; WriteFrame sends a little-endian u64 length
/// followed by the bytes, ReadFrame reads exactly one such frame. Both sides
/// loop on EINTR and handle short reads/writes, so frames of any size
/// survive the kernel's socket-buffer chunking.
///
/// The channel is intentionally dumb: no message types, no threading, no
/// ownership of what the bytes mean. Request/response protocols (see
/// core/sharded_resolver.h) are layered on top with the WireWriter /
/// WireReader helpers below, which keep the serialized-evidence format in
/// one place.
class IpcChannel {
 public:
  IpcChannel() = default;
  /// Takes ownership of `fd` (closed on destruction).
  explicit IpcChannel(int fd) : fd_(fd) {}
  ~IpcChannel() { Close(); }

  IpcChannel(const IpcChannel&) = delete;
  IpcChannel& operator=(const IpcChannel&) = delete;
  IpcChannel(IpcChannel&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  IpcChannel& operator=(IpcChannel&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Sends one frame. False on a write error or a closed peer.
  bool WriteFrame(const std::vector<uint8_t>& payload);

  /// Receives one frame into `*payload` (resized to the frame length).
  /// False on EOF (peer closed) or a read error.
  bool ReadFrame(std::vector<uint8_t>* payload);

  /// Creates a connected bidirectional pair (AF_UNIX SOCK_STREAM). False
  /// when the socketpair syscall fails.
  static bool CreatePair(IpcChannel* a, IpcChannel* b);

 private:
  int fd_ = -1;
};

/// One forked worker process: the parent-side channel plus the child pid.
/// Join() closes the channel (the child's serve loop sees EOF and exits)
/// and reaps the child; the destructor does the same, so a coordinator
/// that errors out mid-run leaks no zombies.
class ForkedWorker {
 public:
  ForkedWorker() = default;
  ForkedWorker(IpcChannel channel, int64_t pid)
      : channel_(std::move(channel)), pid_(pid) {}
  ~ForkedWorker() { Join(); }

  ForkedWorker(const ForkedWorker&) = delete;
  ForkedWorker& operator=(const ForkedWorker&) = delete;
  ForkedWorker(ForkedWorker&& other) noexcept
      : channel_(std::move(other.channel_)), pid_(other.pid_) {
    other.pid_ = -1;
  }
  ForkedWorker& operator=(ForkedWorker&& other) noexcept;

  bool valid() const { return pid_ > 0; }
  IpcChannel& channel() { return channel_; }

  /// Closes the channel and waits for the child to exit. Returns the
  /// child's exit status (0 on clean shutdown; -1 when there is no child
  /// or waitpid fails).
  int Join();

 private:
  IpcChannel channel_;
  int64_t pid_ = -1;
};

/// Forks a child that runs `serve(&child_channel)` and then _exit(0)s
/// (bypassing atexit/stdio so the parent's buffered state is not flushed
/// twice). The child inherits the parent's memory copy-on-write — the cheap
/// way to hand a worker its workload slice without serializing it. Returns
/// an invalid worker when fork is unavailable or fails; callers fall back
/// to in-process execution.
///
/// Fork-safety contract for `serve`: only the forking thread survives in
/// the child, so the serve loop must never touch the process-global
/// ThreadPool (its worker threads do not exist in the child) or any lock
/// another parent thread might have held at fork time. The shard worker
/// loop is serial by construction.
ForkedWorker ForkWorkerProcess(
    const std::function<void(IpcChannel*)>& serve);

/// True when this platform/build supports the fork transport.
bool ForkTransportAvailable();

/// Append-only little-endian byte serializer for wire payloads.
class WireWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U64(uint64_t v) {
    for (int b = 0; b < 8; ++b) bytes_.push_back(uint8_t(v >> (8 * b)));
  }
  void F64(double v);
  void Bytes(const void* data, size_t n);
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Cursor-based reader over a received payload. Out-of-bounds reads set
/// ok() to false and return zeros instead of touching memory, so a
/// truncated or corrupt frame degrades into a detectable error, not UB.
class WireReader {
 public:
  explicit WireReader(const std::vector<uint8_t>& bytes) : bytes_(&bytes) {}

  uint8_t U8();
  uint64_t U64();
  double F64();
  /// Copies `n` bytes into `out`; false (and ok()=false) when short.
  bool Bytes(void* out, size_t n);

  bool ok() const { return ok_; }
  /// True when every byte was consumed — the frame means what we parsed.
  bool Exhausted() const { return ok_ && pos_ == bytes_->size(); }

 private:
  const std::vector<uint8_t>* bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace humo
