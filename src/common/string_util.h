#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace humo {

/// ASCII lower-casing (the datasets in this project are ASCII-normalized).
std::string ToLower(std::string_view s);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any run of characters in `seps`; drops empty fields.
std::vector<std::string> SplitAny(std::string_view s, std::string_view seps);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Collapses runs of whitespace to single spaces and trims; lower-cases;
/// strips all characters that are not alphanumeric or space. This is the
/// canonical normalization applied to attribute values before similarity
/// computation.
std::string NormalizeForMatching(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace humo
