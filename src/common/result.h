#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace humo {

/// Result<T> holds either a value of type T or an error Status. It is the
/// return type of fallible functions that produce a value (Arrow idiom).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  // NOLINT below: implicit by design, mirroring absl::StatusOr.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (error). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Returns the contained value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ present
};

}  // namespace humo

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define HUMO_ASSIGN_OR_RETURN(lhs, expr)          \
  auto HUMO_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!HUMO_CONCAT_(_res_, __LINE__).ok())        \
    return HUMO_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(HUMO_CONCAT_(_res_, __LINE__)).value()

#define HUMO_CONCAT_IMPL_(a, b) a##b
#define HUMO_CONCAT_(a, b) HUMO_CONCAT_IMPL_(a, b)
