#include "common/random.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace humo {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

Rng Rng::Fork() { return Rng(NextUint64()); }

Rng Rng::Stream(uint64_t seed, uint64_t stream_id) {
  // Decorrelate (seed, stream) pairs with one SplitMix64 round over a
  // golden-ratio combination before the constructor's own expansion.
  uint64_t z = seed ^ (stream_id * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return Rng(z ^ (z >> 31));
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates on an index vector; O(n) memory, O(n + k) time.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBelow(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace humo
