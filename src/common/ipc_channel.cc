#include "common/ipc_channel.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define HUMO_HAS_FORK 1
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define HUMO_HAS_FORK 0
#endif

namespace humo {
namespace {

#if HUMO_HAS_FORK
/// write(2) until every byte is out; EINTR-restarting. False on error.
bool WriteAll(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

/// read(2) until `n` bytes arrived; EINTR-restarting. False on EOF/error.
bool ReadAll(int fd, uint8_t* data, size_t n) {
  while (n > 0) {
    const ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // peer closed mid-frame (or before one)
    data += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}
#endif

}  // namespace

IpcChannel& IpcChannel::operator=(IpcChannel&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void IpcChannel::Close() {
#if HUMO_HAS_FORK
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
}

bool IpcChannel::WriteFrame(const std::vector<uint8_t>& payload) {
#if HUMO_HAS_FORK
  if (fd_ < 0) return false;
  uint8_t header[8];
  const uint64_t len = payload.size();
  for (int b = 0; b < 8; ++b) header[b] = uint8_t(len >> (8 * b));
  if (!WriteAll(fd_, header, sizeof(header))) return false;
  return payload.empty() || WriteAll(fd_, payload.data(), payload.size());
#else
  (void)payload;
  return false;
#endif
}

bool IpcChannel::ReadFrame(std::vector<uint8_t>* payload) {
#if HUMO_HAS_FORK
  if (fd_ < 0) return false;
  uint8_t header[8];
  if (!ReadAll(fd_, header, sizeof(header))) return false;
  uint64_t len = 0;
  for (int b = 0; b < 8; ++b) len |= uint64_t(header[b]) << (8 * b);
  payload->resize(len);
  return len == 0 || ReadAll(fd_, payload->data(), len);
#else
  (void)payload;
  return false;
#endif
}

bool IpcChannel::CreatePair(IpcChannel* a, IpcChannel* b) {
#if HUMO_HAS_FORK
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
  *a = IpcChannel(fds[0]);
  *b = IpcChannel(fds[1]);
  return true;
#else
  (void)a;
  (void)b;
  return false;
#endif
}

ForkedWorker& ForkedWorker::operator=(ForkedWorker&& other) noexcept {
  if (this != &other) {
    Join();
    channel_ = std::move(other.channel_);
    pid_ = other.pid_;
    other.pid_ = -1;
  }
  return *this;
}

int ForkedWorker::Join() {
#if HUMO_HAS_FORK
  if (pid_ <= 0) return -1;
  channel_.Close();  // the child's ReadFrame sees EOF and its loop exits
  int status = 0;
  pid_t done;
  do {
    done = ::waitpid(static_cast<pid_t>(pid_), &status, 0);
  } while (done < 0 && errno == EINTR);
  pid_ = -1;
  if (done < 0) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#else
  pid_ = -1;
  return -1;
#endif
}

ForkedWorker ForkWorkerProcess(
    const std::function<void(IpcChannel*)>& serve) {
#if HUMO_HAS_FORK
  IpcChannel parent_end, child_end;
  if (!IpcChannel::CreatePair(&parent_end, &child_end)) return {};
  const pid_t pid = ::fork();
  if (pid < 0) return {};
  if (pid == 0) {
    parent_end.Close();
    serve(&child_end);
    child_end.Close();
    ::_exit(0);
  }
  child_end.Close();
  return {std::move(parent_end), pid};
#else
  (void)serve;
  return {};
#endif
}

bool ForkTransportAvailable() { return HUMO_HAS_FORK != 0; }

void WireWriter::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Bytes(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + n);
}

uint8_t WireReader::U8() {
  if (!ok_ || pos_ + 1 > bytes_->size()) {
    ok_ = false;
    return 0;
  }
  return (*bytes_)[pos_++];
}

uint64_t WireReader::U64() {
  if (!ok_ || pos_ + 8 > bytes_->size()) {
    ok_ = false;
    return 0;
  }
  uint64_t v = 0;
  for (int b = 0; b < 8; ++b) v |= uint64_t((*bytes_)[pos_ + b]) << (8 * b);
  pos_ += 8;
  return v;
}

double WireReader::F64() {
  const uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool WireReader::Bytes(void* out, size_t n) {
  if (!ok_ || pos_ + n > bytes_->size()) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, bytes_->data() + pos_, n);
  pos_ += n;
  return true;
}

}  // namespace humo
