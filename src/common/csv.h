#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace humo {

/// A parsed CSV document: a header row plus data rows, all as strings.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Returns the column index for `name`, or -1 if absent.
  int ColumnIndex(std::string_view name) const;
};

/// RFC-4180-style CSV parsing: quoted fields, embedded separators, escaped
/// quotes ("") and embedded newlines inside quoted fields are supported.
class CsvReader {
 public:
  explicit CsvReader(char separator = ',') : separator_(separator) {}

  /// Parses an in-memory CSV payload. When `has_header` is true the first
  /// record becomes `header`, otherwise header is left empty.
  Result<CsvDocument> Parse(std::string_view text,
                            bool has_header = true) const;

  /// Reads and parses a file from disk.
  Result<CsvDocument> ReadFile(const std::string& path,
                               bool has_header = true) const;

 private:
  char separator_;
};

/// Serializes rows into CSV text, quoting fields when needed.
class CsvWriter {
 public:
  explicit CsvWriter(char separator = ',') : separator_(separator) {}

  std::string Serialize(const CsvDocument& doc) const;

  Status WriteFile(const std::string& path, const CsvDocument& doc) const;

 private:
  std::string EncodeField(std::string_view field) const;
  char separator_;
};

}  // namespace humo
