#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace humo {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIoError,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Lightweight success/error value used across library boundaries instead of
/// exceptions (Arrow/RocksDB idiom). An OK status carries no message and no
/// allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace humo

/// Propagates a non-OK Status from an expression to the caller.
#define HUMO_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::humo::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (0)
