#pragma once

#include <cstdint>
#include <string>

namespace humo {

/// Reads an environment variable as int64, returning `fallback` when unset or
/// unparsable. Used by the benchmark harness for knobs like HUMO_TRIALS.
int64_t GetEnvInt64(const char* name, int64_t fallback);

/// Reads an environment variable as double, returning `fallback` when unset
/// or unparsable.
double GetEnvDouble(const char* name, double fallback);

/// Reads an environment variable as string.
std::string GetEnvString(const char* name, const std::string& fallback);

}  // namespace humo
