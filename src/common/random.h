#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace humo {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// Every randomized component in the library takes an explicit seed so that
/// experiments are reproducible run-to-run; std::mt19937 is avoided because
/// its distributions are not guaranteed identical across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller (cached spare deviate).
  double NextGaussian();

  /// Gaussian with given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Derives an independent child generator (for parallel substreams).
  Rng Fork();

  /// Deterministic per-task stream: an independent generator derived from a
  /// base seed and a task/stream id. Unlike Fork(), Stream() does not
  /// consume state from any existing generator, so tasks scheduled in any
  /// order (or on any number of threads) always see identical draws —
  /// the contract ThreadPool::ParallelFor bodies rely on.
  static Rng Stream(uint64_t seed, uint64_t stream_id);

  /// Fisher-Yates shuffle of a vector in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      // Value-based swap: also works for std::vector<bool> proxy references.
      T tmp = (*v)[i];
      (*v)[i] = (*v)[j];
      (*v)[j] = tmp;
    }
  }

  /// Draws k distinct indices uniformly from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace humo
