#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace humo {

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s)
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitAny(std::string_view s, std::string_view seps) {
  std::vector<std::string> out;
  size_t start = std::string_view::npos;
  for (size_t i = 0; i <= s.size(); ++i) {
    bool is_sep = (i == s.size()) || seps.find(s[i]) != std::string_view::npos;
    if (!is_sep && start == std::string_view::npos) {
      start = i;
    } else if (is_sep && start != std::string_view::npos) {
      out.emplace_back(s.substr(start, i - start));
      start = std::string_view::npos;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string NormalizeForMatching(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool pending_space = false;
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      if (pending_space && !out.empty()) out.push_back(' ');
      pending_space = false;
      out.push_back(static_cast<char>(std::tolower(c)));
    } else {
      // Whitespace and punctuation both act as token separators.
      pending_space = true;
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace humo
