#include "common/env.h"

#include <cstdlib>

namespace humo {

int64_t GetEnvInt64(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int64_t>(v);
}

double GetEnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  double v = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return v;
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr) ? fallback : std::string(raw);
}

}  // namespace humo
