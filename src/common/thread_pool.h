#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace humo {

/// Fixed-size worker pool for deterministic data parallelism.
///
/// The only primitive is ParallelFor, which splits an index range into
/// contiguous chunks and runs a body over each chunk. Chunks are claimed
/// dynamically (work stealing via an atomic cursor), so scheduling is
/// nondeterministic — callers MUST write only to disjoint, index-addressed
/// output slots and derive any randomness from per-task streams
/// (Rng::Stream), never from shared mutable state. Under that contract the
/// result is bit-identical for every thread count, including 1.
///
/// The pool size defaults to the HUMO_NUM_THREADS environment variable
/// (read through common/env.h) and falls back to the hardware concurrency.
/// A pool of size 1 has no worker threads and runs every body inline, which
/// is the reference serial path.
///
/// Nested ParallelFor calls (a body that itself calls ParallelFor, on any
/// pool) run inline on the calling thread instead of deadlocking; the
/// outermost loop is the one that fans out.
class ThreadPool {
 public:
  /// `num_threads` counts the caller: 1 means serial, n means the caller
  /// plus n-1 workers. 0 means DefaultThreadCount().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in ParallelFor (workers + caller).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs body(chunk_begin, chunk_end) over chunks of [0, n) of at most
  /// `grain` indices each, blocking until every chunk completed. Runs inline
  /// when the pool is serial, when n <= grain, or when called from inside
  /// another ParallelFor body.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

  /// HUMO_NUM_THREADS when set to a positive value, otherwise the hardware
  /// concurrency (at least 1).
  static size_t DefaultThreadCount();

  /// Process-wide pool used by the numeric kernels (GP Gram construction,
  /// Cholesky column updates, pair simulation) when no pool is passed
  /// explicitly. Created on first use with DefaultThreadCount() threads.
  static ThreadPool* Global();

  /// Replaces the global pool with one of `num_threads` threads (0 =
  /// DefaultThreadCount()). Safe under concurrent use: the swap itself is
  /// atomic (one mutex guards the slot), and the outgoing pool is RETIRED —
  /// kept alive for the remainder of the process — rather than destroyed,
  /// so a thread that grabbed Global() before the swap (or is still inside
  /// ParallelFor on it) keeps a valid pool; it merely finishes on the old
  /// thread count. The cost is the retired pools' idle workers, which is
  /// why this remains a bench/test knob, not a serving-path resize.
  static void SetGlobalThreads(size_t num_threads);

  /// Pools parked by SetGlobalThreads and still alive (test visibility).
  static size_t RetiredGlobalPools();

 private:
  struct Job;

  void WorkerLoop();
  static void RunChunks(Job* job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::shared_ptr<Job> job_;  // guarded by mu_
  uint64_t epoch_ = 0;        // guarded by mu_; bumps once per ParallelFor
  bool stop_ = false;         // guarded by mu_
};

}  // namespace humo
