#include "core/baseline_optimizer.h"

#include <algorithm>
#include <cassert>

namespace humo::core {

Result<HumoSolution> BaselineOptimizer::Optimize(
    const SubsetPartition& partition, const QualityRequirement& req,
    Oracle* oracle) const {
  if (oracle == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  EstimationContext ctx(&partition, oracle);
  return Optimize(&ctx, req);
}

Result<HumoSolution> BaselineOptimizer::Optimize(
    EstimationContext* ctx, const QualityRequirement& req) const {
  if (ctx == nullptr)
    return Status::InvalidArgument("estimation context must not be null");
  if (ctx->oracle() == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  const SubsetPartition& partition = ctx->partition();
  const size_t m = partition.num_subsets();
  if (m == 0) return Status::InvalidArgument("empty workload");
  if (options_.window_subsets == 0)
    return Status::InvalidArgument("window_subsets must be positive");

  // Start at the subset containing the midpoint similarity value (or the
  // user-provided start).
  size_t start;
  if (options_.start_subset == BaselineOptions::kAutoStart) {
    const auto& workload = partition.workload();
    const double mid = 0.5 * (workload[0].similarity +
                              workload[workload.size() - 1].similarity);
    start = m / 2;
    for (size_t k = 0; k < m; ++k) {
      if (partition[k].avg_similarity >= mid) {
        start = k;
        break;
      }
    }
  } else {
    start = std::min(options_.start_subset, m - 1);
  }

  // DH = [lo, hi] inclusive; per-subset observed match counts live in the
  // context's SubsetStatsCache (so a later optimizer run — or a re-run with
  // a stronger requirement — reuses them without oracle traffic). All DH
  // pairs get human labels, so R(DH) is known exactly.
  size_t lo = start, hi = start;
  size_t dh_matches = ctx->LabelSubset(start);
  size_t dh_pairs = partition[start].size();

  bool precision_fixed = (hi + 1 >= m);  // no D+ -> precision vacuous
  bool recall_fixed = (lo == 0);         // no D- -> recall constraint vacuous

  // Eq. 7 windows are capped both by subset count and by pair count (the
  // final subset absorbs the partition remainder, so w subsets can hold
  // more than w * subset_size pairs).
  const size_t w = options_.window_subsets;
  const size_t window_pair_cap = w * partition.subset_size();

  // Eq. 7: upper bound freezes when R(I+) >= (alpha*|D+| - (1-alpha)*
  //        R(DH)*|DH|) / |D+|.
  auto precision_satisfied = [&]() {
    if (hi + 1 >= m) return true;  // D+ empty
    const double d_plus =
        static_cast<double>(partition.PairsInRange(hi + 1, m - 1));
    const double r_dh_weighted = static_cast<double>(dh_matches);
    const double threshold =
        (req.alpha * d_plus - (1.0 - req.alpha) * r_dh_weighted) / d_plus;
    return ctx->UpperWindowProportion(lo, hi, w, window_pair_cap) >= threshold;
  };

  // Eq. 9: lower bound freezes when R(I-) <= (1-beta)(|DH| R(DH) +
  //        |D+| R(I+)) / (beta |D-|).
  auto recall_satisfied = [&]() {
    if (lo == 0) return true;  // D- empty
    const double d_minus =
        static_cast<double>(partition.PairsInRange(0, lo - 1));
    const double d_plus_matches =
        hi + 1 >= m
            ? 0.0
            : static_cast<double>(partition.PairsInRange(hi + 1, m - 1)) *
                  ctx->UpperWindowProportion(lo, hi, w, window_pair_cap);
    const double labeled_matches =
        static_cast<double>(dh_matches) + d_plus_matches;
    const double threshold =
        (1.0 - req.beta) * labeled_matches / (req.beta * d_minus);
    return ctx->LowerWindowProportion(lo, hi, w, window_pair_cap) <= threshold;
  };

  precision_fixed = precision_fixed || precision_satisfied();
  recall_fixed = recall_fixed || recall_satisfied();

  // Alternate extension until both constraints hold.
  while (!precision_fixed || !recall_fixed) {
    bool moved = false;
    if (!precision_fixed) {
      if (hi + 1 < m) {
        ++hi;
        dh_matches += ctx->LabelSubset(hi);
        dh_pairs += partition[hi].size();
        moved = true;
      }
      precision_fixed = (hi + 1 >= m) || precision_satisfied();
    }
    if (!recall_fixed) {
      if (lo > 0) {
        --lo;
        dh_matches += ctx->LabelSubset(lo);
        dh_pairs += partition[lo].size();
        moved = true;
      }
      recall_fixed = (lo == 0) || recall_satisfied();
      // Extending DH downward changes |DH| R(DH); re-check precision with
      // the frozen upper bound (it can only improve, per §V, but verify
      // defensively when it was satisfied by threshold rather than
      // vacuously).
      if (precision_fixed && hi + 1 < m && !precision_satisfied()) {
        precision_fixed = false;
      }
    }
    if (!moved) break;  // both bounds at the extremes
  }

  HumoSolution sol;
  sol.h_lo = lo;
  sol.h_hi = hi;
  sol.empty = false;
  (void)dh_pairs;
  return sol;
}

}  // namespace humo::core
