#pragma once

#include <cstddef>
#include <cstdint>

#include "common/result.h"
#include "core/estimation_engine.h"
#include "core/oracle.h"
#include "core/partial_sampling_optimizer.h"
#include "core/partition.h"
#include "core/risk_model.h"
#include "core/solution.h"

namespace humo::core {

/// Options of the risk-aware search.
struct RiskAwareOptions {
  /// Configuration of the initial partial-sampling run that produces the DH
  /// range and the GP model (S0, reused from the context when an earlier
  /// SAMP run already certified the same requirement). Its quality_margin is
  /// also the margin the risk certification applies to alpha/beta.
  PartialSamplingOptions sampling;
  /// Beta prior of the per-subset evidence posterior.
  RiskModelOptions risk;
  /// Pairs inspected per priority-queue pop; the certification bounds are
  /// re-estimated after every batch. Smaller batches track the risk ordering
  /// more closely at the price of more bound re-estimations.
  size_t batch_pairs = 64;
  /// Seed of the within-subset inspection order (Rng::Stream(seed, subset));
  /// independent of the sampling seed so the two phases stay decoupled.
  uint64_t seed = 11;
};

/// How much human work the risk loop did and avoided.
struct RiskInspectionStats {
  /// DH pairs the certification loop sent to the oracle.
  size_t pairs_inspected = 0;
  /// DH pairs left machine-labeled when the loop stopped — the inspections
  /// HUMO/SAMP would have paid for that RISK did not.
  size_t pairs_machine_labeled = 0;
  /// Priority-queue pops (= bound re-estimations beyond the initial one).
  size_t batches = 0;
  /// Distinct subsets the loop drew at least one batch from.
  size_t subsets_touched = 0;
};

/// Everything a risk-aware run produces: the inherited DH range, the final
/// labeling with cost accounting, and the certificate the loop stopped on.
struct RiskAwareOutcome {
  /// DH range inherited from S0 (or the range handed to ResolveWithin).
  HumoSolution solution;
  /// Final labels over the whole workload plus human-cost accounting;
  /// uninspected DH pairs carry their subset's machine label.
  ResolutionResult resolution;
  RiskInspectionStats inspection;
  /// Certified lower bounds at stop time (confidence sqrt(theta) each, the
  /// paper's Theorem-2 convention).
  double precision_lb = 0.0;
  double recall_lb = 0.0;
  /// True when both bounds reached the (margin-adjusted) targets. False
  /// when DH ran out of pairs first, or when the potential certificate
  /// showed certification unreachable inside the range (ResolveWithin's
  /// fast-fail). Resolve() never returns a partially machine-labeled
  /// uncertified result: it falls back to full DH inspection, so its
  /// labeling then equals the full-inspection SAMP labeling and quality
  /// matches SAMP's. A raw ResolveWithin caller gets the partial labeling
  /// as-is and must handle the fallback itself (HYBR re-grows the range
  /// instead).
  bool certified = false;
};

/// RISK: risk-aware inspection ordering inside DH (the r-HUMO follow-up,
/// Hou et al.). HUMO's optimizers spend the human budget on WHOLE subsets;
/// RISK keeps SAMP's D-/DH/D+ split and GP bounds but replaces the
/// wholesale DH verification of ApplySolution with a priority queue of
/// individual pairs ordered by posterior misclassification risk
/// (RiskModel). After each inspected batch the precision/recall bounds are
/// re-estimated incrementally — GpRangeAccumulators over D+/D-, closed-form
/// Beta/GP aggregation over the partially inspected DH — and the loop stops
/// the moment both certify, leaving the low-risk remainder of DH
/// machine-labeled. Same guarantee as SAMP at equal confidence, measurably
/// fewer oracle inspections (tracked by CacheStats and the oracle's request
/// counters; see tests/core/risk_aware_optimizer_test.cc and
/// bench/risk_vs_humo.cc).
class RiskAwareOptimizer {
 public:
  explicit RiskAwareOptimizer(RiskAwareOptions options = {})
      : options_(options) {}

  /// Runs S0 (partial sampling) against the shared context — reusing a
  /// stored outcome certifying the same requirement, like HYBR — then the
  /// risk-ordered certification loop inside S0's DH. Unlike the other
  /// optimizers this returns the final LABELING, not just a solution:
  /// applying ApplySolution afterwards would inspect the machine-labeled
  /// remainder and forfeit the savings. Should the loop stop uncertified
  /// (exhausted or hopeless range), the whole DH is inspected instead —
  /// the result then equals SAMP's full-inspection labeling at SAMP's
  /// cost, never less reliable than it.
  Result<RiskAwareOutcome> Resolve(EstimationContext* ctx,
                                   const QualityRequirement& req) const;

  /// Convenience entry point with a private, throwaway context.
  Result<RiskAwareOutcome> Resolve(const SubsetPartition& partition,
                                   const QualityRequirement& req,
                                   Oracle* oracle) const;

  /// The certification loop alone, inside an arbitrary DH range: evidence
  /// is seeded from every pair the oracle already answered, then pairs are
  /// inspected in risk order until the bounds certify `req`, the range is
  /// exhausted, or the potential certificate shows certification
  /// unreachable (fast-fail; the outcome is then uncertified and partially
  /// machine-labeled — see RiskAwareOutcome::certified). `model` must
  /// describe the context's partition (normally a PartialSamplingOutcome's
  /// model) and outlive the call. This is the hook
  /// HybridOptimizer::OptimizeRiskAware drives after its re-extension
  /// phase selected the subsets.
  Result<RiskAwareOutcome> ResolveWithin(EstimationContext* ctx,
                                         const QualityRequirement& req,
                                         const HumoSolution& dh,
                                         const GpSubsetModel* model) const;

  const RiskAwareOptions& options() const { return options_; }

 private:
  RiskAwareOptions options_;
};

}  // namespace humo::core
