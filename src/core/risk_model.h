#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/gp_subset_model.h"
#include "core/oracle.h"
#include "core/partition.h"
#include "stats/proportion.h"

namespace humo::core {

/// Options of the per-pair misclassification-risk model.
struct RiskModelOptions {
  /// Beta prior over the match proportion of a subset's uninspected pairs.
  /// The uniform default keeps the posterior proper with zero evidence;
  /// Jeffreys (0.5/0.5) is sharper but anti-conservative at tiny counts.
  double prior_a = 1.0;
  double prior_b = 1.0;
};

/// Posterior misclassification risk of the machine-labeled (not yet
/// human-inspected) pairs inside a DH subset range — the r-HUMO idea (Hou et
/// al.): instead of inspecting DH wholesale, rank individual pairs by the
/// probability that their machine label is wrong and spend the human budget
/// top-down until the quality requirement certifies.
///
/// Per subset k the model maintains two posteriors over the match proportion
/// of the uninspected pairs and uses whichever is TIGHTER (smaller
/// variance):
///
///  - the GP posterior from the partial-sampling fit (GpSubsetModel's
///    posterior mean and LOO-inflated variance at v_k plus the subset's
///    independent scatter) — all the model knows before any direct evidence;
///  - a conservative Beta posterior over the direct evidence (`inspected`
///    pairs of k human-labeled, `matches` of them positive), via the
///    stats/proportion Beta tail bounds. With zero evidence its prior
///    variance (1/12 for the uniform prior) loses to the GP; as inspections
///    accumulate it sharpens past the GP and takes over.
///
/// Uninspected pairs of subset k are machine-labeled match iff the posterior
/// mean reaches 0.5; a pair's risk is the posterior probability that label
/// is wrong, reported conservatively through the posterior's upper tail.
/// All queries are deterministic functions of the evidence — no RNG.
class RiskModel {
 public:
  /// Models subsets [lo, hi] of `model`'s partition (inclusive; the DH
  /// range under risk-ordered inspection). `model` must outlive this object.
  RiskModel(const GpSubsetModel* model, size_t lo, size_t hi,
            RiskModelOptions options = {});

  size_t lo() const { return lo_; }
  size_t hi() const { return hi_; }

  /// Records that `inspected` distinct pairs of subset k are human-labeled,
  /// `matches` of them matches. Counts are absolute (not deltas) and must be
  /// non-decreasing; `inspected` may not exceed the subset size.
  void SetEvidence(size_t k, size_t inspected, size_t matches);

  /// Pairs of subset k not yet human-inspected (machine-labeled pairs).
  size_t Uninspected(size_t k) const;

  /// Human-inspected matches of subset k (exact, human-corrected).
  size_t InspectedMatches(size_t k) const;

  /// Posterior mean of the match proportion among subset k's uninspected
  /// pairs (tighter of GP and Beta evidence; see class comment).
  double PosteriorMean(size_t k) const;

  /// Posterior variance of that proportion (the proportion itself, not the
  /// realized count — callers add the binomial realization term).
  double PosteriorVariance(size_t k) const;

  /// Machine label subset k's uninspected pairs would receive: match iff
  /// the posterior mean reaches 0.5.
  bool MachineLabelsMatch(size_t k) const { return PosteriorMean(k) >= 0.5; }

  /// Conservative per-pair misclassification probability of subset k's
  /// machine label: the posterior upper tail (at `confidence`) of the error
  /// proportion. 0 when the subset has no uninspected pairs. This is the
  /// priority the risk-aware optimizer's queue orders inspections by —
  /// inspecting one pair of subset k removes this much expected error.
  double PairRisk(size_t k, double confidence) const;

  /// Aggregate posterior over the uninspected pairs of subsets [a, b]
  /// (within [lo, hi]), split by machine label: the mean and variance of
  /// the realized match COUNT in each bucket (per-subset proportion
  /// variance scaled by u_k^2 plus the u_k p (1-p) binomial realization
  /// term, summed as independent across subsets), plus the pair totals.
  /// These feed the precision/recall certification bounds.
  struct UninspectedAggregate {
    double match_mean = 0.0, match_var = 0.0, match_pairs = 0.0;
    double unmatch_mean = 0.0, unmatch_var = 0.0, unmatch_pairs = 0.0;
  };
  UninspectedAggregate Aggregate(size_t a, size_t b) const;
  UninspectedAggregate Aggregate() const { return Aggregate(lo_, hi_); }

  /// Human-inspected matches across subsets [a, b] (full range by default).
  size_t TotalInspectedMatches(size_t a, size_t b) const;
  size_t TotalInspectedMatches() const {
    return TotalInspectedMatches(lo_, hi_);
  }

  /// Uninspected pairs across subsets [a, b] (full range by default).
  size_t TotalUninspected(size_t a, size_t b) const;
  size_t TotalUninspected() const { return TotalUninspected(lo_, hi_); }

 private:
  struct Posterior {
    double mean = 0.0;
    double variance = 0.0;
    bool from_beta = false;
  };
  Posterior PosteriorOf(size_t k) const;

  const GpSubsetModel* model_;
  size_t lo_ = 0, hi_ = 0;
  RiskModelOptions options_;
  std::vector<size_t> size_;       // subset sizes, indexed k - lo
  std::vector<size_t> inspected_;  // evidence counts, indexed k - lo
  std::vector<size_t> matches_;
};

/// Certified lower bounds for a DH range under partial inspection.
struct RiskCertificate {
  double precision_lb = 0.0;
  double recall_lb = 0.0;

  bool Meets(double alpha, double beta) const {
    return precision_lb >= alpha && recall_lb >= beta;
  }
};

/// Precision/recall lower bounds when DH = subsets [a, b] is partially
/// inspected and the rest of the workload is machine-labeled around it:
///   precision >= (lb(D+) + A + lb(match-labeled uninspected)) /
///                (|D+| + A + match-labeled uninspected pairs)
///   recall    >= tp_lb / (tp_lb + ub(D-) + ub(unmatch-labeled uninspected))
/// with A the human-inspected DH matches (exact, human-corrected), the
/// D+/D- terms from the GP range accumulators (`dplus` over [b+1, m-1],
/// `dminus` over [0, a-1], empty when the zone is), and the uninspected
/// terms from `risk`'s mean/variance aggregation — every bound taken at
/// `confidence` (the paper's per-requirement sqrt(theta) convention).
RiskCertificate CertifyRange(const RiskModel& risk, size_t a, size_t b,
                             const GpRangeAccumulator& dplus,
                             const GpRangeAccumulator& dminus,
                             double confidence);

/// Best case the range could certify: the bounds of CertifyRange if every
/// uninspected pair of [a, b] were human-inspected and resolved exactly to
/// its posterior mean. When even this potential misses a target, no amount
/// of inspection inside [a, b] can certify it and the range must grow —
/// the extension rule of HybridOptimizer::OptimizeRiskAware.
RiskCertificate CertifyRangePotential(const RiskModel& risk, size_t a,
                                      size_t b,
                                      const GpRangeAccumulator& dplus,
                                      const GpRangeAccumulator& dminus,
                                      double confidence);

/// Seeds `risk`'s evidence from the oracle's answer memory (every pair a
/// previous phase — SAMP's sampling, HYBR's extension — already labeled is
/// free evidence) and returns, per subset of the risk range, the
/// not-yet-answered pair indices in the deterministic seeded-random order
/// risk inspection consumes them (drawn from Rng::Stream(seed, k), so the
/// order is identical at any thread count and regardless of which subsets
/// were touched before). Entry t of the result belongs to subset lo + t;
/// batches are taken from the BACK of each list.
std::vector<std::vector<size_t>> InitRiskEvidence(
    const SubsetPartition& partition, const Oracle& oracle, RiskModel* risk,
    uint64_t seed);

/// Evidence-only variant of InitRiskEvidence: seeds `risk` from the
/// oracle's answer memory without building (or shuffling) the uninspected
/// pair lists — all a range-selection phase needs before any inspection.
void SeedRiskEvidence(const SubsetPartition& partition, const Oracle& oracle,
                      RiskModel* risk);

}  // namespace humo::core
