#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace humo::core {

/// Sparse-friendly answer memory for pair oracles: a paged pair of bitsets
/// ("is this index known?" / "what was the answer?") indexed by pair index.
///
/// The pre-overhaul oracles kept a std::unordered_map<size_t, bool>, which
/// costs ~50-60 bytes per inspected pair once node, bucket, and allocator
/// overhead are counted — at 10M inspected pairs that is over half a
/// gigabyte of answer memory. A page here covers 4096 consecutive indices
/// with two 512-byte bitsets (1 KiB + one pointer), so a fully inspected
/// 10M-pair workload costs ~2.5 MiB and lookups are two bit probes with no
/// hashing. Pages are allocated lazily: an oracle that only ever touches DH
/// pays only for DH's pages.
///
/// Not thread-safe; oracles serialize human interaction by design.
class PagedAnswerBitmap {
 public:
  /// Indices per page. 4096 keeps a page at 1 KiB — small enough that a
  /// sparse inspection pattern wastes little, large enough that the page
  /// table is ~2.4k pointers per 10M pairs.
  static constexpr size_t kPageSize = 4096;

  PagedAnswerBitmap() = default;

  /// True when index i has a recorded answer.
  bool Known(size_t i) const {
    const size_t p = i / kPageSize;
    if (p >= pages_.size() || pages_[p] == nullptr) return false;
    const size_t b = i % kPageSize;
    return (pages_[p]->known[b / 64] >> (b % 64)) & 1u;
  }

  /// The recorded answer for index i. Precondition: Known(i).
  bool Answer(size_t i) const {
    assert(Known(i) && "Answer() on an unknown index");
    const size_t p = i / kPageSize;
    const size_t b = i % kPageSize;
    return (pages_[p]->answer[b / 64] >> (b % 64)) & 1u;
  }

  /// Records `answer` for index i. Returns true when the index was newly
  /// recorded, false when an answer already existed (in which case the
  /// stored answer is left untouched — history cannot be rewritten).
  bool Record(size_t i, bool answer) {
    const size_t p = i / kPageSize;
    if (p >= pages_.size()) pages_.resize(p + 1);
    if (pages_[p] == nullptr) pages_[p] = std::make_unique<Page>();
    Page& page = *pages_[p];
    const size_t b = i % kPageSize;
    const uint64_t mask = uint64_t{1} << (b % 64);
    if (page.known[b / 64] & mask) return false;
    page.known[b / 64] |= mask;
    if (answer) page.answer[b / 64] |= mask;
    ++known_count_;
    return true;
  }

  /// Number of recorded indices.
  size_t known_count() const { return known_count_; }

  /// Forgets everything and releases all pages.
  void Clear() {
    pages_.clear();
    known_count_ = 0;
  }

  /// Every (index, answer) recorded, ascending by index — pages and words
  /// are walked in order, so the snapshot is deterministic without a sort.
  std::vector<std::pair<size_t, bool>> Snapshot() const {
    std::vector<std::pair<size_t, bool>> out;
    out.reserve(known_count_);
    for (size_t p = 0; p < pages_.size(); ++p) {
      if (pages_[p] == nullptr) continue;
      const Page& page = *pages_[p];
      for (size_t w = 0; w < kWordsPerPage; ++w) {
        uint64_t bits = page.known[w];
        while (bits != 0) {
          const int bit = __builtin_ctzll(bits);
          bits &= bits - 1;
          const size_t index =
              p * kPageSize + w * 64 + static_cast<size_t>(bit);
          out.emplace_back(index, (page.answer[w] >> bit) & 1u);
        }
      }
    }
    return out;
  }

  /// Bytes held by pages plus the page table — the number the scaling docs
  /// quote against the unordered_map it replaced.
  size_t MemoryBytes() const {
    size_t bytes = pages_.capacity() * sizeof(pages_[0]);
    for (const auto& p : pages_) {
      if (p != nullptr) bytes += sizeof(Page);
    }
    return bytes;
  }

 private:
  static constexpr size_t kWordsPerPage = kPageSize / 64;

  struct Page {
    std::array<uint64_t, kWordsPerPage> known{};
    std::array<uint64_t, kWordsPerPage> answer{};
  };

  std::vector<std::unique_ptr<Page>> pages_;
  size_t known_count_ = 0;
};

}  // namespace humo::core
