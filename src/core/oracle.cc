#include "core/oracle.h"

#include <cassert>
#include <unordered_set>

namespace humo::core {
namespace {

/// Deterministic per-(seed, index) hash -> [0,1) double, so error injection
/// is stable across repeat queries.
double HashToUnit(uint64_t seed, uint64_t index) {
  uint64_t z = seed ^ (index * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

Oracle::Oracle(const data::Workload* workload, double error_rate,
               uint64_t seed, uint64_t index_offset)
    : workload_(workload),
      error_rate_(error_rate),
      seed_(seed),
      index_offset_(index_offset) {
  assert(workload_ != nullptr);
  assert(error_rate_ >= 0.0 && error_rate_ <= 1.0);
}

bool Oracle::InlineAnswer(size_t index) const {
  assert(index < workload_->size());
  bool truth = workload_->IsMatch(index);
  if (error_rate_ > 0.0 &&
      HashToUnit(seed_, static_cast<uint64_t>(index) + index_offset_) <
          error_rate_) {
    truth = !truth;
  }
  return truth;
}

bool Oracle::Label(size_t index) {
  assert(index < workload_->size());
  ++total_requests_;
  if (answers_.Known(index)) return answers_.Answer(index);
  bool truth;
  if (provider_) {
    truth = provider_({index}).at(0) != 0;
  } else {
    truth = InlineAnswer(index);
  }
  answers_.Record(index, truth);
  ++inspected_;
  return truth;
}

std::vector<char> Oracle::InspectBatch(const std::vector<size_t>& indices) {
  if (!provider_) {
    std::vector<char> answers(indices.size());
    for (size_t t = 0; t < indices.size(); ++t) {
      answers[t] = Label(indices[t]) ? 1 : 0;
    }
    return answers;
  }
  // Provider mode: ship every distinct unanswered index of the batch as ONE
  // request (one crowd task), then serve the whole batch from memory. The
  // counters end up exactly where the inline loop would put them.
  std::vector<size_t> fresh;
  fresh.reserve(indices.size());
  std::unordered_set<size_t> queued;
  for (const size_t index : indices) {
    assert(index < workload_->size());
    // Recording before the provider answers would hand it a stale bit;
    // instead dedup against both memory and this request list.
    if (!answers_.Known(index) && queued.insert(index).second) {
      fresh.push_back(index);
    }
  }
  if (!fresh.empty()) {
    const std::vector<char> fresh_answers = provider_(fresh);
    assert(fresh_answers.size() == fresh.size());
    for (size_t t = 0; t < fresh.size(); ++t) {
      answers_.Record(fresh[t], fresh_answers[t] != 0);
      ++inspected_;
    }
  }
  std::vector<char> answers(indices.size());
  for (size_t t = 0; t < indices.size(); ++t) {
    ++total_requests_;
    answers[t] = answers_.Answer(indices[t]) ? 1 : 0;
  }
  return answers;
}

size_t Oracle::InspectRange(size_t begin, size_t end) {
  assert(begin <= end && end <= workload_->size());
  if (provider_) {
    std::vector<size_t> range(end - begin);
    for (size_t i = begin; i < end; ++i) range[i - begin] = i;
    const std::vector<char> answers = InspectBatch(range);
    size_t matches = 0;
    for (const char a : answers) matches += a != 0;
    return matches;
  }
  size_t matches = 0;
  for (size_t i = begin; i < end; ++i) matches += Label(i);
  return matches;
}

void Oracle::Preload(size_t index, bool answer) {
  assert(index < workload_->size());
  if (answers_.Record(index, answer)) ++preloaded_;
}

double Oracle::CostFraction() const {
  if (workload_->size() == 0) return 0.0;
  return static_cast<double>(cost()) / static_cast<double>(workload_->size());
}

void Oracle::Reset() {
  answers_.Clear();
  total_requests_ = 0;
  inspected_ = 0;
  preloaded_ = 0;
}

}  // namespace humo::core
