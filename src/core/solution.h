#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/oracle.h"
#include "core/partition.h"

namespace humo::core {

/// User-specified quality requirement of Definition 1: precision >= alpha
/// and recall >= beta, each with confidence theta.
struct QualityRequirement {
  double alpha = 0.9;
  double beta = 0.9;
  double theta = 0.9;
};

/// A HUMO solution: the subset-index range [h_lo, h_hi] forming DH.
/// Subsets below h_lo are D- (auto unmatch); above h_hi are D+ (auto match).
/// An empty DH is encoded by empty=true (pure machine labeling around the
/// split point h_lo: below -> unmatch, at/above -> match).
struct HumoSolution {
  size_t h_lo = 0;
  size_t h_hi = 0;
  bool empty = false;

  /// Number of subsets in DH.
  size_t NumHumanSubsets() const { return empty ? 0 : h_hi - h_lo + 1; }
};

/// Outcome of applying a solution to a workload: the final labeling (after
/// the human verified DH through the oracle) plus cost accounting.
struct ResolutionResult {
  HumoSolution solution;
  /// Final labels parallel to the workload (1 = match).
  std::vector<int> labels;
  /// Distinct pairs the human inspected across the whole pipeline
  /// (sampling + DH verification).
  size_t human_cost = 0;
  /// human_cost / |D|, the psi of Tables V/VI.
  double human_cost_fraction = 0.0;
};

/// Applies a solution: labels D- unmatch, D+ match, and asks the oracle for
/// every pair of DH. The oracle keeps accumulating cost across phases, so
/// sampling cost spent during optimization is included in the returned
/// totals.
ResolutionResult ApplySolution(const SubsetPartition& partition,
                               const HumoSolution& solution, Oracle* oracle);

/// Renders "DH = subsets [lo, hi] (k subsets, p pairs)" for logs and benches.
std::string DescribeSolution(const SubsetPartition& partition,
                             const HumoSolution& solution);

}  // namespace humo::core
