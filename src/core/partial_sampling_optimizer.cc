#include "core/partial_sampling_optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "common/env.h"
#include "common/random.h"

namespace humo::core {
namespace {

/// Leave-one-out calibration of the fitted GP: for each sampled subset,
/// predict its observed proportion from the other samples and compare the
/// squared residual to the LOO predictive variance. The mean standardized
/// squared residual is 1 for a perfectly calibrated model; larger values
/// mean the GP misses its own pins by more than its posterior admits —
/// typically in convex onset regions of sparse match tails — and every
/// range bound should be widened accordingly. Uses the closed form
///   r_k = alpha_k / (K^-1)_kk,   var_k = 1 / (K^-1)_kk
/// with K the noisy training Gram matrix.
double LooVarianceInflation(const gp::GpRegression& gp,
                            const SubsetPartition& partition,
                            const std::vector<stats::Stratum>& strata,
                            const std::vector<size_t>& train,
                            const PartialSamplingOptions& options,
                            double scatter_variance) {
  const size_t k = train.size();
  if (k < 4) return 1.0;
  std::vector<double> xs(k), ys(k);
  for (size_t t = 0; t < k; ++t) {
    xs[t] = partition[train[t]].avg_similarity;
    ys[t] = strata[train[t]].proportion();
  }
  double y_mean = 0.0;
  for (double y : ys) y_mean += y;
  y_mean /= static_cast<double>(k);

  linalg::Matrix gram = gp.kernel().GramSymmetric(xs);
  gram.AddToDiagonal(options.gp_noise_floor);
  for (size_t t = 0; t < k; ++t) {
    gram(t, t) +=
        strata[train[t]].proportion_variance() + scatter_variance;
  }
  auto chol = linalg::Cholesky::Factor(gram);
  if (!chol.ok()) return 1.0;
  linalg::Vector centered(k);
  for (size_t t = 0; t < k; ++t) centered[t] = ys[t] - y_mean;
  const linalg::Vector alpha = chol->Solve(centered);
  const linalg::Matrix inv = chol->Solve(linalg::Matrix::Identity(k));

  std::vector<double> standardized;
  standardized.reserve(k);
  for (size_t t = 0; t < k; ++t) {
    const double precision = inv(t, t);
    if (precision <= 0.0) continue;
    const double residual = alpha[t] / precision;  // y_t - loo_mean_t
    const double var = 1.0 / precision;            // loo predictive variance
    standardized.push_back(residual * residual / var);
  }
  if (standardized.size() < 4) return 1.0;
  // Median of chi^2_1 is ~0.455; the ratio is ~1 for a calibrated model.
  // The median resists a handful of honestly-noisy transition pins while
  // still catching systematic misfit that spans many pins (the sparse-tail
  // onset pathology).
  std::nth_element(standardized.begin(),
                   standardized.begin() + standardized.size() / 2,
                   standardized.end());
  const double med = standardized[standardized.size() / 2];
  return std::clamp(med / 0.455, 1.0, 25.0);
}

/// Robust estimate of the independent per-subset scatter variance (the
/// sigma^2 of the paper's synthetic generator) from the sampled subsets'
/// observed proportions: second differences of consecutive observations
/// cancel the smooth latent trend, and the median over triples resists the
/// transition band's genuine curvature. For a pure second difference of
/// i.i.d. N(0, s^2) scatter, Var(d) = 6 s^2 and median(d^2) ~ 0.455 * 6 s^2.
double EstimateScatterVariance(const SubsetPartition& partition,
                               const std::vector<stats::Stratum>& strata,
                               const std::vector<size_t>& train) {
  if (train.size() < 4) return 0.0;
  std::vector<double> d2;
  for (size_t t = 1; t + 1 < train.size(); ++t) {
    const double y0 = strata[train[t - 1]].proportion();
    const double y1 = strata[train[t]].proportion();
    const double y2 = strata[train[t + 1]].proportion();
    (void)partition;
    const double d = y2 - 2.0 * y1 + y0;
    d2.push_back(d * d);
  }
  std::nth_element(d2.begin(), d2.begin() + d2.size() / 2, d2.end());
  const double med = d2[d2.size() / 2];
  const double var = med / (6.0 * 0.455);
  return std::clamp(var, 0.0, 0.25);
}

/// True unless HUMO_GP_INCREMENTAL=0: warm-start GP refits from the
/// previous round's winner instead of re-running the hyperparameter grid
/// from scratch. Read per call so tests can flip the flag between runs.
bool GpIncrementalEnabled() {
  return GetEnvInt64("HUMO_GP_INCREMENTAL", 1) != 0;
}

/// Attempts to serve a refit round from the context's round-over-round
/// state: if the requested training set is the previous one plus appended
/// observations (nothing removed, nothing re-observed), the previous
/// winner's factor is extended via a rank-k Cholesky append and kept as
/// long as its per-datum log marginal likelihood has not degraded past
/// `options.gp_warm_lml_slack`. Returns nullopt when the round must run
/// the full grid.
std::optional<gp::GpRegression> TryWarmStart(
    EstimationContext* ctx, const SubsetPartition& partition,
    const std::vector<stats::Stratum>& strata,
    const std::vector<size_t>& sampled_indices,
    const PartialSamplingOptions& options) {
  GpFitState* state = ctx->gp_fit_state();
  if (state->model == nullptr) return std::nullopt;
  // The warm path keeps the previous winner's kernel, so a run configured
  // for a different family or noise floor must re-select on the grid.
  if (state->kernel_family != options.kernel_family ||
      state->noise_floor != options.gp_noise_floor)
    return std::nullopt;
  if (state->order.size() > sampled_indices.size()) return std::nullopt;
  // The previous training set must be exactly reusable: every subset it
  // used still sampled, with bitwise-unchanged observation and noise
  // (cached strata never change once taken, so a mismatch means the run
  // changed its noise model — e.g. the scatter refit — or a new context).
  std::vector<char> in_prev(partition.num_subsets(), 0);
  for (size_t t = 0; t < state->order.size(); ++t) {
    const size_t k = state->order[t];
    if (!std::binary_search(sampled_indices.begin(), sampled_indices.end(), k))
      return std::nullopt;
    if (state->ys[t] != strata[k].proportion() ||
        state->noise[t] != strata[k].proportion_variance())
      return std::nullopt;
    in_prev[k] = 1;
  }
  std::vector<size_t> fresh;  // ascending — deterministic append order
  for (size_t k : sampled_indices)
    if (!in_prev[k]) fresh.push_back(k);
  if (fresh.empty()) {
    // Identical training set: the previous winner IS this round's fit.
    ctx->RecordGpWarmStart(0);
    return state->model->Clone();
  }
  std::vector<double> x_new, y_new, noise_new;
  for (size_t k : fresh) {
    x_new.push_back(partition[k].avg_similarity);
    y_new.push_back(strata[k].proportion());
    noise_new.push_back(strata[k].proportion_variance());
  }
  Result<gp::GpRegression> warm =
      state->model->ExtendedWith(x_new, y_new, noise_new);
  if (!warm.ok()) return std::nullopt;  // non-PD append: refactor via grid
  const double per_datum = warm->LogMarginalLikelihood() /
                           static_cast<double>(sampled_indices.size());
  // The acceptance baseline stays anchored at the last GRID selection (it
  // is deliberately not updated here): comparing against the previous warm
  // round instead would let per-round degradations just under the slack
  // compound without bound before any re-selection happened.
  if (per_datum < state->lml_per_datum - options.gp_warm_lml_slack)
    return std::nullopt;  // stale hyperparameters: re-select on the grid
  for (size_t t = 0; t < fresh.size(); ++t) {
    state->order.push_back(fresh[t]);
    state->ys.push_back(y_new[t]);
    state->noise.push_back(noise_new[t]);
  }
  gp::GpRegression out = std::move(*warm);
  state->model = std::make_shared<const gp::GpRegression>(out.Clone());
  ctx->RecordGpWarmStart(fresh.size());
  return out;
}

/// Fits the GP on the sampled subsets, selecting hyperparameters by log
/// marginal likelihood. Observation noise is the per-subset sampling
/// variance plus a homoscedastic floor.
///
/// Candidate length scales are restricted to at least 1.5x the largest gap
/// between adjacent sampled similarities: a shorter scale would interpolate
/// the pins perfectly yet leave every subset inside a gap at full prior
/// variance, which collapses the Eq. 13/14 lower bounds to zero and forces
/// DH toward the whole workload.
///
/// Refinement rounds that only APPEND observations are served incrementally
/// through the context's GpFitState (see TryWarmStart) unless
/// HUMO_GP_INCREMENTAL=0; the scatter refit always re-runs the grid (its
/// noise model differs on every diagonal entry, so no factor is reusable).
Result<gp::GpRegression> FitGp(
    EstimationContext* ctx, const SubsetPartition& partition,
    const std::vector<stats::Stratum>& strata,
    const std::vector<size_t>& sampled_indices,
    const PartialSamplingOptions& options, double scatter_variance = 0.0) {
  const bool incremental = GpIncrementalEnabled() && scatter_variance == 0.0;
  if (incremental) {
    std::optional<gp::GpRegression> warm =
        TryWarmStart(ctx, partition, strata, sampled_indices, options);
    if (warm.has_value()) return std::move(*warm);
  }
  std::vector<double> xs, ys, noise;
  xs.reserve(sampled_indices.size());
  for (size_t k : sampled_indices) {
    xs.push_back(partition[k].avg_similarity);
    ys.push_back(strata[k].proportion());
    // Sampling variance of the observed proportion (zero for a fully
    // enumerated subset — the pin is its exact count) plus the estimated
    // inter-subset scatter. Treating pins this way reproduces the paper's
    // aggregate-trusting bound behavior; the realization uncertainty of
    // UNSAMPLED subsets is carried separately as independent per-subset
    // scatter in the GpSubsetModel (see below), not as pin noise — pin
    // noise would correlate through the latent function and multiply by
    // the full population, making sparse-tail workloads like AB
    // uncertifiable at any reasonable cost.
    noise.push_back(strata[k].proportion_variance() + scatter_variance);
  }
  const std::vector<gp::GpCandidate> grid = gp::GapGuardedGrid(xs);
  gp::GpOptions gp_options;
  gp_options.noise_variance = options.gp_noise_floor;
  gp_options.center_mean = true;
  ctx->RecordGpGridFit();
  Result<gp::GpRegression> fit = gp::SelectGpByMarginalLikelihood(
      xs, ys, grid, options.kernel_family, gp_options, noise);
  if (incremental && fit.ok()) {
    // This grid winner becomes the warm-start baseline for later rounds.
    GpFitState* state = ctx->gp_fit_state();
    state->order = sampled_indices;
    state->ys = std::move(ys);
    state->noise = std::move(noise);
    state->model = std::make_shared<const gp::GpRegression>(fit->Clone());
    state->lml_per_datum = fit->LogMarginalLikelihood() /
                           static_cast<double>(sampled_indices.size());
    state->kernel_family = options.kernel_family;
    state->noise_floor = options.gp_noise_floor;
  }
  return fit;
}

}  // namespace

Result<std::shared_ptr<const PartialSamplingOutcome>> EnsureSamplingOutcome(
    EstimationContext* ctx, const QualityRequirement& req,
    const PartialSamplingOptions& options) {
  if (ctx == nullptr)
    return Status::InvalidArgument("estimation context must not be null");
  std::shared_ptr<const PartialSamplingOutcome> s0 = ctx->sampling_outcome();
  if (s0 != nullptr && s0->req.alpha == req.alpha &&
      s0->req.beta == req.beta && s0->req.theta == req.theta)
    return s0;
  PartialSamplingOptimizer samp(options);
  HUMO_ASSIGN_OR_RETURN(PartialSamplingOutcome fresh,
                        samp.OptimizeDetailed(ctx, req));
  (void)fresh;  // published into the context by OptimizeDetailed
  s0 = ctx->sampling_outcome();
  assert(s0 != nullptr);
  return s0;
}

Result<HumoSolution> PartialSamplingOptimizer::Optimize(
    const SubsetPartition& partition, const QualityRequirement& req,
    Oracle* oracle) const {
  HUMO_ASSIGN_OR_RETURN(PartialSamplingOutcome outcome,
                        OptimizeDetailed(partition, req, oracle));
  return outcome.solution;
}

Result<HumoSolution> PartialSamplingOptimizer::Optimize(
    EstimationContext* ctx, const QualityRequirement& req) const {
  HUMO_ASSIGN_OR_RETURN(PartialSamplingOutcome outcome,
                        OptimizeDetailed(ctx, req));
  return outcome.solution;
}

Result<PartialSamplingOutcome> PartialSamplingOptimizer::OptimizeDetailed(
    const SubsetPartition& partition, const QualityRequirement& req,
    Oracle* oracle) const {
  if (oracle == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  EstimationContext ctx(&partition, oracle);
  return OptimizeDetailed(&ctx, req);
}

Result<PartialSamplingOutcome> PartialSamplingOptimizer::OptimizeDetailed(
    EstimationContext* ctx, const QualityRequirement& req) const {
  if (ctx == nullptr)
    return Status::InvalidArgument("estimation context must not be null");
  if (ctx->oracle() == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  const SubsetPartition& partition = ctx->partition();
  const size_t m = partition.num_subsets();
  if (m == 0) return Status::InvalidArgument("empty workload");
  if (options_.samples_per_subset == 0)
    return Status::InvalidArgument("samples_per_subset must be positive");
  if (!(options_.sample_fraction_lo > 0.0 &&
        options_.sample_fraction_lo <= options_.sample_fraction_hi))
    return Status::InvalidArgument("invalid sampling fraction range");

  Rng rng(options_.seed);
  std::vector<stats::Stratum> strata(m);
  std::vector<bool> sampled(m, false);
  std::vector<size_t> train;  // sampled subset indices, kept sorted

  // ---- Phase 1: Algorithm 1 (Gaussian regression of match proportion). ----
  // Initial training set: j0 = max(4, m*p_l) subsets, placed half
  // equidistantly by subset INDEX (covers the pair-dense similarity
  // regions, where most of D lives) and half equidistantly by SIMILARITY
  // (covers the sparse regions, where the match-proportion curve moves the
  // fastest). Pure index placement starves the sparse transition band of
  // pins; pure similarity placement starves the dense bulk.
  size_t j0 = static_cast<size_t>(
      std::ceil(static_cast<double>(m) * options_.sample_fraction_lo));
  j0 = std::max<size_t>(std::min<size_t>(4, m), std::min(j0, m));
  const size_t budget = std::max(
      j0, static_cast<size_t>(std::floor(static_cast<double>(m) *
                                         options_.sample_fraction_hi)));
  auto take_subset = [&](size_t k) {
    if (sampled[k]) return;
    strata[k] = ctx->SampleSubset(k, options_.samples_per_subset, &rng);
    sampled[k] = true;
    train.insert(std::upper_bound(train.begin(), train.end(), k), k);
  };
  {
    const size_t by_index = (j0 + 1) / 2;
    for (size_t t = 0; t < by_index; ++t) {
      take_subset(by_index == 1
                      ? 0
                      : static_cast<size_t>(std::llround(
                            static_cast<double>(t) *
                            static_cast<double>(m - 1) /
                            static_cast<double>(by_index - 1))));
    }
    const double sim_lo = partition[0].avg_similarity;
    const double sim_hi = partition[m - 1].avg_similarity;
    size_t cursor = 0;
    while (train.size() < j0 && sim_hi > sim_lo) {
      // Next unsampled subset nearest the next equidistant similarity.
      const double target =
          sim_lo + (sim_hi - sim_lo) *
                       (static_cast<double>(cursor) + 0.5) /
                       static_cast<double>(j0);
      ++cursor;
      if (cursor > 2 * j0) break;
      size_t best = m;
      double best_dist = 1e300;
      for (size_t k = 0; k < m; ++k) {
        if (sampled[k]) continue;
        const double d = std::fabs(partition[k].avg_similarity - target);
        if (d < best_dist) {
          best_dist = d;
          best = k;
        }
      }
      if (best < m) take_subset(best);
    }
  }

  HUMO_ASSIGN_OR_RETURN(gp::GpRegression gp,
                        FitGp(ctx, partition, strata, train, options_));

  // Bracket refinement, processed in order of the GP's uncertainty about
  // the bracket's midpoint (pairs-weighted posterior std). Algorithm 1 as
  // printed pops brackets FIFO, but every tested midpoint costs a sampled
  // subset even when the GP already agrees there; under a tight budget the
  // flat brackets then exhaust it before the transition band is ever
  // examined. Prioritizing by uncertainty keeps the epsilon test and the
  // bisection structure while spending the budget where the GP is blind.
  std::vector<std::pair<size_t, size_t>> brackets;
  for (size_t t = 0; t + 1 < train.size(); ++t)
    brackets.emplace_back(train[t], train[t + 1]);

  while (!brackets.empty() && train.size() < budget) {
    // Score every refinable bracket's midpoint in one batched prediction
    // (one Gram build + one blocked solve) instead of a per-midpoint solve;
    // the selection loop below sees bit-identical scores in the same order.
    std::vector<size_t> refinable;
    std::vector<double> mid_sims;
    for (size_t bi = 0; bi < brackets.size(); ++bi) {
      const auto [ia, ib] = brackets[bi];
      if (ib - ia < 2) continue;
      refinable.push_back(bi);
      mid_sims.push_back(partition[ia + (ib - ia) / 2].avg_similarity);
    }
    const std::vector<gp::Prediction> preds = gp.PredictBatch(mid_sims);
    double best_score = -1.0;
    size_t best_idx = brackets.size();
    size_t best_t = refinable.size();
    for (size_t t = 0; t < refinable.size(); ++t) {
      const auto [ia, ib] = brackets[refinable[t]];
      const size_t x = ia + (ib - ia) / 2;
      const double score =
          static_cast<double>(partition[x].size()) * preds[t].stddev();
      if (score > best_score) {
        best_score = score;
        best_idx = refinable[t];
        best_t = t;
      }
    }
    if (best_idx >= brackets.size()) break;  // nothing refinable remains
    const auto [ia, ib] = brackets[best_idx];
    brackets.erase(brackets.begin() + static_cast<long>(best_idx));
    const size_t x = ia + (ib - ia) / 2;
    if (sampled[x]) continue;
    // The winning midpoint's posterior mean was already computed by the
    // batched prediction above (bit-identical to a fresh Predict).
    const double predicted = preds[best_t].mean;
    take_subset(x);
    const double observed = strata[x].proportion();
    if (std::fabs(predicted - observed) >= options_.error_threshold) {
      brackets.emplace_back(ia, x);
      brackets.emplace_back(x, ib);
    }
    HUMO_ASSIGN_OR_RETURN(gp, FitGp(ctx, partition, strata, train, options_));
  }

  // ---- Phase 1b: variance-targeted refinement (implementation extension;
  // DESIGN.md §5). Algorithm 1's epsilon test only checks posterior MEANS at
  // bracket midpoints; subsets whose posterior variance is large (pair-dense
  // gaps, the transition band) can survive it and then dominate the Eq. 20
  // aggregation. Spend any remaining sampling budget on the unsampled
  // subset with the largest bound contribution n_k * std(k).
  while (train.size() < budget) {
    // One batched posterior over all unsampled subsets per round (the m - j
    // per-point solves used to dominate this phase).
    std::vector<size_t> unsampled;
    std::vector<double> unsampled_sims;
    for (size_t k = 0; k < m; ++k) {
      if (sampled[k]) continue;
      unsampled.push_back(k);
      unsampled_sims.push_back(partition[k].avg_similarity);
    }
    const std::vector<gp::Prediction> preds = gp.PredictBatch(unsampled_sims);
    double best_score = 0.0;
    size_t best_k = m;
    for (size_t t = 0; t < unsampled.size(); ++t) {
      const size_t k = unsampled[t];
      const double score =
          static_cast<double>(partition[k].size()) * preds[t].stddev();
      if (score > best_score) {
        best_score = score;
        best_k = k;
      }
    }
    // Stop when no unsampled subset contributes meaningfully (under one
    // pair's worth of uncertainty).
    if (best_k >= m || best_score < 1.0) break;
    strata[best_k] =
        ctx->SampleSubset(best_k, options_.samples_per_subset, &rng);
    sampled[best_k] = true;
    train.insert(std::upper_bound(train.begin(), train.end(), best_k),
                 best_k);
    HUMO_ASSIGN_OR_RETURN(gp, FitGp(ctx, partition, strata, train, options_));
  }

  // ---- Build the subset-level model. ----
  const double scatter = EstimateScatterVariance(partition, strata, train);
  if (scatter > 1e-6) {
    // Refit with the scatter as observation noise so the latent curve does
    // not chase per-subset irregularity (the scatter re-enters the bound
    // computation as independent per-subset variance instead).
    HUMO_ASSIGN_OR_RETURN(
        gp, FitGp(ctx, partition, strata, train, options_, scatter));
  }
  std::vector<double> vs(m), ns(m);
  std::vector<SubsetObservation> obs(m);
  for (size_t k = 0; k < m; ++k) {
    vs[k] = partition[k].avg_similarity;
    ns[k] = static_cast<double>(partition[k].size());
    if (sampled[k] && strata[k].fully_enumerated()) {
      obs[k].exact = true;
      obs[k].proportion = strata[k].proportion();
    }
  }
  // Per-subset scatter: workload irregularity plus the binomial variance of
  // the subset's realized count around the latent rate (smoothed so rate ~0
  // still carries width). Latent rates for all non-exact subsets come from
  // one batched prediction.
  std::vector<double> scatter_vec(m, 0.0);
  std::vector<size_t> inexact;
  std::vector<double> inexact_sims;
  for (size_t k = 0; k < m; ++k) {
    if (obs[k].exact) continue;
    inexact.push_back(k);
    inexact_sims.push_back(vs[k]);
  }
  const std::vector<gp::Prediction> rate_preds = gp.PredictBatch(inexact_sims);
  for (size_t t = 0; t < inexact.size(); ++t) {
    const size_t k = inexact[t];
    const double nk = ns[k];
    const double raw = std::clamp(rate_preds[t].mean, 0.0, 1.0);
    const double p = std::max(raw, 0.5 / nk);
    scatter_vec[k] = scatter + p * (1.0 - p) / nk;
  }
  const double inflation = LooVarianceInflation(gp, partition, strata, train,
                                                options_, scatter);
  auto model = std::make_shared<GpSubsetModel>(
      std::move(gp), std::move(vs), std::move(ns), std::move(obs),
      std::move(scatter_vec), inflation);

  // ---- Phase 2: bound search with GP confidence intervals. ----
  const double conf = std::sqrt(req.theta);
  const double alpha = std::min(1.0, req.alpha + options_.quality_margin);
  const double beta = std::min(1.0, req.beta + options_.quality_margin);

  // Recall: maximal i with beta <= lb([i,m-1]) / (ub([0,i-1]) + lb([i,m-1])).
  // Incremental accumulators: keep = [i, m-1], lost = [0, i-1].
  GpRangeAccumulator keep(model.get()), lost(model.get());
  keep.SetRange(0, m - 1);
  lost.Clear();
  auto recall_ok = [&]() {
    const double lb_keep = keep.LowerBound(conf);
    const double ub_lost = lost.IsEmpty() ? 0.0 : lost.UpperBound(conf);
    const double denom = ub_lost + lb_keep;
    if (denom <= 0.0) return true;
    return beta <= lb_keep / denom;
  };
  size_t i = 0;
  while (i + 1 < m) {
    // Tentatively move the lower bound right: subset i leaves "keep", joins
    // "lost".
    keep.ShrinkLeft();
    if (lost.IsEmpty()) lost.SetRange(0, 0);
    else lost.ExtendRight();
    if (recall_ok()) {
      ++i;
    } else {
      // Revert.
      keep.ExtendLeft();
      lost.ShrinkRight();
      break;
    }
  }

  // Precision: minimal j >= i with
  //   alpha <= (lb([i,j]) + lb([j+1,m-1])) / (lb([i,j]) + n[j+1,m-1]).
  GpRangeAccumulator dh(model.get()), dplus(model.get());
  dh.SetRange(i, m - 1);
  dplus.Clear();
  auto precision_ok = [&]() {
    if (dplus.IsEmpty()) return true;
    const double lb_dh = dh.IsEmpty() ? 0.0 : dh.LowerBound(conf);
    const double lb_dp = dplus.LowerBound(conf);
    const double n_dp = dplus.Population();
    const double denom = lb_dh + n_dp;
    if (denom <= 0.0) return true;
    return alpha <= (lb_dh + lb_dp) / denom;
  };
  size_t j = m - 1;
  while (j > i) {
    // Tentatively move the upper bound left: subset j leaves DH, joins D+.
    dh.ShrinkRight();
    if (dplus.IsEmpty()) dplus.SetRange(j, j);
    else dplus.ExtendLeft();
    if (precision_ok()) {
      --j;
    } else {
      dh.ExtendRight();
      dplus.ShrinkLeft();
      break;
    }
  }

  PartialSamplingOutcome outcome;
  outcome.solution.h_lo = i;
  outcome.solution.h_hi = j;
  outcome.solution.empty = false;
  outcome.model = std::move(model);
  outcome.strata = std::move(strata);
  outcome.sampled = std::move(sampled);
  outcome.req = req;
  // Publish for later consumers on the same context (HYBR's re-extension,
  // chained bench runs): they start from this model and these strata
  // without re-asking the oracle.
  ctx->StoreSamplingOutcome(
      std::make_shared<const PartialSamplingOutcome>(outcome));
  return outcome;
}

}  // namespace humo::core
