#include "core/risk_aware_optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

namespace humo::core {
namespace {

/// Priority-queue entry: one subset's current per-pair risk. Entries go
/// stale when the subset's evidence changes; `generation` marks the evidence
/// state the risk was computed against, and stale pops are discarded (lazy
/// deletion — cheaper than a decrease-key heap at these sizes).
struct QueueEntry {
  double risk = 0.0;
  size_t subset = 0;
  size_t generation = 0;
};

/// Max-heap by risk; ties broken toward the LOWER subset index so the pop
/// order — and with it the whole inspection trace — is deterministic.
struct QueueLess {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.risk != b.risk) return a.risk < b.risk;
    return a.subset > b.subset;
  }
};

}  // namespace

Result<RiskAwareOutcome> RiskAwareOptimizer::Resolve(
    const SubsetPartition& partition, const QualityRequirement& req,
    Oracle* oracle) const {
  if (oracle == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  EstimationContext ctx(&partition, oracle);
  return Resolve(&ctx, req);
}

Result<RiskAwareOutcome> RiskAwareOptimizer::Resolve(
    EstimationContext* ctx, const QualityRequirement& req) const {
  if (ctx == nullptr)
    return Status::InvalidArgument("estimation context must not be null");
  if (ctx->oracle() == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  if (ctx->partition().num_subsets() == 0)
    return Status::InvalidArgument("empty workload");
  // S0: reuse a stored partial-sampling outcome certifying the same
  // requirement, or run SAMP here (publishing its outcome as a side
  // effect) — the same reuse discipline HYBR applies.
  HUMO_ASSIGN_OR_RETURN(std::shared_ptr<const PartialSamplingOutcome> s0,
                        EnsureSamplingOutcome(ctx, req, options_.sampling));
  HUMO_ASSIGN_OR_RETURN(RiskAwareOutcome out,
                        ResolveWithin(ctx, req, s0->solution, s0->model.get()));
  if (!out.certified) {
    // Never hand back a partially machine-labeled DH without a
    // certificate: fall back to full DH inspection, which is exactly the
    // SAMP labeling (S0 certified it) at exactly SAMP's cost.
    out.resolution = ApplySolution(ctx->partition(), out.solution,
                                   ctx->oracle());
    out.inspection.pairs_machine_labeled = 0;
  }
  return out;
}

Result<RiskAwareOutcome> RiskAwareOptimizer::ResolveWithin(
    EstimationContext* ctx, const QualityRequirement& req,
    const HumoSolution& dh, const GpSubsetModel* model) const {
  if (ctx == nullptr)
    return Status::InvalidArgument("estimation context must not be null");
  if (ctx->oracle() == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  if (model == nullptr)
    return Status::InvalidArgument("subset model must not be null");
  const SubsetPartition& partition = ctx->partition();
  Oracle* oracle = ctx->oracle();
  const size_t m = partition.num_subsets();
  if (m == 0) return Status::InvalidArgument("empty workload");
  if (model->num_subsets() != m)
    return Status::InvalidArgument("model does not describe this partition");
  if (options_.batch_pairs == 0)
    return Status::InvalidArgument("batch_pairs must be positive");
  if (dh.empty) {
    // Nothing to inspect: pure machine labeling around the split point.
    RiskAwareOutcome out;
    out.solution = dh;
    out.resolution = ApplySolution(partition, dh, oracle);
    return out;
  }
  if (dh.h_lo > dh.h_hi || dh.h_hi >= m)
    return Status::InvalidArgument("invalid DH range");
  const size_t i = dh.h_lo;
  const size_t j = dh.h_hi;

  const double conf = std::sqrt(req.theta);
  const double alpha =
      std::min(1.0, req.alpha + options_.sampling.quality_margin);
  const double beta =
      std::min(1.0, req.beta + options_.sampling.quality_margin);

  // Incremental D+/D- bounds at the same confidence SAMP certified with.
  GpRangeAccumulator dplus(model), dminus(model);
  if (j + 1 < m) dplus.SetRange(j + 1, m - 1);
  if (i > 0) dminus.SetRange(0, i - 1);

  RiskModel risk(model, i, j, options_.risk);
  std::vector<std::vector<size_t>> pending =
      InitRiskEvidence(partition, *oracle, &risk, options_.seed);

  // Priority queue of subsets by conservative per-pair risk (lazy
  // deletion, see QueueEntry). All pairs of one subset share a risk score —
  // subset statistics are the finest granularity the models resolve — so
  // the per-pair queue the paper describes degenerates to batched pops of
  // the riskiest subset, which is also what keeps human interaction batched
  // (one crowd task per pop, not one round-trip per pair).
  std::vector<size_t> generation(j - i + 1, 0);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, QueueLess> queue;
  for (size_t k = i; k <= j; ++k) {
    if (!pending[k - i].empty())
      queue.push({risk.PairRisk(k, conf), k, 0});
  }

  RiskInspectionStats stats;
  std::vector<char> touched(j - i + 1, 0);
  RiskCertificate bounds = CertifyRange(risk, i, j, dplus, dminus, conf);
  while (!bounds.Meets(alpha, beta)) {
    // Fast-fail: when even the POTENTIAL certificate (every remaining pair
    // resolving to its posterior mean — an upper envelope of the actual
    // bounds) misses a target, further inspection inside this range is
    // near-certainly wasted; stop and report uncertified so the caller
    // (HYBR's re-growth loop) can widen the range instead.
    if (!CertifyRangePotential(risk, i, j, dplus, dminus, conf)
             .Meets(alpha, beta))
      break;
    // Pop the riskiest subset, discarding entries whose evidence changed
    // since they were pushed.
    size_t k = m;
    while (!queue.empty()) {
      const QueueEntry top = queue.top();
      queue.pop();
      if (top.generation != generation[top.subset - i]) continue;
      if (pending[top.subset - i].empty()) continue;
      k = top.subset;
      break;
    }
    if (k == m) break;  // DH exhausted: labeling now equals full inspection
    std::vector<size_t>& todo = pending[k - i];
    const size_t take = std::min(options_.batch_pairs, todo.size());
    const std::vector<size_t> batch(todo.end() - static_cast<long>(take),
                                    todo.end());
    todo.resize(todo.size() - take);
    const size_t batch_matches = ctx->InspectSubsetPairs(k, batch);
    const size_t inspected = partition[k].size() - todo.size();
    risk.SetEvidence(k, inspected, risk.InspectedMatches(k) + batch_matches);
    ++generation[k - i];
    if (!todo.empty())
      queue.push({risk.PairRisk(k, conf), k, generation[k - i]});
    stats.pairs_inspected += take;
    ++stats.batches;
    if (!touched[k - i]) {
      touched[k - i] = 1;
      ++stats.subsets_touched;
    }
    bounds = CertifyRange(risk, i, j, dplus, dminus, conf);
  }
  stats.pairs_machine_labeled = risk.TotalUninspected();

  RiskAwareOutcome out;
  out.solution = dh;
  out.inspection = stats;
  out.precision_lb = bounds.precision_lb;
  out.recall_lb = bounds.recall_lb;
  out.certified = bounds.Meets(alpha, beta);

  // Final labeling WITHOUT further oracle traffic: D- unmatch, D+ match;
  // inside DH every answered pair keeps its human label (free lookups) and
  // the uninspected remainder carries its subset's machine label.
  const data::Workload& workload = partition.workload();
  out.resolution.solution = dh;
  out.resolution.labels.assign(workload.size(), 0);
  const size_t last_human = partition[j].end;  // exclusive
  for (size_t idx = last_human; idx < workload.size(); ++idx)
    out.resolution.labels[idx] = 1;
  for (size_t k = i; k <= j; ++k) {
    const Subset& s = partition[k];
    const int machine = risk.MachineLabelsMatch(k) ? 1 : 0;
    for (size_t idx = s.begin; idx < s.end; ++idx) {
      out.resolution.labels[idx] =
          oracle->WasAsked(idx) ? (oracle->CachedAnswer(idx) ? 1 : 0)
                                : machine;
    }
  }
  out.resolution.human_cost = oracle->cost();
  out.resolution.human_cost_fraction = oracle->CostFraction();
  return out;
}

}  // namespace humo::core
