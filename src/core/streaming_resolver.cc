#include "core/streaming_resolver.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace humo::core {
namespace {

/// Grid fit over provisional pins, under the same gap guard as the SAMP
/// certification fit (gp::GapGuardedGrid) so the serving model and the
/// certification model can never diverge on the length-scale floor.
Result<gp::GpRegression> FitProvisionalGp(const std::vector<double>& xs,
                                          const std::vector<double>& ys,
                                          std::vector<double> noise,
                                          const PartialSamplingOptions& sopt) {
  gp::GpOptions options;
  options.noise_variance = sopt.gp_noise_floor;
  options.center_mean = true;
  return gp::SelectGpByMarginalLikelihood(xs, ys, gp::GapGuardedGrid(xs),
                                          sopt.kernel_family, options,
                                          std::move(noise));
}

double ClampUnit(double v) { return std::min(1.0, std::max(0.0, v)); }

}  // namespace

StreamingResolver::StreamingResolver(StreamingOptions options,
                                     QualityRequirement req)
    : options_(options),
      req_(req),
      cumulative_(),
      partition_(&cumulative_, options_.subset_size),
      oracle_(&cumulative_, options_.oracle_error_rate, options_.oracle_seed),
      ctx_(&partition_, &oracle_) {}

const EpochReport& StreamingResolver::Ingest(data::Shard shard) {
  EpochReport report;
  report.epoch = epochs_ingested_++;
  report.pairs_arrived = shard.pairs.size();
  // An empty shard leaves every piece of index-keyed state untouched —
  // exactly what pure_append advertises.
  report.pure_append = true;

  if (!shard.pairs.empty()) {
    const size_t old_n = cumulative_.size();
    // Number of old subsets whose [begin, end) content a pure tail append
    // provably preserves: every full-size subset except the last one built,
    // which absorbed the remainder and changes when pairs land after it.
    const size_t old_full = old_n / options_.subset_size;
    const size_t preserved = old_full >= 1 ? old_full - 1 : 0;

    const auto min_it = std::min_element(shard.pairs.begin(),
                                         shard.pairs.end(), data::PairLess);
    const bool will_append =
        old_n == 0 || !data::PairLess(*min_it, cumulative_[old_n - 1]);

    // An interior merge shifts pair indices, so the oracle's index-keyed
    // answers must be re-keyed. Snapshot them against the OLD order first.
    struct Evidence {
      data::InstancePair pair;
      bool answer;
    };
    std::vector<Evidence> evidence;
    if (!will_append) {
      const auto snapshot = oracle_.AnswerSnapshot();
      evidence.reserve(snapshot.size());
      for (const auto& [index, answer] : snapshot)
        evidence.push_back({cumulative_[index], answer});
    }

    const bool pure_append = cumulative_.MergeSorted(std::move(shard.pairs));
    assert(pure_append == will_append);
    report.pure_append = pure_append;

    if (pure_append) {
      partition_.RebuildTail(preserved);
      ctx_.OnPartitionExtended(preserved);
      // Pair indices are unchanged: the oracle's answers stay valid as-is.
    } else {
      partition_.Rebuild();
      ctx_.OnPartitionExtended(0);
      retired_requests_ += oracle_.total_requests();
      retired_duplicates_ += oracle_.duplicate_requests();
      oracle_.Reset();
      for (const Evidence& e : evidence)
        oracle_.Preload(IndexOf(e.pair), e.answer);
    }
  }

  RefreshProvisional(&report);
  report.pairs_total = cumulative_.size();
  report.num_subsets = partition_.num_subsets();
  report.evidence_pairs = total_inspections();
  reports_.push_back(report);
  return reports_.back();
}

Result<StreamingCertificate> StreamingResolver::Certify() {
  if (cumulative_.empty())
    return Status::InvalidArgument("streaming certify on an empty workload");

  std::vector<char> answered_before(cumulative_.size(), 0);
  for (const auto& [index, answer] : oracle_.AnswerSnapshot()) {
    (void)answer;
    answered_before[index] = 1;
  }
  const size_t cost_before = oracle_.cost();

  StreamingCertificate cert;
  cert.req = req_;
  cert.epoch = epochs_ingested_;
  switch (options_.certifier) {
    case StreamCertifier::kSamp: {
      PartialSamplingOptimizer samp(options_.sampling);
      HUMO_ASSIGN_OR_RETURN(HumoSolution sol, samp.Optimize(&ctx_, req_));
      cert.solution = sol;
      cert.resolution = ApplySolution(partition_, sol, &oracle_);
      cert.certified = true;
      break;
    }
    case StreamCertifier::kHybr: {
      HybridOptions hybrid = options_.hybrid;
      hybrid.sampling = options_.sampling;
      HUMO_ASSIGN_OR_RETURN(HumoSolution sol,
                            HybridOptimizer(hybrid).Optimize(&ctx_, req_));
      cert.solution = sol;
      cert.resolution = ApplySolution(partition_, sol, &oracle_);
      cert.certified = true;
      break;
    }
    case StreamCertifier::kRisk: {
      RiskAwareOptions risk = options_.risk;
      risk.sampling = options_.sampling;
      HUMO_ASSIGN_OR_RETURN(RiskAwareOutcome out,
                            RiskAwareOptimizer(risk).Resolve(&ctx_, req_));
      cert.solution = out.solution;
      cert.resolution = out.resolution;
      cert.certified = out.certified;
      cert.precision_lb = out.precision_lb;
      cert.recall_lb = out.recall_lb;
      break;
    }
  }

  cert.fresh_inspections = oracle_.cost() - cost_before;
  if (!cert.solution.empty && partition_.num_subsets() > 0) {
    const size_t lo = partition_[cert.solution.h_lo].begin;
    const size_t hi = partition_[cert.solution.h_hi].end;
    for (size_t i = lo; i < hi; ++i)
      cert.reused_answers += answered_before[i] != 0;
  }
  cert.total_inspections = total_inspections();
  last_certificate_ = cert;

  // Certification bought fresh evidence; fold it into the serving state.
  RefreshProvisional(nullptr);
  return cert;
}

void StreamingResolver::RefreshProvisional(EpochReport* report) {
  const size_t m = partition_.num_subsets();
  const size_t n = cumulative_.size();

  evidence_strata_.assign(m, stats::Stratum{});
  for (size_t k = 0; k < m; ++k) {
    const Subset& s = partition_[k];
    stats::Stratum st;
    st.population = s.size();
    for (size_t i = s.begin; i < s.end; ++i) {
      if (!oracle_.WasAsked(i)) continue;
      ++st.sample_size;
      st.sample_positives += oracle_.CachedAnswer(i);
    }
    evidence_strata_[k] = st;
  }

  // Carried pins stay valid only while their subsets' contents AND
  // coverage are untouched (pure tail appends with no new answers inside):
  // same input, same population, same sample count, same proportion.
  // Anything else voids the model — an interior merge or fresh inspections
  // inside a pinned subset force a grid refit over the new pin set.
  bool valid = true;
  for (const ProvPin& p : prov_pins_) {
    if (p.subset >= m) {
      valid = false;
      break;
    }
    const stats::Stratum& st = evidence_strata_[p.subset];
    if (st.population != p.population || st.sample_size != p.sample_size ||
        partition_[p.subset].avg_similarity != p.x || st.proportion() != p.y) {
      valid = false;
      break;
    }
  }
  if (!valid) {
    prov_pins_.clear();
    prov_model_.reset();
  }

  std::vector<char> pinned(m, 0);
  for (const ProvPin& p : prov_pins_) pinned[p.subset] = 1;
  std::vector<ProvPin> fresh;
  for (size_t k = 0; k < m; ++k) {
    const stats::Stratum& st = evidence_strata_[k];
    if (pinned[k] != 0 || st.population == 0) continue;
    if (!st.fully_enumerated() &&
        st.sample_size < options_.provisional_pin_min_samples)
      continue;
    fresh.push_back({k, partition_[k].avg_similarity, st.proportion(),
                     st.proportion_variance(), st.population,
                     st.sample_size});
  }

  bool warm_extended = false;
  if (!fresh.empty() &&
      prov_pins_.size() + fresh.size() >= options_.provisional_min_pins) {
    if (prov_model_.has_value()) {
      // Only new pins arrived on top of an intact training set: extend the
      // factor by the appended rows instead of re-running the grid.
      std::vector<double> xs, ys, noise;
      xs.reserve(fresh.size());
      ys.reserve(fresh.size());
      noise.reserve(fresh.size());
      for (const ProvPin& p : fresh) {
        xs.push_back(p.x);
        ys.push_back(p.y);
        noise.push_back(p.noise);
      }
      Result<gp::GpRegression> extended =
          prov_model_->ExtendedWith(xs, ys, noise);
      if (extended.ok()) {
        prov_model_ = std::move(*extended);
        prov_pins_.insert(prov_pins_.end(), fresh.begin(), fresh.end());
        warm_extended = true;
        ++prov_gp_extensions_;
      } else {
        prov_model_.reset();
      }
    }
    if (!prov_model_.has_value()) {
      std::vector<ProvPin> all = prov_pins_;
      all.insert(all.end(), fresh.begin(), fresh.end());
      std::vector<double> xs, ys, noise;
      xs.reserve(all.size());
      ys.reserve(all.size());
      noise.reserve(all.size());
      for (const ProvPin& p : all) {
        xs.push_back(p.x);
        ys.push_back(p.y);
        noise.push_back(p.noise);
      }
      Result<gp::GpRegression> fit =
          FitProvisionalGp(xs, ys, std::move(noise), options_.sampling);
      if (fit.ok()) {
        prov_model_ = std::move(*fit);
        prov_pins_ = std::move(all);
        ++prov_gp_grid_fits_;
      }
      // On failure the pins stay unpinned; a later epoch retries with more
      // evidence.
    }
  }

  // Provisional labeling + plug-in quality estimates.
  provisional_labels_.assign(n, 0);
  std::vector<gp::Prediction> preds;
  if (prov_model_.has_value()) {
    std::vector<double> xs(m);
    for (size_t k = 0; k < m; ++k) xs[k] = partition_[k].avg_similarity;
    preds = prov_model_->PredictBatch(xs);
  }
  const double mid =
      n == 0 ? 0.0
             : 0.5 * (cumulative_[0].similarity +
                      cumulative_[n - 1].similarity);
  double exp_tp = 0.0, exp_pos = 0.0, exp_true = 0.0;
  for (size_t k = 0; k < m; ++k) {
    const Subset& s = partition_[k];
    const stats::Stratum& st = evidence_strata_[k];
    const double q = prov_model_.has_value()
                         ? ClampUnit(preds[k].mean)
                         : (s.avg_similarity >= mid ? 1.0 : 0.0);
    const bool label_match = q >= 0.5;
    for (size_t i = s.begin; i < s.end; ++i) {
      provisional_labels_[i] = oracle_.WasAsked(i)
                                   ? (oracle_.CachedAnswer(i) ? 1 : 0)
                                   : (label_match ? 1 : 0);
    }
    const double answered_pos = static_cast<double>(st.sample_positives);
    const double unanswered =
        static_cast<double>(st.population - st.sample_size);
    exp_tp += answered_pos + (label_match ? unanswered * q : 0.0);
    exp_pos += answered_pos + (label_match ? unanswered : 0.0);
    exp_true += answered_pos + unanswered * q;
  }
  if (report != nullptr) {
    report->gp_warm_extended = warm_extended;
    report->has_estimate = prov_model_.has_value();
    report->est_precision = exp_pos > 0.0 ? exp_tp / exp_pos : 1.0;
    report->est_recall = exp_true > 0.0 ? exp_tp / exp_true : 1.0;
  }
}

bool StreamingResolver::PreloadEvidence(const data::InstancePair& pair,
                                        bool answer) {
  const size_t idx = cumulative_.IndexOfSorted(pair);
  if (idx >= cumulative_.size()) return false;
  oracle_.Preload(idx, answer);
  return true;
}

EpochReport StreamingResolver::RefreshServing() {
  EpochReport report;
  report.epoch = epochs_ingested_;
  RefreshProvisional(&report);
  report.pairs_total = cumulative_.size();
  report.num_subsets = partition_.num_subsets();
  report.evidence_pairs = total_inspections();
  return report;
}

size_t StreamingResolver::IndexOf(const data::InstancePair& pair) const {
  // Column-based binary search over the sorted similarity column — no AoS
  // materialization of the cumulative workload.
  const size_t idx = cumulative_.IndexOfSorted(pair);
  if (idx < cumulative_.size() && cumulative_.IsMatch(idx) == pair.is_match) {
    return idx;
  }
  // A miss means a merge dropped or mutated a pair the human already
  // answered — re-keying the answer anywhere else would seed a WRONG
  // verdict onto an arbitrary pair and silently corrupt every later
  // certificate. Fail loudly, including in release builds.
  std::fprintf(stderr,
               "StreamingResolver: evidence pair (%u, %u, sim=%.17g) missing "
               "from the cumulative workload after a merge\n",
               pair.left_id, pair.right_id, pair.similarity);
  std::abort();
}

}  // namespace humo::core
