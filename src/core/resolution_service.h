#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/streaming_resolver.h"
#include "data/workload.h"
#include "data/workload_stream.h"
#include "entity/entity_clustering.h"

namespace humo::core {

/// Plug-in quality summary a snapshot serves alongside its labels.
struct QualityEstimate {
  /// True once enough evidence exists for a provisional GP estimate.
  bool has_estimate = false;
  double precision = 0.0;
  double recall = 0.0;
  /// True when the snapshot's labels come from the latest certificate and
  /// no pairs arrived after it — the guarantee (not just the estimate)
  /// covers exactly what readers see.
  bool certified = false;
};

/// One immutable published view of the resolution state: everything a
/// reader needs, copied out of the resolver at an epoch boundary and never
/// mutated afterwards. Readers hold it through a shared_ptr, so a snapshot
/// outlives its epoch for as long as anyone still reads it.
class ResolutionSnapshot {
 public:
  /// Publish sequence number, strictly increasing across snapshots.
  size_t version() const { return version_; }
  size_t epochs_ingested() const { return epochs_ingested_; }
  size_t pairs() const { return labels_.size(); }
  size_t num_subsets() const { return num_subsets_; }
  size_t subset_size() const { return subset_size_; }
  /// Distinct pairs with a human answer folded in when this was published.
  size_t evidence_pairs() const { return evidence_pairs_; }
  const QualityEstimate& quality() const { return quality_; }

  /// Label of every pair in cumulative sorted order: carried human answers
  /// verbatim, machine labels elsewhere (certificate labels when
  /// quality().certified, the provisional model otherwise).
  const std::vector<int>& labels() const { return labels_; }
  int LabelOf(size_t index) const { return labels_[index]; }

  /// Index of `pair` by identity in this snapshot's sorted order, or
  /// nullopt when the pair had not arrived yet. Binary search over the
  /// snapshot's own workload copy — the "have I seen this entity before?"
  /// serving question, answered without touching mutable state.
  std::optional<size_t> Find(const data::InstancePair& pair) const {
    const size_t idx = workload_->IndexOfSorted(pair);
    if (idx >= workload_->size()) return std::nullopt;
    return idx;
  }

  /// Batch lookup: labels for `indices`, parallel to the input.
  std::vector<int> BatchLabels(const std::vector<size_t>& indices) const {
    std::vector<int> out(indices.size());
    for (size_t t = 0; t < indices.size(); ++t) out[t] = labels_[indices[t]];
    return out;
  }

  /// This snapshot's own sorted workload copy (identity columns; ground
  /// truth stays behind the Oracle contract).
  const data::Workload& workload() const { return *workload_; }

  /// ENTITY VIEW of this snapshot: the canonical clustering of the served
  /// labels, built once at publish time and frozen with the rest of the
  /// snapshot. Reads are wait-free — a binary search / CSR slice over
  /// immutable storage, same contract as labels().
  const entity::EntityClustering& entities() const { return *entities_; }

  /// Entity of `record` under this snapshot's labels, or nullopt when the
  /// record has not been mentioned by any ingested pair.
  std::optional<uint32_t> EntityOf(entity::RecordRef record) const {
    return entities_->EntityOf(record);
  }

  /// Members of entity `entity`, ascending record order. The view points
  /// into the snapshot's storage — valid while the snapshot is held.
  entity::EntityClustering::MemberRange MembersOf(uint32_t entity) const {
    return entities_->MembersOf(entity);
  }

  size_t num_entities() const { return entities_->num_entities(); }

  /// FNV-1a over the scalar fields and the label bytes, computed once at
  /// publish time. Validate() recomputes it — the stress tests' proof that
  /// no reader can observe a torn or half-published snapshot.
  uint64_t checksum() const { return checksum_; }
  bool Validate() const { return ComputeChecksum() == checksum_; }

 private:
  friend class ResolutionService;

  uint64_t ComputeChecksum() const;

  size_t version_ = 0;
  size_t epochs_ingested_ = 0;
  size_t num_subsets_ = 0;
  size_t subset_size_ = 0;
  size_t evidence_pairs_ = 0;
  QualityEstimate quality_;
  std::vector<int> labels_;
  /// Deep copy of the cumulative workload at publish time (identity lookup
  /// needs the sorted similarity/id columns of THIS epoch, not the moving
  /// resolver ones). Shared so later snapshots of an unchanged workload
  /// could alias it; today every publish copies.
  std::shared_ptr<const data::Workload> workload_;
  /// Entity clustering of labels_ over workload_, built at publish time.
  std::shared_ptr<const entity::EntityClustering> entities_;
  uint64_t checksum_ = 0;
};

/// Asynchronous human-work queue between a certifier and its (simulated)
/// crowd: the pending-review-queue pattern. Two kinds of traffic flow
/// through the same worker threads:
///
///  * Certification batches (InspectBlocking): the certifier enqueues the
///    distinct unanswered indices of one inspection batch and blocks until
///    the crowd has answered all of them. Workers claim fixed-size chunks,
///    so one large batch is answered by several humans concurrently and
///    chunk completions arrive out of order — answers land in
///    index-addressed slots, so the assembled batch is deterministic.
///  * Review requests (SubmitReview): fire-and-forget inspection of pairs
///    someone flagged for human review. Verdicts are computed at submit
///    time (an answer is a pure function of the question — see
///    Oracle::InlineAnswer) but ARRIVE out of band: workers deliver them to
///    the completed buffer whenever they get to them, and the service folds
///    the completed batch in at the next epoch boundary.
class AsyncOracleQueue {
 public:
  /// Computes the crowd's verdict for a pair index. Called by worker
  /// threads for certification batches; must be thread-safe and pure
  /// (Oracle::InlineAnswer is).
  using ComputeFn = std::function<bool(size_t)>;

  struct CompletedReview {
    data::InstancePair pair;
    bool answer = false;
  };

  /// `workers` = crowd size; 0 answers everything inline on the calling
  /// thread (the degenerate synchronous crowd).
  AsyncOracleQueue(ComputeFn compute, size_t workers);
  ~AsyncOracleQueue();

  AsyncOracleQueue(const AsyncOracleQueue&) = delete;
  AsyncOracleQueue& operator=(const AsyncOracleQueue&) = delete;

  /// Answers for `indices` (distinct), parallel to the input. Blocks until
  /// the crowd finishes this batch; other traffic interleaves freely.
  std::vector<char> InspectBlocking(const std::vector<size_t>& indices);

  /// Enqueues one review verdict for out-of-band delivery.
  void SubmitReview(const data::InstancePair& pair, bool answer);

  /// Drains the completed-review buffer (delivery order).
  std::vector<CompletedReview> TakeCompleted();

  /// Queued-or-in-flight work items (chunks + reviews).
  size_t pending() const;
  /// Reviews delivered but not yet taken by TakeCompleted().
  size_t completed_unfolded() const;

  /// Blocks until no work is queued or in flight.
  void WaitIdle();

  /// Lifetime counters (bench/test visibility).
  size_t batches_inspected() const { return batches_inspected_.load(); }
  size_t answers_produced() const { return answers_produced_.load(); }

 private:
  /// Pairs per worker claim inside one certification batch.
  static constexpr size_t kChunk = 128;

  struct Batch {
    const std::vector<size_t>* indices = nullptr;
    std::vector<char>* answers = nullptr;
    size_t next = 0;       // first unclaimed offset; guarded by mu_
    size_t remaining = 0;  // unanswered pairs; guarded by mu_
    bool done = false;
  };

  struct Task {
    Batch* batch = nullptr;             // certification chunk when set
    CompletedReview review;             // review delivery otherwise
  };

  void WorkerLoop();
  /// Claims and answers one chunk of `batch`. Returns true when the batch
  /// completed with this chunk. Caller holds no lock; this takes mu_.
  bool RunChunk(Batch* batch);

  ComputeFn compute_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: tasks available / stop
  std::condition_variable done_cv_;   // requesters: batch done / queue idle
  std::deque<Task> tasks_;            // guarded by mu_
  std::vector<CompletedReview> completed_;  // guarded by mu_
  size_t in_flight_ = 0;              // claimed, not yet finished
  bool stop_ = false;
  std::vector<std::thread> workers_;
  std::atomic<size_t> batches_inspected_{0};
  std::atomic<size_t> answers_produced_{0};
};

struct ResolutionServiceOptions {
  StreamingOptions streaming;
  /// Crowd worker threads answering queue traffic; 0 = synchronous crowd.
  size_t crowd_workers = 2;
  /// How the workload's id columns map onto record sources for the
  /// snapshot's entity view (default: two-table ER).
  entity::ClusteringOptions entity;
};

/// Always-on serving layer over StreamingResolver: separates MUTATION
/// EPOCHS from READ SNAPSHOTS so millions of lookups never contend with
/// ingest or certification.
///
/// Write side (Ingest / RequestCertification / EnqueueReview fold-ins) is
/// serialized on one internal writer lock; every mutation ends by
/// publishing a fresh immutable ResolutionSnapshot via an atomic
/// shared_ptr swap (RCU-style: readers pin the epoch they loaded, old
/// epochs are reclaimed when the last reader drops them).
///
/// Read side (snapshot / LabelOf / LabelOfPair / EstimatedQuality) never
/// takes the writer lock and never blocks on mutation — a lookup is an
/// atomic snapshot load plus an array read against frozen storage.
///
/// Human work is asynchronous: certification runs on a background thread
/// whose fresh oracle inspections are routed through the AsyncOracleQueue
/// (crowd workers answer out of band; the certifier folds each completed
/// batch in and continues), and review verdicts submitted via
/// EnqueueReview fold in at the next epoch boundary through
/// StreamingResolver::PreloadEvidence re-keying. Because the crowd answers
/// with exactly Oracle::InlineAnswer's verdicts, DRAINING TO QUIESCENCE
/// (all queue traffic answered + folded, certification finished) leaves
/// labels, oracle cost, and certificates bit-identical to driving the
/// synchronous StreamingResolver through the same schedule — asserted by
/// tests and by bench_serving's self-check.
class ResolutionService {
 public:
  ResolutionService(ResolutionServiceOptions options, QualityRequirement req);
  ~ResolutionService();

  ResolutionService(const ResolutionService&) = delete;
  ResolutionService& operator=(const ResolutionService&) = delete;

  // --- Write side (serialized internally; callable from any thread) ---

  /// Folds completed reviews (epoch boundary), ingests the shard, publishes
  /// a snapshot. Blocks while a certification holds the writer lock.
  EpochReport Ingest(data::Shard shard);

  /// Starts an asynchronous certification over the pairs ingested so far.
  /// Returns once the background certifier OWNS the writer lock — not when
  /// it finishes — so the caller's next Ingest provably serializes after
  /// the certification and the certificate covers exactly the epochs
  /// ingested before this call (mutex wakeup order is not FIFO; returning
  /// any earlier would let a subsequent Ingest overtake the certifier and
  /// make the certified prefix nondeterministic). Readers keep serving the
  /// last snapshot while the crowd answers; the certificate publishes when
  /// done. Returns false when a certification is already in flight (the
  /// request is dropped, not queued). Must not be called while holding a
  /// mutation open elsewhere on the same thread.
  bool RequestCertification();

  /// True while a background certification is running.
  bool certification_in_flight() const { return cert_running_.load(); }

  /// Enqueues pairs for out-of-band human review. Pairs not yet ingested or
  /// already answered are skipped; returns the number actually enqueued.
  /// Completed verdicts fold in at the next epoch boundary (Ingest,
  /// certification start, or DrainToQuiescence).
  size_t EnqueueReview(const std::vector<data::InstancePair>& pairs);

  /// Blocks until every enqueued review verdict has been delivered by the
  /// crowd workers (delivered, not folded — folding still happens at the
  /// next epoch boundary). Calling this immediately before
  /// RequestCertification pins the certified evidence set: the certifier's
  /// boundary fold then sees EVERY review enqueued so far, independent of
  /// crowd-worker timing. Without it a slow worker can hold a verdict past
  /// the certification start, and — because risk-aware inspection is
  /// evidence-driven — certify against a different answer set than a rerun
  /// would. Must not be called while a certification is in flight (its
  /// oracle batches share the queue).
  void WaitForReviewDelivery() { queue_.WaitIdle(); }

  /// Waits until every queued crowd task is answered and the in-flight
  /// certification (if any) finished, folds the remaining completed
  /// reviews, publishes, and returns the latest certificate (error when no
  /// certification ever ran or the last one failed).
  Result<StreamingCertificate> DrainToQuiescence();

  // --- Read side (wait-free; never blocks on mutation) ---

  /// The last published snapshot; never null after construction.
  std::shared_ptr<const ResolutionSnapshot> snapshot() const;

  /// Label of pair `index` in the latest snapshot, or nullopt out of range.
  std::optional<int> LabelOf(size_t index) const;

  /// Label of `pair` by identity in the latest snapshot, or nullopt when
  /// the pair has not arrived yet.
  std::optional<int> LabelOfPair(const data::InstancePair& pair) const;

  /// Entity of `record` in the latest snapshot's entity view, or nullopt
  /// when the record has not been mentioned yet. Wait-free, like LabelOf.
  std::optional<uint32_t> EntityOfRecord(entity::RecordRef record) const;

  QualityEstimate EstimatedQuality() const { return snapshot()->quality(); }

  // --- Introspection ---

  size_t snapshots_published() const { return publish_count_.load(); }
  size_t pending_crowd_tasks() const { return queue_.pending(); }
  size_t unfolded_reviews() const { return queue_.completed_unfolded(); }
  size_t reviews_enqueued() const { return reviews_enqueued_.load(); }
  size_t reviews_folded() const { return reviews_folded_.load(); }
  const AsyncOracleQueue& queue() const { return queue_; }
  const QualityRequirement& requirement() const { return req_; }

  /// Direct resolver access for the drain-equivalence checks in tests and
  /// bench_serving. NOT synchronized with the write side — only meaningful
  /// after DrainToQuiescence (or before any mutation started).
  const StreamingResolver& resolver_unsynchronized() const {
    return resolver_;
  }

 private:
  /// Epoch boundary: folds completed reviews into the resolver's oracle.
  /// Returns how many folded. Caller holds writer_mu_.
  size_t FoldCompletedReviewsLocked();
  /// Rebuilds and atomically publishes a snapshot. Caller holds writer_mu_.
  void PublishLocked();
  /// Body of the background certification thread.
  void RunCertification();
  /// Joins a finished certifier thread. Caller holds cert_admin_mu_.
  void JoinCertifierLocked();

  ResolutionServiceOptions options_;
  QualityRequirement req_;

  /// Serializes every resolver mutation (ingest, certification, fold-in).
  std::mutex writer_mu_;
  StreamingResolver resolver_;  // guarded by writer_mu_

  /// Reviews whose pair was unknown at fold time (raced an interior merge);
  /// retried at the next epoch boundary. Guarded by writer_mu_.
  std::vector<AsyncOracleQueue::CompletedReview> deferred_reviews_;

  AsyncOracleQueue queue_;

  std::mutex cert_admin_mu_;
  std::thread cert_thread_;               // guarded by cert_admin_mu_
  std::atomic<bool> cert_running_{false};
  /// Handshake for RequestCertification's returns-after-lock-owned
  /// guarantee (see above).
  std::mutex cert_start_mu_;
  std::condition_variable cert_start_cv_;
  bool cert_started_ = false;  // guarded by cert_start_mu_
  std::optional<Result<StreamingCertificate>> last_cert_;  // writer_mu_

  /// The published snapshot, swapped with std::atomic_store (RCU publish).
  std::shared_ptr<const ResolutionSnapshot> snapshot_;

  std::atomic<size_t> publish_count_{0};
  std::atomic<size_t> reviews_enqueued_{0};
  std::atomic<size_t> reviews_folded_{0};
};

}  // namespace humo::core
