#include "core/hybrid_optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

namespace humo::core {

Result<HumoSolution> HybridOptimizer::Optimize(const SubsetPartition& partition,
                                               const QualityRequirement& req,
                                               Oracle* oracle) const {
  if (oracle == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  EstimationContext ctx(&partition, oracle);
  return Optimize(&ctx, req);
}

Result<HumoSolution> HybridOptimizer::Optimize(EstimationContext* ctx,
                                               const QualityRequirement& req) const {
  if (ctx == nullptr)
    return Status::InvalidArgument("estimation context must not be null");
  if (ctx->oracle() == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  const SubsetPartition& partition = ctx->partition();
  const size_t m = partition.num_subsets();
  if (m == 0) return Status::InvalidArgument("empty workload");
  if (options_.window_subsets == 0)
    return Status::InvalidArgument("window_subsets must be positive");

  // ---- Step 1: initial partial-sampling solution S0. ----
  // Reuse the outcome an earlier SAMP run published into the context when
  // it certified the same requirement; otherwise run SAMP here (which
  // publishes its outcome as a side effect). Reuse is the whole point of
  // the shared engine: the GP model, the strata, and every human label
  // behind them carry over at zero additional oracle cost.
  std::shared_ptr<const PartialSamplingOutcome> s0 = ctx->sampling_outcome();
  const bool reusable = s0 != nullptr && s0->req.alpha == req.alpha &&
                        s0->req.beta == req.beta && s0->req.theta == req.theta;
  if (!reusable) {
    PartialSamplingOptimizer samp(options_.sampling);
    HUMO_ASSIGN_OR_RETURN(PartialSamplingOutcome fresh,
                          samp.OptimizeDetailed(ctx, req));
    (void)fresh;  // published into the context by OptimizeDetailed
    s0 = ctx->sampling_outcome();
    assert(s0 != nullptr);
  }
  const size_t i0 = s0->solution.h_lo;
  const size_t j0 = s0->solution.h_hi;
  const double conf = std::sqrt(req.theta);
  // Same discretization-guard margin the sampling search applies: DH moves
  // in whole subsets, so certify a hair above the target.
  const double alpha =
      std::min(1.0, req.alpha + options_.sampling.quality_margin);
  const double beta =
      std::min(1.0, req.beta + options_.sampling.quality_margin);

  // ---- Step 2: re-extend DH from the median subset of [i0, j0]. ----
  const size_t mid = i0 + (j0 - i0) / 2;
  size_t lo = mid, hi = mid;
  size_t dh_matches = ctx->LabelSubset(mid);

  // GP accumulators for D+ = [hi+1, m-1] and D- = [0, lo-1].
  GpRangeAccumulator dplus(s0->model.get()), dminus(s0->model.get());
  if (hi + 1 < m) dplus.SetRange(hi + 1, m - 1);
  if (lo > 0) dminus.SetRange(0, lo - 1);

  const size_t w = options_.window_subsets;

  // Precision check with exact DH knowledge (every DH subset is labeled):
  //   precision >= (dh_matches + lb(n+_{D+})) / (dh_matches + |D+|).
  // The D+ match-count lower bound is the better (larger) of:
  //   BASE:  |D+| * R(I+ window)     (monotonicity of precision)
  //   SAMP:  GP posterior lower bound at confidence sqrt(theta).
  auto precision_ok = [&]() {
    if (hi + 1 >= m) return true;  // D+ empty
    const double n_dp = static_cast<double>(partition.PairsInRange(hi + 1, m - 1));
    const double lb_base = n_dp * ctx->UpperWindowProportion(lo, hi, w);
    const double lb_samp = dplus.LowerBound(conf);
    const double lb = std::max(lb_base, lb_samp);
    const double dh = static_cast<double>(dh_matches);
    const double denom = dh + n_dp;
    if (denom <= 0.0) return true;
    return alpha <= (dh + lb) / denom;
  };

  // Recall check:
  //   recall >= (dh_matches + lb(n+_{D+})) /
  //             (dh_matches + lb(n+_{D+}) + ub(n+_{D-})),
  // with the D- upper bound the better (smaller) of BASE's monotone window
  // bound and SAMP's GP bound.
  auto recall_ok = [&]() {
    if (lo == 0) return true;  // D- empty
    const double n_dm = static_cast<double>(partition.PairsInRange(0, lo - 1));
    const double ub_base = n_dm * ctx->LowerWindowProportion(lo, hi, w);
    const double ub_samp = dminus.UpperBound(conf);
    const double ub = std::min(ub_base, ub_samp);
    const double n_dp_lb =
        hi + 1 >= m
            ? 0.0
            : std::max(dplus.LowerBound(conf),
                       static_cast<double>(partition.PairsInRange(hi + 1, m - 1)) *
                           ctx->UpperWindowProportion(lo, hi, w));
    const double found = static_cast<double>(dh_matches) + n_dp_lb;
    const double denom = found + ub;
    if (denom <= 0.0) return true;
    return beta <= found / denom;
  };

  bool precision_fixed = precision_ok();
  bool recall_fixed = recall_ok();

  // ---- Step 3: alternate extension, never exceeding [i0, j0]. ----
  while (!precision_fixed || !recall_fixed) {
    bool moved = false;
    if (!precision_fixed) {
      if (hi < j0) {
        ++hi;
        dh_matches += ctx->LabelSubset(hi);
        dplus.ShrinkLeft();  // subset hi moved from D+ into DH
        moved = true;
        precision_fixed = precision_ok();
      } else {
        // At S0's upper bound: S0 certified precision with DH up to j0.
        precision_fixed = true;
      }
    }
    if (!recall_fixed) {
      if (lo > i0) {
        --lo;
        dh_matches += ctx->LabelSubset(lo);
        dminus.ShrinkRight();  // subset lo moved from D- into DH
        moved = true;
        recall_fixed = recall_ok();
      } else {
        recall_fixed = true;
      }
      // Growing DH can only help precision, but re-verify when it was
      // accepted by a threshold estimate.
      if (precision_fixed && hi < j0 && !precision_ok()) {
        precision_fixed = false;
      }
    }
    if (!moved) break;
  }

  HumoSolution sol;
  sol.h_lo = lo;
  sol.h_hi = hi;
  sol.empty = false;
  return sol;
}

}  // namespace humo::core
