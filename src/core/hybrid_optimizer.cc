#include "core/hybrid_optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

#include "stats/distributions.h"

namespace humo::core {

Result<HumoSolution> HybridOptimizer::Optimize(const SubsetPartition& partition,
                                               const QualityRequirement& req,
                                               Oracle* oracle) const {
  if (oracle == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  EstimationContext ctx(&partition, oracle);
  return Optimize(&ctx, req);
}

Result<HumoSolution> HybridOptimizer::Optimize(
    EstimationContext* ctx, const QualityRequirement& req) const {
  if (ctx == nullptr)
    return Status::InvalidArgument("estimation context must not be null");
  if (ctx->oracle() == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  const SubsetPartition& partition = ctx->partition();
  const size_t m = partition.num_subsets();
  if (m == 0) return Status::InvalidArgument("empty workload");
  if (options_.window_subsets == 0)
    return Status::InvalidArgument("window_subsets must be positive");

  // ---- Step 1: initial partial-sampling solution S0. ----
  // Reuse the outcome an earlier SAMP run published into the context when
  // it certified the same requirement; otherwise run SAMP here (which
  // publishes its outcome as a side effect). Reuse is the whole point of
  // the shared engine: the GP model, the strata, and every human label
  // behind them carry over at zero additional oracle cost.
  HUMO_ASSIGN_OR_RETURN(std::shared_ptr<const PartialSamplingOutcome> s0,
                        EnsureSamplingOutcome(ctx, req, options_.sampling));
  const size_t i0 = s0->solution.h_lo;
  const size_t j0 = s0->solution.h_hi;
  const double conf = std::sqrt(req.theta);
  // Same discretization-guard margin the sampling search applies: DH moves
  // in whole subsets, so certify a hair above the target.
  const double alpha =
      std::min(1.0, req.alpha + options_.sampling.quality_margin);
  const double beta =
      std::min(1.0, req.beta + options_.sampling.quality_margin);

  // ---- Step 2: re-extend DH from the median subset of [i0, j0]. ----
  const size_t mid = i0 + (j0 - i0) / 2;
  size_t lo = mid, hi = mid;
  size_t dh_matches = ctx->LabelSubset(mid);

  // GP accumulators for D+ = [hi+1, m-1] and D- = [0, lo-1].
  GpRangeAccumulator dplus(s0->model.get()), dminus(s0->model.get());
  if (hi + 1 < m) dplus.SetRange(hi + 1, m - 1);
  if (lo > 0) dminus.SetRange(0, lo - 1);

  const size_t w = options_.window_subsets;

  // Precision check with exact DH knowledge (every DH subset is labeled):
  //   precision >= (dh_matches + lb(n+_{D+})) / (dh_matches + |D+|).
  // The D+ match-count lower bound is the better (larger) of:
  //   BASE:  |D+| * R(I+ window)     (monotonicity of precision)
  //   SAMP:  GP posterior lower bound at confidence sqrt(theta).
  auto precision_ok = [&]() {
    if (hi + 1 >= m) return true;  // D+ empty
    const double n_dp =
        static_cast<double>(partition.PairsInRange(hi + 1, m - 1));
    const double lb_base = n_dp * ctx->UpperWindowProportion(lo, hi, w);
    const double lb_samp = dplus.LowerBound(conf);
    const double lb = std::max(lb_base, lb_samp);
    const double dh = static_cast<double>(dh_matches);
    const double denom = dh + n_dp;
    if (denom <= 0.0) return true;
    return alpha <= (dh + lb) / denom;
  };

  // Recall check:
  //   recall >= (dh_matches + lb(n+_{D+})) /
  //             (dh_matches + lb(n+_{D+}) + ub(n+_{D-})),
  // with the D- upper bound the better (smaller) of BASE's monotone window
  // bound and SAMP's GP bound.
  auto recall_ok = [&]() {
    if (lo == 0) return true;  // D- empty
    const double n_dm = static_cast<double>(partition.PairsInRange(0, lo - 1));
    const double ub_base = n_dm * ctx->LowerWindowProportion(lo, hi, w);
    const double ub_samp = dminus.UpperBound(conf);
    const double ub = std::min(ub_base, ub_samp);
    const double n_dp_lb =
        hi + 1 >= m
            ? 0.0
            : std::max(dplus.LowerBound(conf),
                       static_cast<double>(
                           partition.PairsInRange(hi + 1, m - 1)) *
                           ctx->UpperWindowProportion(lo, hi, w));
    const double found = static_cast<double>(dh_matches) + n_dp_lb;
    const double denom = found + ub;
    if (denom <= 0.0) return true;
    return beta <= found / denom;
  };

  bool precision_fixed = precision_ok();
  bool recall_fixed = recall_ok();

  // ---- Step 3: alternate extension, never exceeding [i0, j0]. ----
  while (!precision_fixed || !recall_fixed) {
    bool moved = false;
    if (!precision_fixed) {
      if (hi < j0) {
        ++hi;
        dh_matches += ctx->LabelSubset(hi);
        dplus.ShrinkLeft();  // subset hi moved from D+ into DH
        moved = true;
        precision_fixed = precision_ok();
      } else {
        // At S0's upper bound: S0 certified precision with DH up to j0.
        precision_fixed = true;
      }
    }
    if (!recall_fixed) {
      if (lo > i0) {
        --lo;
        dh_matches += ctx->LabelSubset(lo);
        dminus.ShrinkRight();  // subset lo moved from D- into DH
        moved = true;
        recall_fixed = recall_ok();
      } else {
        recall_fixed = true;
      }
      // Growing DH can only help precision, but re-verify when it was
      // accepted by a threshold estimate.
      if (precision_fixed && hi < j0 && !precision_ok()) {
        precision_fixed = false;
      }
    }
    if (!moved) break;
  }

  HumoSolution sol;
  sol.h_lo = lo;
  sol.h_hi = hi;
  sol.empty = false;
  return sol;
}

Result<RiskAwareOutcome> HybridOptimizer::OptimizeRiskAware(
    const SubsetPartition& partition, const QualityRequirement& req,
    Oracle* oracle, const RiskAwareOptions& risk_options) const {
  if (oracle == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  EstimationContext ctx(&partition, oracle);
  return OptimizeRiskAware(&ctx, req, risk_options);
}

Result<RiskAwareOutcome> HybridOptimizer::OptimizeRiskAware(
    EstimationContext* ctx, const QualityRequirement& req,
    const RiskAwareOptions& risk_options) const {
  if (ctx == nullptr)
    return Status::InvalidArgument("estimation context must not be null");
  if (ctx->oracle() == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  const SubsetPartition& partition = ctx->partition();
  Oracle* oracle = ctx->oracle();
  const size_t m = partition.num_subsets();
  if (m == 0) return Status::InvalidArgument("empty workload");
  if (risk_options.batch_pairs == 0)
    return Status::InvalidArgument("batch_pairs must be positive");

  // ---- Step 1: initial partial-sampling solution S0 (same reuse rule as
  // Optimize). ----
  HUMO_ASSIGN_OR_RETURN(std::shared_ptr<const PartialSamplingOutcome> s0,
                        EnsureSamplingOutcome(ctx, req, options_.sampling));
  const GpSubsetModel* model = s0->model.get();
  const size_t i0 = s0->solution.h_lo;
  const size_t j0 = s0->solution.h_hi;
  const double conf = std::sqrt(req.theta);
  const double alpha =
      std::min(1.0, req.alpha + options_.sampling.quality_margin);
  const double beta =
      std::min(1.0, req.beta + options_.sampling.quality_margin);

  // ---- Step 2: grow the range from S0's median subset until its POTENTIAL
  // certificate passes — without inspecting anything. The potential is the
  // bound full inspection could at best reach (uninspected pairs resolving
  // to their posterior means); while it misses a target, no amount of human
  // work inside the range can certify it, so grow toward the failing
  // requirement exactly like Optimize's re-extension (precision -> right,
  // recall -> left), never exceeding [i0, j0].
  RiskModel risk(model, i0, j0, risk_options.risk);
  SeedRiskEvidence(partition, *oracle, &risk);

  const size_t mid = i0 + (j0 - i0) / 2;
  size_t lo = mid, hi = mid;
  GpRangeAccumulator dplus(model), dminus(model);
  if (hi + 1 < m) dplus.SetRange(hi + 1, m - 1);
  if (lo > 0) dminus.SetRange(0, lo - 1);
  // Grow until the potential clears the targets with an extra margin: a
  // range that would only JUST certify at full inspection has no slack for
  // stopping early, so the certification loop would grind most of its pairs
  // anyway — an edge subset left under a weak GP bound in D+/D- costs more
  // inspections to compensate for than absorbing it into DH does.
  const double grow_margin = options_.sampling.quality_margin;
  while (true) {
    const RiskCertificate potential =
        CertifyRangePotential(risk, lo, hi, dplus, dminus, conf);
    bool grew = false;
    if (potential.precision_lb < std::min(1.0, alpha + grow_margin) &&
        hi < j0) {
      ++hi;
      dplus.ShrinkLeft();  // subset hi moved from D+ into DH
      grew = true;
    }
    if (potential.recall_lb < std::min(1.0, beta + grow_margin) && lo > i0) {
      --lo;
      dminus.ShrinkRight();  // subset lo moved from D- into DH
      grew = true;
    }
    if (!grew) break;
  }
  // Absorb edge subsets whose GP-posterior proportion is still wide: left
  // in D+/D- their bound penalty is immovable (inspection is confined to
  // DH), and compensating for one wide edge subset costs far more
  // inspections elsewhere than the at-most-one-subset cost of absorbing it
  // and letting the risk loop decide whether it even needs inspecting.
  const double z = stats::NormalTwoSidedCritical(conf);
  while (hi < j0 &&
         z * std::sqrt(model->PosteriorVariance(hi + 1)) >
             options_.risk_edge_uncertainty) {
    ++hi;
    dplus.ShrinkLeft();
  }
  while (lo > i0 &&
         z * std::sqrt(model->PosteriorVariance(lo - 1)) >
             options_.risk_edge_uncertainty) {
    --lo;
    dminus.ShrinkRight();
  }

  // ---- Step 3: risk-ordered certification inside the selected range,
  // re-growing on demand. The potential is slightly optimistic (it ignores
  // the residual uncertainty the actual bounds must carry), so a range can
  // exhaust its pairs uncertified; it is then grown toward the failing
  // requirement and re-certified. Nothing is wasted across attempts —
  // every inspected pair stays inside the final DH and its answer persists
  // in the oracle's memory, so the next attempt starts from it for free.
  RiskAwareOptions ropts = risk_options;
  ropts.sampling = options_.sampling;  // keep margins consistent with S0
  const RiskAwareOptimizer resolver(ropts);
  size_t total_pairs = 0, total_batches = 0;
  while (true) {
    HumoSolution selected;
    selected.h_lo = lo;
    selected.h_hi = hi;
    selected.empty = false;
    HUMO_ASSIGN_OR_RETURN(RiskAwareOutcome out,
                          resolver.ResolveWithin(ctx, req, selected, model));
    total_pairs += out.inspection.pairs_inspected;
    total_batches += out.inspection.batches;
    bool grew = false;
    if (!out.certified) {
      // Exponential growth toward the failing side: each failed attempt
      // doubles the distance already grown from the median, so the number
      // of re-certification attempts is logarithmic in the final width
      // (each aborted attempt fast-fails on its potential, see
      // ResolveWithin, so re-tries are cheap).
      if (out.precision_lb < alpha && hi < j0) {
        hi = std::min(j0, hi + std::max<size_t>(1, hi - mid));
        grew = true;
      }
      if (out.recall_lb < beta && lo > i0) {
        lo = std::max(
            i0, lo - std::min(lo - i0, std::max<size_t>(1, mid - lo)));
        grew = true;
      }
      if (!grew && (hi < j0 || lo > i0)) {
        // The failing side is clamped; growing the other one still tightens
        // the certificate (more exact evidence, smaller machine-labeled
        // remainder) and guarantees progress toward [i0, j0].
        if (hi < j0) ++hi; else --lo;
        grew = true;
      }
    }
    if (!grew) {
      out.inspection.pairs_inspected = total_pairs;
      out.inspection.batches = total_batches;
      return out;
    }
  }
}

}  // namespace humo::core
