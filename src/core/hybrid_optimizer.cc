#include "core/hybrid_optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace humo::core {
namespace {

size_t LabelSubset(const SubsetPartition& partition, size_t k,
                   Oracle* oracle) {
  size_t matches = 0;
  const Subset& s = partition[k];
  for (size_t i = s.begin; i < s.end; ++i) matches += oracle->Label(i);
  return matches;
}

}  // namespace

Result<HumoSolution> HybridOptimizer::Optimize(const SubsetPartition& partition,
                                               const QualityRequirement& req,
                                               Oracle* oracle) const {
  if (oracle == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  const size_t m = partition.num_subsets();
  if (m == 0) return Status::InvalidArgument("empty workload");
  if (options_.window_subsets == 0)
    return Status::InvalidArgument("window_subsets must be positive");

  // ---- Step 1: initial partial-sampling solution S0. ----
  PartialSamplingOptimizer samp(options_.sampling);
  HUMO_ASSIGN_OR_RETURN(PartialSamplingOutcome s0,
                        samp.OptimizeDetailed(partition, req, oracle));
  const size_t i0 = s0.solution.h_lo;
  const size_t j0 = s0.solution.h_hi;
  const double conf = std::sqrt(req.theta);
  // Same discretization-guard margin the sampling search applies: DH moves
  // in whole subsets, so certify a hair above the target.
  const double alpha =
      std::min(1.0, req.alpha + options_.sampling.quality_margin);
  const double beta =
      std::min(1.0, req.beta + options_.sampling.quality_margin);

  // ---- Step 2: re-extend DH from the median subset of [i0, j0]. ----
  const size_t mid = i0 + (j0 - i0) / 2;
  size_t lo = mid, hi = mid;
  std::vector<size_t> subset_matches(m, 0);
  subset_matches[mid] = LabelSubset(partition, mid, oracle);
  size_t dh_matches = subset_matches[mid];

  // GP accumulators for D+ = [hi+1, m-1] and D- = [0, lo-1].
  GpRangeAccumulator dplus(s0.model.get()), dminus(s0.model.get());
  if (hi + 1 < m) dplus.SetRange(hi + 1, m - 1);
  if (lo > 0) dminus.SetRange(0, lo - 1);

  const size_t w = options_.window_subsets;
  auto upper_window_proportion = [&]() {
    size_t pairs = 0, matches = 0;
    size_t taken = 0;
    for (size_t k = hi;; --k) {
      pairs += partition[k].size();
      matches += subset_matches[k];
      ++taken;
      if (k == lo || taken == w) break;
    }
    return pairs == 0 ? 0.0
                      : static_cast<double>(matches) / static_cast<double>(pairs);
  };
  auto lower_window_proportion = [&]() {
    size_t pairs = 0, matches = 0;
    size_t taken = 0;
    for (size_t k = lo; k <= hi; ++k) {
      pairs += partition[k].size();
      matches += subset_matches[k];
      ++taken;
      if (taken == w) break;
    }
    return pairs == 0 ? 0.0
                      : static_cast<double>(matches) / static_cast<double>(pairs);
  };

  // Precision check with exact DH knowledge (every DH subset is labeled):
  //   precision >= (dh_matches + lb(n+_{D+})) / (dh_matches + |D+|).
  // The D+ match-count lower bound is the better (larger) of:
  //   BASE:  |D+| * R(I+ window)     (monotonicity of precision)
  //   SAMP:  GP posterior lower bound at confidence sqrt(theta).
  auto precision_ok = [&]() {
    if (hi + 1 >= m) return true;  // D+ empty
    const double n_dp = static_cast<double>(partition.PairsInRange(hi + 1, m - 1));
    const double lb_base = n_dp * upper_window_proportion();
    const double lb_samp = dplus.LowerBound(conf);
    const double lb = std::max(lb_base, lb_samp);
    const double dh = static_cast<double>(dh_matches);
    const double denom = dh + n_dp;
    if (denom <= 0.0) return true;
    return alpha <= (dh + lb) / denom;
  };

  // Recall check:
  //   recall >= (dh_matches + lb(n+_{D+})) /
  //             (dh_matches + lb(n+_{D+}) + ub(n+_{D-})),
  // with the D- upper bound the better (smaller) of BASE's monotone window
  // bound and SAMP's GP bound.
  auto recall_ok = [&]() {
    if (lo == 0) return true;  // D- empty
    const double n_dm = static_cast<double>(partition.PairsInRange(0, lo - 1));
    const double ub_base = n_dm * lower_window_proportion();
    const double ub_samp = dminus.UpperBound(conf);
    const double ub = std::min(ub_base, ub_samp);
    const double n_dp_lb =
        hi + 1 >= m
            ? 0.0
            : std::max(dplus.LowerBound(conf),
                       static_cast<double>(partition.PairsInRange(hi + 1, m - 1)) *
                           upper_window_proportion());
    const double found = static_cast<double>(dh_matches) + n_dp_lb;
    const double denom = found + ub;
    if (denom <= 0.0) return true;
    return beta <= found / denom;
  };

  bool precision_fixed = precision_ok();
  bool recall_fixed = recall_ok();

  // ---- Step 3: alternate extension, never exceeding [i0, j0]. ----
  while (!precision_fixed || !recall_fixed) {
    bool moved = false;
    if (!precision_fixed) {
      if (hi < j0) {
        ++hi;
        subset_matches[hi] = LabelSubset(partition, hi, oracle);
        dh_matches += subset_matches[hi];
        dplus.ShrinkLeft();  // subset hi moved from D+ into DH
        moved = true;
        precision_fixed = precision_ok();
      } else {
        // At S0's upper bound: S0 certified precision with DH up to j0.
        precision_fixed = true;
      }
    }
    if (!recall_fixed) {
      if (lo > i0) {
        --lo;
        subset_matches[lo] = LabelSubset(partition, lo, oracle);
        dh_matches += subset_matches[lo];
        dminus.ShrinkRight();  // subset lo moved from D- into DH
        moved = true;
        recall_fixed = recall_ok();
      } else {
        recall_fixed = true;
      }
      // Growing DH can only help precision, but re-verify when it was
      // accepted by a threshold estimate.
      if (precision_fixed && hi < j0 && !precision_ok()) {
        precision_fixed = false;
      }
    }
    if (!moved) break;
  }

  HumoSolution sol;
  sol.h_lo = lo;
  sol.h_hi = hi;
  sol.empty = false;
  return sol;
}

}  // namespace humo::core
