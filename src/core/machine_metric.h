#pragma once

#include <functional>

#include "data/workload.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"

namespace humo::core {

/// §IV-A: HUMO works with any machine metric under which the workload
/// statistically satisfies monotonicity of precision — pair similarity,
/// match probability, or SVM distance. These adapters re-score a workload's
/// pairs with an alternative metric (mapped into [0,1]) so the same
/// partition/optimizer pipeline runs unchanged on top of it.
///
/// The feature extractor maps a pair to the model's feature vector; for
/// pair-level workloads the single similarity feature is the common case.
using PairFeatureFn =
    std::function<ml::FeatureVector(const data::InstancePair&)>;

/// Returns a copy of the workload rescored by the logistic model's match
/// probability (already in [0,1]); pairs are re-sorted by the new metric.
data::Workload RescoreByMatchProbability(const data::Workload& workload,
                                         const ml::LogisticRegression& model,
                                         const PairFeatureFn& features);

/// Returns a copy of the workload rescored by the SVM's signed distance to
/// the separating plane, squashed into [0,1] with a logistic link
/// (sigma(distance / scale)); pairs are re-sorted by the new metric.
data::Workload RescoreBySvmDistance(const data::Workload& workload,
                                    const ml::LinearSvm& model,
                                    const PairFeatureFn& features,
                                    double scale = 1.0);

/// Convenience feature extractor: the pair's similarity as the single
/// feature.
PairFeatureFn SimilarityFeature();

}  // namespace humo::core
