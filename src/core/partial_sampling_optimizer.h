#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/estimation_engine.h"
#include "core/gp_subset_model.h"
#include "core/oracle.h"
#include "core/partition.h"
#include "core/solution.h"
#include "gp/gp_regression.h"
#include "stats/stratified.h"

namespace humo::core {

/// Options of the partial-sampling search (§VI-B, Algorithm 1).
struct PartialSamplingOptions {
  /// Pairs sampled (and human-labeled) per sampled subset. The paper
  /// measures sampling cost as "the proportion of sampled subsets among all
  /// subsets", i.e. a sampled subset is fully inspected; the default of 200
  /// (the paper's subset size) therefore enumerates sampled subsets
  /// completely, pinning the GP with noise-free observations. Smaller values
  /// trade sampling cost for wider GP error bars.
  size_t samples_per_subset = 200;
  /// Sampling-cost range [p_l, p_u]: fraction of subsets that may be
  /// sampled (the paper uses [1%, 5%]). Defaults place most of the budget
  /// in the equidistant initial pass ([4%, 6%]) because sparse initial
  /// coverage leaves the GP posterior too uncertain over the hundreds of
  /// unsampled subsets, inflating the Eq. 20 bounds and with them DH (see
  /// bench_ablation_sampling_range for the sweep).
  double sample_fraction_lo = 0.04;
  double sample_fraction_hi = 0.06;
  /// Error threshold epsilon of Algorithm 1: a midpoint subset whose
  /// observed proportion deviates from the GP prediction by at least this
  /// much triggers recursive refinement of its bracket.
  double error_threshold = 0.05;
  /// Kernel family for the GP fit; hyperparameters are selected on a small
  /// grid by log marginal likelihood.
  gp::KernelFamily kernel_family = gp::KernelFamily::kRbf;
  /// Internal safety margin added to alpha and beta during the bound
  /// search. DH moves in whole-subset steps, so the continuous Eq. 13/14
  /// conditions can be satisfied by a solution whose true quality sits a
  /// hair under the target (observed misses of ~0.001-0.002); the margin
  /// absorbs that discretization error at negligible cost.
  double quality_margin = 0.015;
  /// Warm-start acceptance slack for incremental GP refits, in nats per
  /// training point. When a refinement round only appends observations, the
  /// previous winner's Cholesky factor is extended (Cholesky::Append,
  /// O(n^2 k)) and its hyperparameters kept; the full grid is re-run when
  /// the warm model's per-datum log marginal likelihood drops more than
  /// this below the value of the last GRID selection (the baseline is
  /// anchored there — it does not ratchet down with accepted warm rounds)
  /// — i.e. when the new pins disagree with the stale kernel. Smaller
  /// values re-select more eagerly; 0 re-runs the grid on any strict
  /// degradation, though warm rounds whose LML holds or improves are still
  /// served incrementally. To force the legacy full-grid refit every round,
  /// set HUMO_GP_INCREMENTAL=0 (common/env).
  double gp_warm_lml_slack = 0.25;
  /// Homoscedastic noise floor added on top of the per-subset sampling
  /// variance. Kept tiny by default: fully-enumerated sampled subsets have
  /// zero sampling variance, and an artificial floor of variance f inflates
  /// every unsampled subset's posterior std by ~sqrt(f/2), which — summed
  /// over hundreds of subsets in the Eq. 20 aggregation — dwarfs the real
  /// uncertainty and balloons DH. Numerical conditioning is handled by the
  /// Cholesky jitter, not this floor.
  double gp_noise_floor = 1e-8;
  uint64_t seed = 5;
};

/// SAMP (partial-sampling variant, the paper's default): Algorithm 1 trains
/// a Gaussian-process regression of match proportion against subset
/// similarity from a budgeted set of sampled subsets, then the bound search
/// of §VI-A runs against GP-posterior confidence intervals (Eq. 19-21)
/// instead of per-stratum ones.
///
/// The per-subset sampling data and the fitted model are published into the
/// EstimationContext (see PartialSamplingOutcome in estimation_engine.h), so
/// a subsequent HYBR run on the same context starts from them for free.
class PartialSamplingOptimizer {
 public:
  explicit PartialSamplingOptimizer(PartialSamplingOptions options = {})
      : options_(options) {}

  /// Runs Algorithm 1 + the bound search against a shared estimation
  /// context; strata an earlier run already paid for are reused.
  Result<HumoSolution> Optimize(EstimationContext* ctx,
                                const QualityRequirement& req) const;

  /// Convenience entry point with a private, throwaway context.
  Result<HumoSolution> Optimize(const SubsetPartition& partition,
                                const QualityRequirement& req,
                                Oracle* oracle) const;

  /// Like Optimize but also returns the fitted model and sampling data
  /// (consumed by HybridOptimizer). The outcome is additionally stored in
  /// the context for later consumers.
  Result<PartialSamplingOutcome> OptimizeDetailed(
      EstimationContext* ctx, const QualityRequirement& req) const;

  /// Detailed run with a private, throwaway context.
  Result<PartialSamplingOutcome> OptimizeDetailed(
      const SubsetPartition& partition, const QualityRequirement& req,
      Oracle* oracle) const;

  const PartialSamplingOptions& options() const { return options_; }

 private:
  PartialSamplingOptions options_;
};

/// The S0 reuse discipline shared by HYBR and RISK: returns the context's
/// stored partial-sampling outcome when it certified exactly `req`
/// (alpha, beta and theta all equal), otherwise runs a SAMP pass with
/// `options` — which publishes its outcome into the context — and returns
/// that. Never null on success.
Result<std::shared_ptr<const PartialSamplingOutcome>> EnsureSamplingOutcome(
    EstimationContext* ctx, const QualityRequirement& req,
    const PartialSamplingOptions& options);

}  // namespace humo::core
