#include "core/risk_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/random.h"
#include "stats/distributions.h"

namespace humo::core {

RiskModel::RiskModel(const GpSubsetModel* model, size_t lo, size_t hi,
                     RiskModelOptions options)
    : model_(model), lo_(lo), hi_(hi), options_(options) {
  assert(model_ != nullptr);
  assert(lo_ <= hi_ && hi_ < model_->num_subsets());
  assert(options_.prior_a > 0.0 && options_.prior_b > 0.0);
  const size_t len = hi_ - lo_ + 1;
  size_.resize(len);
  for (size_t k = lo_; k <= hi_; ++k)
    size_[k - lo_] = static_cast<size_t>(model_->SubsetSize(k));
  inspected_.assign(len, 0);
  matches_.assign(len, 0);
}

void RiskModel::SetEvidence(size_t k, size_t inspected, size_t matches) {
  assert(k >= lo_ && k <= hi_);
  const size_t t = k - lo_;
  assert(matches <= inspected && inspected <= size_[t]);
  assert(inspected >= inspected_[t]);  // evidence only accumulates
  inspected_[t] = inspected;
  matches_[t] = matches;
}

size_t RiskModel::Uninspected(size_t k) const {
  assert(k >= lo_ && k <= hi_);
  return size_[k - lo_] - inspected_[k - lo_];
}

size_t RiskModel::InspectedMatches(size_t k) const {
  assert(k >= lo_ && k <= hi_);
  return matches_[k - lo_];
}

RiskModel::Posterior RiskModel::PosteriorOf(size_t k) const {
  assert(k >= lo_ && k <= hi_);
  const size_t t = k - lo_;
  // Beta posterior over the direct evidence.
  const double a = options_.prior_a + static_cast<double>(matches_[t]);
  const double b = options_.prior_b +
                   static_cast<double>(inspected_[t] - matches_[t]);
  const double ab = a + b;
  Posterior beta;
  beta.mean = a / ab;
  beta.variance = a * b / (ab * ab * (ab + 1.0));
  beta.from_beta = true;
  // GP posterior from the partial-sampling fit (exact subsets carry zero
  // variance and their observed proportion).
  Posterior gp;
  gp.mean = model_->PosteriorMean(k);
  gp.variance = model_->PosteriorVariance(k);
  gp.from_beta = false;
  return gp.variance <= beta.variance ? gp : beta;
}

double RiskModel::PosteriorMean(size_t k) const { return PosteriorOf(k).mean; }

double RiskModel::PosteriorVariance(size_t k) const {
  return PosteriorOf(k).variance;
}

double RiskModel::PairRisk(size_t k, double confidence) const {
  assert(k >= lo_ && k <= hi_);
  const size_t t = k - lo_;
  if (inspected_[t] >= size_[t]) return 0.0;  // nothing machine-labeled
  const Posterior post = PosteriorOf(k);
  const bool label_match = post.mean >= 0.5;
  // Upper tail of the ERROR proportion: 1 - lower tail of p for a match
  // label, upper tail of p for an unmatch label.
  double err_hi;
  if (post.from_beta) {
    const stats::ProportionInterval iv = stats::BetaPosteriorInterval(
        matches_[t], inspected_[t], confidence, options_.prior_a,
        options_.prior_b);
    err_hi = label_match ? 1.0 - iv.lo : iv.hi;
  } else {
    const double z = stats::NormalTwoSidedCritical(confidence);
    const double half = z * std::sqrt(std::max(0.0, post.variance));
    err_hi = label_match ? 1.0 - (post.mean - half) : post.mean + half;
  }
  return std::clamp(err_hi, 0.0, 1.0);
}

RiskModel::UninspectedAggregate RiskModel::Aggregate(size_t a,
                                                     size_t b) const {
  assert(a >= lo_ && a <= b && b <= hi_);
  UninspectedAggregate agg;
  for (size_t k = a; k <= b; ++k) {
    const size_t t = k - lo_;
    const double u = static_cast<double>(size_[t] - inspected_[t]);
    if (u == 0.0) continue;
    const Posterior post = PosteriorOf(k);
    const double p = std::clamp(post.mean, 0.0, 1.0);
    const double mean = u * p;
    const double var = u * u * post.variance + u * p * (1.0 - p);
    if (post.mean >= 0.5) {
      agg.match_mean += mean;
      agg.match_var += var;
      agg.match_pairs += u;
    } else {
      agg.unmatch_mean += mean;
      agg.unmatch_var += var;
      agg.unmatch_pairs += u;
    }
  }
  return agg;
}

size_t RiskModel::TotalInspectedMatches(size_t a, size_t b) const {
  assert(a >= lo_ && a <= b && b <= hi_);
  size_t total = 0;
  for (size_t k = a; k <= b; ++k) total += matches_[k - lo_];
  return total;
}

size_t RiskModel::TotalUninspected(size_t a, size_t b) const {
  assert(a >= lo_ && a <= b && b <= hi_);
  size_t total = 0;
  for (size_t k = a; k <= b; ++k)
    total += size_[k - lo_] - inspected_[k - lo_];
  return total;
}

RiskCertificate CertifyRange(const RiskModel& risk, size_t a, size_t b,
                             const GpRangeAccumulator& dplus,
                             const GpRangeAccumulator& dminus,
                             double confidence) {
  const double z = stats::NormalTwoSidedCritical(confidence);
  const RiskModel::UninspectedAggregate agg = risk.Aggregate(a, b);
  const double inspected_matches =
      static_cast<double>(risk.TotalInspectedMatches(a, b));
  const double lb_dp = dplus.IsEmpty() ? 0.0 : dplus.LowerBound(confidence);
  const double n_dp = dplus.Population();
  const double ub_dm = dminus.IsEmpty() ? 0.0 : dminus.UpperBound(confidence);
  const double match_lb =
      std::max(0.0, agg.match_mean - z * std::sqrt(agg.match_var));
  const double unmatch_ub = std::min(
      agg.unmatch_pairs, agg.unmatch_mean + z * std::sqrt(agg.unmatch_var));
  const double tp_lb = lb_dp + inspected_matches + match_lb;
  const double predicted_pos = n_dp + inspected_matches + agg.match_pairs;
  RiskCertificate c;
  c.precision_lb =
      predicted_pos <= 0.0 ? 1.0 : std::min(1.0, tp_lb / predicted_pos);
  const double fn_ub = ub_dm + unmatch_ub;
  c.recall_lb = tp_lb + fn_ub <= 0.0 ? 1.0 : tp_lb / (tp_lb + fn_ub);
  return c;
}

RiskCertificate CertifyRangePotential(const RiskModel& risk, size_t a,
                                      size_t b,
                                      const GpRangeAccumulator& dplus,
                                      const GpRangeAccumulator& dminus,
                                      double confidence) {
  const RiskModel::UninspectedAggregate agg = risk.Aggregate(a, b);
  // Full inspection finds every DH match (expected count: evidence plus
  // both buckets' posterior means) and leaves no machine-labeled pairs —
  // only the D+/D- bounds remain.
  const double dh_matches =
      static_cast<double>(risk.TotalInspectedMatches(a, b)) + agg.match_mean +
      agg.unmatch_mean;
  const double lb_dp = dplus.IsEmpty() ? 0.0 : dplus.LowerBound(confidence);
  const double n_dp = dplus.Population();
  const double ub_dm = dminus.IsEmpty() ? 0.0 : dminus.UpperBound(confidence);
  const double tp = lb_dp + dh_matches;
  RiskCertificate c;
  c.precision_lb =
      n_dp + dh_matches <= 0.0 ? 1.0 : std::min(1.0, tp / (n_dp + dh_matches));
  c.recall_lb = tp + ub_dm <= 0.0 ? 1.0 : tp / (tp + ub_dm);
  return c;
}

std::vector<std::vector<size_t>> InitRiskEvidence(
    const SubsetPartition& partition, const Oracle& oracle, RiskModel* risk,
    uint64_t seed) {
  assert(risk != nullptr);
  std::vector<std::vector<size_t>> pending(risk->hi() - risk->lo() + 1);
  for (size_t k = risk->lo(); k <= risk->hi(); ++k) {
    const Subset& s = partition[k];
    size_t inspected = 0, matches = 0;
    std::vector<size_t>& todo = pending[k - risk->lo()];
    todo.reserve(s.size());
    for (size_t i = s.begin; i < s.end; ++i) {
      if (oracle.WasAsked(i)) {
        ++inspected;
        matches += oracle.CachedAnswer(i);
      } else {
        todo.push_back(i);
      }
    }
    Rng order = Rng::Stream(seed, k);
    order.Shuffle(&todo);
    risk->SetEvidence(k, inspected, matches);
  }
  return pending;
}

void SeedRiskEvidence(const SubsetPartition& partition, const Oracle& oracle,
                      RiskModel* risk) {
  assert(risk != nullptr);
  for (size_t k = risk->lo(); k <= risk->hi(); ++k) {
    const Subset& s = partition[k];
    size_t inspected = 0, matches = 0;
    for (size_t i = s.begin; i < s.end; ++i) {
      if (!oracle.WasAsked(i)) continue;
      ++inspected;
      matches += oracle.CachedAnswer(i);
    }
    risk->SetEvidence(k, inspected, matches);
  }
}

}  // namespace humo::core
