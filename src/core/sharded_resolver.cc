#include "core/sharded_resolver.h"

#include <algorithm>
#include <cassert>

namespace humo::core {
namespace {

/// Copies the global rows [begin, end) into a fresh RAM-backed workload.
/// Column-wise, so mmap-backed global workloads slice without an AoS
/// materialization of the whole thing.
data::Workload SliceWorkload(const data::Workload& global, size_t begin,
                             size_t end) {
  assert(begin <= end && end <= global.size());
  const size_t n = end - begin;
  std::vector<uint32_t> left(global.left_id_data() + begin,
                             global.left_id_data() + end);
  std::vector<uint32_t> right(global.right_id_data() + begin,
                              global.right_id_data() + end);
  std::vector<double> sims(global.similarity_data() + begin,
                           global.similarity_data() + end);
  std::vector<uint8_t> labels(global.label_data() + begin,
                              global.label_data() + end);
  (void)n;
  // FromColumns sorts, which is a no-op permutation here: the slice of a
  // sorted workload is sorted, and PairLess is a total order on it.
  return data::Workload::FromColumns(std::move(left), std::move(right),
                                     std::move(sims), std::move(labels));
}

}  // namespace

ShardResolver::ShardResolver(const data::Workload& global,
                             const ShardSpec& spec, size_t subset_size,
                             double oracle_error_rate, uint64_t oracle_seed)
    : spec_(spec),
      local_(SliceWorkload(global, spec.begin, spec.end)),
      partition_(&local_, subset_size),
      oracle_(&local_, oracle_error_rate, oracle_seed,
              /*index_offset=*/spec.begin),
      ctx_(&partition_, &oracle_) {
  assert(partition_.num_subsets() == spec_.num_subsets());
}

std::vector<char> ShardResolver::AnswerBatch(
    const std::vector<size_t>& local_indices) {
  // Route the batch through the estimation engine one subset at a time (in
  // ascending subset order — deterministic regardless of how the indices
  // interleave), so the per-subset evidence strata refresh as a side
  // effect; then serve the answers in input order from oracle memory.
  std::vector<std::pair<size_t, size_t>> by_subset;  // (subset, index)
  by_subset.reserve(local_indices.size());
  for (const size_t i : local_indices) {
    assert(i < local_.size());
    by_subset.emplace_back(partition_.SubsetOf(i), i);
  }
  std::stable_sort(by_subset.begin(), by_subset.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<size_t> subset_batch;
  for (size_t t = 0; t < by_subset.size();) {
    const size_t k = by_subset[t].first;
    subset_batch.clear();
    for (; t < by_subset.size() && by_subset[t].first == k; ++t) {
      subset_batch.push_back(by_subset[t].second);
    }
    ctx_.InspectSubsetPairs(k, subset_batch);
  }
  std::vector<char> answers(local_indices.size());
  for (size_t t = 0; t < local_indices.size(); ++t) {
    answers[t] = oracle_.CachedAnswer(local_indices[t]) ? 1 : 0;
  }
  return answers;
}

std::vector<int> ShardResolver::ApplyGlobal(const GlobalLabelingPlan& plan) {
  const size_t n = local_.size();
  std::vector<int> labels(n, 0);
  // Mirror of core::ApplySolution restricted to [spec_.begin, spec_.end):
  // the same three-way split by GLOBAL pair index, with DH answers served
  // by the shard oracle (identical to the global oracle's by the
  // index_offset construction).
  const size_t dh_lo = plan.has_human
                           ? std::max(plan.dh_begin, spec_.begin)
                           : spec_.begin;
  const size_t dh_hi =
      plan.has_human ? std::min(plan.dh_end, spec_.end) : spec_.begin;
  if (dh_lo < dh_hi) {
    std::vector<size_t> fresh;
    for (size_t g = dh_lo; g < dh_hi; ++g) {
      const size_t i = g - spec_.begin;
      if (oracle_.WasAsked(i)) {
        labels[i] = oracle_.CachedAnswer(i) ? 1 : 0;
      } else {
        fresh.push_back(i);
      }
    }
    const std::vector<char> answers = AnswerBatch(fresh);
    for (size_t t = 0; t < fresh.size(); ++t) {
      labels[fresh[t]] = answers[t] ? 1 : 0;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t g = i + spec_.begin;
    if (plan.has_human && g >= plan.dh_begin && g < plan.dh_end) continue;
    labels[i] = g >= plan.match_from ? 1 : 0;
  }
  return labels;
}

ShardEvidence ShardResolver::Evidence() const {
  ShardEvidence ev;
  ev.shard = spec_.shard;
  ev.cost = oracle_.cost();
  ev.total_requests = oracle_.total_requests();
  ev.duplicate_requests = oracle_.duplicate_requests();
  ev.strata.reserve(partition_.num_subsets());
  const SubsetStatsCache& cache = ctx_.cache();
  for (size_t k = 0; k < partition_.num_subsets(); ++k) {
    const Subset& s = partition_[k];
    stats::Stratum st;
    st.population = s.size();
    if (cache.HasStratum(k)) {
      st = cache.StratumAt(k);
    } else if (cache.HasFullCount(k)) {
      st.sample_size = s.size();
      st.sample_positives = cache.FullCount(k);
    }
    ev.posterior_alpha += static_cast<double>(st.sample_positives);
    ev.posterior_beta +=
        static_cast<double>(st.sample_size - st.sample_positives);
    ev.strata.push_back(st);
  }
  return ev;
}

std::vector<uint8_t> EncodeAnswerRequest(
    const std::vector<size_t>& indices) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(ShardRequest::kAnswer));
  w.U64(indices.size());
  for (const size_t i : indices) w.U64(i);
  return w.Take();
}

std::vector<uint8_t> EncodeApplyRequest(const GlobalLabelingPlan& plan) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(ShardRequest::kApply));
  w.U8(plan.has_human ? 1 : 0);
  w.U64(plan.dh_begin);
  w.U64(plan.dh_end);
  w.U64(plan.match_from);
  return w.Take();
}

std::vector<uint8_t> EncodeEvidenceRequest() {
  WireWriter w;
  w.U8(static_cast<uint8_t>(ShardRequest::kEvidence));
  return w.Take();
}

std::vector<uint8_t> EncodeShutdownRequest() {
  WireWriter w;
  w.U8(static_cast<uint8_t>(ShardRequest::kShutdown));
  return w.Take();
}

std::vector<uint8_t> EncodeEvidence(const ShardEvidence& evidence) {
  WireWriter w;
  w.U64(evidence.shard);
  w.U64(evidence.cost);
  w.U64(evidence.total_requests);
  w.U64(evidence.duplicate_requests);
  w.F64(evidence.posterior_alpha);
  w.F64(evidence.posterior_beta);
  w.U64(evidence.strata.size());
  for (const stats::Stratum& st : evidence.strata) {
    w.U64(st.population);
    w.U64(st.sample_size);
    w.U64(st.sample_positives);
  }
  return w.Take();
}

bool DecodeEvidence(const std::vector<uint8_t>& payload,
                    ShardEvidence* evidence) {
  WireReader r(payload);
  evidence->shard = r.U64();
  evidence->cost = r.U64();
  evidence->total_requests = r.U64();
  evidence->duplicate_requests = r.U64();
  evidence->posterior_alpha = r.F64();
  evidence->posterior_beta = r.F64();
  const uint64_t m = r.U64();
  if (!r.ok()) return false;
  evidence->strata.clear();
  evidence->strata.reserve(m);
  for (uint64_t k = 0; k < m; ++k) {
    stats::Stratum st;
    st.population = r.U64();
    st.sample_size = r.U64();
    st.sample_positives = r.U64();
    if (!r.ok()) return false;
    evidence->strata.push_back(st);
  }
  return r.Exhausted();
}

void ServeShardWorker(ShardResolver* resolver, IpcChannel* channel) {
  std::vector<uint8_t> request;
  while (channel->ReadFrame(&request)) {
    WireReader r(request);
    const auto tag = static_cast<ShardRequest>(r.U8());
    if (!r.ok()) return;
    switch (tag) {
      case ShardRequest::kAnswer: {
        const uint64_t count = r.U64();
        std::vector<size_t> indices;
        indices.reserve(count);
        for (uint64_t t = 0; t < count; ++t) {
          indices.push_back(static_cast<size_t>(r.U64()));
        }
        if (!r.Exhausted()) return;
        const std::vector<char> answers = resolver->AnswerBatch(indices);
        WireWriter w;
        for (const char a : answers) w.U8(a ? 1 : 0);
        if (!channel->WriteFrame(w.Take())) return;
        break;
      }
      case ShardRequest::kApply: {
        GlobalLabelingPlan plan;
        plan.has_human = r.U8() != 0;
        plan.dh_begin = static_cast<size_t>(r.U64());
        plan.dh_end = static_cast<size_t>(r.U64());
        plan.match_from = static_cast<size_t>(r.U64());
        if (!r.Exhausted()) return;
        const std::vector<int> labels = resolver->ApplyGlobal(plan);
        WireWriter w;
        for (const int label : labels) w.U8(label ? 1 : 0);
        if (!channel->WriteFrame(w.Take())) return;
        break;
      }
      case ShardRequest::kEvidence: {
        if (!r.Exhausted()) return;
        if (!channel->WriteFrame(EncodeEvidence(resolver->Evidence()))) {
          return;
        }
        break;
      }
      case ShardRequest::kShutdown:
        channel->WriteFrame({});
        return;
      default:
        return;  // malformed request: drop the connection
    }
  }
}

}  // namespace humo::core
