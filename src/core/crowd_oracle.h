#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/paged_bitmap.h"
#include "data/workload.h"
#include "stats/dawid_skene.h"

namespace humo::core {

/// How the crowd's per-worker answers are folded into one verdict per pair.
enum class CrowdAggregation {
  /// Simple majority of the workers asked on the pair (the legacy mode).
  kMajorityVote,
  /// Dawid–Skene-style worker-quality EM over the full purchased vote
  /// history: each worker's confusion (sensitivity/specificity) is
  /// estimated jointly with the pair posteriors, so a consistently wrong
  /// worker's votes are down-weighted instead of counted at face value.
  /// Requires a worker pool (worker_pool > 0); falls back to majority vote
  /// until `ds_min_adjudicated` distinct pairs carry votes (with thin
  /// evidence the EM has nothing to estimate workers from).
  kDawidSkene,
};

/// Configuration of the simulated crowdsourcing workforce.
///
/// Options are VALIDATED on construction in every build mode (not just
/// Debug asserts): see ValidateCrowdOptions for the clamping rules. An even
/// `workers_per_pair` used to silently break majority ties toward
/// non-match in Release builds; it is now rounded up to the next odd count.
struct CrowdOptions {
  /// Odd number of workers asked per pair; even or zero values are clamped
  /// up to the next odd count.
  size_t workers_per_pair = 3;
  /// Mean worker error probability, clamped to [0, 1] (NaN clamps to 0).
  double worker_error_rate = 0.1;
  uint64_t seed = 123;
  /// Size of the persistent worker pool. 0 (default) keeps the legacy
  /// behavior: every pair is judged by fresh anonymous workers, all at
  /// exactly `worker_error_rate`. A positive pool assigns each pair
  /// `workers_per_pair` DISTINCT workers drawn deterministically from the
  /// pool, and each worker has a fixed latent error rate (see
  /// `worker_error_spread`) — the regime where per-worker quality
  /// estimation pays off. Clamped up to `workers_per_pair` when positive.
  size_t worker_pool = 0;
  /// Half-width of the per-worker error heterogeneity (pool mode only):
  /// worker w's latent error is worker_error_rate + spread * u_w with
  /// u_w deterministic in [-1, 1], clamped to [0, 0.49]. Clamped to
  /// [0, 0.5].
  double worker_error_spread = 0.0;
  CrowdAggregation aggregation = CrowdAggregation::kMajorityVote;
  /// Fixed EM iteration count (determinism; clamped to >= 1).
  size_t ds_em_iterations = 20;
  /// Majority-vote fallback threshold: Dawid–Skene is only trusted once
  /// this many distinct pairs carry purchased votes.
  size_t ds_min_adjudicated = 8;
};

/// Returns `options` with every out-of-range field clamped into its
/// documented domain. CrowdOracle applies this on construction; it is
/// exposed so tests can pin the exact clamping behavior.
CrowdOptions ValidateCrowdOptions(CrowdOptions options);

/// Crowdsourced human verification (the paper's §IX future-work direction):
/// instead of one perfect expert, each pair is judged by `workers_per_pair`
/// error-prone workers and resolved by majority vote or Dawid–Skene
/// worker-quality EM. Cost is counted in WORKER ANSWERS (the monetary unit
/// of crowdsourcing platforms), not distinct pairs — the accounting §IX
/// calls more appropriate for crowds.
///
/// With per-worker error e and 2t+1 workers, the majority verdict errs with
/// probability sum_{j>t} C(2t+1,j) e^j (1-e)^(2t+1-j) — e.g. e=0.1 with 3
/// workers gives 2.8% verdict error, with 5 workers 0.86%. With a
/// HETEROGENEOUS pool (worker_error_spread > 0) majority vote counts a 30%-
/// error worker the same as a 2% one; kDawidSkene recovers each worker's
/// confusion from the vote history and weights accordingly.
///
/// Verdict memory uses the same paged bitmap as core::Oracle, so a crowd
/// pass over a 10M-pair workload holds megabytes, not the >0.5 GiB an
/// unordered_map verdict cache would. The oracle also carries the same
/// evidence seam as core::Oracle — Preload / AnswerSnapshot with direct
/// purchased-vs-preloaded counters — so streaming re-keying and review
/// fold-in behave identically whichever backend answers the human's
/// questions.
///
/// Determinism: votes are pure functions of (seed, pair, worker), the EM
/// runs a fixed iteration count over the purchase-ordered vote history, and
/// a pair's verdict is fixed at adjudication time and never revised — so
/// any request sequence replays bit-identically, at any thread count.
class CrowdOracle {
 public:
  CrowdOracle(const data::Workload* workload, CrowdOptions options = {});

  /// Verdict for pair `index`; repeat queries return the cached verdict
  /// without re-asking the crowd.
  bool Label(size_t index);

  /// Batch adjudication: verdicts for `indices`, parallel to the input. One
  /// batch is one posted task group on a crowdsourcing platform; worker
  /// answers are purchased only for pairs without a cached verdict, and
  /// under kDawidSkene the batch's fresh votes join the history before the
  /// EM adjudicates them.
  std::vector<char> InspectBatch(const std::vector<size_t>& indices);

  /// Batch adjudication of the contiguous pair range [begin, end); returns
  /// the number of match verdicts among them.
  size_t InspectRange(size_t begin, size_t end);

  /// Seeds the verdict memory with a verdict that was already paid for
  /// elsewhere — the same evidence-carry seam as core::Oracle::Preload
  /// (streaming re-keying across epoch merges, review fold-in). A preloaded
  /// verdict is free: no worker answers, no requests, and later queries are
  /// served from memory exactly like an adjudicated pair. Preloading an
  /// index that already has a verdict is a no-op.
  void Preload(size_t index, bool verdict);

  /// Number of verdicts seeded through Preload (and still distinct from
  /// any purchased adjudication).
  size_t preloaded() const { return preloaded_; }

  /// Total worker answers purchased.
  size_t worker_answers() const { return worker_answers_; }

  /// Every pair index ever requested, including repeats served from the
  /// verdict cache.
  size_t total_requests() const { return total_requests_; }

  /// Requests served from the verdict cache (adjudicated earlier or
  /// preloaded) instead of a fresh crowd purchase — mirrors
  /// core::Oracle::duplicate_requests().
  size_t duplicate_requests() const { return total_requests_ - adjudicated_; }

  /// Distinct pairs adjudicated by PURCHASED worker answers. Preloaded
  /// verdicts are excluded — they were paid for wherever they were
  /// originally adjudicated. Tracked directly (not derived from the verdict
  /// memory size), so no preload/inspect ordering can skew it.
  size_t pairs_adjudicated() const { return adjudicated_; }

  /// Worker answers divided by workload size: the crowd-cost analogue of
  /// the paper's psi.
  double CostFraction() const;

  /// Fraction of PURCHASED adjudications whose verdict disagrees with the
  /// ground truth (observable in simulation only; used by tests and
  /// benches). Preloaded verdicts are not counted.
  double VerdictErrorRate() const;

  /// The latent error rate planted for pool worker `worker` — what the
  /// Dawid–Skene estimates are recovering. Pool mode only.
  double PlantedWorkerError(size_t worker) const;

  /// Per-worker error estimates from the most recent Dawid–Skene EM run
  /// (empty before the first kDawidSkene adjudication past the fallback
  /// threshold).
  const std::vector<double>& worker_error_estimates() const {
    return worker_error_estimates_;
  }

  /// True if the pair already has a verdict (adjudicated or preloaded).
  bool WasAsked(size_t index) const { return verdicts_.Known(index); }

  /// The remembered verdict for a pair with one (free lookup; does not
  /// count as a request). Precondition: WasAsked(index).
  bool CachedAnswer(size_t index) const { return verdicts_.Answer(index); }

  /// Every (index, verdict) held in memory — purchased and preloaded alike
  /// — ascending by index; the crowd-backend analogue of
  /// core::Oracle::AnswerSnapshot for streaming evidence re-keying.
  std::vector<std::pair<size_t, bool>> AnswerSnapshot() const {
    return verdicts_.Snapshot();
  }

  const CrowdOptions& options() const { return options_; }

  void Reset();

 private:
  /// Purchases votes and fixes verdicts for `fresh` (distinct, unknown)
  /// pairs, in order.
  void AdjudicateFresh(const std::vector<size_t>& fresh);
  /// The `workers_per_pair` distinct pool workers assigned to `index`.
  void AssignWorkers(size_t index, std::vector<uint32_t>* workers) const;

  const data::Workload* workload_;
  CrowdOptions options_;
  PagedAnswerBitmap verdicts_;
  size_t worker_answers_ = 0;
  size_t wrong_verdicts_ = 0;
  size_t total_requests_ = 0;
  size_t adjudicated_ = 0;
  size_t preloaded_ = 0;
  /// Purchase-ordered vote history (kDawidSkene only): item t is the t-th
  /// adjudicated pair.
  std::vector<stats::CrowdVote> votes_;
  size_t vote_items_ = 0;
  std::vector<double> worker_error_estimates_;
};

}  // namespace humo::core
