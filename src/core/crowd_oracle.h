#pragma once

#include <cstdint>
#include <vector>

#include "core/paged_bitmap.h"
#include "data/workload.h"

namespace humo::core {

/// Configuration of the simulated crowdsourcing workforce.
struct CrowdOptions {
  /// Odd number of workers asked per pair (majority vote).
  size_t workers_per_pair = 3;
  /// Each worker independently answers wrong with this probability.
  double worker_error_rate = 0.1;
  uint64_t seed = 123;
};

/// Crowdsourced human verification (the paper's §IX future-work direction):
/// instead of one perfect expert, each pair is judged by `workers_per_pair`
/// error-prone workers and resolved by majority vote. Cost is counted in
/// WORKER ANSWERS (the monetary unit of crowdsourcing platforms), not
/// distinct pairs — the accounting §IX calls more appropriate for crowds.
///
/// With per-worker error e and 2t+1 workers, the majority verdict errs with
/// probability sum_{j>t} C(2t+1,j) e^j (1-e)^(2t+1-j) — e.g. e=0.1 with 3
/// workers gives 2.8% verdict error, with 5 workers 0.86%.
///
/// Verdict memory uses the same paged bitmap as core::Oracle, so a crowd
/// pass over a 10M-pair workload holds megabytes, not the >0.5 GiB an
/// unordered_map verdict cache would.
class CrowdOracle {
 public:
  CrowdOracle(const data::Workload* workload, CrowdOptions options = {});

  /// Majority verdict for pair `index`; repeat queries return the cached
  /// verdict without re-asking the crowd.
  bool Label(size_t index);

  /// Batch adjudication: majority verdicts for `indices`, parallel to the
  /// input. One batch is one posted task group on a crowdsourcing platform;
  /// worker answers are purchased only for pairs without a cached verdict.
  std::vector<char> InspectBatch(const std::vector<size_t>& indices);

  /// Batch adjudication of the contiguous pair range [begin, end); returns
  /// the number of match verdicts among them.
  size_t InspectRange(size_t begin, size_t end);

  /// Total worker answers purchased.
  size_t worker_answers() const { return worker_answers_; }

  /// Every pair index ever requested, including repeats served from the
  /// verdict cache.
  size_t total_requests() const { return total_requests_; }

  /// Requests served from the verdict cache instead of a fresh crowd task.
  size_t duplicate_requests() const {
    return total_requests_ - pairs_adjudicated();
  }

  /// Distinct pairs adjudicated.
  size_t pairs_adjudicated() const { return verdicts_.known_count(); }

  /// Worker answers divided by workload size: the crowd-cost analogue of
  /// the paper's psi.
  double CostFraction() const;

  /// Fraction of adjudicated pairs whose verdict disagrees with the ground
  /// truth (observable in simulation only; used by tests and benches).
  double VerdictErrorRate() const;

  void Reset();

 private:
  const data::Workload* workload_;
  CrowdOptions options_;
  PagedAnswerBitmap verdicts_;
  size_t worker_answers_ = 0;
  size_t wrong_verdicts_ = 0;
  size_t total_requests_ = 0;
};

}  // namespace humo::core
