#include "core/solution.h"

#include <cassert>

#include "common/string_util.h"

namespace humo::core {

ResolutionResult ApplySolution(const SubsetPartition& partition,
                               const HumoSolution& solution, Oracle* oracle) {
  assert(oracle != nullptr);
  const auto& workload = partition.workload();
  ResolutionResult result;
  result.solution = solution;
  result.labels.assign(workload.size(), 0);

  if (workload.size() == 0) return result;

  size_t first_human = 0, last_human = 0;
  bool has_human = !solution.empty && partition.num_subsets() > 0;
  size_t match_from;  // first pair index labeled match automatically
  if (has_human) {
    assert(solution.h_lo <= solution.h_hi);
    assert(solution.h_hi < partition.num_subsets());
    first_human = partition[solution.h_lo].begin;
    last_human = partition[solution.h_hi].end;  // exclusive
    match_from = last_human;
  } else {
    // Machine-only split at subset h_lo's begin.
    match_from = partition.num_subsets() == 0
                     ? 0
                     : partition[std::min(solution.h_lo,
                                          partition.num_subsets() - 1)]
                           .begin;
  }

  // DH verification goes to the oracle as one batch of only the pairs it
  // has not already answered (answers from the optimization phase are free
  // lookups) — the same no-duplicate-request discipline the estimation
  // engine applies, so chained pipelines keep duplicate_requests() at zero.
  if (has_human) {
    std::vector<size_t> fresh;
    fresh.reserve(last_human - first_human);
    for (size_t i = first_human; i < last_human; ++i) {
      if (oracle->WasAsked(i)) {
        result.labels[i] = oracle->CachedAnswer(i) ? 1 : 0;
      } else {
        fresh.push_back(i);
      }
    }
    const std::vector<char> answers = oracle->InspectBatch(fresh);
    for (size_t t = 0; t < fresh.size(); ++t) {
      result.labels[fresh[t]] = answers[t] ? 1 : 0;
    }
  }
  for (size_t i = 0; i < workload.size(); ++i) {
    if (has_human && i >= first_human && i < last_human) continue;
    result.labels[i] = i >= match_from ? 1 : 0;
  }
  result.human_cost = oracle->cost();
  result.human_cost_fraction = oracle->CostFraction();
  return result;
}

std::string DescribeSolution(const SubsetPartition& partition,
                             const HumoSolution& solution) {
  if (solution.empty || partition.num_subsets() == 0) {
    return "DH = empty (machine-only)";
  }
  const size_t pairs = partition.PairsInRange(solution.h_lo, solution.h_hi);
  return StrFormat("DH = subsets [%zu, %zu] (%zu subsets, %zu pairs)",
                   solution.h_lo, solution.h_hi, solution.NumHumanSubsets(),
                   pairs);
}

}  // namespace humo::core
