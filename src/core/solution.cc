#include "core/solution.h"

#include <cassert>

#include "common/string_util.h"

namespace humo::core {

ResolutionResult ApplySolution(const SubsetPartition& partition,
                               const HumoSolution& solution, Oracle* oracle) {
  assert(oracle != nullptr);
  const auto& workload = partition.workload();
  ResolutionResult result;
  result.solution = solution;
  result.labels.assign(workload.size(), 0);

  if (workload.size() == 0) return result;

  size_t first_human = 0, last_human = 0;
  bool has_human = !solution.empty && partition.num_subsets() > 0;
  size_t match_from;  // first pair index labeled match automatically
  if (has_human) {
    assert(solution.h_lo <= solution.h_hi);
    assert(solution.h_hi < partition.num_subsets());
    first_human = partition[solution.h_lo].begin;
    last_human = partition[solution.h_hi].end;  // exclusive
    match_from = last_human;
  } else {
    // Machine-only split at subset h_lo's begin.
    match_from = partition.num_subsets() == 0
                     ? 0
                     : partition[std::min(solution.h_lo,
                                          partition.num_subsets() - 1)]
                           .begin;
  }

  for (size_t i = 0; i < workload.size(); ++i) {
    if (has_human && i >= first_human && i < last_human) {
      result.labels[i] = oracle->Label(i) ? 1 : 0;
    } else if (i >= match_from) {
      result.labels[i] = 1;
    } else {
      result.labels[i] = 0;
    }
  }
  result.human_cost = oracle->cost();
  result.human_cost_fraction = oracle->CostFraction();
  return result;
}

std::string DescribeSolution(const SubsetPartition& partition,
                             const HumoSolution& solution) {
  if (solution.empty || partition.num_subsets() == 0) {
    return "DH = empty (machine-only)";
  }
  const size_t pairs = partition.PairsInRange(solution.h_lo, solution.h_hi);
  return StrFormat("DH = subsets [%zu, %zu] (%zu subsets, %zu pairs)",
                   solution.h_lo, solution.h_hi, solution.NumHumanSubsets(),
                   pairs);
}

}  // namespace humo::core
