#pragma once

#include <cstdint>

#include "common/result.h"
#include "core/estimation_engine.h"
#include "core/oracle.h"
#include "core/partition.h"
#include "core/solution.h"

namespace humo::core {

/// Options of the all-sampling search (§VI-A).
struct AllSamplingOptions {
  /// Pairs sampled (and human-labeled) per subset.
  size_t samples_per_subset = 20;
  uint64_t seed = 5;
};

/// SAMP (all-sampling variant): samples every unit subset, then finds DH's
/// lower bound as the maximal subset index satisfying the recall condition
/// (Eq. 13) and its upper bound as the minimal index satisfying the
/// precision condition (Eq. 14). Error margins come from stratified random
/// sampling with Student-t critical values at confidence sqrt(theta) per
/// independent bound (Eq. 12), so each quality requirement holds with
/// confidence theta (Theorem 2).
///
/// The human cost of sampling every subset is what motivates the
/// partial-sampling variant; this implementation backs the
/// all-vs-partial ablation bench.
class AllSamplingOptimizer {
 public:
  explicit AllSamplingOptimizer(AllSamplingOptions options = {})
      : options_(options) {}

  /// Runs the search against a shared estimation context: subsets an
  /// earlier run already sampled (or fully enumerated) are served from the
  /// SubsetStatsCache without re-asking the oracle.
  Result<HumoSolution> Optimize(EstimationContext* ctx,
                                const QualityRequirement& req) const;

  /// Convenience entry point with a private, throwaway context.
  Result<HumoSolution> Optimize(const SubsetPartition& partition,
                                const QualityRequirement& req,
                                Oracle* oracle) const;

 private:
  AllSamplingOptions options_;
};

}  // namespace humo::core
