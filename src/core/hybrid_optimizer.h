#pragma once

#include <cstddef>

#include "common/result.h"
#include "core/estimation_engine.h"
#include "core/oracle.h"
#include "core/partial_sampling_optimizer.h"
#include "core/partition.h"
#include "core/risk_aware_optimizer.h"
#include "core/solution.h"

namespace humo::core {

/// Options of the hybrid search (§VII).
struct HybridOptions {
  /// Configuration of the initial partial-sampling run.
  PartialSamplingOptions sampling;
  /// BASE-style estimation window used for the monotonicity bounds.
  size_t window_subsets = 5;
  /// Risk mode (OptimizeRiskAware) only: an S0 subset adjacent to the
  /// selected range whose GP-posterior proportion half-width (at the run's
  /// confidence) exceeds this is absorbed into DH rather than left in
  /// D+/D-, where its bound penalty would be immovable — inspection is
  /// confined to DH, so one wide edge subset left outside costs more
  /// compensating inspections inside than absorbing it does.
  double risk_edge_uncertainty = 0.02;
};

/// HYBR: starts from the partial-sampling solution S0 = [i0, j0], resets DH
/// to the median subset of S0 and re-extends it outward, at every step
/// accepting a bound as soon as EITHER the monotonicity-based (BASE) or the
/// GP-sampling-based (SAMP) estimate certifies the corresponding quality
/// requirement — "the better of both worlds". DH never exceeds [i0, j0], so
/// the result costs at most as much as S0 (§VII).
class HybridOptimizer {
 public:
  explicit HybridOptimizer(HybridOptions options = {}) : options_(options) {}

  /// Runs the search against a shared estimation context. When the context
  /// already holds a partial-sampling outcome for the same requirement
  /// (from an earlier SAMP run), the S0 phase is skipped entirely and the
  /// re-extension phase issues zero duplicate oracle inspections — every
  /// subset SAMP enumerated is served from the SubsetStatsCache.
  Result<HumoSolution> Optimize(EstimationContext* ctx,
                                const QualityRequirement& req) const;

  /// Convenience entry point with a private, throwaway context.
  Result<HumoSolution> Optimize(const SubsetPartition& partition,
                                const QualityRequirement& req,
                                Oracle* oracle) const;

  /// HYBR with risk-ordered inspection inside its selected subsets. Like
  /// Optimize, DH is re-grown outward from the median subset of S0 and
  /// never exceeds S0's range — but no subset is labeled wholesale.
  /// Instead the range first grows, without any inspection, until its
  /// POTENTIAL certificate (CertifyRangePotential: the bounds full
  /// inspection could at best reach) meets the requirement, and then the
  /// shared risk certification loop (RiskAwareOptimizer::ResolveWithin)
  /// inspects the selected subsets' pairs in risk order until the actual
  /// bounds certify. A range that exhausts uncertified is grown toward the
  /// failing requirement and re-certified — nothing already inspected is
  /// wasted, the evidence persists in the oracle's memory.
  /// `risk_options.sampling` is ignored: S0 and the margins come from this
  /// optimizer's own options_.sampling; only the risk prior, batch size
  /// and inspection-order seed are consumed. The returned inspection stats
  /// aggregate pairs_inspected/batches across certification attempts;
  /// subsets_touched covers the final attempt.
  Result<RiskAwareOutcome> OptimizeRiskAware(
      EstimationContext* ctx, const QualityRequirement& req,
      const RiskAwareOptions& risk_options = {}) const;

  /// Risk-ordered variant with a private, throwaway context.
  Result<RiskAwareOutcome> OptimizeRiskAware(
      const SubsetPartition& partition, const QualityRequirement& req,
      Oracle* oracle, const RiskAwareOptions& risk_options = {}) const;

 private:
  HybridOptions options_;
};

}  // namespace humo::core
