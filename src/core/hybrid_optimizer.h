#pragma once

#include "common/result.h"
#include "core/estimation_engine.h"
#include "core/oracle.h"
#include "core/partial_sampling_optimizer.h"
#include "core/partition.h"
#include "core/solution.h"

namespace humo::core {

/// Options of the hybrid search (§VII).
struct HybridOptions {
  /// Configuration of the initial partial-sampling run.
  PartialSamplingOptions sampling;
  /// BASE-style estimation window used for the monotonicity bounds.
  size_t window_subsets = 5;
};

/// HYBR: starts from the partial-sampling solution S0 = [i0, j0], resets DH
/// to the median subset of S0 and re-extends it outward, at every step
/// accepting a bound as soon as EITHER the monotonicity-based (BASE) or the
/// GP-sampling-based (SAMP) estimate certifies the corresponding quality
/// requirement — "the better of both worlds". DH never exceeds [i0, j0], so
/// the result costs at most as much as S0 (§VII).
class HybridOptimizer {
 public:
  explicit HybridOptimizer(HybridOptions options = {}) : options_(options) {}

  /// Runs the search against a shared estimation context. When the context
  /// already holds a partial-sampling outcome for the same requirement
  /// (from an earlier SAMP run), the S0 phase is skipped entirely and the
  /// re-extension phase issues zero duplicate oracle inspections — every
  /// subset SAMP enumerated is served from the SubsetStatsCache.
  Result<HumoSolution> Optimize(EstimationContext* ctx,
                                const QualityRequirement& req) const;

  /// Convenience entry point with a private, throwaway context.
  Result<HumoSolution> Optimize(const SubsetPartition& partition,
                                const QualityRequirement& req,
                                Oracle* oracle) const;

 private:
  HybridOptions options_;
};

}  // namespace humo::core
