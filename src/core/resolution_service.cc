#include "core/resolution_service.h"

#include <algorithm>
#include <utility>

namespace humo::core {

// --- ResolutionSnapshot ---

uint64_t ResolutionSnapshot::ComputeChecksum() const {
  // FNV-1a. One byte per label: a label is 0/1, so the low byte carries it.
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](uint64_t byte) {
    h ^= byte & 0xFFu;
    h *= 1099511628211ULL;
  };
  const auto mix64 = [&mix](uint64_t v) {
    for (int b = 0; b < 8; ++b) mix(v >> (8 * b));
  };
  mix64(version_);
  mix64(epochs_ingested_);
  mix64(num_subsets_);
  mix64(evidence_pairs_);
  mix(quality_.has_estimate ? 1u : 0u);
  mix(quality_.certified ? 1u : 0u);
  mix64(labels_.size());
  for (const int label : labels_) mix(static_cast<uint64_t>(label));
  // The entity view is derived state, but folding its checksum in means a
  // torn clustering is as detectable as a torn label vector.
  mix64(entities_ != nullptr ? entities_->Checksum() : 0);
  return h;
}

// --- AsyncOracleQueue ---

AsyncOracleQueue::AsyncOracleQueue(ComputeFn compute, size_t workers)
    : compute_(std::move(compute)) {
  workers_.reserve(workers);
  for (size_t t = 0; t < workers; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncOracleQueue::~AsyncOracleQueue() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::vector<char> AsyncOracleQueue::InspectBlocking(
    const std::vector<size_t>& indices) {
  batches_inspected_.fetch_add(1, std::memory_order_relaxed);
  std::vector<char> answers(indices.size());
  if (indices.empty()) return answers;
  if (workers_.empty()) {
    // Synchronous crowd: the caller is the only human.
    for (size_t t = 0; t < indices.size(); ++t) {
      answers[t] = compute_(indices[t]) ? 1 : 0;
    }
    answers_produced_.fetch_add(indices.size(), std::memory_order_relaxed);
    return answers;
  }
  Batch batch;
  batch.indices = &indices;
  batch.answers = &answers;
  batch.remaining = indices.size();
  const size_t num_chunks = (indices.size() + kChunk - 1) / kChunk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t c = 0; c < num_chunks; ++c) {
      Task task;
      task.batch = &batch;
      tasks_.push_back(std::move(task));
    }
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return batch.done; });
  return answers;
}

void AsyncOracleQueue::SubmitReview(const data::InstancePair& pair,
                                    bool answer) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (workers_.empty()) {
      // Synchronous crowd: the verdict is delivered immediately; it still
      // folds in only at the next epoch boundary.
      completed_.push_back({pair, answer});
      answers_produced_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Task task;
    task.review = {pair, answer};
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

std::vector<AsyncOracleQueue::CompletedReview>
AsyncOracleQueue::TakeCompleted() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CompletedReview> out;
  out.swap(completed_);
  return out;
}

size_t AsyncOracleQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size() + in_flight_;
}

size_t AsyncOracleQueue::completed_unfolded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_.size();
}

void AsyncOracleQueue::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return tasks_.empty() && in_flight_ == 0; });
}

void AsyncOracleQueue::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      if (stop_) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
    }
    bool batch_done = false;
    if (task.batch != nullptr) {
      batch_done = RunChunk(task.batch);
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      completed_.push_back(std::move(task.review));
      answers_produced_.fetch_add(1, std::memory_order_relaxed);
    }
    bool idle = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      idle = tasks_.empty() && in_flight_ == 0;
    }
    if (batch_done || idle) done_cv_.notify_all();
  }
}

bool AsyncOracleQueue::RunChunk(Batch* batch) {
  size_t begin = 0, end = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    begin = batch->next;
    end = std::min(batch->indices->size(), begin + kChunk);
    batch->next = end;
  }
  // Answers land in index-addressed slots of the requester's output vector;
  // chunks write disjoint ranges, so the assembled batch is deterministic
  // no matter which worker finishes when.
  for (size_t t = begin; t < end; ++t) {
    (*batch->answers)[t] = compute_((*batch->indices)[t]) ? 1 : 0;
  }
  answers_produced_.fetch_add(end - begin, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  batch->remaining -= end - begin;
  if (batch->remaining == 0) {
    batch->done = true;
    return true;
  }
  return false;
}

// --- ResolutionService ---

ResolutionService::ResolutionService(ResolutionServiceOptions options,
                                     QualityRequirement req)
    : options_(options),
      req_(req),
      resolver_(options_.streaming, req_),
      queue_([this](size_t index) { return resolver_.oracle().InlineAnswer(index); },
             options_.crowd_workers) {
  // Fresh certification inspections flow through the crowd queue. The crowd
  // workers' compute function reads the resolver's workload, which is only
  // safe because certification holds the writer lock for its whole duration
  // — nothing can merge columns under a worker mid-answer.
  resolver_.SetOracleAnswerProvider(
      [this](const std::vector<size_t>& indices) {
        return queue_.InspectBlocking(indices);
      });
  std::lock_guard<std::mutex> lock(writer_mu_);
  PublishLocked();  // version 1: the empty snapshot, so snapshot() != null
}

ResolutionService::~ResolutionService() {
  // Join the certifier BEFORE queue_ is destroyed: its InspectBlocking
  // batches need live workers to complete. Review tasks still queued after
  // the join never touch the resolver (their verdicts were precomputed at
  // enqueue time) and are dropped with the queue.
  std::lock_guard<std::mutex> admin(cert_admin_mu_);
  JoinCertifierLocked();
}

EpochReport ResolutionService::Ingest(data::Shard shard) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  // Epoch boundary: fold BEFORE the merge, so the resolver's own re-keying
  // carries the folded answers across an interior merge like any others.
  FoldCompletedReviewsLocked();
  EpochReport report = resolver_.Ingest(std::move(shard));
  PublishLocked();
  return report;
}

bool ResolutionService::RequestCertification() {
  std::lock_guard<std::mutex> admin(cert_admin_mu_);
  if (cert_running_.load(std::memory_order_acquire)) return false;
  JoinCertifierLocked();
  cert_running_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> start(cert_start_mu_);
    cert_started_ = false;
  }
  cert_thread_ = std::thread([this] { RunCertification(); });
  // Block until the certifier owns the writer lock: the caller's next
  // Ingest then provably serializes AFTER the certification, pinning the
  // certified prefix to the epochs ingested before this call.
  std::unique_lock<std::mutex> start(cert_start_mu_);
  cert_start_cv_.wait(start, [this] { return cert_started_; });
  return true;
}

void ResolutionService::RunCertification() {
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    {
      std::lock_guard<std::mutex> start(cert_start_mu_);
      cert_started_ = true;
    }
    cert_start_cv_.notify_all();
    FoldCompletedReviewsLocked();
    last_cert_ = resolver_.Certify();
    PublishLocked();
  }
  cert_running_.store(false, std::memory_order_release);
}

size_t ResolutionService::EnqueueReview(
    const std::vector<data::InstancePair>& pairs) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  size_t enqueued = 0;
  for (const data::InstancePair& pair : pairs) {
    const size_t idx = resolver_.cumulative().IndexOfSorted(pair);
    if (idx >= resolver_.cumulative().size()) continue;  // not arrived yet
    if (resolver_.oracle().WasAsked(idx)) continue;      // already answered
    // The verdict is computed HERE, under the writer lock, against the
    // current index — a review answer is a pure function of the pair, so
    // computing it at submit time and delivering it later changes latency,
    // never the value. (Workers must not compute review answers themselves:
    // the pair's index shifts under interior merges.)
    queue_.SubmitReview(pair, resolver_.oracle().InlineAnswer(idx));
    ++enqueued;
  }
  reviews_enqueued_.fetch_add(enqueued, std::memory_order_relaxed);
  return enqueued;
}

Result<StreamingCertificate> ResolutionService::DrainToQuiescence() {
  {
    std::lock_guard<std::mutex> admin(cert_admin_mu_);
    JoinCertifierLocked();
  }
  queue_.WaitIdle();
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (FoldCompletedReviewsLocked() > 0) PublishLocked();
  if (!last_cert_.has_value()) {
    return Status::FailedPrecondition(
        "DrainToQuiescence: no certification was requested");
  }
  return *last_cert_;
}

std::shared_ptr<const ResolutionSnapshot> ResolutionService::snapshot() const {
  return std::atomic_load(&snapshot_);
}

std::optional<int> ResolutionService::LabelOf(size_t index) const {
  const std::shared_ptr<const ResolutionSnapshot> snap = snapshot();
  if (index >= snap->pairs()) return std::nullopt;
  return snap->LabelOf(index);
}

std::optional<int> ResolutionService::LabelOfPair(
    const data::InstancePair& pair) const {
  const std::shared_ptr<const ResolutionSnapshot> snap = snapshot();
  const std::optional<size_t> idx = snap->Find(pair);
  if (!idx.has_value()) return std::nullopt;
  return snap->LabelOf(*idx);
}

std::optional<uint32_t> ResolutionService::EntityOfRecord(
    entity::RecordRef record) const {
  return snapshot()->EntityOf(record);
}

size_t ResolutionService::FoldCompletedReviewsLocked() {
  std::vector<AsyncOracleQueue::CompletedReview> pending =
      std::move(deferred_reviews_);
  deferred_reviews_.clear();
  {
    std::vector<AsyncOracleQueue::CompletedReview> fresh =
        queue_.TakeCompleted();
    pending.insert(pending.end(), fresh.begin(), fresh.end());
  }
  size_t folded = 0;
  for (const AsyncOracleQueue::CompletedReview& review : pending) {
    if (resolver_.PreloadEvidence(review.pair, review.answer)) {
      ++folded;
    } else {
      // The pair is not in the cumulative workload (a verdict that outpaced
      // its shard); keep it for the next boundary.
      deferred_reviews_.push_back(review);
    }
  }
  reviews_folded_.fetch_add(folded, std::memory_order_relaxed);
  return folded;
}

void ResolutionService::PublishLocked() {
  // Refresh the provisional serving state first: when no evidence arrived
  // since the last refresh this is a structural no-op (pins stay valid, no
  // refit), so publishing never perturbs the resolver's deterministic state
  // — a service run and a bare-resolver run through the same schedule stay
  // bit-identical.
  const EpochReport report = resolver_.RefreshServing();

  auto snap = std::make_shared<ResolutionSnapshot>();
  snap->version_ = publish_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  snap->epochs_ingested_ = resolver_.epochs_ingested();
  snap->num_subsets_ = report.num_subsets;
  snap->subset_size_ = options_.streaming.subset_size;
  snap->evidence_pairs_ = report.evidence_pairs;
  snap->quality_.has_estimate = report.has_estimate;
  snap->quality_.precision = report.est_precision;
  snap->quality_.recall = report.est_recall;

  // Serve certificate labels only while the certificate is CURRENT: issued
  // at this epoch, covering every pair, with no evidence folded since
  // (total_inspections moved => review answers the certificate never saw).
  const StreamingCertificate* cert = resolver_.last_certificate();
  const bool cert_current =
      cert != nullptr && cert->epoch == resolver_.epochs_ingested() &&
      cert->resolution.labels.size() == resolver_.cumulative().size() &&
      cert->total_inspections == resolver_.total_inspections();
  snap->quality_.certified = cert_current && cert->certified;
  snap->labels_ =
      cert_current ? cert->resolution.labels : resolver_.provisional_labels();
  snap->workload_ = std::make_shared<data::Workload>(resolver_.cumulative());
  // Entity view: canonical clustering of the served labels, frozen with the
  // snapshot so EntityOf/MembersOf reads stay wait-free.
  snap->entities_ = std::make_shared<entity::EntityClustering>(
      entity::EntityClustering::FromLabels(*snap->workload_, snap->labels_,
                                           options_.entity));
  snap->checksum_ = snap->ComputeChecksum();

  std::atomic_store(&snapshot_,
                    std::shared_ptr<const ResolutionSnapshot>(std::move(snap)));
}

void ResolutionService::JoinCertifierLocked() {
  if (cert_thread_.joinable()) cert_thread_.join();
}

}  // namespace humo::core
