#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ipc_channel.h"
#include "core/estimation_engine.h"
#include "core/oracle.h"
#include "core/partition.h"
#include "data/workload.h"
#include "stats/stratified.h"

namespace humo::core {

/// One computation shard of a sorted workload: the contiguous GLOBAL pair
/// range [begin, end) and the global subset range [subset_begin,
/// subset_end) it covers. Shard boundaries always coincide with subset
/// boundaries (ShardCoordinator plans them that way), which is what makes a
/// shard-local SubsetPartition reproduce the global subsets restricted to
/// the shard — same [begin, end) geometry, bitwise-identical
/// avg_similarity, because the per-subset similarity sums add the same
/// values in the same order.
struct ShardSpec {
  size_t shard = 0;
  size_t begin = 0;         ///< first global pair index
  size_t end = 0;           ///< one past the last global pair index
  size_t subset_begin = 0;  ///< first global subset index
  size_t subset_end = 0;    ///< one past the last global subset index

  size_t num_pairs() const { return end - begin; }
  size_t num_subsets() const { return subset_end - subset_begin; }
};

/// The global labeling geometry a worker needs to label its slice exactly
/// the way core::ApplySolution labels the full workload: everything in
/// GLOBAL pair indices. Mirrors the header computation of ApplySolution —
/// pairs in [dh_begin, dh_end) take the oracle's answer, pairs at or after
/// match_from are machine-matched, the rest machine-unmatched.
struct GlobalLabelingPlan {
  bool has_human = false;
  size_t dh_begin = 0;
  size_t dh_end = 0;
  size_t match_from = 0;
};

/// Per-shard estimation evidence, merged by the coordinator in shard-id
/// order: one stats::Stratum per LOCAL subset (global subset subset_begin +
/// j) summarizing every oracle answer the shard holds, plus the shard's
/// oracle cost accounting and the Beta-posterior counts (1 + positives,
/// 1 + negatives over the sampled evidence) the merge aggregates.
struct ShardEvidence {
  size_t shard = 0;
  std::vector<stats::Stratum> strata;
  size_t cost = 0;             ///< distinct pairs freshly inspected here
  size_t total_requests = 0;   ///< every index routed to this shard
  size_t duplicate_requests = 0;
  /// Beta(1,1)-prior posterior over the shard's answered pairs.
  double posterior_alpha = 1.0;
  double posterior_beta = 1.0;
};

/// The per-shard resolution engine: a self-contained (workload slice,
/// partition, oracle, estimation context) quadruple that answers oracle
/// batches for its similarity range, accumulates subset-level evidence
/// through the estimation engine, and labels its slice under a global
/// solution. One instance runs per shard — in-process, or inside a forked
/// worker process serving the wire protocol below (every operation is
/// serial and touches no process-global state, so it is fork- and
/// thread-safe by construction; distinct shards share nothing mutable).
///
/// The oracle is constructed with index_offset = spec.begin, so the
/// simulated human's error flips hash the GLOBAL pair index: a shard
/// answers exactly what the one-shot oracle would answer for the same pair,
/// which is the keystone of the coordinator's bit-identity contract.
class ShardResolver {
 public:
  /// Copies rows [spec.begin, spec.end) of `global` into a local slice.
  /// `global` does not need to outlive the resolver.
  ShardResolver(const data::Workload& global, const ShardSpec& spec,
                size_t subset_size, double oracle_error_rate,
                uint64_t oracle_seed);

  ShardResolver(const ShardResolver&) = delete;
  ShardResolver& operator=(const ShardResolver&) = delete;

  const ShardSpec& spec() const { return spec_; }
  const data::Workload& slice() const { return local_; }
  const SubsetPartition& partition() const { return partition_; }
  const Oracle& oracle() const { return oracle_; }
  const EstimationContext& context() const { return ctx_; }

  /// Answers one batch of LOCAL pair indices, recording fresh answers in
  /// the shard oracle (distinct-pair cost accounting) and refreshing the
  /// per-subset evidence strata through the estimation engine. Returns one
  /// answer per input index, parallel to the input.
  std::vector<char> AnswerBatch(const std::vector<size_t>& local_indices);

  /// Labels every pair of the slice under the global plan; answers for DH
  /// pairs come from the shard oracle (already-held answers are free,
  /// unseen DH pairs are freshly inspected). Returned labels are in local
  /// order; concatenating shards in id order reproduces the global
  /// ApplySolution labeling bit for bit.
  std::vector<int> ApplyGlobal(const GlobalLabelingPlan& plan);

  /// Snapshot of the shard's evidence for the coordinator's merge.
  ShardEvidence Evidence() const;

 private:
  ShardSpec spec_;
  data::Workload local_;
  SubsetPartition partition_;
  Oracle oracle_;
  EstimationContext ctx_;
};

/// Wire protocol of a forked shard worker. Requests are one frame each:
/// a u8 tag followed by the tag-specific payload; responses are one frame.
/// Codec helpers are shared by the coordinator and the worker loop so the
/// two sides cannot drift.
enum class ShardRequest : uint8_t {
  kAnswer = 1,    ///< u64 count, count x u64 local index -> count x u8
  kApply = 2,     ///< plan (u8 has_human, 3 x u64)       -> num_pairs x u8
  kEvidence = 3,  ///< (empty)                            -> ShardEvidence
  kShutdown = 4,  ///< (empty)                            -> (empty), exit
};

std::vector<uint8_t> EncodeAnswerRequest(const std::vector<size_t>& indices);
std::vector<uint8_t> EncodeApplyRequest(const GlobalLabelingPlan& plan);
std::vector<uint8_t> EncodeEvidenceRequest();
std::vector<uint8_t> EncodeShutdownRequest();
std::vector<uint8_t> EncodeEvidence(const ShardEvidence& evidence);
/// False when the payload is truncated or malformed.
bool DecodeEvidence(const std::vector<uint8_t>& payload,
                    ShardEvidence* evidence);

/// Serves requests over `channel` against `resolver` until a kShutdown
/// frame, a closed peer, or a malformed request. The forked child's entire
/// life: strictly serial, no ThreadPool, no stdio.
void ServeShardWorker(ShardResolver* resolver, IpcChannel* channel);

}  // namespace humo::core
