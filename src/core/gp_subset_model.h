#pragma once

#include <cstddef>
#include <vector>

#include "gp/gp_regression.h"
#include "linalg/matrix.h"

namespace humo::core {

/// Per-subset observation status feeding the bound computation.
struct SubsetObservation {
  /// True when the subset was fully enumerated by the human — its match
  /// count is then known exactly and contributes no uncertainty.
  bool exact = false;
  /// Observed match proportion (only meaningful when exact).
  double proportion = 0.0;
};

/// A fitted Gaussian-process view over the unit subsets of a workload:
/// per-subset posterior match-proportion means plus the machinery needed to
/// bound the total match count of any contiguous subset range (the n+ of
/// Eq. 13/14 computed via Eq. 19-21).
///
/// The statistical model is: subset proportion p_k = f(v_k) + e_k with a
/// smooth latent f (the GP) and independent per-subset scatter
/// e_k ~ N(0, scatter_var) capturing the distribution irregularity the
/// paper's sigma parameter controls. Fully-enumerated subsets enter ranges
/// with their exact counts; unsampled subsets contribute the GP posterior
/// of f (correlated across subsets, Eq. 20) plus their own independent
/// scatter variance.
class GpSubsetModel {
 public:
  /// `avg_similarity[k]` / `subset_sizes[k]` describe subset k of the
  /// partition; the GP must have been fitted on sampled (similarity,
  /// proportion) observations. `observations` (optional, may be empty)
  /// marks exactly-known subsets; `scatter_variance` (empty = all zero) is
  /// the independent per-subset proportion variance: workload irregularity
  /// plus the binomial realization variance of the subset's count around
  /// the latent rate.
  /// `variance_inflation` scales the GP-posterior part of every range
  /// variance; it is the leave-one-out calibration factor measured on the
  /// sampled subsets (1 = the GP is well calibrated; >1 = the fit misses
  /// its own pins by more than its posterior claims, so widen the bounds).
  GpSubsetModel(gp::GpRegression gp, std::vector<double> avg_similarity,
                std::vector<double> subset_sizes,
                std::vector<SubsetObservation> observations = {},
                std::vector<double> scatter_variance = {},
                double variance_inflation = 1.0);

  size_t num_subsets() const { return v_.size(); }

  /// Best estimate of subset k's match proportion: the exact observation
  /// when available, otherwise the GP posterior mean clamped to [0,1].
  double PosteriorMean(size_t k) const { return mean_[k]; }

  /// True when subset k's match count is exactly known.
  bool IsExact(size_t k) const {
    return !obs_.empty() && obs_[k].exact;
  }

  /// Posterior variance of subset k's match proportion: the LOO-inflated GP
  /// posterior variance at v_k plus the subset's independent scatter; 0 for
  /// exact subsets. Computed from the cached whitened cross vector
  /// (GpRegression::PosteriorVarianceFromWhitened), so it costs one kernel
  /// evaluation plus one O(train) dot product — this is the per-subset
  /// uncertainty the risk-aware optimizer scores inspection priority with.
  double PosteriorVariance(size_t k) const;

  /// Independent scatter variance applied to non-exact subset k.
  double ScatterVariance(size_t k) const {
    return scatter_.empty() ? 0.0 : scatter_[k];
  }

  /// LOO calibration factor applied to the GP-posterior variance part.
  double variance_inflation() const { return variance_inflation_; }

  /// Whitened cross vector of subset k (L^-1 k(V, v_k)).
  const linalg::Vector& W(size_t k) const { return w_[k]; }

  /// Prior kernel value between subsets a and b.
  double PriorK(size_t a, size_t b) const;

  double SubsetSize(size_t k) const { return n_[k]; }
  double AvgSimilarity(size_t k) const { return v_[k]; }

  /// Total pairs in subsets [a, b]; 0 when a > b.
  double PopulationInRange(size_t a, size_t b) const;

  const gp::GpRegression& gp() const { return gp_; }

 private:
  gp::GpRegression gp_;
  std::vector<double> v_;
  std::vector<double> n_;
  std::vector<double> mean_;
  std::vector<linalg::Vector> w_;
  std::vector<SubsetObservation> obs_;
  std::vector<double> scatter_;
  double variance_inflation_ = 1.0;
  std::vector<double> pop_prefix_;  // pop_prefix_[k] = sum n_[0..k-1]
};

/// Incrementally maintained estimate of the total match count over a
/// contiguous subset range [a, b], following Eq. 19-21:
///   mean  = sum_k n_k m_k
///   var   = sum_{k,l not exact} n_k n_l cov(k,l) + sum_{k not exact}
///           n_k^2 scatter_var
/// with cov from the GP posterior, decomposed as
///   cov(k,l) = K(v_k,v_l) - w_k.w_l
/// so extending or shrinking the range by one subset costs
/// O(range + dim(w)), keeping the optimizer's monotone bound sweeps at
/// O(m^2) total. Exact subsets contribute their known counts and no
/// variance.
class GpRangeAccumulator {
 public:
  explicit GpRangeAccumulator(const GpSubsetModel* model);

  /// Rebuilds the accumulator for range [a, b] (inclusive); O(len^2).
  void SetRange(size_t a, size_t b);
  /// Makes the range empty.
  void Clear();

  bool IsEmpty() const { return empty_; }
  size_t a() const { return a_; }
  size_t b() const { return b_; }

  /// Grows the range by one subset on either side.
  void ExtendRight();
  void ExtendLeft();
  /// Shrinks the range by one subset on either side. Shrinking a
  /// single-subset range empties it.
  void ShrinkLeft();
  void ShrinkRight();

  /// Point estimate of total matches in the range (Eq. 19), clamped to
  /// [0, population].
  double TotalMean() const;
  /// Posterior std-dev of the total (Eq. 20 + independent scatter).
  double TotalStdDev() const;
  /// Two-sided bound at `confidence` (Eq. 21), clamped to [0, population].
  double LowerBound(double confidence) const;
  double UpperBound(double confidence) const;
  double Population() const;

 private:
  void AddSubset(size_t k);
  void RemoveSubset(size_t k);

  const GpSubsetModel* model_;
  size_t a_ = 0, b_ = 0;
  bool empty_ = true;
  double mean_sum_ = 0.0;
  double prior_q_ = 0.0;   // sum_{k,l in range, non-exact} n_k n_l K(v_k,v_l)
  linalg::Vector w_sum_;   // sum_{k non-exact} n_k w_k
  double scatter_sum_ = 0.0;  // sum_{k non-exact} n_k^2 scatter_k
  double pop_sum_ = 0.0;
};

}  // namespace humo::core
