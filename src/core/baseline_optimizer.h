#pragma once

#include <cstddef>

#include "common/result.h"
#include "core/estimation_engine.h"
#include "core/oracle.h"
#include "core/partition.h"
#include "core/solution.h"

namespace humo::core {

/// Options of the conservative baseline search (§V).
struct BaselineOptions {
  /// Estimation window: the match-proportion bounds of D+ / D- are taken
  /// from the average observed proportion of this many consecutive
  /// freshly-labeled subsets (the paper recommends 3..10; larger = more
  /// conservative).
  size_t window_subsets = 5;
  /// Starting subset of the search; when kAutoStart the subset containing
  /// the midpoint of the similarity support is used ("an initial medium
  /// similarity value (e.g. the boundary value of a classifier or simply a
  /// median value)", §V). On post-blocking workloads the midpoint of the
  /// similarity range sits near the match/unmatch transition, which is what
  /// a classifier boundary would give; the *pair-count* median would instead
  /// land deep inside the unmatch bulk and force a long, expensive walk.
  static constexpr size_t kAutoStart = static_cast<size_t>(-1);
  size_t start_subset = kAutoStart;
};

/// BASE: purely monotonicity-based search (§V).
///
/// Starting from a medium subset, DH is alternately extended one subset
/// rightward and leftward. Every subset absorbed into DH is human-labeled
/// through the oracle. The upper bound freezes once the last `window`
/// labeled subsets on the upper side have an observed match proportion
/// reaching the Eq. 7 threshold (monotonicity then guarantees D+ is at
/// least as pure). The lower bound freezes once the last `window` labeled
/// subsets on the lower side fall to the Eq. 9 threshold. Under
/// monotonicity the returned solution meets alpha/beta with certainty
/// (Theorem 1); theta is not consumed.
class BaselineOptimizer {
 public:
  explicit BaselineOptimizer(BaselineOptions options = {})
      : options_(options) {}

  /// Runs the search against a shared estimation context: subsets already
  /// labeled there (by any earlier optimizer run) are served from the cache
  /// without re-asking the oracle.
  Result<HumoSolution> Optimize(EstimationContext* ctx,
                                const QualityRequirement& req) const;

  /// Convenience entry point with a private, throwaway context. The oracle
  /// accumulates the cost of every subset DH absorbed (labels are needed to
  /// compute observed proportions).
  Result<HumoSolution> Optimize(const SubsetPartition& partition,
                                const QualityRequirement& req,
                                Oracle* oracle) const;

 private:
  BaselineOptions options_;
};

}  // namespace humo::core
