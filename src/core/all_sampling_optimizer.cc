#include "core/all_sampling_optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "stats/distributions.h"
#include "stats/stratified.h"

namespace humo::core {
namespace {

/// Prefix-summed stratified estimates: O(1) range queries over subsets.
/// Strata are independent, so means / variances / degrees of freedom all
/// add across a range.
class StratifiedRanges {
 public:
  explicit StratifiedRanges(const std::vector<stats::Stratum>& strata) {
    const size_t m = strata.size();
    mean_.assign(m + 1, 0.0);
    var_.assign(m + 1, 0.0);
    df_.assign(m + 1, 0.0);
    pop_.assign(m + 1, 0.0);
    for (size_t k = 0; k < m; ++k) {
      const auto& st = strata[k];
      const double n = static_cast<double>(st.population);
      const double v = st.proportion_variance();
      mean_[k + 1] = mean_[k] + n * st.proportion();
      var_[k + 1] = var_[k] + n * n * v;
      df_[k + 1] = df_[k] + ((!st.fully_enumerated() && st.sample_size >= 2 &&
                              v > 0.0)
                                 ? static_cast<double>(st.sample_size - 1)
                                 : 0.0);
      pop_[k + 1] = pop_[k] + n;
    }
  }

  stats::StratifiedEstimate Range(size_t a, size_t b) const {
    stats::StratifiedEstimate est;
    if (a > b || b + 1 >= mean_.size() + 1) return est;
    est.total_mean = mean_[b + 1] - mean_[a];
    est.total_stddev = std::sqrt(std::max(0.0, var_[b + 1] - var_[a]));
    est.degrees_of_freedom = df_[b + 1] - df_[a];
    est.population = static_cast<size_t>(pop_[b + 1] - pop_[a]);
    return est;
  }

 private:
  std::vector<double> mean_, var_, df_, pop_;
};

}  // namespace

Result<HumoSolution> AllSamplingOptimizer::Optimize(
    const SubsetPartition& partition, const QualityRequirement& req,
    Oracle* oracle) const {
  if (oracle == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  EstimationContext ctx(&partition, oracle);
  return Optimize(&ctx, req);
}

Result<HumoSolution> AllSamplingOptimizer::Optimize(
    EstimationContext* ctx, const QualityRequirement& req) const {
  if (ctx == nullptr)
    return Status::InvalidArgument("estimation context must not be null");
  if (ctx->oracle() == nullptr)
    return Status::InvalidArgument("oracle must not be null");
  const SubsetPartition& partition = ctx->partition();
  const size_t m = partition.num_subsets();
  if (m == 0) return Status::InvalidArgument("empty workload");
  if (options_.samples_per_subset == 0)
    return Status::InvalidArgument("samples_per_subset must be positive");

  // Phase 1: sample every subset (memoized through the context's cache, so
  // strata an earlier run paid for are reused at zero human cost).
  Rng rng(options_.seed);
  std::vector<stats::Stratum> strata(m);
  for (size_t k = 0; k < m; ++k) {
    strata[k] = ctx->SampleSubset(k, options_.samples_per_subset, &rng);
  }
  StratifiedRanges ranges(strata);
  const double conf = std::sqrt(req.theta);

  // Phase 2a: maximal lower bound i satisfying the recall condition
  //   beta <= lb(n+[i, m-1]) / (ub(n+[0, i-1]) + lb(n+[i, m-1])).
  auto recall_ok = [&](size_t i) {
    const double lb_keep = ranges.Range(i, m - 1).LowerBound(conf);
    const double ub_lost =
        i == 0 ? 0.0 : ranges.Range(0, i - 1).UpperBound(conf);
    const double denom = ub_lost + lb_keep;
    if (denom <= 0.0) return true;  // nothing estimated lost: recall 1
    return req.beta <= lb_keep / denom;
  };
  size_t i = 0;
  while (i + 1 < m && recall_ok(i + 1)) ++i;

  // Phase 2b: minimal upper bound j >= i satisfying the precision condition
  //   alpha <= (lb(n+[i,j]) + lb(n+[j+1,m-1])) / (lb(n+[i,j]) + n[j+1,m-1]).
  auto precision_ok = [&](size_t j) {
    if (j + 1 >= m) return true;  // D+ empty: precision 1 after human pass
    const double lb_dh = ranges.Range(i, j).LowerBound(conf);
    const double lb_dplus = ranges.Range(j + 1, m - 1).LowerBound(conf);
    const double n_dplus =
        static_cast<double>(partition.PairsInRange(j + 1, m - 1));
    const double denom = lb_dh + n_dplus;
    if (denom <= 0.0) return true;
    return req.alpha <= (lb_dh + lb_dplus) / denom;
  };
  size_t j = m - 1;
  while (j > i && precision_ok(j - 1)) --j;

  HumoSolution sol;
  sol.h_lo = i;
  sol.h_hi = j;
  sol.empty = false;
  return sol;
}

}  // namespace humo::core
