#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/paged_bitmap.h"
#include "data/workload.h"

namespace humo::core {

/// Simulated human verifier over a workload's hidden ground truth.
///
/// The paper's protocol (§VIII-A): "the ground-truth labels are originally
/// hidden; whenever manual verification is called for, they are provided to
/// the program". The oracle is the only path through which optimizers may
/// observe labels, and it accounts for human cost as the number of DISTINCT
/// pairs inspected (repeat queries on the same pair are free — the answer is
/// already known).
///
/// Answer memory is a paged bitmap (core/paged_bitmap.h), not a hash map:
/// a fully inspected 10M-pair workload costs ~2.5 MiB instead of the
/// >0.5 GiB an unordered_map<size_t, bool> node store reaches, and every
/// lookup is two bit probes. Cost counters are tracked directly
/// (`inspected_` fresh inspections, `preloaded_` seeded answers) rather
/// than derived by subtracting container sizes, so no preload/inspect
/// ordering can underflow cost() — the regression the pre-overhaul
/// `answers_.size() - preloaded_` formula was one bookkeeping slip away
/// from turning into a ~SIZE_MAX human cost.
///
/// An optional error rate models imperfect humans (§IV discusses that HUMO's
/// guarantees then degrade to what the human achieves on DH): each pair's
/// answer is flipped with probability `error_rate`, deterministically per
/// pair (asking twice cannot fix a wrong answer).
class Oracle {
 public:
  /// Out-of-band answer source for pairs that have no remembered answer
  /// yet: receives the distinct unanswered indices of one inspection batch
  /// (first-occurrence order) and returns one answer per index, parallel to
  /// the input. The resolution service's bridge onto its asynchronous crowd
  /// queue. A provider MUST return exactly the answers InlineAnswer()
  /// computes — routing changes who answers and when, never the values —
  /// which is what keeps the drain-to-quiescence contract bit-identical to
  /// the inline run. Cost accounting is unchanged either way.
  using AnswerProvider =
      std::function<std::vector<char>(const std::vector<size_t>&)>;

  /// `index_offset` shifts the index fed to the error-injection hash (not
  /// the workload lookup): a shard-local oracle over a slice beginning at
  /// global pair `offset` constructs with that offset so its
  /// InlineAnswer(local) equals the global oracle's InlineAnswer(local +
  /// offset) — the simulated human's verdict is a property of the PAIR, not
  /// of which shard happens to ask. 0 (the default) is the one-shot case.
  explicit Oracle(const data::Workload* workload, double error_rate = 0.0,
                  uint64_t seed = 99, uint64_t index_offset = 0);

  /// Human-labels pair `index`; returns true when labeled match.
  bool Label(size_t index);

  /// The deterministic verdict the simulated human gives for `index`:
  /// ground truth XOR the seeded per-index error flip. Pure (no memory, no
  /// counters) and safe to call concurrently with const access — this is
  /// the function an AnswerProvider's crowd workers evaluate so that
  /// out-of-band answers are indistinguishable from inline ones.
  bool InlineAnswer(size_t index) const;

  /// Routes fresh inspections through `provider` (nullptr restores inline
  /// answering). Already-remembered answers are still served from memory
  /// without consulting the provider.
  void SetAnswerProvider(AnswerProvider provider) {
    provider_ = std::move(provider);
  }

  /// Batch inspection: answers for `indices`, parallel to the input. Cost
  /// accounting is identical to calling Label() per index — each DISTINCT
  /// pair is charged once — but the batch is the unit of human interaction
  /// (one crowd task / review session instead of one round-trip per pair),
  /// which is what the estimation engine routes through.
  std::vector<char> InspectBatch(const std::vector<size_t>& indices);

  /// Batch inspection of the contiguous pair range [begin, end); returns
  /// the number of matches among them.
  size_t InspectRange(size_t begin, size_t end);

  /// Seeds the answer memory with an answer that was already paid for
  /// elsewhere — the streaming resolver's evidence carry-over across epoch
  /// merges, where pair indices shift and answers must be re-keyed. A
  /// preloaded answer is free: it adds nothing to cost() or
  /// total_requests(), and later queries on the pair are served from memory
  /// exactly like a previously inspected one (WasAsked/CachedAnswer see
  /// it). Preloading an index that already has an answer is a no-op.
  void Preload(size_t index, bool answer);

  /// Number of answers seeded through Preload (and still distinct from any
  /// fresh inspection).
  size_t preloaded() const { return preloaded_; }

  /// Number of distinct pairs freshly inspected so far (the paper's
  /// human-cost metric). Preloaded answers are excluded — they were paid
  /// for wherever they were originally inspected.
  size_t cost() const { return inspected_; }

  /// Every pair index ever passed to Label/InspectBatch/InspectRange,
  /// including repeats answered from memory.
  size_t total_requests() const { return total_requests_; }

  /// Requests that were answered from memory instead of a fresh inspection.
  /// The estimation engine's caches exist to keep this at zero: a duplicate
  /// request is a wasted round-trip to the human even though it is free in
  /// the paper's distinct-pair cost metric.
  size_t duplicate_requests() const { return total_requests_ - inspected_; }

  /// Cost as a fraction of the workload (the psi of Tables V/VI).
  double CostFraction() const;

  /// True if the pair was already inspected (or preloaded).
  bool WasAsked(size_t index) const { return answers_.Known(index); }

  /// The remembered answer for an already-inspected pair (free lookup; does
  /// not count as a request). Precondition: WasAsked(index).
  bool CachedAnswer(size_t index) const { return answers_.Answer(index); }

  /// Forgets all answers (including preloads) and resets every counter.
  void Reset();

  /// Every (index, answer) held in memory — fresh inspections and preloads
  /// alike — ascending by index so the snapshot is deterministic. This is
  /// what the streaming resolver persists across an epoch merge before
  /// re-keying the answers against the merged workload.
  std::vector<std::pair<size_t, bool>> AnswerSnapshot() const {
    return answers_.Snapshot();
  }

  /// Bytes of answer memory currently held (paged bitmap + page table) —
  /// reported by bench_scale against the hash-map layout it replaced.
  size_t AnswerMemoryBytes() const { return answers_.MemoryBytes(); }

  const data::Workload& workload() const { return *workload_; }

 private:
  const data::Workload* workload_;
  double error_rate_;
  uint64_t seed_;
  uint64_t index_offset_;
  size_t total_requests_ = 0;
  size_t inspected_ = 0;
  size_t preloaded_ = 0;
  PagedAnswerBitmap answers_;
  AnswerProvider provider_;  // nullptr: answer inline (the default)
};

}  // namespace humo::core
