#pragma once

#include <cstdint>
#include <unordered_map>

#include "data/workload.h"

namespace humo::core {

/// Simulated human verifier over a workload's hidden ground truth.
///
/// The paper's protocol (§VIII-A): "the ground-truth labels are originally
/// hidden; whenever manual verification is called for, they are provided to
/// the program". The oracle is the only path through which optimizers may
/// observe labels, and it accounts for human cost as the number of DISTINCT
/// pairs inspected (repeat queries on the same pair are free — the answer is
/// already known).
///
/// An optional error rate models imperfect humans (§IV discusses that HUMO's
/// guarantees then degrade to what the human achieves on DH): each pair's
/// answer is flipped with probability `error_rate`, deterministically per
/// pair (asking twice cannot fix a wrong answer).
class Oracle {
 public:
  explicit Oracle(const data::Workload* workload, double error_rate = 0.0,
                  uint64_t seed = 99);

  /// Human-labels pair `index`; returns true when labeled match.
  bool Label(size_t index);

  /// Number of distinct pairs inspected so far (the paper's human-cost
  /// metric).
  size_t cost() const { return answers_.size(); }

  /// Cost as a fraction of the workload (the psi of Tables V/VI).
  double CostFraction() const;

  /// True if the pair was already inspected.
  bool WasAsked(size_t index) const { return answers_.count(index) > 0; }

  /// Forgets all answers and resets the cost counter.
  void Reset();

  const data::Workload& workload() const { return *workload_; }

 private:
  const data::Workload* workload_;
  double error_rate_;
  uint64_t seed_;
  std::unordered_map<size_t, bool> answers_;
};

}  // namespace humo::core
