#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/sharded_resolver.h"
#include "core/streaming_resolver.h"
#include "data/workload.h"
#include "stats/stratified.h"

namespace humo::core {

/// How the coordinator reaches its shard workers.
enum class ShardTransport {
  /// ShardResolver objects in this process; batches are dispatched across
  /// shards on the global ThreadPool (deterministic: disjoint per-shard
  /// state, responses merged in shard-id order). The fallback when fork is
  /// unavailable, and the mode the TSan suites exercise.
  kInProcess,
  /// One forked worker process per shard, talking length-prefixed frames
  /// over a socketpair (common/ipc_channel.h). The workload slice reaches
  /// the child copy-on-write at fork time — nothing is serialized. Falls
  /// back to kInProcess when fork is unavailable on the platform.
  kFork,
};

struct ShardedOptions {
  /// Worker shards to partition the computation into. Clamped to the
  /// number of subsets (a shard must own at least one whole subset).
  size_t num_shards = 4;
  ShardTransport transport = ShardTransport::kInProcess;
  /// The certification configuration, shared verbatim with the one-shot
  /// StreamingResolver run the bit-identity contract compares against
  /// (certifier, sampling seed, subset size, oracle error model).
  StreamingOptions streaming;
  /// Total oracle budget (distinct fresh inspections) split across shards
  /// via stats::AllocateSamples proportionally to shard populations.
  /// 0 = unlimited: every shard's allocation equals its population and
  /// budget settlement is a no-op — the default, and the mode the
  /// bit-identity contract is stated in. A finite budget never changes any
  /// answer or the certification path; it is settled AFTER the run
  /// (ReallocateUnspent moves unspent shard allocations to over-demand
  /// shards) and the resolve fails with an OutOfRange error when total
  /// demand exceeds it.
  size_t oracle_budget = 0;
};

/// Per-shard accounting of one sharded resolution.
struct ShardReport {
  ShardSpec spec;
  /// Proportional budget share from stats::AllocateSamples.
  size_t budget_allocated = 0;
  /// Final grant after ReallocateUnspent settled under-spent allocations
  /// against demands (== demand when the global budget sufficed).
  size_t budget_granted = 0;
  /// Distinct fresh inspections this shard answered (its demand).
  size_t answered = 0;
  /// Answer batches routed to this shard.
  size_t batches = 0;
  /// Evidence returned by the worker (strata in local subset order).
  ShardEvidence evidence;
};

/// Result of ShardCoordinator::Resolve: the global certificate plus the
/// merged per-shard evidence and the consistency checks that prove the
/// merge reproduced the one-shot state.
struct ShardedCertificate {
  /// The global alpha/beta/theta certificate over the merged evidence —
  /// bit-identical (solution, labels, costs) to the one-shot
  /// StreamingResolver::Certify() on the same workload and options.
  StreamingCertificate certificate;
  std::vector<ShardReport> shards;

  /// Per-global-subset evidence merged from the shards in shard-id order.
  std::vector<stats::Stratum> merged_strata;
  /// Beta posterior over all merged evidence (1 + positives,
  /// 1 + negatives), the aggregate the per-shard posteriors combine into.
  double posterior_alpha = 1.0;
  double posterior_beta = 1.0;

  /// Sum of per-shard distinct inspections — the sharded run's total
  /// oracle cost. Equals certificate.total_inspections when
  /// evidence_consistent.
  size_t merged_cost = 0;

  /// True when the shard-merged evidence matches the coordinator's global
  /// oracle state exactly: every stratum's population/sample/positive
  /// counts, and merged_cost == the certificate's total inspections.
  bool evidence_consistent = false;
  /// True when the concatenation of per-shard ApplyGlobal labelings (in
  /// shard-id order) is bit-identical to the certificate's labeling.
  bool labels_consistent = false;
  /// Transport that actually ran (kFork degrades to kInProcess when the
  /// platform has no fork).
  ShardTransport transport = ShardTransport::kInProcess;
};

/// Budget-allocating coordinator for sharded multi-process resolution.
///
/// Partitions a sorted workload into K contiguous computation shards whose
/// boundaries coincide with subset boundaries (a subset never straddles
/// shards), stands up one ShardResolver per shard — forked worker
/// processes, or in-process objects dispatched on the thread pool — and
/// runs the UNCHANGED certification machinery over the global workload
/// with the oracle in AnswerProvider mode: every batch of fresh
/// inspections is split by owning shard, answered by the shards
/// concurrently, and re-assembled in deterministic shard-id order. Because
/// a shard's answers are a pure function of the global pair index (see
/// Oracle index_offset) and the decision path is literally the one-shot
/// code consuming identical answers, the merged solution, labeling, and
/// total oracle cost are bit-identical to the one-shot StreamingResolver
/// run — the contract the golden tests and bench_sharded pin at
/// K in {1, 2, 4, 8}.
///
/// The oracle budget is split across shards up front with
/// stats::AllocateSamples (proportional to shard populations) and settled
/// after certification with stats::ReallocateUnspent, so an under-spending
/// shard funds an over-demanding one; only global exhaustion fails the
/// run. After certification the coordinator collects each shard's
/// estimation evidence (per-subset strata, Beta posteriors, cost
/// counters), merges it in shard-id order, and cross-checks the merge
/// against its own oracle state — the certificate reports both
/// consistency verdicts.
class ShardCoordinator {
 public:
  ShardCoordinator(ShardedOptions options, QualityRequirement req);

  /// Plans shard boundaries for `num_pairs` pairs under `subset_size` and
  /// `num_shards`: subsets are split into K contiguous runs of near-equal
  /// subset counts ((m * i) / K boundaries), and shard pair ranges inherit
  /// the subset boundaries. Exposed for tests; deterministic.
  static std::vector<ShardSpec> PlanShards(size_t num_pairs,
                                           size_t subset_size,
                                           size_t num_shards);

  /// Runs the full sharded resolution over `workload` (must be sorted by
  /// similarity, the invariant every Workload constructor establishes).
  /// Fails on an empty workload, when the underlying certifier fails, or
  /// when a finite oracle_budget is exhausted.
  Result<ShardedCertificate> Resolve(const data::Workload& workload);

  const ShardedOptions& options() const { return options_; }
  const QualityRequirement& requirement() const { return req_; }

 private:
  ShardedOptions options_;
  QualityRequirement req_;
};

}  // namespace humo::core
