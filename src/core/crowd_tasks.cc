#include "core/crowd_tasks.h"

#include <algorithm>
#include <cassert>

namespace humo::core {
namespace {

uint64_t RecordKey(uint32_t source, uint32_t id) {
  return (static_cast<uint64_t>(source) << 32) | static_cast<uint64_t>(id);
}

}  // namespace

uint32_t TransitiveInference::Intern(uint64_t key) {
  const auto [it, inserted] =
      ids_.emplace(key, static_cast<uint32_t>(parent_.size()));
  if (inserted) {
    parent_.push_back(it->second);
    size_.push_back(1);
    neg_.emplace_back();
  }
  return it->second;
}

uint32_t TransitiveInference::Find(uint32_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

uint32_t TransitiveInference::FindConst(uint32_t x) const {
  while (parent_[x] != x) x = parent_[x];
  return x;
}

int TransitiveInference::Infer(uint64_t a, uint64_t b) const {
  if (a == b) return kMatch;  // reflexivity
  const auto ia = ids_.find(a);
  const auto ib = ids_.find(b);
  if (ia == ids_.end() || ib == ids_.end()) return kUnknown;
  const uint32_t ra = FindConst(ia->second);
  const uint32_t rb = FindConst(ib->second);
  if (ra == rb) return kMatch;
  if (neg_[ra].count(rb) != 0) return kNonMatch;
  return kUnknown;
}

uint64_t TransitiveInference::ComponentKey(uint64_t key) const {
  const auto it = ids_.find(key);
  if (it == ids_.end()) return key;
  // Root indices are disambiguated from raw record keys by the top bit
  // (record keys are (source << 32) | id with source < 2^31).
  return (1ULL << 63) | static_cast<uint64_t>(FindConst(it->second));
}

void TransitiveInference::Observe(uint64_t a, uint64_t b, bool is_match) {
  if (a == b) return;  // self-pairs carry no cross-record information
  const uint32_t ia = Intern(a);
  const uint32_t ib = Intern(b);
  uint32_t ra = Find(ia);
  uint32_t rb = Find(ib);
  if (is_match) {
    if (ra == rb) return;  // already implied
    if (neg_[ra].count(rb) != 0) {
      // Closure says non-match (first purchase wins): drop.
      ++conflicts_dropped_;
      return;
    }
    // Union by size; equal sizes keep the smaller root id (deterministic).
    if (size_[ra] < size_[rb] || (size_[ra] == size_[rb] && rb < ra)) {
      std::swap(ra, rb);
    }
    // Move rb's negative edges onto ra, re-keying the neighbors' entries.
    for (const uint32_t n : neg_[rb]) {
      neg_[n].erase(rb);
      if (neg_[n].insert(ra).second) {
        neg_[ra].insert(n);
      } else {
        // ra and rb both held an edge to n: the two collapse into one.
        --negative_edges_;
      }
    }
    neg_[rb].clear();
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    ++merges_;
  } else {
    if (ra == rb) {
      // Closure says match (first purchase wins): drop.
      ++conflicts_dropped_;
      return;
    }
    if (neg_[ra].insert(rb).second) {
      neg_[rb].insert(ra);
      ++negative_edges_;
    }
  }
}

std::vector<CrowdTask> PackCrowdTasks(const data::Workload& workload,
                                      std::vector<size_t> pair_indices,
                                      const CrowdTaskOptions& options) {
  const size_t capacity = std::max<size_t>(options.task_capacity, 1);
  std::sort(pair_indices.begin(), pair_indices.end());
  pair_indices.erase(
      std::unique(pair_indices.begin(), pair_indices.end()),
      pair_indices.end());
  if (pair_indices.empty()) return {};

  // Local union-find over the records these pairs mention; record ids are
  // interned in ascending-pair order, so the whole grouping is a pure
  // function of the sorted input.
  std::unordered_map<uint64_t, uint32_t> ids;
  std::vector<uint32_t> parent;
  auto intern = [&](uint64_t key) {
    const auto [it, inserted] =
        ids.emplace(key, static_cast<uint32_t>(parent.size()));
    if (inserted) parent.push_back(it->second);
    return it->second;
  };
  auto find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  const uint32_t* lefts = workload.left_id_data();
  const uint32_t* rights = workload.right_id_data();
  for (const size_t i : pair_indices) {
    assert(i < workload.size());
    const uint32_t a = find(intern(RecordKey(options.left_source, lefts[i])));
    const uint32_t b =
        find(intern(RecordKey(options.right_source, rights[i])));
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }

  // Components ordered by first appearance over the ascending pair walk
  // (== by smallest member pair index); pairs within a component ascend.
  std::unordered_map<uint32_t, size_t> component_ordinal;
  std::vector<std::vector<size_t>> groups;
  for (const size_t i : pair_indices) {
    const uint32_t root =
        find(ids.at(RecordKey(options.left_source, lefts[i])));
    const auto [it, inserted] =
        component_ordinal.emplace(root, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }

  // Greedy fill in component order: correlated pairs stay adjacent, every
  // task except the last is full, count is exactly ceil(n / capacity).
  std::vector<CrowdTask> tasks;
  tasks.emplace_back();
  for (const std::vector<size_t>& group : groups) {
    for (const size_t i : group) {
      if (tasks.back().pair_indices.size() == capacity) tasks.emplace_back();
      tasks.back().pair_indices.push_back(i);
    }
  }
  return tasks;
}

CrowdTaskBroker::CrowdTaskBroker(const data::Workload* workload,
                                 CrowdOracle* crowd, CrowdTaskOptions options)
    : workload_(workload), crowd_(crowd), options_(options) {
  assert(workload_ != nullptr && crowd_ != nullptr);
  options_.task_capacity = std::max<size_t>(options_.task_capacity, 1);
}

uint64_t CrowdTaskBroker::LeftKey(size_t pair) const {
  return RecordKey(options_.left_source, workload_->left_id_data()[pair]);
}

uint64_t CrowdTaskBroker::RightKey(size_t pair) const {
  return RecordKey(options_.right_source, workload_->right_id_data()[pair]);
}

std::vector<char> CrowdTaskBroker::Answer(const std::vector<size_t>& indices) {
  std::vector<char> answers(indices.size(), 0);
  // Positions (into `indices`) still awaiting an answer. Duplicate indices
  // are tolerated (each position resolves on its own; the crowd oracle's
  // verdict cache makes the second purchase free).
  std::vector<size_t> pending(indices.size());
  for (size_t p = 0; p < indices.size(); ++p) pending[p] = p;

  const size_t workers_before = crowd_->worker_answers();
  while (!pending.empty()) {
    // Inference pass: answer everything the closure of the verdicts
    // purchased SO FAR (earlier batches and earlier tasks of this batch)
    // already decides. Free — no task, no worker.
    std::vector<size_t> still_pending;
    still_pending.reserve(pending.size());
    for (const size_t p : pending) {
      const size_t i = indices[p];
      assert(i < workload_->size());
      if (crowd_->WasAsked(i)) {
        // Already adjudicated (or preloaded) on the crowd side: a free
        // cache read, neither purchased nor inferred.
        answers[p] = crowd_->CachedAnswer(i) ? 1 : 0;
        continue;
      }
      int inferred = inference_.Infer(LeftKey(i), RightKey(i));
      if (inferred == TransitiveInference::kMatch &&
          !options_.infer_transitivity) {
        inferred = TransitiveInference::kUnknown;
      }
      if (inferred == TransitiveInference::kNonMatch &&
          !options_.infer_anti_transitivity) {
        inferred = TransitiveInference::kUnknown;
      }
      if (inferred == TransitiveInference::kUnknown) {
        still_pending.push_back(p);
        continue;
      }
      answers[p] = inferred == TransitiveInference::kMatch ? 1 : 0;
      if (inferred == TransitiveInference::kMatch) {
        ++stats_.pairs_inferred_match;
      } else {
        ++stats_.pairs_inferred_nonmatch;
      }
    }
    pending.swap(still_pending);
    if (pending.empty()) break;

    // Spanning selection: defer any pair whose endpoints the already-
    // selected pairs — optimistically assumed matches — would connect,
    // because a match outcome answers it by transitivity for free. Seeded
    // with the closure's component buckets so earlier purchases defer too.
    // (With transitivity inference off a deferred pair could never be
    // answered, so everything pending is selected.)
    std::vector<size_t> selected;
    selected.reserve(pending.size());
    if (options_.infer_transitivity) {
      std::unordered_map<uint64_t, uint32_t> node_of;
      std::vector<uint32_t> parent;
      auto intern = [&](uint64_t bucket) {
        const auto [it, inserted] =
            node_of.emplace(bucket, static_cast<uint32_t>(parent.size()));
        if (inserted) parent.push_back(it->second);
        return it->second;
      };
      auto find = [&](uint32_t x) {
        while (parent[x] != x) {
          parent[x] = parent[parent[x]];
          x = parent[x];
        }
        return x;
      };
      for (const size_t p : pending) {
        const size_t i = indices[p];
        const uint32_t a =
            find(intern(inference_.ComponentKey(LeftKey(i))));
        const uint32_t b =
            find(intern(inference_.ComponentKey(RightKey(i))));
        if (a == b) continue;  // potentially inferable: defer to next round
        parent[std::max(a, b)] = std::min(a, b);
        selected.push_back(i);
      }
    } else {
      for (const size_t p : pending) selected.push_back(indices[p]);
    }
    // The first pending pair always selects (were its records already
    // connected, the inference pass would have answered it), so every
    // round makes progress.
    assert(!selected.empty());

    // Post the whole round's cluster-packed tasks. Selected pairs are
    // mutually non-redundant under the optimistic rule, so no within-round
    // inference is forgone by not re-packing between tasks.
    const std::vector<CrowdTask> tasks =
        PackCrowdTasks(*workload_, std::move(selected), options_);
    for (const CrowdTask& task : tasks) {
      const std::vector<char> verdicts =
          crowd_->InspectBatch(task.pair_indices);
      ++stats_.tasks_posted;
      stats_.pairs_purchased += task.pair_indices.size();
      for (size_t t = 0; t < task.pair_indices.size(); ++t) {
        const size_t i = task.pair_indices[t];
        inference_.Observe(LeftKey(i), RightKey(i), verdicts[t] != 0);
      }
    }
    // Serve every pending position the round answered (purchased pairs are
    // a subset of the pending set by construction).
    still_pending.clear();
    for (const size_t p : pending) {
      const size_t i = indices[p];
      if (crowd_->WasAsked(i)) {
        answers[p] = crowd_->CachedAnswer(i) ? 1 : 0;
      } else {
        still_pending.push_back(p);
      }
    }
    pending.swap(still_pending);
  }
  stats_.worker_answers += crowd_->worker_answers() - workers_before;
  return answers;
}

Oracle::AnswerProvider CrowdTaskBroker::Provider() {
  return [this](const std::vector<size_t>& indices) {
    return Answer(indices);
  };
}

}  // namespace humo::core
