#include "core/gp_subset_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/distributions.h"

namespace humo::core {

GpSubsetModel::GpSubsetModel(gp::GpRegression gp,
                             std::vector<double> avg_similarity,
                             std::vector<double> subset_sizes,
                             std::vector<SubsetObservation> observations,
                             std::vector<double> scatter_variance,
                             double variance_inflation)
    : gp_(std::move(gp)),
      v_(std::move(avg_similarity)),
      n_(std::move(subset_sizes)),
      obs_(std::move(observations)),
      scatter_(std::move(scatter_variance)),
      variance_inflation_(variance_inflation) {
  assert(v_.size() == n_.size());
  assert(obs_.empty() || obs_.size() == v_.size());
  assert(scatter_.empty() || scatter_.size() == v_.size());
  assert(variance_inflation_ >= 1.0);
  const size_t m = v_.size();
  mean_.resize(m);
  pop_prefix_.assign(m + 1, 0.0);
  // One batched posterior over every subset replaces m per-point solves:
  // the same pass yields the posterior means and the whitened cross
  // vectors the range accumulators need (each bit-identical to the
  // per-point Predict / WhitenedCross it stands in for).
  const std::vector<gp::Prediction> preds = gp_.PredictBatch(v_, &w_);
  for (size_t k = 0; k < m; ++k) {
    mean_[k] = IsExact(k) ? obs_[k].proportion
                          : std::clamp(preds[k].mean, 0.0, 1.0);
    pop_prefix_[k + 1] = pop_prefix_[k] + n_[k];
  }
}

double GpSubsetModel::PriorK(size_t a, size_t b) const {
  return gp_.kernel()(v_[a], v_[b]);
}

double GpSubsetModel::PosteriorVariance(size_t k) const {
  assert(k < v_.size());
  if (IsExact(k)) return 0.0;
  return variance_inflation_ * gp_.PosteriorVarianceFromWhitened(v_[k], w_[k]) +
         ScatterVariance(k);
}

double GpSubsetModel::PopulationInRange(size_t a, size_t b) const {
  if (a > b || b >= v_.size()) return 0.0;
  return pop_prefix_[b + 1] - pop_prefix_[a];
}

GpRangeAccumulator::GpRangeAccumulator(const GpSubsetModel* model)
    : model_(model) {
  assert(model_ != nullptr);
  const size_t dim =
      model_->num_subsets() > 0 ? model_->W(0).size() : size_t{0};
  w_sum_.assign(dim, 0.0);
}

void GpRangeAccumulator::Clear() {
  empty_ = true;
  a_ = b_ = 0;
  mean_sum_ = 0.0;
  prior_q_ = 0.0;
  scatter_sum_ = 0.0;
  pop_sum_ = 0.0;
  std::fill(w_sum_.begin(), w_sum_.end(), 0.0);
}

void GpRangeAccumulator::SetRange(size_t a, size_t b) {
  Clear();
  if (a > b || b >= model_->num_subsets()) return;
  empty_ = false;
  a_ = a;
  b_ = a;
  AddSubset(a);
  while (b_ < b) ExtendRight();
}

void GpRangeAccumulator::AddSubset(size_t k) {
  const double nk = model_->SubsetSize(k);
  mean_sum_ += nk * model_->PosteriorMean(k);
  pop_sum_ += nk;
  if (model_->IsExact(k)) return;  // exact counts carry no uncertainty
  // Prior double-sum update: cross terms against the current non-exact
  // members plus the self term. Membership is exactly [a_, b_] minus k
  // itself when k is being appended (caller has already updated a_/b_ to
  // include k).
  double cross = 0.0;
  for (size_t j = a_; j <= b_; ++j) {
    if (j == k || model_->IsExact(j)) continue;
    cross += model_->SubsetSize(j) * model_->PriorK(k, j);
  }
  prior_q_ += 2.0 * nk * cross + nk * nk * model_->PriorK(k, k);
  const auto& wk = model_->W(k);
  for (size_t i = 0; i < w_sum_.size(); ++i) w_sum_[i] += nk * wk[i];
  scatter_sum_ += nk * nk * model_->ScatterVariance(k);
}

void GpRangeAccumulator::RemoveSubset(size_t k) {
  const double nk = model_->SubsetSize(k);
  mean_sum_ -= nk * model_->PosteriorMean(k);
  pop_sum_ -= nk;
  if (model_->IsExact(k)) return;
  // Membership still includes k at call time; subtract cross terms against
  // the remaining non-exact members.
  double cross = 0.0;
  for (size_t j = a_; j <= b_; ++j) {
    if (j == k || model_->IsExact(j)) continue;
    cross += model_->SubsetSize(j) * model_->PriorK(k, j);
  }
  prior_q_ -= 2.0 * nk * cross + nk * nk * model_->PriorK(k, k);
  const auto& wk = model_->W(k);
  for (size_t i = 0; i < w_sum_.size(); ++i) w_sum_[i] -= nk * wk[i];
  scatter_sum_ -= nk * nk * model_->ScatterVariance(k);
}

void GpRangeAccumulator::ExtendRight() {
  if (empty_) {
    SetRange(0, 0);
    return;
  }
  assert(b_ + 1 < model_->num_subsets());
  ++b_;
  AddSubset(b_);
}

void GpRangeAccumulator::ExtendLeft() {
  if (empty_) {
    SetRange(model_->num_subsets() - 1, model_->num_subsets() - 1);
    return;
  }
  assert(a_ > 0);
  --a_;
  AddSubset(a_);
}

void GpRangeAccumulator::ShrinkLeft() {
  assert(!empty_);
  if (a_ == b_) {
    Clear();
    return;
  }
  const size_t k = a_;
  RemoveSubset(k);
  ++a_;
}

void GpRangeAccumulator::ShrinkRight() {
  assert(!empty_);
  if (a_ == b_) {
    Clear();
    return;
  }
  const size_t k = b_;
  RemoveSubset(k);
  --b_;
}

double GpRangeAccumulator::TotalMean() const {
  if (empty_) return 0.0;
  return std::clamp(mean_sum_, 0.0, pop_sum_);
}

double GpRangeAccumulator::TotalStdDev() const {
  if (empty_) return 0.0;
  double dot = 0.0;
  for (double x : w_sum_) dot += x * x;
  const double gp_var = std::max(0.0, prior_q_ - dot);
  const double var = model_->variance_inflation() * gp_var + scatter_sum_;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double GpRangeAccumulator::LowerBound(double confidence) const {
  if (empty_) return 0.0;
  const double z = stats::NormalTwoSidedCritical(confidence);
  return std::max(0.0, TotalMean() - z * TotalStdDev());
}

double GpRangeAccumulator::UpperBound(double confidence) const {
  if (empty_) return 0.0;
  const double z = stats::NormalTwoSidedCritical(confidence);
  return std::min(pop_sum_, TotalMean() + z * TotalStdDev());
}

double GpRangeAccumulator::Population() const {
  return empty_ ? 0.0 : pop_sum_;
}

}  // namespace humo::core
