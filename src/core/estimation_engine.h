#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/gp_subset_model.h"
#include "core/oracle.h"
#include "core/partition.h"
#include "core/solution.h"
#include "stats/stratified.h"

namespace humo::core {

/// Counters describing how much estimation work the engine reused instead of
/// recomputing (and, crucially, instead of re-asking the human).
struct CacheStats {
  /// LabelSubset calls answered from the cache (no oracle traffic).
  size_t full_label_hits = 0;
  /// LabelSubset calls that had to inspect at least one fresh pair.
  size_t full_label_misses = 0;
  /// SampleSubset calls answered from a cached stratum or full enumeration.
  size_t stratum_hits = 0;
  /// SampleSubset calls that drew and inspected a fresh sample.
  size_t stratum_misses = 0;
  /// Fresh pair inspections the engine routed to the oracle.
  size_t oracle_pairs_inspected = 0;
  /// Pair inspections avoided: requested through the engine but served from
  /// the subset cache or the oracle's answer memory without a new request.
  size_t oracle_pairs_saved = 0;
  /// GP re-estimation rounds served by warm-starting the previous winner —
  /// a rank-k Cholesky append (or outright reuse) instead of re-running the
  /// full hyperparameter grid.
  size_t gp_warm_starts = 0;
  /// GP fits that evaluated the full hyperparameter grid (first fit of a
  /// run, warm-start rejections, the final scatter refit, and every round
  /// when HUMO_GP_INCREMENTAL=0).
  size_t gp_grid_fits = 0;
  /// Training observations appended to an existing factor across all
  /// warm-started rounds.
  size_t gp_rows_appended = 0;
};

/// Memoized per-subset statistics over one SubsetPartition: exact match
/// counts of fully human-labeled subsets and sampling strata of partially
/// sampled ones. This is the state BASE's window estimates, SAMP's strata
/// and GP pins, and HYBR's re-extension all read — holding it in one place
/// is what lets a later optimizer run skip every inspection an earlier run
/// already paid for.
class SubsetStatsCache {
 public:
  SubsetStatsCache() = default;
  explicit SubsetStatsCache(size_t num_subsets) { Resize(num_subsets); }

  void Resize(size_t num_subsets);

  /// Resizes to `num_subsets`, keeping the statistics of the first
  /// `keep_prefix` subsets and clearing everything at or beyond it — the
  /// streaming carry-over after a pure tail-append epoch, where subsets
  /// [0, keep_prefix) provably kept their exact [begin, end) content.
  void ResizeKeepingPrefix(size_t num_subsets, size_t keep_prefix);

  size_t num_subsets() const { return full_known_.size(); }

  bool HasFullCount(size_t k) const { return full_known_[k] != 0; }
  size_t FullCount(size_t k) const;
  void SetFullCount(size_t k, size_t matches);

  bool HasStratum(size_t k) const { return stratum_known_[k] != 0; }
  const stats::Stratum& StratumAt(size_t k) const;
  void SetStratum(size_t k, const stats::Stratum& stratum);

  /// Drops every cached statistic (counts and strata).
  void Clear();

 private:
  std::vector<char> full_known_;
  std::vector<size_t> full_count_;
  std::vector<char> stratum_known_;
  std::vector<stats::Stratum> strata_;
};

/// Round-over-round GP re-estimation state threaded through the context.
///
/// SAMP's refinement loop alternates "sample one more subset" with "refit
/// the GP"; re-running the full hyperparameter grid from scratch every
/// round is O(rounds x grid x n^3). The state below lets the next FitGp
/// call recognize that the training set only grew — every previously used
/// (subset, observation, noise) is unchanged — and extend the previous
/// winner's Cholesky factor by the appended rows (O(n^2 k)) instead,
/// re-running the grid only when the warm model's per-datum log marginal
/// likelihood degrades past the optimizer's slack.
///
/// Training points are kept in INSERTION order: grid fits store the sorted
/// subset order they fit on, warm starts append at the end. The GP is
/// permutation-invariant up to factorization roundoff, so predictions agree
/// with the sorted-order fit within ~1e-12 (and the HUMO_GP_INCREMENTAL=0/1
/// end-to-end solutions are identical on every workload we test).
struct GpFitState {
  /// Subset indices of the current model's training set, insertion order.
  std::vector<size_t> order;
  /// Observations and per-point noise the model was trained on, parallel to
  /// `order`; compared against the caller's strata to prove that a round
  /// only APPENDED data (anything else forces a grid re-run).
  std::vector<double> ys, noise;
  /// Previous winner; null before the first grid fit.
  std::shared_ptr<const gp::GpRegression> model;
  /// Per-datum log marginal likelihood when `model` was last accepted.
  double lml_per_datum = 0.0;
  /// Fit configuration `model` was selected under. A later run on the same
  /// context asking for a different kernel family or noise floor must not
  /// reuse the model (the warm path keeps hyperparameters), so FitGp
  /// compares these before warm-starting.
  gp::KernelFamily kernel_family = gp::KernelFamily::kRbf;
  double noise_floor = 0.0;
};

/// Everything the hybrid approach needs from a partial-sampling run: the
/// solution, the fitted subset-level GP model, the raw per-subset sampling
/// data, and the requirement the run certified against.
struct PartialSamplingOutcome {
  HumoSolution solution;
  std::shared_ptr<GpSubsetModel> model;
  /// Per-subset sampling strata; unsampled subsets have sample_size == 0.
  std::vector<stats::Stratum> strata;
  /// Which subsets were sampled during Algorithm 1.
  std::vector<bool> sampled;
  /// Requirement the outcome was produced for; a consumer reusing the
  /// outcome must be certifying the same alpha/beta/theta.
  QualityRequirement req;
};

/// Shared estimation state for one (partition, oracle) pair.
///
/// All the optimizers (BASE §V, ALL/SAMP §VI, HYBR §VII, and the r-HUMO
/// style RISK) consume subset statistics that are expensive only because
/// producing them asks the human:
/// full enumerations, random samples, GP fits over the samples, and the
/// confidence bounds derived from them. Running the optimizers against one
/// EstimationContext memoizes that work — HYBR's re-extension phase after a
/// SAMP run issues ZERO duplicate oracle inspections, because every subset
/// SAMP enumerated is served from the SubsetStatsCache and every pair SAMP
/// sampled is filtered out of the batches the engine sends.
///
/// Human interaction goes through Oracle::InspectBatch / InspectRange so a
/// subset is one batched unit of human work. Heavy machine-side math (GP
/// Gram construction, Cholesky, simulation) runs on the process-global
/// ThreadPool (size it with HUMO_NUM_THREADS or
/// ThreadPool::SetGlobalThreads) with deterministic per-task RNG streams.
class EstimationContext {
 public:
  /// `partition` and `oracle` must outlive the context.
  EstimationContext(const SubsetPartition* partition, Oracle* oracle);

  const SubsetPartition& partition() const { return *partition_; }
  Oracle* oracle() const { return oracle_; }

  /// Exact match count of subset k with every pair human-labeled.
  /// Memoized; a cached full count (or a cached fully-enumerated stratum)
  /// is returned without any oracle traffic, and on a miss only the pairs
  /// the oracle has not already answered are inspected (as one batch).
  size_t LabelSubset(size_t k);

  /// True when subset k's exact match count is already known to the engine.
  bool HasFullLabel(size_t k) const;

  /// Sampling stratum of subset k with up to `take` pairs labeled.
  /// Memoized: a cached stratum with enough samples (or a full enumeration)
  /// is returned without consuming `rng` or touching the oracle; otherwise a
  /// fresh sample is drawn from `rng` exactly like the historical serial
  /// path and inspected as one batch (minus already-answered pairs).
  const stats::Stratum& SampleSubset(size_t k, size_t take, Rng* rng);

  /// Human-labels specific pairs of subset k (absolute workload indices
  /// inside the subset's range) as one batch; returns the matches among
  /// them. Pairs the oracle already answered are served from its memory
  /// (free), only the rest are inspected. Afterwards the subset's cached
  /// stratum is refreshed to cover EVERY answered pair of the subset, so
  /// later SampleSubset/LabelSubset calls — and chained optimizer runs —
  /// reuse the answers (a fully covered subset is promoted to a full
  /// count). This is the risk-aware optimizer's inspection primitive: it
  /// pays per pair, not per subset.
  size_t InspectSubsetPairs(size_t k, const std::vector<size_t>& pair_indices);

  /// Observed match proportion of the `window` most recently labeled
  /// subsets on the upper side of DH = [lo, hi] (walking down from hi).
  /// `max_pairs` optionally caps the window by pair count (BASE's Eq. 7
  /// window uses window * subset_size; 0 = no cap). Every visited subset
  /// must have a cached full count.
  double UpperWindowProportion(size_t lo, size_t hi, size_t window,
                               size_t max_pairs = 0) const;

  /// Mirror image on the lower side of DH (walking up from lo).
  double LowerWindowProportion(size_t lo, size_t hi, size_t window,
                               size_t max_pairs = 0) const;

  /// Publishes a partial-sampling outcome for later consumers (HYBR's
  /// re-extension, benches chaining optimizers). The engine stores one
  /// outcome; a later store replaces it.
  void StoreSamplingOutcome(std::shared_ptr<const PartialSamplingOutcome> o);

  /// The stored outcome, or null when no SAMP run has completed here.
  std::shared_ptr<const PartialSamplingOutcome> sampling_outcome() const {
    return sampling_outcome_;
  }

  /// Mutable round-over-round GP refit state consumed by the partial
  /// sampling optimizer's FitGp (see GpFitState). Kept on the context so
  /// chained runs over the same strata can warm-start across runs too.
  GpFitState* gp_fit_state() { return &gp_fit_state_; }

  /// Counter hooks for the GP refit path.
  void RecordGpWarmStart(size_t rows_appended) {
    ++stats_.gp_warm_starts;
    stats_.gp_rows_appended += rows_appended;
  }
  void RecordGpGridFit() { ++stats_.gp_grid_fits; }

  /// Carries the context across a partition change (a streaming epoch
  /// merge): the subset caches are resized to the partition's new subset
  /// count, keeping the statistics of the first `preserved_prefix_subsets`
  /// subsets — the caller's proof that those subsets' [begin, end) contents
  /// are untouched (pure tail append; pass 0 after an interior merge, which
  /// clears everything). The stored sampling outcome is always dropped (its
  /// solution and strata index the old partition), and the GP warm-start
  /// state survives only when every subset it trained on lies inside the
  /// preserved prefix (its inputs are those subsets' average similarities).
  /// Counters in stats() are cumulative and unaffected.
  void OnPartitionExtended(size_t preserved_prefix_subsets);

  const SubsetStatsCache& cache() const { return cache_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

 private:
  const SubsetPartition* partition_;
  Oracle* oracle_;
  SubsetStatsCache cache_;
  CacheStats stats_;
  GpFitState gp_fit_state_;
  std::shared_ptr<const PartialSamplingOutcome> sampling_outcome_;
};

}  // namespace humo::core
