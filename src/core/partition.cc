#include "core/partition.h"

#include <algorithm>
#include <cassert>

#include "common/thread_pool.h"

namespace humo::core {
namespace {

/// Subsets per parallel rebuild task. At the paper's subset size of 200
/// pairs one task sums ~12.8k contiguous doubles — large enough to amortize
/// scheduling, small enough to balance across the pool.
constexpr size_t kRebuildGrain = 64;

/// Sequential sum of similarities[begin, end): the ONE accumulation order
/// every rebuild path (serial, parallel, tail) must share so that
/// avg_similarity is bitwise identical however the partition was built.
double SumRange(const double* similarities, size_t begin, size_t end) {
  double acc = 0.0;
  for (size_t i = begin; i < end; ++i) acc += similarities[i];
  return acc;
}

/// Eight EQUAL-LENGTH subset sums advanced in lockstep. Each accumulator
/// still adds ITS subset's elements in ascending index order — the same
/// rounding sequence SumRange produces — but the eight independent add
/// chains overlap in the FP pipeline instead of serializing on one chain's
/// 4-5 cycle add latency, which is what bounds the single-chain loop.
/// Bitwise identical per subset; ~3-5x single-thread throughput at the
/// paper's subset size (same interleaved-chain idea as the linalg
/// SubDotInterleavedStep kernels).
constexpr size_t kInterleave = 8;

void SumInterleavedSubsets(const double* similarities, size_t first_begin,
                           size_t len, double out[kInterleave]) {
  double acc[kInterleave] = {};
  const double* base = similarities + first_begin;
  // Blocked: one prefetch per stream per cache line (the hardware
  // prefetcher tracks the eight forward streams imperfectly at this
  // stride), then eight branch-free add iterations.
  size_t j = 0;
  for (; j + 8 <= len; j += 8) {
    for (size_t t = 0; t < kInterleave; ++t) {
      __builtin_prefetch(base + t * len + j + 64);
    }
    for (size_t jj = j; jj < j + 8; ++jj) {
      for (size_t t = 0; t < kInterleave; ++t) {
        acc[t] += base[t * len + jj];
      }
    }
  }
  for (; j < len; ++j) {
    for (size_t t = 0; t < kInterleave; ++t) {
      acc[t] += base[t * len + j];
    }
  }
  for (size_t t = 0; t < kInterleave; ++t) out[t] = acc[t];
}

}  // namespace

SubsetPartition::SubsetPartition(const data::Workload* workload,
                                 size_t subset_size)
    : workload_(workload), subset_size_(subset_size) {
  assert(workload_ != nullptr);
  assert(subset_size_ > 0);
  Rebuild();
}

void SubsetPartition::Rebuild() { RebuildTail(0); }

void SubsetPartition::RebuildTail(size_t from_subset) {
  assert(workload_ != nullptr);
  const size_t n = workload_->size();
  const size_t m = n / subset_size_;  // final subset absorbs remainder
  const double* sims = workload_->similarity_data();
  if (n == 0) {
    subsets_.clear();
    return;
  }
  if (m == 0) {
    // Fewer pairs than one subset: single subset with everything.
    Subset s{0, n, 0.0};
    s.avg_similarity = SumRange(sims, 0, n) / static_cast<double>(n);
    subsets_.assign(1, s);
    return;
  }
  from_subset = std::min(from_subset, m);
  assert(from_subset <= subsets_.size());
  subsets_.resize(m);
  // Every subset's [begin, end) and average depend only on (k, n,
  // subset_size): disjoint index-addressed writes, deterministic at any
  // thread count. One pass over the contiguous similarity column, O(pairs
  // in [from_subset * subset_size, n)).
  ThreadPool::Global()->ParallelFor(
      m - from_subset, kRebuildGrain,
      [&](size_t chunk_begin, size_t chunk_end) {
        size_t k = from_subset + chunk_begin;
        const size_t k_end = from_subset + chunk_end;
        // Full-width subsets in interleaved groups; the remainder-absorbing
        // final subset (and any leftover group) falls through to the
        // single-chain loop below.
        while (k + kInterleave <= k_end && k + kInterleave < m) {
          double sums[kInterleave];
          SumInterleavedSubsets(sims, k * subset_size_, subset_size_, sums);
          for (size_t t = 0; t < kInterleave; ++t) {
            Subset s;
            s.begin = (k + t) * subset_size_;
            s.end = s.begin + subset_size_;
            s.avg_similarity = sums[t] / static_cast<double>(subset_size_);
            subsets_[k + t] = s;
          }
          k += kInterleave;
        }
        for (; k < k_end; ++k) {
          Subset s;
          s.begin = k * subset_size_;
          s.end = (k + 1 == m) ? n : (k + 1) * subset_size_;
          s.avg_similarity =
              SumRange(sims, s.begin, s.end) / static_cast<double>(s.size());
          subsets_[k] = s;
        }
      });
}

size_t SubsetPartition::PairsInRange(size_t from, size_t to) const {
  if (from > to || subsets_.empty()) return 0;
  assert(to < subsets_.size());
  return subsets_[to].end - subsets_[from].begin;
}

size_t SubsetPartition::SubsetOf(size_t pair_idx) const {
  assert(pair_idx < workload_->size());
  size_t k = pair_idx / subset_size_;
  if (k >= subsets_.size()) k = subsets_.size() - 1;
  return k;
}

}  // namespace humo::core
