#include "core/partition.h"

#include <algorithm>
#include <cassert>

namespace humo::core {

SubsetPartition::SubsetPartition(const data::Workload* workload,
                                 size_t subset_size)
    : workload_(workload), subset_size_(subset_size) {
  assert(workload_ != nullptr);
  assert(subset_size_ > 0);
  Rebuild();
}

void SubsetPartition::Rebuild() { RebuildTail(0); }

void SubsetPartition::RebuildTail(size_t from_subset) {
  assert(workload_ != nullptr);
  const size_t n = workload_->size();
  const size_t m = n / subset_size_;  // final subset absorbs remainder
  if (n == 0) {
    subsets_.clear();
    return;
  }
  if (m == 0) {
    // Fewer pairs than one subset: single subset with everything.
    Subset s{0, n, 0.0};
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) acc += (*workload_)[i].similarity;
    s.avg_similarity = acc / static_cast<double>(n);
    subsets_.assign(1, s);
    return;
  }
  from_subset = std::min(from_subset, m);
  assert(from_subset <= subsets_.size());
  subsets_.resize(from_subset);
  subsets_.reserve(m);
  for (size_t k = from_subset; k < m; ++k) {
    Subset s;
    s.begin = k * subset_size_;
    s.end = (k + 1 == m) ? n : (k + 1) * subset_size_;
    double acc = 0.0;
    for (size_t i = s.begin; i < s.end; ++i)
      acc += (*workload_)[i].similarity;
    s.avg_similarity = acc / static_cast<double>(s.size());
    subsets_.push_back(s);
  }
}

size_t SubsetPartition::PairsInRange(size_t from, size_t to) const {
  if (from > to || subsets_.empty()) return 0;
  assert(to < subsets_.size());
  return subsets_[to].end - subsets_[from].begin;
}

size_t SubsetPartition::SubsetOf(size_t pair_idx) const {
  assert(pair_idx < workload_->size());
  size_t k = pair_idx / subset_size_;
  if (k >= subsets_.size()) k = subsets_.size() - 1;
  return k;
}

}  // namespace humo::core
