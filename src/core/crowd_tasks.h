#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/crowd_oracle.h"
#include "core/oracle.h"
#include "data/workload.h"

namespace humo::core {

/// Configuration of the crowd TASK layer: how pair questions are packed
/// into HITs and which answers are inferred instead of purchased.
struct CrowdTaskOptions {
  /// Pairs per posted HIT (CrowdER's task size k). Real crowd platforms
  /// price per task, not per pair, so packing `task_capacity` correlated
  /// pairs into one HIT divides task cost by up to that factor. Clamped to
  /// >= 1.
  size_t task_capacity = 10;
  /// Apply transitivity over purchased verdicts: a=b and b=c imply a=c, so
  /// the pair (a,c) is answered for free instead of posted.
  bool infer_transitivity = true;
  /// Apply anti-transitivity: a=b and b!=c imply a!=c.
  bool infer_anti_transitivity = true;
  /// Source tags mixed into the record keys ((source<<32)|id, the entity
  /// layer's packing). Two-table workloads keep the defaults; dedup-style
  /// workloads (both sides drawn from one table, e.g. the entity-graph
  /// generator) pass equal sources so shared record ids actually connect.
  uint32_t left_source = 0;
  uint32_t right_source = 1;
};

/// One HIT: up to `task_capacity` pair questions posted together.
struct CrowdTask {
  std::vector<size_t> pair_indices;
};

/// Incremental equivalence/constraint store over record keys, fed by
/// purchased verdicts:
///   - a purchased MATCH merges the two records' components (union-find,
///     union by size, path halving);
///   - a purchased NON-MATCH records a negative edge between the two
///     components (re-keyed when components merge).
/// Infer(a, b) then answers from the closure: same component => match,
/// negative edge between the components => non-match (a=b and b!=c imply
/// a!=c), otherwise unknown.
///
/// Noisy crowds can produce contradicting verdicts (a cycle whose closure
/// disagrees with a purchased edge). Policy: FIRST PURCHASE WINS — an
/// observation that contradicts the existing closure is dropped (counted in
/// conflicts_dropped()), never applied. Since observation order is the
/// deterministic purchase order, the store's state is deterministic, and a
/// consumer that serves purchased verdicts from its own answer memory (as
/// core::Oracle does) can never see inference contradict a purchased
/// verdict: inference is only ever consulted for never-purchased pairs.
class TransitiveInference {
 public:
  /// Result of Infer: one of kMatch (=1), kNonMatch (=0), kUnknown (=-1).
  static constexpr int kMatch = 1;
  static constexpr int kNonMatch = 0;
  static constexpr int kUnknown = -1;

  /// Closure answer for the record pair (a, b), without mutating anything.
  int Infer(uint64_t a, uint64_t b) const;

  /// Stable bucket for the record's current POSITIVE component: two records
  /// the closure already connects share a bucket, never-seen records bucket
  /// by their own key. The broker's spanning selection seeds its local
  /// union-find with these, so known connectivity also defers purchases.
  uint64_t ComponentKey(uint64_t key) const;

  /// Folds a purchased verdict on (a, b) into the store.
  void Observe(uint64_t a, uint64_t b, bool is_match);

  /// Distinct record keys seen so far.
  size_t num_records() const { return parent_.size(); }
  /// Component merges applied (successful positive observations).
  size_t merges() const { return merges_; }
  /// Live negative component edges.
  size_t negative_edges() const { return negative_edges_; }
  /// Observations dropped because they contradicted the existing closure.
  size_t conflicts_dropped() const { return conflicts_dropped_; }

 private:
  uint32_t Intern(uint64_t key);
  uint32_t Find(uint32_t x);
  /// Non-mutating find for const queries (no path halving).
  uint32_t FindConst(uint32_t x) const;

  std::unordered_map<uint64_t, uint32_t> ids_;
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  /// Negative constraint adjacency, keyed by component ROOT; maintained
  /// eagerly across merges (small-to-large), so Infer is O(alpha) + one
  /// hash probe.
  std::vector<std::unordered_set<uint32_t>> neg_;
  size_t merges_ = 0;
  size_t negative_edges_ = 0;
  size_t conflicts_dropped_ = 0;
};

/// Packs `pair_indices` (distinct workload pair indices) into HITs of at
/// most `options.task_capacity` pairs. Pairs are grouped by connected
/// component of shared records (a local union-find over the records these
/// pairs mention — the blocking-cluster structure), components are ordered
/// by their smallest pair index, pairs within a component ascend, and the
/// concatenated sequence is sliced into capacity-sized tasks — so
/// correlated pairs share a HIT whenever they fit, and the packing is a
/// pure function of the (sorted) input. Task count is exactly
/// ceil(n / capacity).
std::vector<CrowdTask> PackCrowdTasks(const data::Workload& workload,
                                      std::vector<size_t> pair_indices,
                                      const CrowdTaskOptions& options);

/// Cumulative crowd-task accounting. The research punchline lives here:
/// `tasks_posted` is the task-denominated cost that replaces the per-pair
/// question count when the human is a crowd, and
/// pairs_inferred() / (pairs_inferred() + pairs_purchased) is the fraction
/// of answers that cost nothing at all.
struct CrowdTaskStats {
  size_t tasks_posted = 0;
  size_t pairs_purchased = 0;
  size_t pairs_inferred_match = 0;
  size_t pairs_inferred_nonmatch = 0;
  size_t worker_answers = 0;

  size_t pairs_inferred() const {
    return pairs_inferred_match + pairs_inferred_nonmatch;
  }
  size_t pairs_answered() const { return pairs_purchased + pairs_inferred(); }
};

/// Broker between the per-pair oracle protocol and a crowd platform:
/// installed as a core::Oracle AnswerProvider, it receives each inspection
/// batch's distinct unanswered pairs and answers them with as few posted
/// HITs as possible. Each ROUND:
///   1. every pair the TransitiveInference closure already decides is
///      answered for free (no task, no worker);
///   2. a SPANNING SUBSET of the remainder is selected — a pair whose
///      endpoints the already-selected pairs would connect (assuming they
///      come back matches) is deferred, because a match outcome makes it
///      inferable for free. Selection seeds from the closure's components,
///      so evidence from earlier rounds and batches also defers purchases;
///   3. the selected pairs are cluster-packed (PackCrowdTasks) and posted,
///      their verdicts feeding the closure, and the loop repeats — pairs
///      whose optimistic support turned out non-match are bought in a later
///      round (or answered by anti-transitivity, which non-matches enable).
/// Under the optimistic-connectivity rule no selected pair can become
/// inferable from other SELECTED pairs' verdicts, so posting a whole
/// round's tasks together loses no inference relative to one-at-a-time.
/// SAMP/RISK/HYBR run unchanged on the owning Oracle and see ordinary
/// answers; the broker's CrowdTaskStats carry the task-denominated cost.
///
/// Everything is serial and deterministic: results and stats are
/// bit-identical at any thread count for a given request sequence.
class CrowdTaskBroker {
 public:
  /// `workload` and `crowd` must outlive the broker.
  CrowdTaskBroker(const data::Workload* workload, CrowdOracle* crowd,
                  CrowdTaskOptions options = {});

  /// Answers `indices` (the AnswerProvider contract: distinct, unanswered,
  /// first-occurrence order), purchasing only what inference cannot supply.
  std::vector<char> Answer(const std::vector<size_t>& indices);

  /// The closure over Answer to install via Oracle::SetAnswerProvider.
  Oracle::AnswerProvider Provider();

  const CrowdTaskStats& stats() const { return stats_; }
  const TransitiveInference& inference() const { return inference_; }
  const CrowdTaskOptions& options() const { return options_; }

 private:
  uint64_t LeftKey(size_t pair) const;
  uint64_t RightKey(size_t pair) const;

  const data::Workload* workload_;
  CrowdOracle* crowd_;
  CrowdTaskOptions options_;
  TransitiveInference inference_;
  CrowdTaskStats stats_;
};

}  // namespace humo::core
