#pragma once

#include <cstddef>
#include <vector>

#include "data/workload.h"

namespace humo::core {

/// One unit subset D_k of the similarity-ordered workload: a half-open index
/// range [begin, end) into the sorted pair array, plus its average
/// similarity (the GP input v_k).
struct Subset {
  size_t begin = 0;
  size_t end = 0;
  double avg_similarity = 0.0;

  size_t size() const { return end - begin; }
};

/// Divides a similarity-sorted workload into consecutive subsets each
/// holding `subset_size` pairs (the paper fixes 200); the final subset
/// absorbs the remainder. This is the unit of movement for every optimizer.
class SubsetPartition {
 public:
  SubsetPartition() = default;

  /// `workload` must outlive the partition and be sorted by similarity.
  SubsetPartition(const data::Workload* workload, size_t subset_size);

  /// Recomputes boundaries and per-subset averages for the workload's
  /// current contents in one O(n) pass — the streaming path after an epoch
  /// merge inserted pairs throughout the sorted order. Equivalent (bitwise,
  /// including every avg_similarity) to constructing a fresh partition over
  /// the same workload, but reuses the subset storage.
  void Rebuild();

  /// Append fast path: the workload only GREW AT THE TAIL since the last
  /// (re)build, so every subset except the final remainder-absorbing one is
  /// unchanged — only subsets from index min(from_subset, last) on are
  /// recomputed, O(pairs in the recomputed tail) instead of O(n). Callers
  /// pass the number of subsets whose [begin, end) content is untouched
  /// (num_subsets() - 1 of the previous build, or 0 when there was none).
  /// Bitwise-equivalent to Rebuild().
  void RebuildTail(size_t from_subset);

  size_t num_subsets() const { return subsets_.size(); }
  const Subset& operator[](size_t k) const { return subsets_[k]; }
  const std::vector<Subset>& subsets() const { return subsets_; }
  const data::Workload& workload() const { return *workload_; }
  size_t subset_size() const { return subset_size_; }

  /// Total pairs across subsets [from, to] inclusive; 0 when from > to.
  size_t PairsInRange(size_t from, size_t to) const;

  /// Index of the subset containing pair index `pair_idx`.
  size_t SubsetOf(size_t pair_idx) const;

 private:
  const data::Workload* workload_ = nullptr;
  size_t subset_size_ = 0;
  std::vector<Subset> subsets_;
};

}  // namespace humo::core
