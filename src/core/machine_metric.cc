#include "core/machine_metric.h"

#include <cassert>

namespace humo::core {

data::Workload RescoreByMatchProbability(const data::Workload& workload,
                                         const ml::LogisticRegression& model,
                                         const PairFeatureFn& features) {
  std::vector<data::InstancePair> pairs;
  pairs.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    data::InstancePair p = workload[i];
    p.similarity = model.PredictProbability(features(workload[i]));
    pairs.push_back(p);
  }
  return data::Workload(std::move(pairs));
}

data::Workload RescoreBySvmDistance(const data::Workload& workload,
                                    const ml::LinearSvm& model,
                                    const PairFeatureFn& features,
                                    double scale) {
  assert(scale > 0.0);
  std::vector<data::InstancePair> pairs;
  pairs.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    data::InstancePair p = workload[i];
    p.similarity = ml::Sigmoid(model.Distance(features(workload[i])) / scale);
    pairs.push_back(p);
  }
  return data::Workload(std::move(pairs));
}

PairFeatureFn SimilarityFeature() {
  return [](const data::InstancePair& p) {
    return ml::FeatureVector{p.similarity};
  };
}

}  // namespace humo::core
